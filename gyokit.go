// Package gyokit is a library of the acyclic-database theory developed
// in Goodman, Shmueli & Tay, "GYO Reductions, Canonical Connections,
// Tree and Cyclic Schemas, and Tree Projections" (PODS 1983; JCSS 29,
// 1984): GYO (Graham–Yu–Ozsoyoglu) reductions, qual graphs and join
// trees, canonical connections via tableau minimization, tree
// projections, lossless-join tests, γ-acyclicity, and the
// join/semijoin/project query-processing programs they analyze.
//
// # Quick start
//
//	u := gyokit.NewUniverse()
//	d := gyokit.MustParse(u, "ab, bc, cd")       // the paper's notation
//	cls, _ := gyokit.Classify(d)                 // tree? γ-acyclic? GR(D)?
//	sol, _ := gyokit.SolveByJoins(d, u.Set("a", "d"))
//
// The facade re-exports the stable API of the internal packages:
//
//   - schema construction and parsing (internal/schema)
//   - GYO reductions GR(D, X) and the Corollary 3.1/3.2 tests
//     (internal/gyo)
//   - qual trees and the Theorem 3.1 subtree characterization
//     (internal/qualgraph)
//   - tableaux and canonical connections CC(D, X) (internal/tableau)
//   - lossless joins ⋈D ⊨ ⋈D′ (internal/lossless)
//   - γ-acyclicity (internal/gamma)
//   - query programs and plan builders (internal/program)
//   - tree projections (internal/treeproj)
//   - fixed treefication and bin packing (internal/treefy)
//
// All algorithms are deterministic and stdlib-only. NP-hard corners
// (tableau minimization on cyclic schemas, tree-projection search,
// fixed treefication) use exact exponential algorithms with documented
// input bounds, plus the polynomial special cases the paper proves for
// tree schemas.
//
// # Execution engine
//
// Relation states are backed by a columnar engine (internal/relation):
// tuples live in one flat []Value arena with width-strided access, and
// every set-semantics index, join hash table, and semijoin key set is
// an open-addressing table over 64-bit integer hashes with full
// collision verification — no string keys are materialized on any hot
// path. A reusable Exec context carries the scratch buffers and hash
// tables across the statements of a program run, so Program.Eval
// evaluates a whole §6 statement sequence without per-statement
// re-allocation. Eval returns Stats with per-statement tuples-in /
// tuples-out and wall time (Stats.Detail, Stats.Table), turning the
// paper's §6 cost analyses into observable numbers.
//
// # Serving engine
//
// For concurrent workloads, Engine (internal/engine) separates
// planning from execution and amortizes both across requests: an LRU
// plan cache keyed by order-independent schema/target fingerprints
// (Schema.Fingerprint) holds the Classification plus the compiled
// Program, so repeat queries skip GYO reduction, tableau work, and
// plan construction entirely; a sync.Pool of Exec contexts lets
// concurrent evaluations reuse hash tables without locking; and
// queries run against immutable frozen Database snapshots swapped in
// atomically by writers (Database.Clone, Database.InsertTuple,
// Engine.Swap), so readers never block. NewEngineServer exposes an
// Engine over HTTP (/classify, /plan, /solve, /insert, /delete,
// /load) — cmd/gyod is the ready-made daemon, and gyobench -parallel N
// is the load driver.
//
// # Durability
//
// internal/storage adds crash recovery underneath the engine: a
// write-ahead log of logical mutation batches (one CRC-framed, fsynced
// record per Engine.Apply call) plus checkpointed snapshots of the
// columnar representation, written atomically in the background off
// the latest frozen snapshot. Recovery loads the newest valid
// checkpoint, replays the WAL tail, and tolerates the torn final
// record of a crash — acknowledged mutations are recovered exactly.
// gyod -data DIR serves a durable store across restarts and shuts
// down gracefully on SIGINT/SIGTERM.
package gyokit

import (
	"math/rand"

	"gyokit/internal/core"
	"gyokit/internal/cq"
	"gyokit/internal/engine"
	"gyokit/internal/gamma"
	"gyokit/internal/graph"
	"gyokit/internal/gyo"
	"gyokit/internal/lossless"
	"gyokit/internal/program"
	"gyokit/internal/qualgraph"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
	"gyokit/internal/tableau"
	"gyokit/internal/treefy"
	"gyokit/internal/treeproj"
)

// Core schema types (paper §2).
type (
	// Attr identifies an attribute within a Universe.
	Attr = schema.Attr
	// AttrSet is an immutable bitset of attributes.
	AttrSet = schema.AttrSet
	// Universe interns attribute names.
	Universe = schema.Universe
	// Schema is a database schema: a multiset of relation schemas.
	Schema = schema.Schema
)

// Graph and program types.
type (
	// JoinTree is an undirected graph over a schema's relations; when
	// returned by QualTree it satisfies the qual-graph property.
	JoinTree = graph.Undirected
	// Program is a join/semijoin/project statement sequence (§6).
	Program = program.Program
	// Relation is a relation state.
	Relation = relation.Relation
	// Database is a database state for a schema.
	Database = relation.Database
	// Value is a single attribute value.
	Value = relation.Value
	// Tuple is a row of a relation state.
	Tuple = relation.Tuple
	// Exec is a reusable relational execution context: one Exec
	// amortizes hash tables and scratch buffers across operator calls.
	Exec = relation.Exec
	// ParExec is the partition-parallel execution context: one Exec
	// per worker plus the parallelism policy.
	ParExec = relation.ParExec
	// Partitioning is a relation hash-partitioned into shards on a key
	// attribute subset.
	Partitioning = relation.Partitioning
	// Stats is the cost report of a Program.Eval run.
	Stats = program.Stats
	// StmtStat is one statement's observed cost within Stats.
	StmtStat = program.StmtStat
	// Tableau is a query tableau (§3.4).
	Tableau = tableau.Tableau
)

// Serving-layer types (internal/engine).
type (
	// Engine is the concurrent query-serving engine: plan cache, Exec
	// pool, and atomic database snapshots.
	Engine = engine.Engine
	// EngineOptions configures an Engine.
	EngineOptions = engine.Options
	// EngineStats is a snapshot of engine counters.
	EngineStats = engine.Stats
	// PreparedPlan is a cache-resident compiled query: classification
	// plus program.
	PreparedPlan = engine.Plan
	// EngineServer exposes an Engine over HTTP (the gyod API).
	EngineServer = engine.Server
)

// Conjunctive-query front end (internal/cq).
type (
	// CQ is a parsed conjunctive query in the Datalog-style grammar,
	// e.g. "ans(X, Z) :- r(X, Y), s(Y, Z).".
	CQ = cq.Query
	// CompiledCQ is a classified, planned conjunctive query: hypergraph,
	// free-connex/acyclic/cyclic kind, and the compiled program.
	CompiledCQ = cq.Compiled
	// CQKind labels a compiled query's planning class.
	CQKind = cq.Kind
)

// Analysis result types.
type (
	// Classification is the §3 status of a schema.
	Classification = core.Classification
	// JoinSolution is the §4 join-plan answer.
	JoinSolution = core.JoinSolution
	// LosslessReport is the §5 lossless-join analysis.
	LosslessReport = core.LosslessReport
	// ProgramAnalysis is the §6 tree-projection analysis.
	ProgramAnalysis = core.ProgramAnalysis
	// GYOResult is a (partial) GYO reduction outcome.
	GYOResult = gyo.Result
	// TPResult reports a tree-projection search.
	TPResult = treeproj.Result
)

// NewUniverse returns an empty attribute universe.
func NewUniverse() *Universe { return schema.NewUniverse() }

// NewExec returns a fresh relational execution context.
func NewExec() *Exec { return relation.NewExec() }

// NewParExec returns a partition-parallel execution context with p
// workers; Program.EvalPar runs join/semijoin statements shard-local
// across them.
func NewParExec(p int) *ParExec { return relation.NewParExec(p) }

// NewEngine returns a concurrent query-serving engine.
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// NewEngineServer returns the HTTP server over e; d (parsed into u) is
// the serving schema backing /solve and may be nil.
func NewEngineServer(e *Engine, u *Universe, d *Schema) *EngineServer {
	return engine.NewServer(e, u, d)
}

// ParseCQ parses a conjunctive query, e.g.
// "ans(X, Z) :- r(X, Y), s(Y, Z).". Errors carry line:column positions.
func ParseCQ(text string) (*CQ, error) { return cq.Parse(text) }

// CompileCQ parses, classifies, and plans a conjunctive query:
// free-connex queries get a rooted Yannakakis program with projections
// pushed below the semijoins, acyclic queries the standard Yannakakis
// program, cyclic queries a reduce-then-join fallback.
func CompileCQ(text string) (*CompiledCQ, error) { return cq.Compile(text) }

// NewSchema returns a schema over u with the given relation schemas.
func NewSchema(u *Universe, rels ...AttrSet) *Schema { return schema.New(u, rels...) }

// Parse parses the paper's compact notation, e.g. "ab, bc, cd".
func Parse(u *Universe, s string) (*Schema, error) { return schema.Parse(u, s) }

// MustParse is Parse that panics on error.
func MustParse(u *Universe, s string) *Schema { return schema.MustParse(u, s) }

// Aring returns the Aring of size n (§3.1).
func Aring(u *Universe, n int) *Schema { return schema.Aring(u, n, "") }

// Aclique returns the Aclique of size n (§3.1).
func Aclique(u *Universe, n int) *Schema { return schema.Aclique(u, n, "") }

// GYOReduce computes the GYO reduction GR(D, X) with sacred set X (§3.3).
func GYOReduce(d *Schema, x AttrSet) *GYOResult { return gyo.Reduce(d, x) }

// IsTreeSchema reports whether D is a tree schema (Corollary 3.1).
func IsTreeSchema(d *Schema) bool { return gyo.IsTree(d) }

// TreefyingRelation returns ∪GR(D), the least-cardinality relation
// whose addition makes D a tree schema (Corollary 3.2).
func TreefyingRelation(d *Schema) AttrSet { return gyo.TreefyingRelation(d) }

// QualTree returns a qual tree for D, with ok=false for cyclic schemas.
func QualTree(d *Schema) (t *JoinTree, ok bool) { return qualgraph.QualTree(d) }

// IsSubtree reports whether D′ is a subtree of tree schema D
// (Theorem 3.1(ii)).
func IsSubtree(d, dprime *Schema) bool { return qualgraph.IsSubtree(d, dprime) }

// CC computes the canonical connection CC(D, X) (§3.4), taking the
// Theorem 3.3(ii) GYO fast path on tree schemas.
func CC(d *Schema, x AttrSet) *Schema { return tableau.CC(d, x) }

// QueriesEquivalent decides (D, X) ≡ (D′, X) over universal databases
// (Lemma 3.2).
func QueriesEquivalent(d, dprime *Schema, x AttrSet) bool {
	return tableau.QueriesEquivalent(d, dprime, x)
}

// Classify computes the full §3 classification of d.
func Classify(d *Schema) (*Classification, error) { return core.Classify(d) }

// SolveByJoins computes CC(D, X) and the Corollary 4.1 join plan.
func SolveByJoins(d *Schema, x AttrSet) (*JoinSolution, error) { return core.SolveByJoins(d, x) }

// LosslessJoin decides ⋈D ⊨ ⋈D′ (Theorem 5.1, Corollary 5.2).
func LosslessJoin(d, dprime *Schema) (*LosslessReport, error) { return core.LosslessJoin(d, dprime) }

// Implies is the bare ⋈D ⊨ ⋈D′ decision (Theorem 5.1).
func Implies(d, dprime *Schema) bool { return lossless.Implies(d, dprime) }

// IsGammaAcyclic decides γ-acyclicity with the polynomial
// Theorem 5.3(ii) test.
func IsGammaAcyclic(d *Schema) bool { return gamma.IsGammaAcyclic(d) }

// TreePlan builds the full-reducer + Yannakakis program for (D, X) on
// tree schemas.
func TreePlan(d *Schema, x AttrSet) (*Program, error) { return core.TreePlan(d, x) }

// Plan builds a query plan for (D, X) on any schema: Yannakakis on
// tree schemas; on cyclic schemas the §4 strategy (materialize ∪GR(D)
// per Corollary 3.2, then solve the resulting tree schema).
func Plan(d *Schema, x AttrSet) (*Program, error) { return core.Plan(d, x) }

// AnalyzeProgram runs the §6 tree-projection analysis of p against
// (p.D, x) (Theorems 6.1–6.4).
func AnalyzeProgram(p *Program, x AttrSet) (*ProgramAnalysis, error) {
	return core.AnalyzeProgram(p, x)
}

// IsTreeProjection reports D″ ∈ TP(D′, D) (§3.2).
func IsTreeProjection(dpp, dprime, d *Schema) bool {
	return treeproj.IsTreeProjection(dpp, dprime, d)
}

// FindTreeProjection searches for a tree projection of D′ wrt D.
func FindTreeProjection(dprime, d *Schema) TPResult { return treeproj.Exists(dprime, d) }

// Treefy decides the fixed-treefication instance (D, K, B) via the
// Theorem 4.2 bin-packing route and returns witness relations.
// Exact for the theorem's Aclique family; see internal/treefy.
func Treefy(d *Schema, k, b int) (witness []AttrSet, ok bool) {
	return treefy.Solve(treefy.Instance{D: d, K: k, B: b})
}

// RandomURDatabase builds a universal-relation database over d with up
// to n universal tuples drawn from [0, domain) per column; when fewer
// than n distinct tuples exist the universal relation saturates below
// n (see relation.RandomUniversal for the retry bound).
func RandomURDatabase(d *Schema, n, domain int, seed int64) *Database {
	rng := rand.New(rand.NewSource(seed))
	i, _ := relation.RandomUniversal(d.U, d.Attrs(), n, domain, rng)
	return relation.URDatabase(d, i)
}
