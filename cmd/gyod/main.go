// Command gyod serves the paper's machinery over HTTP: schema
// classification, query planning, and query evaluation against an
// in-memory universal-relation database, backed by one shared
// concurrent engine (plan cache + Exec pool + snapshot swapping).
//
// Usage:
//
//	gyod [-addr :8080] [-schema "ab, bc, cd"] [-tuples 1000] [-domain 32] [-seed 1] [-cache 256]
//	     [-workers N]
//
// Endpoints (JSON in/out):
//
//	POST /classify  {"schema": "ab, bc, cd"}
//	POST /plan      {"schema": "ab, bc, cd", "x": "ad"}
//	POST /solve     {"x": "ad", "parallelism"?: 4}   evaluate on the server database
//	GET  /stats     engine counters and snapshot cardinalities
//	GET  /healthz
//
// Example:
//
//	gyod -schema "ab, bc, cd" -tuples 1000 &
//	curl -s localhost:8080/solve -d '{"x": "ad"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"time"

	"gyokit/internal/engine"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	schemaText := flag.String("schema", "ab, bc, cd", "serving schema in the paper's notation")
	tuples := flag.Int("tuples", 1000, "universal tuples to generate for the serving database")
	domain := flag.Int("domain", 32, "per-column value domain of the generated database")
	seed := flag.Int64("seed", 1, "generator seed")
	cache := flag.Int("cache", engine.DefaultPlanCacheSize, "plan-cache capacity (negative disables)")
	workers := flag.Int("workers", 0, "per-request parallelism cap (0 = GOMAXPROCS, 1 = always serial)")
	flag.Parse()

	u := schema.NewUniverse()
	d, err := schema.Parse(u, *schemaText)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gyod:", err)
		os.Exit(2)
	}

	e := engine.New(engine.Options{PlanCacheSize: *cache, Workers: *workers})
	rng := rand.New(rand.NewSource(*seed))
	univ, n := relation.RandomUniversal(u, d.Attrs(), *tuples, *domain, rng)
	e.Swap(relation.URDatabase(d, univ))

	srv := engine.NewServer(e, u, d)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("gyod: serving %s (%d universal tuples) on %s", d, n, *addr)
	log.Fatal(hs.ListenAndServe())
}
