// Command gyod serves the paper's machinery over HTTP: schema
// classification, query planning, query evaluation, and durable
// mutation of a universal-relation database, backed by one shared
// concurrent engine (plan cache + Exec pool + snapshot swapping) and,
// with -data, a write-ahead log with checkpointed snapshots
// (internal/storage) so acknowledged writes survive a crash.
//
// Usage:
//
//	gyod [-addr :8080] [-schema "ab, bc, cd"] [-tuples 1000] [-domain 32] [-seed 1] [-cache 256]
//	     [-workers N] [-data DIR] [-segbytes N] [-ckptbytes N] [-compactbytes N] [-nosync]
//	     [-pprof] [-slowquery 1s] [-gas 1000000] [-querytimeout 10s]
//	     [-follow URL] [-maxlag BYTES]
//
// Endpoints (JSON in/out, versioned under /v1):
//
//	POST /v1/classify  {"schema": "ab, bc, cd"}
//	POST /v1/plan      {"schema": "ab, bc, cd", "x": "ad"}
//	POST /v1/solve     {"x": "ad", "parallelism"?: 4}   evaluate on the server database
//	POST /v1/query     {"query": "ans(X,Z) :- ab(X,Y), bc(Y,Z)."}  conjunctive query,
//	                   free-connex-aware planning; also accepts a text/plain body
//	POST /v1/insert    {"rel": "ab", "tuples": [[1,2]]} durable insert batch
//	POST /v1/delete    {"rel": "ab", "tuples": [[1,2]]} durable delete batch
//	POST /v1/load      {"relations": [...]}             bulk ingest, one atomic batch
//	GET  /v1/stats     engine counters, per-relation cardinalities, durability, build info
//	GET  /v1/metrics   Prometheus text exposition (solve latency, plan cache, WAL, checkpoints)
//	GET  /v1/healthz   JSON readiness: leader WAL health; follower lag vs -maxlag (503 when not ready)
//	GET  /v1/replica/status   role, leader URL, applied cursor, lag (records/bytes/seconds)
//	POST /v1/promote   turn a follower into a leader: stop tailing, fence the cursor, open writes
//
// With -data, gyod also serves the replication feed under /v1/repl/
// (snapshot seeding plus WAL tailing). Start a read replica with
// -follow: a fresh -data directory seeds itself from the leader's
// snapshot, then tails its WAL, re-applying every batch through its
// own WAL — so a replica crash-recovers like any store. A replica
// serves all reads locally and answers writes with a typed 409 naming
// the leader ({"error": {"code": "read_only_replica", "leader": ...}}).
// POST /v1/promote fails the node over; a promoted directory refuses
// -follow (wipe and re-seed to rejoin a topology).
//
// The pre-versioning paths (/solve, /classify, ...) still work as
// deprecated aliases of their /v1 successors: identical responses plus
// a "Deprecation: true" header and a Link header naming the successor.
// /v1/query is new in /v1 and has no legacy alias. Errors on every
// endpoint share one JSON envelope:
// {"error": {"code", "message", "requestId"}}.
//
// /v1/query runs under two per-request rails: -gas caps the tuples one
// evaluation may produce across all program statements (exceeding it
// returns HTTP 429, code resource_exhausted) and -querytimeout bounds
// its wall-clock time (HTTP 504, code deadline_exceeded). Clients may
// tighten the deadline per request ("timeoutMs") but never loosen it.
//
// Observability: every reply carries a server-generated request id
// (X-Request-Id header, echoed in /v1/solve and /v1/query bodies and
// in error envelopes); requests slower than -slowquery are logged with
// that id, the query fingerprint, and the top-3 most expensive
// statements. -pprof additionally serves net/http/pprof under
// /debug/pprof/ (off by default).
//
// With -data DIR, the directory's recovered state is served (the
// -schema/-tuples generator only seeds a fresh directory, through the
// WAL, so even the seed is durable). Without -data the database is
// in-memory and mutations are lost on exit.
//
// gyod shuts down gracefully on SIGINT/SIGTERM: in-flight requests get
// a deadline, a final checkpoint is taken so the next boot replays an
// empty WAL tail, and the log is flushed and closed before exit.
//
// Example:
//
//	gyod -schema "ab, bc, cd" -tuples 1000 -data /var/lib/gyod &
//	curl -s localhost:8080/v1/insert -H 'content-type: application/json' -d '{"rel": "ab", "tuples": [[7,8]]}'
//	kill -9 %1; gyod -data /var/lib/gyod &          # recovers, [7,8] still there
//	curl -s localhost:8080/v1/solve -H 'content-type: application/json' -d '{"x": "ad"}'
//	curl -s localhost:8080/v1/query -H 'content-type: text/plain' -d 'ans(A, D) :- ab(A, B), bc(B, C), cd(C, D).'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gyokit/internal/engine"
	"gyokit/internal/obs"
	"gyokit/internal/relation"
	"gyokit/internal/repl"
	"gyokit/internal/schema"
	"gyokit/internal/storage"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gyod:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	schemaText := flag.String("schema", "ab, bc, cd", "serving schema in the paper's notation (seeds a fresh store)")
	tuples := flag.Int("tuples", 1000, "universal tuples to generate when seeding a fresh database")
	domain := flag.Int("domain", 32, "per-column value domain of the generated database")
	seed := flag.Int64("seed", 1, "generator seed")
	cache := flag.Int("cache", engine.DefaultPlanCacheSize, "plan-cache capacity (negative disables)")
	workers := flag.Int("workers", 0, "per-request parallelism cap (0 = GOMAXPROCS, 1 = always serial)")
	dataDir := flag.String("data", "", "durable storage directory (empty = in-memory only)")
	segBytes := flag.Int64("segbytes", storage.DefaultSegmentBytes, "WAL segment rotation threshold in bytes")
	ckptBytes := flag.Int64("ckptbytes", storage.DefaultCheckpointBytes, "live-WAL bytes that trigger a background checkpoint (negative disables)")
	compactBytes := flag.Int64("compactbytes", storage.DefaultCompactBytes, "chunk-store bytes past which checkpoint GC may compact (negative disables)")
	noSync := flag.Bool("nosync", false, "skip fsync on WAL appends (faster, loses crash durability)")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (off by default: exposes stacks and heap contents)")
	slowQuery := flag.Duration("slowquery", time.Second, "log /v1/solve and /v1/query requests slower than this (0 disables)")
	gas := flag.Int("gas", 1000000, "per-query gas budget: tuples one /v1/query evaluation may produce (0 disables)")
	queryTimeout := flag.Duration("querytimeout", 10*time.Second, "per-query deadline for /v1/query (0 disables)")
	follow := flag.String("follow", "", "run as a read replica of this leader base URL (requires -data)")
	maxLag := flag.Int64("maxlag", 1<<20, "replica lag in bytes past which /v1/healthz reports unavailable (0 disables)")
	flag.Parse()

	if *follow != "" && *dataDir == "" {
		return fmt.Errorf("-follow requires -data: a replica keeps its own durable store")
	}

	// One registry spans engine and store, so GET /metrics is the whole
	// server on one page.
	reg := obs.NewRegistry()
	opts := engine.Options{PlanCacheSize: *cache, Workers: *workers, Logf: log.Printf, Metrics: reg}
	var store *storage.Store
	if *dataDir != "" {
		if *follow != "" {
			// Seed or re-point the replica before opening the store: a
			// fresh directory is bootstrapped from the leader's snapshot
			// endpoint, an existing replica resumes from its own state.
			if err := repl.Bootstrap(*dataDir, *follow, nil, log.Printf); err != nil {
				return err
			}
		}
		var err error
		store, err = storage.Open(*dataDir, storage.Options{
			SegmentBytes:    *segBytes,
			CheckpointBytes: *ckptBytes,
			CompactBytes:    *compactBytes,
			NoSync:          *noSync,
			Metrics:         reg,
		})
		if err != nil {
			return err
		}
		defer store.Close()
		opts.Store = store
	}

	var e *engine.Engine
	var u *schema.Universe
	var d *schema.Schema
	switch {
	case store == nil:
		// In-memory: parse the schema and install a generated database.
		var err error
		u = schema.NewUniverse()
		if d, err = schema.Parse(u, *schemaText); err != nil {
			return err
		}
		e = engine.New(opts)
		rng := rand.New(rand.NewSource(*seed))
		univ, n := relation.RandomUniversal(u, d.Attrs(), *tuples, *domain, rng)
		e.Swap(relation.URDatabase(d, univ))
		log.Printf("gyod: serving %s in-memory (%d universal tuples)", d, n)
	case store.Empty():
		// Fresh store: seed the generated database through the WAL, so
		// even the initial state is durable and replayable.
		e = engine.New(opts)
		n, err := seedStore(e, *schemaText, *tuples, *domain, *seed)
		if err != nil {
			return err
		}
		db := e.Snapshot()
		u, d = db.D.U, db.D
		log.Printf("gyod: seeded fresh store %s with %s (%d universal tuples)", *dataDir, d, n)
	default:
		// Recovered store: serve exactly what the directory holds; the
		// -schema/-tuples flags are generator inputs and do not apply.
		e = engine.New(opts)
		db := e.Snapshot()
		u, d = db.D.U, db.D
		st := store.Stats()
		log.Printf("gyod: recovered %s from %s (%d WAL batches replayed, %d bytes live WAL)",
			d, *dataDir, st.Replayed, st.WALBytes)
	}

	srv := engine.NewServer(e, u, d)
	srv.SlowQuery = *slowQuery
	srv.Gas = *gas
	srv.QueryTimeout = *queryTimeout

	var tailer *repl.Tailer
	if *follow != "" {
		var err error
		tailer, err = repl.NewTailer(e, *dataDir, *follow, repl.Config{Logf: log.Printf, Metrics: reg})
		if err != nil {
			return err
		}
		srv.Replica = tailer
		srv.MaxLagBytes = *maxLag
		tailer.Start()
		log.Printf("gyod: following %s (read replica; writes answer 409)", *follow)
	}

	handler := srv.Handler()
	if store != nil {
		// Any durable node serves the replication feed: snapshot seeding
		// and WAL tailing under /v1/repl/. Mounted like pprof, on an
		// outer mux in front of the API.
		mux := http.NewServeMux()
		mux.Handle("/v1/repl/", repl.NewStreamer(e, reg, log.Printf))
		mux.Handle("/", handler)
		handler = mux
	}
	if *pprofOn {
		// pprof mounts on its own mux in front of the API: the DefaultServeMux
		// registrations done by the net/http/pprof import are deliberately not
		// served, so the profiles are exposed only behind the flag.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("gyod: pprof enabled under /debug/pprof/")
	}
	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("gyod: listening on %s", ln.Addr())

	// Serve until SIGINT/SIGTERM, then drain in-flight requests with a
	// deadline, checkpoint, and flush/close the WAL before exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case err := <-errCh:
		return err // listener failed before any signal
	case <-ctx.Done():
		stop()
		log.Printf("gyod: shutting down")
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("gyod: shutdown: %v", err)
	}
	if tailer != nil {
		// Stop tailing (and persist the replication cursor) before the
		// final checkpoint truncates the WAL that carries it.
		tailer.Stop()
	}
	if store != nil {
		if err := e.Checkpoint(); err != nil {
			log.Printf("gyod: final checkpoint: %v", err)
		}
		if err := store.Close(); err != nil {
			return fmt.Errorf("closing WAL: %w", err)
		}
	}
	log.Printf("gyod: bye")
	return nil
}

// seedStore generates the -schema/-tuples universal-relation database
// and ingests it through the engine's durable Apply path as ONE atomic
// batch (creates + per-relation insert batches): either the whole seed
// lands in the WAL or none of it, so a crash mid-seed leaves the store
// Empty and the next boot simply seeds again — never a half-seeded
// store that later boots silently serve. Returns the achieved
// universal-tuple count.
//
// The projections are computed over the parse universe, whose ids
// coincide with the store universe's: CreatesFor emits each relation's
// names in ascending parse-id order, which is exactly first-mention
// order, so replaying the creates interns identical ids and the raw
// arenas align column-for-column.
func seedStore(e *engine.Engine, schemaText string, tuples, domain int, seed int64) (int, error) {
	u := schema.NewUniverse()
	td, err := schema.Parse(u, schemaText)
	if err != nil {
		return 0, err
	}
	batch := storage.CreatesFor(td)
	n := 0
	if tuples > 0 {
		var univ *relation.Relation
		univ, n = relation.RandomUniversal(u, td.Attrs(), tuples, domain, rand.New(rand.NewSource(seed)))
		for i, r := range td.Rels {
			proj := univ.Project(r)
			if proj.Card() == 0 {
				continue
			}
			// A zero-width projection of a non-empty universal relation
			// is the single empty tuple; Width 0 encodes exactly that.
			batch = append(batch, storage.Mutation{
				Kind:   storage.KindInsert,
				Rel:    i,
				Width:  r.Card(),
				Values: proj.RawData(), // RawData is already a fresh flat copy

			})
		}
	}
	if _, _, err := e.Apply(batch...); err != nil {
		return 0, err
	}
	return n, nil
}
