package main

// End-to-end durability proof: build the real gyod binary, serve a
// -data directory, ingest over HTTP, hard-kill the process (SIGKILL —
// no flush, no shutdown path), restart it on the same directory, and
// require /solve to return results identical to before the kill for
// every acknowledged mutation. Plus the graceful half: SIGTERM must
// drain, checkpoint, close the WAL, and exit 0.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildGyod compiles the binary once per test run.
func buildGyod(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available:", err)
	}
	bin := filepath.Join(t.TempDir(), "gyod")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

type gyodProc struct {
	cmd      *exec.Cmd
	base     string // http://host:port
	done     chan error
	waitOnce sync.Once
	waitErr  error
}

// wait blocks until the process exits and returns its exit error
// (cached: safe to call repeatedly).
func (p *gyodProc) wait() error {
	p.waitOnce.Do(func() { p.waitErr = <-p.done })
	return p.waitErr
}

// startGyod launches the binary and waits for its "listening on" line.
func startGyod(t *testing.T, bin string, args ...string) *gyodProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &gyodProc{cmd: cmd, done: make(chan error, 1)}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	go func() { p.done <- cmd.Wait() }()
	select {
	case addr := <-addrCh:
		p.base = "http://" + addr
	case err := <-p.done:
		t.Fatalf("gyod exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("timeout waiting for gyod to listen")
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		p.wait()
	})
	return p
}

func (p *gyodProc) post(t *testing.T, path, body string) []byte {
	t.Helper()
	resp, err := http.Post(p.base+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s → %d: %s", path, resp.StatusCode, out)
	}
	return out
}

func TestGyodCrashRecoveryAndGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	bin := buildGyod(t)
	dataDir := filepath.Join(t.TempDir(), "data")

	// Boot 1: fresh store, empty database over "ab, bc, cd".
	p1 := startGyod(t, bin, "-data", dataDir, "-schema", "ab, bc, cd", "-tuples", "0")
	p1.post(t, "/load", `{"relations": [
		{"rel": "ab", "tuples": [[1,2],[3,4],[5,6]]},
		{"rel": "bc", "tuples": [[2,7],[4,8]]},
		{"rel": "cd", "tuples": [[7,9],[8,10]]}
	]}`)
	p1.post(t, "/insert", `{"rel": "ab", "tuples": [[11,12]]}`)
	p1.post(t, "/delete", `{"rel": "ab", "tuples": [[5,6]]}`)
	want := p1.post(t, "/solve", `{"x": "ad"}`)
	var wantSol map[string]any
	if err := json.Unmarshal(want, &wantSol); err != nil {
		t.Fatal(err)
	}
	if wantSol["card"].(float64) == 0 {
		t.Fatal("pre-kill /solve returned no tuples; test would prove nothing")
	}

	// Hard kill: no shutdown path runs.
	if err := p1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p1.wait()

	// Boot 2: recover and compare. The solve result must be identical
	// for every acknowledged mutation.
	p2 := startGyod(t, bin, "-data", dataDir)
	got := p2.post(t, "/solve", `{"x": "ad"}`)
	var gotSol map[string]any
	if err := json.Unmarshal(got, &gotSol); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(wantSol["card"]) != fmt.Sprint(gotSol["card"]) ||
		fmt.Sprint(wantSol["cols"]) != fmt.Sprint(gotSol["cols"]) ||
		fmt.Sprint(wantSol["tuples"]) != fmt.Sprint(gotSol["tuples"]) {
		t.Fatalf("post-recovery /solve differs:\n want %s\n got  %s", want, got)
	}

	// /stats reports the recovered relations and durability counters.
	resp, err := http.Get(p2.base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Relations []struct {
			Rel  string `json:"rel"`
			Card int    `json:"card"`
		} `json:"relations"`
		Durability *struct {
			Replayed uint64 `json:"replayed"`
		} `json:"durability"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Relations) != 3 || stats.Relations[0].Card != 3 {
		t.Fatalf("recovered /stats relations = %+v", stats.Relations)
	}
	if stats.Durability == nil || stats.Durability.Replayed == 0 {
		t.Fatalf("recovered /stats durability = %+v", stats.Durability)
	}

	// Graceful shutdown: SIGTERM → drain, final checkpoint, exit 0.
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitCh := make(chan error, 1)
	go func() { waitCh <- p2.wait() }()
	select {
	case err := <-waitCh:
		if err != nil {
			t.Fatalf("graceful shutdown exited non-zero: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("timeout waiting for graceful shutdown")
	}

	// Boot 3: the final checkpoint means a clean boot with an empty WAL
	// tail, and the state is still intact.
	p3 := startGyod(t, bin, "-data", dataDir)
	got3 := p3.post(t, "/solve", `{"x": "ad"}`)
	var got3Sol map[string]any
	if err := json.Unmarshal(got3, &got3Sol); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(wantSol["card"]) != fmt.Sprint(got3Sol["card"]) {
		t.Fatalf("post-shutdown /solve card differs: want %s, got %s", want, got3)
	}
	if err := p3.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	p3.wait()
}

func TestGyodInMemoryStillWorks(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	bin := buildGyod(t)
	p := startGyod(t, bin, "-schema", "ab, bc", "-tuples", "50")
	out := p.post(t, "/solve", `{"x": "ac"}`)
	var sol map[string]any
	if err := json.Unmarshal(out, &sol); err != nil {
		t.Fatal(err)
	}
	if _, ok := sol["card"]; !ok {
		t.Fatalf("/solve reply missing card: %s", out)
	}
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p.wait(); err != nil {
		t.Fatalf("in-memory graceful shutdown: %v", err)
	}
}
