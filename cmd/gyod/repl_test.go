package main

// Replication proof over real processes: a leader and a follower
// binary, ingest on the leader, identical query results on the
// follower, then the failover drill — SIGKILL the leader, promote the
// follower over HTTP, and require it to serve every acknowledged write
// and accept new ones.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// runGyodExpectExit runs the binary expecting an immediate startup
// refusal; returns nil if it exited cleanly (or served — a bug the
// caller detects), else the exit error with stderr attached.
func runGyodExpectExit(t *testing.T, bin string, args ...string) error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return nil
	}
	return fmt.Errorf("%v: %s", err, out)
}

// getJSON decodes a GET response body into out and returns the status.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp.StatusCode
}

// sameSolve compares the semantic fields of two /v1/solve replies,
// ignoring per-request noise (requestId, elapsed times).
func sameSolve(t *testing.T, a, b []byte) bool {
	t.Helper()
	var sa, sb map[string]any
	if err := json.Unmarshal(a, &sa); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &sb); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"cols", "card", "tuples"} {
		if fmt.Sprint(sa[k]) != fmt.Sprint(sb[k]) {
			return false
		}
	}
	return true
}

type replicaStatus struct {
	Role       string  `json:"role"`
	LeaderURL  string  `json:"leaderUrl"`
	LagBytes   int64   `json:"lagBytes"`
	LagRecords int64   `json:"lagRecords"`
	LagSeconds float64 `json:"lagSeconds"`
	Connected  bool    `json:"connected"`
	Diverged   bool    `json:"diverged"`
	LastError  string  `json:"lastError"`
}

// waitCaughtUp polls the follower until it reports zero lag.
func waitCaughtUp(t *testing.T, follower *gyodProc) replicaStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st replicaStatus
		getJSON(t, follower.base+"/v1/replica/status", &st)
		if st.Diverged {
			t.Fatalf("replica diverged: %s", st.LastError)
		}
		if st.Connected && st.LagBytes == 0 && st.LagRecords == 0 && st.LagSeconds == 0 {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestGyodReplicationPromote(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	bin := buildGyod(t)
	leaderDir := filepath.Join(t.TempDir(), "leader")
	replicaDir := filepath.Join(t.TempDir(), "replica")

	leader := startGyod(t, bin, "-data", leaderDir, "-schema", "ab, bc, cd", "-tuples", "0")
	leader.post(t, "/v1/load", `{"relations": [
		{"rel": "ab", "tuples": [[1,2],[3,4]]},
		{"rel": "bc", "tuples": [[2,7],[4,8]]},
		{"rel": "cd", "tuples": [[7,9],[8,10]]}
	]}`)

	follower := startGyod(t, bin, "-data", replicaDir, "-follow", leader.base)
	waitCaughtUp(t, follower)

	// The follower serves reads locally, identically to the leader.
	if l, f := leader.post(t, "/v1/solve", `{"x": "ad"}`), follower.post(t, "/v1/solve", `{"x": "ad"}`); !sameSolve(t, l, f) {
		t.Fatalf("/v1/solve differs:\n leader   %s\n follower %s", l, f)
	}

	// Writes are rejected with the typed leader redirect.
	resp, err := http.Post(follower.base+"/v1/insert", "application/json",
		strings.NewReader(`{"rel": "ab", "tuples": [[90,91]]}`))
	if err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		Error struct {
			Code   string `json:"code"`
			Leader string `json:"leader"`
		} `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&envelope)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusConflict {
		t.Fatalf("follower insert: status %d, decode %v", resp.StatusCode, err)
	}
	if envelope.Error.Code != "read_only_replica" || envelope.Error.Leader != leader.base {
		t.Fatalf("follower insert envelope = %+v", envelope)
	}

	// Both sides are ready.
	var health struct {
		Status string `json:"status"`
		Role   string `json:"role"`
	}
	if code := getJSON(t, leader.base+"/v1/healthz", &health); code != 200 || health.Role != "leader" {
		t.Fatalf("leader healthz = %d %+v", code, health)
	}
	if code := getJSON(t, follower.base+"/v1/healthz", &health); code != 200 || health.Role != "follower" {
		t.Fatalf("follower healthz = %d %+v", code, health)
	}

	// More acknowledged writes, streamed (not re-seeded); capture the
	// ground truth the ex-follower must still serve after the failover.
	leader.post(t, "/v1/insert", `{"rel": "ab", "tuples": [[11,12],[13,14]]}`)
	leader.post(t, "/v1/delete", `{"rel": "ab", "tuples": [[3,4]]}`)
	want := leader.post(t, "/v1/solve", `{"x": "ad"}`)
	waitCaughtUp(t, follower)

	// The leader dies without any shutdown path.
	if err := leader.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	leader.wait()

	// Promote the survivor.
	promoted := follower.post(t, "/v1/promote", "")
	var st replicaStatus
	if err := json.Unmarshal(promoted, &st); err != nil {
		t.Fatal(err)
	}
	if st.Role != "leader" {
		t.Fatalf("post-promote status = %s", promoted)
	}

	// Nothing acknowledged was lost, and writes are open.
	if got := follower.post(t, "/v1/solve", `{"x": "ad"}`); !sameSolve(t, want, got) {
		t.Fatalf("post-promote /v1/solve differs:\n want %s\n got  %s", want, got)
	}
	follower.post(t, "/v1/insert", `{"rel": "ab", "tuples": [[21,22]]}`)
	if code := getJSON(t, follower.base+"/v1/healthz", &health); code != 200 || health.Role != "leader" {
		t.Fatalf("promoted healthz = %d %+v", code, health)
	}

	// The promotion fence is durable: a restart with -follow is refused,
	// a plain restart serves the promoted state including the new write.
	follower.post(t, "/v1/solve", `{"x": "ad"}`) // state settles before SIGTERM
	if err := follower.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	follower.wait()

	refused := runGyodExpectExit(t, bin, "-data", replicaDir, "-follow", "http://127.0.0.1:1")
	if refused == nil || !strings.Contains(refused.Error(), "promoted") {
		t.Fatalf("restart with -follow on a promoted dir = %v, want refusal", refused)
	}

	reborn := startGyod(t, bin, "-data", replicaDir)
	var stats struct {
		Relations []struct {
			Rel  string `json:"rel"`
			Card int    `json:"card"`
		} `json:"relations"`
	}
	getJSON(t, reborn.base+"/v1/stats", &stats)
	// ab saw [1,2],[3,4] seeded, [11,12],[13,14] replicated, [3,4]
	// deleted, [21,22] written post-promote: 4 rows survive the crash.
	if len(stats.Relations) == 0 || stats.Relations[0].Rel != "ab" || stats.Relations[0].Card != 4 {
		t.Fatalf("post-promote state lost across restart: %+v", stats.Relations)
	}
}
