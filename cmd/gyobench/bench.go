package main

// Benchmark-trajectory support: -json converts `go test -bench` text
// output into a stable BENCH_<sha>.json document, and -gate compares
// such a document against a committed baseline, failing on
// regressions. CI runs both (see .github/workflows/ci.yml,
// bench-trajectory job):
//
//	go test -run '^$' -bench . -benchtime=3x -count=3 ./... > bench.out
//	gyobench -json -sha "$GITHUB_SHA" < bench.out > BENCH_$GITHUB_SHA.json
//	gyobench -gate BENCH_baseline.json < BENCH_$GITHUB_SHA.json

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// BenchFile is the BENCH_<sha>.json document: one entry per benchmark
// (sub-benchmarks keep their full slash-separated name), aggregated
// over -count repetitions by minimum, the standard noise-robust
// reduction.
type BenchFile struct {
	SchemaVersion int          `json:"schemaVersion"`
	SHA           string       `json:"sha,omitempty"`
	GoOS          string       `json:"goos"`
	GoArch        string       `json:"goarch"`
	Benchmarks    []BenchEntry `json:"benchmarks"`
}

// BenchEntry is one benchmark's aggregated result.
type BenchEntry struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"` // -count repetitions seen
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp,omitempty"`
	AllocsPerOp int64   `json:"allocsPerOp,omitempty"`
}

// benchLine matches `go test -bench` result lines, e.g.
//
//	BenchmarkJoinColumnar/n=10000-8  	     100	   7301234 ns/op	  12 B/op	   3 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// stripProcs removes the trailing -<GOMAXPROCS> suffix go test appends
// to benchmark names, so documents from machines with different core
// counts stay comparable.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseBenchText reads `go test -bench` output and aggregates result
// lines per benchmark name (minimum ns/op across repetitions).
func parseBenchText(r io.Reader) ([]BenchEntry, error) {
	agg := map[string]*BenchEntry{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := stripProcs(m[1])
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		e, ok := agg[name]
		if !ok {
			e = &BenchEntry{Name: name, NsPerOp: ns}
			agg[name] = e
			order = append(order, name)
		}
		e.Runs++
		if ns < e.NsPerOp {
			e.NsPerOp = ns
		}
		if m[4] != "" {
			if b, err := strconv.ParseInt(m[4], 10, 64); err == nil && (e.Runs == 1 || b < e.BytesPerOp) {
				e.BytesPerOp = b
			}
		}
		if m[5] != "" {
			if a, err := strconv.ParseInt(m[5], 10, 64); err == nil && (e.Runs == 1 || a < e.AllocsPerOp) {
				e.AllocsPerOp = a
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(agg) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found on stdin")
	}
	out := make([]BenchEntry, 0, len(agg))
	for _, name := range order {
		out = append(out, *agg[name])
	}
	return out, nil
}

// emitJSON converts bench text on stdin to a BenchFile on stdout.
func emitJSON(sha string) error {
	entries, err := parseBenchText(os.Stdin)
	if err != nil {
		return err
	}
	doc := BenchFile{
		SchemaVersion: 1,
		SHA:           sha,
		GoOS:          runtime.GOOS,
		GoArch:        runtime.GOARCH,
		Benchmarks:    entries,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// gate compares the BenchFile on stdin against the baseline file:
// every baseline benchmark whose name matches pattern must not be
// slower than maxRegress × its baseline ns/op in the current document.
// Benchmarks present only on one side are reported but (for new ones)
// tolerated; a gated baseline benchmark missing from the current run
// fails, since silence must not pass the gate.
func gate(baselinePath, pattern string, maxRegress float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base BenchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	var cur BenchFile
	if err := json.NewDecoder(os.Stdin).Decode(&cur); err != nil {
		return fmt.Errorf("current document (stdin): %w", err)
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("gate pattern: %w", err)
	}
	curByName := map[string]BenchEntry{}
	for _, e := range cur.Benchmarks {
		curByName[e.Name] = e
	}
	var failures []string
	var failedNames []string
	names := make([]string, 0, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		if re.MatchString(b.Name) {
			names = append(names, b.Name)
		}
	}
	sort.Strings(names)
	byName := map[string]BenchEntry{}
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	for _, name := range names {
		b := byName[name]
		c, ok := curByName[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current run", name))
			failedNames = append(failedNames, name)
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		status := "ok"
		if ratio > maxRegress {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (%.2fx > %.2fx)",
				name, c.NsPerOp, b.NsPerOp, ratio, maxRegress))
			failedNames = append(failedNames, name)
		}
		fmt.Printf("%-60s %12.0f %12.0f %8.2fx  %s\n", name, b.NsPerOp, c.NsPerOp, ratio, status)
	}
	if len(names) == 0 {
		return fmt.Errorf("gate pattern %q matches no baseline benchmarks", pattern)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed >%.0f%% in famil%s %s:\n  %s",
			len(failures), (maxRegress-1)*100,
			plural(benchFamilies(failedNames), "y", "ies"),
			strings.Join(benchFamilies(failedNames), ", "),
			strings.Join(failures, "\n  "))
	}
	fmt.Printf("gate passed: %d benchmark(s) within %.0f%% of baseline\n", len(names), (maxRegress-1)*100)
	return nil
}

// benchFamilies reduces full benchmark names to their top-level family
// (the segment before the first '/'), deduplicated and sorted, so a
// gate failure names the families that regressed without the reader
// having to parse the per-benchmark lines.
func benchFamilies(names []string) []string {
	seen := map[string]bool{}
	var fams []string
	for _, n := range names {
		fam, _, _ := strings.Cut(n, "/")
		if !seen[fam] {
			seen[fam] = true
			fams = append(fams, fam)
		}
	}
	sort.Strings(fams)
	return fams
}

// plural picks the singular or plural suffix by element count.
func plural[T any](s []T, one, many string) string {
	if len(s) == 1 {
		return one
	}
	return many
}
