// Command gyobench regenerates every experiment in EXPERIMENTS.md: the
// paper's figures and worked examples (asserted reproductions) plus
// the synthetic performance tables. With -parallel it instead becomes
// a load driver that hammers a serving engine from N goroutines; with
// -json / -gate it is the benchmark-trajectory tool CI uses to record
// and police performance.
//
// Usage:
//
//	gyobench              run everything
//	gyobench -run sec6    run one experiment by id
//	gyobench -list        list experiment ids
//	gyobench -time        print per-experiment wall time
//	gyobench -parallel 8 [-duration 2s] [-schema "ab, bc, cd"]
//	                      [-tuples 5000] [-domain 32] [-nowriter]
//	                      [-shards P]
//	                      load-test an Engine; report throughput and
//	                      p50/p95/p99 latency
//	gyobench -ingest 100000 [-batch 128] [-datadir DIR] [-nosync]
//	                      drive the durable write path (WAL + snapshot
//	                      publish); report tuples/sec and verify by
//	                      reopening the store
//	gyobench -follower URL [-leader URL] [-parallel 4] [-duration 2s]
//	                      [-schema "ab, bc, cd"] [-batch 128] [-domain 32]
//	                      drive read load against a running replica over
//	                      HTTP (optionally ingesting through the leader);
//	                      report p50/p95/p99 latency and observed lag
//	gyobench -json [-sha SHA] < bench.out > BENCH_SHA.json
//	                      convert `go test -bench` output to JSON
//	gyobench -gate BENCH_baseline.json [-gatepattern 'Join|Semijoin']
//	                      [-maxregress 1.2] < BENCH_SHA.json
//	                      fail if gated benchmarks regressed
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gyokit/internal/engine"
	"gyokit/internal/exp"
	"gyokit/internal/obs"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

func main() {
	run := flag.String("run", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids")
	timed := flag.Bool("time", false, "print per-experiment wall time")
	parallel := flag.Int("parallel", 0, "load-driver mode: number of query goroutines")
	duration := flag.Duration("duration", 2*time.Second, "load-driver run time")
	schemaText := flag.String("schema", "ab, bc, cd, de", "load-driver serving schema")
	tuples := flag.Int("tuples", 5000, "load-driver universal tuples")
	domain := flag.Int("domain", 32, "load-driver value domain")
	nowriter := flag.Bool("nowriter", false, "load-driver: disable the snapshot-swapping writer")
	shards := flag.Int("shards", 1, "load-driver: per-request partition parallelism (1 = serial)")
	ingest := flag.Int("ingest", 0, "ingest-driver mode: total tuples to write durably")
	batch := flag.Int("batch", 128, "ingest-driver: tuples per Apply batch")
	dataDir := flag.String("datadir", "", "ingest-driver: store directory (default: a temp dir, removed after)")
	noSync := flag.Bool("nosync", false, "ingest-driver: skip fsync on WAL appends")
	emit := flag.Bool("json", false, "convert `go test -bench` output on stdin to BENCH json on stdout")
	sha := flag.String("sha", os.Getenv("GITHUB_SHA"), "commit sha recorded by -json")
	gateBaseline := flag.String("gate", "", "baseline BENCH json to gate stdin against")
	gatePattern := flag.String("gatepattern", "Join|Semijoin|ReplApply", "regexp selecting gated benchmarks")
	maxRegress := flag.Float64("maxregress", 1.20, "max allowed current/baseline ns-per-op ratio")
	follower := flag.String("follower", "", "follower-driver mode: base URL of a read replica to load-test")
	leaderURL := flag.String("leader", "", "follower-driver: leader base URL to ingest through during the run")
	flag.Parse()

	if *follower != "" {
		if *parallel <= 0 {
			*parallel = 4
		}
		if err := followerDrive(*follower, *leaderURL, *parallel, *duration, *schemaText, *domain, *batch, *emit); err != nil {
			fmt.Fprintln(os.Stderr, "gyobench: FAILED:", err)
			os.Exit(1)
		}
		return
	}
	if *parallel > 0 {
		// -json here switches the load report (including the metrics
		// scrape deltas) to machine-readable output; without -parallel it
		// keeps its original meaning of converting `go test -bench` text.
		if err := loadDrive(*parallel, *duration, *schemaText, *tuples, *domain, !*nowriter, *shards, *emit); err != nil {
			fmt.Fprintln(os.Stderr, "gyobench: FAILED:", err)
			os.Exit(1)
		}
		return
	}
	if *emit {
		if err := emitJSON(*sha); err != nil {
			fmt.Fprintln(os.Stderr, "gyobench: FAILED:", err)
			os.Exit(1)
		}
		return
	}
	if *gateBaseline != "" {
		if err := gate(*gateBaseline, *gatePattern, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "gyobench: FAILED:", err)
			os.Exit(1)
		}
		return
	}
	if *ingest > 0 {
		if err := ingestDrive(*ingest, *batch, *dataDir, *schemaText, *domain, *noSync); err != nil {
			fmt.Fprintln(os.Stderr, "gyobench: FAILED:", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *run != "" {
		e, ok := exp.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "gyobench: unknown experiment %q (try -list)\n", *run)
			os.Exit(2)
		}
		if err := exp.RunOne(e, os.Stdout, *timed); err != nil {
			fmt.Fprintln(os.Stderr, "gyobench: FAILED:", err)
			os.Exit(1)
		}
		return
	}
	if err := exp.RunAllTimed(os.Stdout, *timed); err != nil {
		fmt.Fprintln(os.Stderr, "gyobench: FAILED:", err)
		os.Exit(1)
	}
	fmt.Println("all experiments passed")
}

// loadDrive hammers one Engine from n goroutines for the given
// duration — the serving-path counterpart of the library benchmarks.
// Workers cycle through every attribute pair of the schema as query
// targets (so traffic mixes plan-cache hits with evictions), while an
// optional writer keeps deriving copy-on-write snapshots and swapping
// them in. Each request runs with the given partition parallelism.
// It reports aggregate throughput, per-request latency percentiles,
// and cache behavior.
//
// The run has two phases — a warm-up pass over every target (plans
// compiled, pools primed) and the measured load — with a metrics
// scrape between them and one after, exactly as an external Prometheus
// would scrape a gyod. The per-series deltas isolate what the measured
// phase did; with jsonOut the whole report, deltas included, is one
// JSON object on stdout.
func loadDrive(n int, d time.Duration, schemaText string, tuples, domain int, writer bool, shards int, jsonOut bool) error {
	u := schema.NewUniverse()
	sch, err := schema.Parse(u, schemaText)
	if err != nil {
		return err
	}
	attrs := sch.Attrs().Attrs()
	if len(attrs) < 2 {
		return fmt.Errorf("schema needs at least two attributes")
	}
	var targets []schema.AttrSet
	for i := 0; i < len(attrs); i++ {
		for j := i + 1; j < len(attrs); j++ {
			targets = append(targets, schema.NewAttrSet(attrs[i], attrs[j]))
		}
	}

	e := engine.New(engine.Options{Workers: shards})
	univ, got := relation.RandomUniversal(u, sch.Attrs(), tuples, domain, rand.New(rand.NewSource(1)))
	e.Swap(relation.URDatabase(sch, univ))

	// Phase 1: warm-up — solve every target once so plans are compiled
	// and pools primed before anything is measured.
	for _, x := range targets {
		if _, _, err := e.SolvePar(sch, x, shards); err != nil {
			return err
		}
	}
	// Scrape between phases: the delta against the post-run scrape
	// isolates exactly what the measured load did.
	before, err := scrapeMetrics(e)
	if err != nil {
		return err
	}

	if !jsonOut {
		fmt.Printf("load-driving %s (%d universal tuples, %d query targets) with %d goroutines for %v",
			sch, got, len(targets), n, d)
		if shards > 1 {
			fmt.Printf(" at parallelism %d", e.ClampParallelism(shards))
		}
		if writer {
			fmt.Printf(" + 1 writer")
		}
		fmt.Println()
	}

	stop := make(chan struct{})
	var swaps int64
	var writerWG sync.WaitGroup
	if writer {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(2))
			for {
				select {
				case <-stop:
					return
				default:
				}
				e.Update(func(snap *relation.Database) *relation.Database {
					ri := rng.Intn(len(snap.Rels))
					tup := make(relation.Tuple, len(snap.Rels[ri].Cols()))
					for k := range tup {
						tup[k] = relation.Value(rng.Intn(domain))
					}
					return snap.InsertTuple(ri, tup)
				})
				atomic.AddInt64(&swaps, 1)
				time.Sleep(time.Millisecond)
			}
		}()
	}

	// Latencies are kept per goroutine in a bounded reservoir (uniform
	// sample once full), so a long -duration run cannot grow the heap
	// without limit or perturb the numbers it is measuring.
	const reservoirCap = 1 << 16
	lats := make([][]time.Duration, n)
	ops := make([]int64, n)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(d)
	var errMu sync.Mutex
	var firstErr error
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; time.Now().Before(deadline); i++ {
				x := targets[(g+i)%len(targets)]
				t0 := time.Now()
				if _, _, err := e.SolvePar(sch, x, shards); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				lat := time.Since(t0)
				ops[g]++
				if len(lats[g]) < reservoirCap {
					lats[g] = append(lats[g], lat)
				} else if j := rng.Int63n(ops[g]); j < reservoirCap {
					lats[g][j] = lat
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	writerWG.Wait()
	if firstErr != nil {
		return firstErr
	}

	var total int64
	for _, o := range ops {
		total += o
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	after, err := scrapeMetrics(e)
	if err != nil {
		return err
	}
	deltas := metricsDelta(before, after)
	st := e.Stats()
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	}

	if jsonOut {
		report := struct {
			Schema        string             `json:"schema"`
			Goroutines    int                `json:"goroutines"`
			Parallelism   int                `json:"parallelism"`
			Writer        bool               `json:"writer"`
			DurationSec   float64            `json:"durationSec"`
			Queries       int64              `json:"queries"`
			QueriesPerSec float64            `json:"queriesPerSec"`
			LatencyNs     map[string]int64   `json:"latencyNs,omitempty"`
			PlanHits      uint64             `json:"planHits"`
			PlanMisses    uint64             `json:"planMisses"`
			Swaps         int64              `json:"swaps,omitempty"`
			MetricsDelta  map[string]float64 `json:"metricsDelta"`
		}{
			Schema:        sch.String(),
			Goroutines:    n,
			Parallelism:   e.ClampParallelism(shards),
			Writer:        writer,
			DurationSec:   elapsed.Seconds(),
			Queries:       total,
			QueriesPerSec: float64(total) / elapsed.Seconds(),
			PlanHits:      st.PlanHits,
			PlanMisses:    st.PlanMisses,
			Swaps:         atomic.LoadInt64(&swaps),
			MetricsDelta:  deltas,
		}
		if len(all) > 0 {
			report.LatencyNs = map[string]int64{
				"p50": percentile(all, 50).Nanoseconds(),
				"p95": percentile(all, 95).Nanoseconds(),
				"p99": percentile(all, 99).Nanoseconds(),
				"max": all[len(all)-1].Nanoseconds(),
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}

	fmt.Printf("total:      %d queries in %v\n", total, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f queries/sec aggregate (%.0f /sec/goroutine)\n",
		float64(total)/elapsed.Seconds(), float64(total)/elapsed.Seconds()/float64(n))
	if len(all) > 0 {
		fmt.Printf("latency:    p50 %v  p95 %v  p99 %v  max %v\n",
			percentile(all, 50), percentile(all, 95), percentile(all, 99), all[len(all)-1])
	}
	fmt.Printf("plan cache: %d hits, %d misses, %d resident\n", st.PlanHits, st.PlanMisses, st.CachedPlans)
	if shards > 1 {
		fmt.Printf("parallel:   %d of %d evals ran partition-parallel\n", st.ParEvals, st.Evals)
	}
	if writer {
		fmt.Printf("snapshots:  %d swaps during the run\n", atomic.LoadInt64(&swaps))
	}
	if len(deltas) > 0 {
		fmt.Printf("metrics:    %d series moved during the measured phase; notable deltas:\n", len(deltas))
		for _, k := range obs.SortedKeys(deltas) {
			if strings.Contains(k, "_bucket{") {
				continue // bucket lines swamp the summary; counts and sums tell the story
			}
			fmt.Printf("  %-56s %+g\n", k, deltas[k])
		}
	}
	return nil
}

// scrapeMetrics serializes the engine's registry to Prometheus text and
// parses it back — the in-process equivalent of curling /metrics, so
// the deltas the driver reports are exactly what an external scraper
// would see.
func scrapeMetrics(e *engine.Engine) (map[string]float64, error) {
	var buf bytes.Buffer
	if err := e.Metrics().WriteText(&buf); err != nil {
		return nil, err
	}
	return obs.ParseText(&buf)
}

// metricsDelta returns after-minus-before for every series that moved.
func metricsDelta(before, after map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// percentile returns the p-th percentile of sorted latencies by the
// nearest-rank method.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
