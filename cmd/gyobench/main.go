// Command gyobench regenerates every experiment in EXPERIMENTS.md: the
// paper's figures and worked examples (asserted reproductions) plus
// the synthetic performance tables.
//
// Usage:
//
//	gyobench              run everything
//	gyobench -run sec6    run one experiment by id
//	gyobench -list        list experiment ids
//	gyobench -time        print per-experiment wall time
package main

import (
	"flag"
	"fmt"
	"os"

	"gyokit/internal/exp"
)

func main() {
	run := flag.String("run", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids")
	timed := flag.Bool("time", false, "print per-experiment wall time")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *run != "" {
		e, ok := exp.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "gyobench: unknown experiment %q (try -list)\n", *run)
			os.Exit(2)
		}
		if err := exp.RunOne(e, os.Stdout, *timed); err != nil {
			fmt.Fprintln(os.Stderr, "gyobench: FAILED:", err)
			os.Exit(1)
		}
		return
	}
	if err := exp.RunAllTimed(os.Stdout, *timed); err != nil {
		fmt.Fprintln(os.Stderr, "gyobench: FAILED:", err)
		os.Exit(1)
	}
	fmt.Println("all experiments passed")
}
