// Command gyobench regenerates every experiment in EXPERIMENTS.md: the
// paper's figures and worked examples (asserted reproductions) plus
// the synthetic performance tables. With -parallel it instead becomes
// a load driver that hammers a serving engine from N goroutines.
//
// Usage:
//
//	gyobench              run everything
//	gyobench -run sec6    run one experiment by id
//	gyobench -list        list experiment ids
//	gyobench -time        print per-experiment wall time
//	gyobench -parallel 8 [-duration 2s] [-schema "ab, bc, cd"]
//	                      [-tuples 5000] [-domain 32] [-nowriter]
//	                      load-test an Engine and report throughput
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gyokit/internal/engine"
	"gyokit/internal/exp"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

func main() {
	run := flag.String("run", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids")
	timed := flag.Bool("time", false, "print per-experiment wall time")
	parallel := flag.Int("parallel", 0, "load-driver mode: number of query goroutines")
	duration := flag.Duration("duration", 2*time.Second, "load-driver run time")
	schemaText := flag.String("schema", "ab, bc, cd, de", "load-driver serving schema")
	tuples := flag.Int("tuples", 5000, "load-driver universal tuples")
	domain := flag.Int("domain", 32, "load-driver value domain")
	nowriter := flag.Bool("nowriter", false, "load-driver: disable the snapshot-swapping writer")
	flag.Parse()

	if *parallel > 0 {
		if err := loadDrive(*parallel, *duration, *schemaText, *tuples, *domain, !*nowriter); err != nil {
			fmt.Fprintln(os.Stderr, "gyobench: FAILED:", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *run != "" {
		e, ok := exp.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "gyobench: unknown experiment %q (try -list)\n", *run)
			os.Exit(2)
		}
		if err := exp.RunOne(e, os.Stdout, *timed); err != nil {
			fmt.Fprintln(os.Stderr, "gyobench: FAILED:", err)
			os.Exit(1)
		}
		return
	}
	if err := exp.RunAllTimed(os.Stdout, *timed); err != nil {
		fmt.Fprintln(os.Stderr, "gyobench: FAILED:", err)
		os.Exit(1)
	}
	fmt.Println("all experiments passed")
}

// loadDrive hammers one Engine from n goroutines for the given
// duration — the serving-path counterpart of the library benchmarks.
// Workers cycle through every attribute pair of the schema as query
// targets (so traffic mixes plan-cache hits with evictions), while an
// optional writer keeps deriving copy-on-write snapshots and swapping
// them in. It reports aggregate throughput and cache behavior.
func loadDrive(n int, d time.Duration, schemaText string, tuples, domain int, writer bool) error {
	u := schema.NewUniverse()
	sch, err := schema.Parse(u, schemaText)
	if err != nil {
		return err
	}
	attrs := sch.Attrs().Attrs()
	if len(attrs) < 2 {
		return fmt.Errorf("schema needs at least two attributes")
	}
	var targets []schema.AttrSet
	for i := 0; i < len(attrs); i++ {
		for j := i + 1; j < len(attrs); j++ {
			targets = append(targets, schema.NewAttrSet(attrs[i], attrs[j]))
		}
	}

	e := engine.New(engine.Options{})
	univ, got := relation.RandomUniversal(u, sch.Attrs(), tuples, domain, rand.New(rand.NewSource(1)))
	e.Swap(relation.URDatabase(sch, univ))

	fmt.Printf("load-driving %s (%d universal tuples, %d query targets) with %d goroutines for %v",
		sch, got, len(targets), n, d)
	if writer {
		fmt.Printf(" + 1 writer")
	}
	fmt.Println()

	stop := make(chan struct{})
	var swaps int64
	var writerWG sync.WaitGroup
	if writer {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(2))
			for {
				select {
				case <-stop:
					return
				default:
				}
				e.Update(func(snap *relation.Database) *relation.Database {
					ri := rng.Intn(len(snap.Rels))
					tup := make(relation.Tuple, len(snap.Rels[ri].Cols()))
					for k := range tup {
						tup[k] = relation.Value(rng.Intn(domain))
					}
					return snap.InsertTuple(ri, tup)
				})
				atomic.AddInt64(&swaps, 1)
				time.Sleep(time.Millisecond)
			}
		}()
	}

	ops := make([]int64, n)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(d)
	var errMu sync.Mutex
	var firstErr error
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				x := targets[(g+i)%len(targets)]
				if _, _, err := e.Solve(sch, x); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				ops[g]++
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	writerWG.Wait()
	if firstErr != nil {
		return firstErr
	}

	var total int64
	for _, o := range ops {
		total += o
	}
	st := e.Stats()
	fmt.Printf("total:      %d queries in %v\n", total, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f queries/sec aggregate (%.0f /sec/goroutine)\n",
		float64(total)/elapsed.Seconds(), float64(total)/elapsed.Seconds()/float64(n))
	fmt.Printf("plan cache: %d hits, %d misses, %d resident\n", st.PlanHits, st.PlanMisses, st.CachedPlans)
	if writer {
		fmt.Printf("snapshots:  %d swaps during the run\n", atomic.LoadInt64(&swaps))
	}
	return nil
}
