package main

// Follower load driver: hammer a read replica with /v1/solve over HTTP
// while (optionally) writing through the leader, and report what a
// client of the replica actually experiences — read latency
// percentiles plus the replication lag observed over the run. This is
// the serving-path complement of BenchmarkReplApply: that measures the
// apply loop in isolation, this measures a whole leader→follower pair
// under concurrent load.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gyokit/internal/schema"
)

type replicaStatusProbe struct {
	Role       string  `json:"role"`
	LagBytes   int64   `json:"lagBytes"`
	LagRecords int64   `json:"lagRecords"`
	LagSeconds float64 `json:"lagSeconds"`
	Connected  bool    `json:"connected"`
	Diverged   bool    `json:"diverged"`
	LastError  string  `json:"lastError"`
}

// followerDrive runs n read goroutines against the replica for the
// given duration, cycling through every attribute pair of schemaText
// as /v1/solve targets. With a leader URL it also runs one writer
// posting insert batches, so the lag samples reflect a replica that is
// actually chasing. The schema must match what the pair serves.
func followerDrive(followerURL, leaderURL string, n int, d time.Duration, schemaText string, domain, batchSize int, jsonOut bool) error {
	u := schema.NewUniverse()
	sch, err := schema.Parse(u, schemaText)
	if err != nil {
		return err
	}
	attrs := sch.Attrs().Attrs()
	var targets []string
	for i := 0; i < len(attrs); i++ {
		for j := i + 1; j < len(attrs); j++ {
			targets = append(targets, u.FormatSet(schema.NewAttrSet(attrs[i], attrs[j])))
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("schema needs at least two attributes")
	}

	client := &http.Client{Timeout: 30 * time.Second}
	var st replicaStatusProbe
	if err := getStatus(client, followerURL, &st); err != nil {
		return fmt.Errorf("probing %s: %w", followerURL, err)
	}
	if !jsonOut {
		fmt.Printf("driving %s (role %s) with %d readers for %v", followerURL, st.Role, n, d)
		if leaderURL != "" {
			fmt.Printf(" + 1 writer via %s", leaderURL)
		}
		fmt.Println()
	}

	stop := make(chan struct{})
	var wrote int64
	var writerWG sync.WaitGroup
	if leaderURL != "" {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(7))
			relName := u.FormatSet(sch.Rels[0])
			width := sch.Rels[0].Card()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tuples := make([][]int, batchSize)
				for i := range tuples {
					row := make([]int, width)
					for k := range row {
						row[k] = rng.Intn(domain)
					}
					tuples[i] = row
				}
				body, _ := json.Marshal(map[string]any{"rel": relName, "tuples": tuples})
				resp, err := client.Post(leaderURL+"/v1/insert", "application/json", bytes.NewReader(body))
				if err == nil {
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						atomic.AddInt64(&wrote, int64(batchSize))
					}
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	// One sampler records the lag the replica reports while under load.
	type lagSample struct {
		bytes   int64
		records int64
	}
	var lagMu sync.Mutex
	var lags []lagSample
	disconnects := 0
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				var s replicaStatusProbe
				if err := getStatus(client, followerURL, &s); err != nil {
					continue
				}
				lagMu.Lock()
				if s.LagBytes >= 0 {
					lags = append(lags, lagSample{s.LagBytes, s.LagRecords})
				}
				if !s.Connected {
					disconnects++
				}
				lagMu.Unlock()
			}
		}
	}()

	const reservoirCap = 1 << 16
	lats := make([][]time.Duration, n)
	ops := make([]int64, n)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	start := time.Now()
	deadline := start.Add(d)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; time.Now().Before(deadline); i++ {
				body, _ := json.Marshal(map[string]string{"x": targets[(g+i)%len(targets)]})
				t0 := time.Now()
				resp, err := client.Post(followerURL+"/v1/solve", "application/json", bytes.NewReader(body))
				if err == nil {
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("/v1/solve answered %s", resp.Status)
					}
				}
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				lat := time.Since(t0)
				ops[g]++
				if len(lats[g]) < reservoirCap {
					lats[g] = append(lats[g], lat)
				} else if j := rng.Int63n(ops[g]); j < reservoirCap {
					lats[g][j] = lat
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	writerWG.Wait()
	samplerWG.Wait()
	if firstErr != nil {
		return firstErr
	}

	var total int64
	for _, o := range ops {
		total += o
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	var maxLagBytes, sumLagBytes, maxLagRecords int64
	for _, s := range lags {
		sumLagBytes += s.bytes
		if s.bytes > maxLagBytes {
			maxLagBytes = s.bytes
		}
		if s.records > maxLagRecords {
			maxLagRecords = s.records
		}
	}
	var final replicaStatusProbe
	_ = getStatus(client, followerURL, &final)

	if jsonOut {
		report := struct {
			Follower      string           `json:"follower"`
			Leader        string           `json:"leader,omitempty"`
			Goroutines    int              `json:"goroutines"`
			DurationSec   float64          `json:"durationSec"`
			Queries       int64            `json:"queries"`
			QueriesPerSec float64          `json:"queriesPerSec"`
			LatencyNs     map[string]int64 `json:"latencyNs,omitempty"`
			TuplesWritten int64            `json:"tuplesWritten,omitempty"`
			LagSamples    int              `json:"lagSamples"`
			MaxLagBytes   int64            `json:"maxLagBytes"`
			MeanLagBytes  int64            `json:"meanLagBytes"`
			MaxLagRecords int64            `json:"maxLagRecords"`
			Disconnects   int              `json:"disconnects"`
			FinalLagBytes int64            `json:"finalLagBytes"`
			Diverged      bool             `json:"diverged,omitempty"`
		}{
			Follower:      followerURL,
			Leader:        leaderURL,
			Goroutines:    n,
			DurationSec:   elapsed.Seconds(),
			Queries:       total,
			QueriesPerSec: float64(total) / elapsed.Seconds(),
			TuplesWritten: atomic.LoadInt64(&wrote),
			LagSamples:    len(lags),
			MaxLagBytes:   maxLagBytes,
			MaxLagRecords: maxLagRecords,
			Disconnects:   disconnects,
			FinalLagBytes: final.LagBytes,
			Diverged:      final.Diverged,
		}
		if len(lags) > 0 {
			report.MeanLagBytes = sumLagBytes / int64(len(lags))
		}
		if len(all) > 0 {
			report.LatencyNs = map[string]int64{
				"p50": percentile(all, 50).Nanoseconds(),
				"p95": percentile(all, 95).Nanoseconds(),
				"p99": percentile(all, 99).Nanoseconds(),
				"max": all[len(all)-1].Nanoseconds(),
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}

	fmt.Printf("total:      %d queries in %v\n", total, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f queries/sec aggregate\n", float64(total)/elapsed.Seconds())
	if len(all) > 0 {
		fmt.Printf("latency:    p50 %v  p95 %v  p99 %v  max %v\n",
			percentile(all, 50), percentile(all, 95), percentile(all, 99), all[len(all)-1])
	}
	if leaderURL != "" {
		fmt.Printf("writes:     %d tuples ingested through the leader\n", atomic.LoadInt64(&wrote))
	}
	if len(lags) > 0 {
		fmt.Printf("lag:        max %d bytes (%d records), mean %d bytes over %d samples, final %d bytes\n",
			maxLagBytes, maxLagRecords, sumLagBytes/int64(len(lags)), len(lags), final.LagBytes)
	}
	if disconnects > 0 {
		fmt.Printf("warning:    replica reported disconnected in %d samples\n", disconnects)
	}
	if final.Diverged {
		return fmt.Errorf("replica diverged during the run: %s", final.LastError)
	}
	return nil
}

func getStatus(client *http.Client, base string, out *replicaStatusProbe) error {
	resp, err := client.Get(base + "/v1/replica/status")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/v1/replica/status answered %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
