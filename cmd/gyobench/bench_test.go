package main

import (
	"reflect"
	"testing"
)

func TestBenchFamilies(t *testing.T) {
	got := benchFamilies([]string{
		"JoinColumnar/n=50000",
		"JoinColumnar/n=10000",
		"SemijoinProgramParallel/p=4/n=10000",
		"QueryParse",
	})
	want := []string{"JoinColumnar", "QueryParse", "SemijoinProgramParallel"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("benchFamilies = %v, want %v", got, want)
	}
}

func TestPlural(t *testing.T) {
	if got := plural([]string{"a"}, "y", "ies"); got != "y" {
		t.Fatalf("plural(1) = %q, want \"y\"", got)
	}
	if got := plural([]string{"a", "b"}, "y", "ies"); got != "ies" {
		t.Fatalf("plural(2) = %q, want \"ies\"", got)
	}
}
