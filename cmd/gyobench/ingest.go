package main

// Ingest-driver mode: hammer the durable write path (engine.Apply →
// copy-on-write snapshot → WAL append → publish) and report sustained
// throughput, then prove the bytes by reopening the store and checking
// every relation's cardinality against the live engine's.

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"gyokit/internal/engine"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
	"gyokit/internal/storage"
)

func ingestDrive(total, batch int, dir, schemaText string, domain int, noSync bool) error {
	if batch <= 0 {
		return fmt.Errorf("-batch must be positive")
	}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "gyobench-ingest-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	st, err := storage.Open(dir, storage.Options{NoSync: noSync})
	if err != nil {
		return err
	}
	defer st.Close()
	if !st.Empty() {
		return fmt.Errorf("store %s is not empty; ingest-driver needs a fresh directory", dir)
	}
	e := engine.New(engine.Options{Store: st})

	// Create the schema's relations through the WAL.
	td, err := schema.Parse(schema.NewUniverse(), schemaText)
	if err != nil {
		return err
	}
	widths := make([]int, len(td.Rels))
	for i, r := range td.Rels {
		widths[i] = r.Card()
	}
	if _, _, err := e.Apply(storage.CreatesFor(td)...); err != nil {
		return err
	}

	sync := "fsync"
	if noSync {
		sync = "nosync"
	}
	fmt.Printf("ingesting %d tuples into %s in batches of %d (%s) at %s\n",
		total, td, batch, sync, dir)

	rng := rand.New(rand.NewSource(1))
	written := 0
	start := time.Now()
	for rel := 0; written < total; rel = (rel + 1) % len(widths) {
		n := batch
		if total-written < n {
			n = total - written
		}
		w := widths[rel]
		tuples := make([]relation.Tuple, n)
		for i := range tuples {
			t := make(relation.Tuple, w)
			for j := range t {
				t[j] = relation.Value(rng.Intn(domain))
			}
			tuples[i] = t
		}
		if _, _, err := e.Apply(storage.Insert(rel, w, tuples)); err != nil {
			return err
		}
		written += n
	}
	elapsed := time.Since(start)
	sst := st.Stats()
	fmt.Printf("ingest:     %d tuples in %v (%.0f tuples/sec, %d Apply batches)\n",
		written, elapsed.Round(time.Millisecond), float64(written)/elapsed.Seconds(), sst.Appends)
	fmt.Printf("wal:        %d bytes across %d segments (%.1f MB/s), %d checkpoints\n",
		sst.WALBytes, sst.Segments, float64(sst.WALBytes)/1e6/elapsed.Seconds(), sst.Checkpoints)

	// Verification: a fresh Open must reconstruct exactly the served
	// snapshot.
	if err := e.Checkpoint(); err != nil {
		return err
	}
	if err := st.Close(); err != nil {
		return err
	}
	st2, err := storage.Open(dir, storage.Options{NoSync: true})
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	defer st2.Close()
	live, rec := e.Snapshot(), st2.State()
	if len(live.Rels) != len(rec.Rels) {
		return fmt.Errorf("verify: recovered %d relations, served %d", len(rec.Rels), len(live.Rels))
	}
	for i := range live.Rels {
		if live.Rels[i].Card() != rec.Rels[i].Card() {
			return fmt.Errorf("verify: relation %d card %d ≠ served %d", i, rec.Rels[i].Card(), live.Rels[i].Card())
		}
	}
	fmt.Printf("verify:     reopen reconstructed all %d relations bit-for-bit cardinalities\n", len(live.Rels))
	return nil
}
