// Command gyo analyzes database schemas with the paper's machinery.
//
// Usage:
//
//	gyo classify  "ab, bc, cd"            tree/cyclic/γ status, GR(D), qual tree
//	gyo reduce    [-x attrs] "schema"     GYO reduction trace GR(D, X)
//	gyo cc        -x attrs "schema"       canonical connection CC(D, X)
//	gyo jointree  "schema"                qual tree edges
//	gyo lossless  "schema" "subschema"    decide ⋈D ⊨ ⋈D′
//	gyo treefy    [-k n] [-b n] "schema"  treefication (Cor. 3.2 / Thm 4.2)
//	gyo witness   "schema"                Lemma 3.1 cyclicity certificate
//
// Schemas use the paper's notation: single-letter attributes, relation
// schemas separated by commas, e.g. "abg, bcg, acf, ad, de, ea".
package main

import (
	"flag"
	"fmt"
	"os"

	"gyokit"
	"gyokit/internal/gyo"
	"gyokit/internal/schema"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "classify":
		err = cmdClassify(args)
	case "reduce":
		err = cmdReduce(args)
	case "cc":
		err = cmdCC(args)
	case "jointree":
		err = cmdJoinTree(args)
	case "lossless":
		err = cmdLossless(args)
	case "treefy":
		err = cmdTreefy(args)
	case "witness":
		err = cmdWitness(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gyo:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: gyo <classify|reduce|cc|jointree|lossless|treefy|witness> [flags] "schema" ...`)
}

func parseSchema(u *gyokit.Universe, s string) (*gyokit.Schema, error) {
	return gyokit.Parse(u, s)
}

func cmdClassify(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("classify needs one schema argument")
	}
	u := gyokit.NewUniverse()
	d, err := parseSchema(u, args[0])
	if err != nil {
		return err
	}
	cls, err := gyokit.Classify(d)
	if err != nil {
		return err
	}
	kind := "cyclic"
	if cls.Tree {
		kind = "tree"
	}
	fmt.Printf("schema:      %s\n", d)
	fmt.Printf("type:        %s\n", kind)
	fmt.Printf("γ-acyclic:   %v\n", cls.GammaAcyclic)
	fmt.Printf("GR(D):       %s\n", cls.GR)
	if cls.Tree {
		fmt.Printf("qual tree:   %v\n", cls.QualTree.Edges())
	} else {
		fmt.Printf("treefy with: %s (Corollary 3.2)\n", u.FormatSet(cls.TreefyingRelation))
	}
	return nil
}

func cmdReduce(args []string) error {
	fs := flag.NewFlagSet("reduce", flag.ContinueOnError)
	sacred := fs.String("x", "", "sacred attributes (never deleted), e.g. \"abc\"")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("reduce needs one schema argument")
	}
	u := gyokit.NewUniverse()
	d, err := parseSchema(u, fs.Arg(0))
	if err != nil {
		return err
	}
	x := schema.MustSet(u, *sacred)
	res := gyokit.GYOReduce(d, x)
	fmt.Printf("D:        %s\n", d)
	if !x.IsEmpty() {
		fmt.Printf("X:        %s\n", u.FormatSet(x))
	}
	for i, op := range res.Trace {
		switch op.Kind {
		case gyo.AttrDelete:
			fmt.Printf("step %-3d  delete attribute %s from R%d (%s)\n",
				i+1, u.Name(op.Attr), op.Rel, u.FormatSet(d.Rels[op.Rel]))
		case gyo.SubsetEliminate:
			fmt.Printf("step %-3d  eliminate R%d (⊆ R%d)\n", i+1, op.Rel, op.Into)
		}
	}
	fmt.Printf("GR(D, X): %s\n", res.GR)
	fmt.Printf("empty:    %v (tree schema iff true when X = ∅)\n", res.Empty())
	return nil
}

func cmdCC(args []string) error {
	fs := flag.NewFlagSet("cc", flag.ContinueOnError)
	target := fs.String("x", "", "target attributes, e.g. \"abc\"")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *target == "" {
		return fmt.Errorf("cc needs -x target and one schema argument")
	}
	u := gyokit.NewUniverse()
	d, err := parseSchema(u, fs.Arg(0))
	if err != nil {
		return err
	}
	x := schema.MustSet(u, *target)
	sol, err := gyokit.SolveByJoins(d, x)
	if err != nil {
		return err
	}
	fmt.Printf("D:          %s\n", d)
	fmt.Printf("X:          %s\n", u.FormatSet(x))
	fmt.Printf("CC(D, X):   %s\n", sol.CC)
	fmt.Printf("sources:    %v\n", sol.Sources)
	fmt.Printf("irrelevant: %v\n", sol.Irrelevant)
	return nil
}

func cmdJoinTree(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("jointree needs one schema argument")
	}
	u := gyokit.NewUniverse()
	d, err := parseSchema(u, args[0])
	if err != nil {
		return err
	}
	t, ok := gyokit.QualTree(d)
	if !ok {
		return fmt.Errorf("%s is a cyclic schema: no qual tree exists", d)
	}
	fmt.Printf("schema: %s\n", d)
	for _, e := range t.Edges() {
		fmt.Printf("  %s — %s\n", u.FormatSet(d.Rels[e[0]]), u.FormatSet(d.Rels[e[1]]))
	}
	return nil
}

func cmdLossless(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("lossless needs two schema arguments (D and D′)")
	}
	u := gyokit.NewUniverse()
	d, err := parseSchema(u, args[0])
	if err != nil {
		return err
	}
	dp, err := parseSchema(u, args[1])
	if err != nil {
		return err
	}
	rep, err := gyokit.LosslessJoin(d, dp)
	if err != nil {
		return err
	}
	fmt.Printf("D:           %s\n", d)
	fmt.Printf("D′:          %s\n", dp)
	fmt.Printf("⋈D ⊨ ⋈D′:    %v\n", rep.Holds)
	fmt.Printf("CC(D, ∪D′):  %s\n", rep.CC)
	if rep.SubtreeApplicable {
		fmt.Printf("subtree:     %v (Corollary 5.2)\n", rep.Subtree)
	}
	return nil
}

func cmdTreefy(args []string) error {
	fs := flag.NewFlagSet("treefy", flag.ContinueOnError)
	k := fs.Int("k", 1, "maximum number of added relations")
	b := fs.Int("b", 0, "maximum size of each added relation (0 = unbounded)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("treefy needs one schema argument")
	}
	u := gyokit.NewUniverse()
	d, err := parseSchema(u, fs.Arg(0))
	if err != nil {
		return err
	}
	if gyokit.IsTreeSchema(d) {
		fmt.Printf("%s is already a tree schema\n", d)
		return nil
	}
	bound := *b
	if bound == 0 {
		bound = d.Attrs().Card()
	}
	w, ok := gyokit.Treefy(d, *k, bound)
	if !ok {
		return fmt.Errorf("no treefication with K=%d relations of size ≤ %d (via the Theorem 4.2 component bound)", *k, bound)
	}
	fmt.Printf("D: %s\n", d)
	fmt.Printf("add %d relation(s):\n", len(w))
	for _, s := range w {
		fmt.Printf("  %s\n", u.FormatSet(s))
	}
	return nil
}

func cmdWitness(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("witness needs one schema argument")
	}
	u := gyokit.NewUniverse()
	d, err := parseSchema(u, args[0])
	if err != nil {
		return err
	}
	x, core, kind, found := schema.Lemma31Witness(d)
	if !found {
		fmt.Printf("%s is a tree schema (no Lemma 3.1 witness)\n", d)
		return nil
	}
	fmt.Printf("D:       %s\n", d)
	fmt.Printf("delete:  %s\n", u.FormatSet(x))
	fmt.Printf("core:    %s (%s)\n", core, kind)
	return nil
}
