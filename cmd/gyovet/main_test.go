package main

// End-to-end tests of the `go vet -vettool` protocol: build the real
// gyovet binary, point `go vet` at it from a scratch module, and
// assert red (seeded violation fails the build with the analyzer name
// in the output) and green (clean module passes).

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildGyovet compiles the gyovet binary once per test run.
func buildGyovet(t *testing.T) string {
	t.Helper()
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "gyovet")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/gyovet")
	cmd.Dir = repoRoot
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building gyovet: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a scratch module for `go vet` to chew on.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runVet(t *testing.T, dir, vettool string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+vettool, "./...")
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	return out.String(), err
}

const scratchGoMod = "module scratchvet\n\ngo 1.23\n"

func TestVettoolFailsOnViolation(t *testing.T) {
	bin := buildGyovet(t)
	dir := writeModule(t, map[string]string{
		"go.mod": scratchGoMod,
		"main.go": `package main

import "net/http"

func main() {
	http.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {})
	_ = http.ListenAndServe(":0", nil)
}
`,
	})
	out, err := runVet(t, dir, bin)
	if err == nil {
		t.Fatalf("go vet passed on a module with seeded violations; output:\n%s", out)
	}
	if !strings.Contains(out, "[nodefaultmux]") {
		t.Fatalf("vet output does not name the nodefaultmux analyzer:\n%s", out)
	}
	if strings.Count(out, "[nodefaultmux]") != 2 {
		t.Errorf("want 2 nodefaultmux findings (HandleFunc + nil handler), output:\n%s", out)
	}
}

func TestVettoolPassesCleanModule(t *testing.T) {
	bin := buildGyovet(t)
	dir := writeModule(t, map[string]string{
		"go.mod": scratchGoMod,
		"main.go": `package main

import "net/http"

func main() {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {})
	srv := &http.Server{Addr: ":0", Handler: mux}
	_ = srv.ListenAndServe()
}
`,
	})
	if out, err := runVet(t, dir, bin); err != nil {
		t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
	}
}

func TestVettoolHonorsNolint(t *testing.T) {
	bin := buildGyovet(t)
	dir := writeModule(t, map[string]string{
		"go.mod": scratchGoMod,
		"main.go": `package main

import "net/http"

func main() {
	http.HandleFunc("/", nil) //gyo:nolint nodefaultmux scratch fixture proving suppression end to end
}
`,
	})
	if out, err := runVet(t, dir, bin); err != nil {
		t.Fatalf("go vet did not honor a reasoned //gyo:nolint: %v\n%s", err, out)
	}

	bare := writeModule(t, map[string]string{
		"go.mod": scratchGoMod,
		"main.go": `package main

import "net/http"

func main() {
	http.HandleFunc("/", nil) //gyo:nolint nodefaultmux
}
`,
	})
	out, err := runVet(t, bare, bin)
	if err == nil {
		t.Fatalf("bare //gyo:nolint (no reason) must fail the build; output:\n%s", out)
	}
	if !strings.Contains(out, "[nolint]") {
		t.Errorf("bare directive not reported by the nolint pseudo-analyzer:\n%s", out)
	}
	if !strings.Contains(out, "[nodefaultmux]") {
		t.Errorf("bare directive must not suppress the underlying finding:\n%s", out)
	}
}

// TestVersionFlag locks the -V=full contract the go command depends on
// for its build cache: ≥3 fields, literal "version", and a
// content-derived final field so a rebuilt gyovet invalidates cached
// vet results.
func TestVersionFlag(t *testing.T) {
	bin := buildGyovet(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("gyovet -V=full: %v", err)
	}
	f := strings.Fields(strings.TrimSpace(string(out)))
	if len(f) < 3 || f[0] != "gyovet" || f[1] != "version" {
		t.Fatalf("-V=full output %q; want \"gyovet version <ver>\"", out)
	}
	if f[2] == "devel" {
		t.Fatalf("-V=full reports %q; a bare \"devel\" version defeats go vet result caching", f[2])
	}
}

func TestFlagsProbe(t *testing.T) {
	bin := buildGyovet(t)
	out, err := exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("gyovet -flags: %v", err)
	}
	if got := strings.TrimSpace(string(out)); got != "[]" {
		t.Fatalf("gyovet -flags = %q, want \"[]\"", got)
	}
}
