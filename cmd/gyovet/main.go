// Command gyovet is gyokit's custom static-analysis driver: it runs
// the internal/analysis suite (frozenmut, atomicsnap, errenvelope,
// ackorder, metricname, nodefaultmux, droppederr) over the tree and
// fails on any unsuppressed finding.
//
// Two modes share the analyzers:
//
//	gyovet [packages...]           standalone: loads packages via the
//	                               go command (default ./...)
//	go vet -vettool=<gyovet> ./... build-integrated: gyovet speaks the
//	                               vet tool protocol (-V=full, -flags,
//	                               unit.cfg) so findings cache per
//	                               package and cover _test.go units
//
// Suppress a finding with `//gyo:nolint <analyzer> <reason>` on the
// offending line; the reason is mandatory (a bare nolint is itself an
// unsuppressable finding). See README.md "Static analysis".
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"gyokit/internal/analysis"
)

func main() {
	log := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "gyovet: "+format+"\n", args...)
	}

	var (
		vFlag     = flag.String("V", "", "print version and exit (vet tool protocol)")
		flagsFlag = flag.Bool("flags", false, "print flag descriptions in JSON and exit (vet tool protocol)")
		listFlag  = flag.Bool("list", false, "list analyzers and exit")
		pathFlag  = flag.Bool("print-path", false, "print this executable's path and exit")
	)
	flag.Parse()

	switch {
	case *vFlag != "":
		// `go vet` hashes this line into its build cache key; the
		// content hash makes a rebuilt gyovet invalidate cached vet
		// results (the "devel" form requires a buildID= suffix).
		fmt.Printf("gyovet version 1.0.0-%s\n", selfHash())
		return
	case *flagsFlag:
		fmt.Println("[]")
		return
	case *listFlag:
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	case *pathFlag:
		exe, err := os.Executable()
		if err != nil {
			log("%v", err)
			os.Exit(1)
		}
		fmt.Println(exe)
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0], log))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args, log))
}

// selfHash returns a short content hash of the running executable.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

// runStandalone loads the named packages from source and reports
// findings. Exit status 1 = findings, 2 = driver failure.
func runStandalone(patterns []string, log func(string, ...any)) int {
	wd, err := os.Getwd()
	if err != nil {
		log("%v", err)
		return 2
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		log("%v", err)
		return 2
	}
	exit := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(pkg, analysis.All())
		if err != nil {
			log("%s: %v", pkg.Path, err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d.Format(pkg.Fset))
			exit = 1
		}
	}
	return exit
}

// vetConfig is the JSON compilation-unit description `go vet` hands to
// a -vettool (the unitchecker protocol).
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoVersion   string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// runUnit analyzes the single compilation unit described by cfgFile.
func runUnit(cfgFile string, log func(string, ...any)) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log("%v", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log("decoding %s: %v", cfgFile, err)
		return 2
	}
	// The suite computes no cross-package facts, but the go command
	// caches the fact ("vetx") output file per dependency; writing an
	// empty one keeps those invocations cached and instant.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log("%v", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			log("%v", err)
			return 2
		}
		files = append(files, f)
	}
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(ip string) (*types.Package, error) {
			if mapped, ok := cfg.ImportMap[ip]; ok {
				ip = mapped
			}
			return compilerImporter.Import(ip)
		}),
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := analysis.NewTypesInfo()
	tpkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log("%v", err)
		return 2
	}
	diags, err := analysis.RunPackage(&analysis.Package{
		Path:  cfg.ImportPath,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, analysis.All())
	if err != nil {
		log("%s: %v", cfg.ImportPath, err)
		return 2
	}
	exit := 0
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.Format(fset))
		exit = 1
	}
	return exit
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
