package gyokit_test

import (
	"fmt"
	"testing"

	"gyokit"
)

// ExampleClassify demonstrates the §3 classification on Figure 1's
// schemas.
func ExampleClassify() {
	u := gyokit.NewUniverse()
	for _, s := range []string{"ab, bc, cd", "ab, bc, ac"} {
		d := gyokit.MustParse(u, s)
		cls, err := gyokit.Classify(d)
		if err != nil {
			panic(err)
		}
		kind := "cyclic"
		if cls.Tree {
			kind = "tree"
		}
		fmt.Printf("%s is a %s schema\n", d, kind)
	}
	// Output:
	// (ab, bc, cd) is a tree schema
	// (ab, bc, ac) is a cyclic schema
}

// ExampleSolveByJoins reproduces the §6 pruning example.
func ExampleSolveByJoins() {
	u := gyokit.NewUniverse()
	d := gyokit.MustParse(u, "abg, bcg, acf, ad, de, ea")
	sol, err := gyokit.SolveByJoins(d, u.Set("a", "b", "c"))
	if err != nil {
		panic(err)
	}
	fmt.Println("CC(D, abc) =", sol.CC.SortedString())
	fmt.Println("irrelevant relations:", sol.Irrelevant)
	// Output:
	// CC(D, abc) = (abg, ac, bcg)
	// irrelevant relations: [3 4 5]
}

// ExampleLosslessJoin reproduces the §5.1 example.
func ExampleLosslessJoin() {
	u := gyokit.NewUniverse()
	d := gyokit.MustParse(u, "abc, ab, bc")
	rep, err := gyokit.LosslessJoin(d, gyokit.MustParse(u, "ab, bc"))
	if err != nil {
		panic(err)
	}
	fmt.Println("⋈D ⊨ ⋈(ab, bc):", rep.Holds)
	fmt.Println("subtree of D:", rep.Subtree)
	// Output:
	// ⋈D ⊨ ⋈(ab, bc): false
	// subtree of D: false
}

func TestFacadeSmoke(t *testing.T) {
	u := gyokit.NewUniverse()
	ring := gyokit.Aring(u, 5)
	if gyokit.IsTreeSchema(ring) {
		t.Error("Aring(5) should be cyclic")
	}
	if gyokit.IsGammaAcyclic(ring) {
		t.Error("Aring(5) should not be γ-acyclic")
	}
	if _, ok := gyokit.QualTree(ring); ok {
		t.Error("cyclic schema has no qual tree")
	}
	tf := gyokit.TreefyingRelation(ring)
	if tf.Card() != 5 {
		t.Errorf("treefying relation size = %d", tf.Card())
	}
	aug := ring.WithRel(tf)
	if !gyokit.IsTreeSchema(aug) {
		t.Error("∪GR(D) did not treefy")
	}
	cl := gyokit.Aclique(gyokit.NewUniverse(), 4)
	if gyokit.IsTreeSchema(cl) {
		t.Error("Aclique(4) should be cyclic")
	}
}

func TestFacadeEndToEndQuery(t *testing.T) {
	u := gyokit.NewUniverse()
	d := gyokit.MustParse(u, "ab, bc, cd, de")
	x := u.Set("a", "e")
	plan, err := gyokit.TreePlan(d, x)
	if err != nil {
		t.Fatal(err)
	}
	db := gyokit.RandomURDatabase(d, 30, 4, 7)
	got, _, err := plan.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	want := db.Eval(x)
	if !got.Equal(want) {
		t.Error("TreePlan disagrees with naive evaluation")
	}
	an, err := gyokit.AnalyzeProgram(plan, x)
	if err != nil {
		t.Fatal(err)
	}
	if !an.TPWrtCC.Found {
		t.Error("solving program must admit a tree projection (Theorem 6.4)")
	}
}

func TestFacadeTreeProjection(t *testing.T) {
	u := gyokit.NewUniverse()
	d := gyokit.MustParse(u, "ab, bc, cd, de, ef, fg, gh, ha")
	dp := gyokit.MustParse(u, "abef, abch, cdgh, defg, ef")
	res := gyokit.FindTreeProjection(dp, d)
	if !res.Found {
		t.Fatal("§3.2 witness not found")
	}
	if !gyokit.IsTreeProjection(res.TP, dp, d) {
		t.Error("witness fails verification")
	}
}

func TestFacadeTreefy(t *testing.T) {
	u := gyokit.NewUniverse()
	ring := gyokit.Aring(u, 4)
	w, ok := gyokit.Treefy(ring, 1, 4)
	if !ok || len(w) != 1 || w[0].Card() != 4 {
		t.Errorf("Treefy(Aring(4), 1, 4) = %v, %v", w, ok)
	}
	if _, ok := gyokit.Treefy(ring, 1, 3); ok {
		t.Error("B=3 cannot cover a 4-attribute component")
	}
}

func TestFacadeQueriesEquivalent(t *testing.T) {
	u := gyokit.NewUniverse()
	d := gyokit.MustParse(u, "abc, ab, bc")
	dp := gyokit.MustParse(u, "abc")
	x := u.Set("a", "b", "c")
	if !gyokit.QueriesEquivalent(d, dp, x) {
		t.Error("(D, abc) should equal ((abc), abc)")
	}
	if !gyokit.CC(d, x).SetEqual(gyokit.MustParse(u, "abc")) {
		t.Error("CC wrong")
	}
	if !gyokit.Implies(d, dp) {
		t.Error("⋈D ⊨ ⋈(abc) should hold")
	}
	if !gyokit.IsSubtree(d, dp) {
		t.Error("(abc) should be a subtree")
	}
}

func TestFacadeGYOReduce(t *testing.T) {
	u := gyokit.NewUniverse()
	d := gyokit.MustParse(u, "abc, ab, bc")
	res := gyokit.GYOReduce(d, u.Set("a", "b", "c"))
	if res.GR.String() != "(abc)" {
		t.Errorf("GR = %s", res.GR)
	}
	s := gyokit.NewSchema(u, u.Set("a", "b"))
	if s.Len() != 1 {
		t.Error("NewSchema wrong")
	}
}

func TestFacadeEngine(t *testing.T) {
	u := gyokit.NewUniverse()
	d := gyokit.MustParse(u, "ab, bc, cd")
	x := u.Set("a", "d")
	db := gyokit.RandomURDatabase(d, 50, 4, 1)

	e := gyokit.NewEngine(gyokit.EngineOptions{})
	e.Swap(db)
	got, stats, err := e.Solve(d, x)
	if err != nil {
		t.Fatal(err)
	}
	if stats == nil || got.Card() == 0 {
		t.Fatalf("Solve returned card %d", got.Card())
	}
	if !got.Equal(db.Eval(x)) {
		t.Error("engine result ≠ naive eval")
	}
	if _, _, err := e.Solve(d, x); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.PlanHits == 0 || st.Evals != 2 {
		t.Errorf("engine stats = %+v", st)
	}
	if d.Fingerprint() != gyokit.MustParse(u, "cd, ab, bc").Fingerprint() {
		t.Error("Fingerprint not order-independent through the facade")
	}
}
