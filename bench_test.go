// Benchmarks backing the E-PERF rows of EXPERIMENTS.md: one benchmark
// family per synthetic table. Run with
//
//	go test -bench=. -benchmem
package gyokit_test

import (
	"fmt"
	"testing"

	"gyokit"
	"gyokit/internal/gamma"
	"gyokit/internal/gen"
	"gyokit/internal/gyo"
	"gyokit/internal/lossless"
	"gyokit/internal/program"
	"gyokit/internal/qualgraph"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
	"gyokit/internal/tableau"
	"gyokit/internal/treefy"
	"gyokit/internal/treeproj"
)

// --- E-PERF1: GYO reduction scaling -------------------------------

func BenchmarkGYOReduceRing(b *testing.B) {
	for _, n := range []int{8, 32, 128, 256} {
		d := gen.Ring(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if gyo.ReduceFull(d).Empty() {
					b.Fatal("ring classified as tree")
				}
			}
		})
	}
}

func BenchmarkGYOReduceClique(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		d := gen.Clique(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if gyo.ReduceFull(d).Empty() {
					b.Fatal("clique classified as tree")
				}
			}
		})
	}
}

func BenchmarkGYOReduceTree(b *testing.B) {
	for _, n := range []int{8, 32, 128, 256} {
		d := gen.TreeSchema(gen.RNG(int64(n)), n, 2, 2)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !gyo.ReduceFull(d).Empty() {
					b.Fatal("tree classified as cyclic")
				}
			}
		})
	}
}

// --- E-PERF2: CC fast path vs tableau minimization ----------------

func BenchmarkCCTreeFastPath(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		d := gen.TreeSchema(gen.RNG(int64(n)), n, 2, 2)
		x := gen.RandomAttrSubset(gen.RNG(int64(n)+99), d.Attrs(), 0.4)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tableau.CC(d, x)
			}
		})
	}
}

func BenchmarkCCGenericTableau(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		d := gen.TreeSchema(gen.RNG(int64(n)), n, 2, 2)
		x := gen.RandomAttrSubset(gen.RNG(int64(n)+99), d.Attrs(), 0.4)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tableau.CCGeneric(d, x)
			}
		})
	}
}

func BenchmarkCCCyclicSection6(b *testing.B) {
	u := schema.NewUniverse()
	d := schema.MustParse(u, "abg, bcg, acf, ad, de, ea")
	x := u.Set("a", "b", "c")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tableau.CCGeneric(d, x)
	}
}

// --- E-PERF3: lossless-join test routes ---------------------------

func BenchmarkLosslessViaCC(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		d := gen.TreeSchema(gen.RNG(int64(n)*3), n, 2, 2)
		dp, _ := gen.SubSchema(gen.RNG(int64(n)*5), d)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lossless.Implies(d, dp)
			}
		})
	}
}

func BenchmarkLosslessViaSubtree(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		d := gen.TreeSchema(gen.RNG(int64(n)*3), n, 2, 2)
		dp, _ := gen.SubSchema(gen.RNG(int64(n)*5), d)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lossless.ImpliesSubtree(d, dp)
			}
		})
	}
}

func BenchmarkLosslessViaTableau(b *testing.B) {
	for _, n := range []int{4, 8} {
		d := gen.TreeSchema(gen.RNG(int64(n)*3), n, 2, 2)
		dp, _ := gen.SubSchema(gen.RNG(int64(n)*5), d)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lossless.ImpliesTableau(d, dp)
			}
		})
	}
}

// --- E-PERF4: query evaluation plans -------------------------------

func evalBenchSetup(tuples int) (*schema.Schema, schema.AttrSet, *relation.Database) {
	d := gen.Chain(5)
	attrs := d.Attrs().Attrs()
	x := schema.NewAttrSet(attrs[0], attrs[len(attrs)-1])
	i, _ := relation.RandomUniversal(d.U, d.Attrs(), tuples, 8, gen.RNG(int64(tuples)))
	return d, x, relation.URDatabase(d, i)
}

func BenchmarkEvalNaiveJoin(b *testing.B) {
	for _, tuples := range []int{50, 200} {
		d, x, db := evalBenchSetup(tuples)
		plan, err := program.NaivePlan(d, x)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("tuples=%d", tuples), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := plan.Eval(db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEvalCCPruned(b *testing.B) {
	for _, tuples := range []int{50, 200} {
		d, x, db := evalBenchSetup(tuples)
		cc := tableau.CC(d, x)
		plan, err := program.CCPlan(d, x, cc)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("tuples=%d", tuples), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := plan.Eval(db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEvalYannakakis(b *testing.B) {
	for _, tuples := range []int{50, 200} {
		d, x, db := evalBenchSetup(tuples)
		tr, ok := qualgraph.QualTree(d)
		if !ok {
			b.Fatal("chain rejected")
		}
		plan, err := program.Yannakakis(d, x, tr)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("tuples=%d", tuples), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := plan.Eval(db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvalYannakakisLarge runs the full semijoin program at the
// scale the columnar engine is built for (10k universal tuples): full
// reducer plus bottom-up join, one Exec, no per-statement allocation.
func BenchmarkEvalYannakakisLarge(b *testing.B) {
	d := gen.Chain(5)
	attrs := d.Attrs().Attrs()
	x := schema.NewAttrSet(attrs[0], attrs[len(attrs)-1])
	i, _ := relation.RandomUniversal(d.U, d.Attrs(), 10000, 64, gen.RNG(10000))
	db := relation.URDatabase(d, i)
	tr, ok := qualgraph.QualTree(d)
	if !ok {
		b.Fatal("chain rejected")
	}
	plan, err := program.Yannakakis(d, x, tr)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		if _, _, err := plan.Eval(db); err != nil {
			b.Fatal(err)
		}
	}
}

// --- partition-parallel program execution ---------------------------

// parallelProgramSetup builds the acceptance-criteria workload: a
// 5-chain semijoin program (Yannakakis: full reducer + bottom-up join)
// over a 10k-tuple universal relation — the scale where fan-out beats
// the goroutine overhead.
func parallelProgramSetup(b *testing.B) (*program.Program, *relation.Database) {
	b.Helper()
	d := gen.Chain(5)
	attrs := d.Attrs().Attrs()
	x := schema.NewAttrSet(attrs[0], attrs[len(attrs)-1])
	i, _ := relation.RandomUniversal(d.U, d.Attrs(), 10000, 64, gen.RNG(10000))
	db := relation.URDatabase(d, i)
	tr, ok := qualgraph.QualTree(d)
	if !ok {
		b.Fatal("chain rejected")
	}
	plan, err := program.Yannakakis(d, x, tr)
	if err != nil {
		b.Fatal(err)
	}
	return plan, db
}

// BenchmarkSemijoinProgramSerial is the single-threaded baseline the
// parallel executor must beat at P≥4 (acceptance criteria; compare
// against BenchmarkSemijoinProgramParallel/p=4).
func BenchmarkSemijoinProgramSerial(b *testing.B) {
	plan, db := parallelProgramSetup(b)
	ex := relation.NewExec()
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		if _, _, err := plan.EvalExec(db, ex); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSemijoinProgramParallel runs the same program
// partition-parallel at P shards (forced: MinParallel 0), measuring
// the full pipeline — repartitions, shard-local semijoins/joins, and
// the final merge.
func BenchmarkSemijoinProgramParallel(b *testing.B) {
	plan, db := parallelProgramSetup(b)
	for _, p := range []int{2, 4, 8} {
		pe := relation.NewParExec(p)
		pe.MinParallel = 0
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for k := 0; k < b.N; k++ {
				if _, _, err := plan.EvalPar(db, pe); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineSolvePar measures the serving path end-to-end with
// per-request parallelism: cached plan, pooled ParExec, one frozen
// snapshot.
func BenchmarkEngineSolvePar(b *testing.B) {
	d := gen.Chain(5)
	attrs := d.Attrs().Attrs()
	x := schema.NewAttrSet(attrs[0], attrs[len(attrs)-1])
	i, _ := relation.RandomUniversal(d.U, d.Attrs(), 10000, 64, gen.RNG(10000))
	for _, p := range []int{1, 4} {
		e := gyokit.NewEngine(gyokit.EngineOptions{Workers: p})
		e.Swap(relation.URDatabase(d, i))
		if _, _, err := e.SolvePar(d, x, p); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for k := 0; k < b.N; k++ {
				if _, _, err := e.SolvePar(d, x, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E-PERF5: join-tree construction -------------------------------

func BenchmarkJoinTreeMST(b *testing.B) {
	for _, n := range []int{8, 64, 256} {
		d := gen.TreeSchema(gen.RNG(int64(n)*7), n, 2, 2)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := qualgraph.QualTreeMST(d); !ok {
					b.Fatal("rejected")
				}
			}
		})
	}
}

func BenchmarkJoinTreeGYO(b *testing.B) {
	for _, n := range []int{8, 64, 256} {
		d := gen.TreeSchema(gen.RNG(int64(n)*7), n, 2, 2)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := qualgraph.QualTreeGYO(d); !ok {
					b.Fatal("rejected")
				}
			}
		})
	}
}

// --- E-PERF6: γ-acyclicity tests -----------------------------------

func BenchmarkGammaPolynomial(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		d := gen.TreeSchema(gen.RNG(int64(n)*11), n, 2, 2)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gamma.IsGammaAcyclic(d)
			}
		})
	}
}

func BenchmarkGammaSubtreeClosure(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		d := gen.TreeSchema(gen.RNG(int64(n)*11), n, 2, 2)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gamma.IsGammaAcyclicSubtree(d)
			}
		})
	}
}

func BenchmarkGammaCycleSearch(b *testing.B) {
	for _, n := range []int{4, 8} {
		d := gen.TreeSchema(gen.RNG(int64(n)*11), n, 2, 2)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gamma.IsGammaAcyclicCycleSearch(d)
			}
		})
	}
}

// --- E-PERF7: fixed treefication / bin packing ----------------------

func BenchmarkTreefyExactDP(b *testing.B) {
	for _, n := range []int{6, 10, 14} {
		bp := gen.BinPacking(gen.RNG(int64(n)), n, 7, n/2, 12)
		b.Run(fmt.Sprintf("items=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				treefy.SolveBinPacking(bp)
			}
		})
	}
}

func BenchmarkTreefyFFD(b *testing.B) {
	for _, n := range []int{6, 10, 14} {
		bp := gen.BinPacking(gen.RNG(int64(n)), n, 7, n/2, 12)
		b.Run(fmt.Sprintf("items=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				treefy.FirstFitDecreasing(bp.Sizes, bp.B)
			}
		})
	}
}

func BenchmarkTreefyReduction(b *testing.B) {
	bp := gen.BinPackingInstance{Sizes: []int{5, 4, 3, 3}, K: 2, B: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := treefy.FromBinPacking(bp)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := treefy.Solve(inst); !ok {
			b.Fatal("should be satisfiable")
		}
	}
}

// --- tree projection search (§3.2 example) -------------------------

func BenchmarkTreeProjectionSection32(b *testing.B) {
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc, cd, de, ef, fg, gh, ha")
	dp := schema.MustParse(u, "abef, abch, cdgh, defg, ef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := treeproj.Exists(dp, d); !res.Found {
			b.Fatal("witness not found")
		}
	}
}

// --- end-to-end facade paths ---------------------------------------

func BenchmarkClassify(b *testing.B) {
	u := gyokit.NewUniverse()
	d := gyokit.MustParse(u, "abg, bcg, acf, ad, de, ea")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gyokit.Classify(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveByJoins(b *testing.B) {
	u := gyokit.NewUniverse()
	d := gyokit.MustParse(u, "abg, bcg, acf, ad, de, ea")
	x := u.Set("a", "b", "c")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gyokit.SolveByJoins(d, x); err != nil {
			b.Fatal(err)
		}
	}
}

// --- serving engine: plan cache, pooling, concurrency ---------------

// engineBenchQuery is the fixed (schema, X) pair the engine benchmarks
// share: the paper's §6 cyclic running example, whose planning cost
// (GYO reduction + γ test + the §4 treefy-then-Yannakakis build) is
// exactly what the plan cache is supposed to amortize.
func engineBenchQuery() (*schema.Schema, schema.AttrSet, *relation.Database) {
	u := schema.NewUniverse()
	d := schema.MustParse(u, "abg, bcg, acf, ad, de, ea")
	x := u.Set("a", "b", "c")
	i, _ := relation.RandomUniversal(u, d.Attrs(), 200, 6, gen.RNG(3))
	return d, x, relation.URDatabase(d, i)
}

// BenchmarkEngineCold plans with the cache disabled: every iteration
// classifies and compiles from scratch.
func BenchmarkEngineCold(b *testing.B) {
	d, x, _ := engineBenchQuery()
	e := gyokit.NewEngine(gyokit.EngineOptions{PlanCacheSize: -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Plan(d, x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineCached plans the same query against a warm cache:
// fingerprint, LRU lookup, verification — no GYO, no tableau, no
// program construction.
func BenchmarkEngineCached(b *testing.B) {
	d, x, _ := engineBenchQuery()
	e := gyokit.NewEngine(gyokit.EngineOptions{})
	if _, err := e.Plan(d, x); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Plan(d, x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineParallel measures end-to-end Solve throughput with
// GOMAXPROCS goroutines sharing one engine: cached plan, pooled Exec
// contexts, one frozen snapshot.
func BenchmarkEngineParallel(b *testing.B) {
	d, x, db := engineBenchQuery()
	e := gyokit.NewEngine(gyokit.EngineOptions{})
	e.Swap(db)
	if _, _, err := e.Solve(d, x); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := e.Solve(d, x); err != nil {
				// FailNow must not run on a RunParallel worker goroutine.
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkEngineSolveSerial is the single-goroutine baseline for
// BenchmarkEngineParallel.
func BenchmarkEngineSolveSerial(b *testing.B) {
	d, x, db := engineBenchQuery()
	e := gyokit.NewEngine(gyokit.EngineOptions{})
	e.Swap(db)
	if _, _, err := e.Solve(d, x); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Solve(d, x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveInstrumented is the observability-overhead gate: the
// cached-plan serial solve path with every instrument live (latency
// histogram observe, plan-cache counters, snapshot gauges registered).
// CI gates this benchmark at ≤5% regression against the committed
// baseline — the budget for the whole metrics layer on the hot path.
func BenchmarkSolveInstrumented(b *testing.B) {
	d, x, db := engineBenchQuery()
	e := gyokit.NewEngine(gyokit.EngineOptions{})
	e.Swap(db)
	if _, _, err := e.Solve(d, x); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Solve(d, x); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E-PERF8: the §4 cyclic strategy --------------------------------

func BenchmarkEvalCyclicStrategy(b *testing.B) {
	d := gen.RingWithTails(3, 2)
	ringEdge := d.Rels[0].Attrs()
	lastTail := d.Rels[len(d.Rels)-1].Attrs()
	x := schema.NewAttrSet(ringEdge[0], lastTail[len(lastTail)-1])
	i, _ := relation.RandomUniversal(d.U, d.Attrs(), 30, 6, gen.RNG(5))
	db := relation.URDatabase(d, i)
	plan, err := program.CyclicPlan(d, x)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		if _, _, err := plan.Eval(db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalNaiveOnCyclic(b *testing.B) {
	d := gen.RingWithTails(3, 2)
	ringEdge := d.Rels[0].Attrs()
	lastTail := d.Rels[len(d.Rels)-1].Attrs()
	x := schema.NewAttrSet(ringEdge[0], lastTail[len(lastTail)-1])
	i, _ := relation.RandomUniversal(d.U, d.Attrs(), 30, 6, gen.RNG(5))
	db := relation.URDatabase(d, i)
	plan, err := program.NaivePlan(d, x)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		if _, _, err := plan.Eval(db); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation: join order ------------------------------------------

// BenchmarkJoinOrderIndexVsGreedy quantifies the DESIGN.md note that
// plan shape (not just relation choice) matters: index order joins a
// star schema leaf-by-leaf (cross-product-free but wide), while the
// greedy order is identical here — and on a deliberately shuffled
// chain the greedy order avoids the cross products index order hits.
func BenchmarkJoinOrderShuffledChainIndex(b *testing.B) {
	d, x, db, inputs := shuffledChain()
	plan, err := program.JoinProject(d, x, inputs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		if _, _, err := plan.Eval(db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinOrderShuffledChainGreedy(b *testing.B) {
	d, x, db, inputs := shuffledChain()
	idx := make([]int, len(inputs))
	for i := range idx {
		idx[i] = inputs[i].Rel
	}
	order := program.GreedyJoinOrder(d, idx)
	pos := make([]int, len(order))
	for i, rel := range order {
		for j, in := range inputs {
			if in.Rel == rel {
				pos[i] = j
			}
		}
	}
	plan, err := program.JoinProjectOrdered(d, x, inputs, pos)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		if _, _, err := plan.Eval(db); err != nil {
			b.Fatal(err)
		}
	}
}

// shuffledChain builds a 6-chain whose relation order interleaves the
// two ends, so index-order joining produces early cross products.
func shuffledChain() (*schema.Schema, schema.AttrSet, *relation.Database, []program.InputRef) {
	base := gen.Chain(6)
	perm := []int{0, 3, 1, 4, 2, 5}
	d := base.Restrict(perm)
	attrs := d.Attrs().Attrs()
	x := schema.NewAttrSet(attrs[0], attrs[len(attrs)-1])
	i, _ := relation.RandomUniversal(d.U, d.Attrs(), 60, 6, gen.RNG(9))
	db := relation.URDatabase(d, i)
	inputs := make([]program.InputRef, len(d.Rels))
	for k := range inputs {
		inputs[k] = program.InputRef{Rel: k}
	}
	return d, x, db, inputs
}
