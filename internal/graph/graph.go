// Package graph provides the small undirected-graph substrate used by
// qual graphs, join trees, and the γ-acyclicity tests: adjacency
// structures, connectivity, spanning trees, and tree path queries.
package graph

import (
	"fmt"
	"sort"
)

// Undirected is a simple undirected graph on vertices 0..n-1.
// Parallel edges and self-loops are rejected.
type Undirected struct {
	n   int
	adj [][]int
}

// NewUndirected returns an edgeless graph with n vertices.
func NewUndirected(n int) *Undirected {
	return &Undirected{n: n, adj: make([][]int, n)}
}

// N returns the number of vertices.
func (g *Undirected) N() int { return g.n }

// AddEdge inserts edge {u, v}. Adding an existing edge or a self-loop is
// an error.
func (g *Undirected) AddEdge(u, v int) error {
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (g *Undirected) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether {u, v} is an edge.
func (g *Undirected) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n {
		return false
	}
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency list of u (shared slice; do not modify).
func (g *Undirected) Neighbors(u int) []int { return g.adj[u] }

// Degree returns the degree of u.
func (g *Undirected) Degree(u int) int { return len(g.adj[u]) }

// EdgeCount returns the number of edges.
func (g *Undirected) EdgeCount() int {
	m := 0
	for _, a := range g.adj {
		m += len(a)
	}
	return m / 2
}

// Edges returns all edges as ordered pairs (u < v), sorted.
func (g *Undirected) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// ConnectedOn reports whether the subgraph induced by the vertex set
// `in` (given as a membership predicate over all vertices) is connected.
// An induced subgraph with no vertices is considered connected.
func (g *Undirected) ConnectedOn(in func(int) bool) bool {
	start := -1
	total := 0
	for v := 0; v < g.n; v++ {
		if in(v) {
			total++
			if start < 0 {
				start = v
			}
		}
	}
	if total <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{start}
	seen[start] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[u] {
			if in(v) && !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == total
}

// Connected reports whether the whole graph is connected (vacuously true
// for n ≤ 1).
func (g *Undirected) Connected() bool {
	return g.ConnectedOn(func(int) bool { return true })
}

// IsTree reports whether the graph is a tree: connected with n-1 edges.
// The empty graph and single vertices are trees.
func (g *Undirected) IsTree() bool {
	if g.n == 0 {
		return true
	}
	return g.EdgeCount() == g.n-1 && g.Connected()
}

// IsForest reports whether the graph is acyclic.
func (g *Undirected) IsForest() bool {
	comp := g.Components()
	return g.EdgeCount() == g.n-len(comp)
}

// Components returns the connected components as sorted vertex lists.
func (g *Undirected) Components() [][]int {
	seen := make([]bool, g.n)
	var out [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		sort.Ints(comp)
		out = append(out, comp)
	}
	return out
}

// Path returns the unique path from u to v if the graph is a forest and
// they are connected, as a vertex sequence starting at u and ending at v.
// ok is false when no path exists. On graphs with cycles it returns some
// shortest path (BFS).
func (g *Undirected) Path(u, v int) (path []int, ok bool) {
	if u == v {
		return []int{u}, true
	}
	prev := make([]int, g.n)
	for i := range prev {
		prev[i] = -1
	}
	queue := []int{u}
	prev[u] = u
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range g.adj[x] {
			if prev[y] == -1 {
				prev[y] = x
				if y == v {
					var rev []int
					for c := v; c != u; c = prev[c] {
						rev = append(rev, c)
					}
					rev = append(rev, u)
					for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
						rev[i], rev[j] = rev[j], rev[i]
					}
					return rev, true
				}
				queue = append(queue, y)
			}
		}
	}
	return nil, false
}

// Clone returns a deep copy.
func (g *Undirected) Clone() *Undirected {
	h := NewUndirected(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				h.adj[u] = append(h.adj[u], v)
				h.adj[v] = append(h.adj[v], u)
			}
		}
	}
	return h
}

// WeightedEdge is an edge with a weight, used by spanning-tree
// construction.
type WeightedEdge struct {
	U, V   int
	Weight int
}

// MaxSpanningForest computes a maximum-weight spanning forest over n
// vertices from the given candidate edges (Kruskal). Edges of
// non-positive weight are still usable; ties break deterministically by
// (weight desc, U asc, V asc) so results are reproducible.
func MaxSpanningForest(n int, edges []WeightedEdge) *Undirected {
	sorted := append([]WeightedEdge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Weight != sorted[j].Weight {
			return sorted[i].Weight > sorted[j].Weight
		}
		if sorted[i].U != sorted[j].U {
			return sorted[i].U < sorted[j].U
		}
		return sorted[i].V < sorted[j].V
	})
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	t := NewUndirected(n)
	for _, e := range sorted {
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
			t.MustAddEdge(e.U, e.V)
		}
	}
	return t
}

// SpanningTrees enumerates all spanning trees of the graph, calling
// yield for each (as an edge list). It is exponential and intended for
// small graphs (used by qual-tree enumeration in tests). Enumeration
// stops early if yield returns false.
func (g *Undirected) SpanningTrees(yield func(edges [][2]int) bool) {
	if g.n == 0 {
		yield(nil)
		return
	}
	if !g.Connected() {
		return
	}
	all := g.Edges()
	need := g.n - 1
	chosen := make([][2]int, 0, need)
	parent := make([]int, g.n)
	var rec func(start int) bool
	var find func([]int, int) int
	find = func(p []int, i int) int {
		for p[i] != i {
			p[i] = p[p[i]]
			i = p[i]
		}
		return i
	}
	rec = func(start int) bool {
		if len(chosen) == need {
			return yield(append([][2]int(nil), chosen...))
		}
		if need-len(chosen) > len(all)-start {
			return true
		}
		for i := start; i < len(all); i++ {
			e := all[i]
			// Rebuild union-find for the chosen set plus e.
			for v := range parent {
				parent[v] = v
			}
			ok := true
			for _, c := range chosen {
				ru, rv := find(parent, c[0]), find(parent, c[1])
				parent[ru] = rv
			}
			ru, rv := find(parent, e[0]), find(parent, e[1])
			if ru == rv {
				ok = false
			} else {
				parent[ru] = rv
			}
			if !ok {
				continue
			}
			chosen = append(chosen, e)
			if !rec(i + 1) {
				return false
			}
			chosen = chosen[:len(chosen)-1]
		}
		return true
	}
	rec(0)
}
