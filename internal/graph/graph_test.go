package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func mustPath(t *testing.T, g *Undirected, u, v int) []int {
	t.Helper()
	p, ok := g.Path(u, v)
	if !ok {
		t.Fatalf("no path %d→%d", u, v)
	}
	return p
}

func TestEdgesBasics(t *testing.T) {
	g := NewUndirected(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 1)
	if !g.HasEdge(1, 0) || !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Error("HasEdge wrong")
	}
	if g.EdgeCount() != 2 {
		t.Errorf("EdgeCount = %d", g.EdgeCount())
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Error("Degree wrong")
	}
	if got := g.Edges(); !reflect.DeepEqual(got, [][2]int{{0, 1}, {1, 2}}) {
		t.Errorf("Edges = %v", got)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := NewUndirected(3)
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 5); err == nil {
		t.Error("out-of-range accepted")
	}
	g.MustAddEdge(0, 1)
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestConnectivityAndTrees(t *testing.T) {
	g := NewUndirected(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(3, 4)
	if g.Connected() {
		t.Error("disconnected graph claimed connected")
	}
	if g.IsTree() {
		t.Error("forest claimed tree")
	}
	if !g.IsForest() {
		t.Error("forest not recognized")
	}
	comps := g.Components()
	if len(comps) != 2 || !reflect.DeepEqual(comps[0], []int{0, 1, 2}) {
		t.Errorf("Components = %v", comps)
	}
	g.MustAddEdge(2, 3)
	if !g.IsTree() {
		t.Error("tree not recognized")
	}
	g.MustAddEdge(0, 4)
	if g.IsTree() || g.IsForest() {
		t.Error("cycle not detected")
	}
	if NewUndirected(0).IsTree() == false {
		t.Error("empty graph should be a tree")
	}
	if NewUndirected(1).IsTree() == false {
		t.Error("single vertex should be a tree")
	}
}

func TestConnectedOn(t *testing.T) {
	g := NewUndirected(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	in := map[int]bool{0: true, 1: true, 3: true}
	if g.ConnectedOn(func(v int) bool { return in[v] }) {
		t.Error("0,1,3 without 2 should be disconnected")
	}
	in[2] = true
	if !g.ConnectedOn(func(v int) bool { return in[v] }) {
		t.Error("0..3 should be connected")
	}
	if !g.ConnectedOn(func(v int) bool { return false }) {
		t.Error("empty induced subgraph should be connected")
	}
	if !g.ConnectedOn(func(v int) bool { return v == 4 }) {
		t.Error("single vertex should be connected")
	}
}

func TestPath(t *testing.T) {
	g := NewUndirected(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(1, 4)
	p := mustPath(t, g, 0, 3)
	if !reflect.DeepEqual(p, []int{0, 1, 2, 3}) {
		t.Errorf("Path = %v", p)
	}
	if !reflect.DeepEqual(mustPath(t, g, 2, 2), []int{2}) {
		t.Error("trivial path wrong")
	}
	if _, ok := g.Path(0, 5); ok {
		t.Error("path to isolated vertex found")
	}
}

func TestClone(t *testing.T) {
	g := NewUndirected(3)
	g.MustAddEdge(0, 1)
	h := g.Clone()
	h.MustAddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Error("Clone shares storage")
	}
	if !h.HasEdge(0, 1) {
		t.Error("Clone lost edge")
	}
}

func TestMaxSpanningForest(t *testing.T) {
	// Square with a heavy diagonal: MST must keep the weight-5 diagonal.
	edges := []WeightedEdge{
		{0, 1, 2}, {1, 2, 2}, {2, 3, 2}, {3, 0, 2}, {0, 2, 5},
	}
	t1 := MaxSpanningForest(4, edges)
	if !t1.IsTree() {
		t.Fatal("not a tree")
	}
	if !t1.HasEdge(0, 2) {
		t.Error("max spanning tree dropped the heaviest edge")
	}
	// Weight-0 edges still connect components.
	t2 := MaxSpanningForest(3, []WeightedEdge{{0, 1, 0}, {1, 2, 0}})
	if !t2.IsTree() {
		t.Error("zero-weight edges should still produce a spanning tree")
	}
	// Deterministic under permutation of input.
	perm := []WeightedEdge{{3, 0, 2}, {0, 2, 5}, {2, 3, 2}, {0, 1, 2}, {1, 2, 2}}
	t3 := MaxSpanningForest(4, perm)
	if !reflect.DeepEqual(t1.Edges(), t3.Edges()) {
		t.Error("MaxSpanningForest not deterministic")
	}
}

func TestSpanningTreesCayley(t *testing.T) {
	// Cayley's formula: K_n has n^(n-2) spanning trees.
	for n, want := range map[int]int{2: 1, 3: 3, 4: 16, 5: 125} {
		k := NewUndirected(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				k.MustAddEdge(i, j)
			}
		}
		count := 0
		k.SpanningTrees(func(edges [][2]int) bool {
			count++
			// Every enumerated edge set must be a spanning tree.
			tr := NewUndirected(n)
			for _, e := range edges {
				tr.MustAddEdge(e[0], e[1])
			}
			if !tr.IsTree() {
				t.Fatalf("enumerated non-tree %v", edges)
			}
			return true
		})
		if count != want {
			t.Errorf("K_%d spanning trees = %d, want %d", n, count, want)
		}
	}
}

func TestSpanningTreesEarlyStopAndDisconnected(t *testing.T) {
	k := NewUndirected(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			k.MustAddEdge(i, j)
		}
	}
	count := 0
	k.SpanningTrees(func([][2]int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d", count)
	}
	disc := NewUndirected(3)
	disc.MustAddEdge(0, 1)
	disc.SpanningTrees(func([][2]int) bool {
		t.Error("disconnected graph yielded a spanning tree")
		return false
	})
}

func TestSpanningTreesRandomAgree(t *testing.T) {
	// Kirchhoff cross-check on random graphs: count spanning trees by
	// enumeration and compare against the Matrix-Tree theorem computed
	// with integer Gaussian elimination via fraction-free determinant.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(4)
		g := NewUndirected(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(2) == 0 {
					g.MustAddEdge(i, j)
				}
			}
		}
		count := 0
		g.SpanningTrees(func([][2]int) bool { count++; return true })
		if want := kirchhoff(g); count != want {
			t.Fatalf("trial %d: enumerated %d trees, Kirchhoff says %d (n=%d edges=%v)",
				trial, count, want, n, g.Edges())
		}
	}
}

// kirchhoff counts spanning trees via the Matrix-Tree theorem using
// Bareiss fraction-free elimination (exact over int64 at these sizes).
func kirchhoff(g *Undirected) int {
	n := g.N()
	if n <= 1 {
		return 1
	}
	m := make([][]int64, n-1)
	for i := range m {
		m[i] = make([]int64, n-1)
	}
	for i := 0; i < n-1; i++ {
		m[i][i] = int64(g.Degree(i))
		for _, j := range g.Neighbors(i) {
			if j < n-1 {
				m[i][j] = -1
			}
		}
	}
	prev := int64(1)
	for k := 0; k < n-1; k++ {
		if m[k][k] == 0 {
			swapped := false
			for r := k + 1; r < n-1; r++ {
				if m[r][k] != 0 {
					m[k], m[r] = m[r], m[k]
					for c := range m[k] {
						m[k][c] = -m[k][c]
					}
					swapped = true
					break
				}
			}
			if !swapped {
				return 0
			}
		}
		for i := k + 1; i < n-1; i++ {
			for j := k + 1; j < n-1; j++ {
				m[i][j] = (m[i][j]*m[k][k] - m[i][k]*m[k][j]) / prev
			}
			m[i][k] = 0
		}
		prev = m[k][k]
	}
	return int(m[n-2][n-2])
}
