package relation

import (
	"math/rand"
	"testing"

	"gyokit/internal/gen"
	"gyokit/internal/schema"
)

func setup(t *testing.T) (*schema.Universe, *schema.Schema) {
	t.Helper()
	u := schema.NewUniverse()
	d, err := schema.Parse(u, "ab, bc")
	if err != nil {
		t.Fatal(err)
	}
	return u, d
}

func TestInsertDedupAndHas(t *testing.T) {
	u, _ := setup(t)
	r := New(u, u.Set("a", "b"))
	r.Insert(Tuple{1, 2})
	r.Insert(Tuple{1, 2})
	r.Insert(Tuple{2, 1})
	if r.Card() != 2 {
		t.Errorf("Card = %d, want 2", r.Card())
	}
	if !r.Has(Tuple{1, 2}) || r.Has(Tuple{3, 3}) {
		t.Error("Has wrong")
	}
	// Insert copies its argument.
	tup := Tuple{7, 8}
	r.Insert(tup)
	tup[0] = 99
	if !r.Has(Tuple{7, 8}) {
		t.Error("Insert aliased caller storage")
	}
}

func TestInsertMapAndPanics(t *testing.T) {
	u, _ := setup(t)
	r := New(u, u.Set("a", "b"))
	a, _ := u.Lookup("a")
	b, _ := u.Lookup("b")
	r.InsertMap(map[schema.Attr]Value{a: 1, b: 2})
	if !r.Has(Tuple{1, 2}) {
		t.Error("InsertMap failed")
	}
	mustPanic(t, func() { r.Insert(Tuple{1}) })
	mustPanic(t, func() { r.InsertMap(map[schema.Attr]Value{a: 1}) })
	mustPanic(t, func() { r.Project(u.Set("a", "c")) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestProject(t *testing.T) {
	u, _ := setup(t)
	r := New(u, u.Set("a", "b"))
	r.Insert(Tuple{1, 2})
	r.Insert(Tuple{1, 3})
	p := r.Project(u.Set("a"))
	if p.Card() != 1 || !p.Has(Tuple{1}) {
		t.Errorf("projection wrong: %s", p)
	}
	// Projection onto everything is identity.
	if !r.Project(r.Attrs()).Equal(r) {
		t.Error("identity projection broken")
	}
	// Projection onto ∅ of a nonempty relation: one empty tuple.
	e := r.Project(schema.AttrSet{})
	if e.Card() != 1 {
		t.Errorf("π_∅ card = %d, want 1", e.Card())
	}
}

func TestJoinBasic(t *testing.T) {
	u, _ := setup(t)
	ab := New(u, u.Set("a", "b"))
	bc := New(u, u.Set("b", "c"))
	ab.Insert(Tuple{1, 10})
	ab.Insert(Tuple{2, 20})
	bc.Insert(Tuple{10, 100}) // b=10, c=100
	bc.Insert(Tuple{10, 101})
	bc.Insert(Tuple{30, 300})
	j := ab.Join(bc)
	if j.Card() != 2 {
		t.Fatalf("join card = %d, want 2: %s", j.Card(), j)
	}
	// Column order is sorted attrs: a, b, c.
	if !j.Has(Tuple{1, 10, 100}) || !j.Has(Tuple{1, 10, 101}) {
		t.Errorf("join contents wrong: %s", j)
	}
}

func TestJoinCrossProduct(t *testing.T) {
	u := schema.NewUniverse()
	a := New(u, u.Set("a"))
	b := New(u, u.Set("b"))
	a.Insert(Tuple{1})
	a.Insert(Tuple{2})
	b.Insert(Tuple{7})
	b.Insert(Tuple{8})
	j := a.Join(b)
	if j.Card() != 4 {
		t.Errorf("cross product card = %d", j.Card())
	}
}

func TestJoinEmpty(t *testing.T) {
	u, _ := setup(t)
	ab := New(u, u.Set("a", "b"))
	bc := New(u, u.Set("b", "c"))
	ab.Insert(Tuple{1, 2})
	if ab.Join(bc).Card() != 0 {
		t.Error("join with empty should be empty")
	}
}

func TestSemijoinDefinition(t *testing.T) {
	// R ⋉ S = π_R(R ⋈ S), checked on random data.
	rng := rand.New(rand.NewSource(9))
	u := schema.NewUniverse()
	for trial := 0; trial < 50; trial++ {
		ra := gen.RandomAttrSubset(rng, u.Set("a", "b", "c", "d"), 0.7)
		sa := gen.RandomAttrSubset(rng, u.Set("b", "c", "d", "e"), 0.7)
		if ra.IsEmpty() || sa.IsEmpty() {
			continue
		}
		r, _ := RandomUniversal(u, ra, 20, 4, rng)
		s, _ := RandomUniversal(u, sa, 20, 4, rng)
		got := r.Semijoin(s)
		want := r.Join(s).Project(r.Attrs())
		if !got.Equal(want) {
			t.Fatalf("R⋉S ≠ π_R(R⋈S): R=%s S=%s", r, s)
		}
	}
}

func TestJoinAlgebraProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	u := schema.NewUniverse()
	pool := u.Set("a", "b", "c", "d", "e")
	for trial := 0; trial < 40; trial++ {
		ra := gen.RandomAttrSubset(rng, pool, 0.6)
		sa := gen.RandomAttrSubset(rng, pool, 0.6)
		ta := gen.RandomAttrSubset(rng, pool, 0.6)
		if ra.IsEmpty() || sa.IsEmpty() || ta.IsEmpty() {
			continue
		}
		r, _ := RandomUniversal(u, ra, 15, 3, rng)
		s, _ := RandomUniversal(u, sa, 15, 3, rng)
		w, _ := RandomUniversal(u, ta, 15, 3, rng)
		// Commutativity.
		if !r.Join(s).Equal(s.Join(r)) {
			t.Fatal("join not commutative")
		}
		// Associativity.
		if !r.Join(s).Join(w).Equal(r.Join(s.Join(w))) {
			t.Fatal("join not associative")
		}
		// Idempotence.
		if !r.Join(r).Equal(r) {
			t.Fatal("R ⋈ R ≠ R")
		}
		// Semijoin reduces cardinality.
		if r.Semijoin(s).Card() > r.Card() {
			t.Fatal("semijoin grew the relation")
		}
	}
}

func TestURDatabaseAndJD(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	u := schema.NewUniverse()
	d, _ := schema.Parse(u, "ab, bc, cd")
	i, _ := RandomUniversal(u, d.Attrs(), 30, 3, rng)
	db := URDatabase(d, i)
	if len(db.Rels) != 3 {
		t.Fatal("wrong relation count")
	}
	// The full join of projections always satisfies ⋈D.
	j := JoinAll(db.Rels)
	if !SatisfiesJD(j, d) {
		t.Error("⋈ of projections must satisfy the JD")
	}
	// And contains the original tuples.
	for _, tup := range i.Tuples() {
		if !j.Has(tup) {
			t.Fatal("join lost a universal tuple")
		}
	}
	// A deliberately JD-violating relation over the triangle schema:
	// the classic 2-tuple counterexample.
	tri, _ := schema.Parse(u, "ab, bc, ac")
	bad := New(u, tri.Attrs())
	bad.Insert(Tuple{0, 0, 1})
	bad.Insert(Tuple{1, 0, 0})
	bad.Insert(Tuple{0, 1, 0})
	if SatisfiesJD(bad, tri) {
		t.Error("triangle counterexample should violate ⋈D")
	}
}

func TestEvalMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	u := schema.NewUniverse()
	d, _ := schema.Parse(u, "ab, bc")
	i, _ := RandomUniversal(u, d.Attrs(), 25, 3, rng)
	db := URDatabase(d, i)
	x := u.Set("a", "c")
	got := db.Eval(x)
	want := db.Rels[0].Join(db.Rels[1]).Project(x)
	if !got.Equal(want) {
		t.Error("Eval mismatch")
	}
	sub := db.EvalSubset(u.Set("a", "b"), []int{0})
	if !sub.Equal(db.Rels[0]) {
		t.Error("EvalSubset mismatch")
	}
}

func TestRandomUniversalDeterminism(t *testing.T) {
	u := schema.NewUniverse()
	attrs := u.Set("a", "b", "c")
	r1, got1 := RandomUniversal(u, attrs, 20, 5, rand.New(rand.NewSource(1)))
	r2, got2 := RandomUniversal(u, attrs, 20, 5, rand.New(rand.NewSource(1)))
	if !r1.Equal(r2) {
		t.Error("same seed should give same relation")
	}
	if r1.Card() != 20 || got1 != 20 || got2 != 20 {
		t.Errorf("Card = %d (achieved %d, %d), want 20", r1.Card(), got1, got2)
	}
	// Tiny domain saturates: only 2 distinct tuples exist, and the
	// achieved count reports the shortfall instead of hiding it.
	tiny, got := RandomUniversal(u, u.Set("a"), 10, 2, rand.New(rand.NewSource(2)))
	if tiny.Card() != 2 || got != 2 {
		t.Errorf("saturated Card = %d, achieved = %d, want 2, 2", tiny.Card(), got)
	}
	if got == 10 {
		t.Error("achieved count must expose the truncation")
	}
}

func TestCloneAndEqual(t *testing.T) {
	u, _ := setup(t)
	r := New(u, u.Set("a", "b"))
	r.Insert(Tuple{1, 2})
	c := r.Clone()
	c.Insert(Tuple{3, 4})
	if r.Card() != 1 {
		t.Error("Clone shares storage")
	}
	if r.Equal(c) {
		t.Error("Equal ignores contents")
	}
	s := New(u, u.Set("a", "c"))
	s.Insert(Tuple{1, 2})
	if r.Equal(s) {
		t.Error("Equal ignores attribute sets")
	}
	mustPanic(t, func() { JoinAll(nil) })
}
