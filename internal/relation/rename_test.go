package relation

import (
	"testing"

	"gyokit/internal/schema"
)

func TestRenamedPermutes(t *testing.T) {
	u := schema.NewUniverse()
	ab := u.Set("a", "b")
	r := New(u, ab)
	r.Insert(Tuple{1, 2})
	r.Insert(Tuple{3, 4})

	// Swap the columns onto fresh attribute names.
	xy := u.Set("x", "y")
	out := r.Renamed(u, xy, []int{1, 0})
	if out.Card() != r.Card() {
		t.Fatalf("renamed card = %d, want %d", out.Card(), r.Card())
	}
	if !out.Attrs().Equal(xy) {
		t.Errorf("renamed attrs = %s, want %s", u.FormatSet(out.Attrs()), u.FormatSet(xy))
	}
	for _, want := range []Tuple{{2, 1}, {4, 3}} {
		if !out.Has(want) {
			t.Errorf("renamed relation missing permuted tuple %v:\n%v", want, out)
		}
	}
	// The permuted copy is hash-consistent: inserting an existing row is
	// a no-op.
	before := out.Card()
	out.Insert(Tuple{2, 1})
	if out.Card() != before {
		t.Error("permuted relation accepted a duplicate: hashes are inconsistent")
	}
}

func TestRenamedIdentitySharesFrozen(t *testing.T) {
	u := schema.NewUniverse()
	r := New(u, u.Set("a", "b"))
	for i := 0; i < 3*ChunkRows; i++ {
		r.Insert(Tuple{Value(i), Value(i + 1)})
	}
	r.Freeze()

	out := r.Renamed(u, u.Set("x", "y"), []int{0, 1})
	if !out.Frozen() {
		t.Error("identity rename of a frozen relation is not frozen")
	}
	if out.Card() != r.Card() {
		t.Fatalf("card = %d, want %d", out.Card(), r.Card())
	}
	// Zero-copy: the view shares the source's chunk arenas.
	if len(out.chunks) != len(r.chunks) || &out.chunks[0].data[0] != &r.chunks[0].data[0] {
		t.Error("identity rename of a frozen relation copied the arena")
	}
	for i := 0; i < out.Card(); i += ChunkRows / 2 {
		want := r.TupleAt(i)
		if !out.Has(want) {
			t.Errorf("view missing tuple %v", want)
		}
	}
	// A clone of the view (the COW write path) must not disturb the
	// original.
	cl := out.Clone()
	cl.Insert(Tuple{-1, -2})
	if r.Has(Tuple{-1, -2}) || out.Has(Tuple{-1, -2}) {
		t.Error("writing a clone of the view leaked into the shared base")
	}
}

func TestRenamedIdentityUnfrozenCopies(t *testing.T) {
	u := schema.NewUniverse()
	r := New(u, u.Set("a", "b"))
	r.Insert(Tuple{1, 2})

	out := r.Renamed(u, u.Set("x", "y"), []int{0, 1})
	out.Insert(Tuple{7, 8})
	if r.Has(Tuple{7, 8}) {
		t.Error("identity rename of an unfrozen relation shares storage")
	}
}

func TestRenamedPanics(t *testing.T) {
	u := schema.NewUniverse()
	r := New(u, u.Set("a", "b"))
	r.Insert(Tuple{1, 2})

	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("width mismatch", func() { r.Renamed(u, u.Set("x"), []int{0}) })
	expectPanic("src length mismatch", func() { r.Renamed(u, u.Set("x", "y"), []int{0}) })
	expectPanic("src out of range", func() { r.Renamed(u, u.Set("x", "y"), []int{0, 2}) })
}
