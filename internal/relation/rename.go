package relation

import (
	"fmt"

	"gyokit/internal/schema"
)

// Renamed returns r's tuples as a relation over a different attribute
// vocabulary — the conjunctive-query engine's bridge from stored
// attribute names to query variables. attrs (over universe u) names the
// new columns; src gives, for each new column k (attrs in sorted-id
// order), the index of the r column feeding it. Renaming is a bijection
// on tuples, so the result always has r's cardinality.
//
// When src is the identity permutation and r is frozen, the result is a
// zero-copy frozen view sharing r's chunks and hash index — O(#chunks),
// the common case when variable interning order matches the stored
// column order. Otherwise the rows are permuted and re-hashed into a
// fresh relation (row hashes depend on column order, so a permuted
// relation cannot share r's index).
func (r *Relation) Renamed(u *schema.Universe, attrs schema.AttrSet, src []int) *Relation {
	cols := attrs.Attrs()
	if len(cols) != r.width || len(src) != r.width {
		panic(fmt.Sprintf("relation: Renamed onto %d columns with %d sources, want width %d",
			len(cols), len(src), r.width))
	}
	identity := true
	for k, s := range src {
		if s < 0 || s >= r.width {
			panic(fmt.Sprintf("relation: Renamed source column %d out of range [0, %d)", s, r.width))
		}
		if s != k {
			identity = false
		}
	}
	if identity && r.frozen.Load() {
		out := &Relation{
			U:      u,
			attrs:  attrs.Clone(),
			cols:   cols,
			width:  r.width,
			chunks: append([]chunk(nil), r.chunks...),
			n:      r.n,
			base:   r.base,
			over:   append([]int32(nil), r.over...),
			baseN:  r.baseN,
		}
		if r.baseOwned {
			// The shared table covers every row; record that so a later
			// Clone of the view reasons about the overlay correctly.
			out.baseN = r.n
		}
		out.frozen.Store(true)
		return out
	}
	out := NewSized(u, attrs, r.n)
	buf := make([]Value, r.width)
	for i := 0; i < r.n; i++ {
		row := r.row(i)
		for k, s := range src {
			buf[k] = row[s]
		}
		out.insertHashed(buf, hashValues(buf))
	}
	return out
}
