package relation

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"gyokit/internal/schema"
)

// refSet is the oracle: a plain map-backed tuple set with deep-copy
// snapshot semantics, against which the chunk-sharing relation must be
// observably indistinguishable.
type refSet map[string]Tuple

func refKey(t Tuple) string {
	b := make([]byte, 4*len(t))
	for i, v := range t {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return string(b)
}

func (s refSet) clone() refSet {
	out := make(refSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s refSet) equal(t *testing.T, r *Relation, label string) {
	t.Helper()
	if r.Card() != len(s) {
		t.Fatalf("%s: card %d, reference %d", label, r.Card(), len(s))
	}
	for _, tp := range s {
		if !r.Has(tp) {
			t.Fatalf("%s: missing tuple %v", label, tp)
		}
	}
}

// frozenState captures everything observable about a snapshot so later
// mutations of descendants can be checked against it byte for byte.
type frozenState struct {
	rel  *Relation
	ref  refSet
	raw  []Value
	card int
}

func capture(r *Relation, ref refSet) frozenState {
	return frozenState{rel: r, ref: ref, raw: r.RawData(), card: r.Card()}
}

func (f frozenState) check(t *testing.T, label string) {
	t.Helper()
	if f.rel.Card() != f.card {
		t.Fatalf("%s: frozen snapshot card changed %d → %d", label, f.card, f.rel.Card())
	}
	if !slices.Equal(f.rel.RawData(), f.raw) {
		t.Fatalf("%s: frozen snapshot arena changed", label)
	}
	f.ref.equal(t, f.rel, label)
}

// TestChunkedCloneObservablyDeepCopy is the differential property the
// persistent arena must preserve: mutating a clone of a frozen
// multi-chunk snapshot — crossing chunk boundaries, inserting
// duplicates, deleting — leaves the parent byte-identical, exactly as
// the old deep-copying Clone did.
func TestChunkedCloneObservablyDeepCopy(t *testing.T) {
	u := schema.NewUniverse()
	attrs := u.Set("a", "b", "c")
	rng := rand.New(rand.NewSource(42))

	parent := New(u, attrs)
	ref := refSet{}
	var first Tuple
	for i := 0; i < 3*ChunkRows/2; i++ { // spans two chunks, tail half full
		tp := Tuple{Value(i), Value(rng.Intn(1 << 20)), Value(i % 7)}
		parent.Insert(tp)
		ref[refKey(tp)] = tp
		if first == nil {
			first = tp
		}
	}
	parent.Freeze()
	snap := capture(parent, ref)

	clone := parent.Clone()
	if clone.Frozen() {
		t.Fatal("clone of frozen relation is frozen")
	}
	// White-box: full chunks are shared, not copied.
	if &clone.chunks[0].data[0] != &parent.chunks[0].data[0] {
		t.Error("clone copied a full chunk instead of sharing it")
	}
	if &clone.base[0] != &parent.base[0] {
		t.Error("clone of a frozen relation copied the base index")
	}

	cref := ref.clone()
	for i := 0; i < ChunkRows; i++ { // crosses a chunk boundary in the clone
		tp := Tuple{Value(1 << 22), Value(i), Value(i)}
		clone.Insert(tp)
		cref[refKey(tp)] = tp
	}
	clone.Insert(first) // duplicate of an early parent row: ignored
	snap.check(t, "after clone inserts")
	cref.equal(t, clone, "mutated clone")

	// Deleting from the clone (copy-on-write) must not touch either.
	var dels []Tuple
	for _, tp := range []Tuple{{1, 0, 0}, {1 << 22, 5, 5}} {
		for k, v := range cref {
			if v[0] == tp[0] {
				dels = append(dels, v)
				delete(cref, k)
			}
		}
	}
	shrunk, removed := clone.Without(dels)
	if removed != len(dels) {
		t.Fatalf("Without removed %d, want %d", removed, len(dels))
	}
	snap.check(t, "after Without")
	cref.equal(t, shrunk, "Without result")
}

// TestChunkedSnapshotLineage drives the engine's real write pattern —
// clone the frozen snapshot, apply a small batch, freeze, publish —
// across enough batches to cross chunk boundaries and force an overlay
// merge, holding every historical snapshot and checking at each step
// (and again at the end) that none of them ever changes.
func TestChunkedSnapshotLineage(t *testing.T) {
	u := schema.NewUniverse()
	attrs := u.Set("x", "y")
	rng := rand.New(rand.NewSource(7))

	cur := New(u, attrs)
	ref := refSet{}
	for i := 0; i < 10_000; i++ {
		tp := Tuple{Value(i), Value(rng.Intn(1 << 16))}
		cur.Insert(tp)
		ref[refKey(tp)] = tp
	}
	cur.Freeze()

	var history []frozenState
	history = append(history, capture(cur, ref))
	next := 10_000
	for batch := 0; batch < 64; batch++ {
		work := cur.Clone()
		ref = ref.clone()
		if batch%10 == 9 {
			// Delete a mix of old (prefix-rewriting) and recent rows.
			var dels []Tuple
			for _, v := range []Value{Value(batch), Value(next - 3)} {
				for k, tp := range ref {
					if tp[0] == v {
						dels = append(dels, tp)
						delete(ref, k)
					}
				}
			}
			work, _ = work.Without(dels)
		}
		for i := 0; i < 97; i++ {
			tp := Tuple{Value(next), Value(rng.Intn(1 << 16))}
			next++
			work.Insert(tp)
			ref[refKey(tp)] = tp
		}
		work.Freeze()
		cur = work
		history = append(history, capture(cur, ref))
		// Every earlier snapshot must still read exactly as captured.
		for i, h := range history {
			h.check(t, fmt.Sprintf("batch %d, snapshot %d", batch, i))
		}
	}
	if got := len(history); got != 65 {
		t.Fatalf("history length %d", got)
	}
}

// TestWithoutSharesCleanPrefix pins the structural-sharing contract of
// the chunked delete: removing rows that live in the arena tail leaves
// every full chunk before them shared with the original.
func TestWithoutSharesCleanPrefix(t *testing.T) {
	u := schema.NewUniverse()
	attrs := u.Set("a", "b")
	r := New(u, attrs)
	n := 2*ChunkRows + 100
	for i := 0; i < n; i++ {
		r.Insert(Tuple{Value(i), Value(i + 1)})
	}
	r.Freeze()

	last := Value(n - 1)
	out, removed := r.Without([]Tuple{{last, last + 1}})
	if removed != 1 || out.Card() != n-1 {
		t.Fatalf("removed %d, card %d", removed, out.Card())
	}
	for k := 0; k < 2; k++ {
		if &out.chunks[k].data[0] != &r.chunks[k].data[0] {
			t.Errorf("full chunk %d was rewritten, not shared", k)
		}
	}
	if r.Card() != n || !r.Has(Tuple{last, last + 1}) {
		t.Error("Without mutated the original")
	}

	// Deleting an early row rewrites from its chunk onward but still
	// yields the right set.
	out2, removed := r.Without([]Tuple{{0, 1}})
	if removed != 1 || out2.Card() != n-1 || out2.Has(Tuple{0, 1}) || !out2.Has(Tuple{last, last + 1}) {
		t.Fatalf("early delete: removed %d, card %d", removed, out2.Card())
	}
}

// TestSiblingClonesDoNotShareTailCapacity: two clones derived from the
// same frozen snapshot share the non-full tail chunk read-only, but
// their first appends must reallocate privately — if both wrote into
// the shared backing array's spare capacity they would silently
// overwrite each other's rows. (Database.InsertTuple twice on one
// frozen snapshot is exactly this shape.)
func TestSiblingClonesDoNotShareTailCapacity(t *testing.T) {
	u := schema.NewUniverse()
	attrs := u.Set("a", "b")
	parent := New(u, attrs)
	for i := 0; i < 10; i++ { // tail chunk far from full, spare capacity
		parent.Insert(Tuple{Value(i), Value(i)})
	}
	parent.Freeze()

	c1 := parent.Clone()
	c1.Insert(Tuple{100, 101})
	c2 := parent.Clone()
	c2.Insert(Tuple{200, 201})
	if got := c1.TupleAt(10); got[0] != 100 || got[1] != 101 {
		t.Errorf("sibling clone overwrote c1's row: %v", got)
	}
	if got := c2.TupleAt(10); got[0] != 200 || got[1] != 201 {
		t.Errorf("c2's own row wrong: %v", got)
	}
	if c1.Has(Tuple{200, 201}) || c2.Has(Tuple{100, 101}) {
		t.Error("sibling clones leaked rows into each other")
	}
	if parent.Card() != 10 || parent.Has(Tuple{100, 101}) || parent.Has(Tuple{200, 201}) {
		t.Error("parent disturbed by sibling clone appends")
	}

	// Same shape through the Database copy-on-write API.
	d := schema.MustParse(u, "ab")
	db := &Database{D: d, Rels: []*Relation{parent}}
	db.Freeze()
	dbA := db.InsertTuple(0, Tuple{300, 301})
	dbB := db.InsertTuple(0, Tuple{400, 401})
	if !dbA.Rels[0].Has(Tuple{300, 301}) || dbA.Rels[0].Has(Tuple{400, 401}) {
		t.Error("InsertTuple siblings interfered (A)")
	}
	if !dbB.Rels[0].Has(Tuple{400, 401}) || dbB.Rels[0].Has(Tuple{300, 301}) {
		t.Error("InsertTuple siblings interfered (B)")
	}
}

// TestOverlayMergeRebuildsOwnedBase pins the index lifecycle: a clone
// of a frozen relation starts on the shared base + private overlay,
// and once the overlay outgrows its bound it merges into a fresh owned
// table — without ever touching the ancestor's table.
func TestOverlayMergeRebuildsOwnedBase(t *testing.T) {
	u := schema.NewUniverse()
	attrs := u.Set("a", "b")
	parent := New(u, attrs)
	for i := 0; i < 500; i++ {
		parent.Insert(Tuple{Value(i), Value(i)})
	}
	parent.Freeze()
	parentBase := parent.base

	c := parent.Clone()
	if c.baseOwned {
		t.Fatal("clone of frozen relation owns its base table")
	}
	for i := 0; i < ChunkRows+100; i++ { // past the overlay bound
		c.Insert(Tuple{Value(1 << 20), Value(i)})
	}
	if !c.baseOwned {
		t.Error("overlay never merged into an owned base")
	}
	if c.over != nil {
		t.Error("overlay survived the merge")
	}
	if &parent.base[0] != &parentBase[0] || parent.Card() != 500 {
		t.Error("merge disturbed the ancestor")
	}
	if c.Card() != 500+ChunkRows+100 {
		t.Errorf("clone card %d", c.Card())
	}
	// Post-merge lookups still see both old and new rows.
	if !c.Has(Tuple{3, 3}) || !c.Has(Tuple{1 << 20, 7}) || c.Has(Tuple{9, 8}) {
		t.Error("post-merge lookups wrong")
	}
}

// TestInsertBlockDedups covers the bulk-insert mirror of Insert used by
// WAL replay and batch apply.
func TestInsertBlockDedups(t *testing.T) {
	u := schema.NewUniverse()
	r := New(u, u.Set("a", "b"))
	if got := r.InsertBlock([]Value{1, 2, 3, 4, 1, 2}); got != 2 {
		t.Fatalf("InsertBlock added %d, want 2", got)
	}
	if got := r.InsertBlock([]Value{3, 4, 5, 6}); got != 1 {
		t.Fatalf("second InsertBlock added %d, want 1", got)
	}
	if r.Card() != 3 {
		t.Fatalf("card %d, want 3", r.Card())
	}
	defer func() {
		if recover() == nil {
			t.Error("ragged InsertBlock did not panic")
		}
	}()
	r.InsertBlock([]Value{9})
}

// FuzzArenaChunks round-trips random arenas through the chunked layout:
// build → RawData → FromArena must be an identity on the tuple set, and
// mutating a clone must never disturb the frozen original. Runs in the
// CI fuzz-smoke lane.
func FuzzArenaChunks(f *testing.F) {
	f.Add(uint8(2), uint16(5), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add(uint8(1), uint16(3000), []byte{0xff, 0x01})
	f.Add(uint8(3), uint16(0), []byte{})
	f.Fuzz(func(t *testing.T, w uint8, rows uint16, raw []byte) {
		width := int(w)%4 + 1
		n := int(rows) % 6000
		u := schema.NewUniverse()
		names := []string{"a", "b", "c", "d"}
		attrs := u.Set(names[:width]...)

		data := make([]Value, n*width)
		for i := range data {
			if len(raw) > 0 {
				data[i] = Value(raw[i%len(raw)]) * Value(i%257)
			}
		}
		r, err := FromArena(u, attrs, n, data)
		if err != nil {
			t.Fatal(err)
		}
		round, err := FromArena(u, attrs, r.Card(), r.RawData())
		if err != nil {
			t.Fatal(err)
		}
		if !round.Equal(r) {
			t.Fatalf("RawData round trip lost tuples: %d vs %d", round.Card(), r.Card())
		}

		r.Freeze()
		before := r.RawData()
		clone := r.Clone()
		tp := make(Tuple, width)
		for i := 0; i < 64; i++ {
			for j := range tp {
				tp[j] = Value(i*width + j + 1<<20)
			}
			clone.Insert(tp)
		}
		if clone.Card() != r.Card()+64 {
			t.Fatalf("clone card %d, want %d", clone.Card(), r.Card()+64)
		}
		if !slices.Equal(r.RawData(), before) || r.Card() != n-dupCount(data, width, n) {
			t.Fatal("mutating the clone changed the frozen original")
		}
	})
}

// dupCount counts duplicate rows in a row-major arena (the rows
// FromArena's set semantics eliminate).
func dupCount(data []Value, width, rows int) int {
	seen := map[string]bool{}
	dups := 0
	for i := 0; i < rows; i++ {
		k := refKey(Tuple(data[i*width : (i+1)*width]))
		if seen[k] {
			dups++
		}
		seen[k] = true
	}
	return dups
}
