package relation

// Partition-parallel counterparts of BenchmarkJoinColumnar and
// BenchmarkSemijoinColumnar: same generated inputs, hash-partitioned
// on the shared attribute, operators fanned across P workers. The
// steady-state benchmarks reuse the partitionings across iterations —
// the zero-repartition case a full reducer hits when consecutive
// semijoins share a key; the cold benchmarks pay partitioning every
// iteration. Run with
//
//	go test ./internal/relation -bench 'Parallel|Partition' -cpu 4

import (
	"fmt"
	"testing"

	"gyokit/internal/schema"
)

func parallelPs() []int { return []int{2, 4, 8} }

func BenchmarkPartition(b *testing.B) {
	u := schema.NewUniverse()
	r, _, _, _ := benchJoinPair(u, 10000)
	key := u.Set("b")
	for _, p := range parallelPs() {
		pe := NewParExec(p)
		b.Run(fmt.Sprintf("p=%d/n=10000", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pe.Partition(r, key)
			}
		})
	}
}

func BenchmarkJoinParallel(b *testing.B) {
	u := schema.NewUniverse()
	r, s, _, _ := benchJoinPair(u, 10000)
	key := r.Attrs().Intersect(s.Attrs())
	for _, p := range parallelPs() {
		pe := NewParExec(p)
		pr := pe.Partition(r, key)
		ps := pe.Partition(s, key)
		b.Run(fmt.Sprintf("p=%d/n=10000", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pe.JoinPar(pr, ps)
			}
		})
	}
}

func BenchmarkJoinParallelCold(b *testing.B) {
	u := schema.NewUniverse()
	r, s, _, _ := benchJoinPair(u, 10000)
	key := r.Attrs().Intersect(s.Attrs())
	for _, p := range parallelPs() {
		pe := NewParExec(p)
		b.Run(fmt.Sprintf("p=%d/n=10000", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pe.JoinPar(pe.Partition(r, key), pe.Partition(s, key))
			}
		})
	}
}

func BenchmarkSemijoinParallel(b *testing.B) {
	u := schema.NewUniverse()
	r, s, _, _ := benchJoinPair(u, 10000)
	key := r.Attrs().Intersect(s.Attrs())
	for _, p := range parallelPs() {
		pe := NewParExec(p)
		pr := pe.Partition(r, key)
		ps := pe.Partition(s, key)
		b.Run(fmt.Sprintf("p=%d/n=10000", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pe.SemijoinPar(pr, ps)
			}
		})
	}
}

func BenchmarkSemijoinParallelCold(b *testing.B) {
	u := schema.NewUniverse()
	r, s, _, _ := benchJoinPair(u, 10000)
	key := r.Attrs().Intersect(s.Attrs())
	for _, p := range parallelPs() {
		pe := NewParExec(p)
		b.Run(fmt.Sprintf("p=%d/n=10000", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pe.SemijoinPar(pe.Partition(r, key), pe.Partition(s, key))
			}
		})
	}
}
