package relation

import (
	"math/rand"
	"testing"

	"gyokit/internal/schema"
)

// randomRelation builds a relation over the given attrs with up to n
// random tuples.
func randomRelation(u *schema.Universe, attrs schema.AttrSet, n, domain int, rng *rand.Rand) *Relation {
	r, _ := RandomUniversal(u, attrs, n, domain, rng)
	return r
}

// randomSubset picks a random (possibly empty) subset of attrs.
func randomSubset(attrs schema.AttrSet, rng *rand.Rand) schema.AttrSet {
	out := schema.NewAttrSet()
	attrs.ForEach(func(a schema.Attr) bool {
		if rng.Intn(2) == 0 {
			out = out.Add(a)
		}
		return true
	})
	return out
}

func TestPartitionMergeRoundTrip(t *testing.T) {
	u := schema.NewUniverse()
	abc := u.Set("a", "b", "c")
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		r := randomRelation(u, abc, 1+rng.Intn(400), 1+rng.Intn(16), rng)
		key := randomSubset(abc, rng)
		p := 1 + rng.Intn(8)
		pt := Partition(r, key, p)
		if pt.Card() != r.Card() {
			t.Fatalf("trial %d: partition holds %d tuples, source %d", trial, pt.Card(), r.Card())
		}
		if got := pt.Merge(); !got.Equal(r) {
			t.Fatalf("trial %d: partition(%d)/merge changed the relation", trial, p)
		}
	}
}

// TestPartitionPlacement checks the placement invariant directly:
// rows agreeing on the key columns land in the same shard.
func TestPartitionPlacement(t *testing.T) {
	u := schema.NewUniverse()
	ab := u.Set("a", "b")
	r := New(u, ab)
	for i := 0; i < 100; i++ {
		r.Insert(Tuple{Value(i % 5), Value(i)})
	}
	key := u.Set("a")
	pt := Partition(r, key, 4)
	// Each key value must appear in at most one shard.
	home := map[Value]int{}
	for si, sh := range pt.Shards {
		for i := 0; i < sh.Card(); i++ {
			a := sh.TupleAt(i)[0]
			if prev, ok := home[a]; ok && prev != si {
				t.Fatalf("key value %d split across shards %d and %d", a, prev, si)
			}
			home[a] = si
		}
	}
}

func TestParExecPartitionMatchesSerial(t *testing.T) {
	u := schema.NewUniverse()
	abcd := u.Set("a", "b", "c", "d")
	rng := rand.New(rand.NewSource(11))
	pe := NewParExec(4)
	for trial := 0; trial < 30; trial++ {
		r := randomRelation(u, abcd, 1+rng.Intn(1000), 1+rng.Intn(12), rng)
		key := randomSubset(abcd, rng)
		serial := Partition(r, key, 4)
		par := pe.Partition(r, key)
		if len(serial.Shards) != len(par.Shards) {
			t.Fatalf("trial %d: shard counts differ", trial)
		}
		for i := range serial.Shards {
			if !serial.Shards[i].Equal(par.Shards[i]) {
				t.Fatalf("trial %d: shard %d differs between serial and parallel partitioning", trial, i)
			}
		}
	}
}

func TestRepartition(t *testing.T) {
	u := schema.NewUniverse()
	abc := u.Set("a", "b", "c")
	rng := rand.New(rand.NewSource(13))
	pe := NewParExec(3)
	for trial := 0; trial < 30; trial++ {
		r := randomRelation(u, abc, 1+rng.Intn(500), 1+rng.Intn(10), rng)
		k1 := randomSubset(abc, rng)
		k2 := randomSubset(abc, rng)
		pt := pe.Partition(r, k1)
		rp := pe.Repartition(pt, k2)
		if !rp.Key.Equal(k2) {
			t.Fatalf("trial %d: repartition kept the old key", trial)
		}
		if !rp.Merge().Equal(r) {
			t.Fatalf("trial %d: repartition lost or invented tuples", trial)
		}
		// Repartitioning must agree with partitioning from scratch.
		direct := pe.Partition(r, k2)
		for i := range rp.Shards {
			if !rp.Shards[i].Equal(direct.Shards[i]) {
				t.Fatalf("trial %d: shard %d differs between repartition and direct partition", trial, i)
			}
		}
	}
}

// joinPairFor builds two relations over partially overlapping schemas.
func joinPairFor(u *schema.Universe, rng *rand.Rand, n int) (*Relation, *Relation) {
	ab := u.Set("a", "b")
	bc := u.Set("b", "c")
	r := randomRelation(u, ab, n, 1+rng.Intn(12), rng)
	s := randomRelation(u, bc, n, 1+rng.Intn(12), rng)
	return r, s
}

func TestJoinParMatchesSerial(t *testing.T) {
	u := schema.NewUniverse()
	rng := rand.New(rand.NewSource(17))
	for _, p := range []int{1, 2, 4, 7} {
		pe := NewParExec(p)
		for trial := 0; trial < 25; trial++ {
			r, s := joinPairFor(u, rng, 1+rng.Intn(300))
			key := r.Attrs().Intersect(s.Attrs())
			pr := pe.Partition(r, key)
			ps := pe.Partition(s, key)
			got := pe.JoinPar(pr, ps).Merge()
			want := r.Join(s)
			if !got.Equal(want) {
				t.Fatalf("p=%d trial %d: parallel join %d tuples, serial %d", p, trial, got.Card(), want.Card())
			}
		}
	}
}

func TestSemijoinParMatchesSerial(t *testing.T) {
	u := schema.NewUniverse()
	rng := rand.New(rand.NewSource(19))
	for _, p := range []int{1, 2, 4, 7} {
		pe := NewParExec(p)
		for trial := 0; trial < 25; trial++ {
			r, s := joinPairFor(u, rng, 1+rng.Intn(300))
			key := r.Attrs().Intersect(s.Attrs())
			pr := pe.Partition(r, key)
			ps := pe.Partition(s, key)
			got := pe.SemijoinPar(pr, ps).Merge()
			want := r.Semijoin(s)
			if !got.Equal(want) {
				t.Fatalf("p=%d trial %d: parallel semijoin %d tuples, serial %d", p, trial, got.Card(), want.Card())
			}
		}
	}
}

func TestProjectParMatchesSerial(t *testing.T) {
	u := schema.NewUniverse()
	abc := u.Set("a", "b", "c")
	rng := rand.New(rand.NewSource(23))
	pe := NewParExec(4)
	for trial := 0; trial < 25; trial++ {
		r := randomRelation(u, abc, 1+rng.Intn(400), 1+rng.Intn(8), rng)
		key := u.Set("a")
		x := u.Set("a", "b")
		pt := pe.Partition(r, key)
		got := pe.ProjectPar(pt, x).Merge()
		want := r.Project(x)
		if !got.Equal(want) {
			t.Fatalf("trial %d: parallel projection %d tuples, serial %d", trial, got.Card(), want.Card())
		}
	}
}

func TestProjectParPanicsWhenKeyDropped(t *testing.T) {
	u := schema.NewUniverse()
	ab := u.Set("a", "b")
	r := randomRelation(u, ab, 50, 4, rand.New(rand.NewSource(1)))
	pe := NewParExec(2)
	pt := pe.Partition(r, u.Set("a"))
	defer func() {
		if recover() == nil {
			t.Fatal("projection dropping the partition key must panic")
		}
	}()
	pe.ProjectPar(pt, u.Set("b"))
}

func TestPartitionDoesNotMutateSource(t *testing.T) {
	u := schema.NewUniverse()
	ab := u.Set("a", "b")
	r := randomRelation(u, ab, 200, 8, rand.New(rand.NewSource(3)))
	r.Freeze() // partitioning a frozen snapshot relation must work
	before := r.Clone()
	pe := NewParExec(4)
	pt := pe.Partition(r, u.Set("b"))
	_ = pe.Repartition(pt, u.Set("a"))
	if !r.Equal(before) {
		t.Fatal("partitioning mutated its source relation")
	}
}

// TestResizeKeepsWorkers: shrinking a pooled ParExec must not discard
// warmed worker contexts — alternating-parallelism requests reuse them.
func TestResizeKeepsWorkers(t *testing.T) {
	pe := NewParExec(8)
	before := append([]*Exec(nil), pe.workers...)
	pe.Resize(2)
	if pe.P() != 2 {
		t.Fatalf("P() = %d after Resize(2)", pe.P())
	}
	pe.Resize(8)
	if pe.P() != 8 || len(pe.workers) != 8 {
		t.Fatalf("P() = %d, workers = %d after growing back", pe.P(), len(pe.workers))
	}
	for i := range before {
		if pe.workers[i] != before[i] {
			t.Fatalf("worker %d was reallocated across Resize calls", i)
		}
	}
	// Shrunk context still partitions into the active count and can
	// repartition a wider partitioning.
	u := schema.NewUniverse()
	ab := u.Set("a", "b")
	r := randomRelation(u, ab, 300, 8, rand.New(rand.NewSource(5)))
	wide := pe.Partition(r, u.Set("a"))
	pe.Resize(3)
	narrow := pe.Repartition(wide, u.Set("b"))
	if narrow.P() != 3 {
		t.Fatalf("repartition produced %d shards, want 3", narrow.P())
	}
	if !narrow.Merge().Equal(r) {
		t.Fatal("repartition across a resize lost tuples")
	}
}

// FuzzPartition fuzzes the partition/merge round-trip: arbitrary
// tuples plus an arbitrary key subset and shard count must reconstruct
// the exact relation, for both the serial and the parallel
// partitioner.
func FuzzPartition(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, uint8(0b101), uint8(4))
	f.Add([]byte{}, uint8(0), uint8(1))
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7}, uint8(0b11), uint8(9))
	f.Fuzz(func(t *testing.T, data []byte, keyBits, pRaw uint8) {
		u := schema.NewUniverse()
		attrs := u.Set("a", "b", "c")
		r := New(u, attrs)
		for i := 0; i+3 <= len(data); i += 3 {
			r.Insert(Tuple{Value(data[i]), Value(data[i+1]), Value(data[i+2])})
		}
		key := schema.NewAttrSet()
		for i, a := range attrs.Attrs() {
			if keyBits&(1<<i) != 0 {
				key = key.Add(a)
			}
		}
		p := int(pRaw)%16 + 1
		pt := Partition(r, key, p)
		if pt.Card() != r.Card() {
			t.Fatalf("partition holds %d tuples, source %d", pt.Card(), r.Card())
		}
		if !pt.Merge().Equal(r) {
			t.Fatal("serial partition/merge changed the relation")
		}
		pe := NewParExec(p)
		ppt := pe.Partition(r, key)
		for i := range pt.Shards {
			if !pt.Shards[i].Equal(ppt.Shards[i]) {
				t.Fatalf("shard %d: parallel partitioner disagrees with serial", i)
			}
		}
	})
}
