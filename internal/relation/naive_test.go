package relation

// Differential / property tests: the columnar hash engine is checked
// against naiveRel, a deliberately simple nested-loop reference
// implementation that shares no code with the engine (string-keyed
// rows, O(n·m) joins). On randomized databases every operator must be
// set-equal to the reference.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"gyokit/internal/gen"
	"gyokit/internal/schema"
)

// naiveRel is the reference implementation: rows keyed by their
// rendered string, operators by nested loops over map iteration.
type naiveRel struct {
	attrs schema.AttrSet
	cols  []schema.Attr
	rows  map[string]Tuple
}

func newNaive(attrs schema.AttrSet) *naiveRel {
	return &naiveRel{attrs: attrs, cols: attrs.Attrs(), rows: map[string]Tuple{}}
}

func naiveKey(t Tuple) string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

func (r *naiveRel) insert(t Tuple) {
	if len(t) != len(r.cols) {
		panic("naive: arity")
	}
	r.rows[naiveKey(t)] = append(Tuple(nil), t...)
}

func (r *naiveRel) pos(a schema.Attr) int {
	for i, c := range r.cols {
		if c == a {
			return i
		}
	}
	panic("naive: attribute not present")
}

func (r *naiveRel) project(x schema.AttrSet) *naiveRel {
	out := newNaive(x)
	for _, t := range r.rows {
		nt := make(Tuple, len(out.cols))
		for i, c := range out.cols {
			nt[i] = t[r.pos(c)]
		}
		out.insert(nt)
	}
	return out
}

func (r *naiveRel) join(s *naiveRel) *naiveRel {
	shared := r.attrs.Intersect(s.attrs).Attrs()
	out := newNaive(r.attrs.Union(s.attrs))
	for _, rt := range r.rows {
		for _, st := range s.rows {
			ok := true
			for _, c := range shared {
				if rt[r.pos(c)] != st[s.pos(c)] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			nt := make(Tuple, len(out.cols))
			for i, c := range out.cols {
				if r.attrs.Has(c) {
					nt[i] = rt[r.pos(c)]
				} else {
					nt[i] = st[s.pos(c)]
				}
			}
			out.insert(nt)
		}
	}
	return out
}

func (r *naiveRel) semijoin(s *naiveRel) *naiveRel {
	shared := r.attrs.Intersect(s.attrs).Attrs()
	out := newNaive(r.attrs)
	for _, rt := range r.rows {
		for _, st := range s.rows {
			ok := true
			for _, c := range shared {
				if rt[r.pos(c)] != st[s.pos(c)] {
					ok = false
					break
				}
			}
			if ok {
				out.insert(rt)
				break
			}
		}
	}
	return out
}

// sortedRows renders a tuple multiset canonically for comparison.
func sortedRows(tuples []Tuple) []string {
	out := make([]string, len(tuples))
	for i, t := range tuples {
		out[i] = naiveKey(t)
	}
	sort.Strings(out)
	return out
}

func sameRows(t *testing.T, label string, eng *Relation, ref *naiveRel) {
	t.Helper()
	if !eng.Attrs().Equal(ref.attrs) {
		t.Fatalf("%s: attrs %v ≠ %v", label, eng.Attrs(), ref.attrs)
	}
	got := sortedRows(eng.Tuples())
	var refTuples []Tuple
	for _, rt := range ref.rows {
		refTuples = append(refTuples, rt)
	}
	want := sortedRows(refTuples)
	if len(got) != len(want) {
		t.Fatalf("%s: card %d ≠ %d\ngot  %v\nwant %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d: %s ≠ %s", label, i, got[i], want[i])
		}
	}
}

// randomPair builds the same random tuple set in both engines.
func randomPair(rng *rand.Rand, u *schema.Universe, attrs schema.AttrSet, n, domain int) (*Relation, *naiveRel) {
	eng := New(u, attrs)
	ref := newNaive(attrs)
	t := make(Tuple, attrs.Card())
	for i := 0; i < n; i++ {
		for j := range t {
			t[j] = Value(rng.Intn(domain))
		}
		eng.Insert(t)
		ref.insert(t)
	}
	return eng, ref
}

func TestDifferentialOperators(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	u := schema.NewUniverse()
	pool := u.Set("a", "b", "c", "d", "e", "f")
	ex := NewExec() // shared across all trials to catch scratch aliasing
	for trial := 0; trial < 120; trial++ {
		ra := gen.RandomAttrSubset(rng, pool, 0.6)
		sa := gen.RandomAttrSubset(rng, pool, 0.6)
		if ra.IsEmpty() || sa.IsEmpty() {
			continue
		}
		n := 1 + rng.Intn(40)
		domain := 1 + rng.Intn(5)
		r, nr := randomPair(rng, u, ra, n, domain)
		s, ns := randomPair(rng, u, sa, n, domain)

		sameRows(t, "insert r", r, nr)
		sameRows(t, "insert s", s, ns)
		sameRows(t, "join", ex.Join(r, s), nr.join(ns))
		sameRows(t, "semijoin", ex.Semijoin(r, s), nr.semijoin(ns))
		px := gen.RandomAttrSubset(rng, ra, 0.5)
		sameRows(t, "project", ex.Project(r, px), nr.project(px))
	}
}

func TestDifferentialJoinAll(t *testing.T) {
	rng := rand.New(rand.NewSource(77177))
	u := schema.NewUniverse()
	pool := u.Set("a", "b", "c", "d", "e")
	ex := NewExec()
	for trial := 0; trial < 60; trial++ {
		k := 2 + rng.Intn(3)
		rels := make([]*Relation, 0, k)
		refs := make([]*naiveRel, 0, k)
		for i := 0; i < k; i++ {
			attrs := gen.RandomAttrSubset(rng, pool, 0.6)
			if attrs.IsEmpty() {
				attrs = schema.NewAttrSet(pool.Min())
			}
			r, nr := randomPair(rng, u, attrs, 1+rng.Intn(20), 1+rng.Intn(4))
			rels = append(rels, r)
			refs = append(refs, nr)
		}
		// The greedy order must be set-equal to the left-to-right fold.
		ref := refs[0]
		for _, nr := range refs[1:] {
			ref = ref.join(nr)
		}
		sameRows(t, "joinall", ex.JoinAll(rels), ref)
	}
}

// TestDifferentialLarge exercises table growth and collision handling
// well past the initial table size.
func TestDifferentialLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	u := schema.NewUniverse()
	ra := u.Set("a", "b")
	sa := u.Set("b", "c")
	r, nr := randomPair(rng, u, ra, 2500, 30)
	s, ns := randomPair(rng, u, sa, 2500, 30)
	sameRows(t, "large insert", r, nr)
	ex := NewExec()
	sameRows(t, "large semijoin", ex.Semijoin(r, s), nr.semijoin(ns))
	sameRows(t, "large project", ex.Project(r, u.Set("a")), nr.project(u.Set("a")))
	sameRows(t, "large join", ex.Join(r, s), nr.join(ns))
}
