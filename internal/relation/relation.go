// Package relation implements the relational-algebra substrate: relation
// states over attribute sets, natural join, projection, semijoin, and
// universal-relation database construction (paper §2). Tuples carry
// int32 values; relations have set semantics (duplicates eliminated).
//
// Storage is columnar-adjacent and persistent: every relation keeps its
// rows in a chunked row-major arena — fixed-size (ChunkRows) immutable
// chunks with width-strided access, never per-row slices. Full chunks
// are immutable from the moment they fill, so snapshots share them
// structurally: Clone of a frozen relation copies only the chunk table
// (slice headers) and the small index overlay, making the engine's
// copy-on-write write path O(batch) instead of O(card) per mutation
// batch. Set semantics are enforced by an open-addressing hash index
// over 64-bit row hashes with full collision verification — a shared
// immutable base table inherited from the snapshot lineage plus a small
// private overlay for rows appended since, merged back into an owned
// base once the overlay outgrows its bound. No string keys are
// materialized anywhere on the insert, lookup, join, or semijoin paths.
// The operators live on Exec (see exec.go), a reusable execution
// context that amortizes hash tables and scratch buffers across a whole
// program run; the methods on Relation are convenience wrappers over a
// throwaway Exec.
package relation

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"

	"gyokit/internal/schema"
)

// Value is a single attribute value.
type Value = int32

// Tuple is a row; values are ordered by the owning relation's sorted
// attribute list.
type Tuple []Value

// ChunkRows is the arena chunk size in rows. A chunk that reaches
// ChunkRows rows is full and immutable forever; only the (unique,
// growing) tail chunk of a relation is ever appended to. 4096 rows
// keeps a full chunk's arena at 16·width KiB plus 32 KiB of row hashes
// — big enough to amortize the chunk-table indirection, small enough
// that the copy-on-write tail copy stays trivial next to a large
// relation.
const ChunkRows = 1 << chunkShift

const (
	chunkShift = 12
	chunkMask  = ChunkRows - 1
)

// chunk is one fixed-capacity block of the arena: up to ChunkRows rows
// of values (row-major) with their precomputed 64-bit hashes alongside.
// len(hashes) is the chunk's row count; len(data) is always row count ×
// width.
type chunk struct {
	data   []Value
	hashes []uint64
	// id is the chunk's durable identity: nonzero exactly when the chunk
	// is full (and therefore immutable forever), drawn from a
	// process-wide monotonic counter at the moment the chunk fills.
	// Clones copy the chunk struct by value, id included, so structurally
	// shared chunks share one id and two live chunks with the same id
	// always hold identical rows. The counter is process-wide rather than
	// per-relation so the id alone can key a durable chunk table — a
	// relation has no stable identity across Drop, which renumbers the
	// survivors. The mutable tail chunk never carries an id.
	id uint64
}

// chunkIDs is the process-wide chunk-id counter. SetChunkID raises it
// past every id restored from a checkpoint manifest, so freshly filled
// chunks can never collide with a restored identity.
var chunkIDs atomic.Uint64

func nextChunkID() uint64 { return chunkIDs.Add(1) }

// Relation is a relation state over a fixed attribute set.
//
// A Relation is safe for concurrent READS (operators never mutate their
// inputs); mutation via Insert/InsertMap is single-writer. Freeze marks
// a relation immutable, turning later Inserts into panics — the serving
// layer freezes every relation of a published Database snapshot so that
// accidental writes to shared state fail loudly instead of racing.
// Freezing also unlocks cheap snapshots: Clone of a frozen relation
// shares every chunk and the base index with the original.
type Relation struct {
	U     *schema.Universe
	attrs schema.AttrSet
	cols  []schema.Attr // sorted ascending
	width int

	chunks []chunk // row i lives in chunks[i>>chunkShift] at offset (i&chunkMask)*width
	n      int

	// The set-semantics index. When baseOwned, base is this relation's
	// private mutable open-addressing table over all n rows (overlay
	// unused). When !baseOwned, base is an immutable table inherited
	// from a snapshot ancestor covering rows [0, baseN), and over is a
	// private overlay covering rows [baseN, n); once the overlay
	// outgrows overlayBound the two are merged into a fresh owned base.
	// Slot values are row index + 1; 0 = empty.
	base      []int32
	over      []int32
	baseN     int
	baseOwned bool

	frozen atomic.Bool
}

// New returns an empty relation over the given attribute set.
func New(u *schema.Universe, attrs schema.AttrSet) *Relation {
	cols := attrs.Attrs()
	return &Relation{
		U:         u,
		attrs:     attrs.Clone(),
		cols:      cols,
		width:     len(cols),
		baseOwned: true,
	}
}

// NewSized returns an empty relation over attrs presized for rows
// tuples: the index table is allocated at its final size and the first
// chunk at full capacity, so bulk-loading rows tuples never rehashes.
func NewSized(u *schema.Universe, attrs schema.AttrSet, rows int) *Relation {
	r := New(u, attrs)
	r.grow(rows)
	return r
}

// Attrs returns the relation's attribute set.
func (r *Relation) Attrs() schema.AttrSet { return r.attrs.Clone() }

// Cols returns the sorted attribute list defining tuple column order.
func (r *Relation) Cols() []schema.Attr { return append([]schema.Attr(nil), r.cols...) }

// Card returns the number of tuples.
func (r *Relation) Card() int { return r.n }

// row returns the i-th row as a view into its arena chunk.
func (r *Relation) row(i int) []Value {
	o := (i & chunkMask) * r.width
	return r.chunks[i>>chunkShift].data[o : o+r.width]
}

// hash returns the stored 64-bit hash of row i.
func (r *Relation) hash(i int) uint64 {
	return r.chunks[i>>chunkShift].hashes[i&chunkMask]
}

// Tuples returns the rows as views into the arena (shared; callers
// must not modify).
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, r.n)
	for i := range out {
		out[i] = Tuple(r.row(i))
	}
	return out
}

// TupleAt returns row i as a view into the arena (shared; callers must
// not modify). For bounded iteration it avoids Tuples' O(Card) slice
// of row headers.
func (r *Relation) TupleAt(i int) Tuple { return Tuple(r.row(i)) }

// appendRow appends a row (copied) and its hash to the arena tail,
// starting a fresh chunk when the tail is full. Index maintenance is
// the caller's job.
func (r *Relation) appendRow(vals []Value, h uint64) {
	if len(r.chunks) == 0 || len(r.chunks[len(r.chunks)-1].hashes) == ChunkRows {
		r.chunks = append(r.chunks, chunk{})
	}
	c := &r.chunks[len(r.chunks)-1]
	c.data = append(c.data, vals...)
	c.hashes = append(c.hashes, h)
	if len(c.hashes) == ChunkRows {
		c.id = nextChunkID()
	}
	r.n++
}

// growBase (re)builds the owned open-addressing table at double
// capacity, reusing the stored row hashes so rows are never re-hashed.
func (r *Relation) growBase() {
	size := 16
	if len(r.base) > 0 {
		size = 2 * len(r.base)
	}
	r.base = rebuildTable(r, size, 0, r.n)
}

// growOverlay doubles the overlay table, re-placing the overlay rows.
func (r *Relation) growOverlay() {
	size := 16
	if len(r.over) > 0 {
		size = 2 * len(r.over)
	}
	r.over = rebuildTable(r, size, r.baseN, r.n)
}

// rebuildTable builds a table of the given power-of-two size holding
// rows [lo, hi) of r, placed by their stored hashes. Rows of a relation
// are distinct by construction, so placement needs no compares.
func rebuildTable(r *Relation, size, lo, hi int) []int32 {
	t := make([]int32, size)
	mask := uint64(size - 1)
	for i := lo; i < hi; i++ {
		j := r.hash(i) & mask
		for t[j] != 0 {
			j = (j + 1) & mask
		}
		t[j] = int32(i + 1)
	}
	return t
}

// overlayBound is the overlay row count past which a shared-base
// relation merges base+overlay into a fresh owned table. The bound
// grows with the relation (n/64) so sustained ingest rebuilds the big
// table geometrically rarely, with a floor so small relations don't
// thrash.
func (r *Relation) overlayBound() int {
	if b := r.n / 64; b > ChunkRows {
		return b
	}
	return ChunkRows
}

// rebuildOwned merges the shared base and the overlay into one owned
// table sized for n rows.
func (r *Relation) rebuildOwned() {
	r.base = rebuildTable(r, tableSize(r.n), 0, r.n)
	r.baseOwned = true
	r.baseN = r.n
	r.over = nil
}

// probe reports whether a row equal to vals (with hash h) is indexed by
// the given table.
func (r *Relation) probe(table []int32, vals []Value, h uint64) bool {
	if len(table) == 0 {
		return false
	}
	mask := uint64(len(table) - 1)
	for j := h & mask; ; j = (j + 1) & mask {
		s := table[j]
		if s == 0 {
			return false
		}
		if i := int(s - 1); r.hash(i) == h && valuesEqual(r.row(i), vals) {
			return true
		}
	}
}

// insertHashed adds the row (given with its precomputed hash) unless an
// equal row is present; it reports whether the row was added. vals is
// copied into the arena.
func (r *Relation) insertHashed(vals []Value, h uint64) bool {
	if r.baseOwned {
		if 4*(r.n+1) > 3*len(r.base) {
			r.growBase()
		}
		mask := uint64(len(r.base) - 1)
		j := h & mask
		for {
			s := r.base[j]
			if s == 0 {
				r.base[j] = int32(r.n + 1)
				r.appendRow(vals, h)
				return true
			}
			if i := int(s - 1); r.hash(i) == h && valuesEqual(r.row(i), vals) {
				return false
			}
			j = (j + 1) & mask
		}
	}
	// Shared base: duplicate-check it read-only, then claim an overlay
	// slot. The shared table is never written — ancestors and siblings
	// keep probing it concurrently.
	if r.probe(r.base, vals, h) {
		return false
	}
	if 4*(r.n-r.baseN+1) > 3*len(r.over) {
		r.growOverlay()
	}
	mask := uint64(len(r.over) - 1)
	j := h & mask
	for {
		s := r.over[j]
		if s == 0 {
			r.over[j] = int32(r.n + 1)
			r.appendRow(vals, h)
			break
		}
		if i := int(s - 1); r.hash(i) == h && valuesEqual(r.row(i), vals) {
			return false
		}
		j = (j + 1) & mask
	}
	if r.n-r.baseN > r.overlayBound() {
		r.rebuildOwned()
	}
	return true
}

// contains reports whether a row equal to vals (with hash h) is present.
func (r *Relation) contains(vals []Value, h uint64) bool {
	if r.probe(r.base, vals, h) {
		return true
	}
	return len(r.over) > 0 && r.probe(r.over, vals, h)
}

// Insert adds a tuple given in column order. Duplicates are ignored.
// It panics if the arity is wrong or the relation is frozen
// (programmer errors).
func (r *Relation) Insert(t Tuple) {
	if r.frozen.Load() {
		panic("relation: insert into frozen relation (clone the snapshot first)")
	}
	if len(t) != r.width {
		panic(fmt.Sprintf("relation: arity %d ≠ %d", len(t), r.width))
	}
	r.insertHashed(t, hashValues(t))
}

// InsertBlock inserts a row-major block of tuples given in column
// order (len(data) must be a multiple of the width, which must be
// positive) and reports how many were actually inserted — duplicates,
// inside the block or against the relation, are ignored. It is the
// bulk mirror of Insert: the WAL-replay and batch-apply paths feed
// whole mutation batches through it without materializing per-row
// Tuple headers.
func (r *Relation) InsertBlock(data []Value) int {
	if r.frozen.Load() {
		panic("relation: insert into frozen relation (clone the snapshot first)")
	}
	if r.width == 0 || len(data)%r.width != 0 {
		panic(fmt.Sprintf("relation: block of %d values over width %d", len(data), r.width))
	}
	added := 0
	for o := 0; o < len(data); o += r.width {
		row := data[o : o+r.width]
		if r.insertHashed(row, hashValues(row)) {
			added++
		}
	}
	return added
}

// InsertMap adds a tuple given as attribute→value; all attributes of
// the relation must be present.
func (r *Relation) InsertMap(m map[schema.Attr]Value) {
	t := make(Tuple, r.width)
	for i, c := range r.cols {
		v, ok := m[c]
		if !ok {
			panic(fmt.Sprintf("relation: missing attribute %q", r.U.Name(c)))
		}
		t[i] = v
	}
	r.Insert(t)
}

// Has reports whether the tuple (in column order) is present.
func (r *Relation) Has(t Tuple) bool {
	if len(t) != r.width {
		return false
	}
	return r.contains(t, hashValues(t))
}

// Clone returns an independent copy sharing structure with r wherever
// that is safe. The copy is never frozen, so cloning is the
// copy-on-write escape hatch for modifying a snapshot relation.
//
// Full chunks are immutable from birth and always shared. The tail
// chunk and the index are shared when they can never change under the
// copy's feet — the tail when r is frozen, the base table when r is
// frozen or the table was itself inherited frozen — and deep-copied
// otherwise. Cloning a frozen snapshot relation therefore costs
// O(chunk-table + overlay), independent of cardinality: the engine's
// per-batch copy-on-write write path.
func (r *Relation) Clone() *Relation {
	out := New(r.U, r.attrs)
	out.chunks = append([]chunk(nil), r.chunks...)
	out.n = r.n
	frozen := r.frozen.Load()
	if len(out.chunks) > 0 {
		if t := &out.chunks[len(out.chunks)-1]; len(t.hashes) < ChunkRows {
			if frozen {
				// The frozen parent can never append, but two sibling
				// clones of it could both append into the tail's spare
				// backing capacity and clobber each other — clip the
				// capacity so the first append reallocates privately.
				t.data = t.data[:len(t.data):len(t.data)]
				t.hashes = t.hashes[:len(t.hashes):len(t.hashes)]
			} else {
				t.data = append([]Value(nil), t.data...)
				t.hashes = append([]uint64(nil), t.hashes...)
			}
		}
	}
	if frozen || !r.baseOwned {
		out.base = r.base
		out.baseOwned = false
		out.baseN = r.baseN
		if r.baseOwned {
			out.baseN = r.n
		}
		out.over = append([]int32(nil), r.over...)
	} else {
		out.base = append([]int32(nil), r.base...)
		out.baseN = r.n
	}
	return out
}

// Freeze marks the relation immutable: subsequent Inserts panic.
// Freezing is idempotent and safe to call concurrently with reads.
func (r *Relation) Freeze() { r.frozen.Store(true) }

// Frozen reports whether the relation has been frozen.
func (r *Relation) Frozen() bool { return r.frozen.Load() }

// Equal reports whether r and s have the same attribute set and the
// same tuple set.
func (r *Relation) Equal(s *Relation) bool {
	if !r.attrs.Equal(s.attrs) || r.n != s.n {
		return false
	}
	for i := 0; i < r.n; i++ {
		if !s.contains(r.row(i), r.hash(i)) {
			return false
		}
	}
	return true
}

func (r *Relation) colPos(a schema.Attr) int {
	i := sort.Search(len(r.cols), func(i int) bool { return r.cols[i] >= a })
	if i == len(r.cols) || r.cols[i] != a {
		panic(fmt.Sprintf("relation: attribute %d not present", a))
	}
	return i
}

// Project returns π_x(r). x must be a subset of r's attributes.
func (r *Relation) Project(x schema.AttrSet) *Relation {
	return (&Exec{}).Project(r, x)
}

// Join returns the natural join r ⋈ s (hash join on the shared
// attributes; a cross product when none are shared).
func (r *Relation) Join(s *Relation) *Relation {
	return (&Exec{}).Join(r, s)
}

// Semijoin returns r ⋉ s = π_{attrs(r)}(r ⋈ s): the tuples of r that
// join with at least one tuple of s.
func (r *Relation) Semijoin(s *Relation) *Relation {
	return (&Exec{}).Semijoin(r, s)
}

// JoinAll folds the natural join over rels in a greedy
// smallest-cardinality-first order (see Exec.JoinAll). It panics on an
// empty input (the identity of ⋈ is the zero-attribute relation with
// one tuple; callers that need it can construct it explicitly).
func JoinAll(rels []*Relation) *Relation {
	return (&Exec{}).JoinAll(rels)
}

// String renders the relation sorted, for debugging and golden tests.
func (r *Relation) String() string {
	var b strings.Builder
	names := make([]string, len(r.cols))
	for i, c := range r.cols {
		names[i] = r.U.Name(c)
	}
	fmt.Fprintf(&b, "%s[%d]{", strings.Join(names, ","), r.n)
	rows := make([]string, r.n)
	for i := 0; i < r.n; i++ {
		t := r.row(i)
		parts := make([]string, len(t))
		for j, v := range t {
			parts[j] = fmt.Sprint(v)
		}
		rows[i] = "(" + strings.Join(parts, ",") + ")"
	}
	sort.Strings(rows)
	b.WriteString(strings.Join(rows, " "))
	b.WriteString("}")
	return b.String()
}

// RandomUniversal generates a random universal relation over attrs with
// up to n distinct tuples drawn uniformly from [0, domain) per column.
// Duplicate draws are retried for at most 50n+100 attempts in total, so
// when fewer than n distinct tuples exist (domain^|attrs| < n) — or the
// retry budget runs out on a nearly saturated domain — the relation
// holds fewer than n tuples. The achieved count is returned alongside
// the relation; callers that need exactly n must check it.
func RandomUniversal(u *schema.Universe, attrs schema.AttrSet, n, domain int, rng *rand.Rand) (*Relation, int) {
	r := New(u, attrs)
	t := make(Tuple, r.width)
	for tries := 0; r.n < n && tries < 50*n+100; tries++ {
		for i := range t {
			t[i] = Value(rng.Intn(domain))
		}
		r.Insert(t)
	}
	return r, r.n
}

// Database is a universal-relation database state: one relation per
// relation schema of D, in the same order.
//
// Databases support snapshot semantics for concurrent serving: Freeze
// marks every relation immutable, Clone takes an O(|D|) shallow
// snapshot sharing the frozen relation states, and the copy-on-write
// mutators (WithRelation, InsertTuple) derive new snapshots without
// touching the original — so any number of readers can evaluate
// against one snapshot while a writer prepares and atomically swaps in
// the next.
type Database struct {
	D    *schema.Schema
	Rels []*Relation
	Univ *Relation // the generating universal relation (may be nil)
}

// Clone returns a shallow snapshot: a new Database sharing the same
// schema and relation states. O(|D|). Use the copy-on-write mutators to
// derive modified snapshots.
func (db *Database) Clone() *Database {
	return &Database{D: db.D, Rels: append([]*Relation(nil), db.Rels...), Univ: db.Univ}
}

// Freeze marks every relation state (including the generating universal
// relation) immutable. Idempotent.
func (db *Database) Freeze() {
	for _, r := range db.Rels {
		r.Freeze()
	}
	if db.Univ != nil {
		db.Univ.Freeze()
	}
}

// WithRelation returns a snapshot of db with relation i replaced by r
// (copy-on-write: db is unchanged). r must have the same attribute set
// as the relation it replaces.
func (db *Database) WithRelation(i int, r *Relation) *Database {
	if !r.Attrs().Equal(db.Rels[i].Attrs()) {
		panic(fmt.Sprintf("relation: WithRelation schema %s ≠ %s",
			r.U.FormatSet(r.attrs), r.U.FormatSet(db.Rels[i].attrs)))
	}
	out := db.Clone()
	out.Rels[i] = r
	return out
}

// InsertTuple returns a snapshot of db in which t has been inserted
// into relation i. Only relation i is copied (structurally sharing its
// chunks when frozen); db and all its relation states are unchanged,
// so it is safe to call on a frozen snapshot while readers evaluate
// against it.
func (db *Database) InsertTuple(i int, t Tuple) *Database {
	r := db.Rels[i].Clone()
	r.Insert(t)
	return db.WithRelation(i, r)
}

// URDatabase builds the UR database D = {π_R(I) | R ∈ D} from the
// universal relation I.
func URDatabase(d *schema.Schema, i *Relation) *Database {
	db := &Database{D: d, Univ: i}
	ex := &Exec{}
	for _, r := range d.Rels {
		db.Rels = append(db.Rels, ex.Project(i, r))
	}
	return db
}

// Eval computes Q(D) = π_X(⋈ᵢ Rᵢ) naively over the database state.
func (db *Database) Eval(x schema.AttrSet) *Relation {
	ex := &Exec{}
	return ex.Project(ex.JoinAll(db.Rels), x)
}

// EvalSubset computes π_X(⋈_{i∈idx} Rᵢ).
func (db *Database) EvalSubset(x schema.AttrSet, idx []int) *Relation {
	rels := make([]*Relation, 0, len(idx))
	for _, i := range idx {
		rels = append(rels, db.Rels[i])
	}
	ex := &Exec{}
	return ex.Project(ex.JoinAll(rels), x)
}

// SatisfiesJD reports whether the universal relation i satisfies the
// join dependency ⋈D: π_{U(D)}(I) = ⋈_{R∈D} π_R(I) (§5.1; an embedded
// join dependency when U(D) ⊊ attrs(I)).
func SatisfiesJD(i *Relation, d *schema.Schema) bool {
	ex := &Exec{}
	lhs := ex.Project(i, d.Attrs().Intersect(i.Attrs()))
	var rels []*Relation
	for _, r := range d.Rels {
		rels = append(rels, ex.Project(i, r.Intersect(i.Attrs())))
	}
	if len(rels) == 0 {
		return true
	}
	return ex.JoinAll(rels).Equal(lhs)
}
