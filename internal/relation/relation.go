// Package relation implements the relational-algebra substrate: relation
// states over attribute sets, natural join, projection, semijoin, and
// universal-relation database construction (paper §2). Tuples carry
// int32 values; relations have set semantics (duplicates eliminated).
package relation

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"gyokit/internal/schema"
)

// Value is a single attribute value.
type Value = int32

// Tuple is a row; values are ordered by the owning relation's sorted
// attribute list.
type Tuple []Value

// Relation is a relation state over a fixed attribute set.
type Relation struct {
	U      *schema.Universe
	attrs  schema.AttrSet
	cols   []schema.Attr // sorted ascending
	tuples []Tuple
	index  map[string]int // tuple key → position (set semantics)
}

// New returns an empty relation over the given attribute set.
func New(u *schema.Universe, attrs schema.AttrSet) *Relation {
	return &Relation{
		U:     u,
		attrs: attrs.Clone(),
		cols:  attrs.Attrs(),
		index: make(map[string]int),
	}
}

// Attrs returns the relation's attribute set.
func (r *Relation) Attrs() schema.AttrSet { return r.attrs.Clone() }

// Cols returns the sorted attribute list defining tuple column order.
func (r *Relation) Cols() []schema.Attr { return append([]schema.Attr(nil), r.cols...) }

// Card returns the number of tuples.
func (r *Relation) Card() int { return len(r.tuples) }

// Tuples returns the tuple slice (shared; callers must not modify).
func (r *Relation) Tuples() []Tuple { return r.tuples }

func key(t Tuple) string {
	b := make([]byte, 4*len(t))
	for i, v := range t {
		b[4*i] = byte(v)
		b[4*i+1] = byte(v >> 8)
		b[4*i+2] = byte(v >> 16)
		b[4*i+3] = byte(v >> 24)
	}
	return string(b)
}

// Insert adds a tuple given in column order. Duplicates are ignored.
// It panics if the arity is wrong (programmer error).
func (r *Relation) Insert(t Tuple) {
	if len(t) != len(r.cols) {
		panic(fmt.Sprintf("relation: arity %d ≠ %d", len(t), len(r.cols)))
	}
	k := key(t)
	if _, dup := r.index[k]; dup {
		return
	}
	cp := append(Tuple(nil), t...)
	r.index[k] = len(r.tuples)
	r.tuples = append(r.tuples, cp)
}

// InsertMap adds a tuple given as attribute→value; all attributes of
// the relation must be present.
func (r *Relation) InsertMap(m map[schema.Attr]Value) {
	t := make(Tuple, len(r.cols))
	for i, c := range r.cols {
		v, ok := m[c]
		if !ok {
			panic(fmt.Sprintf("relation: missing attribute %d", c))
		}
		t[i] = v
	}
	r.Insert(t)
}

// Has reports whether the tuple (in column order) is present.
func (r *Relation) Has(t Tuple) bool {
	_, ok := r.index[key(t)]
	return ok
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	out := New(r.U, r.attrs)
	for _, t := range r.tuples {
		out.Insert(t)
	}
	return out
}

// Equal reports whether r and s have the same attribute set and the
// same tuple set.
func (r *Relation) Equal(s *Relation) bool {
	if !r.attrs.Equal(s.attrs) || len(r.tuples) != len(s.tuples) {
		return false
	}
	for _, t := range r.tuples {
		if !s.Has(t) {
			return false
		}
	}
	return true
}

// Project returns π_x(r). x must be a subset of r's attributes.
func (r *Relation) Project(x schema.AttrSet) *Relation {
	if !x.SubsetOf(r.attrs) {
		panic(fmt.Sprintf("relation: projection %s ⊄ %s",
			r.U.FormatSet(x), r.U.FormatSet(r.attrs)))
	}
	out := New(r.U, x)
	pos := make([]int, 0, len(out.cols))
	for _, c := range out.cols {
		pos = append(pos, r.colPos(c))
	}
	buf := make(Tuple, len(pos))
	for _, t := range r.tuples {
		for i, p := range pos {
			buf[i] = t[p]
		}
		out.Insert(buf)
	}
	return out
}

func (r *Relation) colPos(a schema.Attr) int {
	i := sort.Search(len(r.cols), func(i int) bool { return r.cols[i] >= a })
	if i == len(r.cols) || r.cols[i] != a {
		panic(fmt.Sprintf("relation: attribute %d not present", a))
	}
	return i
}

// Join returns the natural join r ⋈ s (hash join on the shared
// attributes; a cross product when none are shared).
func (r *Relation) Join(s *Relation) *Relation {
	shared := r.attrs.Intersect(s.attrs)
	// Hash the smaller side.
	build, probe := r, s
	if s.Card() < r.Card() {
		build, probe = s, r
	}
	sharedCols := shared.Attrs()
	bPos := make([]int, len(sharedCols))
	pPos := make([]int, len(sharedCols))
	for i, c := range sharedCols {
		bPos[i] = build.colPos(c)
		pPos[i] = probe.colPos(c)
	}
	ht := make(map[string][]Tuple, build.Card())
	kbuf := make(Tuple, len(sharedCols))
	for _, t := range build.tuples {
		for i, p := range bPos {
			kbuf[i] = t[p]
		}
		k := key(kbuf)
		ht[k] = append(ht[k], t)
	}
	out := New(r.U, r.attrs.Union(s.attrs))
	// Output column sources: from probe where present, else from build.
	type src struct {
		fromProbe bool
		pos       int
	}
	srcs := make([]src, len(out.cols))
	for i, c := range out.cols {
		if probe.attrs.Has(c) {
			srcs[i] = src{true, probe.colPos(c)}
		} else {
			srcs[i] = src{false, build.colPos(c)}
		}
	}
	obuf := make(Tuple, len(out.cols))
	for _, pt := range probe.tuples {
		for i, p := range pPos {
			kbuf[i] = pt[p]
		}
		for _, bt := range ht[key(kbuf)] {
			for i, s := range srcs {
				if s.fromProbe {
					obuf[i] = pt[s.pos]
				} else {
					obuf[i] = bt[s.pos]
				}
			}
			out.Insert(obuf)
		}
	}
	return out
}

// Semijoin returns r ⋉ s = π_{attrs(r)}(r ⋈ s): the tuples of r that
// join with at least one tuple of s.
func (r *Relation) Semijoin(s *Relation) *Relation {
	shared := r.attrs.Intersect(s.attrs)
	sharedCols := shared.Attrs()
	sPos := make([]int, len(sharedCols))
	rPos := make([]int, len(sharedCols))
	for i, c := range sharedCols {
		sPos[i] = s.colPos(c)
		rPos[i] = r.colPos(c)
	}
	seen := make(map[string]bool, s.Card())
	kbuf := make(Tuple, len(sharedCols))
	for _, t := range s.tuples {
		for i, p := range sPos {
			kbuf[i] = t[p]
		}
		seen[key(kbuf)] = true
	}
	out := New(r.U, r.attrs)
	for _, t := range r.tuples {
		for i, p := range rPos {
			kbuf[i] = t[p]
		}
		if seen[key(kbuf)] {
			out.Insert(t)
		}
	}
	return out
}

// JoinAll folds the natural join over rels left to right. It panics on
// an empty input (the identity of ⋈ is the zero-attribute relation
// with one tuple; callers that need it can construct it explicitly).
func JoinAll(rels []*Relation) *Relation {
	if len(rels) == 0 {
		panic("relation: JoinAll of nothing")
	}
	acc := rels[0]
	for _, r := range rels[1:] {
		acc = acc.Join(r)
	}
	return acc
}

// String renders the relation sorted, for debugging and golden tests.
func (r *Relation) String() string {
	var b strings.Builder
	names := make([]string, len(r.cols))
	for i, c := range r.cols {
		names[i] = r.U.Name(c)
	}
	fmt.Fprintf(&b, "%s[%d]{", strings.Join(names, ","), len(r.tuples))
	rows := make([]string, len(r.tuples))
	for i, t := range r.tuples {
		parts := make([]string, len(t))
		for j, v := range t {
			parts[j] = fmt.Sprint(v)
		}
		rows[i] = "(" + strings.Join(parts, ",") + ")"
	}
	sort.Strings(rows)
	b.WriteString(strings.Join(rows, " "))
	b.WriteString("}")
	return b.String()
}

// RandomUniversal generates a random universal relation over attrs with
// n distinct tuples drawn uniformly from [0, domain) per column.
func RandomUniversal(u *schema.Universe, attrs schema.AttrSet, n, domain int, rng *rand.Rand) *Relation {
	r := New(u, attrs)
	w := len(r.cols)
	t := make(Tuple, w)
	for tries := 0; r.Card() < n && tries < 50*n+100; tries++ {
		for i := range t {
			t[i] = Value(rng.Intn(domain))
		}
		r.Insert(t)
	}
	return r
}

// Database is a universal-relation database state: one relation per
// relation schema of D, in the same order.
type Database struct {
	D    *schema.Schema
	Rels []*Relation
	Univ *Relation // the generating universal relation (may be nil)
}

// URDatabase builds the UR database D = {π_R(I) | R ∈ D} from the
// universal relation I.
func URDatabase(d *schema.Schema, i *Relation) *Database {
	db := &Database{D: d, Univ: i}
	for _, r := range d.Rels {
		db.Rels = append(db.Rels, i.Project(r))
	}
	return db
}

// Eval computes Q(D) = π_X(⋈ᵢ Rᵢ) naively over the database state.
func (db *Database) Eval(x schema.AttrSet) *Relation {
	return JoinAll(db.Rels).Project(x)
}

// EvalSubset computes π_X(⋈_{i∈idx} Rᵢ).
func (db *Database) EvalSubset(x schema.AttrSet, idx []int) *Relation {
	rels := make([]*Relation, 0, len(idx))
	for _, i := range idx {
		rels = append(rels, db.Rels[i])
	}
	return JoinAll(rels).Project(x)
}

// SatisfiesJD reports whether the universal relation i satisfies the
// join dependency ⋈D: π_{U(D)}(I) = ⋈_{R∈D} π_R(I) (§5.1; an embedded
// join dependency when U(D) ⊊ attrs(I)).
func SatisfiesJD(i *Relation, d *schema.Schema) bool {
	lhs := i.Project(d.Attrs().Intersect(i.Attrs()))
	var rels []*Relation
	for _, r := range d.Rels {
		rels = append(rels, i.Project(r.Intersect(i.Attrs())))
	}
	if len(rels) == 0 {
		return true
	}
	return JoinAll(rels).Equal(lhs)
}
