package relation

import (
	"fmt"
	"sync"

	"gyokit/internal/schema"
)

// Partitioning is a relation split into P disjoint shards by the hash
// of a key attribute subset: every row lives in exactly one shard, and
// two rows agreeing on the key columns always share a shard. That
// placement invariant is what makes the parallel operators shard-local:
// a join or semijoin whose shared attributes contain the key never
// needs a row from another shard.
//
// A Partitioning is immutable once built (its shards are ordinary
// Relations and are never mutated by the parallel operators), so any
// number of workers may read it concurrently.
type Partitioning struct {
	// Key is the attribute subset whose hash placed each row.
	Key schema.AttrSet
	// Shards holds the P shard relations, all over the same attribute
	// set as the source relation.
	Shards []*Relation
}

// P returns the shard count.
func (pt *Partitioning) P() int { return len(pt.Shards) }

// Card returns the total number of tuples across all shards. Shards
// are disjoint, so this equals the merged cardinality.
func (pt *Partitioning) Card() int {
	n := 0
	for _, sh := range pt.Shards {
		n += sh.n
	}
	return n
}

// Attrs returns the attribute set the shards range over.
func (pt *Partitioning) Attrs() schema.AttrSet { return pt.Shards[0].Attrs() }

// Bytes returns the tuple-arena bytes held across all shards — the
// data volume that building this partitioning moved (every row lands
// in exactly one shard), which is what repartition-traffic accounting
// wants to know.
func (pt *Partitioning) Bytes() int64 {
	var n int64
	for _, sh := range pt.Shards {
		n += int64(sh.ArenaBytes())
	}
	return n
}

// shardOf maps a key hash to a shard index by multiply-shift on the
// high 32 bits. The open-addressing tables mask the low bits of row
// and key hashes, so shard choice and slot choice stay independent —
// a shard's rows are not clustered within its tables.
func shardOf(h uint64, p int) int {
	return int(((h >> 32) * uint64(p)) >> 32)
}

// Partition splits r into p shards by the hash of its key columns.
// key must be a subset of r's attributes; an empty key sends every row
// to one shard (the empty gather hashes to a constant). Rows keep
// their stored full-row hashes, so partitioning never re-hashes a row
// — only the key columns are hashed.
func Partition(r *Relation, key schema.AttrSet, p int) *Partitioning {
	if p < 1 {
		panic(fmt.Sprintf("relation: partition into %d shards", p))
	}
	if !key.SubsetOf(r.attrs) {
		panic(fmt.Sprintf("relation: partition key %s ⊄ %s",
			r.U.FormatSet(key), r.U.FormatSet(r.attrs)))
	}
	pt := &Partitioning{Key: key.Clone(), Shards: make([]*Relation, p)}
	for i := range pt.Shards {
		pt.Shards[i] = New(r.U, r.attrs)
	}
	keyCols := key.Attrs()
	pos := make([]int, len(keyCols))
	for i, c := range keyCols {
		pos[i] = r.colPos(c)
	}
	kbuf := make([]Value, len(pos))
	for i := 0; i < r.n; i++ {
		row := r.row(i)
		for k, p2 := range pos {
			kbuf[k] = row[p2]
		}
		s := shardOf(hashValues(kbuf), p)
		pt.Shards[s].insertHashed(row, r.hash(i))
	}
	return pt
}

// Merge concatenates the shards back into one relation. Shards are
// disjoint by construction, so the result has exactly Card() tuples;
// rows are re-inserted with their stored hashes, never re-hashed.
func (pt *Partitioning) Merge() *Relation {
	first := pt.Shards[0]
	out := New(first.U, first.attrs)
	out.grow(pt.Card())
	for _, sh := range pt.Shards {
		for i := 0; i < sh.n; i++ {
			out.insertHashed(sh.row(i), sh.hash(i))
		}
	}
	return out
}

// DefaultMinParallel is the total-input cardinality below which ParExec
// runs statements serially: under ~a few thousand rows the goroutine
// handoff and per-shard table setup cost more than the work saved.
const DefaultMinParallel = 4096

// ParExec is the partition-parallel execution context: one private
// Exec per worker plus the parallelism policy. Worker i always
// operates on shard i, so the scratch tables of a worker see one
// shard-sized working set at a time.
//
// Like Exec, a ParExec must not be used concurrently by two
// evaluations — it is the per-request context; the engine pools them.
type ParExec struct {
	workers []*Exec
	active  int // shard count; workers[:active] are in use
	// MinParallel is the smallest total input cardinality (left + right)
	// a statement needs before it is worth fanning out; smaller
	// statements run serially on worker 0. Zero or negative means
	// "always parallelize" (useful in tests); NewParExec sets
	// DefaultMinParallel.
	MinParallel int
}

// NewParExec returns a parallel execution context with p workers.
func NewParExec(p int) *ParExec {
	pe := &ParExec{MinParallel: DefaultMinParallel}
	pe.Resize(p)
	return pe
}

// P returns the worker (and therefore shard) count.
func (pe *ParExec) P() int { return pe.active }

// Resize sets the worker count to p (at least 1). Workers beyond p are
// retained, not discarded, so a pooled ParExec serving requests with
// alternating parallelism keeps every worker's warmed scratch tables.
func (pe *ParExec) Resize(p int) {
	if p < 1 {
		p = 1
	}
	pe.ensureWorkers(p)
	pe.active = p
}

// ensureWorkers grows the worker slice to at least n entries.
func (pe *ParExec) ensureWorkers(n int) {
	for len(pe.workers) < n {
		pe.workers = append(pe.workers, NewExec())
	}
}

// Serial returns worker 0's Exec — the context used for statements
// that stay serial.
func (pe *ParExec) Serial() *Exec { return pe.workers[0] }

// forEach runs f(i) for i in [0, n) across the workers: each index is
// handled by exactly one goroutine with a private Exec. With one index
// (or a single-worker context) it runs inline. n may exceed the active
// count (e.g. repartitioning a wider partitioning); extra workers are
// created on demand, from the coordinating goroutine, before fan-out.
func (pe *ParExec) forEach(n int, f func(i int)) {
	pe.ensureWorkers(n)
	if n <= 1 || pe.active == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			f(i)
		}(i)
	}
	wg.Wait()
}

// span is a contiguous row range of one relation — the unit of
// phase-one partitioning work.
type span struct {
	r      *Relation
	lo, hi int
}

// partitionSpans is the shared two-phase parallel partitioner. Phase
// one: each span is scanned by one worker, which hashes key columns
// and records the target shard of every row. Phase two: each target
// shard is built by one worker, gathering its rows from every span.
// Both phases are embarrassingly parallel; no locks, no channels —
// workers write disjoint slices.
func (pe *ParExec) partitionSpans(u *schema.Universe, attrs, key schema.AttrSet, spans []span) *Partitioning {
	p := pe.active
	pt := &Partitioning{Key: key.Clone(), Shards: make([]*Relation, p)}
	keyCols := key.Attrs()

	// Phase 1: buckets[w][s] lists the row indexes of span w bound for
	// shard s.
	buckets := make([][][]int32, len(spans))
	pe.forEach(len(spans), func(w int) {
		sp := spans[w]
		b := make([][]int32, p)
		est := (sp.hi - sp.lo) / p
		for s := range b {
			b[s] = make([]int32, 0, est+8)
		}
		pos := make([]int, len(keyCols))
		for i, c := range keyCols {
			pos[i] = sp.r.colPos(c)
		}
		kbuf := make([]Value, len(pos))
		for i := sp.lo; i < sp.hi; i++ {
			row := sp.r.row(i)
			for k, p2 := range pos {
				kbuf[k] = row[p2]
			}
			s := shardOf(hashValues(kbuf), p)
			b[s] = append(b[s], int32(i))
		}
		buckets[w] = b
	})

	// Phase 2: shard s gathers its buckets from every span. Rows carry
	// their stored hashes.
	pe.forEach(p, func(s int) {
		n := 0
		for w := range spans {
			n += len(buckets[w][s])
		}
		sh := New(u, attrs)
		sh.grow(n)
		for w, sp := range spans {
			for _, i := range buckets[w][s] {
				sh.insertHashed(sp.r.row(int(i)), sp.r.hash(int(i)))
			}
		}
		pt.Shards[s] = sh
	})
	return pt
}

// Partition splits r into P() shards by the hash of its key columns,
// in parallel: the row space is cut into P contiguous spans, hashed
// concurrently, then each shard is gathered concurrently.
func (pe *ParExec) Partition(r *Relation, key schema.AttrSet) *Partitioning {
	p := pe.active
	if p == 1 || r.n < p {
		return Partition(r, key, p)
	}
	if !key.SubsetOf(r.attrs) {
		panic(fmt.Sprintf("relation: partition key %s ⊄ %s",
			r.U.FormatSet(key), r.U.FormatSet(r.attrs)))
	}
	spans := make([]span, 0, p)
	for w := 0; w < p; w++ {
		lo, hi := r.n*w/p, r.n*(w+1)/p
		spans = append(spans, span{r: r, lo: lo, hi: hi})
	}
	return pe.partitionSpans(r.U, r.attrs, key, spans)
}

// Repartition rebuilds pt on a new key without materializing the
// merged relation: each existing shard is one phase-one span.
func (pe *ParExec) Repartition(pt *Partitioning, key schema.AttrSet) *Partitioning {
	first := pt.Shards[0]
	spans := make([]span, 0, len(pt.Shards))
	for _, sh := range pt.Shards {
		spans = append(spans, span{r: sh, lo: 0, hi: sh.n})
	}
	return pe.partitionSpans(first.U, first.attrs, key, spans)
}

// MergePar materializes pt into one relation. The gather itself is
// inherently serial (one output arena), so this simply calls Merge;
// it exists so callers hold the policy decision in one place.
func (pe *ParExec) MergePar(pt *Partitioning) *Relation { return pt.Merge() }

// checkAligned panics unless r and s are partitionings with the same
// shard count and key — the precondition of every shard-local
// operator.
func checkAligned(op string, r, s *Partitioning) {
	if len(r.Shards) != len(s.Shards) {
		panic(fmt.Sprintf("relation: %s over %d vs %d shards", op, len(r.Shards), len(s.Shards)))
	}
	if !r.Key.Equal(s.Key) {
		panic(fmt.Sprintf("relation: %s over mismatched partition keys", op))
	}
}

// JoinPar computes the natural join of two partitionings shard-locally
// and in parallel. Both sides must be partitioned on the same key, and
// that key must be a subset of the shared attributes: then matching
// rows agree on the key, hence share a shard, and the per-shard joins
// cover every result tuple exactly once (results from different shards
// differ on the key columns, so the output is itself partitioned by
// the same key).
func (pe *ParExec) JoinPar(r, s *Partitioning) *Partitioning {
	checkAligned("join", r, s)
	if !r.Key.SubsetOf(r.Attrs().Intersect(s.Attrs())) {
		panic("relation: parallel join key not within shared attributes")
	}
	out := &Partitioning{Key: r.Key.Clone(), Shards: make([]*Relation, len(r.Shards))}
	pe.forEach(len(r.Shards), func(i int) {
		out.Shards[i] = pe.workers[i].Join(r.Shards[i], s.Shards[i])
	})
	return out
}

// SemijoinPar computes r ⋉ s shard-locally and in parallel, under the
// same alignment precondition as JoinPar. The output keeps r's row
// placement, so it remains partitioned by the same key.
func (pe *ParExec) SemijoinPar(r, s *Partitioning) *Partitioning {
	checkAligned("semijoin", r, s)
	if !r.Key.SubsetOf(r.Attrs().Intersect(s.Attrs())) {
		panic("relation: parallel semijoin key not within shared attributes")
	}
	out := &Partitioning{Key: r.Key.Clone(), Shards: make([]*Relation, len(r.Shards))}
	pe.forEach(len(r.Shards), func(i int) {
		out.Shards[i] = pe.workers[i].Semijoin(r.Shards[i], s.Shards[i])
	})
	return out
}

// ProjectPar computes π_x shard-locally and in parallel. The partition
// key must survive the projection (Key ⊆ x): then two rows that
// project equal agree on the key, share a shard, and the shard-local
// duplicate elimination is globally correct.
func (pe *ParExec) ProjectPar(r *Partitioning, x schema.AttrSet) *Partitioning {
	if !r.Key.SubsetOf(x) {
		panic("relation: parallel projection drops partition key")
	}
	out := &Partitioning{Key: r.Key.Clone(), Shards: make([]*Relation, len(r.Shards))}
	pe.forEach(len(r.Shards), func(i int) {
		out.Shards[i] = pe.workers[i].Project(r.Shards[i], x)
	})
	return out
}
