package relation

// 64-bit FNV-1a constants.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashValues hashes a row (or key-column gather) of 32-bit values:
// FNV-1a over the values followed by a splitmix64-style avalanche so
// the table's masked low bits depend on every column. The empty row
// hashes to a fixed constant (zero-width relations hold at most one
// tuple).
func hashValues(vals []Value) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range vals {
		h ^= uint64(uint32(v))
		h *= fnvPrime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func valuesEqual(a, b []Value) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// tableSize returns the open-addressing table size for n entries:
// the smallest power of two ≥ 2n, at least 16, so load stays ≤ 50%
// for tables built in one shot (join build sides, semijoin key sets).
func tableSize(n int) int {
	size := 16
	for size < 2*n {
		size *= 2
	}
	return size
}
