package relation

import (
	"math/rand"
	"testing"

	"gyokit/internal/schema"
)

func TestFromArenaRoundTrip(t *testing.T) {
	u := schema.NewUniverse()
	attrs := u.Set("a", "b", "c")
	rng := rand.New(rand.NewSource(7))
	orig, _ := RandomUniversal(u, attrs, 500, 16, rng)

	data := append([]Value(nil), orig.RawData()...)
	got, err := FromArena(u, attrs, orig.Card(), data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(orig) {
		t.Fatalf("FromArena(RawData) ≠ original: %d vs %d tuples", got.Card(), orig.Card())
	}
	if got.ArenaBytes() != orig.Card()*3*ValueBytes {
		t.Errorf("ArenaBytes = %d, want %d", got.ArenaBytes(), orig.Card()*3*ValueBytes)
	}
}

func TestFromArenaDedups(t *testing.T) {
	u := schema.NewUniverse()
	attrs := u.Set("a", "b")
	data := []Value{1, 2, 3, 4, 1, 2, 3, 4, 5, 6}
	r, err := FromArena(u, attrs, 5, data)
	if err != nil {
		t.Fatal(err)
	}
	if r.Card() != 3 {
		t.Fatalf("Card = %d after dedup, want 3", r.Card())
	}
	for _, want := range [][]Value{{1, 2}, {3, 4}, {5, 6}} {
		if !r.Has(Tuple(want)) {
			t.Errorf("missing tuple %v", want)
		}
	}
}

func TestFromArenaErrors(t *testing.T) {
	u := schema.NewUniverse()
	attrs := u.Set("a", "b")
	if _, err := FromArena(u, attrs, 3, make([]Value, 5)); err == nil {
		t.Error("mismatched arena length accepted")
	}
	if _, err := FromArena(u, attrs, -1, nil); err == nil {
		t.Error("negative row count accepted")
	}
	if _, err := FromArena(u, schema.AttrSet{}, 2, nil); err == nil {
		t.Error("zero-width relation with 2 rows accepted")
	}
	if r, err := FromArena(u, schema.AttrSet{}, 1, nil); err != nil || r.Card() != 1 {
		t.Errorf("zero-width single-row load: %v, card %d", err, r.Card())
	}
}

func TestWithout(t *testing.T) {
	u := schema.NewUniverse()
	attrs := u.Set("a", "b")
	r := New(u, attrs)
	for i := 0; i < 10; i++ {
		r.Insert(Tuple{Value(i), Value(i * 2)})
	}
	r.Freeze() // deletes must be copy-on-write even on a frozen snapshot

	out, removed := r.Without([]Tuple{
		{3, 6}, {7, 14}, {99, 99}, // last one absent
		{1}, // wrong arity: ignored
	})
	if removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	if out.Card() != 8 || r.Card() != 10 {
		t.Fatalf("out.Card = %d (want 8), r.Card = %d (want 10)", out.Card(), r.Card())
	}
	if out.Has(Tuple{3, 6}) || out.Has(Tuple{7, 14}) || !out.Has(Tuple{4, 8}) {
		t.Error("Without removed the wrong tuples")
	}
}

func TestWithoutEmpty(t *testing.T) {
	u := schema.NewUniverse()
	r := New(u, u.Set("a"))
	out, removed := r.Without([]Tuple{{1}})
	if removed != 0 || out.Card() != 0 {
		t.Fatalf("Without on empty relation: removed %d, card %d", removed, out.Card())
	}
}
