package relation

import (
	"fmt"

	"gyokit/internal/schema"
)

// Exec is a reusable execution context for the relational operators.
// It owns the scratch state the operators need — open-addressing hash
// tables, chain links, per-row key hashes, gather buffers, and column
// position maps — so a program that evaluates many statements (a §6
// semijoin program, a Yannakakis plan, a full reducer) reuses one set
// of allocations instead of rebuilding them per statement. The zero
// value is ready to use; an Exec must not be used concurrently.
type Exec struct {
	slots []int32 // open addressing: row index + 1; 0 = empty
	next  []int32 // same-key chain: next row index + 1; 0 = end
	keyh  []uint64
	kbuf  []Value
	obuf  []Value
	posA  []int
	posB  []int
	srcs  []int32
}

// NewExec returns a fresh execution context.
func NewExec() *Exec { return &Exec{} }

// slotScratch returns e.slots resized to n and zeroed.
func (e *Exec) slotScratch(n int) []int32 {
	if cap(e.slots) < n {
		e.slots = make([]int32, n)
	} else {
		e.slots = e.slots[:n]
		clear(e.slots)
	}
	return e.slots
}

func int32Scratch(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func intScratch(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func valScratch(s []Value, n int) []Value {
	if cap(s) < n {
		return make([]Value, n)
	}
	return s[:n]
}

func uint64Scratch(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// Project returns π_x(r). x must be a subset of r's attributes.
func (e *Exec) Project(r *Relation, x schema.AttrSet) *Relation {
	if !x.SubsetOf(r.attrs) {
		panic(fmt.Sprintf("relation: projection %s ⊄ %s",
			r.U.FormatSet(x), r.U.FormatSet(r.attrs)))
	}
	out := New(r.U, x)
	pos := intScratch(e.posA, out.width)
	e.posA = pos
	for i, c := range out.cols {
		pos[i] = r.colPos(c)
	}
	buf := valScratch(e.obuf, out.width)
	e.obuf = buf
	for i := 0; i < r.n; i++ {
		row := r.row(i)
		for k, p := range pos {
			buf[k] = row[p]
		}
		out.insertHashed(buf, hashValues(buf))
	}
	return out
}

// keyEqual reports whether the key columns pos of row i of r equal key.
func keyEqual(r *Relation, i int, pos []int, key []Value) bool {
	row := r.row(i)
	for k, p := range pos {
		if row[p] != key[k] {
			return false
		}
	}
	return true
}

// Join returns the natural join r ⋈ s: a hash join on the shared
// attributes (a cross product when none are shared). The smaller side
// is built into a bucket-chained open-addressing table keyed by the
// 64-bit hash of its shared columns; probe-side matches are verified
// column-by-column, so hash collisions never produce wrong results.
func (e *Exec) Join(r, s *Relation) *Relation {
	build, probe := r, s
	if s.n < r.n {
		build, probe = s, r
	}
	shared := r.attrs.Intersect(s.attrs)
	sharedCols := shared.Attrs()
	bPos := intScratch(e.posA, len(sharedCols))
	pPos := intScratch(e.posB, len(sharedCols))
	e.posA, e.posB = bPos, pPos
	for i, c := range sharedCols {
		bPos[i] = build.colPos(c)
		pPos[i] = probe.colPos(c)
	}

	// Build: distinct keys claim slots; rows sharing a key are chained
	// through next (newest first).
	nSlots := tableSize(build.n)
	mask := uint64(nSlots - 1)
	slots := e.slotScratch(nSlots)
	next := int32Scratch(e.next, build.n)
	e.next = next
	keyh := uint64Scratch(e.keyh, build.n)
	e.keyh = keyh
	kbuf := valScratch(e.kbuf, len(sharedCols))
	e.kbuf = kbuf
	for i := 0; i < build.n; i++ {
		row := build.row(i)
		for k, p := range bPos {
			kbuf[k] = row[p]
		}
		h := hashValues(kbuf)
		keyh[i] = h
		j := h & mask
		for {
			head := slots[j]
			if head == 0 {
				slots[j] = int32(i + 1)
				next[i] = 0
				break
			}
			if hi := int(head - 1); keyh[hi] == h && keyEqual(build, hi, bPos, kbuf) {
				next[i] = head
				slots[j] = int32(i + 1)
				break
			}
			j = (j + 1) & mask
		}
	}

	out := New(r.U, r.attrs.Union(s.attrs))
	// Output column sources: from probe where present, else from build.
	// srcs[k] ≥ 0 is a probe column; srcs[k] < 0 is build column ^srcs[k].
	srcs := int32Scratch(e.srcs, out.width)
	e.srcs = srcs
	for i, c := range out.cols {
		if probe.attrs.Has(c) {
			srcs[i] = int32(probe.colPos(c))
		} else {
			srcs[i] = int32(^build.colPos(c))
		}
	}
	obuf := valScratch(e.obuf, out.width)
	e.obuf = obuf
	for pi := 0; pi < probe.n; pi++ {
		prow := probe.row(pi)
		for k, p := range pPos {
			kbuf[k] = prow[p]
		}
		h := hashValues(kbuf)
		j := h & mask
		for {
			head := slots[j]
			if head == 0 {
				break // key absent from build side
			}
			hi := int(head - 1)
			if keyh[hi] != h || !keyEqual(build, hi, bPos, kbuf) {
				j = (j + 1) & mask
				continue
			}
			for bi := head; bi != 0; bi = next[bi-1] {
				brow := build.row(int(bi - 1))
				for k, sc := range srcs {
					if sc >= 0 {
						obuf[k] = prow[sc]
					} else {
						obuf[k] = brow[^sc]
					}
				}
				out.insertHashed(obuf, hashValues(obuf))
			}
			break
		}
	}
	return out
}

// Semijoin returns r ⋉ s = π_{attrs(r)}(r ⋈ s): the tuples of r that
// join with at least one tuple of s. The distinct shared-column keys of
// s form an open-addressing set (each slot keeps a representative
// s-row for collision verification); r's rows are re-inserted with
// their stored hashes, so surviving tuples are never re-hashed.
func (e *Exec) Semijoin(r, s *Relation) *Relation {
	shared := r.attrs.Intersect(s.attrs)
	sharedCols := shared.Attrs()
	sPos := intScratch(e.posA, len(sharedCols))
	rPos := intScratch(e.posB, len(sharedCols))
	e.posA, e.posB = sPos, rPos
	for i, c := range sharedCols {
		sPos[i] = s.colPos(c)
		rPos[i] = r.colPos(c)
	}
	nSlots := tableSize(s.n)
	mask := uint64(nSlots - 1)
	slots := e.slotScratch(nSlots)
	keyh := uint64Scratch(e.keyh, s.n)
	e.keyh = keyh
	kbuf := valScratch(e.kbuf, len(sharedCols))
	e.kbuf = kbuf
	for i := 0; i < s.n; i++ {
		row := s.row(i)
		for k, p := range sPos {
			kbuf[k] = row[p]
		}
		h := hashValues(kbuf)
		keyh[i] = h
		j := h & mask
		for {
			head := slots[j]
			if head == 0 {
				slots[j] = int32(i + 1)
				break
			}
			if hi := int(head - 1); keyh[hi] == h && keyEqual(s, hi, sPos, kbuf) {
				break // key already present
			}
			j = (j + 1) & mask
		}
	}
	out := New(r.U, r.attrs)
	for i := 0; i < r.n; i++ {
		row := r.row(i)
		for k, p := range rPos {
			kbuf[k] = row[p]
		}
		h := hashValues(kbuf)
		j := h & mask
		for {
			head := slots[j]
			if head == 0 {
				break
			}
			if hi := int(head - 1); keyh[hi] == h && keyEqual(s, hi, sPos, kbuf) {
				out.insertHashed(row, r.hash(i))
				break
			}
			j = (j + 1) & mask
		}
	}
	return out
}

// JoinAll folds the natural join over rels greedily: it starts from
// the smallest relation and repeatedly joins the smallest relation
// that shares an attribute with the accumulated schema, falling back
// to the smallest remaining relation only when a cross product is
// unavoidable. Ties break toward the earlier input position, so the
// order — and therefore the result, join being commutative and
// associative — is deterministic. It panics on an empty input.
func (e *Exec) JoinAll(rels []*Relation) *Relation {
	if len(rels) == 0 {
		panic("relation: JoinAll of nothing")
	}
	rest := append([]*Relation(nil), rels...)
	start := 0
	for i, r := range rest {
		if r.n < rest[start].n {
			start = i
		}
	}
	acc := rest[start]
	rest = append(rest[:start], rest[start+1:]...)
	attrs := acc.attrs
	for len(rest) > 0 {
		pick := -1
		for i, r := range rest {
			if attrs.Intersects(r.attrs) && (pick < 0 || r.n < rest[pick].n) {
				pick = i
			}
		}
		if pick < 0 { // disconnected: cross product with the smallest
			pick = 0
			for i, r := range rest {
				if r.n < rest[pick].n {
					pick = i
				}
			}
		}
		acc = e.Join(acc, rest[pick])
		attrs = acc.attrs
		rest = append(rest[:pick], rest[pick+1:]...)
	}
	return acc
}
