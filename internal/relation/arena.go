package relation

// Codec hooks over the arena layout. The durable-storage layer
// (internal/storage) serializes a relation as its attribute list plus
// the raw row-major arena; the hash index and row hashes are rebuilt on
// load rather than written to disk. These hooks expose exactly that
// boundary without leaking mutable internals anywhere else.

import (
	"fmt"

	"gyokit/internal/schema"
)

// ValueBytes is the on-disk size of one Value.
const ValueBytes = 4

// RawData returns the backing arena: row i occupies
// RawData()[i*width : (i+1)*width] with columns in Cols() order. The
// slice is shared with the relation; callers must not modify it.
func (r *Relation) RawData() []Value { return r.data[:r.n*r.width] }

// ArenaBytes returns the size of the tuple arena in bytes (the
// dominant share of a relation's memory; index and hash overhead are
// proportional).
func (r *Relation) ArenaBytes() int { return r.n * r.width * ValueBytes }

// FromArena builds a relation over attrs from a row-major arena of
// rows tuples, rebuilding the row hashes and the set-semantics index
// in one pass (the index is presized, so loading never rehashes).
// Duplicate rows are eliminated, so the result may hold fewer than
// rows tuples. FromArena takes ownership of data: the returned
// relation dedups in place into the same backing array.
func FromArena(u *schema.Universe, attrs schema.AttrSet, rows int, data []Value) (*Relation, error) {
	r := New(u, attrs)
	if rows < 0 {
		return nil, fmt.Errorf("relation: negative row count %d", rows)
	}
	if r.width == 0 {
		// A zero-width relation holds at most the empty tuple; its
		// cardinality cannot be derived from the (empty) arena.
		if len(data) != 0 || rows > 1 {
			return nil, fmt.Errorf("relation: zero-width arena with %d values, %d rows", len(data), rows)
		}
		if rows == 1 {
			r.Insert(Tuple{})
		}
		return r, nil
	}
	if len(data) != rows*r.width {
		return nil, fmt.Errorf("relation: arena length %d ≠ %d rows × width %d", len(data), rows, r.width)
	}
	r.hashes = make([]uint64, 0, rows)
	r.slots = make([]int32, tableSize(rows))
	// Dedup in place: the write cursor (r.n rows) never passes the read
	// cursor (row i), so appending into the shared array is safe.
	r.data = data[:0]
	for i := 0; i < rows; i++ {
		row := data[i*r.width : (i+1)*r.width]
		r.insertHashed(row, hashValues(row))
	}
	return r, nil
}

// Without returns a copy of r with the given tuples removed (tuples in
// column order; tuples not present — or of the wrong arity — are
// ignored) and reports how many rows were actually removed. r is
// unchanged, so Without is the copy-on-write delete mirroring Clone +
// Insert on the write path.
func (r *Relation) Without(ts []Tuple) (*Relation, int) {
	del := New(r.U, r.attrs)
	for _, t := range ts {
		if len(t) == r.width {
			del.Insert(t)
		}
	}
	out := New(r.U, r.attrs)
	if r.n > 0 {
		out.data = make([]Value, 0, r.n*r.width)
		out.hashes = make([]uint64, 0, r.n)
		out.slots = make([]int32, tableSize(r.n))
	}
	removed := 0
	for i := 0; i < r.n; i++ {
		row := r.row(i)
		if del.contains(row, r.hashes[i]) {
			removed++
			continue
		}
		out.insertHashed(row, r.hashes[i])
	}
	return out, removed
}
