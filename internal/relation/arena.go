package relation

// Codec hooks over the chunked arena layout. The durable-storage layer
// (internal/storage) serializes a relation as its attribute list plus
// the raw row-major arena, chunk by chunk; the hash index and row
// hashes are rebuilt on load rather than written to disk. These hooks
// expose exactly that boundary without leaking mutable internals
// anywhere else.

import (
	"fmt"

	"gyokit/internal/schema"
)

// ValueBytes is the on-disk size of one Value.
const ValueBytes = 4

// RawData returns the arena flattened into one fresh row-major slice:
// row i occupies RawData()[i*width : (i+1)*width] with columns in
// Cols() order. The slice is a copy and the caller's to keep; the
// chunked arena itself is never exposed mutable.
func (r *Relation) RawData() []Value {
	out := make([]Value, 0, r.n*r.width)
	for i := range r.chunks {
		out = append(out, r.chunks[i].data...)
	}
	return out
}

// ForEachChunk calls fn with each arena chunk's row-major data block,
// in row order, until fn returns false. Concatenated in order the
// blocks equal RawData(), so a serializer can stream the arena
// chunk-by-chunk without ever materializing a flat copy — and a
// chunk-granular writer can skip blocks it already holds. Blocks are
// views into the arena; callers must not modify or retain them.
func (r *Relation) ForEachChunk(fn func(block []Value) bool) {
	for i := range r.chunks {
		if !fn(r.chunks[i].data) {
			return
		}
	}
}

// ArenaBytes returns the size of the tuple arena in bytes (the
// dominant share of a relation's memory; index and hash overhead are
// proportional).
func (r *Relation) ArenaBytes() int { return r.n * r.width * ValueBytes }

// FullChunks returns the number of full (immutable, id-bearing) chunks.
// Rows [0, FullChunks()*ChunkRows) live in full chunks; any remainder
// lives in the mutable tail.
func (r *Relation) FullChunks() int { return r.n >> chunkShift }

// Tail returns the row-major data block of the mutable tail chunk, or
// nil when the relation ends exactly on a chunk boundary (or is empty).
// The block is a view into the arena; callers must not modify or retain
// it across mutations.
func (r *Relation) Tail() []Value {
	if r.n&chunkMask == 0 {
		return nil
	}
	return r.chunks[len(r.chunks)-1].data
}

// ForEachFullChunk calls fn with each full chunk's durable id and
// row-major data block, in row order, until fn returns false. Unlike
// ForEachChunk it skips the mutable tail, so the blocks always hold
// exactly ChunkRows rows and the ids are nonzero and stable for the
// relation's lifetime. Blocks are views into the arena; callers must
// not modify or retain them.
func (r *Relation) ForEachFullChunk(fn func(id uint64, block []Value) bool) {
	for i, full := 0, r.FullChunks(); i < full; i++ {
		if !fn(r.chunks[i].id, r.chunks[i].data) {
			return
		}
	}
}

// SetChunkID overwrites the durable id of full chunk i with a persisted
// id, raising the process-wide counter past it so future chunks cannot
// collide. Recovery uses it to restore the identities a checkpoint
// manifest recorded, preserving chunk-store deduplication across
// restarts; chunk i must be full and id nonzero (programmer errors
// panic).
func (r *Relation) SetChunkID(i int, id uint64) {
	if id == 0 {
		panic("relation: SetChunkID with zero id")
	}
	if i < 0 || i >= r.FullChunks() {
		panic(fmt.Sprintf("relation: SetChunkID(%d) on relation with %d full chunks", i, r.FullChunks()))
	}
	r.chunks[i].id = id
	ChunkIDFloor(id)
}

// ChunkIDFloor raises the process-wide chunk-id counter to at least
// floor. Storage recovery calls it (directly or via SetChunkID) with
// every persisted id it has seen, so ids assigned after a restart never
// collide with ids already on disk.
func ChunkIDFloor(floor uint64) {
	for {
		cur := chunkIDs.Load()
		if cur >= floor || chunkIDs.CompareAndSwap(cur, floor) {
			return
		}
	}
}

// grow presizes an empty relation for rows tuples: the owned index
// table is allocated at its final size (loading never rehashes) and
// the tail chunk at full chunk capacity.
func (r *Relation) grow(rows int) {
	if r.n != 0 || !r.baseOwned || rows <= 0 {
		return
	}
	if size := tableSize(rows); size > len(r.base) {
		r.base = make([]int32, size)
	}
	if len(r.chunks) == 0 && r.width > 0 {
		c := rows
		if c > ChunkRows {
			c = ChunkRows
		}
		r.chunks = []chunk{{
			data:   make([]Value, 0, c*r.width),
			hashes: make([]uint64, 0, c),
		}}
	}
}

// FromArena builds a relation over attrs from a row-major arena of
// rows tuples, rebuilding the row hashes and the set-semantics index
// in one pass (the index is presized, so loading never rehashes).
// Duplicate rows are eliminated, so the result may hold fewer than
// rows tuples. data is copied into the relation's chunked arena; the
// caller keeps ownership of the input slice.
func FromArena(u *schema.Universe, attrs schema.AttrSet, rows int, data []Value) (*Relation, error) {
	r := New(u, attrs)
	if rows < 0 {
		return nil, fmt.Errorf("relation: negative row count %d", rows)
	}
	if r.width == 0 {
		// A zero-width relation holds at most the empty tuple; its
		// cardinality cannot be derived from the (empty) arena.
		if len(data) != 0 || rows > 1 {
			return nil, fmt.Errorf("relation: zero-width arena with %d values, %d rows", len(data), rows)
		}
		if rows == 1 {
			r.Insert(Tuple{})
		}
		return r, nil
	}
	if len(data) != rows*r.width {
		return nil, fmt.Errorf("relation: arena length %d ≠ %d rows × width %d", len(data), rows, r.width)
	}
	r.grow(rows)
	r.InsertBlock(data)
	return r, nil
}

// Without returns a copy of r with the given tuples removed (tuples in
// column order; tuples not present — or of the wrong arity — are
// ignored) and reports how many rows were actually removed. r is
// unchanged, so Without is the copy-on-write delete mirroring Clone +
// Insert on the write path. Every full chunk before the first removed
// row is shared with r, not rewritten — deleting recent rows touches
// only the arena tail — while the rows from the first removal onward
// are repacked into fresh chunks (the arena keeps all chunks but the
// tail exactly full, so holes cannot be left in place).
func (r *Relation) Without(ts []Tuple) (*Relation, int) {
	del := New(r.U, r.attrs)
	for _, t := range ts {
		if len(t) == r.width {
			del.Insert(t)
		}
	}
	first := -1
	if del.n > 0 {
		for i := 0; i < r.n; i++ {
			if del.contains(r.row(i), r.hash(i)) {
				first = i
				break
			}
		}
	}
	if first < 0 {
		return r.Clone(), 0
	}
	out := New(r.U, r.attrs)
	keep := first >> chunkShift // chunks [0, keep) are full and untouched
	out.chunks = append(out.chunks, r.chunks[:keep]...)
	out.n = keep << chunkShift
	// Rebuild the index over the survivors. Rows of r are distinct, so
	// placement by stored hash needs no duplicate checks.
	size := tableSize(r.n)
	out.base = make([]int32, size)
	mask := uint64(size - 1)
	place := func(i int, h uint64) {
		j := h & mask
		for out.base[j] != 0 {
			j = (j + 1) & mask
		}
		out.base[j] = int32(i + 1)
	}
	for i := 0; i < out.n; i++ {
		place(i, r.hash(i))
	}
	removed := 0
	for i := out.n; i < r.n; i++ {
		row, h := r.row(i), r.hash(i)
		if del.contains(row, h) {
			removed++
			continue
		}
		place(out.n, h)
		out.appendRow(row, h)
	}
	return out, removed
}
