package relation

// Before/after benchmarks: skRelation preserves the seed engine —
// per-row []Value tuples behind a map[string]int set index, string-key
// hash tables for join and semijoin — so the columnar engine's speedup
// is measurable in-tree. Run with
//
//	go test ./internal/relation -bench 'Join|Semijoin|Insert' -benchmem

import (
	"fmt"
	"math/rand"
	"testing"

	"gyokit/internal/schema"
)

// skRelation is the seed string-keyed engine, verbatim modulo naming.
type skRelation struct {
	attrs  schema.AttrSet
	cols   []schema.Attr
	tuples []Tuple
	index  map[string]int
}

func newSK(attrs schema.AttrSet) *skRelation {
	return &skRelation{attrs: attrs, cols: attrs.Attrs(), index: make(map[string]int)}
}

func skKey(t Tuple) string {
	b := make([]byte, 4*len(t))
	for i, v := range t {
		b[4*i] = byte(v)
		b[4*i+1] = byte(v >> 8)
		b[4*i+2] = byte(v >> 16)
		b[4*i+3] = byte(v >> 24)
	}
	return string(b)
}

func (r *skRelation) insert(t Tuple) {
	k := skKey(t)
	if _, dup := r.index[k]; dup {
		return
	}
	cp := append(Tuple(nil), t...)
	r.index[k] = len(r.tuples)
	r.tuples = append(r.tuples, cp)
}

func (r *skRelation) pos(a schema.Attr) int {
	for i, c := range r.cols {
		if c == a {
			return i
		}
	}
	panic("legacy: attribute not present")
}

func (r *skRelation) join(s *skRelation) *skRelation {
	shared := r.attrs.Intersect(s.attrs)
	build, probe := r, s
	if len(s.tuples) < len(r.tuples) {
		build, probe = s, r
	}
	sharedCols := shared.Attrs()
	bPos := make([]int, len(sharedCols))
	pPos := make([]int, len(sharedCols))
	for i, c := range sharedCols {
		bPos[i] = build.pos(c)
		pPos[i] = probe.pos(c)
	}
	ht := make(map[string][]Tuple, len(build.tuples))
	kbuf := make(Tuple, len(sharedCols))
	for _, t := range build.tuples {
		for i, p := range bPos {
			kbuf[i] = t[p]
		}
		k := skKey(kbuf)
		ht[k] = append(ht[k], t)
	}
	out := newSK(r.attrs.Union(s.attrs))
	type src struct {
		fromProbe bool
		pos       int
	}
	srcs := make([]src, len(out.cols))
	for i, c := range out.cols {
		if probe.attrs.Has(c) {
			srcs[i] = src{true, probe.pos(c)}
		} else {
			srcs[i] = src{false, build.pos(c)}
		}
	}
	obuf := make(Tuple, len(out.cols))
	for _, pt := range probe.tuples {
		for i, p := range pPos {
			kbuf[i] = pt[p]
		}
		for _, bt := range ht[skKey(kbuf)] {
			for i, s := range srcs {
				if s.fromProbe {
					obuf[i] = pt[s.pos]
				} else {
					obuf[i] = bt[s.pos]
				}
			}
			out.insert(obuf)
		}
	}
	return out
}

func (r *skRelation) semijoin(s *skRelation) *skRelation {
	shared := r.attrs.Intersect(s.attrs)
	sharedCols := shared.Attrs()
	sPos := make([]int, len(sharedCols))
	rPos := make([]int, len(sharedCols))
	for i, c := range sharedCols {
		sPos[i] = s.pos(c)
		rPos[i] = r.pos(c)
	}
	seen := make(map[string]bool, len(s.tuples))
	kbuf := make(Tuple, len(sharedCols))
	for _, t := range s.tuples {
		for i, p := range sPos {
			kbuf[i] = t[p]
		}
		seen[skKey(kbuf)] = true
	}
	out := newSK(r.attrs)
	for _, t := range r.tuples {
		for i, p := range rPos {
			kbuf[i] = t[p]
		}
		if seen[skKey(kbuf)] {
			out.insert(t)
		}
	}
	return out
}

// benchTuples generates n width-2 tuples: column 0 unique, column 1
// uniform over n/8 values, so an ab ⋈ bc join has ~8×8 matches per key.
func benchTuples(n int, seed int64) []Tuple {
	rng := rand.New(rand.NewSource(seed))
	dom := n / 8
	if dom < 1 {
		dom = 1
	}
	out := make([]Tuple, n)
	for i := range out {
		out[i] = Tuple{Value(i), Value(rng.Intn(dom))}
	}
	return out
}

func benchSizes() []int { return []int{1000, 10000, 50000} }

func BenchmarkInsertColumnar(b *testing.B) {
	u := schema.NewUniverse()
	ab := u.Set("a", "b")
	for _, n := range benchSizes() {
		data := benchTuples(n, 1)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := New(u, ab)
				for _, t := range data {
					r.Insert(t)
				}
			}
		})
	}
}

func BenchmarkInsertStringKey(b *testing.B) {
	u := schema.NewUniverse()
	ab := u.Set("a", "b")
	for _, n := range benchSizes() {
		data := benchTuples(n, 1)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := newSK(ab)
				for _, t := range data {
					r.insert(t)
				}
			}
		})
	}
}

// benchJoinPair builds R(a,b) and S(b,c) with matching b distributions
// in both engines.
func benchJoinPair(u *schema.Universe, n int) (*Relation, *Relation, *skRelation, *skRelation) {
	ab, bc := u.Set("a", "b"), u.Set("b", "c")
	r, s := New(u, ab), New(u, bc)
	rk, sk := newSK(ab), newSK(bc)
	for _, t := range benchTuples(n, 2) {
		r.Insert(t)
		rk.insert(t)
	}
	for _, t := range benchTuples(n, 3) {
		// S columns are (b, c) = (random, unique): swap so the shared
		// attribute b is the random column on both sides.
		s.Insert(Tuple{t[1], t[0]})
		sk.insert(Tuple{t[1], t[0]})
	}
	return r, s, rk, sk
}

func BenchmarkJoinColumnar(b *testing.B) {
	u := schema.NewUniverse()
	for _, n := range benchSizes() {
		r, s, _, _ := benchJoinPair(u, n)
		ex := NewExec()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ex.Join(r, s)
			}
		})
	}
}

func BenchmarkJoinStringKey(b *testing.B) {
	u := schema.NewUniverse()
	for _, n := range benchSizes() {
		_, _, rk, sk := benchJoinPair(u, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rk.join(sk)
			}
		})
	}
}

func BenchmarkSemijoinColumnar(b *testing.B) {
	u := schema.NewUniverse()
	for _, n := range benchSizes() {
		r, s, _, _ := benchJoinPair(u, n)
		ex := NewExec()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ex.Semijoin(r, s)
			}
		})
	}
}

func BenchmarkSemijoinStringKey(b *testing.B) {
	u := schema.NewUniverse()
	for _, n := range benchSizes() {
		_, _, rk, sk := benchJoinPair(u, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rk.semijoin(sk)
			}
		})
	}
}
