package relation

import (
	"math/rand"
	"testing"

	"gyokit/internal/schema"
)

func snapshotDB(t *testing.T) (*schema.Schema, *Database) {
	t.Helper()
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc")
	i, _ := RandomUniversal(u, d.Attrs(), 20, 4, rand.New(rand.NewSource(1)))
	return d, URDatabase(d, i)
}

func TestFreezePanicsOnInsert(t *testing.T) {
	d, db := snapshotDB(t)
	_ = d
	db.Freeze()
	if !db.Rels[0].Frozen() || db.Univ == nil || !db.Univ.Frozen() {
		t.Fatal("Freeze did not freeze all relations")
	}
	defer func() {
		if recover() == nil {
			t.Error("Insert into frozen relation did not panic")
		}
	}()
	db.Rels[0].Insert(Tuple{9, 9})
}

func TestCloneIsUnfrozen(t *testing.T) {
	_, db := snapshotDB(t)
	db.Freeze()
	c := db.Rels[0].Clone()
	if c.Frozen() {
		t.Fatal("Clone of frozen relation is frozen")
	}
	before := db.Rels[0].Card()
	c.Insert(Tuple{101, 102})
	if db.Rels[0].Card() != before {
		t.Error("mutating a clone changed the original")
	}
	if !c.Has(Tuple{101, 102}) {
		t.Error("clone insert lost")
	}
}

func TestDatabaseCloneIsShallowSnapshot(t *testing.T) {
	_, db := snapshotDB(t)
	snap := db.Clone()
	if snap == db {
		t.Fatal("Clone returned the receiver")
	}
	for i := range db.Rels {
		if snap.Rels[i] != db.Rels[i] {
			t.Errorf("Clone copied relation %d instead of sharing it", i)
		}
	}
	snap.Rels[0] = New(db.D.U, db.D.Rels[0])
	if db.Rels[0] == snap.Rels[0] {
		t.Error("replacing a clone slot aliased the original slice")
	}
}

func TestInsertTupleCopyOnWrite(t *testing.T) {
	_, db := snapshotDB(t)
	db.Freeze()
	before := db.Rels[1].Card()
	tup := Tuple{77, 78}
	if db.Rels[1].Has(tup) {
		t.Fatal("test tuple already present")
	}
	db2 := db.InsertTuple(1, tup)
	if db.Rels[1].Card() != before || db.Rels[1].Has(tup) {
		t.Error("InsertTuple mutated the original snapshot")
	}
	if !db2.Rels[1].Has(tup) || db2.Rels[1].Card() != before+1 {
		t.Error("InsertTuple result missing the tuple")
	}
	if db2.Rels[0] != db.Rels[0] {
		t.Error("InsertTuple copied an untouched relation")
	}
	// The derived snapshot can be frozen and published in turn.
	db2.Freeze()
	if !db2.Rels[1].Frozen() {
		t.Error("derived snapshot did not freeze")
	}
}

func TestWithRelationSchemaMismatchPanics(t *testing.T) {
	_, db := snapshotDB(t)
	defer func() {
		if recover() == nil {
			t.Error("WithRelation with wrong schema did not panic")
		}
	}()
	db.WithRelation(0, New(db.D.U, db.D.Rels[1]))
}
