package storage

import (
	"fmt"

	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

// Kind discriminates logical mutation records.
type Kind uint8

// The mutation kinds written to the WAL. Values are part of the on-disk
// format and must never be renumbered.
const (
	KindInsert Kind = 1 // insert a tuple batch into relation Rel
	KindDelete Kind = 2 // delete a tuple batch from relation Rel
	KindCreate Kind = 3 // append a new (empty) relation with Attrs
	KindDrop   Kind = 4 // remove relation Rel from the schema
	KindCursor Kind = 5 // no-op replication cursor mark (see CursorMark)
)

func (k Kind) String() string {
	switch k {
	case KindInsert:
		return "insert"
	case KindDelete:
		return "delete"
	case KindCreate:
		return "create"
	case KindDrop:
		return "drop"
	case KindCursor:
		return "cursor"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Mutation is one logical mutation of a Database: the unit the WAL
// records and replays, and the argument of the engine's durable write
// path. A slice of Mutations applied together forms one atomic batch —
// the WAL writes the whole batch as a single record, so recovery never
// observes half a batch.
type Mutation struct {
	Kind Kind
	// Rel is the target relation index (Insert/Delete/Drop).
	Rel int
	// Width is the tuple arity of Values (Insert/Delete); it must match
	// the target relation's width when applied.
	Width int
	// Values is the row-major tuple batch (Insert/Delete):
	// len(Values)/Width tuples in the relation's column order.
	Values []relation.Value
	// Attrs names the attribute set of the new relation (Create).
	Attrs []string
	// Cursor is the leader WAL position this record covers (Cursor
	// marks only).
	Cursor Cursor
}

// Insert returns an insert-batch mutation for relation rel from tuples
// in column order. All tuples must have arity width. Width 0 is the
// degenerate zero-attribute relation: the batch means "the empty
// tuple" (set semantics make any count equivalent to one).
func Insert(rel, width int, tuples []relation.Tuple) Mutation {
	return Mutation{Kind: KindInsert, Rel: rel, Width: width, Values: flatten(width, tuples)}
}

// Delete returns a delete-batch mutation for relation rel.
func Delete(rel, width int, tuples []relation.Tuple) Mutation {
	return Mutation{Kind: KindDelete, Rel: rel, Width: width, Values: flatten(width, tuples)}
}

// Create returns a mutation appending a new empty relation over the
// given attribute names to the schema.
func Create(attrs ...string) Mutation {
	return Mutation{Kind: KindCreate, Attrs: attrs}
}

// Drop returns a mutation removing relation rel from the schema.
func Drop(rel int) Mutation {
	return Mutation{Kind: KindDrop, Rel: rel}
}

// CursorMark returns a no-op mutation recording a replication cursor.
// A follower appends one as the last mutation of every batch it
// re-logs from its leader: the mark rides in the same atomic WAL
// record as the batch, so recovery replays data and cursor together
// and ReplayedCursor reports exactly how far the recovered state
// reaches — without it a batch could be re-fetched and re-applied,
// which Create/Drop do not tolerate.
func CursorMark(c Cursor) Mutation {
	return Mutation{Kind: KindCursor, Cursor: c}
}

// CreatesFor returns one Create mutation per relation schema of d,
// naming attributes through d's universe — the standard way to seed an
// empty store from a parsed schema.
func CreatesFor(d *schema.Schema) []Mutation {
	out := make([]Mutation, len(d.Rels))
	for i, r := range d.Rels {
		names := make([]string, 0, r.Card())
		for _, a := range r.Attrs() {
			names = append(names, d.U.Name(a))
		}
		out[i] = Create(names...)
	}
	return out
}

func flatten(width int, tuples []relation.Tuple) []relation.Value {
	out := make([]relation.Value, 0, width*len(tuples))
	for _, t := range tuples {
		out = append(out, t...)
	}
	return out
}

// Rows returns the number of tuples in an Insert/Delete batch. A
// zero-width batch always denotes the single empty tuple.
func (m Mutation) Rows() int {
	if m.Width <= 0 {
		return 1
	}
	return len(m.Values) / m.Width
}

// validate checks m against db without applying it.
func (m Mutation) validate(db *relation.Database) error {
	switch m.Kind {
	case KindInsert, KindDelete:
		if m.Rel < 0 || m.Rel >= len(db.Rels) {
			return fmt.Errorf("storage: %s: relation %d out of range (schema has %d)", m.Kind, m.Rel, len(db.Rels))
		}
		if m.Width < 0 {
			return fmt.Errorf("storage: %s: negative width %d", m.Kind, m.Width)
		}
		if w := len(db.Rels[m.Rel].Cols()); m.Width != w {
			return fmt.Errorf("storage: %s: width %d ≠ relation width %d", m.Kind, m.Width, w)
		}
		if m.Width == 0 {
			if len(m.Values) != 0 {
				return fmt.Errorf("storage: %s: zero-width batch with %d values", m.Kind, len(m.Values))
			}
		} else if len(m.Values)%m.Width != 0 {
			return fmt.Errorf("storage: %s: %d values not a multiple of width %d", m.Kind, len(m.Values), m.Width)
		}
	case KindCreate:
		// Zero attributes is allowed: the paper's schemas may contain
		// the empty relation schema ∅.
		seen := make(map[string]bool, len(m.Attrs))
		for _, a := range m.Attrs {
			if a == "" {
				return fmt.Errorf("storage: create with empty attribute name")
			}
			if seen[a] {
				return fmt.Errorf("storage: create with duplicate attribute %q", a)
			}
			seen[a] = true
		}
	case KindDrop:
		if m.Rel < 0 || m.Rel >= len(db.Rels) {
			return fmt.Errorf("storage: drop: relation %d out of range (schema has %d)", m.Rel, len(db.Rels))
		}
	case KindCursor:
		// No state to check: the mark is a pure annotation.
	default:
		return fmt.Errorf("storage: unknown mutation kind %d", m.Kind)
	}
	return nil
}

// encodable checks m against the codec's decode caps: anything Append
// accepts must decode on replay, otherwise an acknowledged batch would
// read as a torn tail and be silently dropped by recovery.
func (m Mutation) encodable() error {
	switch m.Kind {
	case KindInsert, KindDelete:
		if m.Rel < 0 || m.Rel > maxRelations {
			return fmt.Errorf("storage: %s: relation index %d exceeds codec cap %d", m.Kind, m.Rel, maxRelations)
		}
		if m.Width < 0 || m.Width > maxNames {
			return fmt.Errorf("storage: %s: width %d exceeds codec cap %d", m.Kind, m.Width, maxNames)
		}
		// The encoder writes rows = len(Values)/Width then all Values;
		// a ragged batch would produce trailing bytes the decoder
		// rejects, so it must never reach the file.
		if m.Width == 0 && len(m.Values) != 0 {
			return fmt.Errorf("storage: %s: zero-width batch with %d values", m.Kind, len(m.Values))
		}
		if m.Width > 0 && len(m.Values)%m.Width != 0 {
			return fmt.Errorf("storage: %s: %d values not a multiple of width %d", m.Kind, len(m.Values), m.Width)
		}
	case KindCreate:
		if len(m.Attrs) > maxNames {
			return fmt.Errorf("storage: create with %d attributes exceeds codec cap %d", len(m.Attrs), maxNames)
		}
		for _, a := range m.Attrs {
			if len(a) > maxNameLen {
				return fmt.Errorf("storage: attribute name of %d bytes exceeds codec cap %d", len(a), maxNameLen)
			}
		}
	case KindDrop:
		if m.Rel < 0 || m.Rel > maxRelations {
			return fmt.Errorf("storage: drop: relation index %d exceeds codec cap %d", m.Rel, maxRelations)
		}
	case KindCursor:
		if m.Cursor.Off < 0 {
			return fmt.Errorf("storage: cursor mark with negative offset %d", m.Cursor.Off)
		}
	default:
		return fmt.Errorf("storage: unknown mutation kind %d", m.Kind)
	}
	return nil
}

// Apply applies m to db copy-on-write: db (typically a frozen snapshot)
// is unchanged, and the returned database shares every untouched
// relation state. n reports the tuples actually inserted or deleted
// (set semantics make both idempotent), or 0 for schema mutations.
func (m Mutation) Apply(db *relation.Database) (out *relation.Database, n int, err error) {
	return m.apply(db, false)
}

// apply is Apply with an in-place mode for recovery replay, where db is
// private and unfrozen and per-record copy-on-write would make replay
// quadratic.
func (m Mutation) apply(db *relation.Database, inPlace bool) (*relation.Database, int, error) {
	if err := m.validate(db); err != nil {
		return nil, 0, err
	}
	switch m.Kind {
	case KindInsert:
		r := db.Rels[m.Rel]
		if !inPlace {
			r = r.Clone()
		}
		n := 0
		if m.Width == 0 {
			before := r.Card()
			r.Insert(relation.Tuple{})
			n = r.Card() - before
		} else {
			// Bulk path: the batch is already row-major, so it feeds the
			// arena without materializing per-row Tuple headers.
			n = r.InsertBlock(m.Values)
		}
		if inPlace {
			return db, n, nil
		}
		return db.WithRelation(m.Rel, r), n, nil
	case KindDelete:
		tuples := make([]relation.Tuple, 0, m.Rows())
		if m.Width == 0 {
			tuples = append(tuples, relation.Tuple{})
		}
		for o := 0; m.Width > 0 && o < len(m.Values); o += m.Width {
			tuples = append(tuples, relation.Tuple(m.Values[o:o+m.Width]))
		}
		r, n := db.Rels[m.Rel].Without(tuples)
		if inPlace {
			db.Rels[m.Rel] = r
			return db, n, nil
		}
		return db.WithRelation(m.Rel, r), n, nil
	case KindCreate:
		u := db.D.U
		ids := make([]schema.Attr, len(m.Attrs))
		for i, name := range m.Attrs {
			ids[i] = u.Attr(name)
		}
		set := schema.NewAttrSet(ids...)
		if !inPlace {
			db = db.Clone()
		}
		db.D = db.D.WithRel(set)
		db.Rels = append(db.Rels, relation.New(u, set))
		return db, 0, nil
	case KindDrop:
		if !inPlace {
			db = db.Clone()
		}
		db.D = db.D.RemoveAt(m.Rel)
		db.Rels = append(db.Rels[:m.Rel:m.Rel], db.Rels[m.Rel+1:]...)
		return db, 0, nil
	case KindCursor:
		return db, 0, nil
	}
	panic("unreachable")
}

// ApplyAll applies the batch in order, copy-on-write, returning the
// resulting database and per-mutation affected-tuple counts. On error
// nothing is returned: a batch is all-or-nothing for the caller (the
// intermediate databases are garbage-collected).
func ApplyAll(db *relation.Database, muts []Mutation) (*relation.Database, []int, error) {
	counts := make([]int, len(muts))
	for i, m := range muts {
		var err error
		db, counts[i], err = m.Apply(db)
		if err != nil {
			return nil, nil, fmt.Errorf("mutation %d: %w", i, err)
		}
	}
	return db, counts, nil
}
