package storage

// Binary codec for the columnar database representation and for WAL
// mutation records. The encoding serializes only what cannot be
// recomputed: the universe's attribute names (in interning order, so
// attribute ids — and therefore arena column order — survive a round
// trip), each relation's attribute-id list, and the raw row-major
// arena, streamed chunk by chunk on both sides (the byte format is a
// flat arena; the persistent chunks just concatenate into it). Row
// hashes and the set-semantics indexes are rebuilt on load. All
// integers are unsigned varints except tuple values, which are fixed
// 4-byte little-endian for bulk speed.

import (
	"encoding/binary"
	"fmt"

	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

// Decode sanity caps: decoding is driven by untrusted bytes (fuzzed or
// corrupted files), so every count is bounded before allocation.
const (
	maxNames     = 1 << 20 // universe attributes
	maxNameLen   = 1 << 12 // bytes per attribute name
	maxRelations = 1 << 20 // relation schemas
	maxBatchMuts = 1 << 20 // mutations per WAL record
)

// ErrCorrupt is wrapped by every decode failure, so callers can
// distinguish corruption from I/O errors.
var ErrCorrupt = fmt.Errorf("storage: corrupt data")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// --- primitive readers over a byte slice ---

type reader struct {
	buf []byte
	off int
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, corruptf("truncated varint (%s)", what)
	}
	r.off += n
	return v, nil
}

func (r *reader) count(what string, max int) (int, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > uint64(max) {
		return 0, corruptf("%s count %d exceeds cap %d", what, v, max)
	}
	return int(v), nil
}

func (r *reader) bytes(n int, what string) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, corruptf("truncated %s (%d bytes wanted, %d left)", what, n, r.remaining())
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) values(n int, what string) ([]relation.Value, error) {
	return r.valuesInto(nil, n, what)
}

// valuesInto decodes n values, reusing dst's backing array when it is
// large enough (the chunk-at-a-time relation decoder recycles one
// chunk-sized scratch buffer).
func (r *reader) valuesInto(dst []relation.Value, n int, what string) ([]relation.Value, error) {
	b, err := r.bytes(n*relation.ValueBytes, what)
	if err != nil {
		return nil, err
	}
	if cap(dst) < n {
		dst = make([]relation.Value, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = relation.Value(binary.LittleEndian.Uint32(b[i*relation.ValueBytes:]))
	}
	return dst, nil
}

// --- primitive writers ---

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendValues(dst []byte, vals []relation.Value) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return dst
}

// --- database codec (checkpoint payload) ---

// appendDatabase encodes db, including the universe name table of
// db.D.U, so that decodeDatabase rebuilds an identical database over a
// fresh universe with identical attribute ids.
func appendDatabase(dst []byte, db *relation.Database) []byte {
	u := db.D.U
	n := u.Size()
	dst = appendUvarint(dst, uint64(n))
	for a := 0; a < n; a++ {
		name := u.Name(schema.Attr(a))
		dst = appendUvarint(dst, uint64(len(name)))
		dst = append(dst, name...)
	}
	dst = appendUvarint(dst, uint64(len(db.Rels)))
	for _, r := range db.Rels {
		dst = appendRelation(dst, r)
	}
	if db.Univ != nil {
		dst = append(dst, 1)
		dst = appendRelation(dst, db.Univ)
	} else {
		dst = append(dst, 0)
	}
	return dst
}

func appendRelation(dst []byte, r *relation.Relation) []byte {
	cols := r.Cols()
	dst = appendUvarint(dst, uint64(len(cols)))
	for _, a := range cols {
		dst = appendUvarint(dst, uint64(a))
	}
	dst = appendUvarint(dst, uint64(r.Card()))
	// Serialize the arena chunk by chunk: the byte stream is identical
	// to a flat row-major arena (chunks concatenate in row order), so
	// the on-disk format is unchanged, but the encoder streams straight
	// out of the persistent chunks without materializing a flat copy —
	// the hook a chunk-granular incremental checkpoint writer needs.
	r.ForEachChunk(func(block []relation.Value) bool {
		dst = appendValues(dst, block)
		return true
	})
	return dst
}

// decodeUniverse reads the interned attribute-name table into a fresh
// universe, returning it with its attribute count. Shared by the full
// database decoder and the incremental-checkpoint manifest decoder —
// both formats open with the same name table.
func decodeUniverse(r *reader) (*schema.Universe, int, error) {
	nNames, err := r.count("universe names", maxNames)
	if err != nil {
		return nil, 0, err
	}
	u := schema.NewUniverse()
	for i := 0; i < nNames; i++ {
		ln, err := r.count("name length", maxNameLen)
		if err != nil {
			return nil, 0, err
		}
		b, err := r.bytes(ln, "name")
		if err != nil {
			return nil, 0, err
		}
		name := string(b)
		if name == "" {
			return nil, 0, corruptf("empty attribute name at id %d", i)
		}
		if _, ok := u.Lookup(name); ok {
			return nil, 0, corruptf("duplicate attribute name %q", name)
		}
		if got := u.Attr(name); int(got) != i {
			return nil, 0, corruptf("attribute %q interned as %d, want %d", name, got, i)
		}
	}
	return u, nNames, nil
}

// decodeAttrs reads a relation's attribute-id list: width ids, strictly
// increasing and below nNames, so the list is guaranteed to be a set
// matching the sorted arena column order.
func decodeAttrs(r *reader, nNames int) ([]schema.Attr, error) {
	width, err := r.count("relation width", nNames)
	if err != nil {
		return nil, err
	}
	ids := make([]schema.Attr, width)
	prev := -1
	for i := range ids {
		a, err := r.uvarint("attribute id")
		if err != nil {
			return nil, err
		}
		if int(a) >= nNames || int(a) <= prev {
			return nil, corruptf("attribute id %d (after %d, universe %d)", a, prev, nNames)
		}
		prev = int(a)
		ids[i] = schema.Attr(a)
	}
	return ids, nil
}

// decodeDatabase decodes an appendDatabase payload into a fresh
// universe. The whole payload must be consumed.
func decodeDatabase(buf []byte) (*relation.Database, error) {
	r := &reader{buf: buf}
	u, nNames, err := decodeUniverse(r)
	if err != nil {
		return nil, err
	}
	nRels, err := r.count("relations", maxRelations)
	if err != nil {
		return nil, err
	}
	db := &relation.Database{D: schema.New(u)}
	for i := 0; i < nRels; i++ {
		rel, err := decodeRelation(r, u, nNames)
		if err != nil {
			return nil, fmt.Errorf("relation %d: %w", i, err)
		}
		db.D.Add(rel.Attrs())
		db.Rels = append(db.Rels, rel)
	}
	hasUniv, err := r.bytes(1, "universal-relation flag")
	if err != nil {
		return nil, err
	}
	switch hasUniv[0] {
	case 0:
	case 1:
		univ, err := decodeRelation(r, u, nNames)
		if err != nil {
			return nil, fmt.Errorf("universal relation: %w", err)
		}
		db.Univ = univ
	default:
		return nil, corruptf("universal-relation flag %d", hasUniv[0])
	}
	if r.remaining() != 0 {
		return nil, corruptf("%d trailing bytes after database", r.remaining())
	}
	return db, nil
}

func decodeRelation(r *reader, u *schema.Universe, nNames int) (*relation.Relation, error) {
	ids, err := decodeAttrs(r, nNames)
	if err != nil {
		return nil, err
	}
	width := len(ids)
	rows, err := r.uvarint("row count")
	if err != nil {
		return nil, err
	}
	if width > 0 && rows > uint64(r.remaining()/(width*relation.ValueBytes)) {
		return nil, corruptf("row count %d exceeds remaining bytes", rows)
	}
	if width == 0 && rows > 1 {
		return nil, corruptf("zero-width relation with %d rows", rows)
	}
	if width == 0 {
		rel, err := relation.FromArena(u, schema.NewAttrSet(ids...), int(rows), nil)
		if err != nil {
			return nil, corruptf("%v", err)
		}
		return rel, nil
	}
	// Decode the arena a chunk at a time into the relation's own
	// chunked layout: one reused chunk-sized scratch buffer instead of
	// a second full-size flat arena alongside the relation being built.
	rel := relation.NewSized(u, schema.NewAttrSet(ids...), int(rows))
	var buf []relation.Value
	for left := int(rows); left > 0; {
		c := left
		if c > relation.ChunkRows {
			c = relation.ChunkRows
		}
		buf, err = r.valuesInto(buf, c*width, "arena")
		if err != nil {
			return nil, err
		}
		rel.InsertBlock(buf)
		left -= c
	}
	return rel, nil
}

// --- mutation codec (WAL record payload) ---

// appendBatch encodes a mutation batch as one WAL record payload.
func appendBatch(dst []byte, muts []Mutation) []byte {
	dst = appendUvarint(dst, uint64(len(muts)))
	for _, m := range muts {
		dst = appendMutation(dst, m)
	}
	return dst
}

func appendMutation(dst []byte, m Mutation) []byte {
	dst = append(dst, byte(m.Kind))
	switch m.Kind {
	case KindInsert, KindDelete:
		dst = appendUvarint(dst, uint64(m.Rel))
		dst = appendUvarint(dst, uint64(m.Width))
		dst = appendUvarint(dst, uint64(m.Rows()))
		dst = appendValues(dst, m.Values)
	case KindCreate:
		dst = appendUvarint(dst, uint64(len(m.Attrs)))
		for _, a := range m.Attrs {
			dst = appendUvarint(dst, uint64(len(a)))
			dst = append(dst, a...)
		}
	case KindDrop:
		dst = appendUvarint(dst, uint64(m.Rel))
	case KindCursor:
		dst = appendUvarint(dst, m.Cursor.Seg)
		dst = appendUvarint(dst, uint64(m.Cursor.Off))
	}
	return dst
}

// decodeBatch decodes one WAL record payload. The whole payload must
// be consumed.
func decodeBatch(buf []byte) ([]Mutation, error) {
	r := &reader{buf: buf}
	n, err := r.count("batch size", maxBatchMuts)
	if err != nil {
		return nil, err
	}
	muts := make([]Mutation, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		m, err := decodeMutation(r)
		if err != nil {
			return nil, fmt.Errorf("mutation %d: %w", i, err)
		}
		muts = append(muts, m)
	}
	if r.remaining() != 0 {
		return nil, corruptf("%d trailing bytes after batch", r.remaining())
	}
	return muts, nil
}

func decodeMutation(r *reader) (Mutation, error) {
	kb, err := r.bytes(1, "mutation kind")
	if err != nil {
		return Mutation{}, err
	}
	m := Mutation{Kind: Kind(kb[0])}
	switch m.Kind {
	case KindInsert, KindDelete:
		rel, err := r.count("relation index", maxRelations)
		if err != nil {
			return Mutation{}, err
		}
		width, err := r.count("width", maxNames)
		if err != nil {
			return Mutation{}, err
		}
		rows, err := r.uvarint("rows")
		if err != nil {
			return Mutation{}, err
		}
		if width == 0 {
			// The canonical zero-width batch: exactly one empty tuple,
			// no values.
			if rows != 1 {
				return Mutation{}, corruptf("zero-width %s batch with %d rows", m.Kind, rows)
			}
			m.Rel = rel
			return m, nil
		}
		if rows > uint64(r.remaining()/(width*relation.ValueBytes)) {
			return Mutation{}, corruptf("row count %d exceeds remaining bytes", rows)
		}
		vals, err := r.values(int(rows)*width, "tuple batch")
		if err != nil {
			return Mutation{}, err
		}
		m.Rel, m.Width, m.Values = rel, width, vals
	case KindCreate:
		n, err := r.count("create attributes", maxNames)
		if err != nil {
			return Mutation{}, err
		}
		m.Attrs = make([]string, n)
		for i := range m.Attrs {
			ln, err := r.count("attribute name length", maxNameLen)
			if err != nil {
				return Mutation{}, err
			}
			b, err := r.bytes(ln, "attribute name")
			if err != nil {
				return Mutation{}, err
			}
			m.Attrs[i] = string(b)
		}
	case KindDrop:
		rel, err := r.count("relation index", maxRelations)
		if err != nil {
			return Mutation{}, err
		}
		m.Rel = rel
	case KindCursor:
		seg, err := r.uvarint("cursor segment")
		if err != nil {
			return Mutation{}, err
		}
		off, err := r.uvarint("cursor offset")
		if err != nil {
			return Mutation{}, err
		}
		if off > 1<<62 {
			return Mutation{}, corruptf("cursor offset %d", off)
		}
		m.Cursor = Cursor{Seg: seg, Off: int64(off)}
	default:
		return Mutation{}, corruptf("unknown mutation kind %d", kb[0])
	}
	return m, nil
}
