//go:build !unix

package storage

import "os"

// lockDir is advisory-only on platforms without flock: single-process
// use is the operator's responsibility there.
func lockDir(string) (*os.File, error) { return nil, nil }
