//go:build unix

package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory lock on dir's LOCK file, so two
// processes can never append to (or truncate) the same WAL: the second
// Open fails fast instead of corrupting the first's acknowledged tail.
// The lock is released when the returned file is closed — including by
// the OS on any process death, so a SIGKILL never leaves a stale lock.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("storage: %s is in use by another process: %w", dir, err)
	}
	return f, nil
}
