package storage

// Replication primitives: everything a log-shipping leader/follower
// pair (internal/repl) needs from the durability layer, kept here so
// the WAL and chunk-store formats stay private to this package.
//
// The leader side is read-only over existing state: ReadWAL serves
// frame-aligned windows of acknowledged WAL bytes addressed by a
// (segment, offset) Cursor, and WriteReplSnapshot streams the current
// snapshot as a manifest + chunk records in the exact on-disk
// checkpoint format. The follower side is InstallReplSnapshot (which
// materializes that stream as a directory a normal Open recovers) plus
// KindCursor marks: no-op mutations the follower appends at the end of
// every re-logged batch, recording which leader cursor that batch
// corresponds to. Because the mark travels in the same atomic WAL
// record as the batch, recovery replays exactly the applied prefix and
// ReplayedCursor tells the tailer where to resume — re-applying a
// batch is not an option, since Create/Drop are not idempotent.

import (
	"bufio"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"gyokit/internal/relation"
)

// Cursor addresses a position in the WAL: a segment sequence number
// and a byte offset within that segment's file. Offsets produced by
// this package always sit on a frame boundary (or at the 8-byte
// segment header, for a fresh segment).
type Cursor struct {
	Seg uint64
	Off int64
}

func (c Cursor) String() string { return fmt.Sprintf("%d/%d", c.Seg, c.Off) }

// Less orders cursors by WAL position.
func (c Cursor) Less(o Cursor) bool {
	if c.Seg != o.Seg {
		return c.Seg < o.Seg
	}
	return c.Off < o.Off
}

// FrameOverhead is the per-record framing cost in WAL bytes (length +
// CRC header); a cursor advances by FrameOverhead + payload length per
// record.
const FrameOverhead = frameHedLen

// Typed ReadWAL failures, so a replication feed can tell a follower
// whether its cursor is permanently unservable.
var (
	// ErrCursorGone means the cursor's segment was truncated away by a
	// checkpoint: the history below it no longer exists on this leader.
	ErrCursorGone = fmt.Errorf("storage: cursor no longer in the WAL")
	// ErrCursorInvalid means the cursor points ahead of the durable tail
	// or into a segment this store never wrote — the follower's history
	// is not a prefix of this store's.
	ErrCursorInvalid = fmt.Errorf("storage: cursor not at a valid WAL position")
)

// WALWindow is one ReadWAL result.
type WALWindow struct {
	// Frames holds zero or more complete framed records starting at the
	// requested cursor (never a partial frame).
	Frames []byte
	// Next is the cursor after consuming Frames. With empty Frames it
	// may still advance — across a rotated segment boundary — or equal
	// the request cursor, meaning the follower is caught up.
	Next Cursor
	// Tip is the durable tail of the WAL at read time.
	Tip Cursor
	// LagBytes is the acknowledged record bytes between Next and Tip
	// (segment headers excluded): 0 means Next is fully caught up.
	LagBytes int64
}

// TailCursor returns the durable tail of the WAL: the cursor a fully
// caught-up follower holds. Everything below it is acknowledged and
// fsynced (under NoSync: written).
func (s *Store) TailCursor() Cursor {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Cursor{Seg: s.segSeq, Off: s.segSizes[s.segSeq]}
}

// lagAfterLocked returns the acknowledged record bytes between c and
// the tail. Caller holds mu; c must be within the live WAL.
func (s *Store) lagAfterLocked(c Cursor) int64 {
	lag := s.segSizes[c.Seg] - c.Off
	for seq, sz := range s.segSizes {
		if seq > c.Seg {
			lag += sz - walHeaderLen
		}
	}
	return lag
}

// ReadWAL returns up to maxBytes of framed records starting at c,
// never splitting a frame and never crossing a segment boundary (a
// response per segment keeps cursor arithmetic trivial for the
// consumer). A cursor at the end of a rotated segment advances to the
// next segment's first record position with empty Frames. Only
// acknowledged bytes are served: the window never includes a record
// whose Append has not returned. maxBytes ≤ 0 means 1 MiB; a single
// frame larger than maxBytes is returned whole.
func (s *Store) ReadWAL(c Cursor, maxBytes int) (WALWindow, error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	if c.Off < walHeaderLen {
		c.Off = walHeaderLen
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return WALWindow{}, fmt.Errorf("storage: read on closed store")
	}
	size, ok := s.segSizes[c.Seg]
	if !ok {
		defer s.mu.Unlock()
		if c.Seg > s.segSeq {
			return WALWindow{}, fmt.Errorf("%w: segment %d is ahead of the tail segment %d", ErrCursorInvalid, c.Seg, s.segSeq)
		}
		if _, live := s.segSizes[c.Seg+1]; c == s.truncTail && live {
			// The cursor is the exact tail of the newest checkpointed-away
			// segment: the follower has everything the segment held, so
			// the truncation lost it nothing — hop over the boundary
			// instead of stranding a fully caught-up replica.
			next := Cursor{Seg: c.Seg + 1, Off: walHeaderLen}
			return WALWindow{Next: next, Tip: Cursor{Seg: s.segSeq, Off: s.segSizes[s.segSeq]}, LagBytes: s.lagAfterLocked(next)}, nil
		}
		return WALWindow{}, fmt.Errorf("%w: segment %d was truncated by a checkpoint", ErrCursorGone, c.Seg)
	}
	if c.Off > size {
		s.mu.Unlock()
		return WALWindow{}, fmt.Errorf("%w: offset %d past segment %d durable end %d", ErrCursorInvalid, c.Off, c.Seg, size)
	}
	tailSeq := s.segSeq
	if c.Off == size {
		defer s.mu.Unlock()
		next := c
		if c.Seg < tailSeq {
			next = Cursor{Seg: c.Seg + 1, Off: walHeaderLen}
		}
		return WALWindow{Next: next, Tip: Cursor{Seg: tailSeq, Off: s.segSizes[tailSeq]}, LagBytes: s.lagAfterLocked(next)}, nil
	}
	s.mu.Unlock()

	// Read outside the lock: the acknowledged prefix of a segment is
	// immutable, so a concurrent Append cannot change the bytes below
	// size. The file can only disappear wholesale (checkpoint
	// truncation), which maps to ErrCursorGone.
	avail := size - c.Off
	want := int64(maxBytes)
	if want > avail {
		want = avail
	}
	buf, err := s.readSegmentAt(c.Seg, c.Off, want)
	if err != nil {
		return WALWindow{}, err
	}
	valid, first := frameAlign(buf)
	if valid == 0 && first > 0 && int64(first) <= avail {
		// The first frame is larger than maxBytes: serve it whole, or the
		// feed would stall forever.
		if buf, err = s.readSegmentAt(c.Seg, c.Off, int64(first)); err != nil {
			return WALWindow{}, err
		}
		valid, _ = frameAlign(buf)
	}
	if valid == 0 {
		// Acknowledged bytes must frame-align; anything else is on-disk
		// corruption of a region replay would also reject.
		return WALWindow{}, corruptf("segment %d misframed at offset %d", c.Seg, c.Off)
	}
	next := Cursor{Seg: c.Seg, Off: c.Off + int64(valid)}
	s.mu.Lock()
	defer s.mu.Unlock()
	win := WALWindow{
		Frames: buf[:valid],
		Next:   next,
		Tip:    Cursor{Seg: s.segSeq, Off: s.segSizes[s.segSeq]},
	}
	if _, live := s.segSizes[next.Seg]; live {
		win.LagBytes = s.lagAfterLocked(next)
	}
	return win, nil
}

// readSegmentAt reads n bytes of segment seq starting at off.
func (s *Store) readSegmentAt(seq uint64, off, n int64) ([]byte, error) {
	f, err := os.Open(filepath.Join(s.dir, segName(seq)))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: segment %d was truncated by a checkpoint", ErrCursorGone, seq)
		}
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("storage: segment %d read at %d: %w", seq, off, err)
	}
	return buf, nil
}

// frameAlign returns the length of the longest complete-frame prefix
// of buf, plus the total size of the first frame when it extends past
// buf (0 when even its header is incomplete).
func frameAlign(buf []byte) (valid, firstFrame int) {
	off := 0
	for {
		if len(buf)-off < frameHedLen {
			return off, 0
		}
		ln := int(readU32(buf[off:]))
		if ln < 0 || ln > maxRecordSize {
			return off, 0
		}
		total := frameHedLen + ln
		if len(buf)-off < total {
			if off == 0 {
				return 0, total
			}
			return off, 0
		}
		off += total
	}
}

// SplitFrames splits a replication-feed byte stream into its record
// payloads, stopping at the first frame that is truncated, oversized,
// or fails its CRC — the consumer applies the valid prefix and retries
// from there, so a torn response can never apply a partial record.
// The payloads alias data. consumed is the byte length of the valid
// prefix (always a sum of whole frames).
func SplitFrames(data []byte) (payloads [][]byte, consumed int) {
	off := 0
	for {
		if len(data)-off < frameHedLen {
			return payloads, off
		}
		ln := int(readU32(data[off:]))
		wantCRC := readU32(data[off+4:])
		if ln < 0 || ln > maxRecordSize || len(data)-off-frameHedLen < ln {
			return payloads, off
		}
		payload := data[off+frameHedLen : off+frameHedLen+ln]
		if crcOf(payload) != wantCRC {
			return payloads, off
		}
		payloads = append(payloads, payload)
		off += frameHedLen + ln
	}
}

// DecodeBatch decodes one WAL record payload (as served by ReadWAL and
// split by SplitFrames) into its mutation batch.
func DecodeBatch(payload []byte) ([]Mutation, error) { return decodeBatch(payload) }

// AppendNotify returns a channel closed after the next successful
// append or WAL rotation — the long-poll wakeup for a replication
// feed. Obtain the channel before reading, so an append landing
// between the read and the wait is never missed.
func (s *Store) AppendNotify() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.notifyCh == nil {
		s.notifyCh = make(chan struct{})
	}
	return s.notifyCh
}

// signalAppendLocked wakes AppendNotify waiters. Caller holds mu.
func (s *Store) signalAppendLocked() {
	if s.notifyCh != nil {
		close(s.notifyCh)
		s.notifyCh = nil
	}
}

// ID returns the store's stable random identity, created at first Open
// and persisted in the directory. A replication follower records its
// leader's ID and refuses a feed whose identity changed — a cursor is
// only meaningful against the exact WAL history that produced it.
func (s *Store) ID() uint64 { return s.id }

const storeIDFile = "store-id"

func loadOrCreateStoreID(dir string, sync bool) (uint64, error) {
	path := filepath.Join(dir, storeIDFile)
	if b, err := os.ReadFile(path); err == nil {
		v, perr := strconv.ParseUint(strings.TrimSpace(string(b)), 16, 64)
		if perr != nil || v == 0 {
			return 0, corruptf("store-id file %q", strings.TrimSpace(string(b)))
		}
		return v, nil
	} else if !os.IsNotExist(err) {
		return 0, err
	}
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(b[:]) | 1 // zero is reserved for "unknown"
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(fmt.Sprintf("%016x\n", v)), 0o644); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if sync {
		if err := syncDir(dir); err != nil {
			return 0, err
		}
	}
	return v, nil
}

// truncTailFile records the exact end position of the newest WAL
// segment a checkpoint removed. A fully caught-up follower's cursor
// sits precisely there, so without this marker every checkpoint (and
// in particular the one every graceful shutdown takes) would strand
// all caught-up replicas behind ErrCursorGone. ReadWAL uses it to
// serve the rotation hop instead. Best-effort: a missing or stale file
// only costs a replica an avoidable re-seed, never correctness — the
// hop is served solely when the successor segment is still live.
const truncTailFile = "wal-trunc"

func saveTruncTail(dir string, c Cursor, sync bool) error {
	path := filepath.Join(dir, truncTailFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(fmt.Sprintf("%d %d\n", c.Seg, c.Off)), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if sync {
		return syncDir(dir)
	}
	return nil
}

func loadTruncTail(dir string) (Cursor, bool) {
	b, err := os.ReadFile(filepath.Join(dir, truncTailFile))
	if err != nil {
		return Cursor{}, false
	}
	var c Cursor
	if _, err := fmt.Sscanf(string(b), "%d %d", &c.Seg, &c.Off); err != nil || c.Seg == 0 || c.Off < walHeaderLen {
		return Cursor{}, false
	}
	return c, true
}

// ReplayedCursor returns the newest KindCursor mark found during
// Open's WAL replay, if any: the exact leader position covered by this
// follower's recovered state. No mark (fresh directory, or every mark
// truncated by a checkpoint) means the caller falls back to its
// sidecar state.
func (s *Store) ReplayedCursor() (Cursor, bool) {
	return s.replCursor, s.hasReplCursor
}

// DirHasStore reports whether dir holds an existing store (WAL
// segments or checkpoint state) — used by a replica bootstrap to
// refuse adopting a directory whose history it knows nothing about.
func DirHasStore(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if _, ok := parseSeq(name, "wal-", ".log"); ok {
			return true, nil
		}
		if _, ok := parseSeq(name, "manifest-", ".mf"); ok {
			return true, nil
		}
		if _, ok := parseSeq(name, "checkpoint-", ".ckpt"); ok {
			return true, nil
		}
	}
	return false, nil
}

// --- initial-sync snapshot stream ---
//
// Layout: [u32 manifestLen][u32 crc32c(manifest)][manifest payload]
// followed by the chunk records the manifest references, in reference
// order, in the exact chunks-<gen>.gyo record format. The manifest is
// encoded against generation 1 with offsets precomputed for the file
// the follower will write, so installing the stream yields a directory
// indistinguishable from one that checkpointed locally.

// WriteReplSnapshot streams db as an initial-sync package: manifest
// first, then every referenced chunk record. db must be frozen (it is
// only read, but the stream may take a while to write).
func WriteReplSnapshot(w io.Writer, db *relation.Database) error {
	rels := db.Rels
	if db.Univ != nil {
		rels = append(append([]*relation.Relation(nil), db.Rels...), db.Univ)
	}
	type planned struct {
		id    uint64
		block []relation.Value
	}
	refs := make(map[uint64]chunkRef)
	var order []planned
	off := int64(chunkStoreHeaderLen)
	for _, r := range rels {
		r.ForEachFullChunk(func(id uint64, block []relation.Value) bool {
			if _, ok := refs[id]; ok {
				return true
			}
			ln := int64(len(block)) * relation.ValueBytes
			refs[id] = chunkRef{off: off, ln: ln}
			order = append(order, planned{id: id, block: block})
			off += chunkRecHeaderLen + ln
			return true
		})
	}
	payload, err := appendManifest(nil, db, 1, func(id uint64) (chunkRef, bool) {
		ref, ok := refs[id]
		return ref, ok
	})
	if err != nil {
		return err
	}
	if len(payload) > maxRecordSize {
		return fmt.Errorf("storage: snapshot manifest of %d bytes exceeds cap %d", len(payload), maxRecordSize)
	}
	var hdr [8]byte
	putU32(hdr[0:], uint32(len(payload)))
	putU32(hdr[4:], crcOf(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var rec []byte
	for _, p := range order {
		rec = appendChunkRecord(rec[:0], p.id, p.block)
		if _, err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// InstallReplSnapshot materializes a WriteReplSnapshot stream into dir
// as Open-compatible state: chunks-…0001.gyo plus manifest-…0001.mf
// (sequence 1, so the follower's own WAL starts at segment 1). Every
// chunk record's CRC is verified in transit, and a torn or corrupt
// stream removes its partial files and errors — the directory is left
// without store state, safe to re-bootstrap. Open performs the full
// manifest/chunk verification afterwards.
func InstallReplSnapshot(dir string, r io.Reader) (err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	chunkPath := filepath.Join(dir, chunkStoreName(1))
	manPath := filepath.Join(dir, manName(1))
	defer func() {
		if err != nil {
			os.Remove(chunkPath)
			os.Remove(manPath)
		}
	}()
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("storage: snapshot stream header: %w", err)
	}
	mlen := int(readU32(hdr[0:]))
	if mlen < 0 || mlen > maxRecordSize {
		return corruptf("snapshot manifest length %d", mlen)
	}
	payload := make([]byte, mlen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return fmt.Errorf("storage: snapshot manifest body: %w", err)
	}
	if crcOf(payload) != readU32(hdr[4:]) {
		return corruptf("snapshot manifest CRC mismatch")
	}

	f, err := os.OpenFile(chunkPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	closed := false
	defer func() {
		if !closed {
			_ = f.Close()
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err := bw.Write(chunkMagic); err != nil {
		return err
	}
	var rh [chunkRecHeaderLen]byte
	var body []byte
	for {
		if _, rerr := io.ReadFull(br, rh[:]); rerr != nil {
			if rerr == io.EOF {
				break // clean end on a record boundary
			}
			return fmt.Errorf("storage: snapshot chunk header: %w", rerr)
		}
		ln := int(readU32(rh[8:]))
		if ln < 0 || ln > maxRecordSize {
			return corruptf("snapshot chunk length %d", ln)
		}
		if cap(body) < ln {
			body = make([]byte, ln)
		}
		body = body[:ln]
		if _, rerr := io.ReadFull(br, body); rerr != nil {
			return fmt.Errorf("storage: snapshot chunk body: %w", rerr)
		}
		if crcOf(body) != readU32(rh[12:]) {
			return corruptf("snapshot chunk %d CRC mismatch", readU64(rh[:]))
		}
		if _, err := bw.Write(rh[:]); err != nil {
			return err
		}
		if _, err := bw.Write(body); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	closed = true
	if err := f.Close(); err != nil {
		return err
	}

	tmp := manPath + ".tmp"
	if err := writeSnapshotFile(tmp, manMagic, 1, payload, true); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, manPath); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}
