package storage

// WAL segment format. A segment file is an 8-byte magic header followed
// by a stream of framed records:
//
//	[u32 payloadLen LE] [u32 crc32c(payload) LE] [payload]
//
// where payload is one appendBatch encoding — one record per logical
// mutation batch, so a batch is atomic under crash recovery: a torn or
// corrupt final record drops the whole batch, never half of it. Replay
// stops at the first frame that is truncated, oversized, or fails its
// CRC; in the newest segment that is the expected torn-tail case and
// recovery resumes appending from the last valid offset, while in an
// older segment it is hard corruption (rotation only ever follows
// complete writes) and Open fails rather than silently dropping
// acknowledged data.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

var (
	walMagic  = []byte("GYOWAL01")
	ckptMagic = []byte("GYOCKPT1")
	castTable = crc32.MakeTable(crc32.Castagnoli)
)

const (
	walHeaderLen  = 8
	frameHedLen   = 8       // u32 len + u32 crc
	maxRecordSize = 1 << 30 // frames claiming more are treated as corruption
)

func crcOf(b []byte) uint32 { return crc32.Checksum(b, castTable) }

func crc32Update(crc uint32, b []byte) uint32 { return crc32.Update(crc, castTable, b) }

func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func readU32(b []byte) uint32   { return binary.LittleEndian.Uint32(b) }
func readU64(b []byte) uint64   { return binary.LittleEndian.Uint64(b) }

// appendFrame wraps one record payload in the WAL framing.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castTable))
	return append(dst, payload...)
}

// replaySegment scans one segment's bytes, invoking fn for every valid
// record batch in order. It returns the byte offset of the end of the
// last valid record (the segment's recoverable prefix) and whether the
// scan consumed the segment cleanly (false means it stopped early at a
// torn or corrupt frame). A short or missing header yields (0, false).
// Errors returned by fn abort the scan immediately.
func replaySegment(data []byte, fn func(muts []Mutation) error) (validLen int, clean bool, err error) {
	if len(data) < walHeaderLen || string(data[:walHeaderLen]) != string(walMagic) {
		return 0, false, nil
	}
	off := walHeaderLen
	for {
		if len(data)-off == 0 {
			return off, true, nil
		}
		if len(data)-off < frameHedLen {
			return off, false, nil // torn frame header
		}
		payloadLen := int(binary.LittleEndian.Uint32(data[off:]))
		wantCRC := binary.LittleEndian.Uint32(data[off+4:])
		// payloadLen < 0 guards 32-bit platforms, where a corrupt u32
		// length ≥ 2³¹ wraps negative and would slice out of bounds.
		if payloadLen < 0 || payloadLen > maxRecordSize || len(data)-off-frameHedLen < payloadLen {
			return off, false, nil // oversized or torn payload
		}
		payload := data[off+frameHedLen : off+frameHedLen+payloadLen]
		if crc32.Checksum(payload, castTable) != wantCRC {
			return off, false, nil // bit rot or torn overwrite
		}
		muts, err := decodeBatch(payload)
		if err != nil {
			// A CRC-valid frame whose payload does not decode: treat like
			// any other invalid record and stop here.
			return off, false, nil
		}
		if err := fn(muts); err != nil {
			return off, false, fmt.Errorf("replaying record at offset %d: %w", off, err)
		}
		off += frameHedLen + payloadLen
	}
}
