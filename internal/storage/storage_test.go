package storage

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gyokit/internal/relation"
)

// listStoreFiles partitions the directory's contents: WAL segments,
// snapshot files (incremental manifests and legacy .ckpt checkpoints),
// and chunk-store generations.
func listStoreFiles(t *testing.T, dir string) (segs, snaps, chunks []string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		switch {
		case strings.HasSuffix(e.Name(), ".log"):
			segs = append(segs, e.Name())
		case strings.HasSuffix(e.Name(), ".ckpt"), strings.HasSuffix(e.Name(), ".mf"):
			snaps = append(snaps, e.Name())
		case strings.HasSuffix(e.Name(), ".gyo"):
			chunks = append(chunks, e.Name())
		}
	}
	return segs, snaps, chunks
}

// manyBatches returns a create batch plus n single-tuple insert batches.
func manyBatches(n int) [][]Mutation {
	out := [][]Mutation{{Create("a", "b")}}
	for i := 0; i < n; i++ {
		out = append(out, []Mutation{Insert(0, 2, []relation.Tuple{{relation.Value(i), relation.Value(i * 3)}})})
	}
	return out
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	batches := manyBatches(50)
	for _, b := range batches {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation to produce ≥ 3 segments, got %d", st.Segments)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !dbEqual(applyBatches(t, batches), s2.State()) {
		t.Error("multi-segment recovery differs from ground truth")
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	batches := manyBatches(40)
	for _, b := range batches {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	db := applyBatches(t, batches)
	before := s.Stats()
	if err := s.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.Segments != 1 {
		t.Errorf("segments after checkpoint = %d, want 1 (fresh tail)", after.Segments)
	}
	if after.WALBytes >= before.WALBytes {
		t.Errorf("WAL bytes did not shrink: %d → %d", before.WALBytes, after.WALBytes)
	}
	if after.Checkpoints != 1 || after.LastCheckpoint.IsZero() {
		t.Errorf("checkpoint counters = %+v", after)
	}
	segs, snaps, chunks := listStoreFiles(t, dir)
	if len(segs) != 1 || len(snaps) != 1 || len(chunks) != 1 {
		t.Errorf("files after checkpoint: segs %v, snaps %v, chunks %v", segs, snaps, chunks)
	}

	// More writes after the checkpoint land in the new tail.
	extra := []Mutation{Insert(0, 2, []relation.Tuple{{999, 999}})}
	if err := s.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	want, _, err := ApplyAll(db, extra)
	if err != nil {
		t.Fatal(err)
	}
	if !dbEqual(want, s2.State()) {
		t.Error("checkpoint + tail replay differs from ground truth")
	}
	if got := s2.Stats().Replayed; got != 1 {
		t.Errorf("replayed %d batches after checkpoint, want 1", got)
	}
}

func TestCorruptCheckpointFallsBackToWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	batches := manyBatches(10)
	for _, b := range batches {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash between the checkpoint rename and the segment
	// cleanup: keep a copy of the full WAL, checkpoint (which truncates
	// it), restore the copy, then corrupt the checkpoint. Recovery must
	// fall back to replaying the complete WAL from segment 1.
	seg1 := filepath.Join(dir, segName(1))
	seg1Bytes, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	db := applyBatches(t, batches)
	if err := s.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg1, seg1Bytes, 0o644); err != nil {
		t.Fatal(err)
	}
	_, snaps, _ := listStoreFiles(t, dir)
	if len(snaps) != 1 {
		t.Fatalf("expected one snapshot file, got %v", snaps)
	}
	path := filepath.Join(dir, snaps[0])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !dbEqual(db, s2.State()) {
		t.Error("fallback recovery from full WAL differs from ground truth")
	}
	// The corrupt manifest — and the chunk store nothing references any
	// more — must have been discarded.
	if _, snaps, chunks := listStoreFiles(t, dir); len(snaps) != 0 || len(chunks) != 0 {
		t.Errorf("corrupt snapshot not removed: snaps %v, chunks %v", snaps, chunks)
	}
}

func TestUnrecoverableWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	batches := manyBatches(5)
	for _, b := range batches {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(applyBatches(t, batches)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Destroy the only checkpoint manifest: segment 1 is gone (truncated
	// by the checkpoint), so acknowledged data is unrecoverable and Open
	// must say so rather than serve an empty database.
	_, snaps, _ := listStoreFiles(t, dir)
	if len(snaps) != 1 {
		t.Fatalf("expected one snapshot file, got %v", snaps)
	}
	if err := os.Remove(filepath.Join(dir, snaps[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{NoSync: true}); err == nil {
		t.Fatal("Open succeeded with missing checkpoint and truncated WAL")
	}
}

// TestCorruptHeaderWithBodyIsAnError: a bad segment magic with a
// non-empty record body is provable corruption (the header lands
// before any record), never a torn create — recovery must refuse
// rather than silently truncate the acknowledged batches away.
func TestCorruptHeaderWithBodyIsAnError(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range manyBatches(3) {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segName(1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{NoSync: true}); err == nil {
		t.Fatal("Open accepted a corrupt segment header over a non-empty body")
	}
	// A header-only (or shorter) file with a bad magic is the torn
	// create case and recovers to the empty prefix.
	if err := os.WriteFile(path, raw[:walHeaderLen], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("torn header-only segment did not recover: %v", err)
	}
	s2.Close()
}

// TestSecondOpenFails: one process per directory — a concurrent Open
// must fail fast instead of truncating the live writer's tail.
func TestSecondOpenFails(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{NoSync: true}); err == nil {
		t.Fatal("second Open of a live store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	s2.Close()
}

func TestAppendAfterCloseFails(t *testing.T) {
	s, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]Mutation{Create("a")}); err == nil {
		t.Fatal("append after Close succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close not idempotent:", err)
	}
}

// TestZeroWidthRelation: the paper's empty relation schema ∅ round-trips
// through create, empty-tuple insert/delete, the WAL, and a checkpoint.
func TestZeroWidthRelation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]Mutation{
		{Create("a", "b"), Create()}, // ∅ relation at index 1
		{{Kind: KindInsert, Rel: 1, Width: 0}},
		{Insert(0, 2, []relation.Tuple{{1, 2}})},
	}
	for _, b := range batches {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	want := applyBatches(t, batches)
	if got := want.Rels[1].Card(); got != 1 {
		t.Fatalf("empty-tuple insert: card %d, want 1", got)
	}
	if err := s.Checkpoint(want); err != nil {
		t.Fatal(err)
	}
	del := []Mutation{{Kind: KindDelete, Rel: 1, Width: 0}}
	if err := s.Append(del); err != nil {
		t.Fatal(err)
	}
	if want, _, err = ApplyAll(want, del); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !dbEqual(want, s2.State()) || s2.State().Rels[1].Card() != 0 {
		t.Error("zero-width relation did not survive checkpoint + replay")
	}
}

// TestAppendRejectsUnencodable: what Append acknowledges must decode on
// replay, so codec caps are enforced up front.
func TestAppendRejectsUnencodable(t *testing.T) {
	s, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	long := strings.Repeat("x", maxNameLen+1)
	if err := s.Append([]Mutation{Create("a", long)}); err == nil {
		t.Error("over-long attribute name accepted")
	}
	if err := s.Append([]Mutation{Insert(maxRelations+1, 1, []relation.Tuple{{1}})}); err == nil {
		t.Error("over-cap relation index accepted")
	}
	if err := s.Append([]Mutation{{Kind: KindInsert, Rel: 0, Width: 3, Values: make([]relation.Value, 7)}}); err == nil {
		t.Error("ragged batch (values not a multiple of width) accepted")
	}
	if err := s.Append([]Mutation{{Kind: KindInsert, Rel: 0, Width: 0, Values: make([]relation.Value, 2)}}); err == nil {
		t.Error("zero-width batch with values accepted")
	}
	if st := s.Stats(); st.Appends != 0 {
		t.Errorf("rejected batches counted as appends: %d", st.Appends)
	}
	// The store must still be usable after rejections.
	if err := s.Append([]Mutation{Create("a")}); err != nil {
		t.Fatal(err)
	}
}

func TestShouldCheckpoint(t *testing.T) {
	s, err := Open(t.TempDir(), Options{NoSync: true, CheckpointBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.ShouldCheckpoint() {
		t.Error("fresh store wants a checkpoint")
	}
	for _, b := range manyBatches(10) {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if !s.ShouldCheckpoint() {
		t.Error("store past the threshold does not want a checkpoint")
	}
	disabled, err := Open(t.TempDir(), Options{NoSync: true, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer disabled.Close()
	for _, b := range manyBatches(10) {
		if err := disabled.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if disabled.ShouldCheckpoint() {
		t.Error("disabled threshold still suggests checkpoints")
	}
}
