package storage

// Tests for the incremental checkpoint format: chunk dedup across
// checkpoints and restarts, compaction, crash recovery with torn
// manifests and torn chunk stores (mirroring TestWALTornTail), legacy
// full-checkpoint compatibility, checkpoint-error hygiene, and the
// O(batch)-vs-O(card) I/O bound the format exists for.

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"gyokit/internal/relation"
)

// raceEnabled is set by race_test.go under `go test -race`; the torn
// chunk-store sweep strides its (byte-granular) offsets then, since
// every iteration is a full recovery.
var raceEnabled bool

// insertN returns one insert batch of n distinct width-2 rows starting
// at value base.
func insertN(rel, base, n int) []Mutation {
	vals := make([]relation.Value, 0, 2*n)
	for i := 0; i < n; i++ {
		v := relation.Value(base + i)
		vals = append(vals, v, v+1<<24)
	}
	return []Mutation{{Kind: KindInsert, Rel: rel, Width: 2, Values: vals}}
}

// deleteN deletes the rows insertN(rel, base, n) inserted.
func deleteN(rel, base, n int) []Mutation {
	vals := make([]relation.Value, 0, 2*n)
	for i := 0; i < n; i++ {
		v := relation.Value(base + i)
		vals = append(vals, v, v+1<<24)
	}
	return []Mutation{{Kind: KindDelete, Rel: rel, Width: 2, Values: vals}}
}

// insertN1 is insertN for a width-1 relation (smallest chunk records,
// which keeps byte-granular torn-file sweeps affordable).
func insertN1(rel, base, n int) []Mutation {
	vals := make([]relation.Value, 0, n)
	for i := 0; i < n; i++ {
		vals = append(vals, relation.Value(base+i))
	}
	return []Mutation{{Kind: KindInsert, Rel: rel, Width: 1, Values: vals}}
}

// stepper returns a helper that applies a batch copy-on-write to the
// store's lineage database and appends it to the WAL — the same
// discipline as the engine, which is what makes chunk ids stable
// across checkpoints.
func stepper(t testing.TB, s *Store, db **relation.Database) func(muts ...Mutation) {
	return func(muts ...Mutation) {
		t.Helper()
		nd, _, err := ApplyAll(*db, muts)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Append(muts); err != nil {
			t.Fatal(err)
		}
		*db = nd
	}
}

// dirFiles reads every regular file in dir into memory.
func dirFiles(t testing.TB, dir string) map[string][]byte {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := map[string][]byte{}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = data
	}
	return files
}

// writeDir materializes files into a fresh temp directory.
func writeDir(t testing.TB, files map[string][]byte) string {
	t.Helper()
	dir := t.TempDir()
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func cloneFiles(files map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(files))
	for k, v := range files {
		out[k] = v
	}
	return out
}

// TestIncrementalCheckpointRoundTrip is the core dedup property: a
// second checkpoint rewrites only chunks that filled since the first,
// recovery restores persisted chunk ids, and a post-restart checkpoint
// therefore writes no chunk at all when only the tail changed.
func TestIncrementalCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	db := s.State()
	step := stepper(t, s, &db)
	step(Create("a", "b"))
	step(insertN(0, 0, relation.ChunkRows+1000)...) // 1 full chunk + 1000-row tail
	if err := s.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	st1 := s.Stats()
	if st1.ChunksWritten != 1 || st1.ChunksReused != 0 {
		t.Fatalf("first checkpoint wrote %d / reused %d chunks, want 1 / 0", st1.ChunksWritten, st1.ChunksReused)
	}

	step(insertN(0, 10*relation.ChunkRows, relation.ChunkRows)...) // fills chunk 2
	if err := s.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	st2 := s.Stats()
	if st2.ChunksWritten != 2 || st2.ChunksReused != 1 {
		t.Errorf("second checkpoint totals: wrote %d / reused %d, want 2 / 1", st2.ChunksWritten, st2.ChunksReused)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().Replayed; got != 0 {
		t.Errorf("replayed %d batches after checkpoint, want 0", got)
	}
	if !dbEqual(db, s2.State()) {
		t.Fatal("recovered state differs from checkpointed lineage")
	}

	// Chunk ids survived the restart: a tail-only change checkpoints
	// with zero chunk writes and full reuse.
	db2 := s2.State()
	step2 := stepper(t, s2, &db2)
	step2(insertN(0, 20*relation.ChunkRows, 10)...)
	if err := s2.Checkpoint(db2); err != nil {
		t.Fatal(err)
	}
	st3 := s2.Stats()
	if st3.ChunksWritten != 0 || st3.ChunksReused != 2 {
		t.Errorf("post-restart checkpoint wrote %d / reused %d chunks, want 0 / 2", st3.ChunksWritten, st3.ChunksReused)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if !dbEqual(db2, s3.State()) {
		t.Error("state after restart + incremental checkpoint differs")
	}
}

// TestManifestUniversalRelation routes a database with a materialized
// universal relation (larger than one chunk) through the manifest
// format and back.
func TestManifestUniversalRelation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	db := testDB(t, "ab, bc, cd", 5000, 64, 3)
	if db.Univ == nil || db.Univ.Card() <= relation.ChunkRows {
		t.Fatalf("test universal relation too small (%v) to exercise chunk refs", db.Univ)
	}
	if err := s.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.State()
	if !dbEqual(db, got) {
		t.Fatal("recovered relations differ")
	}
	if got.Univ == nil || got.Univ.Card() != db.Univ.Card() {
		t.Fatalf("recovered universal relation = %v, want card %d", got.Univ, db.Univ.Card())
	}
	for j := 0; j < db.Univ.Card(); j++ {
		if !got.Univ.Has(db.Univ.TupleAt(j)) {
			t.Fatalf("recovered universal relation lost tuple %d", j)
		}
	}
}

// TestChunkStoreCompaction: once deletes have orphaned most of the
// chunk store, a checkpoint rewrites just the live chunks into a fresh
// generation and deletes the old file.
func TestChunkStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true, CompactBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	db := s.State()
	step := stepper(t, s, &db)
	step(Create("a", "b"))
	step(insertN(0, 0, 3*relation.ChunkRows)...)
	if err := s.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	st1 := s.Stats()
	if st1.ChunksWritten != 3 || st1.Compactions != 0 {
		t.Fatalf("seed checkpoint: wrote %d chunks, %d compactions", st1.ChunksWritten, st1.Compactions)
	}

	// Delete two chunks' worth from the front: the arena repacks into
	// one fresh-id chunk and every on-disk chunk becomes garbage.
	step(deleteN(0, 0, 2*relation.ChunkRows)...)
	if err := s.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	st2 := s.Stats()
	if st2.Compactions != 1 {
		t.Errorf("compactions = %d, want 1", st2.Compactions)
	}
	wantSize := int64(chunkStoreHeaderLen + chunkRecHeaderLen + relation.ChunkRows*2*relation.ValueBytes)
	if st2.ChunkStoreBytes != wantSize {
		t.Errorf("chunk store = %d bytes after compaction, want %d", st2.ChunkStoreBytes, wantSize)
	}
	_, _, chunks := listStoreFiles(t, dir)
	if len(chunks) != 1 || chunks[0] != chunkStoreName(2) {
		t.Errorf("chunk files after compaction = %v, want only generation 2", chunks)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !dbEqual(db, s2.State()) {
		t.Error("recovered state differs after compaction")
	}
	// The compacted generation's chunk is reusable after restart.
	db2 := s2.State()
	step2 := stepper(t, s2, &db2)
	step2(insertN(0, 100*relation.ChunkRows, 5)...)
	if err := s2.Checkpoint(db2); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.ChunksWritten != 0 || st.ChunksReused != 1 {
		t.Errorf("post-compaction checkpoint wrote %d / reused %d, want 0 / 1", st.ChunksWritten, st.ChunksReused)
	}
}

// TestTornManifest truncates the newest manifest at every byte offset,
// composing the directory a crash mid-checkpoint-publish would leave:
// the previous manifest, the WAL tail covering the delta, and the
// (unchanged) chunk store. Recovery must always land on the exact
// acknowledged state — via the new manifest when it is whole, via
// previous-manifest + WAL replay otherwise — and never an error or an
// empty store.
func TestTornManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	db := s.State()
	step := stepper(t, s, &db)
	step(Create("a", "b"))
	step(insertN(0, 0, relation.ChunkRows+8)...)
	if err := s.Checkpoint(db); err != nil { // C1: manifest-2 + chunk store
		t.Fatal(err)
	}
	chunkPath := filepath.Join(dir, chunkStoreName(1))
	preChunk, err := os.Stat(chunkPath)
	if err != nil {
		t.Fatal(err)
	}

	step(insertN(0, relation.ChunkRows+8, 16)...) // tail-only delta, one WAL batch
	preFiles := dirFiles(t, dir)                  // crash-state parts: manifest-2, wal-2, chunks-1
	if err := s.Checkpoint(db); err != nil {      // C2: manifest-3, no new chunks
		t.Fatal(err)
	}
	postChunk, err := os.Stat(chunkPath)
	if err != nil {
		t.Fatal(err)
	}
	if postChunk.Size() != preChunk.Size() {
		t.Fatalf("tail-only checkpoint grew the chunk store %d → %d bytes", preChunk.Size(), postChunk.Size())
	}
	man3Name := manName(3)
	man3, err := os.ReadFile(filepath.Join(dir, man3Name))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	for m := 0; m <= len(man3); m++ {
		files := cloneFiles(preFiles)
		files[man3Name] = man3[:m]
		cut := writeDir(t, files)
		rec, err := Open(cut, Options{NoSync: true})
		if err != nil {
			t.Fatalf("manifest cut at %d: recovery failed: %v", m, err)
		}
		wantReplay := uint64(1) // fallback: previous manifest + the delta batch
		if m == len(man3) {
			wantReplay = 0 // whole manifest wins
		}
		if got := rec.Stats().Replayed; got != wantReplay {
			t.Fatalf("manifest cut at %d: replayed %d, want %d", m, got, wantReplay)
		}
		if !dbEqual(db, rec.State()) {
			t.Fatalf("manifest cut at %d: recovered state differs", m)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		if m == len(man3) {
			// The whole-manifest case must also have tidied the leftovers
			// of the interrupted cleanup: old manifest and covered WAL.
			segs, snaps, chunks := listStoreFiles(t, cut)
			if len(segs) != 1 || len(snaps) != 1 || snaps[0] != man3Name || len(chunks) != 1 {
				t.Fatalf("post-recovery files = %v %v %v", segs, snaps, chunks)
			}
		}
	}
}

// TestTornChunkStore truncates the chunk store at every byte offset of
// the region a checkpoint appended (and, coarsely, flips bytes in it),
// with and without the manifest that references it. Whenever the new
// manifest cannot be fully verified against the store, recovery must
// fall back to the previous manifest + WAL replay and reproduce the
// acknowledged state exactly.
func TestTornChunkStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	// Width-1 relation: the smallest possible chunk record (16 KiB
	// payload) keeps the byte-granular sweep affordable. C1's manifest
	// references no chunks at all (card < ChunkRows), so the fallback
	// path per iteration is cheap.
	db := s.State()
	step := stepper(t, s, &db)
	step(Create("a"))
	step(insertN1(0, 0, 10)...)
	if err := s.Checkpoint(db); err != nil { // C1: manifest-2, empty chunk store
		t.Fatal(err)
	}
	step(insertN1(0, 10, relation.ChunkRows)...) // fills chunk 1; one WAL batch
	preFiles := dirFiles(t, dir)
	if err := s.Checkpoint(db); err != nil { // C2: appends one chunk record + manifest-3
		t.Fatal(err)
	}
	chunkName := chunkStoreName(1)
	postChunk, err := os.ReadFile(filepath.Join(dir, chunkName))
	if err != nil {
		t.Fatal(err)
	}
	man3Name := manName(3)
	man3, err := os.ReadFile(filepath.Join(dir, man3Name))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	pre := len(preFiles[chunkName])
	post := len(postChunk)
	if pre != chunkStoreHeaderLen || post != pre+chunkRecHeaderLen+relation.ChunkRows*relation.ValueBytes {
		t.Fatalf("unexpected chunk store sizes: pre %d, post %d", pre, post)
	}

	check := func(files map[string][]byte, wantReplay uint64, desc string) {
		t.Helper()
		cut := writeDir(t, files)
		rec, err := Open(cut, Options{NoSync: true})
		if err != nil {
			t.Fatalf("%s: recovery failed: %v", desc, err)
		}
		if got := rec.Stats().Replayed; got != wantReplay {
			t.Fatalf("%s: replayed %d, want %d", desc, got, wantReplay)
		}
		if !dbEqual(db, rec.State()) {
			t.Fatalf("%s: recovered state differs", desc)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Manifest present and whole, chunk record torn at every byte: the
	// manifest's reference can't be verified, so the previous manifest +
	// WAL replay must win — at every single offset. The sweep reuses one
	// directory, rewriting only the two files it varies: fallback
	// recovery leaves the other files exactly as they were (it deletes
	// the invalid manifest, which the next iteration rewrites anyway).
	stride := 1
	if raceEnabled {
		stride = 7 // every recovery is far slower under the race detector
	}
	sweep := writeDir(t, preFiles)
	for n := pre; n < post; n += stride {
		if err := os.WriteFile(filepath.Join(sweep, chunkName), postChunk[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sweep, man3Name), man3, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Open(sweep, Options{NoSync: true})
		if err != nil {
			t.Fatalf("chunk cut at %d: recovery failed: %v", n, err)
		}
		if got := rec.Stats().Replayed; got != 1 {
			t.Fatalf("chunk cut at %d: replayed %d, want 1", n, got)
		}
		if !dbEqual(db, rec.State()) {
			t.Fatalf("chunk cut at %d: recovered state differs", n)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Complete chunk record + complete manifest: the incremental
	// checkpoint is live, nothing replays.
	{
		files := cloneFiles(preFiles)
		files[chunkName] = postChunk
		files[man3Name] = man3
		check(files, 0, "complete checkpoint")
	}
	// Crash before the manifest rename: torn chunk tail with no
	// manifest referencing it is simply ignored (sampled offsets — the
	// torn region is never read).
	for _, n := range []int{pre, pre + 1, pre + chunkRecHeaderLen, (pre + post) / 2, post - 1, post} {
		files := cloneFiles(preFiles)
		files[chunkName] = postChunk[:n]
		check(files, 1, "unreferenced chunk tail at "+strconv.Itoa(n))
	}
	// Bit rot instead of tearing: flip one byte in the record header
	// (id, length, CRC fields) and payload — the per-record validation
	// must reject it and recovery must fall back.
	for _, p := range []int{pre, pre + 7, pre + 8, pre + 12, pre + chunkRecHeaderLen, (pre + post) / 2, post - 1} {
		flipped := append([]byte(nil), postChunk...)
		flipped[p] ^= 0x40
		files := cloneFiles(preFiles)
		files[chunkName] = flipped
		files[man3Name] = man3
		check(files, 1, "chunk byte flipped at "+strconv.Itoa(p))
	}
}

// TestLegacyCheckpointFixture: a pre-manifest store directory (full
// checkpoint file committed under testdata/) still opens, decodes to
// the exact database, re-encodes byte-identically, and upgrades to the
// manifest format on its next checkpoint.
//
// Regenerate the fixture with GYOKIT_REWRITE_FIXTURES=1 (only needed
// if the legacy codec itself legitimately changes, which it should
// not: it is a compatibility surface).
func TestLegacyCheckpointFixture(t *testing.T) {
	fixture := filepath.Join("testdata", ckptName(1))
	want := testDB(t, "ab, bc, cd", 64, 16, 42)
	if os.Getenv("GYOKIT_REWRITE_FIXTURES") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := writeCheckpointFile(fixture, 1, appendDatabase(nil, want), true); err != nil {
			t.Fatal(err)
		}
		t.Skip("fixture rewritten")
	}
	raw, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ckptName(1)), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("opening legacy store: %v", err)
	}
	if got := s.Stats().Replayed; got != 0 {
		t.Errorf("replayed %d batches from a checkpoint-only directory", got)
	}
	if !dbEqual(want, s.State()) {
		t.Fatal("legacy checkpoint decoded to a different database")
	}
	if reenc := appendDatabase(nil, s.State()); !bytes.Equal(reenc, raw[20:]) {
		t.Fatal("legacy checkpoint did not load byte-identically (re-encode differs)")
	}

	// The next checkpoint upgrades the directory in place: manifest +
	// chunk store replace the legacy file.
	db := s.State()
	step := stepper(t, s, &db)
	step(Create("x", "y"))
	if err := s.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	_, snaps, chunks := listStoreFiles(t, dir)
	if len(snaps) != 1 || !strings.HasSuffix(snaps[0], ".mf") || len(chunks) != 1 {
		t.Fatalf("files after upgrade checkpoint: snaps %v, chunks %v", snaps, chunks)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !dbEqual(db, s2.State()) {
		t.Error("state differs after legacy → manifest upgrade")
	}
}

// TestCheckpointFailureRecordedAndCleared: a failed checkpoint lands in
// Stats.LastCheckpointErr, leaves the store fully recoverable, and the
// next successful checkpoint clears the field.
func TestCheckpointFailureRecordedAndCleared(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	db := s.State()
	step := stepper(t, s, &db)
	step(Create("a", "b"))
	step(insertN(0, 0, 100)...)

	// A directory squatting on the chunk-store path makes the first
	// checkpoint fail deterministically.
	obstacle := filepath.Join(dir, chunkStoreName(1))
	if err := os.Mkdir(obstacle, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(db); err == nil {
		t.Fatal("checkpoint succeeded despite blocked chunk store")
	}
	st := s.Stats()
	if st.LastCheckpointErr == "" {
		t.Error("failed checkpoint not recorded in LastCheckpointErr")
	}
	if st.Checkpoints != 0 {
		t.Errorf("failed checkpoint counted: %d", st.Checkpoints)
	}

	if err := os.Remove(obstacle); err != nil {
		t.Fatal(err)
	}
	step(insertN(0, 1000, 10)...)
	if err := s.Checkpoint(db); err != nil {
		t.Fatalf("checkpoint after clearing obstacle: %v", err)
	}
	st = s.Stats()
	if st.LastCheckpointErr != "" {
		t.Errorf("successful checkpoint did not clear LastCheckpointErr: %q", st.LastCheckpointErr)
	}
	if st.Checkpoints != 1 {
		t.Errorf("checkpoints = %d, want 1", st.Checkpoints)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !dbEqual(db, s2.State()) {
		t.Error("recovered state differs after failed-then-successful checkpoint")
	}
}

// millionRowSeed appends a 2^20-row width-2 relation through the store
// and returns the lineage database, un-checkpointed.
func millionRowSeed(t testing.TB, s *Store) *relation.Database {
	t.Helper()
	db := s.State()
	step := stepper(t, s, &db)
	step(Create("a", "b"))
	step(insertN(0, 0, 1<<20)...)
	return db
}

// TestCheckpointIORatio pins the acceptance bound: checkpointing a
// 128-tuple batch into a 2^20-row relation must write at least 50×
// fewer bytes than a full snapshot rewrite (in practice ~2000×: a
// manifest of chunk references plus the 128-row tail).
func TestCheckpointIORatio(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 2^20-row relation")
	}
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	db := millionRowSeed(t, s)
	if err := s.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	st1 := s.Stats()
	fullBytes := int64(len(appendDatabase(nil, db)) + 20)

	step := stepper(t, s, &db)
	step(insertN(0, 1<<20, 128)...)
	if err := s.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	st2 := s.Stats()
	incBytes := int64(st2.CheckpointBytes - st1.CheckpointBytes)
	if incBytes <= 0 || incBytes*50 > fullBytes {
		t.Errorf("incremental checkpoint wrote %d bytes; full snapshot is %d (ratio %.0f×, want ≥ 50×)",
			incBytes, fullBytes, float64(fullBytes)/float64(incBytes))
	}
	// 2^20 is chunk-aligned and the 128 new rows are all tail: the
	// incremental checkpoint rewrites no chunk at all.
	if w := st2.ChunksWritten - st1.ChunksWritten; w != 0 {
		t.Errorf("tail-only checkpoint wrote %d chunks", w)
	}
	if r := st2.ChunksReused - st1.ChunksReused; r != 1<<20/relation.ChunkRows {
		t.Errorf("reused %d chunks, want %d", r, 1<<20/relation.ChunkRows)
	}
}

// BenchmarkCheckpointIncremental: steady-state incremental checkpoint
// of a 128-tuple batch landing in a 2^20-row relation. The ckptB/op
// metric is the actual checkpoint I/O per operation — compare with
// BenchmarkCheckpointFull, which rewrites the whole snapshot the way
// checkpoints did before the chunk store existed.
func BenchmarkCheckpointIncremental(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	db := millionRowSeed(b, s)
	if err := s.Checkpoint(db); err != nil {
		b.Fatal(err)
	}
	base := s.Stats().CheckpointBytes
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := insertN(0, 1<<20+i*128, 128)
		nd, _, err := ApplyAll(db, batch)
		if err != nil {
			b.Fatal(err)
		}
		db = nd
		if err := s.Append(batch); err != nil {
			b.Fatal(err)
		}
		if err := s.Checkpoint(db); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Stats().CheckpointBytes-base)/float64(b.N), "ckptB/op")
}

// BenchmarkCheckpointFull is the pre-incremental baseline: serialize
// and rewrite the entire database per checkpoint, O(card) I/O.
func BenchmarkCheckpointFull(b *testing.B) {
	batches := [][]Mutation{{Create("a", "b")}, insertN(0, 0, 1<<20)}
	db := applyBatches(b, batches)
	path := filepath.Join(b.TempDir(), ckptName(2))
	var total int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := insertN(0, 1<<20+i*128, 128)
		nd, _, err := ApplyAll(db, batch)
		if err != nil {
			b.Fatal(err)
		}
		db = nd
		payload := appendDatabase(nil, db)
		if err := writeCheckpointFile(path, 2, payload, false); err != nil {
			b.Fatal(err)
		}
		total += int64(len(payload)) + 20
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/float64(b.N), "ckptB/op")
}
