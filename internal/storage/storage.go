// Package storage is the durability subsystem: a write-ahead log of
// logical mutation records plus checkpointed snapshots of the columnar
// database representation, giving the serving engine crash recovery
// with an acknowledged-writes-are-durable contract.
//
// A store directory holds numbered WAL segments (wal-<seq>.log) and at
// most one live checkpoint (checkpoint-<seq>.ckpt). The checkpoint
// with sequence number S is a full database snapshot covering exactly
// the mutations recorded in segments < S, so recovery is: load the
// newest valid checkpoint, replay every segment ≥ S in order, tolerate
// a torn final record (the in-flight write of a crash), and resume
// appending at the recovered tail. Checkpoints are written atomically
// (temp file + rename) in the background off a frozen snapshot, then
// obsolete segments are truncated away — readers and writers never
// block on checkpointing.
//
// The write path is Append: one framed, CRC-checked record per
// mutation batch, fsynced before it returns (unless Options.NoSync),
// so a batch acknowledged to a client is on disk, and a batch is
// recovered either whole or not at all.
package storage

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

// Default tuning knobs.
const (
	DefaultSegmentBytes    = 4 << 20  // WAL segment rotation threshold
	DefaultCheckpointBytes = 16 << 20 // live-WAL size that suggests a checkpoint
)

// Options configures a Store.
type Options struct {
	// SegmentBytes rotates the WAL to a fresh segment once the current
	// one exceeds this size. Zero means DefaultSegmentBytes.
	SegmentBytes int64
	// CheckpointBytes is the live-WAL size past which ShouldCheckpoint
	// reports true. Zero means DefaultCheckpointBytes; negative
	// disables the suggestion (checkpoints still work when requested).
	CheckpointBytes int64
	// NoSync skips fsync on append and rotation. Crash durability is
	// lost (a power failure may drop acknowledged writes); useful for
	// tests and benchmarks where the page cache is good enough.
	NoSync bool
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	return o.SegmentBytes
}

func (o Options) checkpointBytes() int64 {
	if o.CheckpointBytes == 0 {
		return DefaultCheckpointBytes
	}
	return o.CheckpointBytes
}

// Stats is a point-in-time snapshot of durability counters.
type Stats struct {
	WALBytes          int64     // bytes across live segments (headers included)
	Segments          int       // live segment files
	Appends           uint64    // batches appended since open
	Replayed          uint64    // batches replayed during recovery
	Checkpoints       uint64    // checkpoints written since open
	LastCheckpoint    time.Time // zero if never (this process)
	LastCheckpointErr string    // last background checkpoint failure, if any
}

// Store is an open storage directory. It is safe for concurrent use;
// Append calls are serialized internally (the engine's writer lock
// already serializes logical mutations, the store's own lock makes it
// safe regardless).
type Store struct {
	dir string
	opt Options

	mu       sync.Mutex
	seg      *os.File // current segment, positioned at its end
	segSeq   uint64
	segSizes map[uint64]int64 // live segment → size in bytes
	walBytes int64
	closed   bool
	failed   error    // set when a write error left the WAL unappendable
	lockf    *os.File // exclusive directory lock (nil on non-unix)

	appends     uint64
	replayed    uint64
	checkpoints uint64
	lastCkpt    time.Time
	lastCkptErr string

	db    *relation.Database // recovered state; nil after Detach
	empty bool               // no checkpoint and no WAL records found
}

func segName(seq uint64) string  { return fmt.Sprintf("wal-%016d.log", seq) }
func ckptName(seq uint64) string { return fmt.Sprintf("checkpoint-%016d.ckpt", seq) }

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if len(name) != len(prefix)+16+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	var seq uint64
	for _, c := range name[len(prefix) : len(prefix)+16] {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}

// Open opens (creating if needed) the store directory and recovers its
// state: newest valid checkpoint, then WAL replay of every later
// segment, tolerating a torn final record. The recovered database is
// available via State until Detach; a fresh directory recovers to an
// empty database over a fresh universe.
func Open(dir string, opt Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// One process per directory: a concurrent Open must fail fast, not
	// truncate the tail segment out from under a live writer.
	lockf, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	opened := false
	defer func() {
		if !opened && lockf != nil {
			lockf.Close()
		}
	}()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segSeqs, ckptSeqs []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			segSeqs = append(segSeqs, seq)
		}
		if seq, ok := parseSeq(e.Name(), "checkpoint-", ".ckpt"); ok {
			ckptSeqs = append(ckptSeqs, seq)
		}
	}
	sort.Slice(segSeqs, func(i, j int) bool { return segSeqs[i] < segSeqs[j] })
	sort.Slice(ckptSeqs, func(i, j int) bool { return ckptSeqs[i] > ckptSeqs[j] }) // newest first

	s := &Store{dir: dir, opt: opt, segSizes: map[uint64]int64{}}

	// 1. Newest valid checkpoint.
	var db *relation.Database
	startSeq := uint64(1)
	ckptLoaded := false
	var chosenCkpt uint64
	for _, seq := range ckptSeqs {
		loaded, err := readCheckpoint(filepath.Join(dir, ckptName(seq)), seq)
		if err != nil {
			continue // corrupt or unreadable: try an older one
		}
		db, startSeq, ckptLoaded, chosenCkpt = loaded, seq, true, seq
		break
	}
	if !ckptLoaded {
		// Without a checkpoint the WAL must reach back to genesis:
		// segment 1 (or no segments at all). A history that starts later
		// — or corrupt checkpoints with no replayable prefix — means
		// acknowledged data is unrecoverable, which must be an error,
		// never a silently empty store.
		if len(segSeqs) > 0 && segSeqs[0] != 1 {
			return nil, fmt.Errorf("%w: no valid checkpoint and WAL starts at segment %d", ErrCorrupt, segSeqs[0])
		}
		if len(segSeqs) == 0 && len(ckptSeqs) > 0 {
			return nil, fmt.Errorf("%w: checkpoint files present but none valid and no WAL to replay", ErrCorrupt)
		}
		db = &relation.Database{D: schema.New(schema.NewUniverse())}
	}

	// 2. Replay segments ≥ startSeq in order.
	var replaySeqs []uint64
	for _, seq := range segSeqs {
		if seq >= startSeq {
			replaySeqs = append(replaySeqs, seq)
		}
	}
	for i, seq := range replaySeqs {
		if want := startSeq + uint64(i); seq != want {
			return nil, fmt.Errorf("%w: WAL segment %d missing (found %d)", ErrCorrupt, want, seq)
		}
	}
	lastValidLen := int64(0)
	for i, seq := range replaySeqs {
		data, err := os.ReadFile(filepath.Join(dir, segName(seq)))
		if err != nil {
			return nil, err
		}
		validLen, clean, err := replaySegment(data, func(muts []Mutation) error {
			for _, m := range muts {
				var aerr error
				if db, _, aerr = m.apply(db, true); aerr != nil {
					return aerr
				}
			}
			s.replayed++
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("%w: segment %d: %v", ErrCorrupt, seq, err)
		}
		last := i == len(replaySeqs)-1
		if !clean && !last {
			return nil, fmt.Errorf("%w: segment %d has an invalid record at offset %d but is not the newest segment", ErrCorrupt, seq, validLen)
		}
		// A bad magic header (validLen 0) on a segment that has a
		// non-empty body is provable corruption, not a torn create: the
		// header always lands before any record does. Truncating would
		// silently drop every acknowledged batch in the body.
		if !clean && validLen == 0 && len(data) > walHeaderLen {
			return nil, fmt.Errorf("%w: segment %d has a corrupt header but %d bytes of records", ErrCorrupt, seq, len(data)-walHeaderLen)
		}
		if last {
			lastValidLen = int64(validLen)
		}
	}

	// 3. Resume the tail segment for appending (discarding any torn
	// final record), or create the first segment.
	if len(replaySeqs) > 0 {
		s.segSeq = replaySeqs[len(replaySeqs)-1]
		path := filepath.Join(dir, segName(s.segSeq))
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		if lastValidLen < walHeaderLen {
			lastValidLen = 0
		}
		if err := f.Truncate(lastValidLen); err != nil {
			f.Close()
			return nil, err
		}
		if lastValidLen == 0 {
			if _, err := f.Write(walMagic); err != nil {
				f.Close()
				return nil, err
			}
			lastValidLen = walHeaderLen
		}
		if _, err := f.Seek(lastValidLen, 0); err != nil {
			f.Close()
			return nil, err
		}
		if !opt.NoSync {
			if err := f.Sync(); err != nil { // persist the tail truncation
				f.Close()
				return nil, err
			}
		}
		s.seg = f
		s.segSizes[s.segSeq] = lastValidLen
		for _, seq := range replaySeqs[:len(replaySeqs)-1] {
			fi, err := os.Stat(filepath.Join(dir, segName(seq)))
			if err != nil {
				return nil, err
			}
			s.segSizes[seq] = fi.Size()
		}
	} else {
		s.segSeq = startSeq
		if err := s.createSegment(); err != nil {
			return nil, err
		}
	}
	s.walBytes = 0
	for _, sz := range s.segSizes {
		s.walBytes += sz
	}

	// 4. Tidy up: segments older than the checkpoint and checkpoint
	// files other than the chosen one are dead weight (a crash between
	// checkpointing and cleanup leaves them behind).
	for _, seq := range segSeqs {
		if seq < startSeq {
			os.Remove(filepath.Join(dir, segName(seq)))
		}
	}
	for _, seq := range ckptSeqs {
		if !ckptLoaded || seq != chosenCkpt {
			os.Remove(filepath.Join(dir, ckptName(seq)))
		}
	}
	// Orphaned checkpoint temp files (crash between write and rename)
	// can be snapshot-sized; don't let them accumulate.
	for _, e := range entries {
		if _, ok := parseSeq(e.Name(), "checkpoint-", ".ckpt.tmp"); ok {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}

	s.db = db
	s.empty = !ckptLoaded && s.replayed == 0
	s.lockf = lockf
	opened = true
	return s, nil
}

// State returns the recovered database (empty schema and universe for
// a fresh store). The caller takes ownership — typically by installing
// it as the engine's first snapshot.
func (s *Store) State() *relation.Database { return s.db }

// Empty reports whether the directory held no durable state at Open
// (no checkpoint, no WAL records): the caller may want to seed an
// initial database through the mutation path.
func (s *Store) Empty() bool { return s.empty }

// Detach drops the store's reference to the recovered database so a
// long-lived process does not pin the boot-time snapshot.
func (s *Store) Detach() { s.db = nil }

// Append durably logs one mutation batch: a single framed record,
// fsynced before return (unless NoSync). The caller is responsible for
// having validated/applied the batch against the current state; the
// store records it verbatim.
func (s *Store) Append(muts []Mutation) error {
	if len(muts) == 0 {
		return nil
	}
	// Everything acknowledged must decode on replay: enforce the
	// codec's caps before anything reaches the file, so recovery can
	// treat an undecodable record as corruption/tearing, never as a
	// dropped acknowledged batch.
	if len(muts) > maxBatchMuts {
		return fmt.Errorf("storage: batch of %d mutations exceeds codec cap %d", len(muts), maxBatchMuts)
	}
	for i, m := range muts {
		if err := m.encodable(); err != nil {
			return fmt.Errorf("mutation %d: %w", i, err)
		}
	}
	// Encode the batch directly after a placeholder frame header, then
	// patch length and CRC in place — one buffer, no second copy of a
	// potentially large bulk-load payload.
	frame := appendBatch(make([]byte, frameHedLen, frameHedLen+64), muts)
	payload := frame[frameHedLen:]
	if len(payload) > maxRecordSize {
		return fmt.Errorf("storage: record of %d bytes exceeds cap %d", len(payload), maxRecordSize)
	}
	putU32(frame[0:], uint32(len(payload)))
	putU32(frame[4:], crcOf(payload))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("storage: append on closed store")
	}
	if s.failed != nil {
		return fmt.Errorf("storage: store failed: %w", s.failed)
	}
	if s.segSizes[s.segSeq] > walHeaderLen && s.segSizes[s.segSeq] >= s.opt.segmentBytes() {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := s.seg.Write(frame); err != nil {
		// The segment may now hold a partial frame. Roll the file back
		// to the last good offset so future appends don't land behind
		// garbage that replay would (rightly) stop at — that would make
		// them acknowledged-but-unrecoverable. If the rollback itself
		// fails, poison the store: refusing writes is strictly better
		// than acknowledging writes recovery will drop.
		good := s.segSizes[s.segSeq]
		if terr := s.seg.Truncate(good); terr != nil {
			s.failed = fmt.Errorf("write failed (%v) and rollback truncate failed: %w", err, terr)
		} else if _, serr := s.seg.Seek(good, 0); serr != nil {
			s.failed = fmt.Errorf("write failed (%v) and rollback seek failed: %w", err, serr)
		}
		return err
	}
	if !s.opt.NoSync {
		if err := s.seg.Sync(); err != nil {
			// After a failed fsync the page cache is untrustworthy
			// (dirty pages may have been dropped), and the unack'd
			// frame sits at the tail where it would replay — a retried
			// batch would then apply twice, which is not idempotent for
			// creates. Roll the tail back and poison the store either
			// way: refusing writes until a restart re-establishes a
			// consistent tail is strictly safer than writing on.
			good := s.segSizes[s.segSeq]
			if terr := s.seg.Truncate(good); terr == nil {
				s.seg.Seek(good, 0)
			}
			s.failed = fmt.Errorf("fsync failed: %w", err)
			return err
		}
	}
	s.segSizes[s.segSeq] += int64(len(frame))
	s.walBytes += int64(len(frame))
	s.appends++
	return nil
}

// openSegment creates wal-<seq>.log with its header, synced. It does
// not touch store state, so a failure leaves the store untouched.
func (s *Store) openSegment(seq uint64) (*os.File, error) {
	path := filepath.Join(s.dir, segName(seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(walMagic); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if !s.opt.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(path)
			return nil, err
		}
		if err := syncDir(s.dir); err != nil {
			f.Close()
			os.Remove(path)
			return nil, err
		}
	}
	return f, nil
}

// createSegment creates wal-<segSeq>.log and makes it the current
// segment. Caller holds mu (or is Open, single-threaded).
func (s *Store) createSegment() error {
	f, err := s.openSegment(s.segSeq)
	if err != nil {
		return err
	}
	s.seg = f
	s.segSizes[s.segSeq] = walHeaderLen
	s.walBytes += walHeaderLen
	return nil
}

func (s *Store) rotateLocked() error {
	// Bring up the replacement before tearing down the current tail: a
	// transient failure (disk briefly full) must leave the store fully
	// appendable on the old segment, not stuck behind a nil file.
	f, err := s.openSegment(s.segSeq + 1)
	if err != nil {
		return err
	}
	if s.seg != nil {
		if !s.opt.NoSync {
			if err := s.seg.Sync(); err != nil {
				f.Close()
				os.Remove(filepath.Join(s.dir, segName(s.segSeq+1)))
				return err
			}
		}
		s.seg.Close()
	}
	s.segSeq++
	s.seg = f
	s.segSizes[s.segSeq] = walHeaderLen
	s.walBytes += walHeaderLen
	return nil
}

// Dirty reports whether the live WAL holds any records not yet covered
// by a checkpoint — i.e. whether a checkpoint now would actually
// shorten recovery.
func (s *Store) Dirty() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walBytes > int64(len(s.segSizes))*walHeaderLen
}

// ShouldCheckpoint reports whether the live WAL has grown past the
// configured threshold, suggesting a checkpoint.
func (s *Store) ShouldCheckpoint() bool {
	if s.opt.checkpointBytes() < 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walBytes > s.opt.checkpointBytes()
}

// BeginCheckpoint rotates the WAL and returns the new segment's
// sequence number. Call it while no logical mutation can interleave
// (the engine holds its writer lock), with the snapshot that reflects
// every record appended so far: that snapshot then covers exactly the
// segments below the returned sequence, and WriteCheckpoint may run in
// the background while later appends land in the new segment.
func (s *Store) BeginCheckpoint() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("storage: checkpoint on closed store")
	}
	if err := s.rotateLocked(); err != nil {
		// Surface the failure in Stats too: callers fire-and-forget
		// background checkpoints, and a silently never-checkpointing
		// store must be visible to operators.
		s.lastCkptErr = err.Error()
		return 0, err
	}
	return s.segSeq, nil
}

// WriteCheckpoint atomically writes db as the checkpoint covering all
// segments below seq (temp file + rename + directory sync), then
// truncates the obsolete segments and any older checkpoint. db must be
// the snapshot passed alongside BeginCheckpoint's sequence; it is only
// read. Failures are additionally recorded in Stats.
func (s *Store) WriteCheckpoint(seq uint64, db *relation.Database) (err error) {
	defer func() {
		s.mu.Lock()
		if err != nil {
			s.lastCkptErr = err.Error()
		} else {
			s.lastCkptErr = ""
			s.checkpoints++
			s.lastCkpt = time.Now()
		}
		s.mu.Unlock()
	}()

	payload := appendDatabase(nil, db)
	final := filepath.Join(s.dir, ckptName(seq))
	tmp := final + ".tmp"
	if err := writeCheckpointFile(tmp, seq, payload); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if !s.opt.NoSync {
		if err := syncDir(s.dir); err != nil {
			return err
		}
	}

	// The new checkpoint supersedes all older segments and checkpoints.
	s.mu.Lock()
	var drop []uint64
	for sseq := range s.segSizes {
		if sseq < seq {
			drop = append(drop, sseq)
		}
	}
	for _, sseq := range drop {
		os.Remove(filepath.Join(s.dir, segName(sseq)))
		s.walBytes -= s.segSizes[sseq]
		delete(s.segSizes, sseq)
	}
	s.mu.Unlock()
	if ents, derr := os.ReadDir(s.dir); derr == nil {
		for _, e := range ents {
			if cseq, ok := parseSeq(e.Name(), "checkpoint-", ".ckpt"); ok && cseq < seq {
				os.Remove(filepath.Join(s.dir, e.Name()))
			}
		}
	}
	return nil
}

// Checkpoint is BeginCheckpoint + WriteCheckpoint in one synchronous
// call, for shutdown and tests. See BeginCheckpoint for the snapshot
// consistency requirement.
func (s *Store) Checkpoint(db *relation.Database) error {
	seq, err := s.BeginCheckpoint()
	if err != nil {
		return err
	}
	return s.WriteCheckpoint(seq, db)
}

// Stats returns a snapshot of the durability counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		WALBytes:          s.walBytes,
		Segments:          len(s.segSizes),
		Appends:           s.appends,
		Replayed:          s.replayed,
		Checkpoints:       s.checkpoints,
		LastCheckpoint:    s.lastCkpt,
		LastCheckpointErr: s.lastCkptErr,
	}
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Synced reports whether appends are fsynced before acknowledgment.
// With Options.NoSync the log still survives a process crash (the page
// cache holds it) but not a power failure or kernel panic.
func (s *Store) Synced() bool { return !s.opt.NoSync }

// Close flushes and closes the WAL. Appends after Close fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.lockf != nil {
		defer func() { s.lockf.Close(); s.lockf = nil }() // releases the dir lock
	}
	if s.seg == nil {
		return nil
	}
	if !s.opt.NoSync {
		if err := s.seg.Sync(); err != nil {
			s.seg.Close()
			return err
		}
	}
	err := s.seg.Close()
	s.seg = nil
	return err
}

// --- checkpoint file I/O ---
//
// Layout: magic (8) | u32 crc32c(rest) | u64 seq | database payload.

func writeCheckpointFile(path string, seq uint64, payload []byte) error {
	// Header + payload are written separately and the CRC is streamed
	// over both parts, so the (potentially huge) snapshot encoding is
	// never copied into a second buffer.
	var hdr [20]byte // magic(8) | crc(4) | seq(8)
	copy(hdr[:8], ckptMagic)
	putU64(hdr[12:], seq)
	crc := crc32.Update(0, castTable, hdr[12:])
	crc = crc32.Update(crc, castTable, payload)
	putU32(hdr[8:], crc)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readCheckpoint(path string, wantSeq uint64) (*relation.Database, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(ckptMagic)+4+8 || string(data[:len(ckptMagic)]) != string(ckptMagic) {
		return nil, corruptf("checkpoint header")
	}
	crc := readU32(data[len(ckptMagic):])
	rest := data[len(ckptMagic)+4:]
	if crcOf(rest) != crc {
		return nil, corruptf("checkpoint CRC mismatch")
	}
	if seq := readU64(rest); seq != wantSeq {
		return nil, corruptf("checkpoint sequence %d ≠ filename %d", seq, wantSeq)
	}
	return decodeDatabase(rest[8:])
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
