// Package storage is the durability subsystem: a write-ahead log of
// logical mutation records plus checkpointed snapshots of the columnar
// database representation, giving the serving engine crash recovery
// with an acknowledged-writes-are-durable contract.
//
// A store directory holds numbered WAL segments (wal-<seq>.log), an
// append-only chunk store (chunks-<gen>.gyo), and at most one live
// checkpoint manifest (manifest-<seq>.mf; legacy full checkpoints,
// checkpoint-<seq>.ckpt, are still read). The manifest with sequence
// number S describes a database snapshot covering exactly the
// mutations recorded in segments < S: full arena chunks by reference
// into the chunk store, mutable tails by value (see manifest.go).
// Writing a checkpoint appends only chunks not yet durable and then
// renames a fresh manifest into place — O(dirty chunks + tails)
// instead of O(cardinality) — so recovery is: load the newest valid
// manifest (or legacy checkpoint), replay every segment ≥ S in order,
// tolerate a torn final record (the in-flight write of a crash), and
// resume appending at the recovered tail. Checkpoints are written
// atomically in the background off a frozen snapshot, then obsolete
// segments are truncated away — readers and writers never block on
// checkpointing.
//
// The write path is Append: one framed, CRC-checked record per
// mutation batch, fsynced before it returns (unless Options.NoSync),
// so a batch acknowledged to a client is on disk, and a batch is
// recovered either whole or not at all.
package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"gyokit/internal/obs"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

// Default tuning knobs.
const (
	DefaultSegmentBytes = 4 << 20 // WAL segment rotation threshold
	// DefaultCheckpointBytes is the live-WAL size that suggests a
	// checkpoint. Incremental checkpoints cost O(dirty), not O(card),
	// so the default fires 4× more eagerly than the old full-snapshot
	// threshold of 16 MiB — recovery replays less WAL for near-free.
	DefaultCheckpointBytes = 4 << 20
	DefaultCompactBytes    = 4 << 20 // chunk-store size floor before GC compaction
)

// Options configures a Store.
type Options struct {
	// SegmentBytes rotates the WAL to a fresh segment once the current
	// one exceeds this size. Zero means DefaultSegmentBytes.
	SegmentBytes int64
	// CheckpointBytes is the live-WAL size past which ShouldCheckpoint
	// reports true. Zero means DefaultCheckpointBytes; negative
	// disables the suggestion (checkpoints still work when requested).
	CheckpointBytes int64
	// CompactBytes is the chunk-store size past which a checkpoint may
	// garbage-collect by rewriting only the live chunks into a fresh
	// generation (it also requires the file to be more than half
	// garbage). Zero means DefaultCompactBytes; negative disables
	// compaction.
	CompactBytes int64
	// NoSync skips fsync on append and rotation. Crash durability is
	// lost (a power failure may drop acknowledged writes); useful for
	// tests and benchmarks where the page cache is good enough.
	NoSync bool
	// Metrics, when non-nil, receives the store's observability
	// instruments (WAL append latency/bytes histograms, checkpoint
	// duration, chunk and compaction counters, live-size gauges) under
	// the gyo_wal_* / gyo_checkpoint_* / gyo_chunk_store_* families.
	// One store per registry: registering two stores on the same
	// registry panics on the duplicate series. Nil disables
	// instrumentation at zero cost.
	Metrics *obs.Registry
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	return o.SegmentBytes
}

func (o Options) checkpointBytes() int64 {
	if o.CheckpointBytes == 0 {
		return DefaultCheckpointBytes
	}
	return o.CheckpointBytes
}

func (o Options) compactBytes() int64 {
	if o.CompactBytes == 0 {
		return DefaultCompactBytes
	}
	return o.CompactBytes
}

// Stats is a point-in-time snapshot of durability counters.
type Stats struct {
	WALBytes          int64     // bytes across live segments (headers included)
	Segments          int       // live segment files
	Appends           uint64    // batches appended since open
	Replayed          uint64    // batches replayed during recovery
	Checkpoints       uint64    // checkpoints written since open
	ChunksWritten     uint64    // chunk records appended to the chunk store since open
	ChunksReused      uint64    // chunk references satisfied without rewriting since open
	CheckpointBytes   uint64    // cumulative bytes written by checkpoints since open
	ChunkStoreBytes   int64     // current chunk-store file size (0 before the first incremental checkpoint)
	Compactions       uint64    // chunk-store GC rewrites since open
	LastCheckpoint    time.Time // zero if never (this process)
	LastCheckpointErr string    // last background checkpoint failure, if any
}

// Store is an open storage directory. It is safe for concurrent use;
// Append calls are serialized internally (the engine's writer lock
// already serializes logical mutations, the store's own lock makes it
// safe regardless).
type Store struct {
	dir string
	opt Options

	mu       sync.Mutex
	seg      *os.File // current segment, positioned at its end
	segSeq   uint64
	segSizes map[uint64]int64 // live segment → size in bytes
	walBytes int64
	closed   bool
	failed   error         // set when a write error left the WAL unappendable
	lockf    *os.File      // exclusive directory lock (nil on non-unix)
	notifyCh chan struct{} // closed+replaced on append/rotation; see AppendNotify

	id            uint64 // stable random store identity (store-id file)
	replCursor    Cursor // newest KindCursor mark seen during replay
	hasReplCursor bool
	truncTail     Cursor // end of the newest checkpointed-away segment (wal-trunc file)

	appends       uint64
	replayed      uint64
	checkpoints   uint64
	chunksWritten uint64
	chunksReused  uint64
	ckptBytes     uint64
	chunkBytes    int64 // mirror of chunkSize for Stats (mu, not ckptFileMu)
	compactions   uint64
	lastCkpt      time.Time
	lastCkptErr   string

	// Incremental-checkpoint state, owned by ckptFileMu (not mu):
	// WriteCheckpoint bodies are serialized on it, and it is always
	// acquired before mu when both are needed.
	ckptFileMu sync.Mutex
	chunkf     *os.File // live chunk-store generation; nil until first incremental checkpoint (or after a write error poisoned it)
	chunkGen   uint64
	chunkSize  int64 // current chunk-store size = append offset
	chunkLive  int64 // bytes referenced by the newest manifest
	chunkTable map[uint64]chunkRef

	db    *relation.Database // recovered state; nil after Detach
	empty bool               // no checkpoint and no WAL records found

	// Observability instruments (nil — hence no-op — without
	// Options.Metrics). Unlike the snapshot-style Stats counters these
	// are event-shaped: histograms observed at append/checkpoint time.
	mAppendSec    *obs.Histogram // WAL append latency (lock to fsynced)
	mAppendBytes  *obs.Histogram // framed record size per append
	mCkptSec      *obs.Histogram // checkpoint write duration
	mChunksOut    *obs.Counter   // chunk records appended by checkpoints
	mChunksReused *obs.Counter   // chunk references reused without rewriting
	mCkptOutBytes *obs.Counter   // cumulative checkpoint I/O bytes
	mCkptFail     *obs.Counter   // failed checkpoint writes
	mCompactions  *obs.Counter   // chunk-store GC rewrites
}

// registerMetrics creates the store's instruments in reg. Gauges pull
// from live fields under mu at scrape time; histograms and counters
// are pushed on the write paths.
func (s *Store) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mAppendSec = reg.Histogram("gyo_wal_append_seconds",
		"WAL append latency per mutation batch, including fsync.", obs.LatencyBuckets())
	s.mAppendBytes = reg.Histogram("gyo_wal_append_bytes",
		"Framed WAL record size per appended batch.", obs.SizeBuckets(64, 4, 12))
	s.mCkptSec = reg.Histogram("gyo_checkpoint_seconds",
		"Checkpoint write duration (chunk appends + manifest rename).", obs.LatencyBuckets())
	s.mChunksOut = reg.Counter("gyo_checkpoint_chunks_total",
		"Chunk records written to or reused from the chunk store by checkpoints.", "result", "written")
	s.mChunksReused = reg.Counter("gyo_checkpoint_chunks_total",
		"Chunk records written to or reused from the chunk store by checkpoints.", "result", "reused")
	s.mCkptOutBytes = reg.Counter("gyo_checkpoint_bytes_total",
		"Cumulative bytes written by checkpoints (chunks + manifests).")
	s.mCkptFail = reg.Counter("gyo_checkpoint_failures_total",
		"Checkpoint writes that failed (see /stats lastCheckpointError).")
	s.mCompactions = reg.Counter("gyo_compactions_total",
		"Chunk-store GC rewrites into a fresh generation.")
	reg.GaugeFunc("gyo_wal_bytes",
		"Live WAL bytes across segments (replayed at next recovery).", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.walBytes)
		})
	reg.GaugeFunc("gyo_wal_segments",
		"Live WAL segment files.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.segSizes))
		})
	reg.GaugeFunc("gyo_chunk_store_bytes",
		"Current chunk-store file size.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.chunkBytes)
		})
}

func segName(seq uint64) string  { return fmt.Sprintf("wal-%016d.log", seq) }
func ckptName(seq uint64) string { return fmt.Sprintf("checkpoint-%016d.ckpt", seq) }

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if len(name) != len(prefix)+16+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	var seq uint64
	for _, c := range name[len(prefix) : len(prefix)+16] {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}

// Open opens (creating if needed) the store directory and recovers its
// state: newest valid checkpoint, then WAL replay of every later
// segment, tolerating a torn final record. The recovered database is
// available via State until Detach; a fresh directory recovers to an
// empty database over a fresh universe.
func Open(dir string, opt Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// One process per directory: a concurrent Open must fail fast, not
	// truncate the tail segment out from under a live writer.
	lockf, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	opened := false
	defer func() {
		if !opened && lockf != nil {
			_ = lockf.Close()
		}
	}()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segSeqs []uint64
	// Snapshot candidates: incremental manifests and legacy full
	// checkpoints, tried newest-first (a manifest outranks a legacy
	// checkpoint at the same sequence — it is the newer format).
	type snapCand struct {
		seq    uint64
		legacy bool
	}
	var cands []snapCand
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			segSeqs = append(segSeqs, seq)
		}
		if seq, ok := parseSeq(e.Name(), "checkpoint-", ".ckpt"); ok {
			cands = append(cands, snapCand{seq: seq, legacy: true})
		}
		if seq, ok := parseSeq(e.Name(), "manifest-", ".mf"); ok {
			cands = append(cands, snapCand{seq: seq})
		}
	}
	sort.Slice(segSeqs, func(i, j int) bool { return segSeqs[i] < segSeqs[j] })
	sort.Slice(cands, func(i, j int) bool { // newest first
		if cands[i].seq != cands[j].seq {
			return cands[i].seq > cands[j].seq
		}
		return !cands[i].legacy && cands[j].legacy
	})

	s := &Store{dir: dir, opt: opt, segSizes: map[uint64]int64{}}
	defer func() {
		if !opened && s.chunkf != nil {
			_ = s.chunkf.Close()
		}
	}()

	// 1. Newest valid snapshot (manifest + chunk store, or legacy full
	// checkpoint).
	var db *relation.Database
	startSeq := uint64(1)
	ckptLoaded := false
	var chosen snapCand
	for _, c := range cands {
		if c.legacy {
			loaded, err := readCheckpoint(filepath.Join(dir, ckptName(c.seq)), c.seq)
			if err != nil {
				continue // corrupt or unreadable: try an older one
			}
			db = loaded
		} else {
			st, err := loadManifest(dir, c.seq)
			if err != nil {
				continue
			}
			db = st.db
			s.chunkf, s.chunkGen = st.f, st.gen
			s.chunkSize, s.chunkLive = st.size, st.live
			s.chunkBytes = st.size
			s.chunkTable = st.table
		}
		startSeq, ckptLoaded, chosen = c.seq, true, c
		break
	}
	if !ckptLoaded {
		// Without a checkpoint the WAL must reach back to genesis:
		// segment 1 (or no segments at all). A history that starts later
		// — or corrupt checkpoints with no replayable prefix — means
		// acknowledged data is unrecoverable, which must be an error,
		// never a silently empty store.
		if len(segSeqs) > 0 && segSeqs[0] != 1 {
			return nil, fmt.Errorf("%w: no valid checkpoint and WAL starts at segment %d", ErrCorrupt, segSeqs[0])
		}
		if len(segSeqs) == 0 && len(cands) > 0 {
			return nil, fmt.Errorf("%w: checkpoint files present but none valid and no WAL to replay", ErrCorrupt)
		}
		db = &relation.Database{D: schema.New(schema.NewUniverse())}
	}

	// 2. Replay segments ≥ startSeq in order.
	var replaySeqs []uint64
	for _, seq := range segSeqs {
		if seq >= startSeq {
			replaySeqs = append(replaySeqs, seq)
		}
	}
	for i, seq := range replaySeqs {
		if want := startSeq + uint64(i); seq != want {
			return nil, fmt.Errorf("%w: WAL segment %d missing (found %d)", ErrCorrupt, want, seq)
		}
	}
	lastValidLen := int64(0)
	for i, seq := range replaySeqs {
		data, err := os.ReadFile(filepath.Join(dir, segName(seq)))
		if err != nil {
			return nil, err
		}
		validLen, clean, err := replaySegment(data, func(muts []Mutation) error {
			for _, m := range muts {
				if m.Kind == KindCursor {
					s.replCursor, s.hasReplCursor = m.Cursor, true
				}
				var aerr error
				if db, _, aerr = m.apply(db, true); aerr != nil {
					return aerr
				}
			}
			s.replayed++
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("%w: segment %d: %v", ErrCorrupt, seq, err)
		}
		last := i == len(replaySeqs)-1
		if !clean && !last {
			return nil, fmt.Errorf("%w: segment %d has an invalid record at offset %d but is not the newest segment", ErrCorrupt, seq, validLen)
		}
		// A bad magic header (validLen 0) on a segment that has a
		// non-empty body is provable corruption, not a torn create: the
		// header always lands before any record does. Truncating would
		// silently drop every acknowledged batch in the body.
		if !clean && validLen == 0 && len(data) > walHeaderLen {
			return nil, fmt.Errorf("%w: segment %d has a corrupt header but %d bytes of records", ErrCorrupt, seq, len(data)-walHeaderLen)
		}
		if last {
			lastValidLen = int64(validLen)
		}
	}

	// 3. Resume the tail segment for appending (discarding any torn
	// final record), or create the first segment.
	if len(replaySeqs) > 0 {
		s.segSeq = replaySeqs[len(replaySeqs)-1]
		path := filepath.Join(dir, segName(s.segSeq))
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		if lastValidLen < walHeaderLen {
			lastValidLen = 0
		}
		if err := f.Truncate(lastValidLen); err != nil {
			_ = f.Close()
			return nil, err
		}
		if lastValidLen == 0 {
			if _, err := f.Write(walMagic); err != nil {
				_ = f.Close()
				return nil, err
			}
			lastValidLen = walHeaderLen
		}
		if _, err := f.Seek(lastValidLen, 0); err != nil {
			_ = f.Close()
			return nil, err
		}
		if !opt.NoSync {
			if err := f.Sync(); err != nil { // persist the tail truncation
				_ = f.Close()
				return nil, err
			}
		}
		s.seg = f
		s.segSizes[s.segSeq] = lastValidLen
		for _, seq := range replaySeqs[:len(replaySeqs)-1] {
			fi, err := os.Stat(filepath.Join(dir, segName(seq)))
			if err != nil {
				return nil, err
			}
			s.segSizes[seq] = fi.Size()
		}
	} else {
		s.segSeq = startSeq
		if err := s.createSegment(); err != nil {
			return nil, err
		}
	}
	s.walBytes = 0
	for _, sz := range s.segSizes {
		s.walBytes += sz
	}

	// 4. Tidy up: segments older than the checkpoint, snapshot files
	// other than the chosen one, and chunk-store generations the chosen
	// manifest does not reference are dead weight (a crash between
	// checkpointing and cleanup leaves them behind).
	for _, seq := range segSeqs {
		if seq < startSeq {
			os.Remove(filepath.Join(dir, segName(seq)))
		}
	}
	for _, c := range cands {
		if ckptLoaded && c == chosen {
			continue
		}
		if c.legacy {
			os.Remove(filepath.Join(dir, ckptName(c.seq)))
		} else {
			os.Remove(filepath.Join(dir, manName(c.seq)))
		}
	}
	for _, e := range entries {
		if gen, ok := parseSeq(e.Name(), "chunks-", ".gyo"); ok {
			if s.chunkf == nil || gen != s.chunkGen {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	// Orphaned snapshot temp files (crash between write and rename)
	// can be snapshot-sized; don't let them accumulate.
	for _, e := range entries {
		_, ckptTmp := parseSeq(e.Name(), "checkpoint-", ".ckpt.tmp")
		_, manTmp := parseSeq(e.Name(), "manifest-", ".mf.tmp")
		if ckptTmp || manTmp {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}

	if s.id, err = loadOrCreateStoreID(dir, !opt.NoSync); err != nil {
		return nil, err
	}
	if c, ok := loadTruncTail(dir); ok {
		s.truncTail = c
	}
	s.db = db
	s.empty = !ckptLoaded && s.replayed == 0
	s.lockf = lockf
	s.registerMetrics(opt.Metrics)
	opened = true
	return s, nil
}

// State returns the recovered database (empty schema and universe for
// a fresh store). The caller takes ownership — typically by installing
// it as the engine's first snapshot.
func (s *Store) State() *relation.Database { return s.db }

// Empty reports whether the directory held no durable state at Open
// (no checkpoint, no WAL records): the caller may want to seed an
// initial database through the mutation path.
func (s *Store) Empty() bool { return s.empty }

// Detach drops the store's reference to the recovered database so a
// long-lived process does not pin the boot-time snapshot.
func (s *Store) Detach() { s.db = nil }

// Append durably logs one mutation batch: a single framed record,
// fsynced before return (unless NoSync). The caller is responsible for
// having validated/applied the batch against the current state; the
// store records it verbatim.
func (s *Store) Append(muts []Mutation) error {
	if len(muts) == 0 {
		return nil
	}
	t0 := time.Now()
	// Everything acknowledged must decode on replay: enforce the
	// codec's caps before anything reaches the file, so recovery can
	// treat an undecodable record as corruption/tearing, never as a
	// dropped acknowledged batch.
	if len(muts) > maxBatchMuts {
		return fmt.Errorf("storage: batch of %d mutations exceeds codec cap %d", len(muts), maxBatchMuts)
	}
	for i, m := range muts {
		if err := m.encodable(); err != nil {
			return fmt.Errorf("mutation %d: %w", i, err)
		}
	}
	// Encode the batch directly after a placeholder frame header, then
	// patch length and CRC in place — one buffer, no second copy of a
	// potentially large bulk-load payload.
	frame := appendBatch(make([]byte, frameHedLen, frameHedLen+64), muts)
	payload := frame[frameHedLen:]
	if len(payload) > maxRecordSize {
		return fmt.Errorf("storage: record of %d bytes exceeds cap %d", len(payload), maxRecordSize)
	}
	putU32(frame[0:], uint32(len(payload)))
	putU32(frame[4:], crcOf(payload))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("storage: append on closed store")
	}
	if s.failed != nil {
		return fmt.Errorf("storage: store failed: %w", s.failed)
	}
	if s.segSizes[s.segSeq] > walHeaderLen && s.segSizes[s.segSeq] >= s.opt.segmentBytes() {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := s.seg.Write(frame); err != nil {
		// The segment may now hold a partial frame. Roll the file back
		// to the last good offset so future appends don't land behind
		// garbage that replay would (rightly) stop at — that would make
		// them acknowledged-but-unrecoverable. If the rollback itself
		// fails, poison the store: refusing writes is strictly better
		// than acknowledging writes recovery will drop.
		good := s.segSizes[s.segSeq]
		if terr := s.seg.Truncate(good); terr != nil {
			s.failed = fmt.Errorf("write failed (%v) and rollback truncate failed: %w", err, terr)
		} else if _, serr := s.seg.Seek(good, 0); serr != nil {
			s.failed = fmt.Errorf("write failed (%v) and rollback seek failed: %w", err, serr)
		}
		return err
	}
	if !s.opt.NoSync {
		if err := s.seg.Sync(); err != nil {
			// After a failed fsync the page cache is untrustworthy
			// (dirty pages may have been dropped), and the unack'd
			// frame sits at the tail where it would replay — a retried
			// batch would then apply twice, which is not idempotent for
			// creates. Roll the tail back and poison the store either
			// way: refusing writes until a restart re-establishes a
			// consistent tail is strictly safer than writing on.
			good := s.segSizes[s.segSeq]
			if terr := s.seg.Truncate(good); terr == nil {
				s.seg.Seek(good, 0)
			}
			s.failed = fmt.Errorf("fsync failed: %w", err)
			return err
		}
	}
	s.segSizes[s.segSeq] += int64(len(frame))
	s.walBytes += int64(len(frame))
	s.appends++
	s.signalAppendLocked()
	s.mAppendSec.Observe(time.Since(t0).Seconds())
	s.mAppendBytes.Observe(float64(len(frame)))
	return nil
}

// openSegment creates wal-<seq>.log with its header, synced. It does
// not touch store state, so a failure leaves the store untouched.
func (s *Store) openSegment(seq uint64) (*os.File, error) {
	path := filepath.Join(s.dir, segName(seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(walMagic); err != nil {
		_ = f.Close()
		os.Remove(path)
		return nil, err
	}
	if !s.opt.NoSync {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			os.Remove(path)
			return nil, err
		}
		if err := syncDir(s.dir); err != nil {
			_ = f.Close()
			os.Remove(path)
			return nil, err
		}
	}
	return f, nil
}

// createSegment creates wal-<segSeq>.log and makes it the current
// segment. Caller holds mu (or is Open, single-threaded).
func (s *Store) createSegment() error {
	f, err := s.openSegment(s.segSeq)
	if err != nil {
		return err
	}
	s.seg = f
	s.segSizes[s.segSeq] = walHeaderLen
	s.walBytes += walHeaderLen
	return nil
}

func (s *Store) rotateLocked() error {
	// Bring up the replacement before tearing down the current tail: a
	// transient failure (disk briefly full) must leave the store fully
	// appendable on the old segment, not stuck behind a nil file.
	f, err := s.openSegment(s.segSeq + 1)
	if err != nil {
		return err
	}
	if s.seg != nil {
		if !s.opt.NoSync {
			if err := s.seg.Sync(); err != nil {
				_ = f.Close()
				os.Remove(filepath.Join(s.dir, segName(s.segSeq+1)))
				return err
			}
		}
		_ = s.seg.Close()
	}
	s.segSeq++
	s.seg = f
	s.segSizes[s.segSeq] = walHeaderLen
	s.walBytes += walHeaderLen
	return nil
}

// Dirty reports whether the live WAL holds any records not yet covered
// by a checkpoint — i.e. whether a checkpoint now would actually
// shorten recovery.
func (s *Store) Dirty() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walBytes > int64(len(s.segSizes))*walHeaderLen
}

// ShouldCheckpoint reports whether the live WAL has grown past the
// configured threshold, suggesting a checkpoint.
func (s *Store) ShouldCheckpoint() bool {
	if s.opt.checkpointBytes() < 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walBytes > s.opt.checkpointBytes()
}

// BeginCheckpoint rotates the WAL and returns the new segment's
// sequence number. Call it while no logical mutation can interleave
// (the engine holds its writer lock), with the snapshot that reflects
// every record appended so far: that snapshot then covers exactly the
// segments below the returned sequence, and WriteCheckpoint may run in
// the background while later appends land in the new segment.
func (s *Store) BeginCheckpoint() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("storage: checkpoint on closed store")
	}
	if err := s.rotateLocked(); err != nil {
		// Surface the failure in Stats too: callers fire-and-forget
		// background checkpoints, and a silently never-checkpointing
		// store must be visible to operators.
		s.lastCkptErr = err.Error()
		return 0, err
	}
	// Wake replication long-pollers: a caught-up follower parked at the
	// end of the old segment must learn the tail moved to a new one.
	s.signalAppendLocked()
	return s.segSeq, nil
}

// WriteCheckpoint atomically writes db as the checkpoint covering all
// segments below seq — appending chunks not yet in the chunk store,
// then renaming a fresh manifest into place (temp file + rename +
// directory sync) — and finally truncates the obsolete segments and
// older snapshot files. db must be the snapshot passed alongside
// BeginCheckpoint's sequence, descended from this store's recovered
// state (chunk ids key the deduplication table, and only that lineage
// guarantees id ⇒ identical bytes); it is only read. Failures are
// additionally recorded in Stats.
func (s *Store) WriteCheckpoint(seq uint64, db *relation.Database) (err error) {
	t0 := time.Now()
	var written, reused uint64
	var bytesOut int64
	compacted := false
	defer func() {
		s.mu.Lock()
		if err != nil {
			s.lastCkptErr = err.Error()
		} else {
			s.lastCkptErr = ""
			s.checkpoints++
			s.chunksWritten += written
			s.chunksReused += reused
			s.ckptBytes += uint64(bytesOut)
			s.chunkBytes = s.chunkSize
			if compacted {
				s.compactions++
			}
			s.lastCkpt = time.Now()
		}
		s.mu.Unlock()
		if err != nil {
			s.mCkptFail.Inc()
			return
		}
		s.mCkptSec.Observe(time.Since(t0).Seconds())
		s.mChunksOut.Add(written)
		s.mChunksReused.Add(reused)
		s.mCkptOutBytes.Add(uint64(bytesOut))
		if compacted {
			s.mCompactions.Inc()
		}
	}()

	s.ckptFileMu.Lock()
	defer s.ckptFileMu.Unlock()

	// Plan: walk the snapshot's full chunks once, deduplicating by id,
	// splitting them into already-durable references and chunks that
	// must be appended. Blocks are views into the (frozen, immutable)
	// arena — nothing is copied here.
	type planned struct {
		id    uint64
		block []relation.Value
	}
	rels := db.Rels
	if db.Univ != nil {
		rels = append(append([]*relation.Relation(nil), db.Rels...), db.Univ)
	}
	seen := make(map[uint64]bool)
	var all, missing []planned
	var reusedBytes int64
	for _, r := range rels {
		r.ForEachFullChunk(func(id uint64, block []relation.Value) bool {
			if seen[id] {
				return true
			}
			seen[id] = true
			all = append(all, planned{id, block})
			if ref, ok := s.chunkTable[id]; ok {
				reusedBytes += chunkRecHeaderLen + ref.ln
			} else {
				missing = append(missing, planned{id, block})
			}
			return true
		})
	}
	recBytes := func(ps []planned) int64 {
		var n int64
		for _, p := range ps {
			n += chunkRecHeaderLen + int64(len(p.block))*relation.ValueBytes
		}
		return n
	}
	newBytes := recBytes(missing)
	liveAfter := int64(chunkStoreHeaderLen) + reusedBytes + newBytes

	// A fresh generation starts from scratch (first checkpoint ever, or
	// a write error poisoned the current file) or compacts: when the
	// store has outgrown the floor and would be more than half garbage,
	// rewriting just the live chunks is cheaper than carrying the dead
	// ones forever.
	fresh := s.chunkf == nil
	if cb := s.opt.compactBytes(); !fresh && cb >= 0 {
		if projected := s.chunkSize + newBytes; projected > cb && projected > 2*liveAfter {
			fresh, compacted = true, true
		}
	}
	writeList := missing
	if fresh {
		writeList, reusedBytes = all, 0
		newBytes = recBytes(all)
		liveAfter = int64(chunkStoreHeaderLen) + newBytes
	}
	written, reused = uint64(len(writeList)), uint64(len(all)-len(writeList))

	// Append the planned chunk records (to a brand-new generation when
	// fresh). The chunk file is synced before the manifest referencing
	// it is written: a manifest must never point at unsynced data.
	// (Under NoSync all checkpoint fsyncs are skipped — the store has
	// already waived power-loss durability, and the page cache keeps
	// process-crash recovery intact.)
	gen, f, base := s.chunkGen, s.chunkf, s.chunkSize
	if fresh {
		gen = s.chunkGen + 1
		path := filepath.Join(s.dir, chunkStoreName(gen))
		f, err = os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if _, err = f.Write(chunkMagic); err != nil {
			_ = f.Close()
			os.Remove(path)
			return err
		}
		base = chunkStoreHeaderLen
	}
	// abortChunks undoes a failed append. On a fresh generation the old
	// state is untouched — drop the new file. On the live generation,
	// roll the file back to its pre-checkpoint size; if that (or the
	// fsync above it) fails the file's tail state is unknown, so poison
	// it — the next checkpoint starts a fresh generation rather than
	// appending behind garbage.
	abortChunks := func(rollback bool) {
		if fresh {
			_ = f.Close()
			os.Remove(filepath.Join(s.dir, chunkStoreName(gen)))
			return
		}
		if rollback {
			if terr := f.Truncate(base); terr == nil {
				return
			}
		}
		_ = s.chunkf.Close()
		s.chunkf, s.chunkTable = nil, nil
		s.chunkSize, s.chunkLive = 0, 0
	}
	newRefs := make(map[uint64]chunkRef, len(writeList))
	off := base
	var rec []byte
	for _, p := range writeList {
		rec = appendChunkRecord(rec[:0], p.id, p.block)
		if _, err = f.WriteAt(rec, off); err != nil {
			abortChunks(true)
			return err
		}
		newRefs[p.id] = chunkRef{off: off, ln: int64(len(rec) - chunkRecHeaderLen)}
		off += int64(len(rec))
	}
	if !s.opt.NoSync {
		if err = f.Sync(); err != nil {
			abortChunks(false)
			return err
		}
	}

	// Encode and atomically publish the manifest.
	refs := func(id uint64) (chunkRef, bool) {
		if ref, ok := newRefs[id]; ok {
			return ref, true
		}
		if fresh {
			return chunkRef{}, false
		}
		ref, ok := s.chunkTable[id]
		return ref, ok
	}
	payload, err := appendManifest(nil, db, gen, refs)
	if err != nil {
		abortChunks(true)
		return err
	}
	final := filepath.Join(s.dir, manName(seq))
	tmp := final + ".tmp"
	if err = writeSnapshotFile(tmp, manMagic, seq, payload, !s.opt.NoSync); err != nil {
		os.Remove(tmp)
		abortChunks(true)
		return err
	}
	if err = os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		abortChunks(true)
		return err
	}
	if !s.opt.NoSync {
		if err = syncDir(s.dir); err != nil {
			return err
		}
	}
	bytesOut = newBytes + int64(len(payload)) + 20
	if fresh {
		bytesOut += chunkStoreHeaderLen
	}

	// Commit the chunk-store state. The table tracks exactly the chunks
	// the live manifest references — ids are never reassigned, so a
	// chunk dropped from the snapshot can never be referenced again and
	// pruning it here matches what a reload from this manifest rebuilds.
	if fresh {
		if s.chunkf != nil {
			_ = s.chunkf.Close()
		}
		s.chunkf, s.chunkGen, s.chunkTable = f, gen, newRefs
	} else {
		for id := range s.chunkTable {
			if !seen[id] {
				delete(s.chunkTable, id)
			}
		}
		for id, ref := range newRefs {
			s.chunkTable[id] = ref
		}
	}
	s.chunkSize, s.chunkLive = off, liveAfter

	// The new manifest supersedes all older segments, snapshot files,
	// and chunk-store generations.
	s.mu.Lock()
	var drop []uint64
	var tail Cursor
	for sseq := range s.segSizes {
		if sseq < seq {
			drop = append(drop, sseq)
			if sseq > tail.Seg {
				tail = Cursor{Seg: sseq, Off: s.segSizes[sseq]}
			}
		}
	}
	for _, sseq := range drop {
		os.Remove(filepath.Join(s.dir, segName(sseq)))
		s.walBytes -= s.segSizes[sseq]
		delete(s.segSizes, sseq)
	}
	if tail.Seg != 0 {
		s.truncTail = tail
	}
	s.mu.Unlock()
	if tail.Seg != 0 {
		// Persist the truncated tail so a caught-up follower survives a
		// leader restart right after this checkpoint (the graceful
		// shutdown path). Best-effort: failure costs a replica re-seed,
		// not data.
		_ = saveTruncTail(s.dir, tail, !s.opt.NoSync)
	}
	if ents, derr := os.ReadDir(s.dir); derr == nil {
		for _, e := range ents {
			if cseq, ok := parseSeq(e.Name(), "checkpoint-", ".ckpt"); ok && cseq < seq {
				os.Remove(filepath.Join(s.dir, e.Name()))
			}
			if mseq, ok := parseSeq(e.Name(), "manifest-", ".mf"); ok && mseq < seq {
				os.Remove(filepath.Join(s.dir, e.Name()))
			}
			if cgen, ok := parseSeq(e.Name(), "chunks-", ".gyo"); ok && cgen < gen {
				os.Remove(filepath.Join(s.dir, e.Name()))
			}
		}
	}
	return nil
}

// Checkpoint is BeginCheckpoint + WriteCheckpoint in one synchronous
// call, for shutdown and tests. See BeginCheckpoint for the snapshot
// consistency requirement.
func (s *Store) Checkpoint(db *relation.Database) error {
	seq, err := s.BeginCheckpoint()
	if err != nil {
		return err
	}
	return s.WriteCheckpoint(seq, db)
}

// Stats returns a snapshot of the durability counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		WALBytes:          s.walBytes,
		Segments:          len(s.segSizes),
		Appends:           s.appends,
		Replayed:          s.replayed,
		Checkpoints:       s.checkpoints,
		ChunksWritten:     s.chunksWritten,
		ChunksReused:      s.chunksReused,
		CheckpointBytes:   s.ckptBytes,
		ChunkStoreBytes:   s.chunkBytes,
		Compactions:       s.compactions,
		LastCheckpoint:    s.lastCkpt,
		LastCheckpointErr: s.lastCkptErr,
	}
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Healthy returns nil while the store can accept appends; a closed or
// write-poisoned store returns why it cannot. Feeds /v1/healthz.
func (s *Store) Healthy() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store closed")
	}
	if s.failed != nil {
		return fmt.Errorf("store failed: %w", s.failed)
	}
	return nil
}

// Synced reports whether appends are fsynced before acknowledgment.
// With Options.NoSync the log still survives a process crash (the page
// cache holds it) but not a power failure or kernel panic.
func (s *Store) Synced() bool { return !s.opt.NoSync }

// Close flushes and closes the WAL and the chunk store. Appends after
// Close fail.
func (s *Store) Close() error {
	s.ckptFileMu.Lock()
	if s.chunkf != nil {
		_ = s.chunkf.Close()
		s.chunkf = nil
	}
	s.ckptFileMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.lockf != nil {
		defer func() { _ = s.lockf.Close(); s.lockf = nil }() // releases the dir lock
	}
	if s.seg == nil {
		return nil
	}
	if !s.opt.NoSync {
		if err := s.seg.Sync(); err != nil {
			_ = s.seg.Close()
			return err
		}
	}
	err := s.seg.Close()
	s.seg = nil
	return err
}

// --- legacy full-checkpoint file I/O ---
//
// Same framing as manifests (see manifest.go) under the old magic,
// with a full appendDatabase payload. Kept for reading pre-manifest
// store directories (and for generating test fixtures); new
// checkpoints are always written as manifest + chunk store.

func writeCheckpointFile(path string, seq uint64, payload []byte, sync bool) error {
	return writeSnapshotFile(path, ckptMagic, seq, payload, sync)
}

func readCheckpoint(path string, wantSeq uint64) (*relation.Database, error) {
	payload, err := readSnapshotFile(path, ckptMagic, wantSeq)
	if err != nil {
		return nil, err
	}
	return decodeDatabase(payload)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
