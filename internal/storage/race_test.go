//go:build race

package storage

// Trims the byte-granular torn-file sweeps under the race detector,
// where each recovery iteration is orders of magnitude slower.
func init() { raceEnabled = true }
