package storage

// Incremental checkpoint format: an append-only chunk store plus a
// small per-checkpoint manifest.
//
// The chunk store (chunks-<gen>.gyo) is an 8-byte magic header followed
// by self-describing chunk records, appended and never rewritten:
//
//	[u64 chunkID LE] [u32 payloadLen LE] [u32 crc32c(payload) LE] [payload]
//
// where payload is one full arena chunk — exactly ChunkRows rows of
// raw row-major values, so payloadLen is always ChunkRows·width·4.
// Full chunks are immutable from the moment they fill (see
// internal/relation), so a chunk id written once identifies the same
// bytes forever and later checkpoints simply reference it again.
//
// The manifest (manifest-<seq>.mf) is framed exactly like a legacy full
// checkpoint — magic (8) | u32 crc32c(rest) | u64 seq | payload — but
// with its own magic, and its payload describes the database by
// reference instead of by value: the chunk-store generation, the
// universe name table, and per relation the attribute-id list, the
// cardinality, one (id, offset, length) triple per full chunk, and the
// raw tail rows inline. A checkpoint therefore writes O(dirty chunks +
// tails) bytes: chunks already in the store are referenced, not
// rewritten.
//
// Recovery reads the newest valid manifest, then reads every referenced
// chunk record back out of the chunk store (validating id, length, and
// CRC per record — a referenced chunk is never trusted unverified) and
// restores the persisted chunk ids so deduplication survives restarts.
// Garbage (chunks no manifest references, left by dropped relations,
// deletes, or torn checkpoints) accumulates in the store file until a
// checkpoint rewrites the live chunks into a fresh generation; the
// manifest names its generation, so an old generation is deletable the
// moment a manifest of a newer generation is durable.

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

var (
	manMagic   = []byte("GYOMAN01")
	chunkMagic = []byte("GYOCHNK1")
)

const (
	chunkStoreHeaderLen = 8
	chunkRecHeaderLen   = 16 // u64 id + u32 len + u32 crc
	// maxManifestCard caps a decoded relation cardinality before any
	// chunk reads are attempted (the per-chunk and tail reads then bound
	// actual allocation).
	maxManifestCard = 1 << 40
)

func manName(seq uint64) string        { return fmt.Sprintf("manifest-%016d.mf", seq) }
func chunkStoreName(gen uint64) string { return fmt.Sprintf("chunks-%016d.gyo", gen) }

// chunkRef locates one chunk record in the live chunk-store generation:
// the file offset of its 16-byte record header and its payload length.
type chunkRef struct {
	off int64
	ln  int64
}

// appendChunkRecord appends one chunk record (header + payload) to dst.
func appendChunkRecord(dst []byte, id uint64, block []relation.Value) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(block)*relation.ValueBytes))
	crcAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	payloadAt := len(dst)
	dst = appendValues(dst, block)
	putU32(dst[crcAt:], crcOf(dst[payloadAt:]))
	return dst
}

// chunkReader reads and verifies chunk records from an open chunk-store
// file, recycling one record-sized scratch buffer across reads.
type chunkReader struct {
	f       *os.File
	size    int64
	buf     []byte
	scratch []relation.Value
}

// read returns the verified payload of the chunk record for id at ref,
// decoded into a reused scratch slice (valid until the next read).
func (c *chunkReader) read(id uint64, ref chunkRef) ([]relation.Value, error) {
	n := chunkRecHeaderLen + ref.ln
	if ref.off < chunkStoreHeaderLen || ref.off+n > c.size {
		return nil, corruptf("chunk %d ref [%d,+%d) outside store of %d bytes", id, ref.off, n, c.size)
	}
	if int64(cap(c.buf)) < n {
		c.buf = make([]byte, n)
	}
	b := c.buf[:n]
	if _, err := c.f.ReadAt(b, ref.off); err != nil {
		return nil, fmt.Errorf("chunk %d: %w", id, err)
	}
	if got := readU64(b); got != id {
		return nil, corruptf("chunk record id %d, manifest says %d", got, id)
	}
	if got := int64(readU32(b[8:])); got != ref.ln {
		return nil, corruptf("chunk %d record length %d, manifest says %d", id, got, ref.ln)
	}
	payload := b[chunkRecHeaderLen:]
	if crcOf(payload) != readU32(b[12:]) {
		return nil, corruptf("chunk %d CRC mismatch", id)
	}
	nv := len(payload) / relation.ValueBytes
	if cap(c.scratch) < nv {
		c.scratch = make([]relation.Value, nv)
	}
	vals := c.scratch[:nv]
	for i := range vals {
		vals[i] = relation.Value(binary.LittleEndian.Uint32(payload[i*relation.ValueBytes:]))
	}
	return vals, nil
}

// --- manifest encoding ---

// appendManifest encodes the manifest payload for db against chunk
// store generation gen. refs must locate every full chunk of db (a
// missing id is a checkpoint-writer bug, reported as an error so a
// half-planned checkpoint can never be renamed into place).
func appendManifest(dst []byte, db *relation.Database, gen uint64, refs func(id uint64) (chunkRef, bool)) ([]byte, error) {
	dst = appendUvarint(dst, gen)
	u := db.D.U
	n := u.Size()
	dst = appendUvarint(dst, uint64(n))
	for a := 0; a < n; a++ {
		name := u.Name(schema.Attr(a))
		dst = appendUvarint(dst, uint64(len(name)))
		dst = append(dst, name...)
	}
	dst = appendUvarint(dst, uint64(len(db.Rels)))
	var err error
	for _, r := range db.Rels {
		if dst, err = appendManifestRelation(dst, r, refs); err != nil {
			return nil, err
		}
	}
	if db.Univ != nil {
		dst = append(dst, 1)
		if dst, err = appendManifestRelation(dst, db.Univ, refs); err != nil {
			return nil, err
		}
	} else {
		dst = append(dst, 0)
	}
	return dst, nil
}

func appendManifestRelation(dst []byte, r *relation.Relation, refs func(id uint64) (chunkRef, bool)) ([]byte, error) {
	cols := r.Cols()
	dst = appendUvarint(dst, uint64(len(cols)))
	for _, a := range cols {
		dst = appendUvarint(dst, uint64(a))
	}
	dst = appendUvarint(dst, uint64(r.Card()))
	var err error
	r.ForEachFullChunk(func(id uint64, block []relation.Value) bool {
		ref, ok := refs(id)
		if !ok {
			err = fmt.Errorf("storage: chunk %d has no chunk-store offset", id)
			return false
		}
		dst = appendUvarint(dst, id)
		dst = appendUvarint(dst, uint64(ref.off))
		dst = appendUvarint(dst, uint64(ref.ln))
		return true
	})
	if err != nil {
		return nil, err
	}
	return appendValues(dst, r.Tail()), nil
}

// --- manifest decoding / recovery ---

// manifestState is everything loadManifest recovers: the database, the
// chunk-store generation with its open file handle and sizes, and the
// id → offset table that lets the next checkpoint deduplicate against
// chunks already on disk.
type manifestState struct {
	db    *relation.Database
	gen   uint64
	f     *os.File // open chunk store, positioned by ReadAt only
	size  int64    // chunk store file size (append resume point)
	live  int64    // bytes the manifest references (headers included)
	table map[uint64]chunkRef
}

// loadManifest loads manifest-<seq>.mf from dir together with the chunk
// store generation it names, verifying every referenced chunk record.
// On success the chunk-store file handle is returned open (the caller
// owns it); on any error nothing is kept open and the caller should
// fall back to an older candidate.
func loadManifest(dir string, seq uint64) (st manifestState, err error) {
	payload, err := readSnapshotFile(filepath.Join(dir, manName(seq)), manMagic, seq)
	if err != nil {
		return manifestState{}, err
	}
	r := &reader{buf: payload}
	gen, err := r.uvarint("chunk-store generation")
	if err != nil {
		return manifestState{}, err
	}
	f, err := os.OpenFile(filepath.Join(dir, chunkStoreName(gen)), os.O_RDWR, 0o644)
	if err != nil {
		return manifestState{}, err
	}
	defer func() {
		if err != nil {
			_ = f.Close()
		}
	}()
	fi, err := f.Stat()
	if err != nil {
		return manifestState{}, err
	}
	cs := &chunkReader{f: f, size: fi.Size()}
	var hdr [chunkStoreHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil || string(hdr[:]) != string(chunkMagic) {
		return manifestState{}, corruptf("chunk store %d header", gen)
	}

	u, nNames, err := decodeUniverse(r)
	if err != nil {
		return manifestState{}, err
	}
	st = manifestState{gen: gen, f: f, size: cs.size, table: map[uint64]chunkRef{}}
	st.db = &relation.Database{D: schema.New(u)}
	nRels, err := r.count("relations", maxRelations)
	if err != nil {
		return manifestState{}, err
	}
	for i := 0; i < nRels; i++ {
		rel, err := decodeManifestRelation(r, u, nNames, cs, &st)
		if err != nil {
			return manifestState{}, fmt.Errorf("relation %d: %w", i, err)
		}
		st.db.D.Add(rel.Attrs())
		st.db.Rels = append(st.db.Rels, rel)
	}
	hasUniv, err := r.bytes(1, "universal-relation flag")
	if err != nil {
		return manifestState{}, err
	}
	switch hasUniv[0] {
	case 0:
	case 1:
		univ, err := decodeManifestRelation(r, u, nNames, cs, &st)
		if err != nil {
			return manifestState{}, fmt.Errorf("universal relation: %w", err)
		}
		st.db.Univ = univ
	default:
		return manifestState{}, corruptf("universal-relation flag %d", hasUniv[0])
	}
	if r.remaining() != 0 {
		return manifestState{}, corruptf("%d trailing bytes after manifest", r.remaining())
	}
	st.live = int64(chunkStoreHeaderLen)
	for _, ref := range st.table {
		st.live += chunkRecHeaderLen + ref.ln
	}
	return st, nil
}

// decodeManifestRelation rebuilds one relation from its manifest entry,
// reading each referenced chunk out of the chunk store and restoring
// its persisted id, then appending the inline tail rows.
func decodeManifestRelation(r *reader, u *schema.Universe, nNames int, cs *chunkReader, st *manifestState) (*relation.Relation, error) {
	ids, err := decodeAttrs(r, nNames)
	if err != nil {
		return nil, err
	}
	width := len(ids)
	card, err := r.uvarint("cardinality")
	if err != nil {
		return nil, err
	}
	if card > maxManifestCard || (width == 0 && card > 1) {
		return nil, corruptf("cardinality %d (width %d)", card, width)
	}
	full := int(card) / relation.ChunkRows
	if full > r.remaining()/3 { // each ref is ≥ 3 bytes; cheap pre-allocation bound
		return nil, corruptf("%d chunk refs exceed remaining %d bytes", full, r.remaining())
	}
	wantLn := int64(relation.ChunkRows * width * relation.ValueBytes)
	type idRef struct {
		id  uint64
		ref chunkRef
	}
	refs := make([]idRef, full)
	for i := range refs {
		id, err := r.uvarint("chunk id")
		if err != nil {
			return nil, err
		}
		off, err := r.uvarint("chunk offset")
		if err != nil {
			return nil, err
		}
		ln, err := r.uvarint("chunk length")
		if err != nil {
			return nil, err
		}
		if id == 0 || int64(ln) != wantLn {
			return nil, corruptf("chunk ref id=%d len=%d (want len %d)", id, ln, wantLn)
		}
		refs[i] = idRef{id: id, ref: chunkRef{off: int64(off), ln: int64(ln)}}
	}
	tailRows := int(card) - full*relation.ChunkRows
	tail, err := r.values(tailRows*width, "tail rows")
	if err != nil {
		return nil, err
	}
	if width == 0 {
		rel, err := relation.FromArena(u, schema.NewAttrSet(ids...), int(card), nil)
		if err != nil {
			return nil, corruptf("%v", err)
		}
		return rel, nil
	}
	rel := relation.NewSized(u, schema.NewAttrSet(ids...), int(card))
	for _, ir := range refs {
		block, err := cs.read(ir.id, ir.ref)
		if err != nil {
			return nil, err
		}
		rel.InsertBlock(block)
	}
	if tailRows > 0 {
		rel.InsertBlock(tail)
	}
	// Set semantics silently drop duplicate rows, so a short count here
	// means the manifest or a chunk is lying about its contents — and a
	// full count proves every chunk boundary landed exactly where the
	// manifest said, making the id restoration below well-defined.
	if rel.Card() != int(card) {
		return nil, corruptf("rebuilt %d rows, manifest says %d (duplicate rows across chunks)", rel.Card(), card)
	}
	for i, ir := range refs {
		rel.SetChunkID(i, ir.id)
		st.table[ir.id] = ir.ref
	}
	return rel, nil
}

// --- framed snapshot file I/O (shared by legacy checkpoints and manifests) ---
//
// Layout: magic (8) | u32 crc32c(rest) | u64 seq | payload.

func writeSnapshotFile(path string, magic []byte, seq uint64, payload []byte, sync bool) error {
	// Header + payload are written separately and the CRC is streamed
	// over both parts, so a potentially huge payload is never copied
	// into a second buffer.
	var hdr [20]byte // magic(8) | crc(4) | seq(8)
	copy(hdr[:8], magic)
	putU64(hdr[12:], seq)
	crc := crc32Update(0, hdr[12:])
	crc = crc32Update(crc, payload)
	putU32(hdr[8:], crc)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(hdr[:]); err != nil {
		_ = f.Close()
		return err
	}
	if _, err := f.Write(payload); err != nil {
		_ = f.Close()
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return err
		}
	}
	return f.Close()
}

func readSnapshotFile(path string, magic []byte, wantSeq uint64) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(magic)+4+8 || string(data[:len(magic)]) != string(magic) {
		return nil, corruptf("snapshot header")
	}
	crc := readU32(data[len(magic):])
	rest := data[len(magic)+4:]
	if crcOf(rest) != crc {
		return nil, corruptf("snapshot CRC mismatch")
	}
	if seq := readU64(rest); seq != wantSeq {
		return nil, corruptf("snapshot sequence %d ≠ filename %d", seq, wantSeq)
	}
	return rest[8:], nil
}
