package storage

import (
	"os"
	"path/filepath"
	"testing"

	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

// applyBatches is the in-memory ground truth: the batches applied
// copy-on-write from the empty database.
func applyBatches(t testing.TB, batches [][]Mutation) *relation.Database {
	t.Helper()
	db := &relation.Database{D: schema.New(schema.NewUniverse())}
	for i, b := range batches {
		var err error
		if db, _, err = ApplyAll(db, b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	return db
}

// copyDir copies a store directory, truncating the named file to n bytes.
func copyDirTruncated(t testing.TB, src, truncName string, n int64) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() == truncName && int64(len(data)) > n {
			data = data[:n]
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Empty() {
		t.Fatal("fresh store not Empty")
	}
	batches := [][]Mutation{
		{Create("a", "b"), Create("b", "c")},
		{Insert(0, 2, []relation.Tuple{{1, 2}, {3, 4}, {1, 2}})},
		{Insert(1, 2, []relation.Tuple{{2, 9}}), Delete(0, 2, []relation.Tuple{{3, 4}})},
	}
	for _, b := range batches {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Empty() {
		t.Error("recovered store reports Empty")
	}
	if got := s2.Stats().Replayed; got != uint64(len(batches)) {
		t.Errorf("replayed %d batches, want %d", got, len(batches))
	}
	want := applyBatches(t, batches)
	if !dbEqual(want, s2.State()) {
		t.Errorf("recovered state differs:\n got %v\nwant %v", s2.State().D, want.D)
	}
}

// TestWALTornTail is the crash-recovery harness: it truncates the WAL
// at every byte offset (covering in particular every offset of the
// final record) and asserts recovery yields exactly the acknowledged
// prefix — every batch whose append completed before the cut, none
// after, and never an error or a half-applied batch.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]Mutation{
		{Create("a", "b")},
		{Insert(0, 2, []relation.Tuple{{1, 10}, {2, 20}})},
		{Create("b", "c"), Insert(1, 2, []relation.Tuple{{7, 70}})},
		{Delete(0, 2, []relation.Tuple{{1, 10}}), Insert(0, 2, []relation.Tuple{{3, 30}})},
	}
	segFile := segName(1)
	// ends[i] = WAL size once batch i is acknowledged.
	ends := make([]int64, len(batches))
	for i, b := range batches {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(filepath.Join(dir, segFile))
		if err != nil {
			t.Fatal(err)
		}
		ends[i] = fi.Size()
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	total := ends[len(ends)-1]
	// Precompute the expected database for every acknowledged prefix.
	states := make([]*relation.Database, len(batches)+1)
	for k := 0; k <= len(batches); k++ {
		states[k] = applyBatches(t, batches[:k])
	}
	for off := int64(0); off <= total; off++ {
		cut := copyDirTruncated(t, dir, segFile, off)
		rec, err := Open(cut, Options{NoSync: true})
		if err != nil {
			t.Fatalf("offset %d: recovery failed: %v", off, err)
		}
		wantK := 0
		for k, end := range ends {
			if off >= end {
				wantK = k + 1
			}
		}
		if got := rec.Stats().Replayed; got != uint64(wantK) {
			t.Fatalf("offset %d: replayed %d batches, want %d", off, got, wantK)
		}
		if !dbEqual(states[wantK], rec.State()) {
			t.Fatalf("offset %d: recovered state ≠ %d-batch prefix", off, wantK)
		}
		// The torn tail must be gone: the store accepts new appends and
		// they survive a further reopen.
		probe := []Mutation{Create("z", "w")}
		if err := rec.Append(probe); err != nil {
			t.Fatalf("offset %d: append after recovery: %v", off, err)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		rec2, err := Open(cut, Options{NoSync: true})
		if err != nil {
			t.Fatalf("offset %d: second recovery: %v", off, err)
		}
		if got := rec2.Stats().Replayed; got != uint64(wantK)+1 {
			t.Fatalf("offset %d: second recovery replayed %d, want %d", off, got, wantK+1)
		}
		rec2.Close()
	}
}

// FuzzWALReplay feeds arbitrary bytes as a WAL segment. Recovery must
// never panic, must yield a database consistent with some record
// prefix, and must leave the store appendable.
func FuzzWALReplay(f *testing.F) {
	// Seeds: a valid two-batch segment, a torn version of it, junk.
	valid := append([]byte(nil), walMagic...)
	valid = appendFrame(valid, appendBatch(nil, []Mutation{Create("a", "b")}))
	valid = appendFrame(valid, appendBatch(nil, []Mutation{Insert(0, 2, []relation.Tuple{{1, 2}})}))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("GYOWAL01"))
	f.Add([]byte("not a wal file"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{NoSync: true})
		if err != nil {
			return // corruption detected is a valid outcome; panics are not
		}
		if err := s.Append([]Mutation{Create("fuzz", "probe")}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		defer s2.Close()
		if _, ok := s2.State().D.U.Lookup("probe"); !ok {
			t.Fatal("appended batch lost across reopen")
		}
	})
}

func BenchmarkWALAppend(b *testing.B) {
	tuples := make([]relation.Tuple, 64)
	for i := range tuples {
		tuples[i] = relation.Tuple{relation.Value(i), relation.Value(i * 2)}
	}
	batch := []Mutation{Insert(0, 2, tuples)}
	b.Run("batch=64/nosync", func(b *testing.B) {
		s, err := Open(b.TempDir(), Options{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Append(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch=64/fsync", func(b *testing.B) {
		s, err := Open(b.TempDir(), Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Append(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}
