package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gyokit/internal/relation"
)

// genesis is the cursor a follower starts from with no snapshot: the
// first record position of the first segment.
var genesis = Cursor{Seg: 1, Off: walHeaderLen}

// drainWAL reads every acknowledged record from c to the tip,
// returning the decoded batches and the final cursor.
func drainWAL(t *testing.T, s *Store, c Cursor) ([][]Mutation, Cursor) {
	t.Helper()
	var out [][]Mutation
	for {
		win, err := s.ReadWAL(c, 1<<20)
		if err != nil {
			t.Fatalf("ReadWAL(%v): %v", c, err)
		}
		payloads, consumed := SplitFrames(win.Frames)
		if consumed != len(win.Frames) {
			t.Fatalf("ReadWAL served a torn window: %d of %d bytes frame-aligned", consumed, len(win.Frames))
		}
		for _, p := range payloads {
			muts, err := DecodeBatch(p)
			if err != nil {
				t.Fatalf("DecodeBatch: %v", err)
			}
			out = append(out, muts)
		}
		if win.Next == c { // caught up
			if win.LagBytes != 0 {
				t.Fatalf("caught up at %v but LagBytes = %d", c, win.LagBytes)
			}
			return out, c
		}
		c = win.Next
	}
}

func TestReadWALRoundTripAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	batches := manyBatches(50)
	for _, b := range batches {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Segments < 3 {
		t.Fatalf("want ≥ 3 segments for a rotation-crossing read, got %d", s.Stats().Segments)
	}

	got, end := drainWAL(t, s, genesis)
	if len(got) != len(batches) {
		t.Fatalf("drained %d batches, appended %d", len(got), len(batches))
	}
	if !dbEqual(applyBatches(t, got), applyBatches(t, batches)) {
		t.Error("state from streamed records differs from ground truth")
	}
	if tip := s.TailCursor(); end != tip {
		t.Errorf("drain ended at %v, tail is %v", end, tip)
	}

	// New appends are visible from the drained cursor.
	extra := []Mutation{Insert(0, 2, []relation.Tuple{{900, 901}})}
	if err := s.Append(extra); err != nil {
		t.Fatal(err)
	}
	more, _ := drainWAL(t, s, end)
	if len(more) != 1 || len(more[0]) != 1 || more[0][0].Kind != KindInsert {
		t.Fatalf("post-drain append not served: %v", more)
	}
}

func TestReadWALNeverSplitsFramesOrSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, b := range manyBatches(60) {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	// A tiny maxBytes still yields whole frames, one or more per window.
	c := genesis
	windows := 0
	for {
		win, err := s.ReadWAL(c, 10) // smaller than any frame
		if err != nil {
			t.Fatalf("ReadWAL(%v): %v", c, err)
		}
		if win.Next == c {
			break
		}
		if len(win.Frames) > 0 {
			if _, consumed := SplitFrames(win.Frames); consumed != len(win.Frames) {
				t.Fatalf("window at %v not frame-aligned", c)
			}
			if win.Next.Seg != c.Seg {
				t.Fatalf("window crossed a segment boundary: %v → %v", c, win.Next)
			}
		}
		c = win.Next
		windows++
	}
	if windows < 3 {
		t.Fatalf("expected many small windows, got %d", windows)
	}
}

func TestReadWALCursorGoneAndInvalid(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, b := range manyBatches(40) {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(s.State()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadWAL(genesis, 0); !errors.Is(err, ErrCursorGone) {
		t.Errorf("pre-checkpoint cursor: got %v, want ErrCursorGone", err)
	}
	tip := s.TailCursor()
	if _, err := s.ReadWAL(Cursor{Seg: tip.Seg, Off: tip.Off + 8}, 0); !errors.Is(err, ErrCursorInvalid) {
		t.Errorf("cursor past tail: got %v, want ErrCursorInvalid", err)
	}
	if _, err := s.ReadWAL(Cursor{Seg: tip.Seg + 5, Off: walHeaderLen}, 0); !errors.Is(err, ErrCursorInvalid) {
		t.Errorf("cursor in future segment: got %v, want ErrCursorInvalid", err)
	}
	// The tail cursor itself stays valid and caught-up.
	if win, err := s.ReadWAL(tip, 0); err != nil || win.Next != tip || len(win.Frames) != 0 {
		t.Errorf("tail cursor: win=%+v err=%v", win, err)
	}
}

func TestReadWALCaughtUpCursorSurvivesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, b := range manyBatches(10) {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	tip := s.TailCursor()

	// The checkpoint rotates and truncates the segment tip points into —
	// but a follower sitting exactly at the tail lost nothing, so its
	// cursor must hop across, not die with ErrCursorGone.
	if err := s.Checkpoint(s.State()); err != nil {
		t.Fatal(err)
	}
	win, err := s.ReadWAL(tip, 0)
	if err != nil {
		t.Fatalf("caught-up cursor after checkpoint: %v", err)
	}
	hop := Cursor{Seg: tip.Seg + 1, Off: walHeaderLen}
	if len(win.Frames) != 0 || win.Next != hop {
		t.Fatalf("expected rotation hop to %v, got %+v", hop, win)
	}
	// A cursor strictly inside the truncated segment is still gone.
	if _, err := s.ReadWAL(Cursor{Seg: tip.Seg, Off: tip.Off - 8}, 0); !errors.Is(err, ErrCursorGone) {
		t.Errorf("mid-segment cursor: got %v, want ErrCursorGone", err)
	}

	// The hop survives a restart (wal-trunc file): the graceful
	// shutdown sequence is checkpoint-then-exit, and replicas must
	// still resume against the reopened store.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	win, err = s.ReadWAL(tip, 0)
	if err != nil || win.Next != hop {
		t.Fatalf("hop after reopen: win=%+v err=%v", win, err)
	}
	// And the hopped-to cursor serves subsequent appends.
	if err := s.Append([]Mutation{Create("zz")}); err != nil {
		t.Fatal(err)
	}
	if batches, _ := drainWAL(t, s, hop); len(batches) != 1 || len(batches[0]) != 1 || batches[0][0].Kind != KindCreate {
		t.Fatalf("drain from hop = %+v", batches)
	}
}

func TestAppendNotifyWakesWaiters(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ch := s.AppendNotify()
	select {
	case <-ch:
		t.Fatal("notify channel closed before any append")
	default:
	}
	if err := s.Append([]Mutation{Create("a")}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("append did not signal AppendNotify")
	}
	// Rotation (BeginCheckpoint) signals too: a parked caught-up
	// follower must learn the tail moved to a fresh segment.
	ch = s.AppendNotify()
	if _, err := s.BeginCheckpoint(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("rotation did not signal AppendNotify")
	}
}

func TestCursorMarkRoundTripAndReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.ReplayedCursor(); ok {
		t.Fatal("fresh store reports a replayed cursor")
	}
	want := Cursor{Seg: 7, Off: 4242}
	batches := [][]Mutation{
		{Create("a", "b"), CursorMark(Cursor{Seg: 7, Off: 100})},
		{Insert(0, 2, []relation.Tuple{{1, 2}, {3, 4}}), CursorMark(want)},
	}
	for _, b := range batches {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok := s2.ReplayedCursor()
	if !ok || got != want {
		t.Fatalf("ReplayedCursor = %v, %v; want %v, true", got, ok, want)
	}
	// Marks are invisible to state: replay equals the mark-free history.
	clean := [][]Mutation{
		{Create("a", "b")},
		{Insert(0, 2, []relation.Tuple{{1, 2}, {3, 4}})},
	}
	if !dbEqual(applyBatches(t, clean), s2.State()) {
		t.Error("cursor marks changed replayed state")
	}
	// A checkpoint truncates the marks out of the WAL: the next open has
	// no replayed cursor (callers fall back to their sidecar state).
	if err := s2.Checkpoint(s2.State()); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if c, ok := s3.ReplayedCursor(); ok {
		t.Fatalf("post-checkpoint open still reports cursor %v", c)
	}
}

func TestStoreIDStableAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	id := s.ID()
	if id == 0 {
		t.Fatal("store ID is zero")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.ID() != id {
		t.Fatalf("store ID changed across opens: %016x → %016x", id, s2.ID())
	}
	other, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if other.ID() == id {
		t.Fatal("two fresh stores share an ID")
	}
}

func TestDirHasStore(t *testing.T) {
	dir := t.TempDir()
	if has, err := DirHasStore(dir); err != nil || has {
		t.Fatalf("empty dir: has=%v err=%v", has, err)
	}
	if has, err := DirHasStore(filepath.Join(dir, "missing")); err != nil || has {
		t.Fatalf("missing dir: has=%v err=%v", has, err)
	}
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if has, err := DirHasStore(dir); err != nil || !has {
		t.Fatalf("opened dir: has=%v err=%v", has, err)
	}
}

// bigStoreState builds a store whose database spans several full arena
// chunks (so the snapshot stream carries real chunk records) plus a
// mutable tail and a second small relation.
func bigStoreState(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]Mutation{Create("a", "b"), Create("c")}); err != nil {
		t.Fatal(err)
	}
	rows := relation.ChunkRows*2 + 137
	vals := make([]relation.Value, 0, rows*2)
	for i := 0; i < rows; i++ {
		vals = append(vals, relation.Value(i), relation.Value(i*7))
	}
	if err := s.Append([]Mutation{{Kind: KindInsert, Rel: 0, Width: 2, Values: vals}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]Mutation{Insert(1, 1, []relation.Tuple{{11}, {22}})}); err != nil {
		t.Fatal(err)
	}
	// Append only logs; reopen so replay materializes State().
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestReplSnapshotRoundTrip(t *testing.T) {
	src := t.TempDir()
	s := bigStoreState(t, src)
	defer s.Close()
	db := s.State()
	db.Freeze()

	var buf bytes.Buffer
	if err := WriteReplSnapshot(&buf, db); err != nil {
		t.Fatal(err)
	}

	dst := t.TempDir()
	if err := InstallReplSnapshot(dst, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, err := Open(dst, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open after install: %v", err)
	}
	defer got.Close()
	if !dbEqual(db, got.State()) {
		t.Error("installed snapshot state differs from source")
	}
	// The follower's WAL starts at segment 1 — its first appends land
	// where a manifest at sequence 1 expects them.
	if tip := got.TailCursor(); tip.Seg != 1 {
		t.Errorf("installed store tail at segment %d, want 1", tip.Seg)
	}
	if err := got.Append([]Mutation{Insert(1, 1, []relation.Tuple{{33}})}); err != nil {
		t.Errorf("append on installed store: %v", err)
	}
}

func TestInstallReplSnapshotRejectsTornOrCorrupt(t *testing.T) {
	src := t.TempDir()
	s := bigStoreState(t, src)
	defer s.Close()
	db := s.State()
	db.Freeze()
	var buf bytes.Buffer
	if err := WriteReplSnapshot(&buf, db); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()

	cases := map[string][]byte{
		"torn manifest":  stream[:5],
		"torn mid-chunk": stream[:len(stream)-100],
	}
	flipped := append([]byte(nil), stream...)
	flipped[len(flipped)/2] ^= 0x40
	cases["bit flip"] = flipped

	for name, data := range cases {
		dir := t.TempDir()
		if err := InstallReplSnapshot(dir, bytes.NewReader(data)); err == nil {
			t.Errorf("%s: install succeeded", name)
			continue
		}
		// A failed install leaves the directory store-free: safe to
		// re-bootstrap without operator intervention.
		if has, err := DirHasStore(dir); err != nil || has {
			t.Errorf("%s: after failed install has=%v err=%v, want store-free", name, has, err)
		}
		ents, _ := os.ReadDir(dir)
		for _, e := range ents {
			t.Errorf("%s: leftover file %s", name, e.Name())
		}
	}
}
