package storage

import (
	"bytes"
	"math/rand"
	"testing"

	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

// testDB builds a deterministic universal-relation database.
func testDB(t testing.TB, schemaText string, tuples, domain int, seed int64) *relation.Database {
	t.Helper()
	u := schema.NewUniverse()
	d := schema.MustParse(u, schemaText)
	univ, _ := relation.RandomUniversal(u, d.Attrs(), tuples, domain, rand.New(rand.NewSource(seed)))
	return relation.URDatabase(d, univ)
}

// dbEqual compares schema text and every relation state.
func dbEqual(a, b *relation.Database) bool {
	if a.D.String() != b.D.String() || len(a.Rels) != len(b.Rels) {
		return false
	}
	for i := range a.Rels {
		if a.Rels[i].Card() != b.Rels[i].Card() {
			return false
		}
		for j := 0; j < a.Rels[i].Card(); j++ {
			if !b.Rels[i].Has(a.Rels[i].TupleAt(j)) {
				return false
			}
		}
	}
	if (a.Univ == nil) != (b.Univ == nil) {
		return false
	}
	if a.Univ != nil && !sameTuples(a.Univ, b.Univ) {
		return false
	}
	return true
}

func sameTuples(a, b *relation.Relation) bool {
	if a.Card() != b.Card() {
		return false
	}
	for i := 0; i < a.Card(); i++ {
		if !b.Has(a.TupleAt(i)) {
			return false
		}
	}
	return true
}

func TestCodecDatabaseRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		schema string
		tuples int
	}{
		{"ab, bc, cd", 200},
		{"abg, bcg, acf, ad, de, ea", 100},
		{"user id, id name", 50},
		{"ab", 0},
	} {
		db := testDB(t, tc.schema, tc.tuples, 16, 1)
		enc := appendDatabase(nil, db)
		got, err := decodeDatabase(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.schema, err)
		}
		if !dbEqual(db, got) {
			t.Errorf("%s: round trip changed the database", tc.schema)
		}
		// Ids must survive: re-encoding the decoded database is
		// byte-identical.
		if !bytes.Equal(enc, appendDatabase(nil, got)) {
			t.Errorf("%s: re-encode differs", tc.schema)
		}
	}
}

func TestCodecNoUniv(t *testing.T) {
	db := testDB(t, "ab, bc", 50, 8, 2)
	db.Univ = nil
	got, err := decodeDatabase(appendDatabase(nil, db))
	if err != nil {
		t.Fatal(err)
	}
	if got.Univ != nil || !dbEqual(db, got) {
		t.Error("univ-less round trip failed")
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	db := testDB(t, "ab, bc, cd", 100, 8, 3)
	enc := appendDatabase(nil, db)
	// Truncation at any offset must error, never panic.
	for off := 0; off < len(enc); off++ {
		if _, err := decodeDatabase(enc[:off]); err == nil {
			t.Fatalf("truncation at %d accepted", off)
		}
	}
	// Trailing junk must be rejected too.
	if _, err := decodeDatabase(append(append([]byte(nil), enc...), 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	muts := []Mutation{
		Create("a", "b"),
		Create("b", "c"),
		Insert(0, 2, []relation.Tuple{{1, 2}, {3, 4}}),
		Delete(0, 2, []relation.Tuple{{1, 2}}),
		Insert(1, 2, []relation.Tuple{{5, 6}}),
		Drop(1),
	}
	enc := appendBatch(nil, muts)
	got, err := decodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(muts) {
		t.Fatalf("decoded %d mutations, want %d", len(got), len(muts))
	}
	if !bytes.Equal(enc, appendBatch(nil, got)) {
		t.Error("batch re-encode differs")
	}
	for off := 0; off < len(enc); off++ {
		if _, err := decodeBatch(enc[:off]); err == nil {
			t.Fatalf("batch truncation at %d accepted", off)
		}
	}
}

// FuzzCodec drives the database decoder with arbitrary bytes. A decode
// that succeeds must round-trip byte-identically (the encoding is
// canonical); a decode that fails must fail cleanly, never panic or
// over-allocate.
func FuzzCodec(f *testing.F) {
	f.Add(appendDatabase(nil, testDB(f, "ab, bc, cd", 20, 8, 1)))
	f.Add(appendDatabase(nil, testDB(f, "user id, id name", 5, 4, 2)))
	empty := &relation.Database{D: schema.New(schema.NewUniverse())}
	f.Add(appendDatabase(nil, empty))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := decodeDatabase(data)
		if err != nil {
			return
		}
		enc := appendDatabase(nil, db)
		db2, err := decodeDatabase(enc)
		if err != nil {
			t.Fatalf("re-decode of valid database failed: %v", err)
		}
		if !bytes.Equal(enc, appendDatabase(nil, db2)) {
			t.Fatal("decode→encode is not a fixed point")
		}
	})
}

func BenchmarkCodecDatabase(b *testing.B) {
	db := testDB(b, "ab, bc, cd, de", 10000, 64, 1)
	enc := appendDatabase(nil, db)
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			appendDatabase(enc[:0], db)
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := decodeDatabase(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}
