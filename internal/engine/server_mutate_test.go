package engine

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"gyokit/internal/storage"
)

// durableServer boots a durable engine in dir, seeds schema "ab, bc"
// through the WAL, and serves it. The store fsyncs, so mutation
// responses carry durable:true.
func durableServer(t *testing.T, dir string) (*httptest.Server, *Server) {
	t.Helper()
	st, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	e := New(Options{Store: st})
	if st.Empty() {
		if _, _, err := e.Apply(storage.Create("a", "b"), storage.Create("b", "c")); err != nil {
			t.Fatal(err)
		}
	}
	db := e.Snapshot()
	srv := NewServer(e, db.D.U, db.D)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func TestServerInsertDelete(t *testing.T) {
	ts, srv := durableServer(t, t.TempDir())

	var ins MutateResponse
	post(t, ts.URL+"/insert", `{"rel": "ab", "tuples": [[1,2],[3,4],[1,2]]}`, &ins)
	if ins.Requested != 3 || ins.Applied != 2 || ins.Card != 2 || !ins.Durable {
		t.Fatalf("/insert = %+v", ins)
	}
	if !srv.E.Snapshot().Rels[0].Has([]int32{1, 2}) {
		t.Fatal("insert not visible in snapshot")
	}

	var del MutateResponse
	post(t, ts.URL+"/delete", `{"rel": "ab", "tuples": [[3,4],[9,9]]}`, &del)
	if del.Applied != 1 || del.Card != 1 {
		t.Fatalf("/delete = %+v", del)
	}

	// Explicit index targeting: valid index works, mismatched or
	// out-of-range index is rejected.
	var byIdx MutateResponse
	post(t, ts.URL+"/insert", `{"rel": "ab", "index": 0, "tuples": [[40,41]]}`, &byIdx)
	if byIdx.Applied != 1 {
		t.Fatalf("/insert with index = %+v", byIdx)
	}
	post(t, ts.URL+"/delete", `{"rel": "ab", "tuples": [[40,41]]}`, nil)

	// Bad requests: unknown relation, unknown attribute, wrong arity,
	// empty batch, index/schema mismatch, index out of range — all
	// 400, none applied.
	for _, body := range []string{
		`{"rel": "zz", "tuples": [[1,2]]}`,
		`{"rel": "ad", "tuples": [[1,2]]}`,
		`{"rel": "ab", "tuples": [[1,2,3]]}`,
		`{"rel": "ab", "tuples": []}`,
		`{"tuples": [[1,2]]}`,
		`{"rel": "ab", "index": 1, "tuples": [[1,2]]}`,
		`{"rel": "ab", "index": 7, "tuples": [[1,2]]}`,
	} {
		resp := post(t, ts.URL+"/insert", body, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("insert %s → %d, want 400", body, resp.StatusCode)
		}
	}
	if got := srv.E.Snapshot().Rels[0].Card(); got != 1 {
		t.Errorf("card after rejected requests = %d, want 1", got)
	}
}

func TestServerLoadAtomic(t *testing.T) {
	ts, srv := durableServer(t, t.TempDir())

	var load LoadResponse
	post(t, ts.URL+"/load", `{"relations": [
		{"rel": "ab", "tuples": [[1,2],[3,4]]},
		{"rel": "bc", "tuples": [[2,5]]}
	]}`, &load)
	if len(load.Relations) != 2 || !load.Durable {
		t.Fatalf("/load = %+v", load)
	}
	if load.Relations[0].Applied != 2 || load.Relations[1].Applied != 1 {
		t.Fatalf("/load applied = %+v", load.Relations)
	}

	// One bad element rejects the whole batch: atomicity.
	before := srv.E.Snapshot()
	resp := post(t, ts.URL+"/load", `{"relations": [
		{"rel": "ab", "tuples": [[7,8]]},
		{"rel": "nope", "tuples": [[1,2]]}
	]}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/load with bad element → %d, want 400", resp.StatusCode)
	}
	if srv.E.Snapshot() != before {
		t.Error("rejected /load changed the snapshot")
	}
	resp = post(t, ts.URL+"/load", `{"relations": []}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty /load → %d, want 400", resp.StatusCode)
	}
}

func TestServerMutateSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	ts, srv := durableServer(t, dir)
	post(t, ts.URL+"/insert", `{"rel": "ab", "tuples": [[10,20],[30,40]]}`, nil)
	post(t, ts.URL+"/delete", `{"rel": "ab", "tuples": [[30,40]]}`, nil)
	want := srv.E.Snapshot()
	srv.E.Store().Close()
	ts.Close()

	ts2, srv2 := durableServer(t, dir)
	defer ts2.Close()
	if !snapshotsEqual(want, srv2.E.Snapshot()) {
		t.Fatal("reopened server snapshot differs")
	}
}

func TestServerStatsDurability(t *testing.T) {
	ts, _ := durableServer(t, t.TempDir())
	post(t, ts.URL+"/insert", `{"rel": "ab", "tuples": [[1,2]]}`, nil)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Relations) != 2 {
		t.Fatalf("stats relations = %+v", st.Relations)
	}
	if st.Relations[0].Rel != "ab" || st.Relations[0].Card != 1 || st.Relations[0].ArenaBytes != 8 {
		t.Errorf("relation[0] stats = %+v", st.Relations[0])
	}
	if st.ArenaBytes != 8 {
		t.Errorf("total arena bytes = %d, want 8", st.ArenaBytes)
	}
	if st.Durability == nil {
		t.Fatal("durability section missing")
	}
	if st.Durability.Appends != 2 || st.Durability.WALBytes == 0 || st.Durability.WALSegments != 1 {
		t.Errorf("durability = %+v", st.Durability)
	}
	if st.Durability.LastCheckpointAgeMs != -1 {
		t.Errorf("checkpoint age = %d before any checkpoint", st.Durability.LastCheckpointAgeMs)
	}
}

// TestServerStatsInMemory: the per-relation section works without
// storage, and the durability section is absent.
func TestServerStatsInMemory(t *testing.T) {
	ts, _, _ := testServer(t)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	raw, st := map[string]json.RawMessage{}, StatsResponse{}
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["durability"]; ok {
		t.Error("in-memory /stats has a durability section")
	}
	if len(st.Relations) != 3 || st.ArenaBytes == 0 {
		t.Errorf("in-memory /stats relations = %+v, arenaBytes = %d", st.Relations, st.ArenaBytes)
	}
}
