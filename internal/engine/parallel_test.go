package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

// newTestHTTPServer wraps srv in an httptest server torn down with t.
func newTestHTTPServer(t *testing.T, srv *Server) string {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestSolveParMatchesSerial: the parallel serving path must return
// exactly the serial result at every parallelism level, including
// levels above the engine's worker cap (clamped) and below 1
// (serial).
func TestSolveParMatchesSerial(t *testing.T) {
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc, cd, de")
	x := u.Set("a", "e")
	e := New(Options{Workers: 4})
	e.Swap(urdb(d, 9, 400, 8))

	want, _, err := e.Solve(d, x)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{-1, 0, 1, 2, 4, 64} {
		got, st, err := e.SolvePar(d, x, par)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !got.Equal(want) {
			t.Fatalf("parallelism %d: result differs from serial", par)
		}
		if par <= 1 && st.ParallelStmts != 0 {
			t.Fatalf("parallelism %d: %d statements fanned out on the serial path", par, st.ParallelStmts)
		}
	}
	if e.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", e.Workers())
	}
	if got := e.ClampParallelism(64); got != 4 {
		t.Fatalf("ClampParallelism(64) = %d, want 4", got)
	}
	if got := e.ClampParallelism(-3); got != 1 {
		t.Fatalf("ClampParallelism(-3) = %d, want 1", got)
	}
}

// TestSolveParCountsAndPlanCache: parallel solves share the plan cache
// with serial solves (one miss total) and bump the ParEvals counter
// only when the request actually fans out.
func TestSolveParCountsAndPlanCache(t *testing.T) {
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc, cd")
	x := u.Set("a", "d")
	e := New(Options{Workers: 4})
	e.Swap(urdb(d, 3, 6000, 6))

	if _, _, err := e.Solve(d, x); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.SolvePar(d, x, 4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.SolvePar(d, x, 1); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.PlanMisses != 1 {
		t.Fatalf("plan misses = %d, want 1 (parallel path must reuse the cached plan)", st.PlanMisses)
	}
	if st.Evals != 3 {
		t.Fatalf("evals = %d, want 3", st.Evals)
	}
	if st.ParEvals != 1 {
		t.Fatalf("parEvals = %d, want 1", st.ParEvals)
	}
}

// TestServerSolveParallelism: the HTTP parallelism knob reaches the
// engine, is clamped to the worker cap, and reports what it used.
func TestServerSolveParallelism(t *testing.T) {
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc, cd")
	e := New(Options{Workers: 4})
	e.Swap(urdb(d, 5, 5000, 6))
	srv := NewServer(e, u, d)
	ts := newTestHTTPServer(t, srv)

	var serial, par SolveResponse
	post(t, ts+"/solve", `{"x": "ad"}`, &serial)
	post(t, ts+"/solve", `{"x": "ad", "parallelism": 64}`, &par)
	if serial.Stats.Parallelism != 1 {
		t.Fatalf("serial request reports parallelism %d", serial.Stats.Parallelism)
	}
	if par.Stats.Parallelism != 4 {
		t.Fatalf("parallel request reports parallelism %d, want clamped 4", par.Stats.Parallelism)
	}
	if serial.Card != par.Card {
		t.Fatalf("parallel solve returned %d tuples, serial %d", par.Card, serial.Card)
	}
	var st StatsResponse
	resp, err := http.Get(ts + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 4 {
		t.Fatalf("/stats workers = %d, want 4", st.Workers)
	}
	if st.ParEvals == 0 {
		t.Fatal("/stats parEvals = 0 after a parallel solve")
	}
}

// TestConcurrentMixedParallelismSolves is the -race stress test for
// the parallel serving path: N goroutines issue /solve requests over
// HTTP with mixed parallelism (serial, capped, over-cap) while a live
// writer keeps publishing new snapshots through Engine.Update. Every
// request must succeed; the race detector polices the sharing.
func TestConcurrentMixedParallelismSolves(t *testing.T) {
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc, cd, de")
	e := New(Options{Workers: 4})
	e.Swap(urdb(d, 11, 2000, 8))
	srv := NewServer(e, u, d)
	ts := newTestHTTPServer(t, srv)

	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		val := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			e.Update(func(snap *relation.Database) *relation.Database {
				val++
				ri := val % len(snap.Rels)
				tup := make(relation.Tuple, len(snap.Rels[ri].Cols()))
				for k := range tup {
					tup[k] = relation.Value((val + k) % 8)
				}
				return snap.InsertTuple(ri, tup)
			})
		}
	}()

	targets := []string{"ae", "ad", "be", "ce"}
	parallelisms := []int{0, 1, 2, 4, 16}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				body := fmt.Sprintf(`{"x": %q, "parallelism": %d}`,
					targets[(g+i)%len(targets)], parallelisms[(g*7+i)%len(parallelisms)])
				resp, err := http.Post(ts+"/solve", "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("goroutine %d: /solve status %d for %s", g, resp.StatusCode, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	writerWG.Wait()
}
