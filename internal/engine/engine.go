// Package engine is the concurrent query-serving layer on top of the
// paper's machinery: it separates planning (GYO reduction, tableau
// minimization, full-reducer/Yannakakis construction — the expensive,
// data-independent part) from execution (running the compiled program
// against a database state), and amortizes both across requests.
//
// Three mechanisms carry the load:
//
//   - a plan cache: an LRU keyed by (schema fingerprint, target-set
//     fingerprint) holding the §3 Classification together with the
//     compiled §4/§6 Program, so a repeated query skips classification
//     and planning entirely;
//   - an Exec pool: a sync.Pool of relation.Exec contexts, so
//     concurrent evaluations reuse join hash tables and scratch
//     buffers without contending on a lock;
//   - database snapshots: the engine serves reads from an immutable
//     (frozen) relation.Database held in an atomic pointer; writers
//     derive new snapshots copy-on-write and publish them with Update
//     (serialized read-modify-write) or Swap (blind store), so readers
//     never block and never observe a half-written state.
//
// An Engine is safe for concurrent use by any number of goroutines.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gyokit/internal/core"
	"gyokit/internal/cq"
	"gyokit/internal/obs"
	"gyokit/internal/program"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
	"gyokit/internal/storage"
)

// DefaultPlanCacheSize is the plan-cache capacity used when Options
// leaves PlanCacheSize at zero.
const DefaultPlanCacheSize = 256

// Options configures an Engine.
type Options struct {
	// PlanCacheSize is the LRU capacity in plans. Zero means
	// DefaultPlanCacheSize; negative disables caching (every query is
	// classified and planned from scratch — the cold baseline).
	PlanCacheSize int
	// Workers caps per-request partition parallelism: SolvePar clamps
	// the requested shard count to this. Zero means GOMAXPROCS; one
	// makes every request serial.
	Workers int
	// Store, when non-nil, makes the engine durable: the store's
	// recovered database is installed as the first snapshot, Apply
	// appends every mutation batch to the write-ahead log (fsynced)
	// before publishing it, and a background checkpoint is taken off
	// the latest frozen snapshot whenever the live WAL outgrows the
	// store's threshold. With a Store configured, all writes must go
	// through Apply — Swap and Update still publish, but what they
	// publish is not logged and would diverge from disk.
	Store *storage.Store
	// Logf, when non-nil, receives operational log lines the engine has
	// no other way to surface — today that is background checkpoint
	// failures, which would otherwise only land in the store's stats.
	// log.Printf fits directly; nil makes engine logging a no-op.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, is the observability registry the engine
	// registers its instruments in (solve latency histograms, plan-cache
	// counters, apply histograms, snapshot gauges). Registries reject
	// duplicate series, so each registry serves at most one engine; share
	// one registry between an engine and its storage.Options.Metrics to
	// get a single /metrics page. Nil means the engine creates a private
	// registry, reachable via Engine.Metrics — instrumentation is always
	// on (its cost is a few atomic ops per operation).
	Metrics *obs.Registry
}

// Plan is a cache-resident compiled query: the classification of the
// schema plus the program solving (D, X). Plans are immutable once
// built and may be shared by concurrent evaluations.
type Plan struct {
	// D is the schema the program's relation ids — and the positional
	// parts of Cls, such as QualTree edges — refer to; evaluation
	// aligns the database to this relation order.
	D *schema.Schema
	// X is the query target.
	X schema.AttrSet
	// Cls is the §3 classification of D.
	Cls *core.Classification
	// Prog solves (D, X): Yannakakis on tree schemas, the §4 cyclic
	// strategy otherwise.
	Prog *program.Program
	// CQ, when non-nil, marks the plan as a prepared conjunctive query
	// (built by PrepareQuery): D and X are over the query's variable
	// universe, and evaluation binds the atoms to stored relations by
	// name at solve time (SolveQuery).
	CQ *cq.Compiled
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	PlanHits    uint64 // cache hits (classification or plan)
	PlanMisses  uint64 // cache misses compiled from scratch
	Evictions   uint64 // plans pushed out of the LRU by newer entries
	CachedPlans int    // entries currently resident
	Evals       uint64 // completed Solve/SolveOn/SolvePar calls
	ParEvals    uint64 // the subset that ran partition-parallel
}

// Engine is a concurrency-safe query-serving engine.
type Engine struct {
	mu    sync.Mutex // guards cache
	cache *lruCache  // nil when caching is disabled

	hits, misses, evals atomic.Uint64
	parEvals, evictions atomic.Uint64

	reg *obs.Registry // never nil; Options.Metrics or a private one
	m   engineMetrics

	workers int       // max shards per request (≥ 1)
	execs   sync.Pool // *relation.Exec
	pexecs  sync.Pool // *relation.ParExec

	wmu sync.Mutex                        // serializes snapshot writers (Swap/Update/Apply)
	db  atomic.Pointer[relation.Database] // current frozen snapshot

	// readOnly rejects external Apply calls while the engine is a
	// replication follower; ApplyReplica (the tailer's path) and
	// promotion-time SetReadOnly(false) are the only ways around it.
	readOnly atomic.Bool

	store *storage.Store // nil for a purely in-memory engine
	logf  func(format string, args ...any)
	// ckptMu is held for the whole duration of any checkpoint write —
	// background (TryLock; at most one in flight, never blocking the
	// Apply path) or synchronous (Lock; concurrent Checkpoint callers
	// queue on the mutex instead of spinning on a busy flag).
	ckptMu sync.Mutex
	ckptWG sync.WaitGroup // outstanding background checkpoints
}

// New returns an Engine with the given options.
func New(opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		workers: workers,
		execs:   sync.Pool{New: func() any { return relation.NewExec() }},
	}
	e.pexecs = sync.Pool{New: func() any { return relation.NewParExec(workers) }}
	size := opts.PlanCacheSize
	if size == 0 {
		size = DefaultPlanCacheSize
	}
	if size > 0 {
		e.cache = newLRUCache(size)
	}
	e.reg = opts.Metrics
	if e.reg == nil {
		e.reg = obs.NewRegistry()
	}
	e.m = newEngineMetrics(e.reg)
	e.registerGauges(e.reg)
	e.logf = opts.Logf
	if opts.Store != nil {
		e.store = opts.Store
		// Install the recovered state as the first snapshot: a durable
		// engine starts serving exactly what the directory holds (an
		// empty-schema database for a fresh store).
		if db := e.store.State(); db != nil {
			db.Freeze()
			e.db.Store(db)
			e.store.Detach()
		}
	}
	return e
}

// classifyFP is the target-fingerprint slot used for classification-only
// cache entries (a real target hashes through fpMix and collides with
// this reserved value only with probability 2⁻⁶⁴ — and a collision is
// caught by the entry verification, not served).
const classifyFP = ^uint64(0)

// lookup returns the cached plan for key if present and verified
// against (d, x). Verification compares the actual schema (and target)
// rather than trusting the 128-bit key, so fingerprint collisions —
// including schemas with the same attribute names interned in different
// orders — degrade to cache misses, never to wrong answers.
func (e *Engine) lookup(key cacheKey, d *schema.Schema, x schema.AttrSet, wantProg bool) *Plan {
	if e.cache == nil {
		return nil
	}
	e.mu.Lock()
	pl, ok := e.cache.get(key)
	e.mu.Unlock()
	if !ok || !pl.D.MultisetEqual(d) {
		return nil
	}
	if wantProg && !pl.X.Equal(x) {
		return nil
	}
	// Across distinct universes, equal bitsets can still assign ids to
	// names differently (e.g. "ab, cd" interned a,b,c,d vs "cd, ab"
	// interned c,d,a,b produce the same bitset multiset); such a hit
	// would format and report the cached plan under the wrong names, so
	// require the id→name maps to agree over U(D).
	if pl.D.U != d.U {
		same := true
		pl.D.Attrs().ForEach(func(a schema.Attr) bool {
			if pl.D.U.Name(a) != d.U.Name(a) {
				same = false
			}
			return same
		})
		if !same {
			return nil
		}
	}
	return pl
}

func (e *Engine) storePlan(key cacheKey, pl *Plan) {
	if e.cache == nil {
		return
	}
	e.mu.Lock()
	evicted := e.cache.put(key, pl)
	e.mu.Unlock()
	if evicted > 0 {
		e.evictions.Add(uint64(evicted))
		e.m.planEvictions.Add(uint64(evicted))
	}
}

// Classify returns the §3 classification of d, from cache when the
// schema has been seen before in the same relation order. Unlike Plan
// — whose evaluation realigns databases to the cached relation order —
// Classify hands the Classification straight back to the caller, and
// its QualTree edges are positional (relation indexes), so a hit is
// only valid when the cached order matches d's exactly; permutations
// of a cached schema reclassify.
func (e *Engine) Classify(d *schema.Schema) (*core.Classification, error) {
	// Order-sensitive fingerprint: each relation ordering gets its own
	// classification entry instead of thrashing one shared slot.
	key := cacheKey{schemaFP: d.OrderedFingerprint(), targetFP: classifyFP}
	if pl := e.lookup(key, d, schema.AttrSet{}, false); pl != nil && sameOrder(pl.D, d) {
		e.hits.Add(1)
		e.m.planHits.Inc()
		return pl.Cls, nil
	}
	e.misses.Add(1)
	e.m.planMisses.Inc()
	cls, err := core.Classify(d)
	if err != nil {
		return nil, err
	}
	e.storePlan(key, &Plan{D: d.Clone(), Cls: cls})
	return cls, nil
}

// Plan returns the compiled plan for the query (d, x), from cache when
// the same (schema, target) pair — compared by fingerprint, verified
// structurally — has been planned before.
func (e *Engine) Plan(d *schema.Schema, x schema.AttrSet) (*Plan, error) {
	pl, _, err := e.plan(d, x)
	return pl, err
}

// plan is Plan plus a cache-outcome flag, so solve paths can label
// their latency observations hit vs miss.
func (e *Engine) plan(d *schema.Schema, x schema.AttrSet) (*Plan, bool, error) {
	fp, xfp := d.QueryFingerprint(x)
	key := cacheKey{schemaFP: fp, targetFP: xfp}
	if pl := e.lookup(key, d, x, true); pl != nil {
		e.hits.Add(1)
		e.m.planHits.Inc()
		return pl, true, nil
	}
	e.misses.Add(1)
	e.m.planMisses.Inc()
	cls, prog, err := core.Prepare(d, x)
	if err != nil {
		return nil, false, err
	}
	pl := &Plan{D: d.Clone(), X: x.Clone(), Cls: cls, Prog: prog}
	e.storePlan(key, pl)
	// Seed the classification-only slot too: a later Classify of the
	// same schema (in this order) should not redo the GYO work the plan
	// already paid for.
	e.storePlan(cacheKey{schemaFP: d.OrderedFingerprint(), targetFP: classifyFP}, pl)
	return pl, false, nil
}

// Swap freezes db and atomically publishes it as the engine's current
// snapshot, returning the previous snapshot (nil on first install).
// In-flight evaluations keep the snapshot they started with.
//
// Swap is a blind store: concurrent Swaps are last-writer-wins, and a
// Snapshot→modify→Swap sequence racing another writer loses that
// writer's changes. Multiple writers deriving from the current state
// must use Update instead.
func (e *Engine) Swap(db *relation.Database) *relation.Database {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	db.Freeze()
	return e.db.Swap(db)
}

// Update atomically derives and publishes a new snapshot: fn receives
// the current snapshot (nil before the first install) and returns the
// database to publish, typically via the copy-on-write Database
// methods. Writers are serialized, so concurrent Updates never lose
// each other's changes; readers stay on the old snapshot, unblocked,
// until the new one lands. Returning fn's argument unchanged
// republishes it (a no-op for readers).
func (e *Engine) Update(fn func(*relation.Database) *relation.Database) *relation.Database {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	db := fn(e.db.Load())
	db.Freeze()
	e.db.Store(db)
	return db
}

// Snapshot returns the current database snapshot (nil before the first
// Swap). The snapshot is frozen; derive modified states with the
// copy-on-write Database methods and publish them with Swap.
func (e *Engine) Snapshot() *relation.Database { return e.db.Load() }

// Store returns the engine's durability store, or nil for a purely
// in-memory engine.
func (e *Engine) Store() *storage.Store { return e.store }

// Durable reports whether acknowledged Apply calls survive a crash: a
// store must be configured and fsyncing (a NoSync store survives a
// process kill but not power loss, so it does not get to claim
// durability to clients).
func (e *Engine) Durable() bool { return e.store != nil && e.store.Synced() }

// ErrDurability marks Apply failures on the storage side of the write
// path (the mutation was valid but could not be made durable), so
// callers can report a server fault rather than a bad request.
var ErrDurability = errors.New("engine: durability failure")

// ErrReadOnly rejects writes on a replication follower: the write
// belongs on the leader, and the server layer translates this into a
// 409 leader-redirect envelope.
var ErrReadOnly = errors.New("engine: read-only replica")

// SetReadOnly flips the engine's external write gate. A replication
// follower runs read-only until promoted; reads and the replica apply
// path are unaffected.
func (e *Engine) SetReadOnly(v bool) { e.readOnly.Store(v) }

// ReadOnly reports whether external writes are currently rejected.
func (e *Engine) ReadOnly() bool { return e.readOnly.Load() }

// Apply is the engine's logical write path: it applies the mutation
// batch copy-on-write to the current snapshot, appends the whole batch
// to the write-ahead log as one atomic fsynced record (when a Store is
// configured), and only then publishes the new snapshot — so by the
// time Apply returns, the mutation is both visible to readers and
// durable. The batch is all-or-nothing: a validation error leaves both
// the snapshot and the log untouched. counts reports, per mutation,
// the tuples actually inserted or deleted (set semantics make both
// idempotent).
//
// Writers are serialized with Update/Swap; readers stay on the old
// snapshot, unblocked, until the new one lands.
func (e *Engine) Apply(muts ...storage.Mutation) (db *relation.Database, counts []int, err error) {
	if e.readOnly.Load() {
		return nil, nil, ErrReadOnly
	}
	return e.applyBatch(muts, true)
}

// ApplyReplica is the replication tailer's write path: identical to
// Apply — the batch lands in this follower's own WAL before the
// snapshot publishes, so the follower can itself recover or be
// promoted — except that it bypasses the read-only gate and never
// triggers a background checkpoint (the tailer checkpoints
// synchronously, after persisting its cursor sidecar, so a checkpoint
// can never truncate a cursor mark the sidecar has not caught up to).
func (e *Engine) ApplyReplica(muts ...storage.Mutation) (db *relation.Database, counts []int, err error) {
	return e.applyBatch(muts, false)
}

func (e *Engine) applyBatch(muts []storage.Mutation, autoCkpt bool) (db *relation.Database, counts []int, err error) {
	t0 := time.Now()
	e.wmu.Lock()
	defer e.wmu.Unlock()
	cur := e.db.Load()
	if cur == nil {
		return nil, nil, fmt.Errorf("engine: no database snapshot installed (call Swap first)")
	}
	next, counts, err := storage.ApplyAll(cur, muts)
	if err != nil {
		return nil, nil, err
	}
	if e.store != nil {
		// Append-then-publish: if the log write fails the snapshot is
		// not published, so nothing unacknowledged becomes visible.
		if err := e.store.Append(muts); err != nil {
			return nil, nil, fmt.Errorf("%w: WAL append: %v", ErrDurability, err)
		}
	}
	next.Freeze()
	e.db.Store(next)
	if autoCkpt {
		e.maybeCheckpointLocked(next)
	}
	e.m.applySec.Observe(time.Since(t0).Seconds())
	tuples := 0
	for _, m := range muts {
		if m.Width > 0 {
			tuples += len(m.Values) / m.Width
		}
	}
	e.m.applyBatchTuples.Observe(float64(tuples))
	return next, counts, nil
}

// maybeCheckpointLocked starts a background checkpoint when the live
// WAL has outgrown the store's threshold and no checkpoint is already
// in flight. Caller holds wmu, so the snapshot reflects every record
// appended so far — exactly the consistency BeginCheckpoint requires.
// The expensive snapshot encode and file write run off the writer
// lock, against the frozen snapshot, so neither readers nor writers
// block; failures are recorded in the store's stats and retried on a
// later trigger.
func (e *Engine) maybeCheckpointLocked(db *relation.Database) {
	if e.store == nil || !e.store.ShouldCheckpoint() || !e.ckptMu.TryLock() {
		return
	}
	e.ckptWG.Add(1)
	seq, err := e.store.BeginCheckpoint()
	if err != nil {
		e.ckptWG.Done()
		e.ckptMu.Unlock()
		return
	}
	go func() {
		defer e.ckptWG.Done()
		defer e.ckptMu.Unlock()
		// The error also lands in the store's stats (and is cleared by
		// the next successful checkpoint); logging it here is the only
		// push-style signal a fire-and-forget background write gets.
		if err := e.store.WriteCheckpoint(seq, db); err != nil && e.logf != nil {
			e.logf("engine: background checkpoint (seq %d) failed: %v", seq, err)
		}
	}()
}

// Checkpoint synchronously checkpoints the current snapshot. It holds
// the same checkpoint mutex the background writer uses, so it blocks
// (without spinning) until any in-flight checkpoint finishes, and when
// it returns no checkpoint write is outstanding — safe to Close the
// store right after. Concurrent Checkpoint calls serialize on the
// mutex. It is a no-op without a Store. Use it at shutdown so the next
// Open replays a short WAL tail.
func (e *Engine) Checkpoint() error {
	if e.store == nil {
		return nil
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	e.wmu.Lock()
	db := e.db.Load()
	dirty := e.store.Dirty()
	var seq uint64
	var err error
	if dirty {
		seq, err = e.store.BeginCheckpoint()
	}
	e.wmu.Unlock()
	if !dirty {
		// Every record is already covered by a checkpoint: re-encoding
		// the whole snapshot would cost a full write for zero recovery
		// gain (a restart loop on a large store would otherwise churn
		// gigabytes per cycle).
		return nil
	}
	if err != nil {
		return err
	}
	if db == nil {
		return nil
	}
	return e.store.WriteCheckpoint(seq, db)
}

// ReplSnapshot returns the current snapshot paired with the store's
// WAL tail cursor, captured atomically under the writer lock: the
// snapshot reflects exactly the records below the cursor, which is the
// consistency a replication initial sync needs (stream the snapshot,
// then records from the cursor, and nothing is duplicated or lost).
func (e *Engine) ReplSnapshot() (*relation.Database, storage.Cursor, error) {
	if e.store == nil {
		return nil, storage.Cursor{}, fmt.Errorf("engine: replication requires a durable store")
	}
	e.wmu.Lock()
	defer e.wmu.Unlock()
	db := e.db.Load()
	if db == nil {
		return nil, storage.Cursor{}, fmt.Errorf("engine: no database snapshot installed")
	}
	return db, e.store.TailCursor(), nil
}

// Solve evaluates the query (d, x) against the current snapshot.
func (e *Engine) Solve(d *schema.Schema, x schema.AttrSet) (*relation.Relation, *program.Stats, error) {
	db := e.db.Load()
	if db == nil {
		return nil, nil, fmt.Errorf("engine: no database snapshot installed (call Swap first)")
	}
	return e.SolveOn(db, d, x)
}

// SolveOn evaluates the query (d, x) against an explicit database
// state, using the plan cache and the Exec pool. db is never mutated.
func (e *Engine) SolveOn(db *relation.Database, d *schema.Schema, x schema.AttrSet) (*relation.Relation, *program.Stats, error) {
	t0 := time.Now()
	pl, hit, err := e.plan(d, x)
	if err != nil {
		return nil, nil, err
	}
	adb, err := alignDatabase(pl.D, db)
	if err != nil {
		return nil, nil, err
	}
	ex := e.execs.Get().(*relation.Exec)
	defer e.execs.Put(ex)
	out, st, err := pl.Prog.EvalExec(adb, ex)
	if err == nil {
		e.evals.Add(1)
		e.m.solveHist(hit, false).Observe(time.Since(t0).Seconds())
	}
	return out, st, err
}

// Workers returns the engine's per-request parallelism cap.
func (e *Engine) Workers() int { return e.workers }

// ClampParallelism maps a requested per-request shard count into the
// engine's supported range [1, Workers]: zero and negative requests
// mean "serial".
func (e *Engine) ClampParallelism(p int) int {
	if p < 1 {
		return 1
	}
	if p > e.workers {
		return e.workers
	}
	return p
}

// SolvePar evaluates the query (d, x) against the current snapshot
// with partition parallelism: join and semijoin statements fan out
// across up to parallelism hash-partitioned shards (clamped to the
// engine's Workers cap; ≤ 1 is the serial path). The plan cache is
// shared with the serial path — parallelism changes how a plan is
// executed, never which plan is built.
func (e *Engine) SolvePar(d *schema.Schema, x schema.AttrSet, parallelism int) (*relation.Relation, *program.Stats, error) {
	db := e.db.Load()
	if db == nil {
		return nil, nil, fmt.Errorf("engine: no database snapshot installed (call Swap first)")
	}
	return e.SolveOnPar(db, d, x, parallelism)
}

// SolveOnPar is SolvePar against an explicit database state. db is
// never mutated.
func (e *Engine) SolveOnPar(db *relation.Database, d *schema.Schema, x schema.AttrSet, parallelism int) (*relation.Relation, *program.Stats, error) {
	parallelism = e.ClampParallelism(parallelism)
	if parallelism <= 1 {
		return e.SolveOn(db, d, x)
	}
	t0 := time.Now()
	pl, hit, err := e.plan(d, x)
	if err != nil {
		return nil, nil, err
	}
	adb, err := alignDatabase(pl.D, db)
	if err != nil {
		return nil, nil, err
	}
	pe := e.pexecs.Get().(*relation.ParExec)
	pe.Resize(parallelism)
	defer e.pexecs.Put(pe)
	out, st, err := pl.Prog.EvalPar(adb, pe)
	if err == nil {
		e.evals.Add(1)
		e.parEvals.Add(1)
		e.m.solveHist(hit, true).Observe(time.Since(t0).Seconds())
		e.m.repartitions.Add(uint64(st.Repartitions))
		e.m.repartitionBytes.Add(uint64(st.RepartitionBytes))
	}
	return out, st, err
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		PlanHits:   e.hits.Load(),
		PlanMisses: e.misses.Load(),
		Evictions:  e.evictions.Load(),
		Evals:      e.evals.Load(),
		ParEvals:   e.parEvals.Load(),
	}
	if e.cache != nil {
		e.mu.Lock()
		s.CachedPlans = e.cache.len()
		e.mu.Unlock()
	}
	return s
}

// sameOrder reports whether d and e list identical relation schemas at
// identical positions.
func sameOrder(d, e *schema.Schema) bool {
	if len(d.Rels) != len(e.Rels) {
		return false
	}
	for i := range d.Rels {
		if !d.Rels[i].Equal(e.Rels[i]) {
			return false
		}
	}
	return true
}

// alignDatabase returns a view of db whose relation order matches d (a
// multiset-equal schema, possibly with its relations permuted — the
// plan cache hits across orderings, but program statement ids are
// positional). Equal relation schemas keep their relative order, so
// duplicate-schema relations map to the states at the matching
// positions. When db is already aligned it is returned as-is.
func alignDatabase(d *schema.Schema, db *relation.Database) (*relation.Database, error) {
	if db.D == d {
		return db, nil
	}
	if len(db.D.Rels) != len(d.Rels) {
		return nil, fmt.Errorf("engine: database schema %s ≠ plan schema %s", db.D, d)
	}
	if sameOrder(d, db.D) {
		return db, nil
	}
	out := &relation.Database{D: d, Rels: make([]*relation.Relation, len(d.Rels)), Univ: db.Univ}
	used := make([]bool, len(db.Rels))
	for i, r := range d.Rels {
		found := -1
		for j := range db.Rels {
			if !used[j] && db.D.Rels[j].Equal(r) {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("engine: database schema %s ≠ plan schema %s", db.D, d)
		}
		used[found] = true
		out.Rels[i] = db.Rels[found]
	}
	return out, nil
}
