package engine

import (
	"encoding/json"
	"fmt"
	"net/http"

	"gyokit/internal/program"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

// Server exposes an Engine over HTTP — the gyod API. Three JSON
// endpoints mirror the paper's pipeline:
//
//	POST /classify  {"schema": "ab, bc, cd"}           §3 classification
//	POST /plan      {"schema": "...", "x": "ad"}       compiled §4/§6 program
//	POST /solve     {"x": "ad", "schema"?, "limit"?,   evaluate on the snapshot
//	                 "parallelism"?}                    (shards per statement)
//
// plus GET /stats (engine counters and snapshot cardinalities) and
// GET /healthz.
//
// Client input never grows the serving Universe: /classify and /plan
// parse into a throwaway per-request universe (the plan cache still
// hits for repeated request texts, since its fingerprints are
// name-based), and /solve resolves names against the serving universe
// by lookup only, rejecting unknown attributes. A client streaming
// fresh attribute names therefore cannot leak memory into the server.
type Server struct {
	E *Engine
	// U is the serving universe: the attribute names of the serving
	// schema D. /solve requests resolve against it without interning.
	U *schema.Universe
	// D is the serving schema: the default for /solve when the request
	// omits "schema". May be nil when the server has no database.
	D *schema.Schema
	// MaxTuples caps the tuples echoed by /solve (the cardinality is
	// always reported in full). Zero means DefaultMaxTuples.
	MaxTuples int
}

// DefaultMaxTuples is the /solve response tuple cap when Server leaves
// MaxTuples at zero.
const DefaultMaxTuples = 1000

// NewServer returns a Server over e. d (with its universe u) is the
// serving schema backing /solve; it may be nil for a planning-only
// server.
func NewServer(e *Engine, u *schema.Universe, d *schema.Schema) *Server {
	return &Server{E: e, U: u, D: d}
}

// Handler returns the HTTP handler serving the gyod API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/classify", s.handleClassify)
	mux.HandleFunc("/plan", s.handlePlan)
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

type classifyRequest struct {
	Schema string `json:"schema"`
}

// ClassifyResponse is the /classify reply.
type ClassifyResponse struct {
	Schema       string   `json:"schema"`
	Tree         bool     `json:"tree"`
	GammaAcyclic bool     `json:"gammaAcyclic"`
	GR           string   `json:"gr"`
	TreefyWith   string   `json:"treefyWith,omitempty"` // Corollary 3.2 relation, cyclic only
	QualTree     [][2]int `json:"qualTree,omitempty"`   // edges over relation indexes, tree only
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req classifyRequest
	if !decode(w, r, &req) {
		return
	}
	u := schema.NewUniverse() // per-request: client names never enter s.U
	d, err := schema.Parse(u, req.Schema)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	cls, err := s.E.Classify(d)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	resp := ClassifyResponse{
		Schema:       d.String(),
		Tree:         cls.Tree,
		GammaAcyclic: cls.GammaAcyclic,
		GR:           cls.GR.String(),
	}
	if cls.Tree {
		resp.QualTree = cls.QualTree.Edges()
	} else {
		resp.TreefyWith = u.FormatSet(cls.TreefyingRelation)
	}
	writeJSON(w, resp)
}

type planRequest struct {
	Schema string `json:"schema"`
	X      string `json:"x"`
}

// PlanStmt is one program statement in a /plan reply. Right is -1 for
// projections, which have a single operand.
type PlanStmt struct {
	ID    int    `json:"id"`
	Op    string `json:"op"`
	Left  int    `json:"left"`
	Right int    `json:"right"`
	Proj  string `json:"proj,omitempty"`
}

// PlanResponse is the /plan reply.
type PlanResponse struct {
	Schema string     `json:"schema"`
	X      string     `json:"x"`
	Tree   bool       `json:"tree"`
	Stmts  []PlanStmt `json:"stmts"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req planRequest
	if !decode(w, r, &req) {
		return
	}
	u := schema.NewUniverse() // per-request: client names never enter s.U
	d, err := schema.Parse(u, req.Schema)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	x, err := parseTarget(u, req.X)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	pl, err := s.E.Plan(d, x)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	// Format everything through the plan's own universe: on a cache hit
	// pl may predate this request, and only its universe is guaranteed
	// to name its AttrSets correctly.
	resp := PlanResponse{
		Schema: pl.D.String(),
		X:      pl.D.U.FormatSet(pl.X),
		Tree:   pl.Cls.Tree,
		Stmts:  make([]PlanStmt, len(pl.Prog.Stmts)),
	}
	n := len(pl.D.Rels)
	for i, st := range pl.Prog.Stmts {
		ps := PlanStmt{ID: n + i, Op: st.Kind.String(), Left: st.Left, Right: st.Right}
		if st.Kind == program.Project {
			ps.Right = -1
			ps.Proj = pl.D.U.FormatSet(st.Proj)
		}
		resp.Stmts[i] = ps
	}
	writeJSON(w, resp)
}

type solveRequest struct {
	X      string `json:"x"`
	Schema string `json:"schema,omitempty"` // defaults to the serving schema
	Limit  int    `json:"limit,omitempty"`  // tuple-echo cap for this request
	// Parallelism requests partition-parallel execution across that
	// many shards; it is clamped to the engine's worker cap, and ≤ 1
	// (or omitting it) keeps the serial path.
	Parallelism int `json:"parallelism,omitempty"`
}

// SolveStats is the cost report embedded in a /solve reply.
type SolveStats struct {
	Statements      int   `json:"statements"`
	TuplesProduced  int   `json:"tuplesProduced"`
	MaxIntermediate int   `json:"maxIntermediate"`
	Joins           int   `json:"joins"`
	Projects        int   `json:"projects"`
	Semijoins       int   `json:"semijoins"`
	Parallelism     int   `json:"parallelism"`             // shards actually used (1 = serial)
	ParallelStmts   int   `json:"parallelStmts,omitempty"` // statements that fanned out
	Repartitions    int   `json:"repartitions,omitempty"`  // partitionings built during the run
	ElapsedNs       int64 `json:"elapsedNs"`
}

// SolveResponse is the /solve reply. Tuples holds up to the configured
// cap of result rows in Cols order; Card is always the full count.
type SolveResponse struct {
	X         string             `json:"x"`
	Cols      []string           `json:"cols"`
	Card      int                `json:"card"`
	Tuples    [][]relation.Value `json:"tuples"`
	Truncated bool               `json:"truncated,omitempty"`
	Stats     SolveStats         `json:"stats"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if !decode(w, r, &req) {
		return
	}
	d := s.D
	if req.Schema != "" {
		var err error
		if d, err = s.lookupSchema(req.Schema); err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
	}
	if d == nil {
		httpErr(w, http.StatusBadRequest, fmt.Errorf("no serving schema configured; pass \"schema\""))
		return
	}
	x, err := s.lookupTarget(req.X)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	par := s.E.ClampParallelism(req.Parallelism)
	out, st, err := s.E.SolvePar(d, x, par)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	// The client may lower the echo cap per request but never raise it
	// past the server's bound.
	capTuples := s.MaxTuples
	if capTuples <= 0 {
		capTuples = DefaultMaxTuples
	}
	limit := capTuples
	if req.Limit > 0 && req.Limit < capTuples {
		limit = req.Limit
	}
	cols := out.Cols()
	resp := SolveResponse{
		X:    s.U.FormatSet(x),
		Cols: make([]string, len(cols)),
		Card: out.Card(),
		Stats: SolveStats{
			Statements:      len(st.PerStmt),
			TuplesProduced:  st.TuplesProduced,
			MaxIntermediate: st.MaxIntermediate,
			Joins:           st.Joins,
			Projects:        st.Projects,
			Semijoins:       st.Semijoins,
			Parallelism:     par,
			ParallelStmts:   st.ParallelStmts,
			Repartitions:    st.Repartitions,
			ElapsedNs:       st.Elapsed.Nanoseconds(),
		},
	}
	for i, c := range cols {
		resp.Cols[i] = s.U.Name(c)
	}
	echo := out.Card()
	if echo > limit {
		echo = limit
		resp.Truncated = true
	}
	resp.Tuples = make([][]relation.Value, echo)
	for i := 0; i < echo; i++ {
		resp.Tuples[i] = append([]relation.Value(nil), out.TupleAt(i)...)
	}
	writeJSON(w, resp)
}

// StatsResponse is the /stats reply.
type StatsResponse struct {
	PlanHits     uint64 `json:"planHits"`
	PlanMisses   uint64 `json:"planMisses"`
	CachedPlans  int    `json:"cachedPlans"`
	Evals        uint64 `json:"evals"`
	ParEvals     uint64 `json:"parEvals"`
	Workers      int    `json:"workers"` // per-request parallelism cap
	Schema       string `json:"schema,omitempty"`
	SnapshotCard []int  `json:"snapshotCard,omitempty"` // per-relation cardinalities
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.E.Stats()
	resp := StatsResponse{
		PlanHits:    st.PlanHits,
		PlanMisses:  st.PlanMisses,
		CachedPlans: st.CachedPlans,
		Evals:       st.Evals,
		ParEvals:    st.ParEvals,
		Workers:     s.E.Workers(),
	}
	if s.D != nil {
		resp.Schema = s.D.String()
	}
	if db := s.E.Snapshot(); db != nil {
		resp.SnapshotCard = make([]int, len(db.Rels))
		for i, rel := range db.Rels {
			resp.SnapshotCard[i] = rel.Card()
		}
	}
	writeJSON(w, resp)
}

// parseTarget parses a target attribute set, rejecting the empty set
// (a degenerate query the program builders error on anyway, with a
// clearer message here).
func parseTarget(u *schema.Universe, s string) (schema.AttrSet, error) {
	if s == "" {
		return schema.AttrSet{}, fmt.Errorf("missing target attribute set \"x\"")
	}
	d, err := schema.Parse(u, s)
	if err != nil {
		return schema.AttrSet{}, err
	}
	if len(d.Rels) != 1 {
		return schema.AttrSet{}, fmt.Errorf("target %q must be a single attribute set", s)
	}
	return d.Rels[0], nil
}

// lookupSchema parses text into a throwaway universe and translates it
// into the serving universe by lookup only: /solve must produce
// AttrSets over s.U (to align with the snapshot), but client requests
// must not grow s.U, so names the serving schema does not know are a
// request error rather than a fresh interning.
func (s *Server) lookupSchema(text string) (*schema.Schema, error) {
	tmp := schema.NewUniverse()
	d, err := schema.Parse(tmp, text)
	if err != nil {
		return nil, err
	}
	out := &schema.Schema{U: s.U}
	for _, r := range d.Rels {
		set, err := s.lookupSet(tmp, r)
		if err != nil {
			return nil, err
		}
		out.Rels = append(out.Rels, set)
	}
	return out, nil
}

// lookupTarget is parseTarget against the serving universe, lookup only.
func (s *Server) lookupTarget(text string) (schema.AttrSet, error) {
	tmp := schema.NewUniverse()
	x, err := parseTarget(tmp, text)
	if err != nil {
		return schema.AttrSet{}, err
	}
	return s.lookupSet(tmp, x)
}

// lookupSet maps a set over tmp into the serving universe by name.
func (s *Server) lookupSet(tmp *schema.Universe, set schema.AttrSet) (schema.AttrSet, error) {
	var ids []schema.Attr
	var unknown string
	set.ForEach(func(a schema.Attr) bool {
		name := tmp.Name(a)
		id, ok := s.U.Lookup(name)
		if !ok {
			unknown = name
			return false
		}
		ids = append(ids, id)
		return true
	})
	if unknown != "" {
		return schema.AttrSet{}, fmt.Errorf("attribute %q not in serving schema", unknown)
	}
	return schema.NewAttrSet(ids...), nil
}

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		httpErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST with a JSON body"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpErr(w, http.StatusBadRequest, fmt.Errorf("invalid JSON body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing useful left to do.
		_ = err
	}
}

func httpErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
