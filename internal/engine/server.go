package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"runtime"
	"strings"
	"time"

	"gyokit/internal/cq"
	"gyokit/internal/program"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
	"gyokit/internal/storage"
)

// Server exposes an Engine over HTTP — the gyod API. Endpoints live
// under the versioned prefix /v1; the read side mirrors the paper's
// pipeline:
//
//	POST /v1/classify  {"schema": "ab, bc, cd"}           §3 classification
//	POST /v1/plan      {"schema": "...", "x": "ad"}       compiled §4/§6 program
//	POST /v1/solve     {"x": "ad", "schema"?, "limit"?,   evaluate on the snapshot
//	                    "parallelism"?}                    (shards per statement)
//	POST /v1/query     {"query": "ans(X,Z) :- ..."}        conjunctive query with
//	                    or a text/plain query body          free-connex-aware planning
//
// the write side mutates the serving snapshot through the engine's
// durable Apply path (acknowledged responses are on disk when the
// engine has a Store):
//
//	POST /v1/insert    {"rel": "ab", "tuples": [[1,2]]}   insert a tuple batch
//	POST /v1/delete    {"rel": "ab", "tuples": [[1,2]]}   delete a tuple batch
//	POST /v1/load      {"relations": [{"rel": ..,         bulk ingest: one atomic
//	                    "tuples": ..}, ...]}               multi-relation batch
//
// plus GET /v1/stats (engine counters, per-relation cardinalities and
// arena bytes, durability counters, process/build info), GET
// /v1/metrics (the engine's observability registry in Prometheus text
// exposition format), GET /v1/healthz (JSON readiness: store health on
// a leader, lag-bounded readiness on a follower), GET
// /v1/replica/status (replication role, cursor, and lag), and POST
// /v1/promote (turn a follower into a writable leader — see
// server_repl.go). On a follower every write endpoint answers 409 with
// code read_only_replica and the leader's URL. The unversioned legacy
// paths (/solve, /classify, ...) remain mounted as deprecated aliases:
// they serve identical responses plus a "Deprecation: true" header and
// a Link header naming the successor /v1 route. /v1/query has no
// legacy alias — it is new in /v1.
//
// Every reply carries a server-generated request id in the
// X-Request-Id header; error responses echo it in a uniform JSON
// envelope {"error": {"code", "message", "requestId"}}, the key
// correlating client reports with the slow-query log. POST endpoints
// enforce their method (405 with Allow) and content type (415 on
// anything but application/json — /v1/query also accepts text/plain).
//
// Client input never grows the serving Universe: /v1/classify and
// /v1/plan parse into a throwaway per-request universe (the plan cache
// still hits for repeated request texts, since its fingerprints are
// name-based), /v1/query compiles over its own variable universe, and
// /v1/solve and the mutation endpoints resolve names against the
// serving universe by lookup only, rejecting unknown attributes. A
// client streaming fresh attribute names therefore cannot leak memory
// into the server. Request bodies are size-capped (MaxBodyBytes,
// MaxLoadBytes) on every endpoint.
type Server struct {
	E *Engine
	// U is the serving universe: the attribute names of the serving
	// schema D. /v1/solve requests resolve against it without interning.
	U *schema.Universe
	// D is the serving schema: the default for /v1/solve when the
	// request omits "schema". May be nil when the server has no
	// database.
	D *schema.Schema
	// MaxTuples caps the tuples echoed by /v1/solve and /v1/query (the
	// cardinality is always reported in full). Zero means
	// DefaultMaxTuples.
	MaxTuples int
	// MaxLoadBytes caps the /v1/load request body. Zero means
	// DefaultMaxLoadBytes.
	MaxLoadBytes int64
	// SlowQuery, when positive, makes /v1/solve and /v1/query log any
	// request whose end-to-end evaluation exceeds it — request id, query
	// fingerprint, parallelism, and the top-3 most expensive statements
	// — through the engine's Logf. Zero disables the slow-query log.
	SlowQuery time.Duration
	// Gas caps the tuples a single /v1/query evaluation may produce
	// across all program statements — the multi-tenant rail against a
	// query whose intermediates explode. Exceeding it aborts the run
	// with a typed resource_exhausted error (HTTP 429). Zero disables
	// the gas rail.
	Gas int
	// QueryTimeout bounds a single /v1/query evaluation. A client may
	// lower it per request ("timeoutMs") but never raise it. Hitting
	// the deadline aborts the run with a typed deadline_exceeded error
	// (HTTP 504). Zero disables the server-side deadline.
	QueryTimeout time.Duration
	// Replica, when non-nil, marks this server as part of a replication
	// pair: /v1/replica/status and POST /v1/promote delegate to it,
	// write rejections carry its leader URL, and /v1/healthz folds its
	// lag and divergence state into readiness. Nil means a plain leader.
	Replica ReplicaController
	// MaxLagBytes, when positive, makes /v1/healthz report a follower
	// unready once its replication lag exceeds this many WAL bytes (or
	// is unknown) — the hook for load balancers to pull stale replicas.
	MaxLagBytes int64
}

// DefaultMaxTuples is the /v1/solve and /v1/query response tuple cap
// when Server leaves MaxTuples at zero.
const DefaultMaxTuples = 1000

// MaxBodyBytes caps standard JSON request bodies (all endpoints except
// /v1/load, which has its own configurable bulk cap).
const MaxBodyBytes = 1 << 20

// DefaultMaxLoadBytes is the /v1/load body cap when Server leaves
// MaxLoadBytes at zero: bulk ingest gets more room than a point write
// but is still strictly bounded.
const DefaultMaxLoadBytes = 32 << 20

// NewServer returns a Server over e. d (with its universe u) is the
// serving schema backing /v1/solve; it may be nil for a planning-only
// server.
func NewServer(e *Engine, u *schema.Universe, d *schema.Schema) *Server {
	return &Server{E: e, U: u, D: d}
}

// Handler returns the HTTP handler serving the gyod API: every
// endpoint under /v1, the pre-versioning paths as deprecated aliases,
// and a request-id middleware wrapping the whole tree so every reply —
// success or error, any route — carries X-Request-Id.
func (s *Server) Handler() http.Handler {
	routes := []struct {
		name   string
		h      http.HandlerFunc
		legacy bool // mount an unversioned deprecated alias
	}{
		{"classify", s.handleClassify, true},
		{"plan", s.handlePlan, true},
		{"solve", s.handleSolve, true},
		{"query", s.handleQuery, false}, // new in /v1, no legacy path
		{"insert", s.handleInsert, true},
		{"delete", s.handleDelete, true},
		{"load", s.handleLoad, true},
		{"stats", s.handleStats, true},
		{"metrics", s.handleMetrics, true},
		{"healthz", s.handleHealthz, true},
		{"replica/status", s.handleReplicaStatus, false}, // new in /v1
		{"promote", s.handlePromote, false},              // new in /v1
	}
	mux := http.NewServeMux()
	for _, rt := range routes {
		v1 := "/v1/" + rt.name
		mux.Handle(v1, rt.h)
		if rt.legacy {
			mux.Handle("/"+rt.name, deprecatedAlias(v1, rt.h))
		}
	}
	return withRequestID(mux)
}

// withRequestID stamps every response with a process-unique request id
// before the handler runs, so handlers and writeError read it back
// from the response headers (requestID) rather than threading it
// through every call.
func withRequestID(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Request-Id", newRequestID())
		h.ServeHTTP(w, r)
	})
}

// requestID reads back the id stamped by withRequestID.
func requestID(w http.ResponseWriter) string {
	return w.Header().Get("X-Request-Id")
}

// deprecatedAlias serves h unchanged while marking the route
// deprecated: a "Deprecation: true" header (draft-ietf-httpapi
// convention) plus a Link header naming the successor /v1 route.
func deprecatedAlias(successor string, h http.Handler) http.Handler {
	link := fmt.Sprintf("<%s>; rel=\"successor-version\"", successor)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", link)
		h.ServeHTTP(w, r)
	})
}

type classifyRequest struct {
	Schema string `json:"schema"`
}

// ClassifyResponse is the /v1/classify reply.
type ClassifyResponse struct {
	Schema       string   `json:"schema"`
	Tree         bool     `json:"tree"`
	GammaAcyclic bool     `json:"gammaAcyclic"`
	GR           string   `json:"gr"`
	TreefyWith   string   `json:"treefyWith,omitempty"` // Corollary 3.2 relation, cyclic only
	QualTree     [][2]int `json:"qualTree,omitempty"`   // edges over relation indexes, tree only
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req classifyRequest
	if !decode(w, r, &req) {
		return
	}
	u := schema.NewUniverse() // per-request: client names never enter s.U
	d, err := schema.Parse(u, req.Schema)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err)
		return
	}
	cls, err := s.E.Classify(d)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err)
		return
	}
	resp := ClassifyResponse{
		Schema:       d.String(),
		Tree:         cls.Tree,
		GammaAcyclic: cls.GammaAcyclic,
		GR:           cls.GR.String(),
	}
	if cls.Tree {
		resp.QualTree = cls.QualTree.Edges()
	} else {
		resp.TreefyWith = u.FormatSet(cls.TreefyingRelation)
	}
	writeJSON(w, resp)
}

type planRequest struct {
	Schema string `json:"schema"`
	X      string `json:"x"`
}

// PlanStmt is one program statement in a /v1/plan reply. Right is -1
// for projections, which have a single operand.
type PlanStmt struct {
	ID    int    `json:"id"`
	Op    string `json:"op"`
	Left  int    `json:"left"`
	Right int    `json:"right"`
	Proj  string `json:"proj,omitempty"`
}

// PlanResponse is the /v1/plan reply.
type PlanResponse struct {
	Schema string     `json:"schema"`
	X      string     `json:"x"`
	Tree   bool       `json:"tree"`
	Stmts  []PlanStmt `json:"stmts"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req planRequest
	if !decode(w, r, &req) {
		return
	}
	u := schema.NewUniverse() // per-request: client names never enter s.U
	d, err := schema.Parse(u, req.Schema)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err)
		return
	}
	x, err := parseTarget(u, req.X)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err)
		return
	}
	pl, err := s.E.Plan(d, x)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err)
		return
	}
	// Format everything through the plan's own universe: on a cache hit
	// pl may predate this request, and only its universe is guaranteed
	// to name its AttrSets correctly.
	resp := PlanResponse{
		Schema: pl.D.String(),
		X:      pl.D.U.FormatSet(pl.X),
		Tree:   pl.Cls.Tree,
		Stmts:  make([]PlanStmt, len(pl.Prog.Stmts)),
	}
	n := len(pl.D.Rels)
	for i, st := range pl.Prog.Stmts {
		ps := PlanStmt{ID: n + i, Op: st.Kind.String(), Left: st.Left, Right: st.Right}
		if st.Kind == program.Project {
			ps.Right = -1
			ps.Proj = pl.D.U.FormatSet(st.Proj)
		}
		resp.Stmts[i] = ps
	}
	writeJSON(w, resp)
}

type solveRequest struct {
	X      string `json:"x"`
	Schema string `json:"schema,omitempty"` // defaults to the serving schema
	// Limit caps the tuples echoed for this request. A pointer so that
	// an explicit 0 ("card only, no tuples") is distinguishable from an
	// omitted field (server default); negative limits are rejected.
	Limit *int `json:"limit,omitempty"`
	// Parallelism requests partition-parallel execution across that
	// many shards; it is clamped to the engine's worker cap, and ≤ 1
	// (or omitting it) keeps the serial path.
	Parallelism int `json:"parallelism,omitempty"`
	// Trace adds a per-statement span tree to the reply: one span per
	// executed program statement, nested by data flow, with input/output
	// cardinalities and elapsed time. The untraced path pays nothing for
	// the feature — spans are built from the run's statistics only when
	// requested.
	Trace bool `json:"trace,omitempty"`
}

// SolveStats is the cost report embedded in a /v1/solve or /v1/query
// reply.
type SolveStats struct {
	Statements       int   `json:"statements"`
	TuplesProduced   int   `json:"tuplesProduced"`
	MaxIntermediate  int   `json:"maxIntermediate"`
	Joins            int   `json:"joins"`
	Projects         int   `json:"projects"`
	Semijoins        int   `json:"semijoins"`
	Parallelism      int   `json:"parallelism"`                // shards actually used (1 = serial)
	ParallelStmts    int   `json:"parallelStmts,omitempty"`    // statements that fanned out
	Repartitions     int   `json:"repartitions,omitempty"`     // partitionings built during the run
	RepartitionBytes int64 `json:"repartitionBytes,omitempty"` // arena bytes those partitionings moved
	ElapsedNs        int64 `json:"elapsedNs"`
}

func solveStats(st *program.Stats, par int) SolveStats {
	return SolveStats{
		Statements:       len(st.PerStmt),
		TuplesProduced:   st.TuplesProduced,
		MaxIntermediate:  st.MaxIntermediate,
		Joins:            st.Joins,
		Projects:         st.Projects,
		Semijoins:        st.Semijoins,
		Parallelism:      par,
		ParallelStmts:    st.ParallelStmts,
		Repartitions:     st.Repartitions,
		RepartitionBytes: st.RepartitionBytes,
		ElapsedNs:        st.Elapsed.Nanoseconds(),
	}
}

// SolveResponse is the /v1/solve reply. Tuples holds up to the
// configured cap of result rows in Cols order; Card is always the full
// count.
type SolveResponse struct {
	X         string             `json:"x"`
	RequestID string             `json:"requestId"` // also in the X-Request-Id header
	Cols      []string           `json:"cols"`
	Card      int                `json:"card"`
	Tuples    [][]relation.Value `json:"tuples"`
	Truncated bool               `json:"truncated,omitempty"`
	Stats     SolveStats         `json:"stats"`
	Trace     *program.Span      `json:"trace,omitempty"` // present when the request set "trace": true
}

// echoLimit resolves the per-request tuple echo cap: the client may
// lower the server's bound — including to an explicit 0 for a
// card-only response — but never raise it. A negative limit is a
// request error, reported before any evaluation work.
func (s *Server) echoLimit(w http.ResponseWriter, reqLimit *int) (int, bool) {
	capTuples := s.MaxTuples
	if capTuples <= 0 {
		capTuples = DefaultMaxTuples
	}
	limit := capTuples
	if reqLimit != nil {
		switch l := *reqLimit; {
		case l < 0:
			writeError(w, http.StatusBadRequest, "invalid_request", fmt.Errorf("negative limit %d", l))
			return 0, false
		case l < capTuples:
			limit = l
		}
	}
	return limit, true
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if !decode(w, r, &req) {
		return
	}
	d := s.D
	if req.Schema != "" {
		var err error
		if d, err = s.lookupSchema(req.Schema); err != nil {
			writeError(w, http.StatusBadRequest, "invalid_request", err)
			return
		}
	}
	if d == nil {
		writeError(w, http.StatusBadRequest, "invalid_request", fmt.Errorf("no serving schema configured; pass \"schema\""))
		return
	}
	x, err := s.lookupTarget(req.X)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err)
		return
	}
	limit, ok := s.echoLimit(w, req.Limit)
	if !ok {
		return
	}
	par := s.E.ClampParallelism(req.Parallelism)
	reqID := requestID(w)
	t0 := time.Now()
	out, st, err := s.E.SolvePar(d, x, par)
	elapsed := time.Since(t0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err)
		return
	}
	if s.SlowQuery > 0 && elapsed >= s.SlowQuery {
		fp, xfp := d.QueryFingerprint(x)
		s.logSlowQuery(reqID, fp, xfp, s.U.FormatSet(x), par, elapsed, st)
	}
	cols := out.Cols()
	resp := SolveResponse{
		X:         s.U.FormatSet(x),
		RequestID: reqID,
		Cols:      make([]string, len(cols)),
		Card:      out.Card(),
		Stats:     solveStats(st, par),
	}
	if req.Trace {
		// A second Plan call is a guaranteed cache hit for the plan the
		// solve just used, so the traced path re-derives the statement
		// list without threading the plan through SolvePar's signature.
		pl, err := s.E.Plan(d, x)
		if err == nil {
			if span, serr := pl.Prog.SpanTree(st); serr == nil {
				resp.Trace = span
			}
		}
	}
	for i, c := range cols {
		resp.Cols[i] = s.U.Name(c)
	}
	echo := out.Card()
	if echo > limit {
		echo = limit
		resp.Truncated = true
	}
	resp.Tuples = make([][]relation.Value, echo)
	for i := 0; i < echo; i++ {
		resp.Tuples[i] = append([]relation.Value(nil), out.TupleAt(i)...)
	}
	writeJSON(w, resp)
}

// queryRequest is the /v1/query JSON body. The endpoint equally
// accepts a text/plain body holding just the query text, with every
// option at its default.
type queryRequest struct {
	// Query is the conjunctive query in the internal/cq grammar, e.g.
	// "ans(X, Z) :- ab(X, Y), bc(Y, Z)." — predicates name serving
	// relations by their attribute sets.
	Query string `json:"query"`
	// Limit caps the tuples echoed, with /v1/solve semantics.
	Limit *int `json:"limit,omitempty"`
	// Parallelism requests partition-parallel execution, clamped to the
	// engine's worker cap.
	Parallelism int `json:"parallelism,omitempty"`
	// Trace adds the per-statement span tree to the reply.
	Trace bool `json:"trace,omitempty"`
	// TimeoutMs lowers the server's QueryTimeout for this request; it
	// can never raise it. Negative values are rejected.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// QueryResponse is the /v1/query reply. Cols and Tuples are in the
// head's written order (the order the query's answer atom lists its
// variables), not the engine's internal column order.
type QueryResponse struct {
	Query     string             `json:"query"`     // canonical form of the executed query
	RequestID string             `json:"requestId"` // also in the X-Request-Id header
	Kind      string             `json:"kind"`      // free-connex | acyclic | cyclic
	Cols      []string           `json:"cols"`      // head variables, written order
	Card      int                `json:"card"`
	Tuples    [][]relation.Value `json:"tuples"`
	Truncated bool               `json:"truncated,omitempty"`
	Stats     SolveStats         `json:"stats"`
	Trace     *program.Span      `json:"trace,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	mt, ok := contentTypeOK(r, "application/json", "text/plain")
	if !ok {
		writeUnsupportedMediaType(w, r, "application/json or text/plain")
		return
	}
	var req queryRequest
	if mt == "text/plain" {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
		if err != nil {
			writeBodyError(w, err)
			return
		}
		req.Query = string(body)
	} else if !decodeJSON(w, r, &req, MaxBodyBytes) {
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, "invalid_request", fmt.Errorf("missing \"query\""))
		return
	}
	pl, err := s.E.PrepareQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_query", err)
		return
	}
	limit, ok := s.echoLimit(w, req.Limit)
	if !ok {
		return
	}
	if req.TimeoutMs < 0 {
		writeError(w, http.StatusBadRequest, "invalid_request", fmt.Errorf("negative timeoutMs %d", req.TimeoutMs))
		return
	}
	// The evaluation rails: the server's gas budget, and the tighter of
	// the server's and the client's deadline.
	lim := program.Limits{MaxTuples: s.Gas}
	timeout := s.QueryTimeout
	if req.TimeoutMs > 0 {
		if ct := time.Duration(req.TimeoutMs) * time.Millisecond; timeout <= 0 || ct < timeout {
			timeout = ct
		}
	}
	if timeout > 0 {
		lim.Deadline = time.Now().Add(timeout)
	}
	par := s.E.ClampParallelism(req.Parallelism)
	reqID := requestID(w)
	t0 := time.Now()
	out, st, err := s.E.SolveQuery(pl, par, lim)
	elapsed := time.Since(t0)
	if err != nil {
		switch {
		case errors.Is(err, program.ErrGasExhausted):
			writeError(w, http.StatusTooManyRequests, "resource_exhausted", err)
		case errors.Is(err, program.ErrDeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "deadline_exceeded", err)
		default:
			writeError(w, http.StatusBadRequest, "invalid_query", err)
		}
		return
	}
	c := pl.CQ
	if s.SlowQuery > 0 && elapsed >= s.SlowQuery {
		a, b := cq.Fingerprint(c.Canonical)
		s.logSlowQuery(reqID, a, b, c.Canonical, par, elapsed, st)
	}
	resp := QueryResponse{
		Query:     c.Canonical,
		RequestID: reqID,
		Kind:      c.Kind.String(),
		Cols:      append([]string(nil), c.HeadVars...),
		Card:      out.Card(),
		Stats:     solveStats(st, par),
	}
	if req.Trace {
		if span, serr := pl.Prog.SpanTree(st); serr == nil {
			resp.Trace = span
		}
	}
	// The result relation's columns are in sorted attribute order;
	// permute each echoed tuple into the head's written order.
	cols := out.Cols()
	perm := make([]int, len(c.HeadIDs))
	for j, id := range c.HeadIDs {
		perm[j] = indexOfAttr(cols, id)
	}
	echo := out.Card()
	if echo > limit {
		echo = limit
		resp.Truncated = true
	}
	resp.Tuples = make([][]relation.Value, echo)
	for i := 0; i < echo; i++ {
		row := out.TupleAt(i)
		t := make([]relation.Value, len(perm))
		for j, p := range perm {
			t[j] = row[p]
		}
		resp.Tuples[i] = t
	}
	writeJSON(w, resp)
}

// mutateRequest is the /v1/insert and /v1/delete body, and one element
// of a /v1/load body: a relation (named by its attribute set, e.g.
// "ab") and a tuple batch in that relation's sorted-column order.
// Schemas are multisets, so when the serving schema contains the same
// relation schema more than once, "rel" alone addresses the first
// occurrence; "index" (a position in the serving schema)
// disambiguates.
type mutateRequest struct {
	Rel    string           `json:"rel"`
	Index  *int             `json:"index,omitempty"`
	Tuples []relation.Tuple `json:"tuples"`
}

type loadRequest struct {
	Relations []mutateRequest `json:"relations"`
}

// MutateResponse is the /v1/insert and /v1/delete reply, and one
// element of a /v1/load reply. Applied counts the tuples actually
// inserted or deleted (set semantics: duplicates and absentees don't
// count); Card is the relation's cardinality in the published
// snapshot. Durable reports whether the acknowledged batch is on disk.
type MutateResponse struct {
	Rel       string `json:"rel"`
	Requested int    `json:"requested"`
	Applied   int    `json:"applied"`
	Card      int    `json:"card"`
	Durable   bool   `json:"durable"`
}

// LoadResponse is the /v1/load reply: per-relation outcomes of one
// atomic multi-relation batch.
type LoadResponse struct {
	Relations []MutateResponse `json:"relations"`
	Durable   bool             `json:"durable"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	s.handleMutate(w, r, storage.KindInsert)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.handleMutate(w, r, storage.KindDelete)
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request, kind storage.Kind) {
	var req mutateRequest
	if !decodeCapped(w, r, &req, MaxBodyBytes) {
		return
	}
	db := s.E.Snapshot()
	if db == nil {
		writeError(w, http.StatusBadRequest, "invalid_request", fmt.Errorf("no database snapshot installed"))
		return
	}
	m, err := s.buildMutation(db, kind, req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err)
		return
	}
	next, counts, err := s.E.Apply(m)
	if err != nil {
		if errors.Is(err, ErrReadOnly) {
			s.writeReadOnly(w)
			return
		}
		status, code := applyStatus(err)
		writeError(w, status, code, err)
		return
	}
	writeJSON(w, MutateResponse{
		Rel:       req.Rel,
		Requested: len(req.Tuples),
		Applied:   counts[0],
		Card:      next.Rels[m.Rel].Card(),
		Durable:   s.E.Durable(),
	})
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	capBytes := s.MaxLoadBytes
	if capBytes <= 0 {
		capBytes = DefaultMaxLoadBytes
	}
	var req loadRequest
	if !decodeCapped(w, r, &req, capBytes) {
		return
	}
	if len(req.Relations) == 0 {
		writeError(w, http.StatusBadRequest, "invalid_request", fmt.Errorf("empty \"relations\""))
		return
	}
	db := s.E.Snapshot()
	if db == nil {
		writeError(w, http.StatusBadRequest, "invalid_request", fmt.Errorf("no database snapshot installed"))
		return
	}
	muts := make([]storage.Mutation, len(req.Relations))
	for i, mr := range req.Relations {
		m, err := s.buildMutation(db, storage.KindInsert, mr)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid_request", fmt.Errorf("relations[%d]: %w", i, err))
			return
		}
		muts[i] = m
	}
	next, counts, err := s.E.Apply(muts...)
	if err != nil {
		if errors.Is(err, ErrReadOnly) {
			s.writeReadOnly(w)
			return
		}
		status, code := applyStatus(err)
		writeError(w, status, code, err)
		return
	}
	resp := LoadResponse{Durable: s.E.Durable()}
	for i, mr := range req.Relations {
		resp.Relations = append(resp.Relations, MutateResponse{
			Rel:       mr.Rel,
			Requested: len(mr.Tuples),
			Applied:   counts[i],
			Card:      next.Rels[muts[i].Rel].Card(),
			Durable:   s.E.Durable(),
		})
	}
	writeJSON(w, resp)
}

// applyStatus maps an Engine.Apply error to an HTTP status and error
// code: a durability failure is the server's fault (5xx, retryable,
// should alert), everything else is request validation (4xx).
func applyStatus(err error) (int, string) {
	if errors.Is(err, ErrDurability) {
		return http.StatusInternalServerError, "internal"
	}
	return http.StatusBadRequest, "invalid_request"
}

// buildMutation resolves a mutateRequest against the snapshot's schema
// (lookup-only: unknown attribute names are a request error) and
// validates tuple arities.
//
// The resolved index is re-validated by Apply only for range and
// width: no HTTP endpoint changes the schema, so the resolution cannot
// go stale under pure-HTTP traffic, but an embedding process that
// issues Create/Drop mutations through the Go API concurrently with
// HTTP writes can shift indexes between resolution and Apply.
func (s *Server) buildMutation(db *relation.Database, kind storage.Kind, req mutateRequest) (storage.Mutation, error) {
	if req.Rel == "" {
		return storage.Mutation{}, fmt.Errorf("missing relation \"rel\"")
	}
	set, err := s.lookupTarget(req.Rel)
	if err != nil {
		return storage.Mutation{}, err
	}
	idx := -1
	if req.Index != nil {
		// Explicit position: must name the same relation schema, so a
		// stale index cannot silently write to the wrong relation.
		i := *req.Index
		if i < 0 || i >= len(db.D.Rels) {
			return storage.Mutation{}, fmt.Errorf("index %d out of range (schema has %d relations)", i, len(db.D.Rels))
		}
		if !db.D.Rels[i].Equal(set) {
			return storage.Mutation{}, fmt.Errorf("relation at index %d is %s, not %q",
				i, db.D.U.FormatSet(db.D.Rels[i]), req.Rel)
		}
		idx = i
	} else {
		for i, r := range db.D.Rels {
			if r.Equal(set) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return storage.Mutation{}, fmt.Errorf("relation %q not in serving schema %s", req.Rel, db.D)
		}
	}
	width := set.Card()
	for i, t := range req.Tuples {
		if len(t) != width {
			return storage.Mutation{}, fmt.Errorf("tuple %d has arity %d, want %d", i, len(t), width)
		}
	}
	if len(req.Tuples) == 0 {
		return storage.Mutation{}, fmt.Errorf("empty \"tuples\"")
	}
	if kind == storage.KindDelete {
		return storage.Delete(idx, width, req.Tuples), nil
	}
	return storage.Insert(idx, width, req.Tuples), nil
}

// RelationStats describes one relation of the live snapshot.
type RelationStats struct {
	Rel        string `json:"rel"`
	Card       int    `json:"card"`
	ArenaBytes int    `json:"arenaBytes"`
}

// DurabilityStats is the /v1/stats durability section, present when
// the engine has a Store.
type DurabilityStats struct {
	WALBytes            int64  `json:"walBytes"`
	WALSegments         int    `json:"walSegments"`
	Appends             uint64 `json:"appends"`
	Replayed            uint64 `json:"replayed"` // batches replayed at boot
	Checkpoints         uint64 `json:"checkpoints"`
	ChunksWritten       uint64 `json:"chunksWritten"`       // chunk records appended by checkpoints
	ChunksReused        uint64 `json:"chunksReused"`        // chunk references reused without rewriting
	CheckpointBytes     uint64 `json:"checkpointBytes"`     // cumulative checkpoint I/O
	ChunkStoreBytes     int64  `json:"chunkStoreBytes"`     // current chunk-store file size
	Compactions         uint64 `json:"compactions"`         // chunk-store GC rewrites
	LastCheckpointAgeMs int64  `json:"lastCheckpointAgeMs"` // -1 = never (this process)
	LastCheckpointError string `json:"lastCheckpointError,omitempty"`
}

// StatsResponse is the /v1/stats reply. Per-relation cardinalities
// live in Relations (which superseded the bare snapshotCard array).
type StatsResponse struct {
	PlanHits      uint64           `json:"planHits"`
	PlanMisses    uint64           `json:"planMisses"`
	PlanEvictions uint64           `json:"planEvictions"`
	CachedPlans   int              `json:"cachedPlans"`
	Evals         uint64           `json:"evals"`
	ParEvals      uint64           `json:"parEvals"`
	Workers       int              `json:"workers"`       // per-request parallelism cap
	UptimeSeconds float64          `json:"uptimeSeconds"` // since process start
	Goroutines    int              `json:"goroutines"`
	BuildInfo     *BuildInfo       `json:"buildInfo,omitempty"` // embedded module/VCS provenance
	Schema        string           `json:"schema,omitempty"`
	Relations     []RelationStats  `json:"relations,omitempty"`  // live snapshot, by relation
	ArenaBytes    int64            `json:"arenaBytes,omitempty"` // total tuple-arena bytes served
	Durability    *DurabilityStats `json:"durability,omitempty"` // present when storage is configured
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	st := s.E.Stats()
	resp := StatsResponse{
		PlanHits:      st.PlanHits,
		PlanMisses:    st.PlanMisses,
		PlanEvictions: st.Evictions,
		CachedPlans:   st.CachedPlans,
		Evals:         st.Evals,
		ParEvals:      st.ParEvals,
		Workers:       s.E.Workers(),
		UptimeSeconds: time.Since(processStart).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
		BuildInfo:     readBuildInfo(),
	}
	if s.D != nil {
		resp.Schema = s.D.String()
	}
	if db := s.E.Snapshot(); db != nil {
		resp.Relations = make([]RelationStats, len(db.Rels))
		for i, rel := range db.Rels {
			resp.Relations[i] = RelationStats{
				Rel:        db.D.U.FormatSet(db.D.Rels[i]),
				Card:       rel.Card(),
				ArenaBytes: rel.ArenaBytes(),
			}
			resp.ArenaBytes += int64(rel.ArenaBytes())
		}
		if db.Univ != nil {
			resp.ArenaBytes += int64(db.Univ.ArenaBytes())
		}
	}
	if store := s.E.Store(); store != nil {
		sst := store.Stats()
		ds := &DurabilityStats{
			WALBytes:            sst.WALBytes,
			WALSegments:         sst.Segments,
			Appends:             sst.Appends,
			Replayed:            sst.Replayed,
			Checkpoints:         sst.Checkpoints,
			ChunksWritten:       sst.ChunksWritten,
			ChunksReused:        sst.ChunksReused,
			CheckpointBytes:     sst.CheckpointBytes,
			ChunkStoreBytes:     sst.ChunkStoreBytes,
			Compactions:         sst.Compactions,
			LastCheckpointAgeMs: -1,
			LastCheckpointError: sst.LastCheckpointErr,
		}
		if !sst.LastCheckpoint.IsZero() {
			ds.LastCheckpointAgeMs = time.Since(sst.LastCheckpoint).Milliseconds()
		}
		resp.Durability = ds
	}
	writeJSON(w, resp)
}

// parseTarget parses a target attribute set, rejecting the empty set
// (a degenerate query the program builders error on anyway, with a
// clearer message here).
func parseTarget(u *schema.Universe, s string) (schema.AttrSet, error) {
	if s == "" {
		return schema.AttrSet{}, fmt.Errorf("missing target attribute set \"x\"")
	}
	d, err := schema.Parse(u, s)
	if err != nil {
		return schema.AttrSet{}, err
	}
	if len(d.Rels) != 1 {
		return schema.AttrSet{}, fmt.Errorf("target %q must be a single attribute set", s)
	}
	return d.Rels[0], nil
}

// lookupSchema parses text into a throwaway universe and translates it
// into the serving universe by lookup only: /v1/solve must produce
// AttrSets over s.U (to align with the snapshot), but client requests
// must not grow s.U, so names the serving schema does not know are a
// request error rather than a fresh interning.
func (s *Server) lookupSchema(text string) (*schema.Schema, error) {
	tmp := schema.NewUniverse()
	d, err := schema.Parse(tmp, text)
	if err != nil {
		return nil, err
	}
	out := &schema.Schema{U: s.U}
	for _, r := range d.Rels {
		set, err := s.lookupSet(tmp, r)
		if err != nil {
			return nil, err
		}
		out.Rels = append(out.Rels, set)
	}
	return out, nil
}

// lookupTarget is parseTarget against the serving universe, lookup only.
func (s *Server) lookupTarget(text string) (schema.AttrSet, error) {
	tmp := schema.NewUniverse()
	x, err := parseTarget(tmp, text)
	if err != nil {
		return schema.AttrSet{}, err
	}
	return s.lookupSet(tmp, x)
}

// lookupSet maps a set over tmp into the serving universe by name.
func (s *Server) lookupSet(tmp *schema.Universe, set schema.AttrSet) (schema.AttrSet, error) {
	var ids []schema.Attr
	var unknown string
	set.ForEach(func(a schema.Attr) bool {
		name := tmp.Name(a)
		id, ok := s.U.Lookup(name)
		if !ok {
			unknown = name
			return false
		}
		ids = append(ids, id)
		return true
	})
	if unknown != "" {
		return schema.AttrSet{}, fmt.Errorf("attribute %q not in serving schema", unknown)
	}
	return schema.NewAttrSet(ids...), nil
}

// allowMethod enforces the endpoint's method, answering anything else
// with 405 and an Allow header per RFC 9110.
func allowMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", fmt.Errorf("use %s", method))
	return false
}

// contentTypeOK reports whether the request's Content-Type (after
// stripping parameters like charset) is one of the accepted media
// types, returning the match. An absent Content-Type is accepted as
// the endpoint's primary type — curl-friendliness over strictness.
func contentTypeOK(r *http.Request, accepted ...string) (string, bool) {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return accepted[0], true
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return "", false
	}
	for _, a := range accepted {
		if mt == a {
			return mt, true
		}
	}
	return "", false
}

func writeUnsupportedMediaType(w http.ResponseWriter, r *http.Request, want string) {
	writeError(w, http.StatusUnsupportedMediaType, "unsupported_media_type",
		fmt.Errorf("content type %q not supported; use %s", r.Header.Get("Content-Type"), want))
}

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	return decodeCapped(w, r, dst, MaxBodyBytes)
}

// decodeCapped is the standard POST front door: method enforcement
// (405 + Allow), content-type enforcement (415), body cap (413), then
// strict JSON decoding (400).
func decodeCapped(w http.ResponseWriter, r *http.Request, dst any, capBytes int64) bool {
	if !allowMethod(w, r, http.MethodPost) {
		return false
	}
	if _, ok := contentTypeOK(r, "application/json"); !ok {
		writeUnsupportedMediaType(w, r, "application/json")
		return false
	}
	return decodeJSON(w, r, dst, capBytes)
}

// decodeJSON decodes the body into dst, assuming method and content
// type were already vetted.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any, capBytes int64) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, capBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeBodyError(w, fmt.Errorf("invalid JSON body: %w", err))
		return false
	}
	return true
}

// writeBodyError maps a request-body read failure: the cap trips 413,
// everything else is a malformed request.
func writeBodyError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge, "payload_too_large",
			fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
		return
	}
	writeError(w, http.StatusBadRequest, "invalid_request", err)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing useful left to do.
		_ = err
	}
}

// ErrorInfo is the uniform error payload: a stable machine-readable
// code, a human-readable message, and the request id correlating the
// failure with server logs.
type ErrorInfo struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"requestId,omitempty"`
	// Leader, set on read_only_replica rejections, is the URL writes
	// should be redirected to.
	Leader string `json:"leader,omitempty"`
}

// ErrorBody is the envelope every error response uses, on every
// endpoint: {"error": {"code", "message", "requestId"}}.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// writeError emits the uniform error envelope. The request id comes
// from the response headers, where the withRequestID middleware
// stamped it before the handler ran.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorBody{Error: ErrorInfo{
		Code:      code,
		Message:   err.Error(),
		RequestID: requestID(w),
	}})
}
