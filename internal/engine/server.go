package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"gyokit/internal/program"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
	"gyokit/internal/storage"
)

// Server exposes an Engine over HTTP — the gyod API. The read side
// mirrors the paper's pipeline:
//
//	POST /classify  {"schema": "ab, bc, cd"}           §3 classification
//	POST /plan      {"schema": "...", "x": "ad"}       compiled §4/§6 program
//	POST /solve     {"x": "ad", "schema"?, "limit"?,   evaluate on the snapshot
//	                 "parallelism"?}                    (shards per statement)
//
// the write side mutates the serving snapshot through the engine's
// durable Apply path (acknowledged responses are on disk when the
// engine has a Store):
//
//	POST /insert    {"rel": "ab", "tuples": [[1,2]]}   insert a tuple batch
//	POST /delete    {"rel": "ab", "tuples": [[1,2]]}   delete a tuple batch
//	POST /load      {"relations": [{"rel": ..,         bulk ingest: one atomic
//	                 "tuples": ..}, ...]}               multi-relation batch
//
// plus GET /stats (engine counters, per-relation cardinalities and
// arena bytes, durability counters, process/build info), GET /metrics
// (the engine's observability registry in Prometheus text exposition
// format), and GET /healthz. Every /solve reply carries a
// server-generated request id in the X-Request-Id header (and the
// body), the key correlating client reports with the slow-query log;
// "trace": true adds a per-statement span tree to the reply.
//
// Client input never grows the serving Universe: /classify and /plan
// parse into a throwaway per-request universe (the plan cache still
// hits for repeated request texts, since its fingerprints are
// name-based), and /solve and the mutation endpoints resolve names
// against the serving universe by lookup only, rejecting unknown
// attributes. A client streaming fresh attribute names therefore
// cannot leak memory into the server. Mutation request bodies are
// size-capped (MaxBodyBytes, MaxLoadBytes) like every other endpoint.
type Server struct {
	E *Engine
	// U is the serving universe: the attribute names of the serving
	// schema D. /solve requests resolve against it without interning.
	U *schema.Universe
	// D is the serving schema: the default for /solve when the request
	// omits "schema". May be nil when the server has no database.
	D *schema.Schema
	// MaxTuples caps the tuples echoed by /solve (the cardinality is
	// always reported in full). Zero means DefaultMaxTuples.
	MaxTuples int
	// MaxLoadBytes caps the /load request body. Zero means
	// DefaultMaxLoadBytes.
	MaxLoadBytes int64
	// SlowQuery, when positive, makes /solve log any request whose
	// end-to-end evaluation exceeds it — request id, query fingerprint,
	// parallelism, and the top-3 most expensive statements — through the
	// engine's Logf. Zero disables the slow-query log.
	SlowQuery time.Duration
}

// DefaultMaxTuples is the /solve response tuple cap when Server leaves
// MaxTuples at zero.
const DefaultMaxTuples = 1000

// MaxBodyBytes caps standard JSON request bodies (all endpoints except
// /load, which has its own configurable bulk cap).
const MaxBodyBytes = 1 << 20

// DefaultMaxLoadBytes is the /load body cap when Server leaves
// MaxLoadBytes at zero: bulk ingest gets more room than a point write
// but is still strictly bounded.
const DefaultMaxLoadBytes = 32 << 20

// NewServer returns a Server over e. d (with its universe u) is the
// serving schema backing /solve; it may be nil for a planning-only
// server.
func NewServer(e *Engine, u *schema.Universe, d *schema.Schema) *Server {
	return &Server{E: e, U: u, D: d}
}

// Handler returns the HTTP handler serving the gyod API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/classify", s.handleClassify)
	mux.HandleFunc("/plan", s.handlePlan)
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/insert", s.handleInsert)
	mux.HandleFunc("/delete", s.handleDelete)
	mux.HandleFunc("/load", s.handleLoad)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

type classifyRequest struct {
	Schema string `json:"schema"`
}

// ClassifyResponse is the /classify reply.
type ClassifyResponse struct {
	Schema       string   `json:"schema"`
	Tree         bool     `json:"tree"`
	GammaAcyclic bool     `json:"gammaAcyclic"`
	GR           string   `json:"gr"`
	TreefyWith   string   `json:"treefyWith,omitempty"` // Corollary 3.2 relation, cyclic only
	QualTree     [][2]int `json:"qualTree,omitempty"`   // edges over relation indexes, tree only
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req classifyRequest
	if !decode(w, r, &req) {
		return
	}
	u := schema.NewUniverse() // per-request: client names never enter s.U
	d, err := schema.Parse(u, req.Schema)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	cls, err := s.E.Classify(d)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	resp := ClassifyResponse{
		Schema:       d.String(),
		Tree:         cls.Tree,
		GammaAcyclic: cls.GammaAcyclic,
		GR:           cls.GR.String(),
	}
	if cls.Tree {
		resp.QualTree = cls.QualTree.Edges()
	} else {
		resp.TreefyWith = u.FormatSet(cls.TreefyingRelation)
	}
	writeJSON(w, resp)
}

type planRequest struct {
	Schema string `json:"schema"`
	X      string `json:"x"`
}

// PlanStmt is one program statement in a /plan reply. Right is -1 for
// projections, which have a single operand.
type PlanStmt struct {
	ID    int    `json:"id"`
	Op    string `json:"op"`
	Left  int    `json:"left"`
	Right int    `json:"right"`
	Proj  string `json:"proj,omitempty"`
}

// PlanResponse is the /plan reply.
type PlanResponse struct {
	Schema string     `json:"schema"`
	X      string     `json:"x"`
	Tree   bool       `json:"tree"`
	Stmts  []PlanStmt `json:"stmts"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req planRequest
	if !decode(w, r, &req) {
		return
	}
	u := schema.NewUniverse() // per-request: client names never enter s.U
	d, err := schema.Parse(u, req.Schema)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	x, err := parseTarget(u, req.X)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	pl, err := s.E.Plan(d, x)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	// Format everything through the plan's own universe: on a cache hit
	// pl may predate this request, and only its universe is guaranteed
	// to name its AttrSets correctly.
	resp := PlanResponse{
		Schema: pl.D.String(),
		X:      pl.D.U.FormatSet(pl.X),
		Tree:   pl.Cls.Tree,
		Stmts:  make([]PlanStmt, len(pl.Prog.Stmts)),
	}
	n := len(pl.D.Rels)
	for i, st := range pl.Prog.Stmts {
		ps := PlanStmt{ID: n + i, Op: st.Kind.String(), Left: st.Left, Right: st.Right}
		if st.Kind == program.Project {
			ps.Right = -1
			ps.Proj = pl.D.U.FormatSet(st.Proj)
		}
		resp.Stmts[i] = ps
	}
	writeJSON(w, resp)
}

type solveRequest struct {
	X      string `json:"x"`
	Schema string `json:"schema,omitempty"` // defaults to the serving schema
	// Limit caps the tuples echoed for this request. A pointer so that
	// an explicit 0 ("card only, no tuples") is distinguishable from an
	// omitted field (server default); negative limits are rejected.
	Limit *int `json:"limit,omitempty"`
	// Parallelism requests partition-parallel execution across that
	// many shards; it is clamped to the engine's worker cap, and ≤ 1
	// (or omitting it) keeps the serial path.
	Parallelism int `json:"parallelism,omitempty"`
	// Trace adds a per-statement span tree to the reply: one span per
	// executed program statement, nested by data flow, with input/output
	// cardinalities and elapsed time. The untraced path pays nothing for
	// the feature — spans are built from the run's statistics only when
	// requested.
	Trace bool `json:"trace,omitempty"`
}

// SolveStats is the cost report embedded in a /solve reply.
type SolveStats struct {
	Statements       int   `json:"statements"`
	TuplesProduced   int   `json:"tuplesProduced"`
	MaxIntermediate  int   `json:"maxIntermediate"`
	Joins            int   `json:"joins"`
	Projects         int   `json:"projects"`
	Semijoins        int   `json:"semijoins"`
	Parallelism      int   `json:"parallelism"`                // shards actually used (1 = serial)
	ParallelStmts    int   `json:"parallelStmts,omitempty"`    // statements that fanned out
	Repartitions     int   `json:"repartitions,omitempty"`     // partitionings built during the run
	RepartitionBytes int64 `json:"repartitionBytes,omitempty"` // arena bytes those partitionings moved
	ElapsedNs        int64 `json:"elapsedNs"`
}

// SolveResponse is the /solve reply. Tuples holds up to the configured
// cap of result rows in Cols order; Card is always the full count.
type SolveResponse struct {
	X         string             `json:"x"`
	RequestID string             `json:"requestId"` // also in the X-Request-Id header
	Cols      []string           `json:"cols"`
	Card      int                `json:"card"`
	Tuples    [][]relation.Value `json:"tuples"`
	Truncated bool               `json:"truncated,omitempty"`
	Stats     SolveStats         `json:"stats"`
	Trace     *program.Span      `json:"trace,omitempty"` // present when the request set "trace": true
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if !decode(w, r, &req) {
		return
	}
	d := s.D
	if req.Schema != "" {
		var err error
		if d, err = s.lookupSchema(req.Schema); err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
	}
	if d == nil {
		httpErr(w, http.StatusBadRequest, fmt.Errorf("no serving schema configured; pass \"schema\""))
		return
	}
	x, err := s.lookupTarget(req.X)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	// The client may lower the echo cap per request — including to an
	// explicit 0 for a card-only response — but never raise it past the
	// server's bound. A negative limit is a request error, not a silent
	// fallback to the default; validated before any evaluation work.
	capTuples := s.MaxTuples
	if capTuples <= 0 {
		capTuples = DefaultMaxTuples
	}
	limit := capTuples
	if req.Limit != nil {
		switch l := *req.Limit; {
		case l < 0:
			httpErr(w, http.StatusBadRequest, fmt.Errorf("negative limit %d", l))
			return
		case l < capTuples:
			limit = l
		}
	}
	par := s.E.ClampParallelism(req.Parallelism)
	reqID := newRequestID()
	w.Header().Set("X-Request-Id", reqID)
	t0 := time.Now()
	out, st, err := s.E.SolvePar(d, x, par)
	elapsed := time.Since(t0)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	if s.SlowQuery > 0 && elapsed >= s.SlowQuery {
		fp, xfp := d.QueryFingerprint(x)
		s.logSlowQuery(reqID, fp, xfp, s.U.FormatSet(x), par, elapsed, st)
	}
	cols := out.Cols()
	resp := SolveResponse{
		X:         s.U.FormatSet(x),
		RequestID: reqID,
		Cols:      make([]string, len(cols)),
		Card:      out.Card(),
		Stats: SolveStats{
			Statements:       len(st.PerStmt),
			TuplesProduced:   st.TuplesProduced,
			MaxIntermediate:  st.MaxIntermediate,
			Joins:            st.Joins,
			Projects:         st.Projects,
			Semijoins:        st.Semijoins,
			Parallelism:      par,
			ParallelStmts:    st.ParallelStmts,
			Repartitions:     st.Repartitions,
			RepartitionBytes: st.RepartitionBytes,
			ElapsedNs:        st.Elapsed.Nanoseconds(),
		},
	}
	if req.Trace {
		// A second Plan call is a guaranteed cache hit for the plan the
		// solve just used, so the traced path re-derives the statement
		// list without threading the plan through SolvePar's signature.
		pl, err := s.E.Plan(d, x)
		if err == nil {
			if span, serr := pl.Prog.SpanTree(st); serr == nil {
				resp.Trace = span
			}
		}
	}
	for i, c := range cols {
		resp.Cols[i] = s.U.Name(c)
	}
	echo := out.Card()
	if echo > limit {
		echo = limit
		resp.Truncated = true
	}
	resp.Tuples = make([][]relation.Value, echo)
	for i := 0; i < echo; i++ {
		resp.Tuples[i] = append([]relation.Value(nil), out.TupleAt(i)...)
	}
	writeJSON(w, resp)
}

// mutateRequest is the /insert and /delete body, and one element of a
// /load body: a relation (named by its attribute set, e.g. "ab") and a
// tuple batch in that relation's sorted-column order. Schemas are
// multisets, so when the serving schema contains the same relation
// schema more than once, "rel" alone addresses the first occurrence;
// "index" (a position in the serving schema) disambiguates.
type mutateRequest struct {
	Rel    string           `json:"rel"`
	Index  *int             `json:"index,omitempty"`
	Tuples []relation.Tuple `json:"tuples"`
}

type loadRequest struct {
	Relations []mutateRequest `json:"relations"`
}

// MutateResponse is the /insert and /delete reply, and one element of
// a /load reply. Applied counts the tuples actually inserted or
// deleted (set semantics: duplicates and absentees don't count); Card
// is the relation's cardinality in the published snapshot. Durable
// reports whether the acknowledged batch is on disk.
type MutateResponse struct {
	Rel       string `json:"rel"`
	Requested int    `json:"requested"`
	Applied   int    `json:"applied"`
	Card      int    `json:"card"`
	Durable   bool   `json:"durable"`
}

// LoadResponse is the /load reply: per-relation outcomes of one atomic
// multi-relation batch.
type LoadResponse struct {
	Relations []MutateResponse `json:"relations"`
	Durable   bool             `json:"durable"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	s.handleMutate(w, r, storage.KindInsert)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.handleMutate(w, r, storage.KindDelete)
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request, kind storage.Kind) {
	var req mutateRequest
	if !decodeCapped(w, r, &req, MaxBodyBytes) {
		return
	}
	db := s.E.Snapshot()
	if db == nil {
		httpErr(w, http.StatusBadRequest, fmt.Errorf("no database snapshot installed"))
		return
	}
	m, err := s.buildMutation(db, kind, req)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	next, counts, err := s.E.Apply(m)
	if err != nil {
		httpErr(w, applyStatus(err), err)
		return
	}
	writeJSON(w, MutateResponse{
		Rel:       req.Rel,
		Requested: len(req.Tuples),
		Applied:   counts[0],
		Card:      next.Rels[m.Rel].Card(),
		Durable:   s.E.Durable(),
	})
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	capBytes := s.MaxLoadBytes
	if capBytes <= 0 {
		capBytes = DefaultMaxLoadBytes
	}
	var req loadRequest
	if !decodeCapped(w, r, &req, capBytes) {
		return
	}
	if len(req.Relations) == 0 {
		httpErr(w, http.StatusBadRequest, fmt.Errorf("empty \"relations\""))
		return
	}
	db := s.E.Snapshot()
	if db == nil {
		httpErr(w, http.StatusBadRequest, fmt.Errorf("no database snapshot installed"))
		return
	}
	muts := make([]storage.Mutation, len(req.Relations))
	for i, mr := range req.Relations {
		m, err := s.buildMutation(db, storage.KindInsert, mr)
		if err != nil {
			httpErr(w, http.StatusBadRequest, fmt.Errorf("relations[%d]: %w", i, err))
			return
		}
		muts[i] = m
	}
	next, counts, err := s.E.Apply(muts...)
	if err != nil {
		httpErr(w, applyStatus(err), err)
		return
	}
	resp := LoadResponse{Durable: s.E.Durable()}
	for i, mr := range req.Relations {
		resp.Relations = append(resp.Relations, MutateResponse{
			Rel:       mr.Rel,
			Requested: len(mr.Tuples),
			Applied:   counts[i],
			Card:      next.Rels[muts[i].Rel].Card(),
			Durable:   s.E.Durable(),
		})
	}
	writeJSON(w, resp)
}

// applyStatus maps an Engine.Apply error to an HTTP status: a
// durability failure is the server's fault (5xx, retryable, should
// alert), everything else is request validation (4xx).
func applyStatus(err error) int {
	if errors.Is(err, ErrDurability) {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

// buildMutation resolves a mutateRequest against the snapshot's schema
// (lookup-only: unknown attribute names are a request error) and
// validates tuple arities.
//
// The resolved index is re-validated by Apply only for range and
// width: no HTTP endpoint changes the schema, so the resolution cannot
// go stale under pure-HTTP traffic, but an embedding process that
// issues Create/Drop mutations through the Go API concurrently with
// HTTP writes can shift indexes between resolution and Apply.
func (s *Server) buildMutation(db *relation.Database, kind storage.Kind, req mutateRequest) (storage.Mutation, error) {
	if req.Rel == "" {
		return storage.Mutation{}, fmt.Errorf("missing relation \"rel\"")
	}
	set, err := s.lookupTarget(req.Rel)
	if err != nil {
		return storage.Mutation{}, err
	}
	idx := -1
	if req.Index != nil {
		// Explicit position: must name the same relation schema, so a
		// stale index cannot silently write to the wrong relation.
		i := *req.Index
		if i < 0 || i >= len(db.D.Rels) {
			return storage.Mutation{}, fmt.Errorf("index %d out of range (schema has %d relations)", i, len(db.D.Rels))
		}
		if !db.D.Rels[i].Equal(set) {
			return storage.Mutation{}, fmt.Errorf("relation at index %d is %s, not %q",
				i, db.D.U.FormatSet(db.D.Rels[i]), req.Rel)
		}
		idx = i
	} else {
		for i, r := range db.D.Rels {
			if r.Equal(set) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return storage.Mutation{}, fmt.Errorf("relation %q not in serving schema %s", req.Rel, db.D)
		}
	}
	width := set.Card()
	for i, t := range req.Tuples {
		if len(t) != width {
			return storage.Mutation{}, fmt.Errorf("tuple %d has arity %d, want %d", i, len(t), width)
		}
	}
	if len(req.Tuples) == 0 {
		return storage.Mutation{}, fmt.Errorf("empty \"tuples\"")
	}
	if kind == storage.KindDelete {
		return storage.Delete(idx, width, req.Tuples), nil
	}
	return storage.Insert(idx, width, req.Tuples), nil
}

// RelationStats describes one relation of the live snapshot.
type RelationStats struct {
	Rel        string `json:"rel"`
	Card       int    `json:"card"`
	ArenaBytes int    `json:"arenaBytes"`
}

// DurabilityStats is the /stats durability section, present when the
// engine has a Store.
type DurabilityStats struct {
	WALBytes            int64  `json:"walBytes"`
	WALSegments         int    `json:"walSegments"`
	Appends             uint64 `json:"appends"`
	Replayed            uint64 `json:"replayed"` // batches replayed at boot
	Checkpoints         uint64 `json:"checkpoints"`
	ChunksWritten       uint64 `json:"chunksWritten"`       // chunk records appended by checkpoints
	ChunksReused        uint64 `json:"chunksReused"`        // chunk references reused without rewriting
	CheckpointBytes     uint64 `json:"checkpointBytes"`     // cumulative checkpoint I/O
	ChunkStoreBytes     int64  `json:"chunkStoreBytes"`     // current chunk-store file size
	Compactions         uint64 `json:"compactions"`         // chunk-store GC rewrites
	LastCheckpointAgeMs int64  `json:"lastCheckpointAgeMs"` // -1 = never (this process)
	LastCheckpointError string `json:"lastCheckpointError,omitempty"`
}

// StatsResponse is the /stats reply. Per-relation cardinalities live
// in Relations (which superseded the bare snapshotCard array).
type StatsResponse struct {
	PlanHits      uint64           `json:"planHits"`
	PlanMisses    uint64           `json:"planMisses"`
	PlanEvictions uint64           `json:"planEvictions"`
	CachedPlans   int              `json:"cachedPlans"`
	Evals         uint64           `json:"evals"`
	ParEvals      uint64           `json:"parEvals"`
	Workers       int              `json:"workers"`       // per-request parallelism cap
	UptimeSeconds float64          `json:"uptimeSeconds"` // since process start
	Goroutines    int              `json:"goroutines"`
	BuildInfo     *BuildInfo       `json:"buildInfo,omitempty"` // embedded module/VCS provenance
	Schema        string           `json:"schema,omitempty"`
	Relations     []RelationStats  `json:"relations,omitempty"`  // live snapshot, by relation
	ArenaBytes    int64            `json:"arenaBytes,omitempty"` // total tuple-arena bytes served
	Durability    *DurabilityStats `json:"durability,omitempty"` // present when storage is configured
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.E.Stats()
	resp := StatsResponse{
		PlanHits:      st.PlanHits,
		PlanMisses:    st.PlanMisses,
		PlanEvictions: st.Evictions,
		CachedPlans:   st.CachedPlans,
		Evals:         st.Evals,
		ParEvals:      st.ParEvals,
		Workers:       s.E.Workers(),
		UptimeSeconds: time.Since(processStart).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
		BuildInfo:     readBuildInfo(),
	}
	if s.D != nil {
		resp.Schema = s.D.String()
	}
	if db := s.E.Snapshot(); db != nil {
		resp.Relations = make([]RelationStats, len(db.Rels))
		for i, rel := range db.Rels {
			resp.Relations[i] = RelationStats{
				Rel:        db.D.U.FormatSet(db.D.Rels[i]),
				Card:       rel.Card(),
				ArenaBytes: rel.ArenaBytes(),
			}
			resp.ArenaBytes += int64(rel.ArenaBytes())
		}
		if db.Univ != nil {
			resp.ArenaBytes += int64(db.Univ.ArenaBytes())
		}
	}
	if store := s.E.Store(); store != nil {
		sst := store.Stats()
		ds := &DurabilityStats{
			WALBytes:            sst.WALBytes,
			WALSegments:         sst.Segments,
			Appends:             sst.Appends,
			Replayed:            sst.Replayed,
			Checkpoints:         sst.Checkpoints,
			ChunksWritten:       sst.ChunksWritten,
			ChunksReused:        sst.ChunksReused,
			CheckpointBytes:     sst.CheckpointBytes,
			ChunkStoreBytes:     sst.ChunkStoreBytes,
			Compactions:         sst.Compactions,
			LastCheckpointAgeMs: -1,
			LastCheckpointError: sst.LastCheckpointErr,
		}
		if !sst.LastCheckpoint.IsZero() {
			ds.LastCheckpointAgeMs = time.Since(sst.LastCheckpoint).Milliseconds()
		}
		resp.Durability = ds
	}
	writeJSON(w, resp)
}

// parseTarget parses a target attribute set, rejecting the empty set
// (a degenerate query the program builders error on anyway, with a
// clearer message here).
func parseTarget(u *schema.Universe, s string) (schema.AttrSet, error) {
	if s == "" {
		return schema.AttrSet{}, fmt.Errorf("missing target attribute set \"x\"")
	}
	d, err := schema.Parse(u, s)
	if err != nil {
		return schema.AttrSet{}, err
	}
	if len(d.Rels) != 1 {
		return schema.AttrSet{}, fmt.Errorf("target %q must be a single attribute set", s)
	}
	return d.Rels[0], nil
}

// lookupSchema parses text into a throwaway universe and translates it
// into the serving universe by lookup only: /solve must produce
// AttrSets over s.U (to align with the snapshot), but client requests
// must not grow s.U, so names the serving schema does not know are a
// request error rather than a fresh interning.
func (s *Server) lookupSchema(text string) (*schema.Schema, error) {
	tmp := schema.NewUniverse()
	d, err := schema.Parse(tmp, text)
	if err != nil {
		return nil, err
	}
	out := &schema.Schema{U: s.U}
	for _, r := range d.Rels {
		set, err := s.lookupSet(tmp, r)
		if err != nil {
			return nil, err
		}
		out.Rels = append(out.Rels, set)
	}
	return out, nil
}

// lookupTarget is parseTarget against the serving universe, lookup only.
func (s *Server) lookupTarget(text string) (schema.AttrSet, error) {
	tmp := schema.NewUniverse()
	x, err := parseTarget(tmp, text)
	if err != nil {
		return schema.AttrSet{}, err
	}
	return s.lookupSet(tmp, x)
}

// lookupSet maps a set over tmp into the serving universe by name.
func (s *Server) lookupSet(tmp *schema.Universe, set schema.AttrSet) (schema.AttrSet, error) {
	var ids []schema.Attr
	var unknown string
	set.ForEach(func(a schema.Attr) bool {
		name := tmp.Name(a)
		id, ok := s.U.Lookup(name)
		if !ok {
			unknown = name
			return false
		}
		ids = append(ids, id)
		return true
	})
	if unknown != "" {
		return schema.AttrSet{}, fmt.Errorf("attribute %q not in serving schema", unknown)
	}
	return schema.NewAttrSet(ids...), nil
}

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	return decodeCapped(w, r, dst, MaxBodyBytes)
}

func decodeCapped(w http.ResponseWriter, r *http.Request, dst any, capBytes int64) bool {
	if r.Method != http.MethodPost {
		httpErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST with a JSON body"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, capBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpErr(w, http.StatusBadRequest, fmt.Errorf("invalid JSON body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing useful left to do.
		_ = err
	}
}

func httpErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
