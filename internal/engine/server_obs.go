package engine

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gyokit/internal/obs"
	"gyokit/internal/program"
)

// Logf formats to the engine's configured log sink (Options.Logf); it
// is a no-op when none was configured, so callers never need to branch.
func (e *Engine) Logf(format string, args ...any) {
	if e.logf != nil {
		e.logf(format, args...)
	}
}

// processStart anchors the uptime series. A package variable rather
// than a Server field so uptime survives Server reconstruction and is
// correct for struct-literal Servers that never went through NewServer.
var processStart = time.Now()

// ridBase is a per-process random prefix for request ids, so ids from
// different server incarnations never collide in aggregated logs.
var ridBase = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}()

var ridSeq atomic.Uint64

// newRequestID returns a process-unique request id: random process
// prefix plus a monotone sequence number.
func newRequestID() string {
	return fmt.Sprintf("%s-%d", ridBase, ridSeq.Add(1))
}

// handleMetrics serves the engine's registry (which, when gyod wires
// one registry into both engine and store, includes the storage series)
// in Prometheus text exposition format, plus process-level series
// computed at scrape time.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	// Encode into a buffer first: a registry callback panicking or an
	// encode error must not leave a half-written 200 on the wire.
	var buf bytes.Buffer
	if err := s.E.Metrics().WriteText(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err)
		return
	}
	obs.WriteSeries(&buf, "gyo_uptime_seconds",
		"Seconds since the serving process started.", "gauge",
		time.Since(processStart).Seconds())
	obs.WriteSeries(&buf, "gyo_goroutines",
		"Goroutines live in the serving process.", "gauge",
		float64(runtime.NumGoroutine()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

// logSlowQuery emits one line for a /solve that exceeded the server's
// SlowQuery threshold: the request id (echoed to the client in
// X-Request-Id, so client and server logs correlate), the query
// fingerprint (stable across requests — the aggregation key), the
// parallelism used, and the top-3 most expensive statements.
func (s *Server) logSlowQuery(reqID string, fp, xfp uint64, x string, par int, elapsed time.Duration, st *program.Stats) {
	top := topStatements(st, 3)
	s.E.Logf("gyod: slow query id=%s fp=%016x:%016x x=%s parallelism=%d elapsed=%s top=[%s]",
		reqID, fp, xfp, x, par, elapsed.Round(time.Microsecond), top)
}

// topStatements formats the n most expensive statements of a run,
// most expensive first, as "#idx op in→out elapsed".
func topStatements(st *program.Stats, n int) string {
	idx := make([]int, len(st.Detail))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return st.Detail[idx[a]].Elapsed > st.Detail[idx[b]].Elapsed
	})
	if n > len(idx) {
		n = len(idx)
	}
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		d := st.Detail[idx[i]]
		if i > 0 {
			buf.WriteString(", ")
		}
		in := fmt.Sprintf("%d", d.InLeft)
		if d.InRight >= 0 {
			in += fmt.Sprintf("⋈%d", d.InRight)
		}
		fmt.Fprintf(&buf, "#%d %s %s→%d %s",
			idx[i], d.Kind, in, d.Out, d.Elapsed.Round(time.Microsecond))
	}
	return buf.String()
}

// BuildInfo is the /stats build-provenance block, extracted from the
// binary's embedded module data.
type BuildInfo struct {
	GoVersion   string `json:"goVersion"`
	Path        string `json:"path,omitempty"`
	Version     string `json:"version,omitempty"`
	VCSRevision string `json:"vcsRevision,omitempty"`
	VCSTime     string `json:"vcsTime,omitempty"`
	VCSModified bool   `json:"vcsModified,omitempty"`
}

// buildInfoOnce caches the immutable build block: debug.ReadBuildInfo
// re-parses the embedded data on every call, and /stats may be polled.
var buildInfoOnce = sync.OnceValue(func() *BuildInfo {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return nil
	}
	out := &BuildInfo{GoVersion: bi.GoVersion, Path: bi.Main.Path, Version: bi.Main.Version}
	for _, set := range bi.Settings {
		switch set.Key {
		case "vcs.revision":
			out.VCSRevision = set.Value
		case "vcs.time":
			out.VCSTime = set.Value
		case "vcs.modified":
			out.VCSModified = set.Value == "true"
		}
	}
	return out
})

// readBuildInfo returns the binary's build provenance, or nil when the
// binary carries none (e.g. some test binaries).
func readBuildInfo() *BuildInfo { return buildInfoOnce() }
