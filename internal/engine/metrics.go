package engine

import (
	"gyokit/internal/obs"
)

// engineMetrics holds the engine's observability instruments. Handles
// are plain pointers observed on the hot paths (one or two atomic ops
// each — the cached-plan solve overhead is CI-gated at ≤5%); pull-style
// gauges are registered as scrape-time callbacks in registerGauges.
type engineMetrics struct {
	// solve latency split by plan-cache outcome × execution mode:
	// [0]=cache hit, [1]=cache miss (cold); [_][0]=serial, [_][1]=parallel.
	solve [2][2]*obs.Histogram

	planHits      *obs.Counter
	planMisses    *obs.Counter
	planEvictions *obs.Counter

	applySec         *obs.Histogram // Apply latency: copy-on-write + WAL append + publish
	applyBatchTuples *obs.Histogram // tuples per Apply batch

	repartitions     *obs.Counter // partitionings built by parallel runs
	repartitionBytes *obs.Counter // arena bytes those partitionings moved

	cqPlans   map[string]*obs.Counter // compiled conjunctive queries by plan kind
	cqLimited map[string]*obs.Counter // query evaluations aborted by a resource rail
}

func newEngineMetrics(reg *obs.Registry) engineMetrics {
	const solveHelp = "End-to-end Solve latency (plan lookup, alignment, evaluation)."
	solve := func(cache, mode string) *obs.Histogram {
		return reg.Histogram("gyo_solve_seconds", solveHelp, obs.LatencyBuckets(),
			"cache", cache, "mode", mode)
	}
	const planHelp = "Plan-cache events: hits served, misses compiled, LRU evictions."
	plan := func(event string) *obs.Counter {
		return reg.Counter("gyo_plan_cache_total", planHelp, "event", event)
	}
	const cqHelp = "Conjunctive queries compiled, by plan kind."
	cqPlans := make(map[string]*obs.Counter, 3)
	for _, kind := range []string{"free-connex", "acyclic", "cyclic"} {
		cqPlans[kind] = reg.Counter("gyo_cq_plans_total", cqHelp, "kind", kind)
	}
	const limHelp = "Query evaluations aborted by a resource rail (gas budget or deadline)."
	cqLimited := make(map[string]*obs.Counter, 2)
	for _, reason := range []string{"gas", "deadline"} {
		cqLimited[reason] = reg.Counter("gyo_cq_limited_total", limHelp, "reason", reason)
	}
	return engineMetrics{
		solve: [2][2]*obs.Histogram{
			{solve("hit", "serial"), solve("hit", "parallel")},
			{solve("miss", "serial"), solve("miss", "parallel")},
		},
		planHits:      plan("hit"),
		planMisses:    plan("miss"),
		planEvictions: plan("eviction"),
		applySec: reg.Histogram("gyo_apply_seconds",
			"Durable write-path latency per batch: copy-on-write apply, WAL append, snapshot publish.",
			obs.LatencyBuckets()),
		applyBatchTuples: reg.Histogram("gyo_apply_batch_tuples",
			"Tuples per Apply mutation batch.", obs.SizeBuckets(1, 4, 12)),
		repartitions: reg.Counter("gyo_repartitions_total",
			"Partitionings built during parallel evaluation (initial or key change)."),
		repartitionBytes: reg.Counter("gyo_repartition_bytes_total",
			"Arena bytes moved building those partitionings — the would-be network traffic of a distributed run."),
		cqPlans:   cqPlans,
		cqLimited: cqLimited,
	}
}

// solveHist picks the latency histogram for one solve call.
func (m *engineMetrics) solveHist(cacheHit bool, parallel bool) *obs.Histogram {
	ci, mi := 1, 0
	if cacheHit {
		ci = 0
	}
	if parallel {
		mi = 1
	}
	return m.solve[ci][mi]
}

// registerGauges adds the engine's pull-style gauges: values that are
// snapshots of live state rather than events. Called once from New;
// the callbacks run at scrape time on the scraper's goroutine.
func (e *Engine) registerGauges(reg *obs.Registry) {
	reg.GaugeFunc("gyo_plan_cache_resident",
		"Plans currently resident in the LRU cache.", func() float64 {
			if e.cache == nil {
				return 0
			}
			e.mu.Lock()
			defer e.mu.Unlock()
			return float64(e.cache.len())
		})
	reg.GaugeFunc("gyo_snapshot_arena_bytes",
		"Tuple-arena bytes of the live database snapshot (universe included).", func() float64 {
			db := e.db.Load()
			if db == nil {
				return 0
			}
			var total int64
			for _, r := range db.Rels {
				total += int64(r.ArenaBytes())
			}
			if db.Univ != nil {
				total += int64(db.Univ.ArenaBytes())
			}
			return float64(total)
		})
	reg.GaugeFunc("gyo_snapshot_relations",
		"Relations in the live database snapshot.", func() float64 {
			db := e.db.Load()
			if db == nil {
				return 0
			}
			return float64(len(db.Rels))
		})
}

// Metrics returns the engine's observability registry — the one passed
// in Options.Metrics, or the engine's private registry when none was.
// Serve it as a Prometheus endpoint with Registry.WriteText.
func (e *Engine) Metrics() *obs.Registry { return e.reg }
