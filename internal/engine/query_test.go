package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"gyokit/internal/program"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

// queryEngine builds an engine serving the chain schema "ab, bc, cd"
// with small hand-set relations, so expected query answers can be
// computed in the test.
func queryEngine(t *testing.T) (*Engine, *schema.Universe) {
	t.Helper()
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc, cd")
	db := &relation.Database{D: d}
	fill := func(set schema.AttrSet, rows []relation.Tuple) {
		r := relation.New(u, set)
		for _, row := range rows {
			r.Insert(row)
		}
		db.Rels = append(db.Rels, r)
	}
	fill(d.Rels[0], []relation.Tuple{{1, 10}, {2, 20}, {3, 30}})
	fill(d.Rels[1], []relation.Tuple{{10, 100}, {20, 200}, {99, 999}})
	fill(d.Rels[2], []relation.Tuple{{100, 7}, {200, 7}})
	e := New(Options{})
	e.Swap(db)
	return e, u
}

func TestPrepareQueryCache(t *testing.T) {
	e, _ := queryEngine(t)

	p1, err := e.PrepareQuery("ans(A, C) :- ab(A, B), bc(B, C).")
	if err != nil {
		t.Fatal(err)
	}
	// A whitespace variant canonicalizes to the same text and must hit.
	p2, err := e.PrepareQuery("ans(A,C):-ab(A,B),bc(B,C).")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("whitespace variant of the same query missed the plan cache")
	}
	st := e.Stats()
	if st.PlanHits != 1 || st.PlanMisses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}

	// A different query misses.
	if _, err := e.PrepareQuery("ans(A, B) :- ab(A, B)."); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.PlanMisses != 2 {
		t.Errorf("distinct query did not miss: %+v", st)
	}
}

func tupleSet(r *relation.Relation) map[string]bool {
	out := make(map[string]bool, r.Card())
	for i := 0; i < r.Card(); i++ {
		out[fmt.Sprint(r.TupleAt(i))] = true
	}
	return out
}

func TestSolveQuery(t *testing.T) {
	e, _ := queryEngine(t)

	cases := []struct {
		query string
		want  [][]relation.Value // expected tuples in the result's sorted-column order
	}{
		// Identity scan.
		{"ans(A, B) :- ab(A, B).", [][]relation.Value{{1, 10}, {2, 20}, {3, 30}}},
		// Column swap: the same relation addressed with swapped variables.
		{"ans(B, A) :- ab(A, B).", [][]relation.Value{{1, 10}, {2, 20}, {3, 30}}},
		// Two-hop join projected to the endpoints (acyclic, not free-connex).
		{"ans(A, C) :- ab(A, B), bc(B, C).", [][]relation.Value{{1, 100}, {2, 200}}},
		// Free-connex: head covers atom ab.
		{"ans(A, B) :- ab(A, B), bc(B, C).", [][]relation.Value{{1, 10}, {2, 20}}},
		// Full chain.
		{"ans(A, D) :- ab(A, B), bc(B, C), cd(C, D).", [][]relation.Value{{1, 7}, {2, 7}}},
		// Self-join of bc with itself: b→c chained twice has no matches
		// (no c value is also a b value), so the answer is empty.
		{"ans(X, Z) :- bc(X, Y), bc(Y, Z).", nil},
	}
	for _, c := range cases {
		pl, err := e.PrepareQuery(c.query)
		if err != nil {
			t.Errorf("PrepareQuery(%q): %v", c.query, err)
			continue
		}
		out, st, err := e.SolveQuery(pl, 1, program.Limits{})
		if err != nil {
			t.Errorf("SolveQuery(%q): %v", c.query, err)
			continue
		}
		if st == nil {
			t.Errorf("SolveQuery(%q): nil stats", c.query)
		}
		got := tupleSet(out)
		if len(got) != len(c.want) {
			t.Errorf("%q: card = %d, want %d (%v)", c.query, out.Card(), len(c.want), out)
			continue
		}
		for _, w := range c.want {
			if !got[fmt.Sprint(relation.Tuple(w))] {
				t.Errorf("%q: missing tuple %v in %v", c.query, w, out)
			}
		}
	}

	// The parallel path returns the same answers.
	pl, err := e.PrepareQuery("ans(A, D) :- ab(A, B), bc(B, C), cd(C, D).")
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := e.SolveQuery(pl, 4, program.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Card() != 2 {
		t.Errorf("parallel SolveQuery card = %d, want 2", out.Card())
	}
}

func TestSolveQueryBindErrors(t *testing.T) {
	e, _ := queryEngine(t)

	cases := []struct {
		query, frag string
	}{
		{"ans(X, Y) :- zq(X, Y).", "not in serving schema"},
		{"ans(X, Y) :- ba(X, Y).", "not in serving schema"}, // ba ≡ ab as a set… but attribute order still resolves; the set exists
	}
	// "ba" names attributes b, a — the set {a, b} exists, so it binds.
	pl, err := e.PrepareQuery(cases[1].query)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := e.SolveQuery(pl, 1, program.Limits{})
	if err != nil {
		t.Fatalf("ba(X, Y) should bind to the ab relation with swapped columns: %v", err)
	}
	if !tupleSet(out)[fmt.Sprint(relation.Tuple{10, 1})] {
		t.Errorf("ba(X, Y) did not swap columns: %v", out)
	}

	pl, err = e.PrepareQuery(cases[0].query)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.SolveQuery(pl, 1, program.Limits{}); err == nil || !strings.Contains(err.Error(), cases[0].frag) {
		t.Errorf("unknown predicate err = %v, want %q", err, cases[0].frag)
	}

	// A plan not built by PrepareQuery is rejected.
	if _, _, err := e.SolveQuery(&Plan{}, 1, program.Limits{}); err == nil {
		t.Error("SolveQuery accepted a non-query plan")
	}
}

func TestSolveQueryLimits(t *testing.T) {
	e, _ := queryEngine(t)
	pl, err := e.PrepareQuery("ans(A, D) :- ab(A, B), bc(B, C), cd(C, D).")
	if err != nil {
		t.Fatal(err)
	}
	out, st, err := e.SolveQuery(pl, 1, program.Limits{MaxTuples: 1})
	if out != nil || st != nil {
		t.Error("gas-limited query returned partial state")
	}
	if !errors.Is(err, program.ErrGasExhausted) {
		t.Errorf("err = %v, want ErrGasExhausted", err)
	}
}

func BenchmarkQueryCachedVsCold(b *testing.B) {
	const text = "ans(A, D) :- ab(A, B), bc(B, C), cd(C, D)."
	b.Run("cold", func(b *testing.B) {
		e := New(Options{PlanCacheSize: -1}) // cache disabled: full compile every time
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.PrepareQuery(text); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		e := New(Options{})
		if _, err := e.PrepareQuery(text); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.PrepareQuery(text); err != nil {
				b.Fatal(err)
			}
		}
	})
}
