package engine

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"gyokit/internal/relation"
	"gyokit/internal/schema"
	"gyokit/internal/storage"
)

func testServer(t *testing.T) (*httptest.Server, *schema.Universe, *Server) {
	t.Helper()
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc, cd")
	e := New(Options{})
	e.Swap(urdb(d, 5, 50, 4))
	srv := NewServer(e, u, d)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, u, srv
}

func post(t *testing.T, url string, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp
}

func TestServerClassify(t *testing.T) {
	ts, _, _ := testServer(t)

	var tree ClassifyResponse
	post(t, ts.URL+"/classify", `{"schema": "ab, bc, cd"}`, &tree)
	if !tree.Tree || !tree.GammaAcyclic || len(tree.QualTree) != 2 {
		t.Errorf("chain classification = %+v", tree)
	}

	var ring ClassifyResponse
	post(t, ts.URL+"/classify", `{"schema": "ab, bc, ca"}`, &ring)
	if ring.Tree || ring.TreefyWith != "abc" {
		t.Errorf("Aring(3) classification = %+v", ring)
	}
}

func TestServerPlan(t *testing.T) {
	ts, _, srv := testServer(t)

	var plan PlanResponse
	post(t, ts.URL+"/plan", `{"schema": "ab, bc, cd", "x": "ad"}`, &plan)
	if !plan.Tree || len(plan.Stmts) == 0 {
		t.Fatalf("plan = %+v", plan)
	}
	semijoins := 0
	for _, st := range plan.Stmts {
		if st.Op == "semijoin" {
			semijoins++
		}
		if st.Op == "project" && (st.Right != -1 || st.Proj == "") {
			t.Errorf("bad projection statement %+v", st)
		}
	}
	if semijoins == 0 {
		t.Error("Yannakakis plan has no semijoin statements")
	}

	// Repeat request hits the plan cache.
	before := srv.E.Stats().PlanHits
	post(t, ts.URL+"/plan", `{"schema": "ab, bc, cd", "x": "ad"}`, &plan)
	if srv.E.Stats().PlanHits != before+1 {
		t.Error("repeated /plan did not hit the cache")
	}
}

func TestServerSolve(t *testing.T) {
	ts, u, srv := testServer(t)

	var sol SolveResponse
	post(t, ts.URL+"/solve", `{"x": "ad"}`, &sol)
	want := srv.E.Snapshot().Eval(u.Set("a", "d"))
	if sol.Card != want.Card() {
		t.Errorf("/solve card = %d, want %d", sol.Card, want.Card())
	}
	if len(sol.Cols) != 2 || sol.Cols[0] != "a" || sol.Cols[1] != "d" {
		t.Errorf("/solve cols = %v", sol.Cols)
	}
	if len(sol.Tuples) != sol.Card || sol.Truncated {
		t.Errorf("/solve echoed %d/%d tuples (truncated=%v)", len(sol.Tuples), sol.Card, sol.Truncated)
	}
	if sol.Stats.Statements == 0 || sol.Stats.Semijoins == 0 {
		t.Errorf("/solve stats = %+v", sol.Stats)
	}

	// Tuple cap.
	var capped SolveResponse
	post(t, ts.URL+"/solve", `{"x": "ad", "limit": 1}`, &capped)
	if capped.Card != sol.Card || len(capped.Tuples) > 1 || (capped.Card > 1 && !capped.Truncated) {
		t.Errorf("capped /solve = card %d, %d tuples, truncated=%v", capped.Card, len(capped.Tuples), capped.Truncated)
	}

	// A client limit can lower but never exceed the server's cap.
	srv.MaxTuples = 2
	var greedy SolveResponse
	post(t, ts.URL+"/solve", `{"x": "ad", "limit": 2000000000}`, &greedy)
	if len(greedy.Tuples) > 2 {
		t.Errorf("client limit overrode server cap: %d tuples echoed", len(greedy.Tuples))
	}
}

// TestServerSolveLimitSemantics pins the edge cases of the per-request
// echo cap: an explicit limit of 0 is a card-only request (zero tuples
// echoed, full cardinality still reported), and a negative limit is a
// request error — neither silently falls back to the server default.
func TestServerSolveLimitSemantics(t *testing.T) {
	ts, _, _ := testServer(t)

	var zero SolveResponse
	post(t, ts.URL+"/solve", `{"x": "ad", "limit": 0}`, &zero)
	if zero.Card == 0 {
		t.Fatal("test query is empty; limit semantics unobservable")
	}
	if len(zero.Tuples) != 0 || !zero.Truncated {
		t.Errorf("limit 0: %d tuples, truncated=%v; want 0 tuples, truncated", len(zero.Tuples), zero.Truncated)
	}

	if resp := post(t, ts.URL+"/solve", `{"x": "ad", "limit": -1}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative limit: status %d, want 400", resp.StatusCode)
	}

	// Omitting the limit still echoes up to the server default.
	var full SolveResponse
	post(t, ts.URL+"/solve", `{"x": "ad"}`, &full)
	if len(full.Tuples) != full.Card || full.Truncated {
		t.Errorf("omitted limit: %d/%d tuples, truncated=%v", len(full.Tuples), full.Card, full.Truncated)
	}
}

func TestServerErrorsAndStats(t *testing.T) {
	ts, _, _ := testServer(t)

	if resp := post(t, ts.URL+"/solve", `{"x": ""}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing x: status %d", resp.StatusCode)
	}
	if resp := post(t, ts.URL+"/classify", `{"schema": "a-b"}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad schema: status %d", resp.StatusCode)
	}
	if resp := post(t, ts.URL+"/classify", `not json`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body: status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/classify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /classify: status %d", resp.StatusCode)
	}
	// Solving a schema that does not match the snapshot is a 400, not a 500.
	if resp := post(t, ts.URL+"/solve", `{"schema": "xy, yz", "x": "xz"}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mismatched solve schema: status %d", resp.StatusCode)
	}

	var st StatsResponse
	resp2, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Relations) != 3 || st.Schema == "" {
		t.Errorf("/stats = %+v", st)
	}
}

// TestServerDurabilityStats: a store-backed server surfaces the
// incremental-checkpoint counters — chunks written vs reused and the
// bytes each checkpoint actually cost — so an operator can see from
// /stats alone whether checkpoints are O(dirty) or rewriting the
// world.
func TestServerDurabilityStats(t *testing.T) {
	dir := t.TempDir()
	e, st := openDurable(t, dir, storage.Options{NoSync: true, CheckpointBytes: -1})
	defer st.Close()
	if _, _, err := e.Apply(storage.Create("a", "b")); err != nil {
		t.Fatal(err)
	}
	tuples := make([]relation.Tuple, 5000)
	for i := range tuples {
		tuples[i] = relation.Tuple{relation.Value(2 * i), relation.Value(2*i + 1)}
	}
	if _, _, err := e.Apply(storage.Insert(0, 2, tuples)); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	db := e.Snapshot()
	ts := httptest.NewServer(NewServer(e, db.D.U, db.D).Handler())
	defer ts.Close()
	getStats := func() StatsResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	s1 := getStats()
	if s1.Durability == nil {
		t.Fatal("/stats missing durability section for store-backed engine")
	}
	d1 := s1.Durability
	if d1.Checkpoints < 1 || d1.ChunksWritten < 1 || d1.CheckpointBytes <= 0 || d1.ChunkStoreBytes <= 0 {
		t.Errorf("first checkpoint stats = %+v", d1)
	}
	if d1.LastCheckpointError != "" {
		t.Errorf("unexpected checkpoint error: %q", d1.LastCheckpointError)
	}

	// A small delta checkpoint reuses the durable chunks and reports a
	// byte cost far below the first full write.
	if _, _, err := e.Apply(storage.Insert(0, 2, []relation.Tuple{{99991, 99992}})); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d2 := getStats().Durability
	if d2.ChunksReused < 1 {
		t.Errorf("delta checkpoint reused no chunks: %+v", d2)
	}
	if d2.ChunksWritten != d1.ChunksWritten {
		t.Errorf("delta checkpoint rewrote chunks: %d → %d", d1.ChunksWritten, d2.ChunksWritten)
	}
	if inc := d2.CheckpointBytes - d1.CheckpointBytes; inc <= 0 || inc >= d1.CheckpointBytes {
		t.Errorf("delta checkpoint bytes = %d (first = %d)", inc, d1.CheckpointBytes)
	}
}

// TestServerUniverseDoesNotGrow locks in the DoS hardening: client
// requests carrying fresh attribute names must not intern anything
// into the serving universe, and /solve must reject unknown names.
func TestServerUniverseDoesNotGrow(t *testing.T) {
	ts, u, _ := testServer(t)
	before := u.Size()

	post(t, ts.URL+"/classify", `{"schema": "pq, qr, rs"}`, nil)
	post(t, ts.URL+"/plan", `{"schema": "mn, no", "x": "mo"}`, nil)
	if resp := post(t, ts.URL+"/solve", `{"x": "az"}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("/solve with unknown attribute: status %d, want 400", resp.StatusCode)
	}
	if resp := post(t, ts.URL+"/solve", `{"schema": "ab, zz", "x": "ab"}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("/solve with unknown schema attribute: status %d, want 400", resp.StatusCode)
	}

	if after := u.Size(); after != before {
		t.Errorf("serving universe grew from %d to %d attributes on client input", before, after)
	}

	// Known names keep working through the lookup-only path.
	var sol SolveResponse
	post(t, ts.URL+"/solve", `{"schema": "ab, bc, cd", "x": "ad"}`, &sol)
	if sol.Card == 0 {
		t.Error("lookup-only /solve with explicit schema failed")
	}
}

// TestServerConcurrentRequests drives the full HTTP path from many
// goroutines — including new schema texts that intern concurrently —
// and is meaningful mainly under -race.
func TestServerConcurrentRequests(t *testing.T) {
	ts, _, _ := testServer(t)
	schemas := []string{
		`{"schema": "ab, bc, cd", "x": "ad"}`,
		`{"schema": "pq, qr", "x": "pr"}`,
		`{"schema": "ab, bc, ca", "x": "ab"}`,
		`{"schema": "uv, vw, wx, xy", "x": "uy"}`,
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				body := schemas[(g+i)%len(schemas)]
				resp, err := http.Post(ts.URL+"/plan", "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("reader %d: /plan status %d for %s", g, resp.StatusCode, body)
					return
				}
				resp, err = http.Post(ts.URL+"/solve", "application/json", bytes.NewReader([]byte(`{"x": "ad"}`)))
				if err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("reader %d: /solve status %d", g, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
