package engine

import (
	"errors"
	"fmt"
	"time"

	"gyokit/internal/cq"
	"gyokit/internal/program"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

// PrepareQuery parses, classifies, and plans a conjunctive query (see
// internal/cq for the grammar), caching the compiled plan in the same
// LRU the schema-set path uses. The cache key is a fingerprint of the
// query's canonical text, so whitespace variants of one query share an
// entry; hits are verified by comparing canonical texts, so a
// fingerprint collision degrades to a miss, never to a wrong plan.
//
// The compiled plan is schema-independent — atoms bind to stored
// relations by name at solve time — so cached query plans never go
// stale when the serving snapshot changes.
func (e *Engine) PrepareQuery(text string) (*Plan, error) {
	q, err := cq.Parse(text)
	if err != nil {
		return nil, err
	}
	canonical := q.String()
	a, b := cq.Fingerprint(canonical)
	key := cacheKey{schemaFP: a, targetFP: b}
	if e.cache != nil {
		e.mu.Lock()
		pl, ok := e.cache.get(key)
		e.mu.Unlock()
		if ok && pl.CQ != nil && pl.CQ.Canonical == canonical {
			e.hits.Add(1)
			e.m.planHits.Inc()
			return pl, nil
		}
	}
	e.misses.Add(1)
	e.m.planMisses.Inc()
	c, err := q.Compile()
	if err != nil {
		return nil, err
	}
	pl := &Plan{D: c.D, X: c.Head, Cls: c.Cls, Prog: c.Prog, CQ: c}
	e.storePlan(key, pl)
	if ctr := e.m.cqPlans[c.Kind.String()]; ctr != nil {
		ctr.Inc()
	}
	return pl, nil
}

// SolveQuery evaluates a prepared conjunctive query (a PrepareQuery
// plan) against the current snapshot: each atom is resolved against the
// serving schema by attribute name (lookup only — client queries never
// grow the serving universe) and rebound to the query's variable
// vocabulary, then the compiled program runs under lim with the given
// parallelism (clamped to the engine's worker cap). A limit violation
// returns a *program.LimitError matching program.ErrGasExhausted or
// program.ErrDeadlineExceeded.
func (e *Engine) SolveQuery(pl *Plan, parallelism int, lim program.Limits) (*relation.Relation, *program.Stats, error) {
	if pl == nil || pl.CQ == nil {
		return nil, nil, fmt.Errorf("engine: plan is not a prepared query (use PrepareQuery)")
	}
	db := e.db.Load()
	if db == nil {
		return nil, nil, fmt.Errorf("engine: no database snapshot installed (call Swap first)")
	}
	qdb, err := bindQuery(pl.CQ, db)
	if err != nil {
		return nil, nil, err
	}
	parallelism = e.ClampParallelism(parallelism)
	t0 := time.Now()
	var out *relation.Relation
	var st *program.Stats
	if parallelism <= 1 {
		ex := e.execs.Get().(*relation.Exec)
		out, st, err = pl.Prog.EvalExecLimits(qdb, ex, lim)
		e.execs.Put(ex)
	} else {
		pe := e.pexecs.Get().(*relation.ParExec)
		pe.Resize(parallelism)
		out, st, err = pl.Prog.EvalParLimits(qdb, pe, lim)
		e.pexecs.Put(pe)
	}
	if err != nil {
		switch {
		case errors.Is(err, program.ErrGasExhausted):
			e.m.cqLimited["gas"].Inc()
		case errors.Is(err, program.ErrDeadlineExceeded):
			e.m.cqLimited["deadline"].Inc()
		}
		return nil, nil, err
	}
	e.evals.Add(1)
	if parallelism > 1 {
		e.parEvals.Add(1)
		e.m.repartitions.Add(uint64(st.Repartitions))
		e.m.repartitionBytes.Add(uint64(st.RepartitionBytes))
	}
	e.m.solveHist(true, parallelism > 1).Observe(time.Since(t0).Seconds())
	return out, st, nil
}

// bindQuery builds the per-query database the compiled program runs
// over: for each body atom, the stored relation its predicate denotes,
// renamed onto the query's variable universe. Resolution is by name
// against the snapshot's universe, lookup only.
func bindQuery(c *cq.Compiled, db *relation.Database) (*relation.Database, error) {
	su := db.D.U
	rels := make([]*relation.Relation, len(c.Atoms))
	for i := range c.Atoms {
		at := &c.Atoms[i]
		ids := make([]schema.Attr, len(at.Attrs))
		var set schema.AttrSet
		for p, name := range at.Attrs {
			id, ok := su.Lookup(name)
			if !ok {
				return nil, fmt.Errorf("engine: atom %s: attribute %q not in serving schema", at.Pred, name)
			}
			ids[p] = id
			set = set.Add(id)
		}
		idx := -1
		for j, r := range db.D.Rels {
			if r.Equal(set) {
				idx = j
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("engine: relation %q not in serving schema %s", at.Pred, db.D)
		}
		stored := db.Rels[idx]
		// src[k] is the stored column feeding query column k. Query
		// columns are the atom's variables in sorted-id order; the
		// variable at predicate position p binds serving attribute
		// ids[p], stored at that attribute's sorted position.
		qcols := c.D.Rels[i].Attrs()
		scols := stored.Cols()
		src := make([]int, len(qcols))
		for k, v := range qcols {
			p := indexOfAttr(at.Vars, v)
			src[k] = indexOfAttr(scols, ids[p])
		}
		rels[i] = stored.Renamed(c.U, c.D.Rels[i], src)
	}
	return &relation.Database{D: c.D, Rels: rels}, nil
}

// indexOfAttr returns the position of a in list (which always contains
// it by construction).
func indexOfAttr(list []schema.Attr, a schema.Attr) int {
	for i, v := range list {
		if v == a {
			return i
		}
	}
	panic("engine: attribute not in binding")
}
