package engine

import (
	"testing"

	"gyokit/internal/relation"
	"gyokit/internal/schema"
	"gyokit/internal/storage"
)

// BenchmarkApplyLargeRelation measures the cost the chunked persistent
// arena exists to bound: a small mutation batch (128 tuples) applied
// copy-on-write to one large relation (1M rows). With the flat arena
// every batch deep-copied the whole relation — O(card); with chunk
// sharing the per-batch cost depends only on the batch, the chunk
// table, and the (bounded) index overlay. The "store" variant runs the
// full durable path (WAL append, NoSync); "mem" isolates the
// copy-on-write snapshot cost. Gated in CI against BENCH_baseline.json.
func BenchmarkApplyLargeRelation(b *testing.B) {
	const seedRows = 1 << 20
	const batch = 128
	for _, mode := range []string{"mem", "store"} {
		b.Run(mode, func(b *testing.B) {
			var e *Engine
			if mode == "store" {
				st, err := storage.Open(b.TempDir(), storage.Options{NoSync: true, CheckpointBytes: -1})
				if err != nil {
					b.Fatal(err)
				}
				defer st.Close()
				e = New(Options{Store: st})
			} else {
				e = New(Options{})
				u := schema.NewUniverse()
				e.Swap(&relation.Database{D: schema.New(u)})
			}
			if _, _, err := e.Apply(storage.Create("a", "b")); err != nil {
				b.Fatal(err)
			}
			// Seed 1M distinct rows through the real write path as one
			// batch (a single WAL record in store mode).
			seed := make([]relation.Value, 0, 2*seedRows)
			for i := 0; i < seedRows; i++ {
				seed = append(seed, relation.Value(i), relation.Value(i+1))
			}
			if _, _, err := e.Apply(storage.Mutation{Kind: storage.KindInsert, Rel: 0, Width: 2, Values: seed}); err != nil {
				b.Fatal(err)
			}
			if got := e.Snapshot().Rels[0].Card(); got != seedRows {
				b.Fatalf("seed card = %d, want %d", got, seedRows)
			}
			tuples := make([]relation.Tuple, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range tuples {
					v := relation.Value(seedRows + i*batch + j)
					tuples[j] = relation.Tuple{v, v + 1}
				}
				if _, _, err := e.Apply(storage.Insert(0, 2, tuples)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
