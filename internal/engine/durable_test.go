package engine

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"gyokit/internal/relation"
	"gyokit/internal/schema"
	"gyokit/internal/storage"
)

// openDurable returns an engine backed by a store in dir.
func openDurable(t testing.TB, dir string, opt storage.Options) (*Engine, *storage.Store) {
	t.Helper()
	st, err := storage.Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return New(Options{Store: st}), st
}

func snapshotsEqual(a, b *relation.Database) bool {
	if a.D.String() != b.D.String() || len(a.Rels) != len(b.Rels) {
		return false
	}
	for i := range a.Rels {
		if a.Rels[i].Card() != b.Rels[i].Card() {
			return false
		}
		for j := 0; j < a.Rels[i].Card(); j++ {
			if !b.Rels[i].Has(a.Rels[i].TupleAt(j)) {
				return false
			}
		}
	}
	return true
}

func TestEngineDurableApply(t *testing.T) {
	dir := t.TempDir()
	e, st := openDurable(t, dir, storage.Options{NoSync: true})
	if e.Store() != st {
		t.Fatal("engine does not report its store")
	}
	// NoSync stores survive process kills but not power loss, so the
	// engine must not claim durability for them.
	if e.Durable() {
		t.Error("NoSync store claims crash durability")
	}
	if snap := e.Snapshot(); snap == nil || len(snap.Rels) != 0 {
		t.Fatalf("fresh durable engine snapshot = %v", snap)
	}

	if _, counts, err := e.Apply(
		storage.Create("a", "b"),
		storage.Create("b", "c"),
		storage.Insert(0, 2, []relation.Tuple{{1, 2}, {3, 4}, {1, 2}}),
	); err != nil {
		t.Fatal(err)
	} else if counts[2] != 2 {
		t.Errorf("insert count = %d, want 2 (dedup)", counts[2])
	}
	if _, counts, err := e.Apply(
		storage.Delete(0, 2, []relation.Tuple{{3, 4}, {9, 9}}),
		storage.Insert(1, 2, []relation.Tuple{{7, 8}}),
	); err != nil {
		t.Fatal(err)
	} else if counts[0] != 1 {
		t.Errorf("delete count = %d, want 1", counts[0])
	}
	want := e.Snapshot()
	if want.Rels[0].Card() != 1 || !want.Rels[0].Has(relation.Tuple{1, 2}) {
		t.Fatalf("live snapshot wrong: %v", want.Rels[0])
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the recovered engine serves the identical state.
	e2, st2 := openDurable(t, dir, storage.Options{NoSync: true})
	defer st2.Close()
	if !snapshotsEqual(want, e2.Snapshot()) {
		t.Error("recovered snapshot differs from pre-close snapshot")
	}
}

func TestEngineApplyValidationLeavesStateUntouched(t *testing.T) {
	dir := t.TempDir()
	e, st := openDurable(t, dir, storage.Options{NoSync: true})
	defer st.Close()
	if _, _, err := e.Apply(storage.Create("a", "b")); err != nil {
		t.Fatal(err)
	}
	before := e.Snapshot()
	appends := st.Stats().Appends

	// Second mutation of the batch is invalid: nothing may be applied
	// or logged.
	_, _, err := e.Apply(
		storage.Insert(0, 2, []relation.Tuple{{1, 1}}),
		storage.Insert(5, 2, []relation.Tuple{{2, 2}}),
	)
	if err == nil {
		t.Fatal("invalid batch accepted")
	}
	if e.Snapshot() != before {
		t.Error("failed batch changed the snapshot")
	}
	if st.Stats().Appends != appends {
		t.Error("failed batch reached the WAL")
	}
}

func TestEngineApplyWithoutStore(t *testing.T) {
	e := New(Options{})
	if e.Durable() {
		t.Fatal("in-memory engine claims durability")
	}
	if _, _, err := e.Apply(storage.Create("a", "b")); err == nil {
		t.Fatal("Apply before any snapshot succeeded")
	}
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc")
	e.Swap(urdb(d, 1, 10, 8))
	if _, _, err := e.Apply(storage.Insert(0, 2, []relation.Tuple{{100, 200}})); err != nil {
		t.Fatal(err)
	}
	if !e.Snapshot().Rels[0].Has(relation.Tuple{100, 200}) {
		t.Error("in-memory Apply lost the insert")
	}
}

func TestEngineBackgroundCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e, st := openDurable(t, dir, storage.Options{NoSync: true, CheckpointBytes: 256})
	defer st.Close()
	if _, _, err := e.Apply(storage.Create("a", "b")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, _, err := e.Apply(storage.Insert(0, 2, []relation.Tuple{{relation.Value(i), relation.Value(i)}})); err != nil {
			t.Fatal(err)
		}
	}
	e.ckptWG.Wait()
	if st.Stats().Checkpoints == 0 {
		t.Error("no background checkpoint despite threshold crossings")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	e2, st2 := openDurable(t, dir, storage.Options{NoSync: true})
	defer st2.Close()
	if !snapshotsEqual(e.Snapshot(), e2.Snapshot()) {
		t.Error("recovery after background checkpoint differs")
	}
}

// TestEngineCheckpointSkipsWhenClean: a shutdown checkpoint with no
// records since the last one must not rewrite the snapshot.
func TestEngineCheckpointSkipsWhenClean(t *testing.T) {
	dir := t.TempDir()
	e, st := openDurable(t, dir, storage.Options{NoSync: true})
	defer st.Close()
	if _, _, err := e.Apply(storage.Create("a", "b")); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Checkpoints; got != 1 {
		t.Fatalf("checkpoints = %d, want 1", got)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Checkpoints; got != 1 {
		t.Errorf("clean checkpoint was not skipped: %d", got)
	}
	if _, _, err := e.Apply(storage.Insert(0, 2, []relation.Tuple{{1, 2}})); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Checkpoints; got != 2 {
		t.Errorf("dirty checkpoint skipped: %d", got)
	}
}

// TestEngineConcurrentCheckpoints races synchronous Checkpoint calls
// against each other and against Apply-triggered background
// checkpoints. The old implementation claimed a bare busy flag without
// joining the in-flight WaitGroup, so a second synchronous caller
// hot-looped on the CAS for the whole checkpoint window; callers now
// serialize on the checkpoint mutex. Run under -race in CI.
func TestEngineConcurrentCheckpoints(t *testing.T) {
	dir := t.TempDir()
	// A tiny threshold makes Apply trigger background checkpoints that
	// contend with the synchronous ones.
	e, st := openDurable(t, dir, storage.Options{NoSync: true, CheckpointBytes: 256})
	defer st.Close()
	if _, _, err := e.Apply(storage.Create("a", "b")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				v := relation.Value(w*1000 + i)
				if _, _, err := e.Apply(storage.Insert(0, 2, []relation.Tuple{{v, v + 1}})); err != nil {
					t.Error(err)
					return
				}
				if err := e.Checkpoint(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	e.ckptWG.Wait()
	if st.Stats().Checkpoints == 0 {
		t.Error("no checkpoint completed")
	}
	// The store must still recover cleanly after the contention.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	e2, st2 := openDurable(t, dir, storage.Options{NoSync: true})
	defer st2.Close()
	if !snapshotsEqual(e.Snapshot(), e2.Snapshot()) {
		t.Error("recovered state differs after concurrent checkpoints")
	}
}

// TestEngineDurableConcurrentReadWrite exercises the durable write path
// under concurrent solves; run with -race it proves append-then-publish
// never exposes a half-written snapshot.
func TestEngineDurableConcurrentReadWrite(t *testing.T) {
	dir := t.TempDir()
	e, st := openDurable(t, dir, storage.Options{NoSync: true, CheckpointBytes: 1 << 10})
	defer st.Close()
	if _, _, err := e.Apply(storage.Create("a", "b"), storage.Create("b", "c")); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	d := snap.D
	x := d.U.Set("a", "c")

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				v := relation.Value(w*1000 + i)
				if _, _, err := e.Apply(
					storage.Insert(0, 2, []relation.Tuple{{v, v + 1}}),
					storage.Insert(1, 2, []relation.Tuple{{v + 1, v + 2}}),
				); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, _, err := e.Solve(d, x); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	e.ckptWG.Wait()

	if got := e.Snapshot().Rels[0].Card(); got != 200 {
		t.Errorf("relation 0 card = %d, want 200", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	e2, st2 := openDurable(t, dir, storage.Options{NoSync: true})
	defer st2.Close()
	if !snapshotsEqual(e.Snapshot(), e2.Snapshot()) {
		t.Error("recovered state differs after concurrent writes")
	}
}

// TestEngineBackgroundCheckpointFailureLogged: a background checkpoint
// is fire-and-forget, so Apply callers never see its error — the
// engine must push it through Logf and the store must keep it sticky
// in Stats until the next checkpoint succeeds and clears it.
func TestEngineBackgroundCheckpointFailureLogged(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.Open(dir, storage.Options{NoSync: true, CheckpointBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var logMu sync.Mutex
	var logs []string
	e := New(Options{Store: st, Logf: func(format string, args ...any) {
		logMu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		logMu.Unlock()
	}})

	// A directory squatting on the chunk-store path makes every
	// checkpoint fail deterministically: the store's first checkpoint
	// always opens generation 1, and the generation only advances on
	// success.
	obstacle := filepath.Join(dir, "chunks-0000000000000001.gyo")
	if err := os.Mkdir(obstacle, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Apply(storage.Create("a", "b")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, _, err := e.Apply(storage.Insert(0, 2, []relation.Tuple{{relation.Value(i), relation.Value(i + 1)}})); err != nil {
			t.Fatal(err)
		}
	}
	e.ckptWG.Wait()
	logMu.Lock()
	logged := false
	for _, l := range logs {
		if strings.Contains(l, "background checkpoint") && strings.Contains(l, "failed") {
			logged = true
		}
	}
	logMu.Unlock()
	if !logged {
		t.Errorf("background checkpoint failure not logged via Logf; logs = %q", logs)
	}
	if got := st.Stats(); got.LastCheckpointErr == "" {
		t.Error("failed background checkpoint not recorded in Stats.LastCheckpointErr")
	} else if got.Checkpoints != 0 {
		t.Errorf("checkpoints = %d despite blocked chunk store", got.Checkpoints)
	}

	// Clear the obstacle: the next (synchronous) checkpoint succeeds
	// and wipes the sticky error.
	if err := os.Remove(obstacle); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats(); got.LastCheckpointErr != "" {
		t.Errorf("successful checkpoint did not clear LastCheckpointErr: %q", got.LastCheckpointErr)
	} else if got.Checkpoints == 0 {
		t.Error("checkpoint after clearing obstacle not counted")
	}
	// The failure window never lost acknowledged data.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	e2, st2 := openDurable(t, dir, storage.Options{NoSync: true})
	defer st2.Close()
	if !snapshotsEqual(e.Snapshot(), e2.Snapshot()) {
		t.Error("recovered snapshot differs after checkpoint failure window")
	}
}

// --- real-binary SIGKILL-during-incremental-checkpoint harness ------
//
// The in-process torn-file sweeps (internal/storage) prove recovery
// from every byte-level crash state; this test closes the loop on the
// real process: gyod with a tiny -ckptbytes threshold runs background
// incremental checkpoints almost continuously, so SIGKILL right after
// an acknowledged insert regularly lands mid-checkpoint. Every restart
// must serve exactly the acknowledged tuples.

func buildGyodBin(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available:", err)
	}
	bin := filepath.Join(t.TempDir(), "gyod")
	out, err := exec.Command("go", "build", "-o", bin, "gyokit/cmd/gyod").CombinedOutput()
	if err != nil {
		t.Fatalf("go build gyod: %v\n%s", err, out)
	}
	return bin
}

type gyodInst struct {
	cmd      *exec.Cmd
	base     string
	done     chan error
	waitOnce sync.Once
	waitErr  error
}

// wait blocks until the process exits and returns its exit error
// (cached: safe to call repeatedly).
func (p *gyodInst) wait() error {
	p.waitOnce.Do(func() { p.waitErr = <-p.done })
	return p.waitErr
}

// startGyodInst launches the binary and waits for its listen line.
func startGyodInst(t *testing.T, bin string, args ...string) *gyodInst {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &gyodInst{cmd: cmd, done: make(chan error, 1)}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
		p.done <- cmd.Wait()
	}()
	select {
	case addr := <-addrCh:
		p.base = "http://" + addr
	case err := <-p.done:
		t.Fatalf("gyod exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("timeout waiting for gyod to listen")
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		p.wait()
	})
	return p
}

// kill SIGKILLs the process and reaps it (so the next boot's directory
// lock is free).
func (p *gyodInst) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	p.wait()
}

func (p *gyodInst) postJSON(t *testing.T, path string, body, out any) {
	t.Helper()
	enc, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(p.base+path, "application/json", bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s → %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s response: %v", path, err)
	}
}

func (p *gyodInst) stats(t *testing.T) StatsResponse {
	t.Helper()
	resp, err := http.Get(p.base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestGyodSIGKILLDuringIncrementalCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	bin := buildGyodBin(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	// ~1.6 KiB per acknowledged batch against a 200-byte checkpoint
	// threshold: a background incremental checkpoint is in flight for
	// most of the run, so the SIGKILL after the last ack regularly
	// tears a manifest or chunk-store tail mid-write.
	args := []string{"-data", dataDir, "-schema", "ab", "-tuples", "0",
		"-nosync", "-ckptbytes", "200", "-segbytes", "4096"}

	const rounds, batches, perBatch = 4, 24, 200
	acked, next := 0, 0
	for round := 0; round < rounds; round++ {
		p := startGyodInst(t, bin, args...)
		st := p.stats(t)
		if len(st.Relations) != 1 || st.Relations[0].Card != acked {
			t.Fatalf("round %d: recovered %+v, want card %d", round, st.Relations, acked)
		}
		for b := 0; b < batches; b++ {
			tuples := make([][2]int, perBatch)
			for j := range tuples {
				tuples[j] = [2]int{2 * next, 2*next + 1}
				next++
			}
			var mr MutateResponse
			p.postJSON(t, "/insert", map[string]any{"rel": "ab", "tuples": tuples}, &mr)
			if mr.Applied != perBatch {
				t.Fatalf("round %d batch %d: applied %d, want %d", round, b, mr.Applied, perBatch)
			}
			acked += perBatch
		}
		p.kill(t)
	}

	// Final boot: all acked tuples survived every kill, and the
	// graceful shutdown path (drain, final checkpoint, close) exits 0.
	p := startGyodInst(t, bin, args...)
	st := p.stats(t)
	if len(st.Relations) != 1 || st.Relations[0].Card != acked {
		t.Fatalf("final boot: recovered %+v, want card %d", st.Relations, acked)
	}
	if st.Durability == nil {
		t.Fatal("final boot: /stats missing durability section")
	}
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p.wait(); err != nil {
		t.Fatalf("graceful shutdown after kill rounds: %v", err)
	}
}

// BenchmarkIngestDurable measures the durable write path end to end:
// Apply → copy-on-write snapshot → WAL append → publish. NoSync keeps
// it deterministic enough to gate in CI (the fsync cost is measured by
// BenchmarkWALAppend/fsync in internal/storage). The target relation
// is dropped and recreated every 1024 batches so the copy-on-write
// clone measures a bounded steady-state card rather than growing with
// b.N.
func BenchmarkIngestDurable(b *testing.B) {
	for _, batch := range []int{1, 64} {
		b.Run("batch="+strconv.Itoa(batch), func(b *testing.B) {
			dir := b.TempDir()
			e, st := openDurable(b, dir, storage.Options{NoSync: true, CheckpointBytes: -1})
			defer st.Close()
			if _, _, err := e.Apply(storage.Create("a", "b")); err != nil {
				b.Fatal(err)
			}
			tuples := make([]relation.Tuple, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%1024 == 1023 {
					if _, _, err := e.Apply(storage.Drop(0), storage.Create("a", "b")); err != nil {
						b.Fatal(err)
					}
				}
				for j := range tuples {
					v := relation.Value(i*batch + j)
					tuples[j] = relation.Tuple{v, v + 1}
				}
				if _, _, err := e.Apply(storage.Insert(0, 2, tuples)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
