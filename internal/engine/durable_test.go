package engine

import (
	"strconv"
	"sync"
	"testing"

	"gyokit/internal/relation"
	"gyokit/internal/schema"
	"gyokit/internal/storage"
)

// openDurable returns an engine backed by a store in dir.
func openDurable(t testing.TB, dir string, opt storage.Options) (*Engine, *storage.Store) {
	t.Helper()
	st, err := storage.Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return New(Options{Store: st}), st
}

func snapshotsEqual(a, b *relation.Database) bool {
	if a.D.String() != b.D.String() || len(a.Rels) != len(b.Rels) {
		return false
	}
	for i := range a.Rels {
		if a.Rels[i].Card() != b.Rels[i].Card() {
			return false
		}
		for j := 0; j < a.Rels[i].Card(); j++ {
			if !b.Rels[i].Has(a.Rels[i].TupleAt(j)) {
				return false
			}
		}
	}
	return true
}

func TestEngineDurableApply(t *testing.T) {
	dir := t.TempDir()
	e, st := openDurable(t, dir, storage.Options{NoSync: true})
	if e.Store() != st {
		t.Fatal("engine does not report its store")
	}
	// NoSync stores survive process kills but not power loss, so the
	// engine must not claim durability for them.
	if e.Durable() {
		t.Error("NoSync store claims crash durability")
	}
	if snap := e.Snapshot(); snap == nil || len(snap.Rels) != 0 {
		t.Fatalf("fresh durable engine snapshot = %v", snap)
	}

	if _, counts, err := e.Apply(
		storage.Create("a", "b"),
		storage.Create("b", "c"),
		storage.Insert(0, 2, []relation.Tuple{{1, 2}, {3, 4}, {1, 2}}),
	); err != nil {
		t.Fatal(err)
	} else if counts[2] != 2 {
		t.Errorf("insert count = %d, want 2 (dedup)", counts[2])
	}
	if _, counts, err := e.Apply(
		storage.Delete(0, 2, []relation.Tuple{{3, 4}, {9, 9}}),
		storage.Insert(1, 2, []relation.Tuple{{7, 8}}),
	); err != nil {
		t.Fatal(err)
	} else if counts[0] != 1 {
		t.Errorf("delete count = %d, want 1", counts[0])
	}
	want := e.Snapshot()
	if want.Rels[0].Card() != 1 || !want.Rels[0].Has(relation.Tuple{1, 2}) {
		t.Fatalf("live snapshot wrong: %v", want.Rels[0])
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the recovered engine serves the identical state.
	e2, st2 := openDurable(t, dir, storage.Options{NoSync: true})
	defer st2.Close()
	if !snapshotsEqual(want, e2.Snapshot()) {
		t.Error("recovered snapshot differs from pre-close snapshot")
	}
}

func TestEngineApplyValidationLeavesStateUntouched(t *testing.T) {
	dir := t.TempDir()
	e, st := openDurable(t, dir, storage.Options{NoSync: true})
	defer st.Close()
	if _, _, err := e.Apply(storage.Create("a", "b")); err != nil {
		t.Fatal(err)
	}
	before := e.Snapshot()
	appends := st.Stats().Appends

	// Second mutation of the batch is invalid: nothing may be applied
	// or logged.
	_, _, err := e.Apply(
		storage.Insert(0, 2, []relation.Tuple{{1, 1}}),
		storage.Insert(5, 2, []relation.Tuple{{2, 2}}),
	)
	if err == nil {
		t.Fatal("invalid batch accepted")
	}
	if e.Snapshot() != before {
		t.Error("failed batch changed the snapshot")
	}
	if st.Stats().Appends != appends {
		t.Error("failed batch reached the WAL")
	}
}

func TestEngineApplyWithoutStore(t *testing.T) {
	e := New(Options{})
	if e.Durable() {
		t.Fatal("in-memory engine claims durability")
	}
	if _, _, err := e.Apply(storage.Create("a", "b")); err == nil {
		t.Fatal("Apply before any snapshot succeeded")
	}
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc")
	e.Swap(urdb(d, 1, 10, 8))
	if _, _, err := e.Apply(storage.Insert(0, 2, []relation.Tuple{{100, 200}})); err != nil {
		t.Fatal(err)
	}
	if !e.Snapshot().Rels[0].Has(relation.Tuple{100, 200}) {
		t.Error("in-memory Apply lost the insert")
	}
}

func TestEngineBackgroundCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e, st := openDurable(t, dir, storage.Options{NoSync: true, CheckpointBytes: 256})
	defer st.Close()
	if _, _, err := e.Apply(storage.Create("a", "b")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, _, err := e.Apply(storage.Insert(0, 2, []relation.Tuple{{relation.Value(i), relation.Value(i)}})); err != nil {
			t.Fatal(err)
		}
	}
	e.ckptWG.Wait()
	if st.Stats().Checkpoints == 0 {
		t.Error("no background checkpoint despite threshold crossings")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	e2, st2 := openDurable(t, dir, storage.Options{NoSync: true})
	defer st2.Close()
	if !snapshotsEqual(e.Snapshot(), e2.Snapshot()) {
		t.Error("recovery after background checkpoint differs")
	}
}

// TestEngineCheckpointSkipsWhenClean: a shutdown checkpoint with no
// records since the last one must not rewrite the snapshot.
func TestEngineCheckpointSkipsWhenClean(t *testing.T) {
	dir := t.TempDir()
	e, st := openDurable(t, dir, storage.Options{NoSync: true})
	defer st.Close()
	if _, _, err := e.Apply(storage.Create("a", "b")); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Checkpoints; got != 1 {
		t.Fatalf("checkpoints = %d, want 1", got)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Checkpoints; got != 1 {
		t.Errorf("clean checkpoint was not skipped: %d", got)
	}
	if _, _, err := e.Apply(storage.Insert(0, 2, []relation.Tuple{{1, 2}})); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Checkpoints; got != 2 {
		t.Errorf("dirty checkpoint skipped: %d", got)
	}
}

// TestEngineConcurrentCheckpoints races synchronous Checkpoint calls
// against each other and against Apply-triggered background
// checkpoints. The old implementation claimed a bare busy flag without
// joining the in-flight WaitGroup, so a second synchronous caller
// hot-looped on the CAS for the whole checkpoint window; callers now
// serialize on the checkpoint mutex. Run under -race in CI.
func TestEngineConcurrentCheckpoints(t *testing.T) {
	dir := t.TempDir()
	// A tiny threshold makes Apply trigger background checkpoints that
	// contend with the synchronous ones.
	e, st := openDurable(t, dir, storage.Options{NoSync: true, CheckpointBytes: 256})
	defer st.Close()
	if _, _, err := e.Apply(storage.Create("a", "b")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				v := relation.Value(w*1000 + i)
				if _, _, err := e.Apply(storage.Insert(0, 2, []relation.Tuple{{v, v + 1}})); err != nil {
					t.Error(err)
					return
				}
				if err := e.Checkpoint(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	e.ckptWG.Wait()
	if st.Stats().Checkpoints == 0 {
		t.Error("no checkpoint completed")
	}
	// The store must still recover cleanly after the contention.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	e2, st2 := openDurable(t, dir, storage.Options{NoSync: true})
	defer st2.Close()
	if !snapshotsEqual(e.Snapshot(), e2.Snapshot()) {
		t.Error("recovered state differs after concurrent checkpoints")
	}
}

// TestEngineDurableConcurrentReadWrite exercises the durable write path
// under concurrent solves; run with -race it proves append-then-publish
// never exposes a half-written snapshot.
func TestEngineDurableConcurrentReadWrite(t *testing.T) {
	dir := t.TempDir()
	e, st := openDurable(t, dir, storage.Options{NoSync: true, CheckpointBytes: 1 << 10})
	defer st.Close()
	if _, _, err := e.Apply(storage.Create("a", "b"), storage.Create("b", "c")); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	d := snap.D
	x := d.U.Set("a", "c")

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				v := relation.Value(w*1000 + i)
				if _, _, err := e.Apply(
					storage.Insert(0, 2, []relation.Tuple{{v, v + 1}}),
					storage.Insert(1, 2, []relation.Tuple{{v + 1, v + 2}}),
				); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, _, err := e.Solve(d, x); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	e.ckptWG.Wait()

	if got := e.Snapshot().Rels[0].Card(); got != 200 {
		t.Errorf("relation 0 card = %d, want 200", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	e2, st2 := openDurable(t, dir, storage.Options{NoSync: true})
	defer st2.Close()
	if !snapshotsEqual(e.Snapshot(), e2.Snapshot()) {
		t.Error("recovered state differs after concurrent writes")
	}
}

// BenchmarkIngestDurable measures the durable write path end to end:
// Apply → copy-on-write snapshot → WAL append → publish. NoSync keeps
// it deterministic enough to gate in CI (the fsync cost is measured by
// BenchmarkWALAppend/fsync in internal/storage). The target relation
// is dropped and recreated every 1024 batches so the copy-on-write
// clone measures a bounded steady-state card rather than growing with
// b.N.
func BenchmarkIngestDurable(b *testing.B) {
	for _, batch := range []int{1, 64} {
		b.Run("batch="+strconv.Itoa(batch), func(b *testing.B) {
			dir := b.TempDir()
			e, st := openDurable(b, dir, storage.Options{NoSync: true, CheckpointBytes: -1})
			defer st.Close()
			if _, _, err := e.Apply(storage.Create("a", "b")); err != nil {
				b.Fatal(err)
			}
			tuples := make([]relation.Tuple, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%1024 == 1023 {
					if _, _, err := e.Apply(storage.Drop(0), storage.Create("a", "b")); err != nil {
						b.Fatal(err)
					}
				}
				for j := range tuples {
					v := relation.Value(i*batch + j)
					tuples[j] = relation.Tuple{v, v + 1}
				}
				if _, _, err := e.Apply(storage.Insert(0, 2, tuples)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
