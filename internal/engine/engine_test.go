package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"gyokit/internal/core"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

func urdb(d *schema.Schema, seed int64, tuples, domain int) *relation.Database {
	rng := rand.New(rand.NewSource(seed))
	i, _ := relation.RandomUniversal(d.U, d.Attrs(), tuples, domain, rng)
	return relation.URDatabase(d, i)
}

func TestPlanCacheHit(t *testing.T) {
	e := New(Options{})
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc, cd")
	x := u.Set("a", "d")

	p1, err := e.Plan(d, x)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Plan(d, x)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("repeat Plan did not return the cached plan")
	}
	st := e.Stats()
	if st.PlanHits != 1 || st.PlanMisses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}

	// The same schema with relations in a different order hits too.
	d2 := schema.MustParse(u, "cd, ab, bc")
	p3, err := e.Plan(d2, x)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Error("reordered schema missed the cache")
	}

	// A different target misses.
	if _, err := e.Plan(d, u.Set("a", "b")); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.PlanHits != 2 || st.PlanMisses != 2 {
		t.Errorf("stats = %+v, want 2 hits / 2 misses", st)
	}
}

func TestClassifyCacheAndPlanSeeding(t *testing.T) {
	e := New(Options{})
	u := schema.NewUniverse()
	d := schema.MustParse(u, "abg, bcg, acf, ad, de, ea")

	if _, err := e.Plan(d, u.Set("a", "b", "c")); err != nil {
		t.Fatal(err)
	}
	misses := e.Stats().PlanMisses
	cls, err := e.Classify(d)
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats().PlanMisses != misses {
		t.Error("Classify after Plan re-classified instead of hitting the seeded entry")
	}
	if cls.Tree {
		t.Error("§6 schema misclassified as tree")
	}
}

// TestClassifyPermutedSchema pins the fix for a positional-data cache
// bug: Classification.QualTree edges are relation indexes, so a
// permuted schema must NOT be served the cached classification of
// another ordering.
func TestClassifyPermutedSchema(t *testing.T) {
	e := New(Options{})
	u := schema.NewUniverse()
	d1 := schema.MustParse(u, "ab, bc, cd")
	if _, err := e.Classify(d1); err != nil {
		t.Fatal(err)
	}
	d2 := schema.MustParse(u, "ab, cd, bc")
	got, err := e.Classify(d2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Classify(d2)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.QualTree.Edges()) != fmt.Sprint(want.QualTree.Edges()) {
		t.Errorf("permuted schema served stale positional qual tree: got %v, want %v",
			got.QualTree.Edges(), want.QualTree.Edges())
	}
	// Same order still hits.
	hits := e.Stats().PlanHits
	if _, err := e.Classify(d1); err != nil {
		t.Fatal(err)
	}
	if e.Stats().PlanHits != hits+1 {
		t.Error("same-order Classify did not hit the cache")
	}
}

func TestCacheDisabled(t *testing.T) {
	e := New(Options{PlanCacheSize: -1})
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc")
	x := u.Set("a", "c")
	for i := 0; i < 3; i++ {
		if _, err := e.Plan(d, x); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.PlanHits != 0 || st.PlanMisses != 3 || st.CachedPlans != 0 {
		t.Errorf("disabled cache stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	e := New(Options{PlanCacheSize: 2})
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc, cd")
	xs := []schema.AttrSet{u.Set("a", "b"), u.Set("a", "c"), u.Set("a", "d")}
	for _, x := range xs {
		if _, err := e.Plan(d, x); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Stats().CachedPlans; got != 2 {
		t.Fatalf("CachedPlans = %d, want 2 (capacity)", got)
	}
	// xs[0] was evicted; xs[2] is resident.
	if _, err := e.Plan(d, xs[2]); err != nil {
		t.Fatal(err)
	}
	if e.Stats().PlanHits != 1 {
		t.Error("most recent plan was not resident")
	}
	if _, err := e.Plan(d, xs[0]); err != nil {
		t.Fatal(err)
	}
	if e.Stats().PlanMisses != 4 {
		t.Error("evicted plan was still resident")
	}
}

func TestSolveMatchesDirectEval(t *testing.T) {
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc, cd, de")
	x := u.Set("a", "e")
	db := urdb(d, 42, 80, 5)
	want := db.Eval(x) // naive reference: π_X(⋈ᵢ Rᵢ)

	e := New(Options{})
	e.Swap(db)
	for i := 0; i < 3; i++ { // cold then cached
		got, st, err := e.Solve(d, x)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("run %d: Solve ≠ naive eval", i)
		}
		if st == nil || len(st.PerStmt) == 0 {
			t.Fatalf("run %d: missing stats", i)
		}
	}
}

func TestSolveAlignsReorderedDatabase(t *testing.T) {
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc, cd")
	x := u.Set("a", "d")
	db := urdb(d, 9, 50, 4)

	e := New(Options{})
	// Warm the cache with one relation ordering…
	if _, err := e.Plan(d, x); err != nil {
		t.Fatal(err)
	}
	// …then solve with the database and schema in another ordering.
	perm := []int{2, 0, 1}
	d2 := d.Restrict(perm)
	db2 := &relation.Database{D: d2, Univ: db.Univ}
	for _, i := range perm {
		db2.Rels = append(db2.Rels, db.Rels[i])
	}
	got, _, err := e.SolveOn(db2, d2, x)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(db.Eval(x)) {
		t.Error("reordered solve gave a different answer")
	}
	if e.Stats().PlanHits != 1 {
		t.Error("reordered query did not hit the plan cache")
	}
}

func TestSolveWithoutSnapshot(t *testing.T) {
	e := New(Options{})
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab")
	if _, _, err := e.Solve(d, u.Set("a")); err == nil {
		t.Error("Solve without a snapshot did not error")
	}
}

func TestSwapPublishesAndFreezes(t *testing.T) {
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc")
	db := urdb(d, 1, 20, 4)
	e := New(Options{})
	if prev := e.Swap(db); prev != nil {
		t.Error("first Swap returned a previous snapshot")
	}
	if !db.Rels[0].Frozen() {
		t.Error("Swap did not freeze the snapshot")
	}
	db2 := db.InsertTuple(0, relation.Tuple{9, 9})
	if prev := e.Swap(db2); prev != db {
		t.Error("Swap did not return the displaced snapshot")
	}
	if e.Snapshot() != db2 {
		t.Error("Snapshot is not the latest Swap")
	}
}

// TestUpdateNoLostWrites runs several concurrent copy-on-write writers
// through Update: every insert must survive into the final snapshot
// (a Snapshot→modify→Swap race would drop some).
func TestUpdateNoLostWrites(t *testing.T) {
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab")
	db := &relation.Database{D: d, Rels: []*relation.Relation{relation.New(u, d.Rels[0])}}
	e := New(Options{})
	e.Swap(db)

	const writers = 8
	const perWriter = 50
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tup := relation.Tuple{relation.Value(g), relation.Value(i)}
				e.Update(func(snap *relation.Database) *relation.Database {
					return snap.InsertTuple(0, tup)
				})
			}
		}(g)
	}
	wg.Wait()
	if got := e.Snapshot().Rels[0].Card(); got != writers*perWriter {
		t.Errorf("final snapshot has %d tuples, want %d (lost updates)", got, writers*perWriter)
	}
}

// TestEngineConcurrentStress is the -race acceptance test: 8 reader
// goroutines issue a mix of cached and uncached queries (the cache is
// deliberately smaller than the query population, so hits and misses
// interleave) while a writer continuously derives copy-on-write
// snapshots and swaps them in. Every result is checked against a naive
// evaluation of the exact snapshot the reader pinned.
func TestEngineConcurrentStress(t *testing.T) {
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc, cd, de")
	attrs := d.Attrs().Attrs()

	// Query population: all attribute pairs — 10 targets against a
	// 4-plan cache, so steady-state traffic mixes hits and misses.
	var targets []schema.AttrSet
	for i := 0; i < len(attrs); i++ {
		for j := i + 1; j < len(attrs); j++ {
			targets = append(targets, schema.NewAttrSet(attrs[i], attrs[j]))
		}
	}

	e := New(Options{PlanCacheSize: 4})
	e.Swap(urdb(d, 11, 40, 4))

	const readers = 8
	const iters = 150
	stop := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup

	// Writer: grow relation states copy-on-write and publish.
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			e.Update(func(snap *relation.Database) *relation.Database {
				ri := rng.Intn(len(snap.Rels))
				tup := make(relation.Tuple, len(snap.Rels[ri].Cols()))
				for k := range tup {
					tup[k] = relation.Value(rng.Intn(4))
				}
				return snap.InsertTuple(ri, tup)
			})
		}
	}()

	for g := 0; g < readers; g++ {
		readerWG.Add(1)
		go func(g int) {
			defer readerWG.Done()
			for i := 0; i < iters; i++ {
				x := targets[(g+i)%len(targets)]
				// Pin one snapshot so the answer is checkable even as
				// the writer races ahead.
				snap := e.Snapshot()
				got, _, err := e.SolveOn(snap, d, x)
				if err != nil {
					t.Errorf("reader %d iter %d: %v", g, i, err)
					return
				}
				if !got.Equal(snap.Eval(x)) {
					t.Errorf("reader %d iter %d: engine result ≠ naive eval on pinned snapshot", g, i)
					return
				}
			}
		}(g)
	}

	readerWG.Wait()
	close(stop)
	writerWG.Wait()
	if t.Failed() {
		return
	}
	st := e.Stats()
	if st.PlanHits == 0 || st.PlanMisses == 0 {
		t.Errorf("stress traffic was not mixed: %+v", st)
	}
	if st.Evals != readers*iters {
		t.Errorf("Evals = %d, want %d", st.Evals, readers*iters)
	}
}
