package engine

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// fakeReplica is a scriptable ReplicaController for server tests.
type fakeReplica struct {
	st       ReplicaStatus
	promoted int
	fail     error
}

func (f *fakeReplica) ReplicaStatus() ReplicaStatus { return f.st }
func (f *fakeReplica) Promote() error {
	if f.fail != nil {
		return f.fail
	}
	f.promoted++
	f.st.Role = "leader"
	f.st.PreviousLeader, f.st.LeaderURL = f.st.LeaderURL, ""
	return nil
}

func get(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp
}

func TestReplicaStatusLeader(t *testing.T) {
	ts, _, _ := testServer(t)
	var st ReplicaStatus
	resp := get(t, ts.URL+"/v1/replica/status", &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if st.Role != "leader" || !st.Connected {
		t.Errorf("leader status = %+v", st)
	}
}

func TestReplicaStatusFollowerPassthrough(t *testing.T) {
	ts, _, srv := testServer(t)
	srv.Replica = &fakeReplica{st: ReplicaStatus{
		Role: "follower", LeaderURL: "http://leader:2960",
		CursorSeg: 3, CursorOff: 808, LagBytes: 42, LagRecords: 2, Connected: true,
	}}
	var st ReplicaStatus
	get(t, ts.URL+"/v1/replica/status", &st)
	if st.Role != "follower" || st.LeaderURL != "http://leader:2960" ||
		st.CursorSeg != 3 || st.CursorOff != 808 || st.LagBytes != 42 {
		t.Errorf("follower status = %+v", st)
	}
}

func TestPromoteEndpoint(t *testing.T) {
	ts, _, srv := testServer(t)

	// Not a replica: typed 409.
	resp := postRaw(t, ts.URL+"/v1/promote", "")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("promote on leader: status = %d", resp.StatusCode)
	}
	if eb := decodeErrorBody(t, resp); eb.Error.Code != "not_a_replica" {
		t.Errorf("code = %q, want not_a_replica", eb.Error.Code)
	}

	// A follower promotes and answers with its new status.
	fr := &fakeReplica{st: ReplicaStatus{Role: "follower", LeaderURL: "http://leader:2960"}}
	srv.Replica = fr
	var st ReplicaStatus
	r := post(t, ts.URL+"/v1/promote", "", &st)
	if r.StatusCode != http.StatusOK || fr.promoted != 1 {
		t.Fatalf("promote: status = %d, promoted = %d", r.StatusCode, fr.promoted)
	}
	if st.Role != "leader" || st.PreviousLeader != "http://leader:2960" {
		t.Errorf("post-promote status = %+v", st)
	}

	// Method enforcement.
	gr := get(t, ts.URL+"/v1/promote", nil)
	if gr.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/promote: status = %d", gr.StatusCode)
	}
}

func TestWriteEndpointsRejectOnReplica(t *testing.T) {
	ts, _, srv := testServer(t)
	srv.Replica = &fakeReplica{st: ReplicaStatus{Role: "follower", LeaderURL: "http://leader:2960"}}
	srv.E.SetReadOnly(true)

	for path, body := range map[string]string{
		"/v1/insert": `{"rel": "ab", "tuples": [[1, 2]]}`,
		"/v1/delete": `{"rel": "ab", "tuples": [[1, 2]]}`,
		"/v1/load":   `{"relations": [{"rel": "ab", "tuples": [[1, 2]]}]}`,
	} {
		resp := postRaw(t, ts.URL+path, body)
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("%s on replica: status = %d, want 409", path, resp.StatusCode)
			continue
		}
		eb := decodeErrorBody(t, resp)
		if eb.Error.Code != "read_only_replica" {
			t.Errorf("%s: code = %q, want read_only_replica", path, eb.Error.Code)
		}
		if eb.Error.Leader != "http://leader:2960" {
			t.Errorf("%s: leader = %q", path, eb.Error.Leader)
		}
	}

	// Reads still serve locally.
	var sr SolveResponse
	if r := post(t, ts.URL+"/v1/solve", `{"x": "ad"}`, &sr); r.StatusCode != http.StatusOK {
		t.Errorf("/v1/solve on replica: status = %d", r.StatusCode)
	}

	// Promotion reopens writes.
	srv.E.SetReadOnly(false)
	var mr MutateResponse
	if r := post(t, ts.URL+"/v1/insert", `{"rel": "ab", "tuples": [[7, 8]]}`, &mr); r.StatusCode != http.StatusOK {
		t.Errorf("insert after promote: status = %d", r.StatusCode)
	}
}

func TestHealthzLeader(t *testing.T) {
	ts, _, _ := testServer(t)
	var h HealthResponse
	resp := get(t, ts.URL+"/v1/healthz", &h)
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Role != "leader" {
		t.Errorf("healthz = %d %+v", resp.StatusCode, h)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("healthz content type = %q", ct)
	}
}

func TestHealthzFollowerLagRules(t *testing.T) {
	cases := []struct {
		name       string
		st         ReplicaStatus
		maxLag     int64
		wantStatus int
	}{
		{"caught up", ReplicaStatus{Role: "follower", LagBytes: 0, Connected: true}, 1 << 20, http.StatusOK},
		{"lag under bound", ReplicaStatus{Role: "follower", LagBytes: 100, Connected: true}, 1 << 20, http.StatusOK},
		{"lag over bound", ReplicaStatus{Role: "follower", LagBytes: 2 << 20, Connected: true}, 1 << 20, http.StatusServiceUnavailable},
		{"lag unknown", ReplicaStatus{Role: "follower", LagBytes: -1}, 1 << 20, http.StatusServiceUnavailable},
		{"no bound configured", ReplicaStatus{Role: "follower", LagBytes: 5 << 20}, 0, http.StatusOK},
		{"diverged", ReplicaStatus{Role: "follower", Diverged: true, LastError: "cursor gone"}, 0, http.StatusServiceUnavailable},
		{"promoted follower is a leader", ReplicaStatus{Role: "leader", LagBytes: -1}, 1 << 20, http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts, _, srv := testServer(t)
			srv.Replica = &fakeReplica{st: tc.st}
			srv.MaxLagBytes = tc.maxLag
			var h HealthResponse
			resp := get(t, ts.URL+"/v1/healthz", &h)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d (%+v), want %d", resp.StatusCode, h, tc.wantStatus)
			}
			if (resp.StatusCode == http.StatusOK) != (h.Status == "ok") {
				t.Errorf("body status %q inconsistent with HTTP %d", h.Status, resp.StatusCode)
			}
			if tc.st.Role == "follower" && h.LagBytes == nil {
				t.Error("follower healthz missing lagBytes")
			}
		})
	}
}

func TestEngineReadOnlyGate(t *testing.T) {
	e, _ := queryEngine(t)
	e.SetReadOnly(true)
	if _, _, err := e.Apply(); err != ErrReadOnly {
		t.Fatalf("Apply on read-only engine: %v, want ErrReadOnly", err)
	}
	// The replica path bypasses the gate.
	if _, _, err := e.ApplyReplica(); err != nil {
		t.Fatalf("ApplyReplica on read-only engine: %v", err)
	}
	e.SetReadOnly(false)
	if _, _, err := e.Apply(); err != nil {
		t.Fatalf("Apply after reopen: %v", err)
	}
}
