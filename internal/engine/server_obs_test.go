package engine

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gyokit/internal/obs"
	"gyokit/internal/program"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
	"gyokit/internal/storage"
)

// obsServer boots a durable engine and store sharing one observability
// registry — the gyod wiring — seeded with the chain schema and a small
// universal-relation database.
func obsServer(t testing.TB, dir string) (*httptest.Server, *Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	st, err := storage.Open(dir, storage.Options{NoSync: true, CheckpointBytes: -1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	e := New(Options{Store: st, Metrics: reg})
	if st.Empty() {
		if _, _, err := e.Apply(storage.Create("a", "b"), storage.Create("b", "c"), storage.Create("c", "d")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := e.Apply(
			storage.Insert(0, 2, []relation.Tuple{{1, 2}, {3, 2}}),
			storage.Insert(1, 2, []relation.Tuple{{2, 5}}),
			storage.Insert(2, 2, []relation.Tuple{{5, 7}, {5, 8}}),
		); err != nil {
			t.Fatal(err)
		}
	}
	db := e.Snapshot()
	srv := NewServer(e, db.D.U, db.D)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, reg
}

func scrape(t testing.TB, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	series, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("scrape not parseable: %v", err)
	}
	return series
}

func TestMetricsEndpoint(t *testing.T) {
	ts, srv, _ := obsServer(t, t.TempDir())

	// Cold solve, cached solve, parallel solve, and a durable write, so
	// every major family has observations.
	var sol SolveResponse
	post(t, ts.URL+"/solve", `{"x": "ad"}`, &sol)
	post(t, ts.URL+"/solve", `{"x": "ad"}`, &sol)
	post(t, ts.URL+"/solve", `{"x": "ad", "parallelism": 2}`, &sol)
	var ins MutateResponse
	post(t, ts.URL+"/insert", `{"rel": "ab", "tuples": [[9,2]]}`, &ins)
	if err := srv.E.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	series := scrape(t, ts.URL)
	wantPositive := []string{
		`gyo_solve_seconds_count{cache="miss",mode="serial"}`,
		`gyo_solve_seconds_count{cache="hit",mode="serial"}`,
		`gyo_plan_cache_total{event="miss"}`,
		`gyo_plan_cache_total{event="hit"}`,
		`gyo_apply_seconds_count`,
		`gyo_apply_batch_tuples_count`,
		`gyo_wal_append_seconds_count`,
		`gyo_wal_append_bytes_count`,
		`gyo_checkpoint_seconds_count`,
		`gyo_checkpoint_bytes_total`,
		`gyo_snapshot_relations`,
		`gyo_snapshot_arena_bytes`,
		`gyo_uptime_seconds`,
		`gyo_goroutines`,
	}
	for _, key := range wantPositive {
		if v, ok := series[key]; !ok || v <= 0 {
			t.Errorf("series %s = %v (present=%v), want > 0", key, v, ok)
		}
	}
	// Registered-but-unfired families must still be exposed (at zero),
	// so dashboards see the full catalog from the first scrape.
	wantPresent := []string{
		`gyo_plan_cache_total{event="eviction"}`,
		// Tiny databases checkpoint through the manifest tail without
		// filling a single chunk, so the chunk counters may stay zero.
		`gyo_checkpoint_chunks_total{result="written"}`,
		`gyo_checkpoint_chunks_total{result="reused"}`,
		`gyo_checkpoint_failures_total`,
		`gyo_repartition_bytes_total`,
	}
	for _, key := range wantPresent {
		if _, ok := series[key]; !ok {
			t.Errorf("series %s missing from scrape", key)
		}
	}
	if series[`gyo_solve_seconds_count{cache="hit",mode="parallel"}`] <= 0 &&
		series[`gyo_solve_seconds_count{cache="hit",mode="serial"}`] < 2 {
		t.Error("parallel solve observed in neither parallel nor serial family")
	}
}

func TestMetricsGetOnly(t *testing.T) {
	ts, _, _ := obsServer(t, t.TempDir())
	resp, err := http.Post(ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics status = %d, want 405", resp.StatusCode)
	}
}

// TestSolveTraceGolden pins the trace contract on the fixed 3-relation
// chain: the span tree covers exactly the statements of the GYO plan,
// in plan order, and the per-statement elapsed sum never exceeds the
// run's total elapsed.
func TestSolveTraceGolden(t *testing.T) {
	ts, _, _ := testServer(t)

	var plan PlanResponse
	post(t, ts.URL+"/plan", `{"schema": "ab, bc, cd", "x": "ad"}`, &plan)
	if len(plan.Stmts) == 0 {
		t.Fatalf("plan = %+v", plan)
	}

	var sol SolveResponse
	resp := post(t, ts.URL+"/solve", `{"x": "ad", "trace": true}`, &sol)
	if sol.Trace == nil {
		t.Fatal("trace requested but reply has no span tree")
	}
	if sol.RequestID == "" || resp.Header.Get("X-Request-Id") != sol.RequestID {
		t.Errorf("request id body=%q header=%q", sol.RequestID, resp.Header.Get("X-Request-Id"))
	}

	byID := map[int]*PlanStmt{}
	for i := range plan.Stmts {
		byID[plan.Stmts[i].ID] = &plan.Stmts[i]
	}
	seen := map[int]int{}
	sol.Trace.Each(func(sp *program.Span) {
		seen[sp.ID]++
		ps, ok := byID[sp.ID]
		if !ok {
			t.Errorf("span id %d not in plan", sp.ID)
			return
		}
		if sp.Op != ps.Op || sp.Left != ps.Left || sp.Right != ps.Right {
			t.Errorf("span %d = (%s %d,%d), plan says (%s %d,%d)",
				sp.ID, sp.Op, sp.Left, sp.Right, ps.Op, ps.Left, ps.Right)
		}
		if sp.Out < 0 || sp.InLeft < 0 {
			t.Errorf("span %d has negative cardinalities: %+v", sp.ID, sp)
		}
	})
	if len(seen) != len(plan.Stmts) {
		t.Errorf("trace covers %d statements, plan has %d", len(seen), len(plan.Stmts))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("statement %d appears %d times in the trace tree", id, n)
		}
	}
	if want := plan.Stmts[len(plan.Stmts)-1].ID; sol.Trace.ID != want {
		t.Errorf("trace root = statement %d, want the final statement %d", sol.Trace.ID, want)
	}
	if sum := sol.Trace.ElapsedSum().Nanoseconds(); sum > sol.Stats.ElapsedNs {
		t.Errorf("span elapsed sum %dns exceeds run elapsed %dns", sum, sol.Stats.ElapsedNs)
	}

	// The untraced path stays untraced.
	var plain SolveResponse
	post(t, ts.URL+"/solve", `{"x": "ad"}`, &plain)
	if plain.Trace != nil {
		t.Error("untraced reply carries a span tree")
	}
	if plain.Card != sol.Card {
		t.Errorf("traced card %d ≠ untraced card %d", sol.Card, plain.Card)
	}
}

// TestSolveTraceParallel checks spans survive the partition-parallel
// path: the same tree shape, with Shards recorded on fanned statements.
func TestSolveTraceParallel(t *testing.T) {
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc, cd")
	e := New(Options{Workers: 4})
	e.Swap(urdb(d, 7, 4000, 12))
	srv := NewServer(e, u, d)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	var par SolveResponse
	post(t, ts.URL+"/solve", `{"x": "ad", "parallelism": 4, "trace": true, "limit": 0}`, &par)
	if par.Trace == nil {
		t.Fatal("no trace from parallel solve")
	}
	var serial SolveResponse
	post(t, ts.URL+"/solve", `{"x": "ad", "trace": true, "limit": 0}`, &serial)
	if par.Card != serial.Card {
		t.Fatalf("parallel card %d ≠ serial card %d", par.Card, serial.Card)
	}
	spans := 0
	par.Trace.Each(func(*program.Span) { spans++ })
	serialSpans := 0
	serial.Trace.Each(func(*program.Span) { serialSpans++ })
	if spans != serialSpans {
		t.Errorf("parallel trace has %d spans, serial %d — same plan must trace identically", spans, serialSpans)
	}
}

func TestSlowQueryLog(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc, cd")
	e := New(Options{Logf: func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}})
	e.Swap(urdb(d, 5, 50, 4))
	srv := NewServer(e, u, d)
	srv.SlowQuery = time.Nanosecond // everything is slow
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	var sol SolveResponse
	post(t, ts.URL+"/solve", `{"x": "ad"}`, &sol)

	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("slow-query log has %d lines, want 1: %q", len(lines), lines)
	}
	line := lines[0]
	for _, frag := range []string{"slow query", "id=" + sol.RequestID, "fp=", "x=ad", "parallelism=1", "top=["} {
		if !strings.Contains(line, frag) {
			t.Errorf("slow-query line missing %q: %s", frag, line)
		}
	}

	// Below threshold: silent.
	srv.SlowQuery = time.Hour
	post(t, ts.URL+"/solve", `{"x": "ad"}`, &sol)
	if len(lines) != 1 {
		t.Errorf("fast query logged: %q", lines)
	}
}

// TestMetricsScrapeUnderLoad is the -race stress test: concurrent
// /metrics scrapes against live /solve traffic and direct Engine.Apply
// writers. Every scrape must parse, and monotone counters must never
// regress between consecutive scrapes of the same goroutine.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	ts, srv, _ := obsServer(t, t.TempDir())

	monotone := []string{
		`gyo_solve_seconds_count{cache="hit",mode="serial"}`,
		`gyo_plan_cache_total{event="hit"}`,
		`gyo_apply_seconds_count`,
		`gyo_wal_append_seconds_count`,
	}

	const iters = 30
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := map[string]float64{}
			for i := 0; i < iters; i++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					errc <- err
					return
				}
				series, err := obs.ParseText(resp.Body)
				resp.Body.Close()
				if err != nil {
					errc <- fmt.Errorf("scrape %d unparseable: %w", i, err)
					return
				}
				for _, key := range monotone {
					if series[key] < last[key] {
						errc <- fmt.Errorf("scrape %d: %s regressed %v → %v", i, key, last[key], series[key])
						return
					}
					last[key] = series[key]
				}
			}
		}()
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var sol SolveResponse
				post(t, ts.URL+"/solve", `{"x": "ad", "limit": 0}`, &sol)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			v := 100 + i
			if _, _, err := srv.E.Apply(storage.Insert(0, 2, []relation.Tuple{{relation.Value(v), relation.Value(v + 1)}})); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// BenchmarkSolveTracedVsUntraced isolates the cost of "trace": true:
// the untraced path builds no spans (b.ReportAllocs shows zero
// span-tree allocations added), while the traced path pays one
// SpanTree construction per request.
func BenchmarkSolveTracedVsUntraced(b *testing.B) {
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc, cd")
	e := New(Options{})
	e.Swap(urdb(d, 5, 2000, 16))
	x := u.Set("a", "d")
	if _, _, err := e.Solve(d, x); err != nil {
		b.Fatal(err)
	}

	b.Run("untraced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := e.Solve(d, x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, st, err := e.Solve(d, x)
			if err != nil {
				b.Fatal(err)
			}
			pl, err := e.Plan(d, x)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := pl.Prog.SpanTree(st); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestStatsProcessBlock(t *testing.T) {
	ts, _, _ := testServer(t)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptimeSeconds = %v, want > 0", st.UptimeSeconds)
	}
	if st.Goroutines <= 0 {
		t.Errorf("goroutines = %d, want > 0", st.Goroutines)
	}
	if st.BuildInfo == nil || st.BuildInfo.GoVersion == "" {
		t.Errorf("buildInfo = %+v, want embedded go version", st.BuildInfo)
	}
}
