package engine

import "container/list"

// cacheKey identifies a cached plan: the order-independent schema
// fingerprint plus the target-set fingerprint (classifyFP for
// classification-only entries). Keys are probabilistic — hits are
// verified against the actual schema before being served.
type cacheKey struct {
	schemaFP uint64
	targetFP uint64
}

// lruCache is a fixed-capacity LRU over compiled plans. It is not
// itself synchronized; the Engine guards it with a mutex (operations
// are O(1) map/list work, orders of magnitude cheaper than the
// planning they replace, so one lock does not become the bottleneck).
type lruCache struct {
	cap   int
	items map[cacheKey]*list.Element
	order *list.List // front = most recently used
}

type lruEntry struct {
	key  cacheKey
	plan *Plan
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		items: make(map[cacheKey]*list.Element, capacity),
		order: list.New(),
	}
}

func (c *lruCache) get(key cacheKey) (*Plan, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).plan, true
}

// put inserts or refreshes key and returns how many entries were
// evicted to stay within capacity (0 or 1 in practice).
func (c *lruCache) put(key cacheKey, pl *Plan) int {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).plan = pl
		c.order.MoveToFront(el)
		return 0
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, plan: pl})
	evicted := 0
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		evicted++
	}
	return evicted
}

func (c *lruCache) len() int { return c.order.Len() }
