package engine

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// v1Server serves the hand-set query fixture from query_test.go.
func v1Server(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	e, u := queryEngine(t)
	d := e.Snapshot().D
	srv := NewServer(e, u, d)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// postRaw posts JSON and returns the response with the body still
// open (the shared post helper closes it), for decoding error
// envelopes.
func postRaw(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeErrorBody(t *testing.T, resp *http.Response) ErrorBody {
	t.Helper()
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("decoding error envelope: %v", err)
	}
	return eb
}

func TestQueryEndpoint(t *testing.T) {
	ts, _ := v1Server(t)

	var resp QueryResponse
	r := post(t, ts.URL+"/v1/query", `{"query": "ans(A, C) :- ab(A, B), bc(B, C)."}`, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if resp.Kind != "acyclic" {
		t.Errorf("kind = %q, want acyclic", resp.Kind)
	}
	if resp.Card != 2 || len(resp.Tuples) != 2 {
		t.Errorf("card = %d, tuples = %v, want 2", resp.Card, resp.Tuples)
	}
	if len(resp.Cols) != 2 || resp.Cols[0] != "A" || resp.Cols[1] != "C" {
		t.Errorf("cols = %v, want [A C]", resp.Cols)
	}
	if resp.Query != "ans(A, C) :- ab(A, B), bc(B, C)." {
		t.Errorf("echoed query = %q, want the canonical form", resp.Query)
	}
	if resp.RequestID == "" || resp.RequestID != r.Header.Get("X-Request-Id") {
		t.Errorf("body requestId %q != header %q", resp.RequestID, r.Header.Get("X-Request-Id"))
	}
	if resp.Stats.Statements == 0 {
		t.Error("stats missing")
	}
}

// TestQueryHeadOrder: Cols and Tuples follow the head's written order,
// not the engine's internal sorted order.
func TestQueryHeadOrder(t *testing.T) {
	ts, _ := v1Server(t)

	var resp QueryResponse
	post(t, ts.URL+"/v1/query", `{"query": "ans(B, A) :- ab(A, B)."}`, &resp)
	if len(resp.Cols) != 2 || resp.Cols[0] != "B" || resp.Cols[1] != "A" {
		t.Fatalf("cols = %v, want [B A]", resp.Cols)
	}
	found := false
	for _, tu := range resp.Tuples {
		if len(tu) == 2 && tu[0] == 10 && tu[1] == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("tuples %v not in head order: want (B=10, A=1)", resp.Tuples)
	}
}

func TestQueryFreeConnexKind(t *testing.T) {
	ts, _ := v1Server(t)
	var resp QueryResponse
	post(t, ts.URL+"/v1/query", `{"query": "ans(A, B) :- ab(A, B), bc(B, C)."}`, &resp)
	if resp.Kind != "free-connex" {
		t.Errorf("kind = %q, want free-connex", resp.Kind)
	}
	// A 4-cycle A–B–C–X–A over the stored ab and bc relations: cyclic
	// hypergraph, every atom still binds to a serving relation.
	var cyc QueryResponse
	post(t, ts.URL+"/v1/query", `{"query": "ans(A, C) :- ab(A, B), bc(B, C), ab(A, X), bc(X, C)."}`, &cyc)
	if cyc.Kind != "cyclic" {
		t.Errorf("kind = %q, want cyclic", cyc.Kind)
	}
}

func TestQueryTextPlainBody(t *testing.T) {
	ts, _ := v1Server(t)

	r, err := http.Post(ts.URL+"/v1/query", "text/plain",
		strings.NewReader("ans(A, D) :- ab(A, B), bc(B, C), cd(C, D)."))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(r.Body)
		t.Fatalf("status = %d: %s", r.StatusCode, body)
	}
	var resp QueryResponse
	if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Card != 2 {
		t.Errorf("card = %d, want 2", resp.Card)
	}
}

func TestQueryErrors(t *testing.T) {
	ts, srv := v1Server(t)

	// Parse error: invalid_query with a position in the message.
	r := postRaw(t, ts.URL+"/v1/query", `{"query": "ans(X) :- r(x)."}`)
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("parse error status = %d", r.StatusCode)
	}
	eb := decodeErrorBody(t, r)
	if eb.Error.Code != "invalid_query" || !strings.Contains(eb.Error.Message, "1:13") {
		t.Errorf("envelope = %+v, want invalid_query with position 1:13", eb)
	}
	if eb.Error.RequestID == "" || eb.Error.RequestID != r.Header.Get("X-Request-Id") {
		t.Errorf("envelope requestId %q != header %q", eb.Error.RequestID, r.Header.Get("X-Request-Id"))
	}

	// Unknown predicate: invalid_query at bind time.
	r = postRaw(t, ts.URL+"/v1/query", `{"query": "ans(X, Y) :- zq(X, Y)."}`)
	if eb := decodeErrorBody(t, r); r.StatusCode != http.StatusBadRequest || eb.Error.Code != "invalid_query" {
		t.Errorf("unknown predicate: status %d, envelope %+v", r.StatusCode, eb)
	}

	// Gas exhausted: typed resource_exhausted, HTTP 429.
	srv.Gas = 1
	r = postRaw(t, ts.URL+"/v1/query", `{"query": "ans(A, D) :- ab(A, B), bc(B, C), cd(C, D)."}`)
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("gas status = %d, want 429", r.StatusCode)
	}
	if eb := decodeErrorBody(t, r); eb.Error.Code != "resource_exhausted" {
		t.Errorf("gas envelope = %+v, want resource_exhausted", eb)
	}
	srv.Gas = 0

	// Deadline: typed deadline_exceeded, HTTP 504. A nanosecond server
	// deadline has always expired by the pre-evaluation check, so this
	// is deterministic.
	srv.QueryTimeout = time.Nanosecond
	r = postRaw(t, ts.URL+"/v1/query", `{"query": "ans(A, D) :- ab(A, B), bc(B, C), cd(C, D)."}`)
	if r.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline status = %d, want 504", r.StatusCode)
	}
	if eb := decodeErrorBody(t, r); eb.Error.Code != "deadline_exceeded" {
		t.Errorf("deadline envelope = %+v, want deadline_exceeded", eb)
	}
	srv.QueryTimeout = 0

	// Negative client timeout is a request error.
	r = postRaw(t, ts.URL+"/v1/query", `{"query": "ans(A, B) :- ab(A, B).", "timeoutMs": -1}`)
	if eb := decodeErrorBody(t, r); r.StatusCode != http.StatusBadRequest || eb.Error.Code != "invalid_request" {
		t.Errorf("negative timeout: status %d, envelope %+v", r.StatusCode, eb)
	}

	// Missing query text.
	r = postRaw(t, ts.URL+"/v1/query", `{"query": "  "}`)
	if eb := decodeErrorBody(t, r); r.StatusCode != http.StatusBadRequest || eb.Error.Code != "invalid_request" {
		t.Errorf("empty query: status %d, envelope %+v", r.StatusCode, eb)
	}
}

// TestMethodAndContentTypeMatrix is the table-driven rejection matrix:
// wrong methods get 405 with an Allow header, wrong content types 415,
// and every rejection wears the uniform envelope.
func TestMethodAndContentTypeMatrix(t *testing.T) {
	ts, _ := v1Server(t)
	client := ts.Client()

	cases := []struct {
		name       string
		method     string
		path       string
		ct         string
		body       string
		wantStatus int
		wantAllow  string
		wantCode   string
	}{
		{"get on solve", "GET", "/v1/solve", "", "", 405, "POST", "method_not_allowed"},
		{"get on query", "GET", "/v1/query", "", "", 405, "POST", "method_not_allowed"},
		{"delete on insert", "DELETE", "/v1/insert", "", "", 405, "POST", "method_not_allowed"},
		{"put on classify", "PUT", "/v1/classify", "application/json", `{}`, 405, "POST", "method_not_allowed"},
		{"post on stats", "POST", "/v1/stats", "application/json", `{}`, 405, "GET", "method_not_allowed"},
		{"post on metrics", "POST", "/v1/metrics", "application/json", `{}`, 405, "GET", "method_not_allowed"},
		{"post on healthz", "POST", "/v1/healthz", "", "", 405, "GET", "method_not_allowed"},
		{"csv on solve", "POST", "/v1/solve", "text/csv", `x,y`, 415, "", "unsupported_media_type"},
		{"plain on solve", "POST", "/v1/solve", "text/plain", `{"x": "ad"}`, 415, "", "unsupported_media_type"},
		{"csv on query", "POST", "/v1/query", "text/csv", `ans(X) :- ab(X, Y).`, 415, "", "unsupported_media_type"},
		{"garbage ct on insert", "POST", "/v1/insert", "multipart/;bad", `{}`, 415, "", "unsupported_media_type"},
		{"legacy get on solve", "GET", "/solve", "", "", 405, "POST", "method_not_allowed"},
		{"legacy csv on insert", "POST", "/insert", "text/csv", `{}`, 415, "", "unsupported_media_type"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, err := http.NewRequest(c.method, ts.URL+c.path, bytes.NewReader([]byte(c.body)))
			if err != nil {
				t.Fatal(err)
			}
			if c.ct != "" {
				req.Header.Set("Content-Type", c.ct)
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, c.wantStatus)
			}
			if c.wantAllow != "" && resp.Header.Get("Allow") != c.wantAllow {
				t.Errorf("Allow = %q, want %q", resp.Header.Get("Allow"), c.wantAllow)
			}
			eb := decodeErrorBody(t, resp)
			if eb.Error.Code != c.wantCode {
				t.Errorf("code = %q, want %q", eb.Error.Code, c.wantCode)
			}
			if eb.Error.RequestID == "" {
				t.Error("error envelope missing requestId")
			}
		})
	}

	// JSON with an explicit charset parameter is still accepted.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/classify",
		strings.NewReader(`{"schema": "ab, bc"}`))
	req.Header.Set("Content-Type", "application/json; charset=utf-8")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("charset-parameterized JSON rejected: %d", resp.StatusCode)
	}
}

func TestDeprecatedAliases(t *testing.T) {
	ts, _ := v1Server(t)

	// Legacy path answers identically but wears the deprecation headers.
	var legacy, v1 ClassifyResponse
	rl := post(t, ts.URL+"/classify", `{"schema": "ab, bc, cd"}`, &legacy)
	rv := post(t, ts.URL+"/v1/classify", `{"schema": "ab, bc, cd"}`, &v1)
	if legacy.Schema != v1.Schema || legacy.Tree != v1.Tree || legacy.GR != v1.GR {
		t.Errorf("legacy and /v1 responses differ: %+v vs %+v", legacy, v1)
	}
	if rl.Header.Get("Deprecation") != "true" {
		t.Error("legacy path missing Deprecation header")
	}
	if link := rl.Header.Get("Link"); !strings.Contains(link, "/v1/classify") || !strings.Contains(link, "successor-version") {
		t.Errorf("legacy Link = %q, want successor-version pointing at /v1/classify", link)
	}
	if rv.Header.Get("Deprecation") != "" {
		t.Error("/v1 path wears a Deprecation header")
	}

	// /v1/query has no legacy alias.
	r := post(t, ts.URL+"/query", `{"query": "ans(A, B) :- ab(A, B)."}`, nil)
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("legacy /query status = %d, want 404", r.StatusCode)
	}
}

func TestErrorEnvelopeEverywhere(t *testing.T) {
	ts, _ := v1Server(t)

	// Malformed JSON on a /v1 path and on a legacy path both use the
	// envelope.
	for _, path := range []string{"/v1/solve", "/solve", "/v1/insert", "/load"} {
		r := postRaw(t, ts.URL+path, `{not json`)
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", path, r.StatusCode)
			continue
		}
		eb := decodeErrorBody(t, r)
		if eb.Error.Code != "invalid_request" || eb.Error.Message == "" || eb.Error.RequestID == "" {
			t.Errorf("%s: envelope = %+v", path, eb)
		}
	}
}
