package engine

// Replication-aware server surface: /v1/replica/status, /v1/promote,
// the JSON /v1/healthz readiness report, and the 409 leader-redirect
// envelope write endpoints answer on a follower. The server never
// talks to internal/repl directly — the import points the other way —
// so the follower machinery plugs in through ReplicaController and
// gyod wires the two together.

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// ReplicaController is what a replication follower exposes to its
// serving layer. internal/repl's Tailer implements it.
type ReplicaController interface {
	// ReplicaStatus returns the follower's current replication state.
	ReplicaStatus() ReplicaStatus
	// Promote stops tailing, fences the replication cursor, and opens
	// the engine for writes. It is idempotent; after it returns nil the
	// node is a leader.
	Promote() error
}

// ReplicaStatus is the /v1/replica/status reply (and the input to the
// healthz readiness rules).
type ReplicaStatus struct {
	// Role is "leader" or "follower". A promoted follower reports
	// "leader".
	Role string `json:"role"`
	// LeaderURL is the leader this node follows (followers only; a
	// promoted node keeps reporting its old leader for operator
	// orientation, under PreviousLeader).
	LeaderURL      string `json:"leaderUrl,omitempty"`
	PreviousLeader string `json:"previousLeader,omitempty"`
	// CursorSeg/CursorOff is the applied replication cursor: the WAL
	// position on the leader this node's state covers. On a leader the
	// cursor is its own WAL tail.
	CursorSeg uint64 `json:"cursorSeg"`
	CursorOff int64  `json:"cursorOff"`
	// LagBytes is the acknowledged leader WAL bytes not yet applied
	// here; -1 means unknown (not connected since the last restart).
	LagBytes int64 `json:"lagBytes"`
	// LagRecords is the leader batches not yet applied here; -1 means
	// unknown (the counter anchors only once the follower has fully
	// caught up at least once).
	LagRecords int64 `json:"lagRecords"`
	// LagSeconds is the time since this node was last fully caught up;
	// 0 when caught up, -1 when never caught up since starting.
	LagSeconds float64 `json:"lagSeconds"`
	// Connected reports whether the leader feed is currently healthy.
	Connected bool `json:"connected"`
	// Diverged means replication stopped permanently: the leader no
	// longer serves this node's cursor (or changed identity), and the
	// replica must be re-seeded. LastError carries the operator message.
	Diverged  bool   `json:"diverged,omitempty"`
	LastError string `json:"lastError,omitempty"`
}

func (s *Server) handleReplicaStatus(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	if s.Replica != nil {
		writeJSON(w, s.Replica.ReplicaStatus())
		return
	}
	st := ReplicaStatus{Role: "leader", Connected: true}
	if store := s.E.Store(); store != nil {
		c := store.TailCursor()
		st.CursorSeg, st.CursorOff = c.Seg, c.Off
	}
	writeJSON(w, st)
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	if s.Replica == nil {
		writeError(w, http.StatusConflict, "not_a_replica",
			fmt.Errorf("this node is not a replica; nothing to promote"))
		return
	}
	if err := s.Replica.Promote(); err != nil {
		writeError(w, http.StatusInternalServerError, "internal",
			fmt.Errorf("promote failed: %w", err))
		return
	}
	writeJSON(w, s.Replica.ReplicaStatus())
}

// HealthResponse is the /v1/healthz reply. Status "ok" comes with HTTP
// 200, "unavailable" with 503 and the reasons — the readiness contract
// for load balancers: a leader is ready while its store can accept
// writes, a follower while it is not diverged and (when the server
// sets MaxLagBytes) its lag is known and under the bound.
type HealthResponse struct {
	Status   string   `json:"status"` // "ok" | "unavailable"
	Role     string   `json:"role"`   // "leader" | "follower"
	Reasons  []string `json:"reasons,omitempty"`
	LagBytes *int64   `json:"lagBytes,omitempty"` // followers only; -1 = unknown
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	resp := HealthResponse{Status: "ok", Role: "leader"}
	if s.Replica != nil {
		st := s.Replica.ReplicaStatus()
		resp.Role = st.Role
		if st.Role == "follower" {
			lag := st.LagBytes
			resp.LagBytes = &lag
			if st.Diverged {
				msg := "replica diverged from its leader"
				if st.LastError != "" {
					msg += ": " + st.LastError
				}
				resp.Reasons = append(resp.Reasons, msg)
			}
			if s.MaxLagBytes > 0 && (lag < 0 || lag > s.MaxLagBytes) {
				resp.Reasons = append(resp.Reasons,
					fmt.Sprintf("replication lag %d bytes exceeds the readiness bound %d (-1 = unknown)", lag, s.MaxLagBytes))
			}
		}
	}
	if store := s.E.Store(); store != nil {
		if err := store.Healthy(); err != nil {
			resp.Reasons = append(resp.Reasons, err.Error())
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if len(resp.Reasons) > 0 {
		resp.Status = "unavailable"
		//gyo:nolint errenvelope healthz answers 503 with a health document (status + reasons), not an error envelope
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(resp)
}

// writeReadOnly answers a write attempt on a read replica: a typed 409
// whose envelope names the leader, so clients can redirect instead of
// retrying here.
func (s *Server) writeReadOnly(w http.ResponseWriter) {
	info := ErrorInfo{
		Code:      "read_only_replica",
		Message:   "this node is a read replica; send writes to the leader",
		RequestID: requestID(w),
	}
	if s.Replica != nil {
		info.Leader = s.Replica.ReplicaStatus().LeaderURL
	}
	w.Header().Set("Content-Type", "application/json")
	//gyo:nolint errenvelope writeReadOnly is itself an envelope writer; it hand-builds ErrorBody to carry the leader redirect field
	w.WriteHeader(http.StatusConflict)
	_ = json.NewEncoder(w).Encode(ErrorBody{Error: info})
}
