// Package qualgraph implements qual graphs and qual trees (paper §3.1):
// undirected graphs over the relation schemas of D in which, for every
// attribute A, the nodes whose schemas contain A induce a connected
// subgraph. D is a tree schema iff some qual graph for D is a tree.
//
// Two independent qual-tree constructions are provided — a maximum-
// weight-spanning-tree method and a GYO-trace method — plus exhaustive
// enumeration for small schemas, and the Theorem 3.1 characterization
// of subtrees via GYO reductions.
package qualgraph

import (
	"fmt"

	"gyokit/internal/graph"
	"gyokit/internal/gyo"
	"gyokit/internal/schema"
)

// IsQualGraph reports whether g (on nodes 0..len(d.Rels)-1) is a qual
// graph for d: for every attribute A ∈ U(D), the subgraph induced by
// the nodes whose relation schemas contain A is connected.
func IsQualGraph(d *schema.Schema, g *graph.Undirected) bool {
	if g.N() != len(d.Rels) {
		return false
	}
	ok := true
	d.Attrs().ForEach(func(a schema.Attr) bool {
		if !g.ConnectedOn(func(v int) bool { return d.Rels[v].Has(a) }) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// VerifyAttributeConnectivity checks the paper's "useful fact" on a qual
// tree T: for nodes r, s and any node p on the tree path from r to s,
// R ∩ S ⊆ P. It returns a descriptive error on the first violation.
// For trees this is equivalent to the qual-graph property.
func VerifyAttributeConnectivity(d *schema.Schema, t *graph.Undirected) error {
	if !t.IsTree() {
		return fmt.Errorf("qualgraph: graph is not a tree")
	}
	n := len(d.Rels)
	for r := 0; r < n; r++ {
		for s := r + 1; s < n; s++ {
			shared := d.Rels[r].Intersect(d.Rels[s])
			if shared.IsEmpty() {
				continue
			}
			path, ok := t.Path(r, s)
			if !ok {
				return fmt.Errorf("qualgraph: no path between %d and %d", r, s)
			}
			for _, p := range path {
				if !shared.SubsetOf(d.Rels[p]) {
					return fmt.Errorf("qualgraph: R%d ∩ R%d = %s ⊄ R%d on path",
						r, s, d.U.FormatSet(shared), p)
				}
			}
		}
	}
	return nil
}

// QualTreeMST constructs a qual tree for d using the classical maximum-
// weight spanning tree of the intersection graph (weight |Rᵢ ∩ Rⱼ|),
// built over the reduction of d with subsumed relations re-attached as
// leaves of a superset. ok is false iff d is a cyclic schema.
func QualTreeMST(d *schema.Schema) (t *graph.Undirected, ok bool) {
	n := len(d.Rels)
	if n == 0 {
		return graph.NewUndirected(0), true
	}
	// Map each relation either to itself (kept) or to a chosen superset.
	kept, parentOf := reduceWithParents(d)
	// MST over the kept relations.
	var edges []graph.WeightedEdge
	for i := 0; i < len(kept); i++ {
		for j := i + 1; j < len(kept); j++ {
			w := d.Rels[kept[i]].IntersectCard(d.Rels[kept[j]])
			edges = append(edges, graph.WeightedEdge{U: i, V: j, Weight: w})
		}
	}
	sub := graph.MaxSpanningForest(len(kept), edges)
	// Verify qual property on the reduced schema.
	red := d.Restrict(kept)
	if !IsQualGraph(red, sub) {
		return nil, false
	}
	// Lift back to all n nodes: kept nodes take the MST edges; each
	// eliminated relation hangs as a leaf off its superset. Hanging a
	// subset R′ ⊆ R as a leaf of R preserves the qual property: any
	// attribute of R′ is also in R, so its induced subgraph gains a
	// pendant vertex adjacent to an existing member.
	t = graph.NewUndirected(n)
	for _, e := range sub.Edges() {
		t.MustAddEdge(kept[e[0]], kept[e[1]])
	}
	for child, parent := range parentOf {
		t.MustAddEdge(child, parent)
	}
	if !IsQualGraph(d, t) {
		// Should be impossible; fail loudly rather than return a bogus tree.
		panic("qualgraph: internal: lifted MST tree lost the qual property")
	}
	return t, true
}

// reduceWithParents partitions relation indexes into kept (maximal,
// first occurrence) and eliminated ones, mapping each eliminated index
// to a kept superset.
func reduceWithParents(d *schema.Schema) (kept []int, parentOf map[int]int) {
	n := len(d.Rels)
	parentOf = make(map[int]int)
	eliminated := make([]bool, n)
	for i := 0; i < n; i++ {
		if eliminated[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if i == j || eliminated[j] || eliminated[i] {
				continue
			}
			ri, rj := d.Rels[i], d.Rels[j]
			if ri.SubsetOf(rj) && (!rj.SubsetOf(ri) || i > j) {
				eliminated[i] = true
			}
		}
	}
	for i := 0; i < n; i++ {
		if !eliminated[i] {
			kept = append(kept, i)
		}
	}
	for i := 0; i < n; i++ {
		if !eliminated[i] {
			continue
		}
		for _, k := range kept {
			if d.Rels[i].SubsetOf(d.Rels[k]) {
				parentOf[i] = k
				break
			}
		}
	}
	return kept, parentOf
}

// QualTreeGYO constructs a qual tree for d by replaying a full GYO
// reduction: each subset elimination R ⊆ S contributes the tree edge
// {R, S}. ok is false iff d is cyclic (the reduction does not empty).
func QualTreeGYO(d *schema.Schema) (t *graph.Undirected, ok bool) {
	n := len(d.Rels)
	res := gyo.ReduceFull(d)
	if !res.Empty() {
		return nil, false
	}
	t = graph.NewUndirected(n)
	for _, op := range res.Trace {
		if op.Kind == gyo.SubsetEliminate {
			t.MustAddEdge(op.Rel, op.Into)
		}
	}
	if n > 0 && !t.IsTree() {
		panic("qualgraph: internal: GYO trace did not produce a tree")
	}
	if !IsQualGraph(d, t) {
		panic("qualgraph: internal: GYO trace tree lost the qual property")
	}
	return t, true
}

// QualTree returns a qual tree for d (MST method) and whether one exists.
func QualTree(d *schema.Schema) (*graph.Undirected, bool) {
	return QualTreeMST(d)
}

// EnumerateQualTrees enumerates every qual tree for d, calling yield for
// each. It inspects all labeled trees on len(d.Rels) nodes and is
// therefore super-exponential; intended for |D| ≤ 7 in tests.
// Enumeration stops early when yield returns false.
func EnumerateQualTrees(d *schema.Schema, yield func(*graph.Undirected) bool) {
	n := len(d.Rels)
	k := graph.NewUndirected(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			k.MustAddEdge(i, j)
		}
	}
	k.SpanningTrees(func(edges [][2]int) bool {
		t := graph.NewUndirected(n)
		for _, e := range edges {
			t.MustAddEdge(e[0], e[1])
		}
		if IsQualGraph(d, t) {
			return yield(t)
		}
		return true
	})
}

// IsTreeSchemaExhaustive reports tree-ness by brute-force qual-tree
// enumeration; a slow, independent oracle for cross-checking gyo.IsTree
// on small schemas.
func IsTreeSchemaExhaustive(d *schema.Schema) bool {
	found := false
	EnumerateQualTrees(d, func(*graph.Undirected) bool {
		found = true
		return false
	})
	if len(d.Rels) == 0 {
		return true
	}
	return found
}

// IsSubtree implements Theorem 3.1(ii): for a tree schema D and
// D′ a sub-multiset of D's relation schemas, D′ is a subtree of D
// (some qual tree for D has a connected subgraph whose nodes are
// exactly D′) iff every relation schema of GR(D, ∪D′) occurs in D′.
// For cyclic D it returns false (no qual tree exists at all).
func IsSubtree(d, dprime *schema.Schema) bool {
	if !dprime.SubmultisetOf(d) {
		return false
	}
	if !gyo.IsTree(d) {
		return false
	}
	if len(dprime.Rels) == 0 {
		return true
	}
	gr := gyo.Reduce(d, dprime.Attrs()).GR
	for _, r := range gr.Rels {
		if !dprime.Contains(r) {
			return false
		}
	}
	return true
}

// IsSubtreeExhaustive decides subtree-ness by enumerating qual trees; a
// slow oracle for tests. idx selects the candidate node set of d.
func IsSubtreeExhaustive(d *schema.Schema, idx []int) bool {
	want := make(map[int]bool, len(idx))
	for _, i := range idx {
		want[i] = true
	}
	found := false
	EnumerateQualTrees(d, func(t *graph.Undirected) bool {
		if t.ConnectedOn(func(v int) bool { return want[v] }) {
			found = true
			return false
		}
		return true
	})
	return found
}
