package qualgraph

import (
	"math/rand"
	"testing"

	"gyokit/internal/gen"
	"gyokit/internal/graph"
	"gyokit/internal/gyo"
	"gyokit/internal/schema"
)

func parse(t *testing.T, u *schema.Universe, s string) *schema.Schema {
	t.Helper()
	d, err := schema.Parse(u, s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFig1QualGraphs verifies Figure 1's qual graphs directly.
func TestFig1QualGraphs(t *testing.T) {
	u := schema.NewUniverse()

	// (ab, bc, cd): the path ab—bc—cd is a qual tree.
	d1 := parse(t, u, "ab, bc, cd")
	g1 := graph.NewUndirected(3)
	g1.MustAddEdge(0, 1)
	g1.MustAddEdge(1, 2)
	if !IsQualGraph(d1, g1) {
		t.Error("ab—bc—cd should be a qual graph for (ab,bc,cd)")
	}
	// ab—cd—bc is NOT a qual graph: nodes containing b are {ab, bc},
	// disconnected in that tree.
	g1bad := graph.NewUndirected(3)
	g1bad.MustAddEdge(0, 2)
	g1bad.MustAddEdge(2, 1)
	if IsQualGraph(d1, g1bad) {
		t.Error("ab—cd—bc should not be a qual graph")
	}

	// (ab, bc, ac): the triangle is the only qual graph, so cyclic.
	d2 := parse(t, u, "ab, bc, ac")
	tri := graph.NewUndirected(3)
	tri.MustAddEdge(0, 1)
	tri.MustAddEdge(1, 2)
	tri.MustAddEdge(0, 2)
	if !IsQualGraph(d2, tri) {
		t.Error("triangle should be a qual graph for (ab,bc,ac)")
	}
	count := 0
	EnumerateQualTrees(d2, func(*graph.Undirected) bool { count++; return true })
	if count != 0 {
		t.Errorf("(ab,bc,ac) has %d qual trees, want 0", count)
	}

	// (abc, cde, ace, afe): Figure 1 exhibits the qual tree
	// abc—ace—afe with cde hanging off ace.
	d3 := parse(t, u, "abc, cde, ace, afe")
	g3 := graph.NewUndirected(4)
	g3.MustAddEdge(0, 2) // abc—ace
	g3.MustAddEdge(2, 3) // ace—afe
	g3.MustAddEdge(2, 1) // ace—cde
	if !IsQualGraph(d3, g3) {
		t.Error("Figure 1's qual tree for (abc,cde,ace,afe) rejected")
	}
	// The figure also shows the non-tree qual graph abc—ace—afe plus
	// cde adjacent to both abc and ace; verify it qualifies as a qual
	// graph but is not a tree.
	g3b := graph.NewUndirected(4)
	g3b.MustAddEdge(0, 2)
	g3b.MustAddEdge(2, 3)
	g3b.MustAddEdge(2, 1)
	g3b.MustAddEdge(0, 1) // abc—cde (share c)
	if !IsQualGraph(d3, g3b) {
		t.Error("non-tree qual graph rejected")
	}
	if g3b.IsTree() {
		t.Error("g3b should not be a tree")
	}
}

func TestQualTreeConstructionsAgreeWithGYO(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		var d *schema.Schema
		switch trial % 3 {
		case 0:
			d = gen.RandomSchema(rng, 1+rng.Intn(6), 2+rng.Intn(5), 0.5)
		case 1:
			d = gen.TreeSchema(rng, 1+rng.Intn(7), 2, 2)
		default:
			d = gen.Ring(3 + rng.Intn(4))
		}
		isTree := gyo.IsTree(d)
		mst, ok1 := QualTreeMST(d)
		gt, ok2 := QualTreeGYO(d)
		if ok1 != isTree || ok2 != isTree {
			t.Fatalf("construction disagrees with Corollary 3.1 on %s: mst=%v gyo=%v tree=%v",
				d, ok1, ok2, isTree)
		}
		if isTree {
			if !mst.IsTree() || !gt.IsTree() {
				t.Fatalf("returned graphs are not trees for %s", d)
			}
			if !IsQualGraph(d, mst) || !IsQualGraph(d, gt) {
				t.Fatalf("returned trees are not qual graphs for %s", d)
			}
			if err := VerifyAttributeConnectivity(d, mst); err != nil {
				t.Fatalf("MST attribute connectivity: %v", err)
			}
			if err := VerifyAttributeConnectivity(d, gt); err != nil {
				t.Fatalf("GYO attribute connectivity: %v", err)
			}
		}
	}
}

func TestExhaustiveAgreesWithGYO(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		d := gen.RandomSchema(rng, 1+rng.Intn(5), 2+rng.Intn(4), 0.5)
		if got, want := IsTreeSchemaExhaustive(d), gyo.IsTree(d); got != want {
			t.Fatalf("exhaustive=%v gyo=%v for %s", got, want, d)
		}
	}
}

func TestQualTreeWithSubsumedRelations(t *testing.T) {
	u := schema.NewUniverse()
	// Duplicates and subsets must hang off supersets.
	d := parse(t, u, "abc, ab, abc, c")
	tr, ok := QualTree(d)
	if !ok {
		t.Fatal("schema with subsets should be a tree schema")
	}
	if !IsQualGraph(d, tr) {
		t.Fatal("qual property lost")
	}
	gt, ok := QualTreeGYO(d)
	if !ok || !IsQualGraph(d, gt) {
		t.Fatal("GYO construction failed on subsumed relations")
	}
}

func TestVerifyAttributeConnectivityErrors(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab, bc, cd")
	notTree := graph.NewUndirected(3)
	notTree.MustAddEdge(0, 1)
	if err := VerifyAttributeConnectivity(d, notTree); err == nil {
		t.Error("disconnected graph accepted")
	}
	bad := graph.NewUndirected(3)
	bad.MustAddEdge(0, 2)
	bad.MustAddEdge(2, 1)
	if err := VerifyAttributeConnectivity(d, bad); err == nil {
		t.Error("tree violating attribute connectivity accepted")
	}
}

// TestTheorem31Subtree cross-checks the GYO characterization of
// subtrees (Theorem 3.1(ii)) against exhaustive qual-tree enumeration.
func TestTheorem31Subtree(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	trials, checked := 0, 0
	for trials < 300 && checked < 120 {
		trials++
		d := gen.TreeSchema(rng, 1+rng.Intn(5), 2, 2)
		if len(d.Rels) > 6 {
			continue
		}
		sub, idx := gen.SubSchema(rng, d)
		checked++
		got := IsSubtree(d, sub)
		want := IsSubtreeExhaustive(d, idx)
		if got != want {
			t.Fatalf("subtree mismatch: D=%s D'=%s gyo=%v exhaustive=%v", d, sub, got, want)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d cases checked", checked)
	}
}

func TestIsSubtreeEdgeCases(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "abc, ab, bc")
	// §5.1: (ab, bc) is not a subtree of (abc, ab, bc).
	if IsSubtree(d, parse(t, u, "ab, bc")) {
		t.Error("(ab,bc) should not be a subtree of (abc,ab,bc)")
	}
	// But (abc, ab) is: hang ab and bc off abc.
	if !IsSubtree(d, parse(t, u, "abc, ab")) {
		t.Error("(abc,ab) should be a subtree")
	}
	// D is always a subtree of itself (if a tree schema).
	if !IsSubtree(d, d) {
		t.Error("D should be a subtree of D")
	}
	// Not a sub-multiset → false.
	if IsSubtree(d, parse(t, u, "cd")) {
		t.Error("foreign relation accepted")
	}
	// Cyclic D → false even for D' = D.
	ring := parse(t, u, "ab, bc, ac")
	if IsSubtree(ring, ring) {
		t.Error("cyclic schema has no subtrees")
	}
	// Empty D' is trivially a subtree.
	if !IsSubtree(d, &schema.Schema{U: u}) {
		t.Error("empty sub-schema should be a subtree")
	}
}

func TestEnumerateQualTreesEarlyStop(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab, b, bc") // plenty of qual trees
	count := 0
	EnumerateQualTrees(d, func(*graph.Undirected) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestQualTreeEmptyAndSingle(t *testing.T) {
	u := schema.NewUniverse()
	empty := &schema.Schema{U: u}
	if tr, ok := QualTreeMST(empty); !ok || tr.N() != 0 {
		t.Error("empty schema should have the empty qual tree")
	}
	single := parse(t, u, "ab")
	if tr, ok := QualTreeMST(single); !ok || tr.N() != 1 {
		t.Error("singleton schema should have the one-node qual tree")
	}
	if tr, ok := QualTreeGYO(single); !ok || tr.N() != 1 {
		t.Error("GYO singleton failed")
	}
}
