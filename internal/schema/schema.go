package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Schema is a database schema: a multiset of relation schemas over a
// shared Universe (paper §2). Order is preserved — the i-th relation
// schema corresponds to the paper's Rᵢ — and duplicates are allowed.
type Schema struct {
	U    *Universe
	Rels []AttrSet
}

// New returns a schema over u with the given relation schemas.
func New(u *Universe, rels ...AttrSet) *Schema {
	return &Schema{U: u, Rels: append([]AttrSet(nil), rels...)}
}

// Clone returns a deep copy sharing the same Universe.
func (d *Schema) Clone() *Schema {
	rels := make([]AttrSet, len(d.Rels))
	for i, r := range d.Rels {
		rels[i] = r.Clone()
	}
	return &Schema{U: d.U, Rels: rels}
}

// Len returns the number of relation schemas (counting duplicates).
func (d *Schema) Len() int { return len(d.Rels) }

// Attrs returns U(D) = ∪ᵢ Rᵢ, the attributes of the schema.
func (d *Schema) Attrs() AttrSet {
	var s AttrSet
	for _, r := range d.Rels {
		s = s.Union(r)
	}
	return s
}

// Add appends a relation schema.
func (d *Schema) Add(r AttrSet) { d.Rels = append(d.Rels, r) }

// WithRel returns a copy of d with r appended (the paper's D ∪ (R)).
func (d *Schema) WithRel(r AttrSet) *Schema {
	c := d.Clone()
	c.Add(r)
	return c
}

// RemoveAt returns a copy of d with the i-th relation schema removed.
func (d *Schema) RemoveAt(i int) *Schema {
	c := d.Clone()
	c.Rels = append(c.Rels[:i], c.Rels[i+1:]...)
	return c
}

// Contains reports whether some relation schema of d equals r.
func (d *Schema) Contains(r AttrSet) bool {
	for _, s := range d.Rels {
		if s.Equal(r) {
			return true
		}
	}
	return false
}

// IsReduced reports whether no relation schema is a subset of another
// (paper §2). Duplicates make a schema non-reduced.
func (d *Schema) IsReduced() bool {
	for i, r := range d.Rels {
		for j, s := range d.Rels {
			if i == j {
				continue
			}
			if r.SubsetOf(s) && (!s.SubsetOf(r) || i > j) {
				// r ⊂ s, or r = s and we keep the earlier copy.
				return false
			}
		}
	}
	return true
}

// Reduce returns the reduction of d: relation schemas that are subsets of
// others (including duplicates) are eliminated. The first occurrence of
// each maximal set is kept, preserving order.
func (d *Schema) Reduce() *Schema {
	keep := make([]bool, len(d.Rels))
	for i := range keep {
		keep[i] = true
	}
	for i, r := range d.Rels {
		if !keep[i] {
			continue
		}
		for j, s := range d.Rels {
			if i == j || !keep[i] {
				continue
			}
			if !keep[j] {
				continue
			}
			if r.SubsetOf(s) {
				if s.SubsetOf(r) {
					// duplicates: drop the later one
					if i > j {
						keep[i] = false
					} else {
						keep[j] = false
					}
				} else {
					keep[i] = false
				}
			}
		}
	}
	out := &Schema{U: d.U}
	for i, r := range d.Rels {
		if keep[i] {
			out.Rels = append(out.Rels, r.Clone())
		}
	}
	return out
}

// LE reports the paper's D′ ≤ D: for every R′ ∈ d there is R ∈ e with
// R′ ⊆ R.
func (d *Schema) LE(e *Schema) bool {
	for _, r := range d.Rels {
		ok := false
		for _, s := range e.Rels {
			if r.SubsetOf(s) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// SubmultisetOf reports whether every relation schema of d occurs in e
// at least as many times as in d (the paper's D′ ⊆ D for schemas).
func (d *Schema) SubmultisetOf(e *Schema) bool {
	used := make([]bool, len(e.Rels))
	for _, r := range d.Rels {
		found := false
		for j, s := range e.Rels {
			if !used[j] && r.Equal(s) {
				used[j] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// SetEqual reports whether d and e contain the same relation schemas as
// sets (ignoring multiplicity and order).
func (d *Schema) SetEqual(e *Schema) bool {
	return d.subsetAsSet(e) && e.subsetAsSet(d)
}

func (d *Schema) subsetAsSet(e *Schema) bool {
	for _, r := range d.Rels {
		if !e.Contains(r) {
			return false
		}
	}
	return true
}

// MultisetEqual reports whether d and e are equal as multisets.
func (d *Schema) MultisetEqual(e *Schema) bool {
	return len(d.Rels) == len(e.Rels) && d.SubmultisetOf(e)
}

// DeleteAttrs returns the schema (R − X | R ∈ D): x removed uniformly
// from every relation schema. Empty relation schemas are kept (callers
// that want them gone should Reduce).
func (d *Schema) DeleteAttrs(x AttrSet) *Schema {
	out := &Schema{U: d.U}
	for _, r := range d.Rels {
		out.Rels = append(out.Rels, r.Diff(x))
	}
	return out
}

// Restrict returns the sub-schema of relation schemas at the given indexes.
func (d *Schema) Restrict(idx []int) *Schema {
	out := &Schema{U: d.U}
	for _, i := range idx {
		out.Rels = append(out.Rels, d.Rels[i].Clone())
	}
	return out
}

// Connected reports whether d is connected: every pair of non-empty
// relation schemas is linked by a path of relation schemas in which
// adjacent schemas share at least one attribute (paper §5.2).
// Schemas with at most one non-empty relation are connected; empty
// relation schemas are ignored.
func (d *Schema) Connected() bool {
	return len(d.Components()) <= 1
}

// Components returns the connected components of d as lists of relation
// indexes. Empty relation schemas are omitted from every component.
func (d *Schema) Components() [][]int {
	n := len(d.Rels)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(i, j int) {
		ri, rj := find(i), find(j)
		if ri != rj {
			parent[ri] = rj
		}
	}
	for i := 0; i < n; i++ {
		if d.Rels[i].IsEmpty() {
			continue
		}
		for j := i + 1; j < n; j++ {
			if d.Rels[j].IsEmpty() {
				continue
			}
			if d.Rels[i].Intersects(d.Rels[j]) {
				union(i, j)
			}
		}
	}
	groups := map[int][]int{}
	var roots []int
	for i := 0; i < n; i++ {
		if d.Rels[i].IsEmpty() {
			continue
		}
		r := find(i)
		if _, ok := groups[r]; !ok {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], i)
	}
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// AttrOccurrences returns, for each attribute of the universe, how many
// relation schemas of d contain it.
func (d *Schema) AttrOccurrences() []int {
	counts := make([]int, d.U.Size())
	for _, r := range d.Rels {
		r.ForEach(func(a Attr) bool {
			counts[a]++
			return true
		})
	}
	return counts
}

// Canonical returns the relation schemas sorted into Compare order; used
// for order-insensitive comparison and printing.
func (d *Schema) Canonical() []AttrSet {
	out := make([]AttrSet, len(d.Rels))
	for i, r := range d.Rels {
		out[i] = r.Clone()
	}
	SortSets(out)
	return out
}

// Key returns a canonical string key for the multiset of relation
// schemas, suitable for map keys and duplicate detection.
func (d *Schema) Key() string {
	cs := d.Canonical()
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.Key()
	}
	return strings.Join(parts, "|")
}

// String renders the schema in the paper's notation, e.g. "(ab, bc, cd)".
func (d *Schema) String() string {
	parts := make([]string, len(d.Rels))
	for i, r := range d.Rels {
		parts[i] = d.U.FormatSet(r)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// SortedString renders the schema with relation schemas in canonical
// order, for order-insensitive golden comparisons.
func (d *Schema) SortedString() string {
	cs := d.Canonical()
	parts := make([]string, len(cs))
	for i, r := range cs {
		parts[i] = d.U.FormatSet(r)
	}
	sort.Strings(parts)
	return "(" + strings.Join(parts, ", ") + ")"
}

// Validate checks internal consistency: every attribute is interned in
// the universe.
func (d *Schema) Validate() error {
	if d.U == nil {
		return fmt.Errorf("schema: nil universe")
	}
	size := d.U.Size()
	for i, r := range d.Rels {
		if m := r.Attrs(); len(m) > 0 && int(m[len(m)-1]) >= size {
			return fmt.Errorf("schema: relation %d uses attribute %d beyond universe size %d", i, m[len(m)-1], size)
		}
	}
	return nil
}
