package schema

import (
	"strings"
	"testing"
)

func TestParseCompact(t *testing.T) {
	u := NewUniverse()
	d, err := Parse(u, "(ab, bc, cd)")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	if got := d.String(); got != "(ab, bc, cd)" {
		t.Errorf("String = %q", got)
	}
	if got := d.Attrs(); got.Card() != 4 {
		t.Errorf("U(D) card = %d", got.Card())
	}
}

func TestParseMultiChar(t *testing.T) {
	u := NewUniverse()
	d, err := Parse(u, "order line, line item")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Attrs().Card() != 3 {
		t.Fatalf("parse multi-char failed: %v", d)
	}
}

func TestParseErrors(t *testing.T) {
	u := NewUniverse()
	if _, err := Parse(u, "ab,,cd"); err == nil {
		t.Error("expected error for empty relation")
	}
	if d, err := Parse(u, "  "); err != nil || d.Len() != 0 {
		t.Error("blank input should give empty schema")
	}
}

func TestParseEmptyRelation(t *testing.T) {
	u := NewUniverse()
	d := MustParse(u, "ab, ∅")
	if d.Len() != 2 || !d.Rels[1].IsEmpty() {
		t.Fatalf("∅ parse failed: %v", d)
	}
}

func TestReduce(t *testing.T) {
	u := NewUniverse()
	cases := []struct {
		in, want string
	}{
		{"abc, ab, bc", "(abc)"},
		{"ab, ab", "(ab)"},
		{"ab, bc, cd", "(ab, bc, cd)"},
		{"a, ab, abc, abcd", "(abcd)"},
		{"ab, cd, ab, b", "(ab, cd)"},
	}
	for _, c := range cases {
		d := MustParse(u, c.in)
		got := d.Reduce()
		if got.String() != c.want {
			t.Errorf("Reduce(%s) = %s, want %s", c.in, got, c.want)
		}
		if !got.IsReduced() {
			t.Errorf("Reduce(%s) not reduced", c.in)
		}
	}
}

func TestIsReduced(t *testing.T) {
	u := NewUniverse()
	if MustParse(u, "abc, ab").IsReduced() {
		t.Error("subset schema claimed reduced")
	}
	if MustParse(u, "ab, ab").IsReduced() {
		t.Error("duplicate schema claimed reduced")
	}
	if !MustParse(u, "ab, bc").IsReduced() {
		t.Error("reduced schema claimed non-reduced")
	}
}

func TestLE(t *testing.T) {
	u := NewUniverse()
	d := MustParse(u, "ab, bc, cd")
	dd := MustParse(u, "ab, abch, cdgh")
	if !d.LE(d) {
		t.Error("D ≤ D should hold")
	}
	small := MustParse(u, "ab, bc")
	if !small.LE(d) {
		t.Error("(ab,bc) ≤ (ab,bc,cd) should hold")
	}
	if dd.LE(d) {
		t.Error("(ab,abch,cdgh) ≤ (ab,bc,cd) should fail")
	}
	if !MustParse(u, "a, c").LE(d) {
		t.Error("singleton subsets should satisfy ≤")
	}
}

func TestSubmultisetOf(t *testing.T) {
	u := NewUniverse()
	d := MustParse(u, "ab, ab, bc")
	if !MustParse(u, "ab, ab").SubmultisetOf(d) {
		t.Error("two copies of ab should be a sub-multiset")
	}
	if MustParse(u, "ab, ab, ab").SubmultisetOf(d) {
		t.Error("three copies of ab should not fit")
	}
	if !MustParse(u, "bc").SubmultisetOf(d) {
		t.Error("bc should fit")
	}
	if MustParse(u, "cd").SubmultisetOf(d) {
		t.Error("cd should not fit")
	}
}

func TestSetAndMultisetEqual(t *testing.T) {
	u := NewUniverse()
	a := MustParse(u, "ab, bc")
	b := MustParse(u, "bc, ab")
	c := MustParse(u, "ab, bc, ab")
	if !a.SetEqual(b) || !a.MultisetEqual(b) {
		t.Error("order should not matter")
	}
	if !a.SetEqual(c) {
		t.Error("SetEqual ignores multiplicity")
	}
	if a.MultisetEqual(c) {
		t.Error("MultisetEqual respects multiplicity")
	}
}

func TestDeleteAttrs(t *testing.T) {
	u := NewUniverse()
	d := MustParse(u, "abc, cde")
	got := d.DeleteAttrs(u.Set("c"))
	if got.String() != "(ab, de)" {
		t.Errorf("DeleteAttrs = %s", got)
	}
	if d.String() != "(abc, cde)" {
		t.Error("DeleteAttrs mutated input")
	}
}

func TestComponentsAndConnected(t *testing.T) {
	u := NewUniverse()
	d := MustParse(u, "ab, bc, de, ef, g")
	comps := d.Components()
	if len(comps) != 3 {
		t.Fatalf("Components = %v, want 3 groups", comps)
	}
	if d.Connected() {
		t.Error("disconnected schema claimed connected")
	}
	if !MustParse(u, "ab, bc, ca").Connected() {
		t.Error("triangle should be connected")
	}
	// Empty relation schemas are ignored.
	e := MustParse(u, "ab, ∅, bc")
	if !e.Connected() {
		t.Error("empty relation should not disconnect")
	}
	if len((&Schema{U: u}).Components()) != 0 {
		t.Error("empty schema has no components")
	}
}

func TestAttrOccurrences(t *testing.T) {
	u := NewUniverse()
	d := MustParse(u, "ab, bc, bd")
	occ := d.AttrOccurrences()
	b, _ := u.Lookup("b")
	a, _ := u.Lookup("a")
	if occ[b] != 3 || occ[a] != 1 {
		t.Errorf("occurrences wrong: %v", occ)
	}
}

func TestKeyCanonical(t *testing.T) {
	u := NewUniverse()
	a := MustParse(u, "ab, bc")
	b := MustParse(u, "bc, ab")
	if a.Key() != b.Key() {
		t.Error("Key should be order-insensitive")
	}
	c := MustParse(u, "ab, bd")
	if a.Key() == c.Key() {
		t.Error("different schemas share a Key")
	}
}

func TestWithRelAndRemoveAt(t *testing.T) {
	u := NewUniverse()
	d := MustParse(u, "ab, bc")
	e := d.WithRel(u.Set("c", "d"))
	if e.Len() != 3 || d.Len() != 2 {
		t.Error("WithRel wrong")
	}
	f := e.RemoveAt(0)
	if f.String() != "(bc, cd)" {
		t.Errorf("RemoveAt = %s", f)
	}
	if e.Len() != 3 {
		t.Error("RemoveAt mutated input")
	}
}

func TestValidate(t *testing.T) {
	u := NewUniverse()
	d := MustParse(u, "ab, bc")
	if err := d.Validate(); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
	bogus := &Schema{U: u, Rels: []AttrSet{NewAttrSet(Attr(u.Size() + 5))}}
	if err := bogus.Validate(); err == nil {
		t.Error("foreign attribute accepted")
	}
	if err := (&Schema{}).Validate(); err == nil {
		t.Error("nil universe accepted")
	}
}

func TestSortedString(t *testing.T) {
	u := NewUniverse()
	a := MustParse(u, "cd, ab, bc")
	b := MustParse(u, "ab, bc, cd")
	if a.SortedString() != b.SortedString() {
		t.Error("SortedString should be order-insensitive")
	}
	if !strings.HasPrefix(a.SortedString(), "(") {
		t.Error("format")
	}
}
