package schema

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randSet is a quick.Generator producing attribute sets over a bounded
// universe, so property tests exercise word boundaries (attrs up to 130
// span three words).
type randSet struct{ S AttrSet }

func (randSet) Generate(r *rand.Rand, size int) reflect.Value {
	var s AttrSet
	n := r.Intn(size + 1)
	for i := 0; i < n; i++ {
		s.add(Attr(r.Intn(130)))
	}
	return reflect.ValueOf(randSet{S: s})
}

func qc(t *testing.T, f interface{}) {
	t.Helper()
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAttrSetBasics(t *testing.T) {
	s := NewAttrSet(1, 5, 64, 129)
	if got := s.Card(); got != 4 {
		t.Fatalf("Card = %d, want 4", got)
	}
	for _, a := range []Attr{1, 5, 64, 129} {
		if !s.Has(a) {
			t.Errorf("missing attribute %d", a)
		}
	}
	for _, a := range []Attr{0, 2, 63, 65, 128, 130, 500} {
		if s.Has(a) {
			t.Errorf("unexpected attribute %d", a)
		}
	}
	if s.Min() != 1 {
		t.Errorf("Min = %d, want 1", s.Min())
	}
	if got := s.Attrs(); !reflect.DeepEqual(got, []Attr{1, 5, 64, 129}) {
		t.Errorf("Attrs = %v", got)
	}
	if !NewAttrSet().IsEmpty() {
		t.Error("empty set not empty")
	}
	if NewAttrSet().Min() != -1 {
		t.Error("empty Min should be -1")
	}
}

func TestAttrSetImmutability(t *testing.T) {
	s := NewAttrSet(1, 2)
	u := s.Add(3)
	if s.Has(3) {
		t.Error("Add mutated receiver")
	}
	v := u.Remove(1)
	if !u.Has(1) {
		t.Error("Remove mutated receiver")
	}
	if v.Has(1) || !v.Has(2) || !v.Has(3) {
		t.Errorf("Remove wrong result: %v", v.Attrs())
	}
	w := s.Union(NewAttrSet(100))
	if s.Has(100) {
		t.Error("Union mutated receiver")
	}
	_ = w
}

func TestAttrSetAlgebraProperties(t *testing.T) {
	qc(t, func(x, y randSet) bool {
		// Union is commutative and contains both operands.
		u1, u2 := x.S.Union(y.S), y.S.Union(x.S)
		return u1.Equal(u2) && x.S.SubsetOf(u1) && y.S.SubsetOf(u1)
	})
	qc(t, func(x, y randSet) bool {
		// Intersection is contained in both and symmetric.
		i1, i2 := x.S.Intersect(y.S), y.S.Intersect(x.S)
		return i1.Equal(i2) && i1.SubsetOf(x.S) && i1.SubsetOf(y.S)
	})
	qc(t, func(x, y randSet) bool {
		// Diff removes exactly the intersection.
		d := x.S.Diff(y.S)
		return d.Intersect(y.S).IsEmpty() && d.Union(x.S.Intersect(y.S)).Equal(x.S)
	})
	qc(t, func(x, y, z randSet) bool {
		// De Morgan-ish distributivity: x ∩ (y ∪ z) = (x∩y) ∪ (x∩z).
		l := x.S.Intersect(y.S.Union(z.S))
		r := x.S.Intersect(y.S).Union(x.S.Intersect(z.S))
		return l.Equal(r)
	})
	qc(t, func(x, y randSet) bool {
		// Cardinality arithmetic: |x| + |y| = |x∪y| + |x∩y|.
		return x.S.Card()+y.S.Card() == x.S.Union(y.S).Card()+x.S.Intersect(y.S).Card()
	})
	qc(t, func(x, y randSet) bool {
		// Intersects and IntersectCard agree with Intersect.
		i := x.S.Intersect(y.S)
		return x.S.Intersects(y.S) == !i.IsEmpty() && x.S.IntersectCard(y.S) == i.Card()
	})
	qc(t, func(x, y randSet) bool {
		// SubsetOf agrees with Union/Intersect formulations.
		want := x.S.Union(y.S).Equal(y.S)
		return x.S.SubsetOf(y.S) == want && want == x.S.Intersect(y.S).Equal(x.S)
	})
	qc(t, func(x, y randSet) bool {
		// Equal sets have equal Hash and Key.
		if !x.S.Equal(y.S) {
			return true
		}
		return x.S.Hash() == y.S.Hash() && x.S.Key() == y.S.Key()
	})
	qc(t, func(x randSet) bool {
		// Key is canonical even with trailing zero words.
		padded := x.S.Clone()
		padded.ensure(5)
		return padded.Key() == x.S.Key() && padded.Hash() == x.S.Hash() && padded.Equal(x.S)
	})
	qc(t, func(x, y randSet) bool {
		// Compare is antisymmetric and consistent with Equal.
		c1, c2 := x.S.Compare(y.S), y.S.Compare(x.S)
		if x.S.Equal(y.S) {
			return c1 == 0 && c2 == 0
		}
		return c1 == -c2 && c1 != 0
	})
}

func TestAttrSetForEachOrderAndStop(t *testing.T) {
	s := NewAttrSet(70, 3, 129, 10)
	var seen []Attr
	s.ForEach(func(a Attr) bool {
		seen = append(seen, a)
		return true
	})
	if !reflect.DeepEqual(seen, []Attr{3, 10, 70, 129}) {
		t.Errorf("ForEach order = %v", seen)
	}
	count := 0
	s.ForEach(func(a Attr) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("ForEach early stop visited %d", count)
	}
}

func TestProperSubset(t *testing.T) {
	a := NewAttrSet(1, 2)
	b := NewAttrSet(1, 2, 3)
	if !a.ProperSubsetOf(b) || b.ProperSubsetOf(a) || a.ProperSubsetOf(a) {
		t.Error("ProperSubsetOf misbehaves")
	}
}

func TestSortSets(t *testing.T) {
	sets := []AttrSet{NewAttrSet(5), NewAttrSet(1, 2), NewAttrSet(0), NewAttrSet(1, 3)}
	SortSets(sets)
	want := []AttrSet{NewAttrSet(0), NewAttrSet(5), NewAttrSet(1, 2), NewAttrSet(1, 3)}
	for i := range want {
		if !sets[i].Equal(want[i]) {
			t.Fatalf("SortSets[%d] = %v, want %v", i, sets[i].Attrs(), want[i].Attrs())
		}
	}
}

func TestUniverse(t *testing.T) {
	u := NewUniverse()
	a := u.Attr("a")
	b := u.Attr("b")
	if a2 := u.Attr("a"); a2 != a {
		t.Errorf("re-interning changed id: %d vs %d", a2, a)
	}
	if u.Size() != 2 {
		t.Errorf("Size = %d", u.Size())
	}
	if u.Name(a) != "a" || u.Name(b) != "b" {
		t.Error("Name mismatch")
	}
	if _, ok := u.Lookup("zzz"); ok {
		t.Error("Lookup invented an attribute")
	}
	if got := u.FormatSet(u.Set("b", "a")); got != "ab" {
		t.Errorf("FormatSet = %q, want ab", got)
	}
	if got := u.FormatSet(AttrSet{}); got != "∅" {
		t.Errorf("FormatSet empty = %q", got)
	}
	long := NewUniverse()
	long.Attr("order")
	long.Attr("line")
	if got := long.FormatSet(long.Set("order", "line")); got != "line order" {
		t.Errorf("FormatSet multi-char = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Name on foreign attr should panic")
		}
	}()
	u.Name(Attr(99))
}
