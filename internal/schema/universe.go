package schema

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Universe interns attribute names. All schemas participating in one
// analysis must share a Universe so that their bitsets line up.
//
// A Universe is safe for concurrent use: interning takes a write lock
// and lookups take a read lock, so a serving layer can parse new
// schemas while other goroutines format or fingerprint existing ones.
// Attribute ids are append-only — once interned, an id never changes.
type Universe struct {
	mu    sync.RWMutex
	names []string
	index map[string]Attr
}

// NewUniverse returns an empty attribute universe.
func NewUniverse() *Universe {
	return &Universe{index: make(map[string]Attr)}
}

// Attr interns name and returns its attribute id, allocating a new id for
// unseen names.
func (u *Universe) Attr(name string) Attr {
	u.mu.RLock()
	a, ok := u.index[name]
	u.mu.RUnlock()
	if ok {
		return a
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if a, ok := u.index[name]; ok { // interned while upgrading the lock
		return a
	}
	a = Attr(len(u.names))
	u.names = append(u.names, name)
	u.index[name] = a
	return a
}

// Lookup returns the id for name without interning. ok is false when the
// name has never been interned.
func (u *Universe) Lookup(name string) (a Attr, ok bool) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	a, ok = u.index[name]
	return a, ok
}

// Name returns the interned name of a. It panics if a was never allocated
// by this universe.
func (u *Universe) Name(a Attr) string {
	u.mu.RLock()
	defer u.mu.RUnlock()
	if int(a) < 0 || int(a) >= len(u.names) {
		panic(fmt.Sprintf("schema: attribute %d not in universe (size %d)", a, len(u.names)))
	}
	return u.names[int(a)]
}

// Size returns the number of interned attributes.
func (u *Universe) Size() int {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return len(u.names)
}

// All returns the set of every interned attribute.
func (u *Universe) All() AttrSet {
	u.mu.RLock()
	defer u.mu.RUnlock()
	var s AttrSet
	for i := range u.names {
		s.add(Attr(i))
	}
	return s
}

// Set interns the given names and returns the corresponding set.
func (u *Universe) Set(names ...string) AttrSet {
	var s AttrSet
	for _, n := range names {
		s.add(u.Attr(n))
	}
	return s
}

// FormatSet renders a set using this universe's attribute names. Names
// are concatenated when every name is a single character (the paper's
// "abc" style) and joined by spaces otherwise. The empty set renders
// as "∅".
func (u *Universe) FormatSet(s AttrSet) string {
	attrs := s.Attrs()
	if len(attrs) == 0 {
		return "∅"
	}
	parts := make([]string, len(attrs))
	compact := true
	for i, a := range attrs {
		parts[i] = u.Name(a)
		// Concatenation must survive a round trip through Parse, whose
		// single-token path splits on letter/digit runes only.
		if len(parts[i]) != 1 || !isAlnumByte(parts[i][0]) {
			compact = false
		}
	}
	// Sort by name so output is stable even if interning order differs.
	sort.Strings(parts)
	if compact {
		return strings.Join(parts, "")
	}
	return strings.Join(parts, " ")
}

// isAlnumByte reports whether b is an ASCII letter or digit.
func isAlnumByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}
