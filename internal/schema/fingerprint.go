package schema

import "sort"

// Fingerprints identify schemas and attribute sets across processes and
// universes: they hash attribute NAMES, not interned ids, so two
// schemas that denote the same relation-schema multiset fingerprint
// equally no matter which universe interned them or in which order. The
// serving layer (internal/engine) keys its plan cache on them.

const (
	fpOffset64 = 14695981039346656037 // FNV-1a offset basis
	fpPrime64  = 1099511628211        // FNV-1a prime
)

// fpMix is the splitmix64 finalizer: a full-avalanche bijection so that
// fingerprints differing in few bits spread over the whole word.
func fpMix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// SetFingerprint returns a 64-bit fingerprint of s that depends only on
// the (sorted) attribute names, so it is stable across universes and
// interning orders. The empty set has a fixed fingerprint.
func (u *Universe) SetFingerprint(s AttrSet) uint64 {
	names := make([]string, 0, s.Card())
	s.ForEach(func(a Attr) bool {
		names = append(names, u.Name(a))
		return true
	})
	sort.Strings(names)
	h := uint64(fpOffset64)
	for _, n := range names {
		for i := 0; i < len(n); i++ {
			h ^= uint64(n[i])
			h *= fpPrime64
		}
		// Separator byte outside UTF-8 text so "ab"+"c" ≠ "a"+"bc".
		h ^= 0xff
		h *= fpPrime64
	}
	return fpMix(h)
}

// Fingerprint returns a canonical 64-bit fingerprint of the multiset of
// relation schemas: per-relation SetFingerprint values are combined
// commutatively (sum and xor of avalanched values), so any ordering of
// the same relation schemas — including duplicates, which the sum
// counts — fingerprints identically. Like SetFingerprint it hashes
// names, so it is universe-independent.
func (d *Schema) Fingerprint() uint64 {
	var sum, xor uint64
	for _, r := range d.Rels {
		h := d.U.SetFingerprint(r)
		sum += h
		xor ^= fpMix(h)
	}
	return fpMix(sum ^ fpMix(xor^uint64(len(d.Rels))*fpPrime64))
}

// OrderedFingerprint is Fingerprint's order-SENSITIVE sibling: the
// per-relation fingerprints are chained, so permutations of the same
// relation schemas fingerprint differently. Callers caching positional
// results (anything indexed by relation position, like qual-tree
// edges) key on this instead of Fingerprint.
func (d *Schema) OrderedFingerprint() uint64 {
	h := uint64(fpOffset64)
	for _, r := range d.Rels {
		h = fpMix(h ^ d.U.SetFingerprint(r))
	}
	return fpMix(h ^ uint64(len(d.Rels)))
}

// QueryFingerprint returns the (schema, target) fingerprint pair used
// as a plan-cache key for the query (d, x).
func (d *Schema) QueryFingerprint(x AttrSet) (schemaFP, targetFP uint64) {
	return d.Fingerprint(), d.U.SetFingerprint(x)
}
