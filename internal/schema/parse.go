package schema

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses a schema in the paper's compact notation: relation
// schemas separated by commas (and optionally wrapped in parentheses),
// each relation schema written either as a run of single-character
// attribute names ("abc") or as space-separated multi-character names
// ("order line item"). Examples accepted:
//
//	"ab, bc, cd"
//	"(ab,bc,ac)"
//	"abc, cde, ace, afe"
//	"user id, id name"
//
// Attribute names are alphanumeric (letters and digits, Unicode-aware);
// all are interned into u. Whitespace around separators is ignored. An
// empty relation schema may be written as "∅" or "{}".
func Parse(u *Universe, s string) (*Schema, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	d := &Schema{U: u}
	if strings.TrimSpace(s) == "" {
		return d, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("schema: empty relation schema in %q", s)
		}
		r, err := parseRel(u, part)
		if err != nil {
			return nil, err
		}
		d.Rels = append(d.Rels, r)
	}
	return d, nil
}

func parseRel(u *Universe, part string) (AttrSet, error) {
	if part == "∅" || part == "{}" {
		return AttrSet{}, nil
	}
	fields := strings.Fields(part)
	var s AttrSet
	if len(fields) == 1 {
		// Single token: treat each rune as a one-letter attribute, the
		// paper's "abc" style.
		tok := fields[0]
		if !alnum(tok) {
			return AttrSet{}, fmt.Errorf("schema: cannot parse relation schema %q", part)
		}
		for _, r := range tok {
			s.add(u.Attr(string(r)))
		}
		return s, nil
	}
	for _, f := range fields {
		// Multi-character names must be alphanumeric identifiers so
		// that formatted schemas re-parse (found by FuzzParse: junk
		// bytes interned as names broke the String→Parse round trip).
		if !alnum(f) {
			return AttrSet{}, fmt.Errorf("schema: invalid attribute name %q in %q", f, part)
		}
		s.add(u.Attr(f))
	}
	return s, nil
}

// alnum reports whether s is non-empty and all letters/digits.
func alnum(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

// MustParse is Parse that panics on error; for tests and fixed examples.
func MustParse(u *Universe, s string) *Schema {
	d, err := Parse(u, s)
	if err != nil {
		panic(err)
	}
	return d
}

// MustSet parses a single relation schema ("abc" or "a b c") into u.
func MustSet(u *Universe, s string) AttrSet {
	s = strings.TrimSpace(s)
	if s == "" || s == "∅" || s == "{}" {
		return AttrSet{}
	}
	r, err := parseRel(u, s)
	if err != nil {
		panic(err)
	}
	return r
}
