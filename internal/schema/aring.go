package schema

import "fmt"

// Aring returns the Aring of size n (paper §3.1): attributes A₁..Aₙ and
// relation schemas {A₁A₂, A₂A₃, …, Aₙ₋₁Aₙ, AₙA₁}. It panics for n < 3.
// Attribute names are prefix+index ("a1", "a2", …) unless n ≤ 26 and
// prefix is empty, in which case single letters a, b, c, … are used so
// examples match the paper's notation.
func Aring(u *Universe, n int, prefix string) *Schema {
	if n < 3 {
		panic(fmt.Sprintf("schema: Aring size %d < 3", n))
	}
	attrs := ringAttrs(u, n, prefix)
	d := &Schema{U: u}
	for i := 0; i < n; i++ {
		d.Add(NewAttrSet(attrs[i], attrs[(i+1)%n]))
	}
	return d
}

// Aclique returns the Aclique of size n (paper §3.1): attributes A₁..Aₙ
// and relation schemas U−{A₁}, …, U−{Aₙ}. It panics for n < 3.
func Aclique(u *Universe, n int, prefix string) *Schema {
	if n < 3 {
		panic(fmt.Sprintf("schema: Aclique size %d < 3", n))
	}
	attrs := ringAttrs(u, n, prefix)
	var all AttrSet
	for _, a := range attrs {
		all = all.Union(NewAttrSet(a))
	}
	d := &Schema{U: u}
	for i := 0; i < n; i++ {
		d.Add(all.Remove(attrs[i]))
	}
	return d
}

func ringAttrs(u *Universe, n int, prefix string) []Attr {
	attrs := make([]Attr, n)
	for i := 0; i < n; i++ {
		var name string
		if prefix == "" && n <= 26 {
			name = string(rune('a' + i))
		} else {
			name = fmt.Sprintf("%s%d", prefix, i+1)
		}
		attrs[i] = u.Attr(name)
	}
	return attrs
}

// IsAring reports whether d is (isomorphic to) an Aring: a reduced,
// connected schema of n ≥ 3 binary relation schemas over n attributes in
// which every attribute occurs in exactly two relation schemas and the
// relation schemas form a single cycle.
func IsAring(d *Schema) bool {
	n := len(d.Rels)
	if n < 3 {
		return false
	}
	attrs := d.Attrs()
	if attrs.Card() != n {
		return false
	}
	occ := map[Attr]int{}
	for _, r := range d.Rels {
		if r.Card() != 2 {
			return false
		}
		r.ForEach(func(a Attr) bool {
			occ[a]++
			return true
		})
	}
	for _, c := range occ {
		if c != 2 {
			return false
		}
	}
	// n binary edges over n vertices, every vertex of degree 2: the edge
	// multiset is a disjoint union of cycles; a single cycle iff connected
	// and no duplicate edges (a duplicate edge would be a 2-cycle).
	if !d.IsReduced() {
		return false
	}
	return d.Connected()
}

// IsAclique reports whether d is (isomorphic to) an Aclique: n ≥ 3
// relation schemas over n attributes where each relation schema is
// U(D) − {A} for a distinct attribute A.
func IsAclique(d *Schema) bool {
	n := len(d.Rels)
	if n < 3 {
		return false
	}
	all := d.Attrs()
	if all.Card() != n {
		return false
	}
	seen := map[Attr]bool{}
	for _, r := range d.Rels {
		missing := all.Diff(r)
		if missing.Card() != 1 {
			return false
		}
		a := missing.Min()
		if seen[a] {
			return false
		}
		seen[a] = true
	}
	return len(seen) == n
}

// Lemma31Witness searches for the Lemma 3.1 witness of cyclicity: an
// attribute set X ⊆ U(D) such that eliminating subset and duplicate
// relation schemas from (R − X | R ∈ D) yields an Aring or an Aclique.
// It returns the witness X, the resulting core schema, and its kind.
// found is false when no witness exists (by Lemma 3.1, exactly when D is
// a tree schema).
//
// The search is exhaustive over subsets of U(D) and therefore
// exponential; it is intended for schemas with small universes
// (|U(D)| ≲ 20), which covers every example in the paper.
func Lemma31Witness(d *Schema) (x AttrSet, core *Schema, kind CoreKind, found bool) {
	attrs := d.Attrs().Attrs()
	if len(attrs) > 24 {
		panic(fmt.Sprintf("schema: Lemma31Witness universe too large (%d attrs)", len(attrs)))
	}
	// Enumerate subsets in increasing cardinality so the first witness
	// found deletes as few attributes as possible.
	subsets := make([]AttrSet, 0, 1<<len(attrs))
	for mask := 0; mask < 1<<len(attrs); mask++ {
		var s AttrSet
		for i, a := range attrs {
			if mask&(1<<i) != 0 {
				s.add(a)
			}
		}
		subsets = append(subsets, s)
	}
	SortSets(subsets)
	for _, s := range subsets {
		c := d.DeleteAttrs(s).Reduce()
		// Drop any leftover empty relation schema before recognition.
		c = dropEmpty(c)
		if IsAring(c) {
			return s, c, CoreAring, true
		}
		if IsAclique(c) {
			return s, c, CoreAclique, true
		}
	}
	return AttrSet{}, nil, CoreNone, false
}

// CoreKind names the Lemma 3.1 core families.
type CoreKind int

const (
	CoreNone CoreKind = iota
	CoreAring
	CoreAclique
)

func (k CoreKind) String() string {
	switch k {
	case CoreAring:
		return "Aring"
	case CoreAclique:
		return "Aclique"
	default:
		return "none"
	}
}

func dropEmpty(d *Schema) *Schema {
	out := &Schema{U: d.U}
	for _, r := range d.Rels {
		if !r.IsEmpty() {
			out.Rels = append(out.Rels, r)
		}
	}
	return out
}
