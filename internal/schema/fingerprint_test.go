package schema

import (
	"sync"
	"testing"
)

func TestFingerprintOrderIndependent(t *testing.T) {
	u := NewUniverse()
	d1 := MustParse(u, "ab, bc, cd")
	d2 := MustParse(u, "cd, ab, bc")
	if d1.Fingerprint() != d2.Fingerprint() {
		t.Errorf("relation order changed fingerprint: %x vs %x", d1.Fingerprint(), d2.Fingerprint())
	}
}

func TestFingerprintUniverseIndependent(t *testing.T) {
	// Different interning orders give different bitsets but the same
	// name-based fingerprint.
	u1 := NewUniverse()
	u1.Set("z", "y", "x") // skew interning order
	d1 := MustParse(u1, "ab, bc, cd")
	u2 := NewUniverse()
	d2 := MustParse(u2, "bc, cd, ab")
	if d1.Fingerprint() != d2.Fingerprint() {
		t.Errorf("universe changed fingerprint: %x vs %x", d1.Fingerprint(), d2.Fingerprint())
	}
	x1 := MustSet(u1, "ad")
	x2 := MustSet(u2, "da")
	if u1.SetFingerprint(x1) != u2.SetFingerprint(x2) {
		t.Errorf("SetFingerprint not universe-independent")
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	u := NewUniverse()
	cases := []string{
		"ab, bc, cd",
		"ab, bc",
		"ab, bc, cd, cd", // multiplicity matters
		"ab, bc, ca",
		"abc, cd",
		"a, b, c, d",
		"abcd",
	}
	seen := map[uint64]string{}
	for _, s := range cases {
		fp := MustParse(u, s).Fingerprint()
		if prev, ok := seen[fp]; ok {
			t.Errorf("fingerprint collision: %q and %q both hash to %x", prev, s, fp)
		}
		seen[fp] = s
	}
}

func TestFingerprintSeparatorAmbiguity(t *testing.T) {
	u := NewUniverse()
	a := New(u, u.Set("ab", "c"))
	b := New(u, u.Set("a", "bc"))
	if a.Fingerprint() == b.Fingerprint() {
		t.Errorf("{ab,c} and {a,bc} fingerprint equally")
	}
}

func TestQueryFingerprint(t *testing.T) {
	u := NewUniverse()
	d := MustParse(u, "ab, bc, cd")
	fp1, x1 := d.QueryFingerprint(u.Set("a", "d"))
	fp2, x2 := d.QueryFingerprint(u.Set("a", "b"))
	if fp1 != fp2 {
		t.Errorf("schema fingerprint depends on target")
	}
	if x1 == x2 {
		t.Errorf("distinct targets fingerprint equally")
	}
}

// TestUniverseConcurrentInterning exercises the Universe lock under
// -race: concurrent interning, lookup, and formatting must be safe.
func TestUniverseConcurrentInterning(t *testing.T) {
	u := NewUniverse()
	d := MustParse(u, "ab, bc, cd")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			names := []string{"p", "q", "r", "s", "t", "u", "v", "w"}
			for i := 0; i < 200; i++ {
				u.Attr(names[(g+i)%len(names)])
				u.Lookup("a")
				_ = u.Size()
				_ = d.Fingerprint()
				_ = u.FormatSet(d.Rels[i%len(d.Rels)])
			}
		}(g)
	}
	wg.Wait()
	if got := u.Size(); got != 4+8 {
		t.Errorf("Size = %d, want 12", got)
	}
}

func TestOrderedFingerprint(t *testing.T) {
	u := NewUniverse()
	d1 := MustParse(u, "ab, bc, cd")
	d2 := MustParse(u, "cd, ab, bc")
	if d1.OrderedFingerprint() == d2.OrderedFingerprint() {
		t.Error("OrderedFingerprint ignores relation order")
	}
	if d1.OrderedFingerprint() != MustParse(u, "ab, bc, cd").OrderedFingerprint() {
		t.Error("OrderedFingerprint not deterministic")
	}
}
