package schema

import "testing"

func TestAringConstruction(t *testing.T) {
	u := NewUniverse()
	d := Aring(u, 4, "")
	if got := d.String(); got != "(ab, bc, cd, ad)" {
		t.Errorf("Aring(4) = %s", got)
	}
	if !IsAring(d) {
		t.Error("Aring(4) not recognized")
	}
	if IsAclique(d) {
		t.Error("Aring(4) recognized as Aclique")
	}
}

func TestAcliqueConstruction(t *testing.T) {
	u := NewUniverse()
	d := Aclique(u, 4, "")
	// U − {a}, U − {b}, U − {c}, U − {d} over U = abcd.
	if got := d.String(); got != "(bcd, acd, abd, abc)" {
		t.Errorf("Aclique(4) = %s", got)
	}
	if !IsAclique(d) {
		t.Error("Aclique(4) not recognized")
	}
	if IsAring(d) {
		t.Error("Aclique(4) recognized as Aring")
	}
}

func TestAringAcliqueSize3Coincide(t *testing.T) {
	// For n = 3 the Aring and Aclique are the same schema (ab, bc, ac)
	// up to ordering — the triangle.
	u := NewUniverse()
	ring := Aring(u, 3, "")
	if !IsAring(ring) || !IsAclique(ring) {
		t.Error("triangle should be both Aring and Aclique of size 3")
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Aring(NewUniverse(), 2, "") },
		func() { Aclique(NewUniverse(), 2, "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("size-2 constructor should panic")
				}
			}()
			f()
		}()
	}
}

func TestLargeRingNames(t *testing.T) {
	u := NewUniverse()
	d := Aring(u, 30, "v")
	if !IsAring(d) {
		t.Error("Aring(30) not recognized")
	}
	if u.Size() != 30 {
		t.Errorf("universe size = %d", u.Size())
	}
}

func TestIsAringNegatives(t *testing.T) {
	u := NewUniverse()
	cases := []string{
		"ab, bc, cd",         // path, not a cycle
		"ab, bc, ca, de, ea", // extra attrs: occurrence counts wrong
		"ab, bc, cd, da, ac", // chord: 5 rels over 4 attrs
		"abc, bcd, cda, dab", // ternary relations
		"ab, ba",             // would be a 2-cycle after dedup
	}
	for _, c := range cases {
		if IsAring(MustParse(u, c)) {
			t.Errorf("IsAring(%s) = true", c)
		}
	}
	// Two disjoint triangles: all local conditions hold but disconnected.
	two := MustParse(u, "ab, bc, ca, de, ef, fd")
	if IsAring(two) {
		t.Error("disjoint triangles recognized as one Aring")
	}
}

func TestIsAcliqueNegatives(t *testing.T) {
	u := NewUniverse()
	cases := []string{
		"bcd, acd, abd",      // only 3 of the 4 members
		"bcd, acd, abd, abd", // duplicated member
		"ab, bc, cd, da",     // ring
	}
	for _, c := range cases {
		if IsAclique(MustParse(u, c)) {
			t.Errorf("IsAclique(%s) = true", c)
		}
	}
}

func TestLemma31WitnessOnArings(t *testing.T) {
	// Arings and Acliques are cyclic with witness X = ∅ (paper: "In
	// particular, Arings and Acliques are cyclic (let X = ∅)").
	for n := 3; n <= 6; n++ {
		u := NewUniverse()
		ring := Aring(u, n, "")
		x, core, kind, found := Lemma31Witness(ring)
		if !found {
			t.Fatalf("no witness for Aring(%d)", n)
		}
		if !x.IsEmpty() {
			t.Errorf("Aring(%d) witness should be ∅, got %s", n, u.FormatSet(x))
		}
		if n > 3 && kind != CoreAring {
			t.Errorf("Aring(%d) core kind = %s", n, kind)
		}
		if core.Len() != n {
			t.Errorf("Aring(%d) core size = %d", n, core.Len())
		}
	}
	u := NewUniverse()
	cl := Aclique(u, 4, "")
	x, _, kind, found := Lemma31Witness(cl)
	if !found || !x.IsEmpty() || kind != CoreAclique {
		t.Errorf("Aclique(4): found=%v x=%v kind=%s", found, x.Attrs(), kind)
	}
}

func TestLemma31NoWitnessForTreeSchemas(t *testing.T) {
	u := NewUniverse()
	for _, s := range []string{"ab, bc, cd", "abc, cde, ace, afe", "ab", "ab, cd"} {
		if _, _, _, found := Lemma31Witness(MustParse(u, s)); found {
			t.Errorf("tree schema %s got a cyclicity witness", s)
		}
	}
}

// TestLemma31Fig2cStyle mirrors Fig. 2c: larger cyclic schemas whose
// GYO-style attribute deletion exposes an Aring or Aclique core. (The
// original figure's schemas are reconstructed — see EXPERIMENTS.md
// E-FIG2 — preserving the stated witnesses: deleting X = abgi yields an
// Aring of size 4 and deleting X = efgi yields an Aclique of size 4.)
func TestLemma31Fig2cStyle(t *testing.T) {
	u := NewUniverse()
	// Deleting {a,b,g,i} leaves (cd, de, ef, fc): an Aring of size 4.
	d1 := MustParse(u, "abcd, de, gef, fci, ab, big")
	x1 := u.Set("a", "b", "g", "i")
	core1 := dropEmpty(d1.DeleteAttrs(x1).Reduce())
	if !IsAring(core1) {
		t.Fatalf("Fig2c-style #1: core %s is not an Aring", core1)
	}
	if _, _, kind, found := Lemma31Witness(d1); !found || kind == CoreNone {
		t.Error("Fig2c-style #1 should be cyclic with a witness")
	}

	// Deleting {e,f,g,i} leaves (bcd, acd, abd, abc): an Aclique of size 4.
	u2 := NewUniverse()
	d2 := MustParse(u2, "bcde, acdf, abdg, abci")
	x2 := u2.Set("e", "f", "g", "i")
	core2 := dropEmpty(d2.DeleteAttrs(x2).Reduce())
	if !IsAclique(core2) {
		t.Fatalf("Fig2c-style #2: core %s is not an Aclique", core2)
	}
	if _, _, kind, found := Lemma31Witness(d2); !found || kind == CoreNone {
		t.Error("Fig2c-style #2 should be cyclic with a witness")
	}
}

func TestCoreKindString(t *testing.T) {
	if CoreAring.String() != "Aring" || CoreAclique.String() != "Aclique" || CoreNone.String() != "none" {
		t.Error("CoreKind strings wrong")
	}
}
