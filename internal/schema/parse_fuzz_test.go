package schema

import (
	"strings"
	"testing"
)

// FuzzParse drives Parse with arbitrary input. Invariants checked on
// every successful parse:
//
//   - the schema validates (no attribute escapes the universe);
//   - String() re-parses without error into the same number of relation
//     schemas (the notation is closed under round trips);
//   - Fingerprint is invariant under relation reordering.
//
// The seed corpus covers the paper's notations: single-letter runs,
// multi-character names, Aring/Aclique shapes, empty-set spellings, and
// malformed fragments.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"ab, bc, cd",                      // §2 chain
		"(ab,bc,ac)",                      // Aring(3) = Aclique(3)
		"abg, bcg, acf, ad, de, ea",       // the §6 running example
		"ab, bc, cd, de, ea",              // Aring(5)
		"abc, abd, acd, bcd",              // Aclique(4) facets
		"user id, id name",                // multi-character names
		"∅, ab",                           // empty relation schema
		"{}",                              // empty-set spelling
		"",                                // empty schema
		"a1b2, b2c3",                      // digits as attributes
		"αβ, βγ",                          // non-ASCII letters
		"foo foo",                         // duplicate names in one schema
		"- x, b",                          // non-alnum multi-char field
		"ab,, cd",                         // malformed: empty part
		"a-b",                             // malformed: bad token
		"(((",                             // malformed: parens only
		strings.Repeat("ab, ", 50) + "yz", // long input
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		u := NewUniverse()
		d, err := Parse(u, s)
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("Parse(%q) produced invalid schema: %v", s, err)
		}
		out := d.String()
		d2, err := Parse(NewUniverse(), out)
		if err != nil {
			t.Fatalf("String() of Parse(%q) does not re-parse: %q: %v", s, out, err)
		}
		if len(d2.Rels) != len(d.Rels) {
			t.Fatalf("round trip of %q changed relation count: %d → %d (%q)",
				s, len(d.Rels), len(d2.Rels), out)
		}
		if len(d.Rels) > 1 {
			perm := make([]int, len(d.Rels))
			for i := range perm {
				perm[i] = len(perm) - 1 - i
			}
			if got, want := d.Restrict(perm).Fingerprint(), d.Fingerprint(); got != want {
				t.Fatalf("fingerprint of %q depends on relation order: %x vs %x", s, got, want)
			}
		}
	})
}
