// Package schema implements the basic objects of the paper's Section 2:
// attributes, relation schemas (sets of attributes), and database schemas
// (multisets of relation schemas), together with the Aring and Aclique
// families of Section 3.1.
//
// Attributes are interned integers managed by a Universe; attribute sets
// are bitsets so that the set algebra used pervasively by GYO reductions,
// tableaux, and qual-graph checks is word-parallel.
package schema

import (
	"math/bits"
	"sort"
	"strings"
)

// Attr identifies an attribute within a Universe. Attributes are dense,
// starting at 0, in order of interning.
type Attr int

// AttrSet is a set of attributes represented as a bitset. The zero value
// is the empty set. AttrSet values are immutable by convention: all
// methods return new sets and never modify the receiver. (The lower-case
// mutators are internal.)
type AttrSet struct {
	words []uint64
}

const wordBits = 64

// NewAttrSet returns the set containing exactly the given attributes.
func NewAttrSet(attrs ...Attr) AttrSet {
	var s AttrSet
	for _, a := range attrs {
		s.add(a)
	}
	return s
}

func (s *AttrSet) ensure(w int) {
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
}

func (s *AttrSet) add(a Attr) {
	if a < 0 {
		panic("schema: negative attribute")
	}
	w := int(a) / wordBits
	s.ensure(w)
	s.words[w] |= 1 << (uint(a) % wordBits)
}

func (s *AttrSet) remove(a Attr) {
	if a < 0 {
		return
	}
	w := int(a) / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(a) % wordBits)
	}
}

// trim drops trailing zero words so that Equal and Hash are canonical.
func (s *AttrSet) trim() {
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	s.words = s.words[:n]
}

// Has reports whether a is in the set.
func (s AttrSet) Has(a Attr) bool {
	if a < 0 {
		return false
	}
	w := int(a) / wordBits
	if w >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<(uint(a)%wordBits)) != 0
}

// Card returns the number of attributes in the set.
func (s AttrSet) Card() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set is empty.
func (s AttrSet) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Add returns s ∪ {a}.
func (s AttrSet) Add(a Attr) AttrSet {
	t := s.Clone()
	t.add(a)
	return t
}

// Remove returns s − {a}.
func (s AttrSet) Remove(a Attr) AttrSet {
	t := s.Clone()
	t.remove(a)
	t.trim()
	return t
}

// Clone returns an independent copy of s.
func (s AttrSet) Clone() AttrSet {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return AttrSet{words: w}
}

// Union returns s ∪ t.
func (s AttrSet) Union(t AttrSet) AttrSet {
	a, b := s.words, t.words
	if len(a) < len(b) {
		a, b = b, a
	}
	w := make([]uint64, len(a))
	copy(w, a)
	for i := range b {
		w[i] |= b[i]
	}
	return AttrSet{words: w}
}

// Intersect returns s ∩ t.
func (s AttrSet) Intersect(t AttrSet) AttrSet {
	n := min(len(s.words), len(t.words))
	w := make([]uint64, n)
	for i := 0; i < n; i++ {
		w[i] = s.words[i] & t.words[i]
	}
	r := AttrSet{words: w}
	r.trim()
	return r
}

// Diff returns s − t.
func (s AttrSet) Diff(t AttrSet) AttrSet {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	n := min(len(w), len(t.words))
	for i := 0; i < n; i++ {
		w[i] &^= t.words[i]
	}
	r := AttrSet{words: w}
	r.trim()
	return r
}

// Intersects reports whether s ∩ t ≠ ∅ without allocating.
func (s AttrSet) Intersects(t AttrSet) bool {
	n := min(len(s.words), len(t.words))
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectCard returns |s ∩ t| without allocating.
func (s AttrSet) IntersectCard(t AttrSet) int {
	n := min(len(s.words), len(t.words))
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(s.words[i] & t.words[i])
	}
	return c
}

// SubsetOf reports whether s ⊆ t.
func (s AttrSet) SubsetOf(t AttrSet) bool {
	for i, w := range s.words {
		if w == 0 {
			continue
		}
		if i >= len(t.words) || w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// ProperSubsetOf reports whether s ⊂ t.
func (s AttrSet) ProperSubsetOf(t AttrSet) bool {
	return s.SubsetOf(t) && !t.SubsetOf(s)
}

// Equal reports whether s and t contain the same attributes.
func (s AttrSet) Equal(t AttrSet) bool {
	a, b := s.words, t.words
	if len(a) > len(b) {
		a, b = b, a
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	for i := len(a); i < len(b); i++ {
		if b[i] != 0 {
			return false
		}
	}
	return true
}

// ForEach calls f for every attribute in ascending order. If f returns
// false, iteration stops.
func (s AttrSet) ForEach(f func(Attr) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(Attr(wi*wordBits + b)) {
				return
			}
			w &= w - 1
		}
	}
}

// Attrs returns the attributes in ascending order.
func (s AttrSet) Attrs() []Attr {
	out := make([]Attr, 0, s.Card())
	s.ForEach(func(a Attr) bool {
		out = append(out, a)
		return true
	})
	return out
}

// Min returns the smallest attribute in the set, or -1 if empty.
func (s AttrSet) Min() Attr {
	for wi, w := range s.words {
		if w != 0 {
			return Attr(wi*wordBits + bits.TrailingZeros64(w))
		}
	}
	return -1
}

// Hash returns a 64-bit hash of the set, equal for Equal sets.
func (s AttrSet) Hash() uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for i := len(s.words) - 1; i >= 0; i-- {
		if s.words[i] == 0 && h == 1469598103934665603 {
			continue // skip leading zero words for canonicality
		}
		h ^= s.words[i]
		h *= 1099511628211
	}
	return h
}

// Key returns a canonical comparable key for use in maps.
func (s AttrSet) Key() string {
	t := s.Clone()
	t.trim()
	var b strings.Builder
	for _, w := range t.words {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(w >> (8 * i))
		}
		b.Write(buf[:])
	}
	return b.String()
}

// Compare orders sets first by cardinality, then lexicographically by
// attribute sequence; it returns -1, 0, or +1. Used for canonical
// orderings in printing and deterministic iteration.
func (s AttrSet) Compare(t AttrSet) int {
	if c, d := s.Card(), t.Card(); c != d {
		if c < d {
			return -1
		}
		return 1
	}
	sa, ta := s.Attrs(), t.Attrs()
	for i := range sa {
		if sa[i] != ta[i] {
			if sa[i] < ta[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// SortSets sorts a slice of attribute sets into the canonical Compare order.
func SortSets(sets []AttrSet) {
	sort.Slice(sets, func(i, j int) bool { return sets[i].Compare(sets[j]) < 0 })
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
