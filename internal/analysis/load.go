package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Load type-checks the packages matching patterns (resolved in dir,
// e.g. "./...") and returns them ready for RunPackage. It is the
// standalone-mode loader behind `gyovet ./...`: dependencies are
// imported from compiler export data produced by `go list -export`
// (built locally, no network), only the target packages themselves are
// parsed from source. Test files are not loaded — `go vet
// -vettool=gyovet` covers those compilation units.
func Load(dir string, patterns ...string) ([]*Package, error) {
	metas, err := listPackages(dir, patterns)
	if err != nil {
		return nil, err
	}
	exportFile := map[string]string{}
	for _, m := range metas {
		if m.Export != "" {
			exportFile[m.ImportPath] = m.Export
		}
	}
	fset := token.NewFileSet()
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exportFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, m := range metas {
		if !m.target {
			continue
		}
		files := make([]*ast.File, 0, len(m.GoFiles))
		for _, name := range m.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		importMap := m.ImportMap
		cfg := &types.Config{
			Importer: importerFunc(func(ip string) (*types.Package, error) {
				if mapped, ok := importMap[ip]; ok {
					ip = mapped
				}
				return gc.Import(ip)
			}),
			Sizes: types.SizesFor("gc", runtime.GOARCH),
		}
		info := NewTypesInfo()
		tpkg, err := cfg.Check(m.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", m.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  m.ImportPath,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// NewTypesInfo allocates the full set of type-checker result maps the
// analyzers consume.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// listPkg is the subset of `go list -json` output the loader uses.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	ImportMap  map[string]string

	target bool // named by the patterns (vs. pulled in as a dependency)
}

// listPackages resolves patterns through the go command: one pass to
// learn the target set, one -deps -export pass for the import
// universe's compiled export data.
func listPackages(dir string, patterns []string) ([]*listPkg, error) {
	targets, err := runGoList(dir, append([]string{"list", "-json=ImportPath", "--"}, patterns...))
	if err != nil {
		return nil, err
	}
	isTarget := map[string]bool{}
	for _, t := range targets {
		isTarget[t.ImportPath] = true
	}
	args := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,ImportMap", "--"}, patterns...)
	metas, err := runGoList(dir, args)
	if err != nil {
		return nil, err
	}
	for _, m := range metas {
		m.target = isTarget[m.ImportPath] && !m.Standard
	}
	return metas, nil
}

func runGoList(dir string, args []string) ([]*listPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %v: %v\n%s", args, err, stderr.Bytes())
	}
	var out []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		out = append(out, p)
	}
	return out, nil
}
