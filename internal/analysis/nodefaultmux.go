package analysis

import (
	"go/ast"
	"go/types"
)

// NoDefaultMux preserves PR 7's pprof isolation guarantee: nothing in
// this codebase ever registers on or serves http.DefaultServeMux.
// Importing net/http/pprof, a stray http.HandleFunc, or
// http.ListenAndServe(addr, nil) would silently re-expose the
// profiling (and any future debug) handlers on the public API port.
// Flagged:
//
//   - any mention of http.DefaultServeMux,
//   - calls to http.Handle / http.HandleFunc (they register on the
//     default mux), and
//   - http.ListenAndServe / ListenAndServeTLS / Serve / ServeTLS with
//     a nil handler (they serve the default mux).
var NoDefaultMux = &Analyzer{
	Name: "nodefaultmux",
	Doc:  "no handler ever lands on (or is served from) http.DefaultServeMux",
	Run:  runNoDefaultMux,
}

// defaultMuxServers maps net/http server functions to the index of
// their handler argument.
var defaultMuxServers = map[string]int{
	"ListenAndServe":    1,
	"ListenAndServeTLS": 3,
	"Serve":             1,
	"ServeTLS":          1,
}

func runNoDefaultMux(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if v, ok := pass.Info.Uses[n].(*types.Var); ok &&
					v.Name() == "DefaultServeMux" && pkgPathOf(v) == "net/http" {
					pass.Reportf(n.Pos(),
						"http.DefaultServeMux must never be used; build an explicit *http.ServeMux")
				}
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, n)
				if fn == nil || pkgPathOf(fn) != "net/http" {
					return true
				}
				switch fn.Name() {
				case "Handle", "HandleFunc":
					pass.Reportf(n.Pos(),
						"http.%s registers on DefaultServeMux; register on an explicit mux", fn.Name())
				default:
					if idx, ok := defaultMuxServers[fn.Name()]; ok && idx < len(n.Args) {
						if id, ok := n.Args[idx].(*ast.Ident); ok && id.Name == "nil" {
							pass.Reportf(n.Args[idx].Pos(),
								"http.%s with a nil handler serves DefaultServeMux; pass an explicit handler", fn.Name())
						}
					}
				}
			}
			return true
		})
	}
	return nil
}
