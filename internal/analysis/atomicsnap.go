package analysis

import (
	"go/ast"
)

// AtomicSnap guards the engine's central concurrency convention: a
// struct field of a sync/atomic type (above all the engine's
// `db atomic.Pointer[relation.Database]` snapshot pointer) is only
// ever touched through its methods — Load, Store, Swap,
// CompareAndSwap. Any other appearance of the field — reading it as a
// value, assigning over it, copying the containing struct through it,
// capturing a method value, taking its address — bypasses the atomic
// protocol (or copies a noCopy value) and is flagged.
var AtomicSnap = &Analyzer{
	Name: "atomicsnap",
	Doc:  "sync/atomic struct fields are only accessed through their methods, never as raw values",
	Run:  runAtomicSnap,
}

func runAtomicSnap(pass *Pass) error {
	for _, f := range pass.Files {
		par := parents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !atomicField(pass.Info, sel) {
				return true
			}
			// The only legal context: `x.field.Method(...)` — sel is
			// the X of a method-selector whose parent is the call
			// using it as Fun.
			if outer, ok := par[sel].(*ast.SelectorExpr); ok && outer.X == sel {
				if call, ok := par[outer].(*ast.CallExpr); ok && call.Fun == outer {
					return true
				}
				pass.Reportf(sel.Pos(),
					"atomic field %s: method value captured without being called; call it directly",
					sel.Sel.Name)
				return true
			}
			pass.Reportf(sel.Pos(),
				"raw access to atomic field %s; go through its Load/Store/Swap methods",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}
