package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// ErrEnvelope enforces the /v1 API contract from PR 8: every error a
// handler sends leaves through the uniform error-envelope writer
// (writeError), which stamps the JSON envelope and the request id.
// Two escapes are flagged anywhere outside the envelope writers
// themselves:
//
//   - any call to net/http.Error, and
//   - w.WriteHeader(status) on an http.ResponseWriter with a constant
//     4xx/5xx status.
//
// Success-path WriteHeader calls (2xx/3xx, or computed statuses such
// as proxied upstream codes) are untouched.
var ErrEnvelope = &Analyzer{
	Name: "errenvelope",
	Doc:  "HTTP handlers report errors only through the envelope writer, not http.Error or bare 4xx/5xx WriteHeader",
	Run:  runErrEnvelope,
}

// envelopeWriters are the functions allowed to touch the raw error
// response: the /v1 envelope writer itself.
var envelopeWriters = map[string]bool{
	"writeError": true,
}

func runErrEnvelope(pass *Pass) error {
	for _, f := range pass.Files {
		funcScope(f, func(name string, body *ast.BlockStmt) {
			if envelopeWriters[name] {
				return
			}
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := calleeFunc(pass.Info, call); fn != nil &&
					fn.Name() == "Error" && pkgPathOf(fn) == "net/http" {
					pass.Reportf(call.Pos(),
						"http.Error bypasses the /v1 error envelope; use writeError")
					return true
				}
				fn, recv := methodOf(pass.Info, call)
				if fn == nil || fn.Name() != "WriteHeader" || len(call.Args) != 1 {
					return true
				}
				if !isResponseWriter(pass.Info.TypeOf(recv)) {
					return true
				}
				tv, ok := pass.Info.Types[call.Args[0]]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
					return true
				}
				status, ok := constant.Int64Val(tv.Value)
				if ok && status >= 400 {
					pass.Reportf(call.Pos(),
						"bare WriteHeader(%d) bypasses the /v1 error envelope; use writeError", status)
				}
				return true
			})
		})
	}
	return nil
}

// isResponseWriter reports whether t is (or trivially wraps)
// net/http.ResponseWriter: the interface itself, or a type whose
// WriteHeader method is declared in net/http.
func isResponseWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			m := iface.Method(i)
			if m.Name() == "WriteHeader" && pkgPathOf(m) == "net/http" {
				return true
			}
		}
	}
	if named, ok := t.(*types.Named); ok {
		return pkgPathOf(named.Obj()) == "net/http"
	}
	return false
}
