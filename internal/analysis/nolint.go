package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// nolintPrefix is the directive comment that suppresses findings:
//
//	//gyo:nolint <analyzer>[,<analyzer>...] <reason>
//
// The directive applies to findings on its own line, or — when the
// comment stands alone — to the first following line that holds code.
// The reason is mandatory and non-empty; a directive without one is
// reported as a finding of the pseudo-analyzer "nolint" and cannot be
// suppressed, so a bare nolint fails the build by construction.
const nolintPrefix = "//gyo:nolint"

// NolintName is the pseudo-analyzer name under which malformed
// suppression directives are reported.
const NolintName = "nolint"

// suppression is one parsed, well-formed nolint directive.
type suppression struct {
	analyzers map[string]bool
	file      string // filename the directive lives in
	line      int    // line the directive suppresses findings on
}

// parseNolint extracts suppressions and malformed-directive findings
// from the package's files.
func parseNolint(fset *token.FileSet, files []*ast.File) (sups []suppression, bad []Diagnostic) {
	for _, f := range files {
		// lineHasCode marks lines holding any non-comment token, so a
		// directive can tell "trailing same-line comment" from "own
		// line above the code it guards".
		lineHasCode := map[int]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if _, ok := n.(*ast.Comment); ok {
				return false
			}
			if _, ok := n.(*ast.CommentGroup); ok {
				return false
			}
			if n.Pos().IsValid() {
				lineHasCode[fset.Position(n.Pos()).Line] = true
			}
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, nolintPrefix) {
					continue
				}
				rest := c.Text[len(nolintPrefix):]
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //gyo:nolintfoo — not ours
				}
				names, reason := splitDirective(rest)
				if len(names) == 0 || reason == "" {
					bad = append(bad, Diagnostic{
						Analyzer: NolintName,
						Pos:      c.Pos(),
						Message:  "malformed //gyo:nolint: need \"//gyo:nolint <analyzer>[,<analyzer>] <reason>\" with a non-empty reason",
					})
					continue
				}
				set := map[string]bool{}
				for _, n := range names {
					set[n] = true
				}
				line := fset.Position(c.Pos()).Line
				if !lineHasCode[line] {
					// Standalone comment: guard the next code line.
					for l := line + 1; l <= line+8; l++ {
						if lineHasCode[l] {
							line = l
							break
						}
					}
				}
				sups = append(sups, suppression{
					analyzers: set,
					file:      fset.Position(c.Pos()).Filename,
					line:      line,
				})
			}
		}
	}
	return sups, bad
}

// splitDirective parses " frozenmut,droppederr frozen view is local"
// into its analyzer list and reason.
func splitDirective(rest string) (names []string, reason string) {
	rest = strings.TrimSpace(rest)
	list, reason, _ := strings.Cut(rest, " ")
	for _, n := range strings.Split(list, ",") {
		n = strings.TrimSpace(n)
		if n != "" {
			names = append(names, n)
		}
	}
	return names, strings.TrimSpace(reason)
}

// filterNolint drops diagnostics suppressed by a well-formed directive
// on the same line and appends the malformed-directive findings.
// Findings of the nolint pseudo-analyzer itself are never suppressed.
func filterNolint(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	sups, bad := parseNolint(fset, files)
	out := diags[:0]
	for _, d := range diags {
		if d.Analyzer != NolintName && suppressed(fset, sups, d) {
			continue
		}
		out = append(out, d)
	}
	return append(out, bad...)
}

func suppressed(fset *token.FileSet, sups []suppression, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, s := range sups {
		if s.file == pos.Filename && s.line == pos.Line && s.analyzers[d.Analyzer] {
			return true
		}
	}
	return false
}
