package analysis

import (
	"go/ast"
	"go/types"
)

// FrozenMut flags calls to mutating Relation/Database methods on
// values that flow from the freezing surface: an explicit Freeze(), an
// Engine.Snapshot(), or a Renamed() identity view. These values are
// shared with concurrent readers; mutating one corrupts a published
// snapshot. The check is a lexical def-use pass per function body:
//
//   - r.Freeze() / db.Freeze() marks the receiver frozen from that
//     point on,
//   - x := e.Snapshot(), v := r.Renamed(...) mark x/v frozen,
//   - aliases (y := x) and projections (db.Rels[i], db.Univ) of frozen
//     values are frozen,
//   - Clone() yields a fresh, mutable value (the copy-on-write idiom
//     `r := db.Rels[i].Clone(); r.Insert(t)` stays legal),
//
// and any frozen value receiving Insert / InsertBlock / InsertMap /
// SetChunkID is a finding. Guarded methods are matched by the defining
// package's name (relation, engine), so the analyzer works unchanged
// on the analysistest fixtures.
var FrozenMut = &Analyzer{
	Name: "frozenmut",
	Doc:  "no mutating Relation/Database method on a value that flows from Freeze/Snapshot/Renamed",
	Run:  runFrozenMut,
}

// frozenProducers are methods whose result is frozen by contract,
// keyed by defining package name.
var frozenProducers = map[string]map[string]bool{
	"relation": {"Renamed": true},
	"engine":   {"Snapshot": true},
}

// frozenMutators are the in-place mutators of the relation package.
// The copy-on-write Database mutators (WithRelation, InsertTuple) are
// deliberately absent: they derive new snapshots.
var frozenMutators = map[string]bool{
	"Insert":      true,
	"InsertBlock": true,
	"InsertMap":   true,
	"SetChunkID":  true,
}

func runFrozenMut(pass *Pass) error {
	for _, f := range pass.Files {
		funcScope(f, func(_ string, body *ast.BlockStmt) {
			frozen := map[*types.Var]bool{}

			var isFrozen func(e ast.Expr) bool
			isFrozen = func(e ast.Expr) bool {
				switch e := e.(type) {
				case *ast.Ident:
					v, ok := pass.Info.Uses[e].(*types.Var)
					return ok && frozen[v]
				case *ast.ParenExpr:
					return isFrozen(e.X)
				case *ast.SelectorExpr:
					// A field of a frozen value (db.Rels, db.Univ) is
					// frozen; a method value is handled at call sites.
					if s, ok := pass.Info.Selections[e]; ok && s.Kind() == types.FieldVal {
						return isFrozen(e.X)
					}
					return false
				case *ast.IndexExpr:
					return isFrozen(e.X)
				case *ast.CallExpr:
					if fn, recv := methodOf(pass.Info, e); fn != nil {
						if frozenProducers[pkgNameOf(fn)][fn.Name()] {
							return true
						}
						// Clone and the other value-producing methods
						// return fresh or at least caller-owned data.
						_ = recv
					}
					return false
				}
				return false
			}

			// rootVar unwraps aliasing expressions to the variable the
			// frozen mark should attach to: Freeze() on db.Rels[i]
			// freezes db... too coarse; attach only to plain idents.
			rootVar := func(e ast.Expr) *types.Var {
				for {
					if p, ok := e.(*ast.ParenExpr); ok {
						e = p.X
						continue
					}
					break
				}
				id, ok := e.(*ast.Ident)
				if !ok {
					return nil
				}
				v, _ := pass.Info.Uses[id].(*types.Var)
				return v
			}

			ast.Inspect(body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					// Propagate frozenness through assignments. Only
					// the 1:1 form matters in practice.
					if len(n.Lhs) == len(n.Rhs) {
						for i, lhs := range n.Lhs {
							v := rootVar(lhs)
							if v == nil {
								if id, ok := lhs.(*ast.Ident); ok {
									v, _ = pass.Info.Defs[id].(*types.Var)
								}
							}
							if v == nil {
								continue
							}
							frozen[v] = isFrozen(n.Rhs[i])
						}
					}
				case *ast.CallExpr:
					fn, recv := methodOf(pass.Info, n)
					if fn == nil {
						return true
					}
					pkg := pkgNameOf(fn)
					if pkg != "relation" && pkg != "engine" {
						return true
					}
					if fn.Name() == "Freeze" {
						if v := rootVar(recv); v != nil {
							frozen[v] = true
						}
						return true
					}
					if frozenMutators[fn.Name()] && isFrozen(recv) {
						pass.Reportf(n.Pos(),
							"%s called on a frozen snapshot value (flows from Freeze/Snapshot/Renamed); Clone() it first or build a copy-on-write derivative",
							fn.Name())
					}
				}
				return true
			})
		})
	}
	return nil
}
