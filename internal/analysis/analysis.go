// Package analysis is gyokit's custom static-analysis suite: a small,
// dependency-free reimplementation of the golang.org/x/tools
// go/analysis surface (the container build is offline, so the real
// framework is unavailable) plus seven analyzers that machine-check
// the engine's load-bearing conventions — the invariants the paper's
// "prove it from structure" stance says should never rest on reviewer
// vigilance:
//
//   - frozenmut:    no mutating Relation/Database method on a value
//     that flows from Freeze/Snapshot/Renamed
//   - atomicsnap:   atomic.* struct fields only touched through their
//     methods (the engine's snapshot pointer above all)
//   - errenvelope:  HTTP handlers report errors only via the /v1
//     error-envelope writer, never http.Error or a bare 4xx/5xx
//     WriteHeader
//   - ackorder:     on durable-write paths the WAL append lexically
//     precedes the snapshot publish (append happens-before ack)
//   - metricname:   metric names are compile-time constants matching
//     ^gyo_[a-z0-9_]+$ and each constant series registers once
//   - nodefaultmux: nothing ever lands on http.DefaultServeMux
//   - droppederr:   no statement-level discard of an error returned by
//     module code (or os.File Sync/Close)
//
// Findings are suppressed per line with
//
//	//gyo:nolint <analyzer>[,<analyzer>] <reason>
//
// where the reason is mandatory: a bare nolint is itself a finding
// that cannot be suppressed. The suite runs standalone (Load +
// RunPackage, see cmd/gyovet) and as a `go vet -vettool` backend.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one named check. Run inspects a fully
// type-checked package through the Pass and reports findings; it
// returns an error only for internal failures (a finding is not an
// error).
type Analyzer struct {
	Name string // short lower-case identifier, used in nolint directives
	Doc  string // one-paragraph description of the guarded invariant
	Run  func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding: an analyzer name, a position, and a
// message. Position is resolved against the pass's FileSet.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// String formats the diagnostic with a resolved position.
func (d Diagnostic) Format(fset *token.FileSet) string {
	return fmt.Sprintf("%s: %s [%s]", fset.Position(d.Pos), d.Message, d.Analyzer)
}
