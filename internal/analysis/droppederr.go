package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DroppedErr flags statement-level calls that silently discard an
// error returned by this module's own code (or by os.File Sync/Close,
// the durability-critical stdlib pair): `s.Append(muts)` as a bare
// statement acknowledges nothing and loses the one signal that the
// write didn't happen. Scope is deliberately narrow to stay
// noise-free:
//
//   - only callees declared in this module (import path "gyokit" or
//     "gyokit/...", which also matches the analysistest fixtures) plus
//     (*os.File).Sync and (*os.File).Close,
//   - only bare expression statements — an explicit `_ = f()` states
//     intent and a `defer f()` is the accepted best-effort-cleanup
//     idiom, so neither is flagged.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc:  "no statement-level discard of an error returned by module code or os.File Sync/Close",
	Run:  runDroppedErr,
}

func runDroppedErr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, _ := methodOf(pass.Info, call)
			if fn == nil {
				fn = calleeFunc(pass.Info, call)
			}
			if fn == nil || !droppedErrScope(fn) {
				return true
			}
			if !returnsError(fn) {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s returns an error that is silently dropped; handle it or discard explicitly with _ =", fn.Name())
			return true
		})
	}
	return nil
}

// droppedErrScope reports whether fn is within the analyzer's blast
// radius: module code, or the durability-critical os.File pair.
func droppedErrScope(fn *types.Func) bool {
	path := pkgPathOf(fn)
	if path == "gyokit" || strings.HasPrefix(path, "gyokit/") {
		return true
	}
	if path == "os" && (fn.Name() == "Sync" || fn.Name() == "Close") {
		return true
	}
	return false
}

// returnsError reports whether fn's last result is the builtin error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
