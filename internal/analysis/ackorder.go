package analysis

import (
	"go/ast"
	"go/token"
)

// AckOrder machine-checks the durability ordering that makes the
// engine's acknowledgements honest: on a durable-write path the WAL
// append happens-before the snapshot publish (PR 4's
// append-then-publish contract). Within each function of the storage /
// repl / engine packages it locates
//
//   - durable appends: calls to a method named Append or
//     WriteCheckpoint on a type declared in the storage package, and
//   - publishes: Store or Swap on a sync/atomic struct field, or a
//     call to a function literally named publish,
//
// and flags the function when a publish lexically precedes the first
// append. Functions with only one of the two (pure readers, Swap on
// the non-durable path) are out of scope; the check fires exactly when
// a refactor reorders an existing append-then-publish pair.
var AckOrder = &Analyzer{
	Name: "ackorder",
	Doc:  "durable-write paths append to the WAL before publishing the snapshot (append happens-before ack)",
	Run:  runAckOrder,
}

// ackOrderPackages are the package names the ordering contract spans.
var ackOrderPackages = map[string]bool{
	"storage": true,
	"repl":    true,
	"engine":  true,
}

func runAckOrder(pass *Pass) error {
	if !ackOrderPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		funcScope(f, func(_ string, body *ast.BlockStmt) {
			firstAppend := token.NoPos
			firstPublish := token.NoPos
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn, _ := methodOf(pass.Info, call); fn != nil {
					name := fn.Name()
					if (name == "Append" || name == "WriteCheckpoint") && pkgNameOf(fn) == "storage" {
						if !firstAppend.IsValid() {
							firstAppend = call.Pos()
						}
						return true
					}
					if name == "Store" || name == "Swap" {
						if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
							if inner, ok := sel.X.(*ast.SelectorExpr); ok && atomicField(pass.Info, inner) {
								if !firstPublish.IsValid() {
									firstPublish = call.Pos()
								}
							}
						}
						return true
					}
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "publish" {
					if !firstPublish.IsValid() {
						firstPublish = call.Pos()
					}
				}
				return true
			})
			if firstAppend.IsValid() && firstPublish.IsValid() && firstPublish < firstAppend {
				pass.Reportf(firstPublish,
					"snapshot published before the WAL append later in this function; durable writes must append (and fsync) before they become visible")
			}
		})
	}
	return nil
}
