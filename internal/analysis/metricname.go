package analysis

import (
	"go/ast"
	"go/constant"
	"regexp"
	"strings"
)

// MetricName keeps the metrics namespace coherent and panic-free: the
// obs registry panics at runtime on a duplicate series, and Prometheus
// scrapes silently mangle names outside the exposition charset. The
// analyzer checks every registration call on an obs.Registry (Counter,
// Gauge, GaugeFunc, Histogram) and obs.WriteSeries:
//
//   - the metric name must be a compile-time constant string matching
//     ^gyo_[a-z0-9_]+$, and
//   - within one package, two registrations with identical constant
//     name + label arguments are flagged as a duplicate series (the
//     exact condition that panics the registry at startup).
//
// Registrations whose labels are computed (loops over label values)
// are exempt from the duplicate check but still name-checked.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "metric names are gyo_-prefixed compile-time constants and each constant series registers once per package",
	Run:  runMetricName,
}

var metricNameRE = regexp.MustCompile(`^gyo_[a-z0-9_]+$`)

// metricRegistrars maps registration method/function names to the
// index of the metric-name argument and the index where label
// arguments start.
var metricRegistrars = map[string]struct{ nameArg, labelStart int }{
	"Counter":     {0, 2},
	"Gauge":       {0, 2},
	"GaugeFunc":   {0, 3},
	"Histogram":   {0, 3},
	"WriteSeries": {1, 5},
}

func runMetricName(pass *Pass) error {
	seen := map[string]bool{} // constant series key -> registered
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var name string
			if fn, _ := methodOf(pass.Info, call); fn != nil && pkgNameOf(fn) == "obs" {
				name = fn.Name()
			} else if fn := calleeFunc(pass.Info, call); fn != nil && pkgNameOf(fn) == "obs" {
				name = fn.Name()
			} else {
				return true
			}
			spec, ok := metricRegistrars[name]
			if !ok || len(call.Args) <= spec.nameArg {
				return true
			}
			metric, isConst := constString(pass, call.Args[spec.nameArg])
			if !isConst {
				pass.Reportf(call.Args[spec.nameArg].Pos(),
					"metric name must be a compile-time constant string")
				return true
			}
			if !metricNameRE.MatchString(metric) {
				pass.Reportf(call.Args[spec.nameArg].Pos(),
					"metric name %q must match ^gyo_[a-z0-9_]+$", metric)
				return true
			}
			if name == "WriteSeries" {
				return true // ad-hoc exposition, not a registration
			}
			key, allConst := seriesKey(pass, metric, call, spec.labelStart)
			if !allConst {
				return true
			}
			if seen[key] {
				pass.Reportf(call.Args[spec.nameArg].Pos(),
					"duplicate registration of metric series %s (the obs registry panics on this at startup)",
					strings.ReplaceAll(key, "\x00", " "))
				return true
			}
			seen[key] = true
			return true
		})
	}
	return nil
}

// seriesKey builds the duplicate-detection key from the metric name
// and the constant label arguments; allConst is false when any label
// is computed at run time.
func seriesKey(pass *Pass, metric string, call *ast.CallExpr, labelStart int) (key string, allConst bool) {
	parts := []string{metric}
	for _, arg := range call.Args[labelStart:] {
		s, ok := constString(pass, arg)
		if !ok {
			return "", false
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, "\x00"), true
}

func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
