// Package engine is the analysistest stand-in for the serving engine.
package engine

import "gyokit/internal/relation"

// Engine mirrors the concurrent serving engine.
type Engine struct {
	db *relation.Database
}

// Snapshot returns the current frozen database snapshot.
func (e *Engine) Snapshot() *relation.Database { return e.db }

// Swap publishes a new snapshot and returns the previous one.
func (e *Engine) Swap(db *relation.Database) *relation.Database {
	old := e.db
	e.db = db
	return old
}
