// Package relation is the analysistest stand-in for the real columnar
// engine: same method names and freezing contract, no implementation.
// The analyzers match by package name + method name, so fixtures
// exercise exactly the code paths the real tree does.
package relation

// Tuple mirrors the real row type.
type Tuple []int

// Relation mirrors the real arena-backed relation state.
type Relation struct {
	frozen bool
}

// New returns a fresh mutable relation.
func New() *Relation { return &Relation{} }

// Freeze marks the relation immutable.
func (r *Relation) Freeze() { r.frozen = true }

// Insert adds one tuple in place.
func (r *Relation) Insert(t Tuple) {}

// InsertBlock bulk-adds rows in place.
func (r *Relation) InsertBlock(data []int) int { return 0 }

// InsertMap adds one named-column tuple in place.
func (r *Relation) InsertMap(m map[string]int) {}

// SetChunkID restamps a chunk id in place.
func (r *Relation) SetChunkID(i int, id uint64) {}

// Renamed returns a frozen identity view.
func (r *Relation) Renamed() *Relation { return r }

// Clone returns a fresh mutable copy.
func (r *Relation) Clone() *Relation { return &Relation{} }

// Card is a read-only accessor.
func (r *Relation) Card() int { return 0 }

// Database mirrors the snapshot container.
type Database struct {
	Rels []*Relation
	Univ *Relation
}

// Freeze marks every relation state immutable.
func (db *Database) Freeze() {}

// Clone returns a shallow snapshot.
func (db *Database) Clone() *Database { return &Database{Rels: db.Rels, Univ: db.Univ} }

// WithRelation derives a copy-on-write snapshot.
func (db *Database) WithRelation(i int, r *Relation) *Database { return db.Clone() }

// InsertTuple derives a copy-on-write snapshot with t inserted.
func (db *Database) InsertTuple(i int, t Tuple) *Database { return db.Clone() }
