// Package obs is the analysistest stand-in for the metrics registry.
package obs

import "io"

// Counter mirrors the monotonic counter instrument.
type Counter struct{}

// Gauge mirrors the gauge instrument.
type Gauge struct{}

// Histogram mirrors the histogram instrument.
type Histogram struct{}

// Registry mirrors the metric registry; registration panics on
// duplicate series at runtime, which metricname catches statically.
type Registry struct{}

// Counter registers a counter series.
func (r *Registry) Counter(name, help string, labels ...string) *Counter { return &Counter{} }

// Gauge registers a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge { return &Gauge{} }

// GaugeFunc registers a gauge backed by fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {}

// Histogram registers a histogram series.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return &Histogram{}
}

// WriteSeries writes one ad-hoc exposition series.
func WriteSeries(w io.Writer, name, help, typ string, v float64, labels ...string) {}
