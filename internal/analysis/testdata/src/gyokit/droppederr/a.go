// Fixture: droppederr — no statement-level discard of module errors or
// os.File Sync/Close. The package lives under gyokit/ so its import
// path falls inside the analyzer's module scope.
package droppederr

import (
	"fmt"
	"os"
)

type store struct{}

func (s *store) Append(n int) error { return nil }

func (s *store) Len() int { return 0 }

func persist() error { return nil }

func drops(s *store, f *os.File) {
	s.Append(1) // want `Append returns an error that is silently dropped`
	f.Sync()    // want `Sync returns an error that is silently dropped`
	f.Close()   // want `Close returns an error that is silently dropped`
	persist()   // want `persist returns an error that is silently dropped`
}

func stated(s *store, f *os.File) {
	_ = s.Append(1) // explicit discard states intent
	defer f.Close() // accepted best-effort-cleanup idiom
	if err := persist(); err != nil {
		fmt.Println(err)
	}
	s.Len()          // no error result: out of scope
	fmt.Println("x") // non-module callee: out of scope
}
