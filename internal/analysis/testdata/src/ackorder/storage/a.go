// Fixture: ackorder — WAL append happens-before snapshot publish.
// The package is named storage so the analyzer treats it as a durable
// subsystem.
package storage

import "sync/atomic"

// Mutation mirrors the logical WAL batch.
type Mutation struct{}

// Store mirrors the durable store's append surface.
type Store struct{}

// Append durably logs one batch.
func (s *Store) Append(muts []Mutation) error { return nil }

// WriteCheckpoint persists a snapshot.
func (s *Store) WriteCheckpoint(seq uint64) error { return nil }

type database struct{}

type engine struct {
	db    atomic.Pointer[database]
	store *Store
}

func appendThenPublish(e *engine, muts []Mutation) error {
	if err := e.store.Append(muts); err != nil {
		return err
	}
	e.db.Store(&database{}) // publish after append: the contract
	return nil
}

func publishThenAppend(e *engine, muts []Mutation) error {
	e.db.Store(&database{}) // want `snapshot published before the WAL append`
	return e.store.Append(muts)
}

func publishOnly(e *engine) {
	e.db.Store(&database{}) // no durable write in sight: out of scope
}

func appendOnly(e *engine, muts []Mutation) error {
	return e.store.Append(muts)
}
