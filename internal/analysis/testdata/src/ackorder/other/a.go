// Fixture: ackorder scope — packages outside storage/repl/engine are
// not checked, so the same reversed pattern raises nothing here.
package other

import "sync/atomic"

type mutation struct{}

type sink struct{}

// Append is a name collision only; this package is out of scope.
func (s *sink) Append(muts []mutation) error { return nil }

type database struct{}

type holder struct {
	db   atomic.Pointer[database]
	sink *sink
}

func reversedButOutOfScope(h *holder, muts []mutation) error {
	h.db.Store(&database{})
	return h.sink.Append(muts)
}
