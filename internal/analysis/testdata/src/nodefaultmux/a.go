// Fixture: nodefaultmux — nothing registers on or serves the default
// mux.
package nodefaultmux

import "net/http"

func registrations(mux *http.ServeMux, h http.Handler) {
	http.Handle("/a", h)           // want `http.Handle registers on DefaultServeMux`
	http.HandleFunc("/b", handler) // want `http.HandleFunc registers on DefaultServeMux`
	mux.Handle("/a", h)            // explicit mux: fine
	mux.HandleFunc("/b", handler)
}

func servers(h http.Handler) {
	_ = http.ListenAndServe(":0", nil)              // want `nil handler serves DefaultServeMux`
	_ = http.ListenAndServeTLS(":0", "c", "k", nil) // want `nil handler serves DefaultServeMux`
	_ = http.ListenAndServe(":0", h)                // explicit handler: fine
	srv := &http.Server{Handler: h}
	_ = srv.ListenAndServe() // method on an explicit Server: fine
}

func mentions() {
	mux := http.DefaultServeMux // want `http.DefaultServeMux must never be used`
	_ = mux
}

func handler(w http.ResponseWriter, r *http.Request) {}
