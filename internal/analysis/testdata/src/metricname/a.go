// Fixture: metricname — constant gyo_-prefixed names, one constant
// series per package.
package metricname

import (
	"os"

	"gyokit/internal/obs"
)

func register(reg *obs.Registry, dynamic string) {
	reg.Counter("gyo_queries_total", "queries", "kind")
	reg.Counter(dynamic, "boom")                      // want `metric name must be a compile-time constant string`
	reg.Gauge("queries_active", "active")             // want `metric name "queries_active" must match`
	reg.Counter("gyo_queries_total", "again", "kind") // want `duplicate registration of metric series`
	reg.Histogram("gyo_solve_seconds", "latency", nil)
	reg.GaugeFunc("gyo_heap_bytes", "heap", func() float64 { return 0 })
}

func sameNameDifferentLabels(reg *obs.Registry) {
	// Distinct label sets are distinct series: not a duplicate.
	reg.Counter("gyo_rows_total", "rows", "op")
	reg.Counter("gyo_rows_total", "rows", "kind")
}

func adHocExposition() {
	// WriteSeries is exposition, not registration: name-checked but
	// never deduplicated.
	obs.WriteSeries(os.Stdout, "gyo_adhoc", "h", "gauge", 1)
	obs.WriteSeries(os.Stdout, "gyo_adhoc", "h", "gauge", 1)
	obs.WriteSeries(os.Stdout, "Bad_Name", "h", "gauge", 1) // want `metric name "Bad_Name" must match`
}

func perShard(reg *obs.Registry, shards []string) {
	for _, s := range shards {
		// Computed label value: exempt from the duplicate check.
		reg.Gauge("gyo_shard_depth", "per-shard depth", "shard", s)
	}
}
