// Fixture: the no-false-positive corpus, mirroring the real engine's
// copy-on-write idioms (Database.InsertTuple, Engine.Apply).
package frozenmut

import (
	"gyokit/internal/engine"
	"gyokit/internal/relation"
)

func cloneThenMutate(e *engine.Engine) {
	db := e.Snapshot()
	r := db.Rels[0].Clone() // Clone yields a fresh mutable copy
	r.Insert(relation.Tuple{1})
	next := db.WithRelation(0, r) // copy-on-write derivation is legal
	next.Freeze()
	e.Swap(next)
}

func copyOnWriteMutators(e *engine.Engine) {
	db := e.Snapshot()
	_ = db.InsertTuple(0, relation.Tuple{1}) // derives a snapshot, mutates nothing
	_ = db.WithRelation(0, relation.New())
	_ = db.Rels[0].Card() // reads on frozen values are fine
}

func freshRelations() {
	r := relation.New()
	r.Insert(relation.Tuple{1})
	r.InsertBlock([]int{1})
	s := r.Clone()
	s.Insert(relation.Tuple{2})
}

func reassignedToFresh(e *engine.Engine) {
	db := e.Snapshot()
	db = &relation.Database{} // rebound to a fresh value: mutable again
	db.Univ = relation.New()
	db.Univ.Insert(relation.Tuple{1})
}
