// Fixture: frozenmut positive findings.
package frozenmut

import (
	"gyokit/internal/engine"
	"gyokit/internal/relation"
)

func mutateAfterFreeze() {
	r := relation.New()
	r.Insert(relation.Tuple{1}) // legal: not frozen yet
	r.Freeze()
	r.Insert(relation.Tuple{2})         // want `Insert called on a frozen snapshot value`
	r.InsertBlock([]int{1, 2})          // want `InsertBlock called on a frozen snapshot value`
	r.InsertMap(map[string]int{"a": 1}) // want `InsertMap called on a frozen snapshot value`
	r.SetChunkID(0, 7)                  // want `SetChunkID called on a frozen snapshot value`
}

func mutateSnapshot(e *engine.Engine) {
	db := e.Snapshot()
	db.Rels[0].Insert(relation.Tuple{1}) // want `Insert called on a frozen snapshot value`
	db.Univ.Insert(relation.Tuple{1})    // want `Insert called on a frozen snapshot value`
}

func mutateRenamedView(r *relation.Relation) {
	v := r.Renamed()
	v.Insert(relation.Tuple{1})           // want `Insert called on a frozen snapshot value`
	r.Renamed().Insert(relation.Tuple{2}) // want `Insert called on a frozen snapshot value`
}

func mutateAlias(e *engine.Engine) {
	db := e.Snapshot()
	alias := db
	alias.Rels[0].Insert(relation.Tuple{1}) // want `Insert called on a frozen snapshot value`
}
