// Fixture: errenvelope — every handler error goes through writeError.
package errenvelope

import (
	"encoding/json"
	"net/http"
)

// writeError is the designated envelope writer: raw status writes are
// legal only here.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	if status == 0 {
		w.WriteHeader(http.StatusInternalServerError) // inside the envelope writer: exempt
		return
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"code": code, "message": err.Error()})
}

func badHandler(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "nope", http.StatusBadRequest) // want `http.Error bypasses the /v1 error envelope`
	w.WriteHeader(http.StatusBadRequest)         // want `bare WriteHeader\(400\) bypasses the /v1 error envelope`
	w.WriteHeader(503)                           // want `bare WriteHeader\(503\) bypasses the /v1 error envelope`
}

func goodHandler(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusBadRequest, "invalid_request", errBad)
	w.WriteHeader(http.StatusNoContent) // success statuses are fine
	w.WriteHeader(204)
}

func proxiedStatus(w http.ResponseWriter, upstream int) {
	w.WriteHeader(upstream) // computed statuses are out of scope
}

var errBad = &statusError{}

type statusError struct{}

func (*statusError) Error() string { return "bad" }
