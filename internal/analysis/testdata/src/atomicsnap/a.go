// Fixture: atomicsnap — the engine's snapshot-pointer convention.
package atomicsnap

import "sync/atomic"

type database struct{ n int }

type engine struct {
	db    atomic.Pointer[database]
	gen   atomic.Uint64
	ready atomic.Bool
	name  string
}

func methodCallsAreLegal(e *engine) *database {
	e.db.Store(&database{})
	e.gen.Add(1)
	if e.db.CompareAndSwap(nil, &database{}) {
		e.ready.Store(true)
	}
	_ = e.name // plain fields are out of scope
	return e.db.Load()
}

func rawAccess(e *engine, other *engine) {
	_ = e.db   // want `raw access to atomic field db`
	p := &e.db // want `raw access to atomic field db`
	_ = p
	e.gen = other.gen // want `raw access to atomic field gen`
	load := e.db.Load // want `atomic field db: method value captured`
	_ = load
}
