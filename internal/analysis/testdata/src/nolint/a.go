// Fixture: the //gyo:nolint directive. TestNolint asserts the exact
// finding set by hand (the malformed directive is reported on its own
// comment, where a want comment cannot sit).
package nolint

import "net/http"

func suppressedSameLine(h http.Handler) {
	http.Handle("/a", h) //gyo:nolint nodefaultmux fixture: same-line suppression silences the finding
}

func suppressedStandalone(h http.Handler) {
	//gyo:nolint nodefaultmux fixture: a standalone directive guards the next code line
	http.Handle("/b", h)
}

func bareDirectiveFailsTheBuild(h http.Handler) {
	http.Handle("/c", h) //gyo:nolint nodefaultmux
}
