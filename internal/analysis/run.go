package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Package is one fully type-checked unit ready for analysis —
// produced by Load (standalone mode) or assembled by cmd/gyovet from a
// `go vet` config.
type Package struct {
	Path  string // import path (diagnostics + dedup scope)
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// RunPackage runs every analyzer over pkg, applies //gyo:nolint
// suppression, drops findings located in _test.go files (tests
// exercise invariant violations on purpose; the suite guards
// production code), and returns the surviving findings sorted by
// position. Analyzer-internal errors surface as the error return.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	diags = filterNolint(pkg.Fset, pkg.Files, diags)
	out := diags[:0]
	for _, d := range diags {
		if strings.HasSuffix(pkg.Fset.Position(d.Pos).Filename, "_test.go") {
			continue
		}
		out = append(out, d)
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(out[i].Pos), pkg.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// parents maps every node of a file to its syntactic parent. The
// analyzers that must know a node's context (is this selector the
// receiver of a call?) build one per file.
func parents(f *ast.File) map[ast.Node]ast.Node {
	m := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			m[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return m
}

// methodOf resolves the called method for a selector call expression:
// the *types.Func and the receiver expression, or nil when call is not
// a method call the type-checker resolved.
func methodOf(info *types.Info, call *ast.CallExpr) (*types.Func, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil, nil
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return nil, nil
	}
	return fn, sel.X
}

// calleeFunc resolves a call to a plain (non-method) function object.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if _, isSel := info.Selections[fun]; isSel {
			return nil // method or field, not a package-level func
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// pkgNameOf returns the name of the package an object is declared in
// ("" for builtins and objects without a package).
func pkgNameOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Name()
}

// pkgPathOf returns the import path an object is declared in.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// atomicField reports whether sel resolves to a struct field whose
// type is declared in sync/atomic (atomic.Pointer[T], atomic.Bool,
// atomic.Int64, ...). Shared by atomicsnap and ackorder.
func atomicField(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	named, ok := s.Type().(*types.Named)
	if !ok {
		return false
	}
	return pkgPathOf(named.Obj()) == "sync/atomic"
}

// funcScope walks every function body in f — declarations and
// literals — invoking fn with the enclosing declaration name ("" for
// literals outside any declaration).
func funcScope(f *ast.File, fn func(name string, body *ast.BlockStmt)) {
	for _, decl := range f.Decls {
		d, ok := decl.(*ast.FuncDecl)
		if !ok || d.Body == nil {
			continue
		}
		fn(d.Name.Name, d.Body)
	}
}
