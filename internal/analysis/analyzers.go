package analysis

// All returns the full gyovet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		FrozenMut,
		AtomicSnap,
		ErrEnvelope,
		AckOrder,
		MetricName,
		NoDefaultMux,
		DroppedErr,
	}
}

// ByName resolves an analyzer by its nolint/CLI name.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
