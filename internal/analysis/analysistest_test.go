package analysis

// The analysistest harness: each analyzer runs over seeded fixture
// packages under testdata/src, and every `// want `+"`regex`"+``
// comment must be matched by a diagnostic on its line (red), while any
// diagnostic without a matching want fails the test (green). Fixture
// dependencies that mirror real gyokit packages live under
// testdata/src/gyokit and are type-checked from source; stdlib imports
// come from compiler export data produced locally by `go list -export`.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestFrozenMut(t *testing.T)    { runFixture(t, FrozenMut, "frozenmut") }
func TestAtomicSnap(t *testing.T)   { runFixture(t, AtomicSnap, "atomicsnap") }
func TestErrEnvelope(t *testing.T)  { runFixture(t, ErrEnvelope, "errenvelope") }
func TestAckOrder(t *testing.T)     { runFixture(t, AckOrder, "ackorder/storage", "ackorder/other") }
func TestMetricName(t *testing.T)   { runFixture(t, MetricName, "metricname") }
func TestNoDefaultMux(t *testing.T) { runFixture(t, NoDefaultMux, "nodefaultmux") }
func TestDroppedErr(t *testing.T)   { runFixture(t, DroppedErr, "gyokit/droppederr") }

// TestNolint asserts the suppression contract by hand: a well-formed
// same-line or standalone directive silences the finding, while a bare
// directive (no reason) leaves the finding in place AND adds a
// malformed-nolint finding — so a bare nolint can never make the build
// green. The malformed finding is positioned on the directive comment
// itself, where a want comment cannot sit, hence no want-matching here.
func TestNolint(t *testing.T) {
	w := fixtures(t)
	pkg, err := w.load("nolint")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunPackage(pkg, []*Analyzer{NoDefaultMux})
	if err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(w.srcRoot, "nolint", "a.go")
	bare := lineOf(t, file, `"/c"`)
	for _, marker := range []string{`"/a"`, `"/b"`} {
		line := lineOf(t, file, marker)
		for _, d := range diags {
			if pkg.Fset.Position(d.Pos).Line == line {
				t.Errorf("finding on suppressed line %d (%s): %s [%s]", line, marker, d.Message, d.Analyzer)
			}
		}
	}
	var gotMux, gotNolint bool
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		switch {
		case d.Analyzer == NoDefaultMux.Name && pos.Line == bare:
			gotMux = true
		case d.Analyzer == NolintName && pos.Line == bare && strings.Contains(d.Message, "malformed"):
			gotNolint = true
		default:
			t.Errorf("unexpected diagnostic %s: %s [%s]", pos, d.Message, d.Analyzer)
		}
	}
	if !gotMux {
		t.Errorf("bare //gyo:nolint on line %d suppressed the underlying finding; it must not", bare)
	}
	if !gotNolint {
		t.Errorf("bare //gyo:nolint on line %d produced no malformed-directive finding", bare)
	}
}

func TestAnalyzerRegistry(t *testing.T) {
	all := All()
	if len(all) != 7 {
		t.Fatalf("All() = %d analyzers, want 7", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q: incomplete definition", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) does not round-trip", a.Name)
		}
	}
	if ByName("nosuch") != nil {
		t.Error(`ByName("nosuch") != nil`)
	}
}

// TestGyovetSelfClean is the dogfood gate: the analyzer suite and the
// gyovet driver must themselves pass the full suite with zero findings.
func TestGyovetSelfClean(t *testing.T) {
	assertClean(t, "./internal/analysis", "./cmd/gyovet")
}

// TestTreeClean asserts the whole module is finding-free: every real
// finding on the tree has been fixed or carries a reasoned suppression.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	assertClean(t, "./...")
}

func assertClean(t *testing.T, patterns ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("Load(%v) matched no packages", patterns)
	}
	for _, pkg := range pkgs {
		diags, err := RunPackage(pkg, All())
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d.Format(pkg.Fset))
		}
	}
}

// runFixture loads each fixture package, runs exactly one analyzer
// (plus nolint filtering via RunPackage), and cross-checks diagnostics
// against the want comments in the fixture sources.
func runFixture(t *testing.T, a *Analyzer, paths ...string) {
	t.Helper()
	w := fixtures(t)
	totalWants := 0
	for _, path := range paths {
		pkg, err := w.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := RunPackage(pkg, []*Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		var wants []*want
		for _, f := range pkg.Files {
			ws, err := parseWants(pkg.Fset.Position(f.Pos()).Filename)
			if err != nil {
				t.Fatal(err)
			}
			wants = append(wants, ws...)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			matched := false
			for _, wt := range wants {
				if wt.file == pos.Filename && wt.line == pos.Line && wt.re.MatchString(d.Message) {
					wt.matched = true
					matched = true
				}
			}
			if !matched {
				t.Errorf("unexpected diagnostic %s: %s [%s]", pos, d.Message, d.Analyzer)
			}
		}
		for _, wt := range wants {
			if !wt.matched {
				t.Errorf("%s:%d: no diagnostic matched `%s` — the seeded violation went undetected",
					wt.file, wt.line, wt.raw)
			}
		}
		totalWants += len(wants)
	}
	if totalWants == 0 {
		t.Fatalf("%s fixtures carry no want expectations; the red half of red→green is gone", a.Name)
	}
}

// want is one expectation from a fixture comment:
//
//	code // want `regexp` `another regexp`
//
// Each backquoted regexp must match a diagnostic message reported on
// that line; a want can absorb several identical diagnostics.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var (
	wantRE    = regexp.MustCompile("// want ((?:`[^`]*`[ \t]*)+)")
	wantPatRE = regexp.MustCompile("`[^`]*`")
)

func parseWants(file string) ([]*want, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var wants []*want
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, p := range wantPatRE.FindAllString(m[1], -1) {
			raw := p[1 : len(p)-1]
			re, err := regexp.Compile(raw)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", file, i+1, raw, err)
			}
			wants = append(wants, &want{file: file, line: i + 1, re: re, raw: raw})
		}
	}
	return wants, nil
}

// lineOf returns the 1-based line of the first occurrence of substr in
// file, so tests track fixture edits without hard-coded line numbers.
func lineOf(t *testing.T, file, substr string) int {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, substr) {
			return i + 1
		}
	}
	t.Fatalf("%s: marker %q not found", file, substr)
	return 0
}

// fixtureWorld type-checks testdata/src packages: fixture import paths
// resolve from source under srcRoot (recursively, cached), everything
// else from compiler export data listed once via the go command.
type fixtureWorld struct {
	srcRoot string
	fset    *token.FileSet
	gc      types.Importer
	pkgs    map[string]*Package
}

var (
	worldOnce sync.Once
	world     *fixtureWorld
	worldErr  error
)

func fixtures(t *testing.T) *fixtureWorld {
	t.Helper()
	worldOnce.Do(func() { world, worldErr = newFixtureWorld() })
	if worldErr != nil {
		t.Fatalf("building fixture world: %v", worldErr)
	}
	return world
}

func newFixtureWorld() (*fixtureWorld, error) {
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		return nil, err
	}
	w := &fixtureWorld{
		srcRoot: srcRoot,
		fset:    token.NewFileSet(),
		pkgs:    map[string]*Package{},
	}
	ext, err := w.externalImports()
	if err != nil {
		return nil, err
	}
	exportFile := map[string]string{}
	if len(ext) > 0 {
		args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export", "--"}, ext...)
		metas, err := runGoList(srcRoot, args)
		if err != nil {
			return nil, err
		}
		for _, m := range metas {
			if m.Export != "" {
				exportFile[m.ImportPath] = m.Export
			}
		}
	}
	w.gc = importer.ForCompiler(w.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exportFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return w, nil
}

// externalImports scans every fixture file for import paths that do
// not resolve to a fixture directory — those must come from export
// data and are handed to `go list` in one batch.
func (w *fixtureWorld) externalImports() ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(w.srcRoot, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		f, err := parser.ParseFile(token.NewFileSet(), p, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return err
			}
			if w.isFixture(ip) {
				continue
			}
			seen[ip] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(seen))
	for p := range seen {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths, nil
}

func (w *fixtureWorld) isFixture(path string) bool {
	st, err := os.Stat(filepath.Join(w.srcRoot, filepath.FromSlash(path)))
	return err == nil && st.IsDir()
}

// load parses and type-checks the fixture package at the given
// testdata/src-relative import path, resolving fixture imports
// recursively through itself.
func (w *fixtureWorld) load(path string) (*Package, error) {
	if p, ok := w.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(w.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(w.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s: no Go files in %s", path, dir)
	}
	cfg := &types.Config{
		Importer: importerFunc(func(ip string) (*types.Package, error) {
			if w.isFixture(ip) {
				p, err := w.load(ip)
				if err != nil {
					return nil, err
				}
				return p.Types, nil
			}
			return w.gc.Import(ip)
		}),
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	info := NewTypesInfo()
	tpkg, err := cfg.Check(path, w.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", path, err)
	}
	pkg := &Package{Path: path, Fset: w.fset, Files: files, Types: tpkg, Info: info}
	w.pkgs[path] = pkg
	return pkg, nil
}
