// Package treefy implements the paper's §4 treefication machinery:
// adding relation schemas to a cyclic schema to make it a tree schema.
// Corollary 3.2 solves the single-relation case exactly (∪GR(D));
// Theorem 4.2 proves the multi-relation "fixed treefication" decision
// problem NP-complete by reduction from bin packing. This package
// implements the reduction in both directions, exact bin-packing
// solvers, and a brute-force treefication decider for cross-validation
// on tiny instances.
package treefy

import (
	"fmt"
	"sort"

	"gyokit/internal/gen"
	"gyokit/internal/gyo"
	"gyokit/internal/schema"
)

// Instance is a fixed-treefication instance: may schemas R′₁…R′_K with
// |R′ᵢ| ≤ B be added to D so that D ∪ (R′₁…R′_K) is a tree schema?
type Instance struct {
	D *schema.Schema
	K int
	B int
}

// FromBinPacking builds the Theorem 4.2 instance: one Aclique of size
// s(i) per item, over pairwise disjoint attribute universes.
// Item sizes must be ≥ 3 (an Aclique needs three attributes; the
// theorem's w.l.o.g. assumption "each s(i) divisible by 3" covers
// this).
func FromBinPacking(bp gen.BinPackingInstance) (Instance, error) {
	u := schema.NewUniverse()
	d := &schema.Schema{U: u}
	for i, s := range bp.Sizes {
		if s < 3 {
			return Instance{}, fmt.Errorf("treefy: item %d has size %d < 3", i, s)
		}
		cl := schema.Aclique(u, s, fmt.Sprintf("i%d_", i))
		d.Rels = append(d.Rels, cl.Rels...)
	}
	return Instance{D: d, K: bp.K, B: bp.B}, nil
}

// ToBinPacking extracts the bin-packing instance from a treefication
// instance whose GR(D) splits into connected components: item sizes
// are the attribute counts of the components. This inverts
// FromBinPacking (each disjoint Aclique is one GYO-irreducible
// component), implementing the (⇒) direction of the Theorem 4.2 proof.
func ToBinPacking(inst Instance) gen.BinPackingInstance {
	gr := gyo.ReduceFull(inst.D).GR
	var sizes []int
	for _, comp := range gr.Components() {
		var attrs schema.AttrSet
		for _, i := range comp {
			attrs = attrs.Union(gr.Rels[i])
		}
		sizes = append(sizes, attrs.Card())
	}
	sort.Ints(sizes)
	return gen.BinPackingInstance{Sizes: sizes, K: inst.K, B: inst.B}
}

// DecideViaBinPacking decides a fixed-treefication instance from the
// Theorem 4.2 family (disjoint GYO-irreducible components, each of
// which must be swallowed whole by one added relation) by solving the
// extracted bin-packing instance exactly. For instances outside that
// family the answer is only an upper-bound certificate: use Solve to
// also obtain the witness relations.
func DecideViaBinPacking(inst Instance) bool {
	bp := ToBinPacking(inst)
	_, ok := SolveBinPacking(bp)
	return ok
}

// Solve decides the instance and, when satisfiable, returns witness
// relations (the attribute sets of GR(D)'s components grouped by the
// bin-packing assignment, as in the proof's (⇐) direction).
func Solve(inst Instance) (witness []schema.AttrSet, ok bool) {
	gr := gyo.ReduceFull(inst.D).GR
	comps := gr.Components()
	if len(comps) == 0 {
		return nil, true // already a tree schema; add nothing
	}
	attrSets := make([]schema.AttrSet, len(comps))
	sizes := make([]int, len(comps))
	for i, comp := range comps {
		var attrs schema.AttrSet
		for _, j := range comp {
			attrs = attrs.Union(gr.Rels[j])
		}
		attrSets[i] = attrs
		sizes[i] = attrs.Card()
	}
	assign, ok := SolveBinPacking(gen.BinPackingInstance{Sizes: sizes, K: inst.K, B: inst.B})
	if !ok {
		return nil, false
	}
	byBin := make(map[int]schema.AttrSet)
	for item, bin := range assign {
		cur, exists := byBin[bin]
		if !exists {
			cur = schema.NewAttrSet()
		}
		byBin[bin] = cur.Union(attrSets[item])
	}
	for _, s := range byBin {
		witness = append(witness, s)
	}
	schema.SortSets(witness)
	// Verify: the witness must treefy D (sound by construction, but
	// check anyway).
	aug := inst.D.Clone()
	for _, s := range witness {
		aug.Add(s)
	}
	if !gyo.IsTree(aug) {
		panic("treefy: internal: witness does not treefy D")
	}
	return witness, true
}

// SolveBinPacking decides whether the items fit into K bins of
// capacity B and returns an item→bin assignment when they do. Exact:
// subset-sum DP over item masks for n ≤ 20, branch and bound beyond.
func SolveBinPacking(bp gen.BinPackingInstance) (assign []int, ok bool) {
	n := len(bp.Sizes)
	if n == 0 {
		return nil, true
	}
	if bp.K <= 0 {
		return nil, false
	}
	for _, s := range bp.Sizes {
		if s > bp.B {
			return nil, false
		}
	}
	if n <= 20 {
		return binPackDP(bp)
	}
	return binPackBB(bp)
}

// binPackDP: minBins[mask] = fewest bins packing exactly the items of
// mask; transitions enumerate submasks that fit in one bin.
func binPackDP(bp gen.BinPackingInstance) ([]int, bool) {
	n := len(bp.Sizes)
	full := 1<<n - 1
	sum := make([]int, full+1)
	for mask := 1; mask <= full; mask++ {
		low := mask & (-mask)
		i := trailingZeros(low)
		sum[mask] = sum[mask^low] + bp.Sizes[i]
	}
	const inf = 1 << 30
	minBins := make([]int, full+1)
	choice := make([]int, full+1) // the one-bin submask used
	for mask := 1; mask <= full; mask++ {
		minBins[mask] = inf
		// Enumerate submasks containing the lowest set item (canonical).
		low := mask & (-mask)
		rest := mask ^ low
		for sub := rest; ; sub = (sub - 1) & rest {
			bin := sub | low
			if sum[bin] <= bp.B && minBins[mask^bin]+1 < minBins[mask] {
				minBins[mask] = minBins[mask^bin] + 1
				choice[mask] = bin
			}
			if sub == 0 {
				break
			}
		}
	}
	if minBins[full] > bp.K {
		return nil, false
	}
	assign := make([]int, n)
	bin := 0
	for mask := full; mask != 0; {
		c := choice[mask]
		for i := 0; i < n; i++ {
			if c&(1<<i) != 0 {
				assign[i] = bin
			}
		}
		bin++
		mask ^= c
	}
	return assign, true
}

// binPackBB: branch and bound with first-fit over bins, items sorted
// decreasing. Exact but exponential; used only for n > 20.
func binPackBB(bp gen.BinPackingInstance) ([]int, bool) {
	n := len(bp.Sizes)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return bp.Sizes[idx[a]] > bp.Sizes[idx[b]] })
	loads := make([]int, bp.K)
	assign := make([]int, n)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			return true
		}
		it := idx[k]
		seen := map[int]bool{} // skip bins with identical load (symmetry)
		for b := 0; b < bp.K; b++ {
			if seen[loads[b]] {
				continue
			}
			seen[loads[b]] = true
			if loads[b]+bp.Sizes[it] > bp.B {
				continue
			}
			loads[b] += bp.Sizes[it]
			assign[it] = b
			if rec(k + 1) {
				return true
			}
			loads[b] -= bp.Sizes[it]
		}
		return false
	}
	if !rec(0) {
		return nil, false
	}
	return assign, true
}

// FirstFitDecreasing is the classical 11/9·OPT+1 heuristic; it returns
// the number of bins used (capacity B) and the assignment.
func FirstFitDecreasing(sizes []int, b int) (bins int, assign []int) {
	n := len(sizes)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, c int) bool { return sizes[idx[a]] > sizes[idx[c]] })
	assign = make([]int, n)
	var loads []int
	for _, it := range idx {
		placed := false
		for bi := range loads {
			if loads[bi]+sizes[it] <= b {
				loads[bi] += sizes[it]
				assign[it] = bi
				placed = true
				break
			}
		}
		if !placed {
			loads = append(loads, sizes[it])
			assign[it] = len(loads) - 1
		}
	}
	return len(loads), assign
}

// BruteForce decides fixed treefication exactly by enumerating every
// multiset of K attribute subsets of ∪GR(D) with cardinality ≤ B.
// Doubly exponential; for cross-validating Solve on tiny instances
// (|∪GR(D)| ≤ 10, K ≤ 2).
func BruteForce(inst Instance) bool {
	gr := gyo.ReduceFull(inst.D).GR
	if gr.Attrs().IsEmpty() {
		return true
	}
	attrs := gr.Attrs().Attrs()
	if len(attrs) > 12 {
		panic("treefy: BruteForce limited to |∪GR(D)| ≤ 12")
	}
	// Candidate added relations: subsets of ∪GR(D) with |S| ≤ B.
	// (Theorem 3.2(iii) implies added relations may be restricted to
	// attributes of ∪GR(D): attributes outside it are deletable first.)
	var cands []schema.AttrSet
	for mask := 1; mask < 1<<len(attrs); mask++ {
		if popcount(mask) > inst.B {
			continue
		}
		s := schema.NewAttrSet()
		for i, a := range attrs {
			if mask&(1<<i) != 0 {
				s = s.Add(a)
			}
		}
		cands = append(cands, s)
	}
	var rec func(k int, from int, cur *schema.Schema) bool
	rec = func(k, from int, cur *schema.Schema) bool {
		if gyo.IsTree(cur) {
			return true
		}
		if k == 0 {
			return false
		}
		for i := from; i < len(cands); i++ {
			if rec(k-1, i, cur.WithRel(cands[i])) {
				return true
			}
		}
		return false
	}
	return rec(inst.K, 0, inst.D)
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func trailingZeros(x int) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}
