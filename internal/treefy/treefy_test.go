package treefy

import (
	"math/rand"
	"testing"

	"gyokit/internal/gen"
	"gyokit/internal/gyo"
	"gyokit/internal/schema"
)

func TestFromBinPackingShape(t *testing.T) {
	bp := gen.BinPackingInstance{Sizes: []int{3, 4}, K: 2, B: 4}
	inst, err := FromBinPacking(bp)
	if err != nil {
		t.Fatal(err)
	}
	// 3 + 4 relations, disjoint attribute universes of 3 + 4 attributes.
	if inst.D.Len() != 7 {
		t.Errorf("relation count = %d", inst.D.Len())
	}
	if inst.D.Attrs().Card() != 7 {
		t.Errorf("attribute count = %d", inst.D.Attrs().Card())
	}
	comps := inst.D.Components()
	if len(comps) != 2 {
		t.Errorf("component count = %d", len(comps))
	}
	if gyo.IsTree(inst.D) {
		t.Error("reduction instance should be cyclic")
	}
	if _, err := FromBinPacking(gen.BinPackingInstance{Sizes: []int{2}, K: 1, B: 3}); err == nil {
		t.Error("size-2 item accepted")
	}
}

func TestToBinPackingRoundTrip(t *testing.T) {
	bp := gen.BinPackingInstance{Sizes: []int{3, 3, 5}, K: 2, B: 8}
	inst, err := FromBinPacking(bp)
	if err != nil {
		t.Fatal(err)
	}
	back := ToBinPacking(inst)
	if len(back.Sizes) != 3 || back.Sizes[0] != 3 || back.Sizes[1] != 3 || back.Sizes[2] != 5 {
		t.Errorf("round trip sizes = %v", back.Sizes)
	}
	if back.K != 2 || back.B != 8 {
		t.Errorf("round trip K/B = %d/%d", back.K, back.B)
	}
}

func TestSolveBinPackingExact(t *testing.T) {
	cases := []struct {
		sizes []int
		k, b  int
		want  bool
	}{
		{[]int{3, 3, 3}, 1, 9, true},
		{[]int{3, 3, 3}, 1, 8, false},
		{[]int{3, 3, 3}, 3, 3, true},
		{[]int{5, 4, 3, 3}, 2, 8, true},  // {5,3} {4,3}
		{[]int{5, 4, 4, 3}, 2, 8, true},  // {5,3} {4,4}
		{[]int{5, 5, 5}, 2, 9, false},    // three items, pairwise too big
		{[]int{6, 6, 6, 6}, 3, 12, true}, // pairs
		{[]int{9}, 1, 8, false},          // oversize item
		{[]int{}, 0, 5, true},
		{[]int{3}, 0, 5, false},
	}
	for _, c := range cases {
		assign, ok := SolveBinPacking(gen.BinPackingInstance{Sizes: c.sizes, K: c.k, B: c.b})
		if ok != c.want {
			t.Errorf("SolveBinPacking(%v, K=%d, B=%d) = %v, want %v", c.sizes, c.k, c.b, ok, c.want)
			continue
		}
		if ok {
			verifyAssignment(t, c.sizes, c.k, c.b, assign)
		}
	}
}

func verifyAssignment(t *testing.T, sizes []int, k, b int, assign []int) {
	t.Helper()
	if len(sizes) == 0 {
		return
	}
	loads := map[int]int{}
	for i, bin := range assign {
		if bin < 0 || bin >= k {
			t.Fatalf("assignment bin %d out of range", bin)
		}
		loads[bin] += sizes[i]
	}
	for bin, l := range loads {
		if l > b {
			t.Fatalf("bin %d overloaded: %d > %d", bin, l, b)
		}
	}
}

func TestBinPackDPvsBB(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(8)
		bp := gen.BinPacking(rng, n, 7, 1+rng.Intn(3), 7+rng.Intn(6))
		_, dp := binPackDP(bp)
		_, bb := binPackBB(bp)
		if dp != bb {
			t.Fatalf("DP %v ≠ B&B %v on %+v", dp, bb, bp)
		}
	}
}

func TestFirstFitDecreasing(t *testing.T) {
	bins, assign := FirstFitDecreasing([]int{5, 4, 3, 3}, 8)
	if bins != 2 {
		t.Errorf("FFD bins = %d, want 2", bins)
	}
	verifyAssignment(t, []int{5, 4, 3, 3}, bins, 8, assign)
	// FFD never beats the exact optimum.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(8)
		bp := gen.BinPacking(rng, n, 7, 0, 7+rng.Intn(6))
		ffd, _ := FirstFitDecreasing(bp.Sizes, bp.B)
		// Find exact optimum by increasing K.
		opt := 0
		for k := 1; ; k++ {
			if _, ok := SolveBinPacking(gen.BinPackingInstance{Sizes: bp.Sizes, K: k, B: bp.B}); ok {
				opt = k
				break
			}
		}
		if ffd < opt {
			t.Fatalf("FFD %d < OPT %d for %v", ffd, opt, bp.Sizes)
		}
	}
}

// TestTheorem42Equivalence: a bin-packing instance is satisfiable iff
// its fixed-treefication image is, cross-validated three ways on random
// instances: (a) DecideViaBinPacking, (b) Solve's witness actually
// treefies, (c) tiny instances against the doubly exponential
// BruteForce.
func TestTheorem42Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(3)
		bp := gen.BinPacking(rng, n, 5, 1+rng.Intn(2), 5+rng.Intn(4))
		inst, err := FromBinPacking(bp)
		if err != nil {
			t.Fatal(err)
		}
		_, bpOK := SolveBinPacking(bp)
		if got := DecideViaBinPacking(inst); got != bpOK {
			t.Fatalf("DecideViaBinPacking = %v, bin packing = %v on %+v", got, bpOK, bp)
		}
		witness, solveOK := Solve(inst)
		if solveOK != bpOK {
			t.Fatalf("Solve = %v, bin packing = %v on %+v", solveOK, bpOK, bp)
		}
		if solveOK {
			if len(witness) > inst.K {
				t.Fatalf("witness uses %d > K=%d relations", len(witness), inst.K)
			}
			aug := inst.D.Clone()
			for _, s := range witness {
				if s.Card() > inst.B {
					t.Fatalf("witness relation too large: %d > %d", s.Card(), inst.B)
				}
				aug.Add(s)
			}
			if !gyo.IsTree(aug) {
				t.Fatal("witness does not treefy")
			}
		}
		// Cross-check against brute force when small enough.
		if inst.D.Attrs().Card() <= 8 && inst.K <= 2 {
			if bf := BruteForce(inst); bf != bpOK {
				t.Fatalf("BruteForce = %v, bin packing = %v on %+v", bf, bpOK, bp)
			}
		}
	}
}

// TestSolveGeneralCaveat documents the scope of the component-cover
// method: a 6-ring is treefiable with two 4-attribute relations even
// though no single ≤4-attribute relation covers its component, so the
// bin-packing route (exact for the Theorem 4.2 Aclique family) must be
// conservative here while BruteForce finds the answer.
func TestSolveGeneralCaveat(t *testing.T) {
	d := gen.Ring(6)
	inst := Instance{D: d, K: 2, B: 4}
	if DecideViaBinPacking(inst) {
		t.Error("component cover should fail: component has 6 attributes > B=4")
	}
	if !BruteForce(inst) {
		t.Error("brute force should find the two-relation treefication")
	}
	// Sanity: an explicit witness. The 6-ring a..f plus abcd and adef.
	u := d.U
	aug := d.Clone()
	aug.Add(u.Set("a", "b", "c", "d"))
	aug.Add(u.Set("a", "d", "e", "f"))
	if !gyo.IsTree(aug) {
		t.Error("explicit 6-ring witness rejected")
	}
}

func TestSolveTreeInput(t *testing.T) {
	u := schema.NewUniverse()
	d, _ := schema.Parse(u, "ab, bc")
	w, ok := Solve(Instance{D: d, K: 0, B: 1})
	if !ok || len(w) != 0 {
		t.Error("tree schema needs no added relations")
	}
	if !BruteForce(Instance{D: d, K: 0, B: 1}) {
		t.Error("BruteForce on tree input")
	}
}

// TestCorollary32SingleRelation: with K = 1, the decision is exactly
// |∪GR(D)| ≤ B (Corollary 3.2: ∪GR(D) is the least-cardinality
// treefying relation) — provided GR(D) is connected, where the
// component method is exact.
func TestCorollary32SingleRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	checked := 0
	for trial := 0; trial < 800 && checked < 30; trial++ {
		d := gen.RandomSchema(rng, 3+rng.Intn(2), 3+rng.Intn(3), 0.55)
		gr := gyo.ReduceFull(d).GR
		if gr.Attrs().IsEmpty() || len(gr.Components()) != 1 {
			continue
		}
		checked++
		need := gr.Attrs().Card()
		for _, b := range []int{need - 1, need, need + 1} {
			want := b >= need
			if got := DecideViaBinPacking(Instance{D: d, K: 1, B: b}); got != want {
				t.Fatalf("K=1 B=%d on %s: got %v want %v", b, d, got, want)
			}
			if d.Attrs().Card() <= 8 {
				if got := BruteForce(Instance{D: d, K: 1, B: b}); got != want {
					t.Fatalf("BruteForce K=1 B=%d on %s: got %v want %v", b, d, got, want)
				}
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d cases checked", checked)
	}
}
