package program

import (
	"math/rand"
	"testing"

	"gyokit/internal/gen"
	"gyokit/internal/graph"
	"gyokit/internal/qualgraph"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
	"gyokit/internal/tableau"
)

func parse(t *testing.T, u *schema.Universe, s string) *schema.Schema {
	t.Helper()
	d, err := schema.Parse(u, s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func urdb(d *schema.Schema, seed int64, tuples, domain int) *relation.Database {
	rng := rand.New(rand.NewSource(seed))
	i, _ := relation.RandomUniversal(d.U, d.Attrs(), tuples, domain, rng)
	return relation.URDatabase(d, i)
}

func TestSchemaOfAndSchemaMap(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab, bc")
	p := NewProgram(d)
	p.Stmts = append(p.Stmts,
		Stmt{Kind: Join, Left: 0, Right: 1},                 // id 2: abc
		Stmt{Kind: Project, Left: 2, Proj: u.Set("a", "c")}, // id 3: ac
		Stmt{Kind: Semijoin, Left: 0, Right: 3},             // id 4: ab
	)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.SchemaOf(2); !got.Equal(u.Set("a", "b", "c")) {
		t.Errorf("join schema = %s", u.FormatSet(got))
	}
	if got := p.SchemaOf(3); !got.Equal(u.Set("a", "c")) {
		t.Errorf("project schema = %s", u.FormatSet(got))
	}
	if got := p.SchemaOf(4); !got.Equal(u.Set("a", "b")) {
		t.Errorf("semijoin schema = %s", u.FormatSet(got))
	}
	pd := p.SchemaMap()
	if pd.Len() != 5 {
		t.Errorf("P(D) has %d members", pd.Len())
	}
	if p.ResultID() != 4 {
		t.Errorf("ResultID = %d", p.ResultID())
	}
	if NewProgram(d).ResultID() != -1 {
		t.Error("empty program should have ResultID -1")
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab, bc")
	bad := []Program{
		{D: d, Stmts: []Stmt{{Kind: Join, Left: 0, Right: 5}}},
		{D: d, Stmts: []Stmt{{Kind: Join, Left: -1, Right: 0}}},
		{D: d, Stmts: []Stmt{{Kind: Join, Left: 2, Right: 0}}}, // forward ref
		{D: d, Stmts: []Stmt{{Kind: Project, Left: 0, Proj: u.Set("c")}}},
		{D: d, Stmts: []Stmt{{Kind: StmtKind(9), Left: 0, Right: 1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad program %d accepted", i)
		}
	}
}

func TestEvalStats(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab, bc")
	db := urdb(d, 1, 20, 3)
	p, err := NaivePlan(d, u.Set("a", "c"))
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := p.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	want := db.Eval(u.Set("a", "c"))
	if !res.Equal(want) {
		t.Error("naive plan result wrong")
	}
	if st.Joins != 1 || st.Projects != 1 || st.Semijoins != 0 {
		t.Errorf("stats wrong: %+v", st)
	}
	if len(st.PerStmt) != 2 || st.MaxIntermediate == 0 {
		t.Errorf("per-stmt stats wrong: %+v", st)
	}
	if len(st.Detail) != 2 {
		t.Fatalf("Detail has %d entries, want 2", len(st.Detail))
	}
	// Statement 0 is the join ab ⋈ bc, statement 1 the projection.
	d0, d1 := st.Detail[0], st.Detail[1]
	if d0.Kind != Join || d0.InLeft != db.Rels[0].Card() || d0.InRight != db.Rels[1].Card() {
		t.Errorf("join detail wrong: %+v", d0)
	}
	if d1.Kind != Project || d1.InRight != -1 || d1.InLeft != d0.Out || d1.Out != res.Card() {
		t.Errorf("project detail wrong: %+v", d1)
	}
	for i, d := range st.Detail {
		if d.Out != st.PerStmt[i] {
			t.Errorf("Detail[%d].Out = %d ≠ PerStmt %d", i, d.Out, st.PerStmt[i])
		}
	}
	if st.Table() == "" {
		t.Error("empty stats table")
	}
	// Eval on a mismatched database errors.
	other := urdb(parse(t, u, "ab"), 2, 5, 3)
	if _, _, err := p.Eval(other); err == nil {
		t.Error("schema mismatch accepted")
	}
	empty := NewProgram(d)
	if _, _, err := empty.Eval(db); err == nil {
		t.Error("empty program evaluated")
	}
}

// TestCorollary41CCPlan: joining exactly the CC members (with
// pre-projections) solves (D, X) on UR databases — the §6 worked
// example schema.
func TestCorollary41CCPlan(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "abg, bcg, acf, ad, de, ea")
	x := u.Set("a", "b", "c")
	cc := tableau.CC(d, x)
	plan, err := CCPlan(d, x, cc)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		db := urdb(d, seed, 30, 3)
		got, _, err := plan.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		want := db.Eval(x)
		if !got.Equal(want) {
			t.Fatalf("CC plan wrong on seed %d", seed)
		}
	}
	// The plan must have dropped relations ad, de, ea: only 3 inputs.
	joins := 0
	for _, s := range plan.Stmts {
		if s.Kind == Join {
			joins++
		}
	}
	if joins != 2 {
		t.Errorf("CC plan uses %d joins, want 2 (3 inputs)", joins)
	}
}

// TestTheorem41Necessity: dropping a CC member from the join breaks
// the plan on some UR database.
func TestTheorem41Necessity(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "abg, bcg, acf, ad, de, ea")
	x := u.Set("a", "b", "c")
	// Join only abg and bcg — misses the ac piece of CC.
	plan, err := JoinProject(d, x, []InputRef{{Rel: 0}, {Rel: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Constructed universal relation: two tuples agreeing on b and g
	// but differing on a and c. Joining abg ⋈ bcg manufactures the
	// mixed (a, c) pairs; the acf projection kills them in the real
	// query.
	i := relation.New(u, d.Attrs())
	cols := i.Cols() // sorted attribute order
	mk := func(vals map[string]relation.Value) relation.Tuple {
		tup := make(relation.Tuple, len(cols))
		for k, c := range cols {
			tup[k] = vals[u.Name(c)]
		}
		return tup
	}
	i.Insert(mk(map[string]relation.Value{"a": 0, "b": 0, "c": 0, "d": 0, "e": 0, "f": 0, "g": 0}))
	i.Insert(mk(map[string]relation.Value{"a": 1, "b": 0, "c": 1, "d": 1, "e": 1, "f": 1, "g": 0}))
	db := relation.URDatabase(d, i)
	got, _, err := plan.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	want := db.Eval(x)
	if got.Equal(want) {
		t.Errorf("under-covering plan agreed on the constructed witness:\n got %s\nwant %s", got, want)
	}
	if got.Card() <= want.Card() {
		t.Errorf("under-covering join should overshoot: got %d ≤ want %d", got.Card(), want.Card())
	}
}

// TestFullReducerGlobalConsistency: after the two-pass reducer, every
// relation equals the projection of the full join.
func TestFullReducerGlobalConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		d := gen.TreeSchema(rng, 1+rng.Intn(6), 2, 2)
		tr, ok := qualgraph.QualTree(d)
		if !ok {
			t.Fatal("generated tree schema rejected")
		}
		p, reduced, err := FullReducer(d, tr)
		if err != nil {
			t.Fatal(err)
		}
		i, _ := relation.RandomUniversal(d.U, d.Attrs(), 20, 3, rng)
		db := relation.URDatabase(d, i)
		// Interpret manually to extract all intermediate values.
		vals := make([]*relation.Relation, len(db.Rels), p.NumIDs())
		copy(vals, db.Rels)
		for _, s := range p.Stmts {
			switch s.Kind {
			case Semijoin:
				vals = append(vals, vals[s.Left].Semijoin(vals[s.Right]))
			case Project:
				vals = append(vals, vals[s.Left].Project(s.Proj))
			case Join:
				vals = append(vals, vals[s.Left].Join(vals[s.Right]))
			}
		}
		full := relation.JoinAll(db.Rels)
		for i2, id := range reduced {
			got := vals[id]
			want := full.Project(d.Rels[i2])
			if !got.Equal(want) {
				t.Fatalf("relation %d not globally consistent after full reduction (schema %s)", i2, d)
			}
		}
		// Semijoin count: 2(n−1) ≤ 2|D| (Theorem 6.1's budget).
		semis := 0
		for _, s := range p.Stmts {
			if s.Kind == Semijoin {
				semis++
			}
		}
		if n := len(d.Rels); semis != 2*(n-1) && n > 1 {
			t.Errorf("full reducer used %d semijoins for n=%d", semis, n)
		}
	}
}

// TestYannakakisCorrect: the Yannakakis program computes π_X(⋈D) on
// random tree schemas and UR databases.
func TestYannakakisCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		d := gen.TreeSchema(rng, 1+rng.Intn(6), 2, 2)
		tr, _ := qualgraph.QualTree(d)
		x := gen.RandomAttrSubset(rng, d.Attrs(), 0.4)
		if x.IsEmpty() {
			x = schema.NewAttrSet(d.Attrs().Min())
		}
		p, err := Yannakakis(d, x, tr)
		if err != nil {
			t.Fatal(err)
		}
		db := urdb(d, int64(trial), 25, 3)
		got, _, err := p.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(db.Eval(x)) {
			t.Fatalf("Yannakakis wrong on %s, X=%s", d, d.U.FormatSet(x))
		}
	}
}

// TestYannakakisNonURDatabase: full reduction makes Yannakakis correct
// even on inconsistent (non-UR) databases, where the naive comparison
// is against the join of the given states.
func TestYannakakisNonURDatabase(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	u := schema.NewUniverse()
	d := parse(t, u, "ab, bc, cd")
	tr, _ := qualgraph.QualTree(d)
	x := u.Set("a", "d")
	p, err := Yannakakis(d, x, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Independent random states per relation (not projections of one I).
	db := &relation.Database{D: d}
	for _, r := range d.Rels {
		rr, _ := relation.RandomUniversal(u, r, 15, 3, rng)
		db.Rels = append(db.Rels, rr)
	}
	got, _, err := p.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(db.Eval(x)) {
		t.Error("Yannakakis wrong on non-UR database")
	}
}

func TestYannakakisSingleRelation(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab")
	tr, _ := qualgraph.QualTree(d)
	p, err := Yannakakis(d, u.Set("a"), tr)
	if err != nil {
		t.Fatal(err)
	}
	db := urdb(d, 4, 10, 3)
	got, _, err := p.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(db.Rels[0].Project(u.Set("a"))) {
		t.Error("single-relation Yannakakis wrong")
	}
}

func TestBuilderErrors(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab, bc")
	if _, err := JoinProject(d, u.Set("a"), nil); err == nil {
		t.Error("no inputs accepted")
	}
	if _, err := JoinProject(d, u.Set("a"), []InputRef{{Rel: 7}}); err == nil {
		t.Error("out-of-range input accepted")
	}
	if _, err := JoinProject(d, u.Set("a"), []InputRef{{Rel: 0, Proj: u.Set("c")}}); err == nil {
		t.Error("bad pre-projection accepted")
	}
	if _, err := CCPlan(d, u.Set("a"), &schema.Schema{U: u}); err == nil {
		t.Error("empty CC accepted")
	}
	foreign := &schema.Schema{U: u, Rels: []schema.AttrSet{u.Set("z")}}
	if _, err := CCPlan(d, u.Set("a"), foreign); err == nil {
		t.Error("uncovered CC member accepted")
	}
	tri := parse(t, u, "ab, bc, ac")
	if _, ok := qualgraph.QualTree(tri); ok {
		t.Fatal("triangle should have no qual tree")
	}
	// FullReducer rejects graphs of the wrong size or shape.
	tr, _ := qualgraph.QualTree(d)
	if _, _, err := FullReducer(parse(t, u, "ab"), tr); err == nil {
		t.Error("size mismatch accepted")
	}
	notTree := graph.NewUndirected(2)
	if _, _, err := FullReducer(d, notTree); err == nil {
		t.Error("disconnected graph accepted")
	}
	if _, _, err := FullReducer(&schema.Schema{U: u}, graph.NewUndirected(0)); err == nil {
		t.Error("empty schema accepted")
	}
	u.Attr("z")
	if _, err := Yannakakis(d, u.Set("z"), tr); err == nil {
		t.Error("X ⊄ U(D) accepted")
	}
}
