// Package program implements the query-processing programs of the
// paper's §6: finite sequences of join, project, and semijoin
// statements, each creating a new relation. It provides an interpreter
// with cost accounting, the schema mapping P(D) used by the tree
// projection theorems (6.1–6.4), and the classical plan builders the
// paper's analysis applies to: CC-pruned join plans (Corollary 4.1),
// two-pass semijoin full reducers, and Yannakakis-style evaluation for
// tree schemas.
package program

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"gyokit/internal/graph"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

// StmtKind is the statement type of §6.
type StmtKind int

const (
	// Join: Rk := R_left ⋈ R_right.
	Join StmtKind = iota
	// Project: Rk := π_Proj(R_left).
	Project
	// Semijoin: Rk := R_left ⋉ R_right.
	Semijoin
)

func (k StmtKind) String() string {
	switch k {
	case Join:
		return "join"
	case Project:
		return "project"
	case Semijoin:
		return "semijoin"
	default:
		return "invalid"
	}
}

// Stmt is one program statement. Operand ids refer to the input
// relations (0 … |D|−1) and previously created relations (|D| …).
type Stmt struct {
	Kind        StmtKind
	Left, Right int            // Right is ignored for Project
	Proj        schema.AttrSet // only for Project
}

// Program is a finite statement sequence over input schema D. The
// value of the last statement is the program's answer (§6).
type Program struct {
	D     *schema.Schema
	Stmts []Stmt
}

// NewProgram returns an empty program over d.
func NewProgram(d *schema.Schema) *Program {
	return &Program{D: d}
}

// NumIDs returns the total number of relation ids (inputs + created).
func (p *Program) NumIDs() int { return len(p.D.Rels) + len(p.Stmts) }

// ResultID returns the id holding the program's answer, or -1 for an
// empty program.
func (p *Program) ResultID() int {
	if len(p.Stmts) == 0 {
		return -1
	}
	return p.NumIDs() - 1
}

// SchemaOf returns the (symbolic) relation schema of id.
func (p *Program) SchemaOf(id int) schema.AttrSet {
	n := len(p.D.Rels)
	if id < n {
		return p.D.Rels[id].Clone()
	}
	s := p.Stmts[id-n]
	switch s.Kind {
	case Join:
		return p.SchemaOf(s.Left).Union(p.SchemaOf(s.Right))
	case Project:
		return s.Proj.Clone()
	case Semijoin:
		return p.SchemaOf(s.Left)
	default:
		panic("program: invalid statement kind")
	}
}

// SchemaMap returns P(D): the original schema plus one relation schema
// per created relation, in creation order (§6).
func (p *Program) SchemaMap() *schema.Schema {
	out := p.D.Clone()
	for i := range p.Stmts {
		out.Add(p.SchemaOf(len(p.D.Rels) + i))
	}
	return out
}

// Validate checks statement well-formedness: operand ids must precede
// the statement, and projections must target a subset of the operand.
func (p *Program) Validate() error {
	n := len(p.D.Rels)
	for i, s := range p.Stmts {
		id := n + i
		if s.Left < 0 || s.Left >= id {
			return fmt.Errorf("program: stmt %d: left operand %d out of range", i, s.Left)
		}
		switch s.Kind {
		case Join, Semijoin:
			if s.Right < 0 || s.Right >= id {
				return fmt.Errorf("program: stmt %d: right operand %d out of range", i, s.Right)
			}
		case Project:
			if !s.Proj.SubsetOf(p.SchemaOf(s.Left)) {
				return fmt.Errorf("program: stmt %d: projection %s ⊄ operand schema %s",
					i, p.D.U.FormatSet(s.Proj), p.D.U.FormatSet(p.SchemaOf(s.Left)))
			}
		default:
			return fmt.Errorf("program: stmt %d: invalid kind %d", i, s.Kind)
		}
	}
	return nil
}

// StmtStat is the observed cost of one statement: input and output
// cardinalities plus wall time. InRight is −1 for projections, which
// have a single operand. Shards is 0 when the statement ran serially
// and the shard count when it ran partition-parallel (EvalPar).
type StmtStat struct {
	Kind    StmtKind
	InLeft  int
	InRight int
	Out     int
	Shards  int
	Elapsed time.Duration
}

// Stats records interpreter costs. Detail holds one entry per
// statement with tuples-in/tuples-out and wall time, making the §6
// cost analyses (semijoin programs are cheap; intermediate joins
// dominate) directly observable on real runs.
type Stats struct {
	TuplesProduced   int        // total output tuples over all statements
	MaxIntermediate  int        // largest single intermediate result
	PerStmt          []int      // output cardinality of each statement
	Detail           []StmtStat // per-statement cost breakdown
	Joins            int
	Projects         int
	Semijoins        int
	ParallelStmts    int           // statements that ran partition-parallel
	Repartitions     int           // partitionings built (initial or key change)
	RepartitionBytes int64         // arena bytes moved building those partitionings
	Elapsed          time.Duration // total wall time of the run
}

// Table renders the per-statement cost breakdown as an aligned text
// table, one row per statement.
func (st *Stats) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-9s %10s %10s %10s %14s\n", "#", "op", "in(L)", "in(R)", "out", "time")
	for i, d := range st.Detail {
		right := "-"
		if d.InRight >= 0 {
			right = strconv.Itoa(d.InRight)
		}
		op := d.Kind.String()
		if d.Shards > 0 {
			op += "/p" + strconv.Itoa(d.Shards)
		}
		fmt.Fprintf(&b, "%-4d %-9s %10d %10s %10d %14v\n", i, op, d.InLeft, right, d.Out, d.Elapsed)
	}
	fmt.Fprintf(&b, "total: %d tuples produced, max intermediate %d, %v\n",
		st.TuplesProduced, st.MaxIntermediate, st.Elapsed)
	return b.String()
}

// Eval runs the program over a database state for D and returns the
// final relation (the last statement's value) plus cost statistics.
// It is EvalExec with a throwaway execution context.
func (p *Program) Eval(db *relation.Database) (*relation.Relation, *Stats, error) {
	return p.EvalExec(db, relation.NewExec())
}

// EvalExec is Eval with a caller-supplied execution context: the whole
// statement sequence shares ex, so hash tables and scratch buffers are
// allocated once per run — and a server pooling Exec values across
// requests amortizes them across runs too.
//
// EvalExec never mutates db: input relations are read-only operands
// (every statement materializes a fresh output relation), the Rels
// slice is copied before any statement runs, and db may be a frozen
// snapshot shared by any number of concurrent evaluations. ex, in
// contrast, is exclusive to one run at a time.
func (p *Program) EvalExec(db *relation.Database, ex *relation.Exec) (*relation.Relation, *Stats, error) {
	return p.EvalExecLimits(db, ex, Limits{})
}

// EvalExecLimits is EvalExec bounded by lim: the gas budget and
// deadline are checked at every statement boundary, and a violation
// aborts the run with a *LimitError (errors.Is-matching
// ErrGasExhausted or ErrDeadlineExceeded) and a nil relation.
// Evaluation never mutates db, so an aborted run leaves no partial
// state.
func (p *Program) EvalExecLimits(db *relation.Database, ex *relation.Exec, lim Limits) (*relation.Relation, *Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if !db.D.MultisetEqual(p.D) {
		return nil, nil, fmt.Errorf("program: database schema %s ≠ program schema %s", db.D, p.D)
	}
	if len(p.Stmts) == 0 {
		return nil, nil, fmt.Errorf("program: empty program has no result")
	}
	enforce := lim.active()
	if enforce {
		if err := lim.check(0, 0); err != nil {
			return nil, nil, err
		}
	}
	vals := make([]*relation.Relation, len(db.Rels), p.NumIDs())
	copy(vals, db.Rels)
	st := &Stats{}
	start := time.Now()
	for si, s := range p.Stmts {
		var out *relation.Relation
		d := StmtStat{Kind: s.Kind, InLeft: vals[s.Left].Card(), InRight: -1}
		t0 := time.Now()
		switch s.Kind {
		case Join:
			d.InRight = vals[s.Right].Card()
			out = ex.Join(vals[s.Left], vals[s.Right])
			st.Joins++
		case Project:
			out = ex.Project(vals[s.Left], s.Proj)
			st.Projects++
		case Semijoin:
			d.InRight = vals[s.Right].Card()
			out = ex.Semijoin(vals[s.Left], vals[s.Right])
			st.Semijoins++
		}
		d.Elapsed = time.Since(t0)
		d.Out = out.Card()
		vals = append(vals, out)
		st.Detail = append(st.Detail, d)
		st.PerStmt = append(st.PerStmt, out.Card())
		st.TuplesProduced += out.Card()
		if out.Card() > st.MaxIntermediate {
			st.MaxIntermediate = out.Card()
		}
		if enforce {
			if err := lim.check(si, st.TuplesProduced); err != nil {
				return nil, nil, err
			}
		}
	}
	st.Elapsed = time.Since(start)
	return vals[len(vals)-1], st, nil
}

// InputRef names an input relation and an optional pre-projection
// (empty set means "use the whole relation").
type InputRef struct {
	Rel  int
	Proj schema.AttrSet
}

// JoinProject builds the straight-line plan
//
//	π_X( op(inputs[0]) ⋈ op(inputs[1]) ⋈ … )
//
// where op applies the optional pre-projection of each InputRef. This
// is the plan shape of Corollary 4.1: with inputs covering CC(D, X) it
// solves (D, X) on every UR database.
func JoinProject(d *schema.Schema, x schema.AttrSet, inputs []InputRef) (*Program, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("program: JoinProject needs at least one input")
	}
	p := NewProgram(d)
	n := len(d.Rels)
	ids := make([]int, 0, len(inputs))
	for _, in := range inputs {
		if in.Rel < 0 || in.Rel >= n {
			return nil, fmt.Errorf("program: input relation %d out of range", in.Rel)
		}
		if in.Proj.IsEmpty() || in.Proj.Equal(d.Rels[in.Rel]) {
			ids = append(ids, in.Rel)
			continue
		}
		if !in.Proj.SubsetOf(d.Rels[in.Rel]) {
			return nil, fmt.Errorf("program: pre-projection %s ⊄ R%d = %s",
				d.U.FormatSet(in.Proj), in.Rel, d.U.FormatSet(d.Rels[in.Rel]))
		}
		p.Stmts = append(p.Stmts, Stmt{Kind: Project, Left: in.Rel, Proj: in.Proj})
		ids = append(ids, n+len(p.Stmts)-1)
	}
	acc := ids[0]
	for _, id := range ids[1:] {
		p.Stmts = append(p.Stmts, Stmt{Kind: Join, Left: acc, Right: id})
		acc = n + len(p.Stmts) - 1
	}
	p.Stmts = append(p.Stmts, Stmt{Kind: Project, Left: acc, Proj: x.Clone()})
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// CCPlan builds the Corollary 4.1 plan for (D, X) from a canonical
// connection cc = CC(D, X): each member of cc is matched to a source
// relation of D containing it (pre-projecting when proper), all are
// joined, and the result is projected onto X.
func CCPlan(d *schema.Schema, x schema.AttrSet, cc *schema.Schema) (*Program, error) {
	if cc.Len() == 0 {
		return nil, fmt.Errorf("program: empty canonical connection")
	}
	var inputs []InputRef
	for _, m := range cc.Rels {
		src := -1
		for i, r := range d.Rels {
			if m.SubsetOf(r) {
				src = i
				break
			}
		}
		if src == -1 {
			return nil, fmt.Errorf("program: CC member %s not contained in any relation of D", d.U.FormatSet(m))
		}
		inputs = append(inputs, InputRef{Rel: src, Proj: m})
	}
	return JoinProject(d, x, inputs)
}

// FullReducer builds the two-pass semijoin full reducer for tree
// schema d with qual tree t: a leaf→root pass then a root→leaf pass of
// semijoins. It returns the program and reduced[i] — the id holding
// the fully reduced state of relation i (the program's last statement
// is the reduced root, so the program is well-formed on its own).
// After running it, each reduced relation equals π_{Rᵢ}(⋈ⱼ Rⱼ): the
// database is globally consistent.
func FullReducer(d *schema.Schema, t *graph.Undirected) (*Program, []int, error) {
	return fullReducerRooted(d, t, 0)
}

// fullReducerRooted is FullReducer with an explicit root for the two
// passes. Full reduction is root-independent (any root yields global
// consistency); the parameter exists so Yannakakis variants run both
// phases over one coherent traversal.
func fullReducerRooted(d *schema.Schema, t *graph.Undirected, root int) (*Program, []int, error) {
	n := len(d.Rels)
	if t.N() != n {
		return nil, nil, fmt.Errorf("program: tree has %d nodes, schema has %d relations", t.N(), n)
	}
	if n == 0 {
		return nil, nil, fmt.Errorf("program: empty schema")
	}
	if !t.IsTree() {
		return nil, nil, fmt.Errorf("program: graph is not a tree")
	}
	p := NewProgram(d)
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	if root < 0 || root >= n {
		return nil, nil, fmt.Errorf("program: root %d out of range [0, %d)", root, n)
	}
	emit := func(left, right int) int {
		p.Stmts = append(p.Stmts, Stmt{Kind: Semijoin, Left: left, Right: right})
		return n + len(p.Stmts) - 1
	}
	order, parent := postorder(t, root)
	// Leaf → root: parent absorbs child restrictions.
	for _, v := range order {
		if v == root {
			continue
		}
		cur[parent[v]] = emit(cur[parent[v]], cur[v])
	}
	// Root → leaf: children absorb the now-consistent parents.
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if v == root {
			continue
		}
		cur[v] = emit(cur[v], cur[parent[v]])
	}
	// Make the program's result meaningful: its last statement is the
	// last child reduction; if the tree is a single node there are no
	// statements, so copy the root via a trivial projection.
	if len(p.Stmts) == 0 {
		p.Stmts = append(p.Stmts, Stmt{Kind: Project, Left: root, Proj: d.Rels[root].Clone()})
		cur[root] = n
	}
	return p, cur, nil
}

// postorder returns the vertices of tree t in post-order from root,
// plus the parent array (parent[root] = -1).
func postorder(t *graph.Undirected, root int) (order []int, parent []int) {
	n := t.N()
	parent = make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	seen := make([]bool, n)
	var dfs func(v int)
	dfs = func(v int) {
		seen[v] = true
		for _, w := range t.Neighbors(v) {
			if !seen[w] {
				parent[w] = v
				dfs(w)
			}
		}
		order = append(order, v)
	}
	dfs(root)
	return order, parent
}

// Yannakakis builds a complete program solving (D, X) on tree schema d
// with qual tree t: full reduction followed by a bottom-up join with
// early projection. Each intermediate is projected onto the attributes
// still needed: X restricted to the subtree plus the link to the
// parent. X must be ⊆ U(D).
func Yannakakis(d *schema.Schema, x schema.AttrSet, t *graph.Undirected) (*Program, error) {
	return YannakakisRooted(d, x, t, 0)
}

// YannakakisRooted is Yannakakis with an explicit reduction root. The
// root is where early projection stops helping: every other node keeps
// only its subtree's target attributes plus the link to its parent
// before the parent joins it, but the root's own joins see whatever its
// children send up. A caller that knows which relation covers the
// target — the conjunctive-query planner's free-connex case — roots the
// tree there, so projections push below every join and no intermediate
// materializes attributes outside atom ∪ target widths.
func YannakakisRooted(d *schema.Schema, x schema.AttrSet, t *graph.Undirected, root int) (*Program, error) {
	if !x.SubsetOf(d.Attrs()) {
		return nil, fmt.Errorf("program: target %s ⊄ U(D)", d.U.FormatSet(x))
	}
	p, cur, err := fullReducerRooted(d, t, root)
	if err != nil {
		return nil, err
	}
	n := len(d.Rels)
	order, parent := postorder(t, root)
	// Subtree attribute sets.
	subAttrs := make([]schema.AttrSet, n)
	for _, v := range order { // post-order: children first
		s := d.Rels[v].Clone()
		for _, w := range t.Neighbors(v) {
			if parent[w] == v {
				s = s.Union(subAttrs[w])
			}
		}
		subAttrs[v] = s
	}
	// Bottom-up join with early projection; agg[v] = id of the joined
	// subtree result at v.
	agg := make([]int, n)
	emit := func(s Stmt) int {
		p.Stmts = append(p.Stmts, s)
		return n + len(p.Stmts) - 1
	}
	for _, v := range order {
		id := cur[v]
		for _, w := range t.Neighbors(v) {
			if parent[w] == v {
				id = emit(Stmt{Kind: Join, Left: id, Right: agg[w]})
			}
		}
		// Keep only what is needed above v.
		var keep schema.AttrSet
		if v == root {
			keep = x.Clone()
		} else {
			link := d.Rels[v].Intersect(d.Rels[parent[v]])
			keep = x.Intersect(subAttrs[v]).Union(link)
		}
		curSchema := p.SchemaOf(id)
		keep = keep.Intersect(curSchema)
		if !keep.Equal(curSchema) || v == root {
			id = emit(Stmt{Kind: Project, Left: id, Proj: keep})
		}
		agg[v] = id
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// NaivePlan joins all relations of d in index order and projects onto
// x — the baseline plan that ignores CC pruning and semijoins.
func NaivePlan(d *schema.Schema, x schema.AttrSet) (*Program, error) {
	inputs := make([]InputRef, len(d.Rels))
	for i := range inputs {
		inputs[i] = InputRef{Rel: i}
	}
	return JoinProject(d, x, inputs)
}
