package program

import (
	"fmt"
	"sort"

	"gyokit/internal/gyo"
	"gyokit/internal/qualgraph"
	"gyokit/internal/schema"
)

// CyclicPlan implements the paper's §4 strategy for solving (D, X)
// when D is cyclic:
//
//  1. transform D into a tree schema by adding the single relation
//     schema ∪GR(D) — the optimal choice by Corollary 3.2;
//  2. build a state for the added schema with joins and projects
//     (joining the projections of the relations that survive in GR(D)
//     and projecting onto ∪GR(D)), which reduces the problem to the
//     tree case;
//  3. solve the resulting tree schema with the full-reducer +
//     Yannakakis program.
//
// The returned program runs against databases for the ORIGINAL schema
// D and is correct on arbitrary databases (not just UR ones): the
// materialized relation contains the corresponding projection of the
// full join, so joining it back changes nothing.
//
// For tree schemas it degrades gracefully to the plain Yannakakis
// program.
func CyclicPlan(d *schema.Schema, x schema.AttrSet) (*Program, error) {
	if !x.SubsetOf(d.Attrs()) {
		return nil, fmt.Errorf("program: target %s ⊄ U(D)", d.U.FormatSet(x))
	}
	res := gyo.ReduceFull(d)
	if res.Empty() {
		t, ok := qualgraph.QualTree(d)
		if !ok {
			return nil, fmt.Errorf("program: internal: GYO says tree, qualgraph disagrees on %s", d)
		}
		return Yannakakis(d, x, t)
	}

	// Step 1–2: materialize R_new = π_{∪GR}(⋈ of the GR survivors'
	// projections). Each survivor i currently holds attributes
	// res.GR.Rels[k] ⊆ d.Rels[i]; project the original relation down
	// first so the join runs on the cyclic core only.
	p := NewProgram(d)
	n := len(d.Rels)
	newRel := res.GR.Attrs()
	var ids []int
	for k, i := range res.Alive {
		content := res.GR.Rels[k]
		if content.IsEmpty() {
			continue
		}
		if content.Equal(d.Rels[i]) {
			ids = append(ids, i)
			continue
		}
		p.Stmts = append(p.Stmts, Stmt{Kind: Project, Left: i, Proj: content})
		ids = append(ids, n+len(p.Stmts)-1)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("program: internal: cyclic schema with empty GR core")
	}
	acc := ids[0]
	for _, id := range ids[1:] {
		p.Stmts = append(p.Stmts, Stmt{Kind: Join, Left: acc, Right: id})
		acc = n + len(p.Stmts) - 1
	}
	if !p.SchemaOf(acc).Equal(newRel) {
		p.Stmts = append(p.Stmts, Stmt{Kind: Project, Left: acc, Proj: newRel})
		acc = n + len(p.Stmts) - 1
	}
	newID := acc

	// Step 3: Yannakakis over the extended tree schema D ∪ (R_new)
	// (a tree schema by Theorem 3.2(ii)). We cannot call Yannakakis
	// directly — its program would expect a database with the extra
	// relation — so we build the same statement sequence inline,
	// treating newID as the state of R_new.
	ext := d.WithRel(newRel)
	t, ok := qualgraph.QualTree(ext)
	if !ok {
		return nil, fmt.Errorf("program: internal: D ∪ (∪GR(D)) not a tree schema — Theorem 3.2(ii) violated")
	}
	// Map extended-schema relation index → current program id.
	cur := make([]int, len(ext.Rels))
	for i := 0; i < n; i++ {
		cur[i] = i
	}
	cur[n] = newID

	emit := func(s Stmt) int {
		p.Stmts = append(p.Stmts, s)
		return len(d.Rels) + len(p.Stmts) - 1
	}
	root := 0
	order, parent := postorder(t, root)
	// Full reduction on the extended tree.
	for _, v := range order {
		if v == root {
			continue
		}
		cur[parent[v]] = emit(Stmt{Kind: Semijoin, Left: cur[parent[v]], Right: cur[v]})
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if v == root {
			continue
		}
		cur[v] = emit(Stmt{Kind: Semijoin, Left: cur[v], Right: cur[parent[v]]})
	}
	// Bottom-up join with early projection (same shape as Yannakakis).
	subAttrs := make([]schema.AttrSet, len(ext.Rels))
	for _, v := range order {
		s := ext.Rels[v].Clone()
		for _, w := range t.Neighbors(v) {
			if parent[w] == v {
				s = s.Union(subAttrs[w])
			}
		}
		subAttrs[v] = s
	}
	agg := make([]int, len(ext.Rels))
	for _, v := range order {
		id := cur[v]
		for _, w := range t.Neighbors(v) {
			if parent[w] == v {
				id = emit(Stmt{Kind: Join, Left: id, Right: agg[w]})
			}
		}
		var keep schema.AttrSet
		if v == root {
			keep = x.Clone()
		} else {
			link := ext.Rels[v].Intersect(ext.Rels[parent[v]])
			keep = x.Intersect(subAttrs[v]).Union(link)
		}
		curSchema := p.SchemaOf(id)
		keep = keep.Intersect(curSchema)
		if !keep.Equal(curSchema) || v == root {
			id = emit(Stmt{Kind: Project, Left: id, Proj: keep})
		}
		agg[v] = id
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// GreedyJoinOrder reorders the inputs of a multiway join by repeatedly
// picking the relation sharing the most attributes with what has been
// joined so far (breaking ties toward smaller schemas, then lower
// index). This is the classic heuristic that keeps natural joins from
// degenerating into cross products; used as an ablation baseline in
// the benchmark suite.
func GreedyJoinOrder(d *schema.Schema, idx []int) []int {
	if len(idx) <= 1 {
		return append([]int(nil), idx...)
	}
	rest := append([]int(nil), idx...)
	// Start from the smallest relation schema.
	sort.Slice(rest, func(a, b int) bool {
		ca, cb := d.Rels[rest[a]].Card(), d.Rels[rest[b]].Card()
		if ca != cb {
			return ca < cb
		}
		return rest[a] < rest[b]
	})
	order := []int{rest[0]}
	joined := d.Rels[rest[0]].Clone()
	rest = rest[1:]
	for len(rest) > 0 {
		best := 0
		bestShared := -1
		for i, r := range rest {
			shared := joined.IntersectCard(d.Rels[r])
			if shared > bestShared ||
				(shared == bestShared && d.Rels[r].Card() < d.Rels[rest[best]].Card()) {
				best, bestShared = i, shared
			}
		}
		pick := rest[best]
		order = append(order, pick)
		joined = joined.Union(d.Rels[pick])
		rest = append(rest[:best], rest[best+1:]...)
	}
	return order
}

// JoinProjectOrdered is JoinProject with an explicit join order given
// as indexes into inputs.
func JoinProjectOrdered(d *schema.Schema, x schema.AttrSet, inputs []InputRef, order []int) (*Program, error) {
	if len(order) != len(inputs) {
		return nil, fmt.Errorf("program: order length %d ≠ inputs %d", len(order), len(inputs))
	}
	reordered := make([]InputRef, len(inputs))
	for i, o := range order {
		if o < 0 || o >= len(inputs) {
			return nil, fmt.Errorf("program: order index %d out of range", o)
		}
		reordered[i] = inputs[o]
	}
	return JoinProject(d, x, reordered)
}
