package program

import (
	"math/rand"
	"testing"

	"gyokit/internal/gen"
	"gyokit/internal/gyo"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

// TestCyclicPlanOnRings: the §4 strategy solves (D, X) on Arings,
// agreeing with the naive join on UR databases.
func TestCyclicPlanOnRings(t *testing.T) {
	for n := 3; n <= 6; n++ {
		d := gen.Ring(n)
		attrs := d.Attrs().Attrs()
		x := schema.NewAttrSet(attrs[0], attrs[n/2])
		p, err := CyclicPlan(d, x)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 3; seed++ {
			db := urdb(d, seed, 20, 3)
			got, _, err := p.Eval(db)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(db.Eval(x)) {
				t.Fatalf("cyclic plan wrong on Aring(%d) seed %d", n, seed)
			}
		}
	}
}

// TestCyclicPlanSection6: on the §6 example (cyclic), the plan must
// agree with the naive evaluation.
func TestCyclicPlanSection6(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "abg, bcg, acf, ad, de, ea")
	x := u.Set("a", "b", "c")
	p, err := CyclicPlan(d, x)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		db := urdb(d, seed, 30, 3)
		got, _, err := p.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(db.Eval(x)) {
			t.Fatalf("cyclic plan wrong on seed %d", seed)
		}
	}
}

// TestCyclicPlanNonUR: correctness holds on arbitrary (inconsistent)
// databases too, since the materialized ∪GR(D) relation is itself a
// join of the given states.
func TestCyclicPlanNonUR(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := gen.Ring(4)
	attrs := d.Attrs().Attrs()
	x := schema.NewAttrSet(attrs[0], attrs[2])
	p, err := CyclicPlan(d, x)
	if err != nil {
		t.Fatal(err)
	}
	db := &relation.Database{D: d}
	for _, r := range d.Rels {
		rr, _ := relation.RandomUniversal(d.U, r, 12, 3, rng)
		db.Rels = append(db.Rels, rr)
	}
	got, _, err := p.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(db.Eval(x)) {
		t.Error("cyclic plan wrong on non-UR database")
	}
}

// TestCyclicPlanDegradesToYannakakis: on tree schemas the plan is the
// plain Yannakakis program (no join materialization).
func TestCyclicPlanDegradesToYannakakis(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		d := gen.TreeSchema(rng, 2+rng.Intn(4), 2, 2)
		x := gen.RandomAttrSubset(rng, d.Attrs(), 0.4)
		if x.IsEmpty() {
			x = schema.NewAttrSet(d.Attrs().Min())
		}
		p, err := CyclicPlan(d, x)
		if err != nil {
			t.Fatal(err)
		}
		db := urdb(d, int64(trial), 20, 3)
		got, _, err := p.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(db.Eval(x)) {
			t.Fatalf("degraded plan wrong on %s", d)
		}
	}
}

// TestCyclicPlanRandomCyclicSchemas: random mixed schemas, UR
// databases, against naive evaluation.
func TestCyclicPlanRandomCyclicSchemas(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	checked := 0
	for trial := 0; trial < 80 && checked < 25; trial++ {
		d := gen.RandomSchema(rng, 2+rng.Intn(4), 3+rng.Intn(3), 0.5)
		if gyo.IsTree(d) {
			continue
		}
		checked++
		x := gen.RandomAttrSubset(rng, d.Attrs(), 0.4)
		if x.IsEmpty() {
			x = schema.NewAttrSet(d.Attrs().Min())
		}
		p, err := CyclicPlan(d, x)
		if err != nil {
			t.Fatal(err)
		}
		db := urdb(d, int64(trial), 15, 3)
		got, _, err := p.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(db.Eval(x)) {
			t.Fatalf("cyclic plan wrong on %s X=%s", d, d.U.FormatSet(x))
		}
	}
	if checked < 10 {
		t.Fatalf("only %d cyclic schemas exercised", checked)
	}
}

func TestCyclicPlanErrors(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab, bc, ca")
	u.Attr("z")
	if _, err := CyclicPlan(d, u.Set("z")); err == nil {
		t.Error("X ⊄ U(D) accepted")
	}
}

func TestGreedyJoinOrder(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab, cd, bc, de")
	order := GreedyJoinOrder(d, []int{0, 1, 2, 3})
	// Starting from a smallest relation, every subsequent pick must
	// share attributes with the prefix (no cross products here).
	joined := d.Rels[order[0]].Clone()
	for _, i := range order[1:] {
		if !joined.Intersects(d.Rels[i]) {
			t.Fatalf("greedy order %v introduces a cross product at %d", order, i)
		}
		joined = joined.Union(d.Rels[i])
	}
	if got := GreedyJoinOrder(d, []int{2}); len(got) != 1 || got[2-2] != 2 {
		t.Error("singleton order wrong")
	}
	if got := GreedyJoinOrder(d, nil); len(got) != 0 {
		t.Error("empty order wrong")
	}
}

func TestJoinProjectOrdered(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab, bc, cd")
	x := u.Set("a", "d")
	inputs := []InputRef{{Rel: 0}, {Rel: 1}, {Rel: 2}}
	order := GreedyJoinOrder(d, []int{0, 1, 2})
	p, err := JoinProjectOrdered(d, x, inputs, order)
	if err != nil {
		t.Fatal(err)
	}
	db := urdb(d, 3, 25, 3)
	got, _, err := p.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(db.Eval(x)) {
		t.Error("ordered plan wrong")
	}
	if _, err := JoinProjectOrdered(d, x, inputs, []int{0, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := JoinProjectOrdered(d, x, inputs, []int{0, 1, 9}); err == nil {
		t.Error("out-of-range order accepted")
	}
}
