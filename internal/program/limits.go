package program

import (
	"errors"
	"fmt"
	"time"
)

// Limits bounds one program evaluation — the serving layer's
// multi-tenant safety rails. The zero value means unlimited, and
// EvalExec/EvalPar are exactly EvalExecLimits/EvalParLimits with zero
// Limits.
//
// Both rails are checked at statement boundaries inside the evaluation
// loop: statements themselves are never interrupted, so the overshoot
// past a deadline (or a gas budget) is bounded by one statement's
// work. An aborted run returns a *LimitError and no relation; since
// evaluation never mutates the database, an abort leaves no partial
// state behind.
type Limits struct {
	// MaxTuples is the evaluation's gas: the total tuples all statements
	// may materialize (what Stats.TuplesProduced counts). Exceeding it
	// aborts the run with ErrGasExhausted. Zero or negative means
	// unlimited.
	MaxTuples int
	// Deadline, when nonzero, aborts the run with ErrDeadlineExceeded at
	// the first statement boundary past it.
	Deadline time.Time
}

// active reports whether any rail is set; evaluation skips the
// per-statement checks entirely for zero Limits.
func (l Limits) active() bool { return l.MaxTuples > 0 || !l.Deadline.IsZero() }

// check enforces both rails at a statement boundary: si is the index of
// the last executed statement (or 0 before the first), produced the
// tuples materialized so far.
func (l Limits) check(si, produced int) error {
	if !l.Deadline.IsZero() && time.Now().After(l.Deadline) {
		return &LimitError{Reason: ErrDeadlineExceeded, Stmt: si, Produced: produced, Limits: l}
	}
	if l.MaxTuples > 0 && produced > l.MaxTuples {
		return &LimitError{Reason: ErrGasExhausted, Stmt: si, Produced: produced, Limits: l}
	}
	return nil
}

// Sentinel reasons a limited evaluation aborts with; match with
// errors.Is. The concrete error is always a *LimitError carrying where
// the rail tripped.
var (
	ErrGasExhausted     = errors.New("gas exhausted")
	ErrDeadlineExceeded = errors.New("deadline exceeded")
)

// LimitError reports which rail an evaluation hit and where.
type LimitError struct {
	Reason   error  // ErrGasExhausted or ErrDeadlineExceeded
	Stmt     int    // index of the statement at whose boundary the rail tripped
	Produced int    // tuples materialized before the abort
	Limits   Limits // the rails that were in force
}

func (e *LimitError) Error() string {
	if e.Reason == ErrGasExhausted {
		return fmt.Sprintf("program: gas exhausted at statement %d: %d tuples produced, budget %d",
			e.Stmt, e.Produced, e.Limits.MaxTuples)
	}
	return fmt.Sprintf("program: deadline exceeded at statement %d (%d tuples produced)",
		e.Stmt, e.Produced)
}

func (e *LimitError) Unwrap() error { return e.Reason }
