package program

// Trace spans: the per-statement Detail a run already records, lifted
// into a structured tree. A /solve with "trace": true returns this
// tree, making the §6 cost anatomy of a request (which semijoin
// filtered, which join dominated, what fanned out across shards)
// inspectable per request instead of only in aggregate.

import (
	"fmt"
	"time"
)

// Span is one executed statement of a program run: the operation, the
// relation schema it produced, tuple counts in and out, the shard
// count when it ran partition-parallel, wall time, and the operand
// statements as children. Operand ids (Left/Right) are always
// recorded; Children holds each operand statement's span exactly once
// — a statement consumed twice (e.g. a reduced root absorbed by every
// child in the full reducer's second pass) appears under its first
// consumer and is referenced by id elsewhere, so elapsed times sum
// correctly over the tree.
type Span struct {
	// ID is the statement's relation id (|D| + statement index).
	ID int `json:"id"`
	// Op is "join", "project", or "semijoin".
	Op string `json:"op"`
	// Rel is the produced relation's attribute set, formatted through
	// the program's universe.
	Rel string `json:"rel"`
	// Left and Right are operand relation ids; ids below |D| are input
	// relations. Right is -1 for projections.
	Left  int `json:"left"`
	Right int `json:"right"`
	// InLeft/InRight/Out are operand and result cardinalities; InRight
	// is -1 for projections.
	InLeft  int `json:"inLeft"`
	InRight int `json:"inRight"`
	Out     int `json:"out"`
	// Shards is the partition fan-out (0 = ran serially).
	Shards int `json:"shards,omitempty"`
	// ElapsedNs is the statement's wall time.
	ElapsedNs int64 `json:"elapsedNs"`
	// Children are the operand statements' spans (first-consumer-owned;
	// see type comment).
	Children []*Span `json:"children,omitempty"`
}

// Each visits s and every descendant in depth-first pre-order.
func (s *Span) Each(fn func(*Span)) {
	fn(s)
	for _, c := range s.Children {
		c.Each(fn)
	}
}

// ElapsedSum returns the total statement wall time over the tree. Each
// statement appears exactly once, so this is the run's per-statement
// elapsed sum — always ≤ the run's total Elapsed (which additionally
// covers interpreter overhead between statements).
func (s *Span) ElapsedSum() time.Duration {
	var total time.Duration
	s.Each(func(sp *Span) { total += time.Duration(sp.ElapsedNs) })
	return total
}

// SpanTree builds the span tree of a completed run from its Stats: one
// span per executed statement, rooted at the statement producing the
// program's answer. st must come from evaluating exactly this program
// (Detail aligned with Stmts index-for-index). Statements not reachable
// from the result via operand edges — possible in hand-built programs
// — are attached under the root so the tree always covers every
// executed statement.
func (p *Program) SpanTree(st *Stats) (*Span, error) {
	if len(st.Detail) != len(p.Stmts) {
		return nil, fmt.Errorf("program: stats cover %d statements, program has %d", len(st.Detail), len(p.Stmts))
	}
	if len(p.Stmts) == 0 {
		return nil, fmt.Errorf("program: empty program has no spans")
	}
	n := len(p.D.Rels)
	spans := make([]*Span, len(p.Stmts))
	for i, s := range p.Stmts {
		d := st.Detail[i]
		sp := &Span{
			ID:        n + i,
			Op:        s.Kind.String(),
			Rel:       p.D.U.FormatSet(p.SchemaOf(n + i)),
			Left:      s.Left,
			Right:     s.Right,
			InLeft:    d.InLeft,
			InRight:   d.InRight,
			Out:       d.Out,
			Shards:    d.Shards,
			ElapsedNs: d.Elapsed.Nanoseconds(),
		}
		if s.Kind == Project {
			sp.Right = -1
		}
		spans[i] = sp
	}
	claimed := make([]bool, len(p.Stmts))
	claim := func(parent *Span, id int) {
		if id < n || claimed[id-n] {
			return
		}
		claimed[id-n] = true
		parent.Children = append(parent.Children, spans[id-n])
	}
	for i, s := range p.Stmts {
		claim(spans[i], s.Left)
		if s.Kind != Project {
			claim(spans[i], s.Right)
		}
	}
	root := spans[len(spans)-1]
	for i := 0; i < len(spans)-1; i++ {
		if !claimed[i] {
			root.Children = append(root.Children, spans[i])
		}
	}
	return root, nil
}
