package program

import (
	"fmt"
	"math/rand"
	"testing"

	"gyokit/internal/gen"
	"gyokit/internal/qualgraph"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

// evalBoth runs the program serially and partition-parallel on db and
// asserts identical results and consistent statistics.
func evalBoth(t *testing.T, label string, p *Program, db *relation.Database, pe *relation.ParExec) {
	t.Helper()
	want, wantSt, err := p.Eval(db)
	if err != nil {
		t.Fatalf("%s: serial eval: %v", label, err)
	}
	got, gotSt, err := p.EvalPar(db, pe)
	if err != nil {
		t.Fatalf("%s: parallel eval: %v", label, err)
	}
	if !got.Equal(want) {
		t.Fatalf("%s: parallel result (%d tuples) ≠ serial result (%d tuples)", label, got.Card(), want.Card())
	}
	if gotSt.TuplesProduced != wantSt.TuplesProduced || gotSt.MaxIntermediate != wantSt.MaxIntermediate {
		t.Fatalf("%s: parallel stats (produced %d, max %d) ≠ serial (produced %d, max %d)",
			label, gotSt.TuplesProduced, gotSt.MaxIntermediate, wantSt.TuplesProduced, wantSt.MaxIntermediate)
	}
	for i := range gotSt.PerStmt {
		if gotSt.PerStmt[i] != wantSt.PerStmt[i] {
			t.Fatalf("%s: stmt %d output %d parallel vs %d serial", label, i, gotSt.PerStmt[i], wantSt.PerStmt[i])
		}
	}
}

// TestEvalParDifferential is the acceptance-criteria differential: on
// well over 100 randomized databases, the partition-parallel executor
// must produce exactly the serial executor's result, across plan
// shapes (full reducer, Yannakakis, naive join, cyclic strategy),
// shard counts, and parallelism thresholds (MinParallel 0 forces every
// eligible statement through the parallel path even on tiny inputs).
func TestEvalParDifferential(t *testing.T) {
	cases := 0
	for seed := int64(0); seed < 18; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := gen.TreeSchema(rng, 3+rng.Intn(5), 2, 2)
		tr, ok := qualgraph.QualTree(d)
		if !ok {
			t.Fatalf("seed %d: tree schema rejected", seed)
		}
		attrs := d.Attrs().Attrs()
		x := schema.NewAttrSet(attrs[0], attrs[len(attrs)-1])

		fullRed, _, err := FullReducer(d, tr)
		if err != nil {
			t.Fatalf("seed %d: full reducer: %v", seed, err)
		}
		yan, err := Yannakakis(d, x, tr)
		if err != nil {
			t.Fatalf("seed %d: yannakakis: %v", seed, err)
		}
		naive, err := NaivePlan(d, x)
		if err != nil {
			t.Fatalf("seed %d: naive: %v", seed, err)
		}

		for _, tuples := range []int{1, 40, 300} {
			i, _ := relation.RandomUniversal(d.U, d.Attrs(), tuples, 4+rng.Intn(8), rng)
			db := relation.URDatabase(d, i)
			progs := map[string]*Program{"fullreducer": fullRed, "yannakakis": yan}
			if tuples <= 40 {
				// The unpruned all-relations join can explode on dense
				// random databases; differential it only at small scale.
				progs["naive"] = naive
			}
			for _, p := range []int{2, 4} {
				pe := relation.NewParExec(p)
				pe.MinParallel = 0 // force the parallel path
				for name, prog := range progs {
					evalBoth(t, fmt.Sprintf("seed=%d n=%d p=%d %s", seed, tuples, p, name), prog, db, pe)
					cases++
				}
			}
			// Default threshold: small inputs stay serial but results
			// must still match.
			pe := relation.NewParExec(4)
			evalBoth(t, fmt.Sprintf("seed=%d n=%d default-threshold", seed, tuples), yan, db, pe)
			cases++
		}
	}
	// Cyclic schemas exercise the §4 strategy (join-heavy programs).
	for seed := int64(100); seed < 106; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := gen.RingWithTails(3, 2)
		ringEdge := d.Rels[0].Attrs()
		lastTail := d.Rels[len(d.Rels)-1].Attrs()
		x := schema.NewAttrSet(ringEdge[0], lastTail[len(lastTail)-1])
		plan, err := CyclicPlan(d, x)
		if err != nil {
			t.Fatalf("seed %d: cyclic plan: %v", seed, err)
		}
		i, _ := relation.RandomUniversal(d.U, d.Attrs(), 20+rng.Intn(60), 4+rng.Intn(4), rng)
		db := relation.URDatabase(d, i)
		pe := relation.NewParExec(4)
		pe.MinParallel = 0
		evalBoth(t, fmt.Sprintf("cyclic seed=%d", seed), plan, db, pe)
		cases++
	}
	if cases < 100 {
		t.Fatalf("differential covered only %d randomized databases, want ≥ 100", cases)
	}
	t.Logf("differential covered %d (program, database, parallelism) cases", cases)
}

// TestEvalParStats checks the parallel bookkeeping: statements that
// fan out are counted, their shard count is recorded, and forced
// thresholds behave.
func TestEvalParStats(t *testing.T) {
	d := gen.Chain(5)
	tr, ok := qualgraph.QualTree(d)
	if !ok {
		t.Fatal("chain rejected")
	}
	attrs := d.Attrs().Attrs()
	x := schema.NewAttrSet(attrs[0], attrs[len(attrs)-1])
	plan, err := Yannakakis(d, x, tr)
	if err != nil {
		t.Fatal(err)
	}
	i, _ := relation.RandomUniversal(d.U, d.Attrs(), 2000, 16, gen.RNG(42))
	db := relation.URDatabase(d, i)

	pe := relation.NewParExec(4)
	pe.MinParallel = 0
	_, st, err := plan.EvalPar(db, pe)
	if err != nil {
		t.Fatal(err)
	}
	if st.ParallelStmts == 0 {
		t.Fatal("no statement ran partition-parallel despite MinParallel=0")
	}
	if st.Repartitions == 0 {
		t.Fatal("no partitioning was ever built")
	}
	par := 0
	for _, dt := range st.Detail {
		if dt.Shards != 0 && dt.Shards != 4 {
			t.Fatalf("statement records %d shards, want 0 or 4", dt.Shards)
		}
		if dt.Shards == 4 {
			par++
		}
	}
	if par != st.ParallelStmts {
		t.Fatalf("Detail says %d parallel statements, counter says %d", par, st.ParallelStmts)
	}

	// A sky-high threshold must keep everything serial.
	pe2 := relation.NewParExec(4)
	pe2.MinParallel = 1 << 30
	_, st2, err := plan.EvalPar(db, pe2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ParallelStmts != 0 {
		t.Fatalf("%d statements fanned out despite a prohibitive threshold", st2.ParallelStmts)
	}
}

// TestEvalParSingleWorker: P=1 must be exactly the serial path.
func TestEvalParSingleWorker(t *testing.T) {
	d := gen.Chain(4)
	tr, _ := qualgraph.QualTree(d)
	attrs := d.Attrs().Attrs()
	x := schema.NewAttrSet(attrs[0], attrs[len(attrs)-1])
	plan, err := Yannakakis(d, x, tr)
	if err != nil {
		t.Fatal(err)
	}
	i, _ := relation.RandomUniversal(d.U, d.Attrs(), 100, 8, gen.RNG(7))
	db := relation.URDatabase(d, i)
	pe := relation.NewParExec(1)
	evalBoth(t, "p=1", plan, db, pe)
}

// TestEvalParDoesNotMutateDatabase mirrors the Eval purity guarantee
// for the parallel path: frozen snapshot relations must be usable.
func TestEvalParDoesNotMutateDatabase(t *testing.T) {
	d := gen.Chain(4)
	tr, _ := qualgraph.QualTree(d)
	attrs := d.Attrs().Attrs()
	x := schema.NewAttrSet(attrs[0], attrs[len(attrs)-1])
	plan, err := Yannakakis(d, x, tr)
	if err != nil {
		t.Fatal(err)
	}
	i, _ := relation.RandomUniversal(d.U, d.Attrs(), 500, 8, gen.RNG(21))
	db := relation.URDatabase(d, i)
	db.Freeze()
	before := make([]*relation.Relation, len(db.Rels))
	for k, r := range db.Rels {
		before[k] = r.Clone()
	}
	pe := relation.NewParExec(4)
	pe.MinParallel = 0
	if _, _, err := plan.EvalPar(db, pe); err != nil {
		t.Fatal(err)
	}
	for k, r := range db.Rels {
		if !r.Equal(before[k]) {
			t.Fatalf("relation %d mutated by EvalPar", k)
		}
	}
}
