package program

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"gyokit/internal/qualgraph"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

// limitsFixture builds a chain-schema Yannakakis program and a database
// whose evaluation produces a known, nonzero number of tuples.
func limitsFixture(t *testing.T) (*Program, *relation.Database) {
	t.Helper()
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc, cd")
	tr, ok := qualgraph.QualTree(d)
	if !ok {
		t.Fatal("chain schema rejected as tree")
	}
	p, err := Yannakakis(d, u.Set("a", "d"), tr)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	i, _ := relation.RandomUniversal(u, d.Attrs(), 200, 4, rng)
	return p, relation.URDatabase(d, i)
}

func TestGasExhausted(t *testing.T) {
	p, db := limitsFixture(t)

	// Establish the unlimited cost, then set the budget just below it.
	out, st, err := p.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if st.TuplesProduced == 0 {
		t.Fatal("fixture produced no tuples; the gas rail has nothing to trip on")
	}
	want := out

	lim := Limits{MaxTuples: st.TuplesProduced - 1}
	out, st2, err := p.EvalExecLimits(db, relation.NewExec(), lim)
	if err == nil {
		t.Fatal("evaluation under an insufficient gas budget succeeded")
	}
	if out != nil || st2 != nil {
		t.Error("aborted evaluation returned partial state")
	}
	if !errors.Is(err, ErrGasExhausted) {
		t.Errorf("err = %v, want ErrGasExhausted", err)
	}
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %T, want *LimitError", err)
	}
	if le.Produced <= lim.MaxTuples {
		t.Errorf("LimitError.Produced = %d, want > budget %d", le.Produced, lim.MaxTuples)
	}

	// An exactly-sufficient budget succeeds with the same answer: the
	// rail is > budget, not ≥.
	out, _, err = p.EvalExecLimits(db, relation.NewExec(), Limits{MaxTuples: st.TuplesProduced})
	if err != nil {
		t.Fatalf("evaluation under an exact budget: %v", err)
	}
	if !out.Equal(want) {
		t.Error("limited evaluation changed the answer")
	}
}

func TestDeadlineExceeded(t *testing.T) {
	p, db := limitsFixture(t)

	lim := Limits{Deadline: time.Now().Add(-time.Millisecond)}
	out, st, err := p.EvalExecLimits(db, relation.NewExec(), lim)
	if err == nil {
		t.Fatal("evaluation past its deadline succeeded")
	}
	if out != nil || st != nil {
		t.Error("aborted evaluation returned partial state")
	}
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("err = %v, want ErrDeadlineExceeded", err)
	}

	// A generous deadline does not perturb the run.
	if _, _, err := p.EvalExecLimits(db, relation.NewExec(), Limits{Deadline: time.Now().Add(time.Minute)}); err != nil {
		t.Fatalf("evaluation under a generous deadline: %v", err)
	}
}

// TestEvalParLimits drives both rails through the parallel path (run
// under -race in CI: the abort must not leak worker state).
func TestEvalParLimits(t *testing.T) {
	p, db := limitsFixture(t)
	pe := relation.NewParExec(4)
	pe.MinParallel = 0 // force every eligible statement parallel

	_, st, err := p.EvalParLimits(db, pe, Limits{})
	if err != nil {
		t.Fatal(err)
	}

	out, st2, err := p.EvalParLimits(db, pe, Limits{MaxTuples: st.TuplesProduced - 1})
	if !errors.Is(err, ErrGasExhausted) {
		t.Errorf("parallel gas err = %v, want ErrGasExhausted", err)
	}
	if out != nil || st2 != nil {
		t.Error("aborted parallel evaluation returned partial state")
	}

	out, _, err = p.EvalParLimits(db, pe, Limits{Deadline: time.Now().Add(-time.Millisecond)})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("parallel deadline err = %v, want ErrDeadlineExceeded", err)
	}
	if out != nil {
		t.Error("aborted parallel evaluation returned a relation")
	}

	// The serial-downgrade path (P ≤ 1) enforces limits too.
	pe1 := relation.NewParExec(1)
	if _, _, err := p.EvalParLimits(db, pe1, Limits{MaxTuples: 1}); !errors.Is(err, ErrGasExhausted) {
		t.Errorf("serial-downgrade gas err = %v, want ErrGasExhausted", err)
	}
}
