package program

import (
	"testing"

	"gyokit/internal/qualgraph"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

// TestEvalDoesNotMutateDatabase is the regression test for the serving
// layer's core assumption: Eval treats the input database as read-only,
// so one frozen snapshot can back any number of concurrent evaluations.
// It runs the heaviest program shapes (full reducer + Yannakakis, whose
// semijoin reductions are exactly the statements that would be tempted
// to overwrite input relations in place, and the §4 cyclic strategy)
// and checks tuple-level equality of every input relation afterwards.
func TestEvalDoesNotMutateDatabase(t *testing.T) {
	cases := []struct {
		name, schema, x string
	}{
		{"yannakakis-chain", "ab, bc, cd, de", "ae"},
		{"cyclic-section6", "abg, bcg, acf, ad, de, ea", "abc"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := schema.NewUniverse()
			d := parse(t, u, tc.schema)
			x := schema.MustSet(u, tc.x)
			db := urdb(d, 7, 60, 5)
			plan, err := CyclicPlan(d, x)
			if err != nil {
				t.Fatal(err)
			}

			// Deep-copy the database state for the after-run comparison,
			// and freeze the original: any in-place write now panics.
			before := make([]*relation.Relation, len(db.Rels))
			for i, r := range db.Rels {
				before[i] = r.Clone()
			}
			rels := append([]*relation.Relation(nil), db.Rels...)
			db.Freeze()

			want, _, err := plan.Eval(db)
			if err != nil {
				t.Fatal(err)
			}
			// A second run on the same frozen snapshot must agree.
			got, _, err := plan.Eval(db)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Error("second Eval on the same snapshot disagrees with the first")
			}

			for i := range db.Rels {
				if db.Rels[i] != rels[i] {
					t.Errorf("Eval replaced db.Rels[%d]", i)
				}
				if !db.Rels[i].Equal(before[i]) {
					t.Errorf("Eval changed the tuples of db.Rels[%d]:\n before %s\n after  %s",
						i, before[i], db.Rels[i])
				}
			}
		})
	}
}

// TestEvalExecReuse runs many evaluations through one Exec and checks
// they all agree with a fresh-context run — scratch-state leakage
// between runs would surface as a wrong result.
func TestEvalExecReuse(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab, bc, cd")
	tr, ok := qualgraph.QualTree(d)
	if !ok {
		t.Fatal("chain rejected")
	}
	x := u.Set("a", "d")
	plan, err := Yannakakis(d, x, tr)
	if err != nil {
		t.Fatal(err)
	}
	ex := relation.NewExec()
	for seed := int64(0); seed < 5; seed++ {
		db := urdb(d, seed, 40, 4)
		want, _, err := plan.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := plan.EvalExec(db, ex)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("seed %d: pooled-Exec run disagrees with fresh run", seed)
		}
	}
}
