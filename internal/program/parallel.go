package program

import (
	"fmt"
	"time"

	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

// EvalPar runs the program partition-parallel: join and semijoin
// statements whose operands are large enough are executed shard-local
// across pe's workers, with relations hash-partitioned on the
// statement's shared attributes.
//
// The partitioning discipline mirrors the way a distributed full
// reducer would shard (Kolaitis's semijoin passes, Greco–Scarcello's
// local-consistency unit): each relation id carries at most one live
// partitioning; a statement whose join key equals that key runs with
// zero repartitioning, otherwise the operand is repartitioned on
// demand (directly shard-to-shard, never through a merged
// intermediate). Results of parallel statements stay partitioned —
// they are merged into a plain relation only when a serial statement,
// an incompatible projection, or the final answer needs one.
//
// EvalPar returns exactly the relation Eval would (relations are sets;
// differential tests assert Equal against the serial path), and the
// same Stats totals, with per-statement Shards and the run's
// ParallelStmts/Repartitions counters recording what actually fanned
// out. Like EvalExec it never mutates db; pe is exclusive to one run.
func (p *Program) EvalPar(db *relation.Database, pe *relation.ParExec) (*relation.Relation, *Stats, error) {
	return p.EvalParLimits(db, pe, Limits{})
}

// EvalParLimits is EvalPar bounded by lim, with the same semantics as
// EvalExecLimits: both rails are checked at every statement boundary
// (parallel statements are never interrupted mid-flight — the overshoot
// is bounded by one statement), a violation aborts with a *LimitError,
// and the aborted run leaves no partial state.
func (p *Program) EvalParLimits(db *relation.Database, pe *relation.ParExec, lim Limits) (*relation.Relation, *Stats, error) {
	if pe.P() <= 1 {
		return p.EvalExecLimits(db, pe.Serial(), lim)
	}
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if !db.D.MultisetEqual(p.D) {
		return nil, nil, fmt.Errorf("program: database schema %s ≠ program schema %s", db.D, p.D)
	}
	if len(p.Stmts) == 0 {
		return nil, nil, fmt.Errorf("program: empty program has no result")
	}
	enforce := lim.active()
	if enforce {
		if err := lim.check(0, 0); err != nil {
			return nil, nil, err
		}
	}

	n := len(db.Rels)
	ids := p.NumIDs()
	// Each id holds its value in exactly one live form at a time:
	// vals[id] (plain relation) or parts[id] (partitioned). attrsOf is
	// tracked incrementally so neither form is needed to plan a
	// statement.
	vals := make([]*relation.Relation, ids)
	copy(vals, db.Rels)
	parts := make([]*relation.Partitioning, ids)
	attrsOf := make([]schema.AttrSet, ids)
	for i, r := range db.Rels {
		attrsOf[i] = r.Attrs()
	}

	st := &Stats{}
	cardOf := func(id int) int {
		if vals[id] != nil {
			return vals[id].Card()
		}
		return parts[id].Card()
	}
	materialize := func(id int) *relation.Relation {
		if vals[id] == nil {
			vals[id] = pe.MergePar(parts[id])
		}
		return vals[id]
	}
	// ensurePart returns id's value partitioned on key, reusing the
	// live partitioning when its key already matches (the zero-traffic
	// case) and repartitioning on demand otherwise.
	ensurePart := func(id int, key schema.AttrSet) *relation.Partitioning {
		if pt := parts[id]; pt != nil && pt.Key.Equal(key) {
			return pt
		}
		var pt *relation.Partitioning
		if vals[id] != nil {
			pt = pe.Partition(vals[id], key)
		} else {
			pt = pe.Repartition(parts[id], key)
		}
		parts[id] = pt
		st.Repartitions++
		st.RepartitionBytes += pt.Bytes()
		return pt
	}
	setPart := func(id int, pt *relation.Partitioning) {
		parts[id] = pt
		vals[id] = nil
	}

	start := time.Now()
	for si, s := range p.Stmts {
		id := n + si
		d := StmtStat{Kind: s.Kind, InLeft: cardOf(s.Left), InRight: -1}
		t0 := time.Now()
		switch s.Kind {
		case Join, Semijoin:
			d.InRight = cardOf(s.Right)
			key := attrsOf[s.Left].Intersect(attrsOf[s.Right])
			if key.IsEmpty() || d.InLeft+d.InRight < pe.MinParallel {
				// Cross products cannot be sharded without replication;
				// small statements are not worth the fan-out.
				l, r := materialize(s.Left), materialize(s.Right)
				if s.Kind == Join {
					vals[id] = pe.Serial().Join(l, r)
				} else {
					vals[id] = pe.Serial().Semijoin(l, r)
				}
			} else {
				pl := ensurePart(s.Left, key)
				pr := ensurePart(s.Right, key)
				if s.Kind == Join {
					setPart(id, pe.JoinPar(pl, pr))
				} else {
					setPart(id, pe.SemijoinPar(pl, pr))
				}
				d.Shards = pe.P()
				st.ParallelStmts++
			}
			if s.Kind == Join {
				attrsOf[id] = attrsOf[s.Left].Union(attrsOf[s.Right])
				st.Joins++
			} else {
				attrsOf[id] = attrsOf[s.Left]
				st.Semijoins++
			}
		case Project:
			// Shard-local only when the operand is already partitioned
			// and the key survives the projection; repartitioning just
			// to project would cost as much as the projection itself.
			if pt := parts[s.Left]; vals[s.Left] == nil && !pt.Key.IsEmpty() && pt.Key.SubsetOf(s.Proj) {
				setPart(id, pe.ProjectPar(pt, s.Proj))
				d.Shards = pe.P()
				st.ParallelStmts++
			} else {
				vals[id] = pe.Serial().Project(materialize(s.Left), s.Proj)
			}
			attrsOf[id] = s.Proj.Clone()
			st.Projects++
		}
		d.Elapsed = time.Since(t0)
		d.Out = cardOf(id)
		st.Detail = append(st.Detail, d)
		st.PerStmt = append(st.PerStmt, d.Out)
		st.TuplesProduced += d.Out
		if d.Out > st.MaxIntermediate {
			st.MaxIntermediate = d.Out
		}
		if enforce {
			if err := lim.check(si, st.TuplesProduced); err != nil {
				return nil, nil, err
			}
		}
	}
	out := materialize(ids - 1)
	st.Elapsed = time.Since(start)
	return out, st, nil
}
