// Package repl implements leader/follower log-shipping replication
// for gyod. The leader side is Streamer, an HTTP handler serving the
// /v1/repl/ feed: an initial-sync snapshot in the chunk-store format,
// then WAL records streamed from a (segment, offset) cursor in the
// store's own CRC framing. The follower side is Tailer, which
// bootstraps from the snapshot and re-applies each shipped batch
// through the engine's append-then-publish path into its own WAL, so
// a follower can crash-recover, be re-pointed at the same leader, or
// be promoted into a leader without a rewrite.
package repl

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"gyokit/internal/storage"
)

// Feed wire format. A /v1/repl/wal response is one preamble followed
// by FrameBytes of raw WAL frames (each [u32 len][u32 crc][payload],
// exactly as the leader's segment files hold them — the follower
// re-verifies every CRC, so a byte flipped in transit can never be
// applied). A /v1/repl/snapshot response is one snapshot header
// followed by the storage snapshot stream.
const (
	feedMagic = "GYOFEED1"
	snapMagic = "GYOSNAP1"

	preambleLen   = 88 // magic(8) id(8) req(16) next(16) tip(16) lag(8) appends(8) frameBytes(4) crc(4)
	snapHeaderLen = 36 // magic(8) id(8) cursor(16) crc(4)

	// maxFeedFrameBytes bounds a single response's frame section. The
	// server clamps the client's max= to this; the client refuses to
	// buffer more. A single WAL frame can legitimately exceed the
	// default window (ReadWAL returns oversized frames whole), so the
	// bound is generous but still far below maxRecordSize.
	maxFeedFrameBytes = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// preamble is the fixed header of every /v1/repl/wal response.
type preamble struct {
	StoreID uint64
	// Req echoes the request cursor, so a follower can detect a
	// mismatched or cached response before applying anything.
	Req storage.Cursor
	// Next is the cursor after consuming this response's frames. It can
	// advance past Req with zero frames — a rotation hop to the next
	// segment's first record position.
	Next storage.Cursor
	// Tip is the leader's durable WAL tail at read time.
	Tip storage.Cursor
	// LagBytes is the leader-computed acknowledged bytes between Next
	// and Tip (segment headers excluded); 0 means caught up.
	LagBytes int64
	// Appends is the leader's batch-append counter since its last
	// restart — the anchor for the follower's lag-in-records estimate.
	// A regression means the leader restarted; the follower de-anchors.
	Appends uint64
	// FrameBytes is the length of the frame section after the preamble.
	FrameBytes uint32
}

func appendCursor(dst []byte, c storage.Cursor) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, c.Seg)
	return binary.LittleEndian.AppendUint64(dst, uint64(c.Off))
}

func readCursor(b []byte) storage.Cursor {
	return storage.Cursor{
		Seg: binary.LittleEndian.Uint64(b),
		Off: int64(binary.LittleEndian.Uint64(b[8:])),
	}
}

func encodePreamble(p preamble) []byte {
	buf := make([]byte, 0, preambleLen)
	buf = append(buf, feedMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, p.StoreID)
	buf = appendCursor(buf, p.Req)
	buf = appendCursor(buf, p.Next)
	buf = appendCursor(buf, p.Tip)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(p.LagBytes))
	buf = binary.LittleEndian.AppendUint64(buf, p.Appends)
	buf = binary.LittleEndian.AppendUint32(buf, p.FrameBytes)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

func decodePreamble(b []byte) (preamble, error) {
	var p preamble
	if len(b) < preambleLen {
		return p, fmt.Errorf("repl: short feed preamble: %d bytes", len(b))
	}
	b = b[:preambleLen]
	if string(b[:8]) != feedMagic {
		return p, fmt.Errorf("repl: bad feed magic %q", b[:8])
	}
	if got, want := binary.LittleEndian.Uint32(b[84:]), crc32.Checksum(b[:84], crcTable); got != want {
		return p, fmt.Errorf("repl: feed preamble checksum mismatch")
	}
	p.StoreID = binary.LittleEndian.Uint64(b[8:])
	p.Req = readCursor(b[16:])
	p.Next = readCursor(b[32:])
	p.Tip = readCursor(b[48:])
	p.LagBytes = int64(binary.LittleEndian.Uint64(b[64:]))
	p.Appends = binary.LittleEndian.Uint64(b[72:])
	p.FrameBytes = binary.LittleEndian.Uint32(b[80:])
	if p.Req.Off < 0 || p.Next.Off < 0 || p.Tip.Off < 0 {
		return p, fmt.Errorf("repl: negative cursor offset in feed preamble")
	}
	if p.FrameBytes > maxFeedFrameBytes {
		return p, fmt.Errorf("repl: feed frame section %d exceeds the %d limit", p.FrameBytes, maxFeedFrameBytes)
	}
	return p, nil
}

// encodeSnapHeader frames a snapshot stream: the leader's identity and
// the WAL cursor the snapshot is consistent with — the position the
// follower starts tailing from.
func encodeSnapHeader(storeID uint64, c storage.Cursor) []byte {
	buf := make([]byte, 0, snapHeaderLen)
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, storeID)
	buf = appendCursor(buf, c)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

func decodeSnapHeader(b []byte) (storeID uint64, c storage.Cursor, err error) {
	if len(b) < snapHeaderLen {
		return 0, c, fmt.Errorf("repl: short snapshot header: %d bytes", len(b))
	}
	b = b[:snapHeaderLen]
	if string(b[:8]) != snapMagic {
		return 0, c, fmt.Errorf("repl: bad snapshot magic %q", b[:8])
	}
	if got, want := binary.LittleEndian.Uint32(b[32:]), crc32.Checksum(b[:32], crcTable); got != want {
		return 0, c, fmt.Errorf("repl: snapshot header checksum mismatch")
	}
	storeID = binary.LittleEndian.Uint64(b[8:])
	c = readCursor(b[16:])
	if c.Off < 0 {
		return 0, c, fmt.Errorf("repl: negative cursor offset in snapshot header")
	}
	return storeID, c, nil
}
