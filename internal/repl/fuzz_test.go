package repl

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"gyokit/internal/storage"
)

// frame builds one wire frame around payload, optionally with a wrong
// CRC — the raw material for torn/corrupt feed seeds.
func frame(payload []byte, corrupt bool) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	crc := crc32.Checksum(payload, crcTable)
	if corrupt {
		crc ^= 0x8000
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return append(buf, payload...)
}

// FuzzReplStream hammers the replication wire decoders with arbitrary
// bytes: the feed preamble, the snapshot header, and the frame
// splitter that gates what a follower may apply. The invariants are
// the ones "never apply a partial batch" rests on — SplitFrames must
// be total (no panic on torn records, bit flips, or mid-rotation
// cuts), must only yield CRC-verified whole frames, and must account
// for exactly the bytes those frames occupy.
func FuzzReplStream(f *testing.F) {
	// Seeds: a valid response head, valid frames, torn and corrupt ones.
	pre := encodePreamble(preamble{
		StoreID: 7, Req: storage.Cursor{Seg: 1, Off: 8},
		Next: storage.Cursor{Seg: 1, Off: 64}, Tip: storage.Cursor{Seg: 2, Off: 8},
		Appends: 3, FrameBytes: 56,
	})
	good := frame([]byte("some batch payload"), false)
	f.Add(append(append([]byte{}, pre...), good...))
	f.Add(good)
	f.Add(append(append([]byte{}, good...), good[:len(good)-3]...)) // torn second frame
	f.Add(frame([]byte("flipped"), true))                           // CRC mismatch
	f.Add(encodeSnapHeader(42, storage.Cursor{Seg: 3, Off: 4096}))
	f.Add(binary.LittleEndian.AppendUint32([]byte(nil), 1<<31)) // absurd length prefix
	f.Add([]byte(feedMagic))

	f.Fuzz(func(t *testing.T, data []byte) {
		if p, err := decodePreamble(data); err == nil {
			if !bytes.Equal(encodePreamble(p), data[:preambleLen]) {
				t.Fatalf("preamble decode/encode not a round trip for %x", data[:preambleLen])
			}
		}
		if id, c, err := decodeSnapHeader(data); err == nil {
			if !bytes.Equal(encodeSnapHeader(id, c), data[:snapHeaderLen]) {
				t.Fatalf("snapshot header decode/encode not a round trip for %x", data[:snapHeaderLen])
			}
		}

		payloads, consumed := storage.SplitFrames(data)
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("SplitFrames consumed %d of %d bytes", consumed, len(data))
		}
		sum := 0
		for _, pl := range payloads {
			// Every yielded frame really is CRC-clean: flipping any of its
			// bits would have stopped the split before it.
			want := binary.LittleEndian.Uint32(data[sum+4:])
			if got := crc32.Checksum(pl, crcTable); got != want {
				t.Fatalf("SplitFrames yielded a frame whose CRC does not verify (%08x != %08x)", got, want)
			}
			sum += storage.FrameOverhead + len(pl)
			// What the splitter admits is what a follower would hand to
			// the batch decoder; it must never panic on it.
			_, _ = storage.DecodeBatch(pl)
		}
		if sum != consumed {
			t.Fatalf("frames cover %d bytes but SplitFrames consumed %d", sum, consumed)
		}
		// Re-splitting the consumed prefix must be a fixpoint: same
		// frames, everything consumed.
		again, c2 := storage.SplitFrames(data[:consumed])
		if c2 != consumed || len(again) != len(payloads) {
			t.Fatalf("re-split of the consumed prefix differs: %d/%d frames, %d/%d bytes",
				len(again), len(payloads), c2, consumed)
		}
	})
}
