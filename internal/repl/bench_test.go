package repl

import (
	"testing"

	"gyokit/internal/engine"
	"gyokit/internal/relation"
	"gyokit/internal/storage"
)

// BenchmarkReplApply measures the follower's apply path: CRC-verified
// wire frames through batch decode, the replica's own WAL append (with
// the CursorMark ride-along), and snapshot publication. The frames are
// produced by a real leader store and read back through ReadWAL, so
// the bytes are exactly what the feed ships.
func BenchmarkReplApply(b *testing.B) {
	const (
		batches = 64
		rows    = 16
	)
	// A scratch leader produces the wire frames.
	src, err := storage.Open(b.TempDir(), storage.Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	if err := src.Append([]storage.Mutation{storage.Create("a", "b")}); err != nil {
		b.Fatal(err)
	}
	schemaTail := src.TailCursor()
	tuples := make([]relation.Tuple, rows)
	for i := range batches {
		for j := range tuples {
			tuples[j] = relation.Tuple{relation.Value(i), relation.Value(j)}
		}
		if err := src.Append([]storage.Mutation{storage.Insert(0, 2, tuples)}); err != nil {
			b.Fatal(err)
		}
	}
	var frames []byte
	for cur := schemaTail; ; {
		win, err := src.ReadWAL(cur, 1<<26)
		if err != nil {
			b.Fatal(err)
		}
		frames = append(frames, win.Frames...)
		if win.Next == cur {
			break
		}
		cur = win.Next
	}

	// The replica under measurement.
	st, err := storage.Open(b.TempDir(), storage.Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	e := engine.New(engine.Options{Store: st})
	if _, _, err := e.ApplyReplica(storage.Create("a", "b")); err != nil {
		b.Fatal(err)
	}
	tailer := &Tailer{e: e, store: st}

	b.SetBytes(int64(len(frames)))
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		// Re-applying the same inserts is set-semantics idempotent, so
		// every iteration exercises the identical decode+append+publish
		// work without compounding state.
		if _, applied, consumed, err := tailer.applyFrames(storage.Cursor{Seg: 1, Off: 8}, frames); err != nil {
			b.Fatal(err)
		} else if applied != batches || consumed != len(frames) {
			b.Fatalf("applied %d/%d batches, consumed %d/%d bytes", applied, batches, consumed, len(frames))
		}
	}
}
