package repl

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gyokit/internal/engine"
	"gyokit/internal/relation"
	"gyokit/internal/storage"
)

// leaderNode is a durable engine plus the replication feed over HTTP.
type leaderNode struct {
	e  *engine.Engine
	st *storage.Store
	ts *httptest.Server
}

func newLeader(t *testing.T, opt storage.Options) *leaderNode {
	t.Helper()
	opt.NoSync = true
	st, err := storage.Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	e := engine.New(engine.Options{Store: st})
	mux := http.NewServeMux()
	mux.Handle("/v1/repl/", NewStreamer(e, nil, t.Logf))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return &leaderNode{e: e, st: st, ts: ts}
}

// seed applies the schema plus a first batch of rows on the leader.
func (l *leaderNode) seed(t *testing.T) {
	t.Helper()
	if _, _, err := l.e.Apply(storage.Create("a", "b"), storage.Create("b", "c")); err != nil {
		t.Fatal(err)
	}
	l.insert(t, 0, relation.Tuple{1, 2}, relation.Tuple{3, 4})
}

func (l *leaderNode) insert(t *testing.T, rel int, tuples ...relation.Tuple) {
	t.Helper()
	if _, _, err := l.e.Apply(storage.Insert(rel, 2, tuples)); err != nil {
		t.Fatal(err)
	}
}

// followerNode is a bootstrapped replica over its own store.
type followerNode struct {
	dir    string
	e      *engine.Engine
	st     *storage.Store
	tailer *Tailer
}

func newFollower(t *testing.T, leaderURL string, cfg Config) *followerNode {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "replica")
	if err := Bootstrap(dir, leaderURL, nil, t.Logf); err != nil {
		t.Fatal(err)
	}
	f := &followerNode{dir: dir}
	f.open(t, leaderURL, cfg)
	return f
}

// open (re)opens the replica's store, engine, and tailer.
func (f *followerNode) open(t *testing.T, leaderURL string, cfg Config) {
	t.Helper()
	st, err := storage.Open(f.dir, storage.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	f.st = st
	f.e = engine.New(engine.Options{Store: st})
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	if cfg.PollWait == 0 {
		cfg.PollWait = 200 * time.Millisecond
	}
	tl, err := NewTailer(f.e, f.dir, leaderURL, cfg)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	f.tailer = tl
	t.Cleanup(func() {
		f.tailer.Stop()
		f.st.Close()
	})
	tl.Start()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// caughtUp reports whether the replica has applied everything the
// leader acknowledged.
func caughtUp(f *followerNode, l *leaderNode) bool {
	st := f.tailer.ReplicaStatus()
	tip := l.st.TailCursor()
	return st.LagBytes == 0 && st.CursorSeg == tip.Seg && st.CursorOff == tip.Off
}

func dbEqual(a, b *relation.Database) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.D.String() != b.D.String() || len(a.Rels) != len(b.Rels) {
		return false
	}
	for i := range a.Rels {
		if a.Rels[i].Card() != b.Rels[i].Card() {
			return false
		}
		for j := 0; j < a.Rels[i].Card(); j++ {
			if !b.Rels[i].Has(a.Rels[i].TupleAt(j)) {
				return false
			}
		}
	}
	return true
}

func TestReplicationEndToEnd(t *testing.T) {
	l := newLeader(t, storage.Options{})
	l.seed(t)
	f := newFollower(t, l.ts.URL, Config{})

	waitFor(t, "initial catch-up", func() bool { return caughtUp(f, l) })
	if !dbEqual(l.e.Snapshot(), f.e.Snapshot()) {
		t.Fatal("replica state differs from the leader after catch-up")
	}

	// Writes stream continuously: several more batches, including rows
	// in the second relation, arrive without re-bootstrapping.
	for i := 0; i < 20; i++ {
		l.insert(t, 0, relation.Tuple{relation.Value(10 + i), relation.Value(20 + i)})
	}
	l.insert(t, 1, relation.Tuple{5, 6})
	waitFor(t, "streaming catch-up", func() bool { return caughtUp(f, l) })
	if !dbEqual(l.e.Snapshot(), f.e.Snapshot()) {
		t.Fatal("replica state diverged while streaming")
	}

	st := f.tailer.ReplicaStatus()
	if st.Role != "follower" || !st.Connected || st.Diverged {
		t.Errorf("status = %+v", st)
	}
	if st.LagRecords != 0 || st.LagSeconds != 0 {
		t.Errorf("idle pair should report zero lag, got records=%d seconds=%v", st.LagRecords, st.LagSeconds)
	}

	// The replica engine is fenced.
	if _, _, err := f.e.Apply(storage.Insert(0, 2, []relation.Tuple{{9, 9}})); err != engine.ErrReadOnly {
		t.Errorf("replica Apply = %v, want ErrReadOnly", err)
	}
}

func TestReplicationSurvivesLeaderRotationAndCheckpoint(t *testing.T) {
	// Tiny segments force rotations mid-stream; the connected follower
	// rides through them (and through a leader checkpoint) because its
	// cursor stays near the tail.
	l := newLeader(t, storage.Options{SegmentBytes: 256, CheckpointBytes: -1})
	l.seed(t)
	f := newFollower(t, l.ts.URL, Config{})
	for i := 0; i < 40; i++ {
		l.insert(t, 0, relation.Tuple{relation.Value(100 + i), relation.Value(i)})
		if i == 20 {
			waitFor(t, "mid-stream catch-up", func() bool { return caughtUp(f, l) })
			if err := l.e.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor(t, "catch-up across rotations", func() bool { return caughtUp(f, l) })
	if !dbEqual(l.e.Snapshot(), f.e.Snapshot()) {
		t.Fatal("replica state diverged across segment rotations")
	}
	if tip := l.st.TailCursor(); tip.Seg < 3 {
		t.Fatalf("test never rotated the leader WAL (tip %v); lower SegmentBytes", tip)
	}
}

func TestFollowerResumesAfterRestart(t *testing.T) {
	l := newLeader(t, storage.Options{})
	l.seed(t)
	f := newFollower(t, l.ts.URL, Config{})
	waitFor(t, "first catch-up", func() bool { return caughtUp(f, l) })

	// Stop the replica, write more on the leader, restart the replica.
	f.tailer.Stop()
	f.st.Close()
	for i := 0; i < 10; i++ {
		l.insert(t, 1, relation.Tuple{relation.Value(i), relation.Value(i + 1)})
	}
	f.open(t, l.ts.URL, Config{})
	waitFor(t, "catch-up after restart", func() bool { return caughtUp(f, l) })
	// Creates are not idempotent: if the restart replayed any batch
	// twice, apply would have failed and the tailer would be diverged.
	if st := f.tailer.ReplicaStatus(); st.Diverged {
		t.Fatalf("replica diverged after restart: %s", st.LastError)
	}
	if !dbEqual(l.e.Snapshot(), f.e.Snapshot()) {
		t.Fatal("replica state differs after restart")
	}
}

func TestPromote(t *testing.T) {
	l := newLeader(t, storage.Options{})
	l.seed(t)
	f := newFollower(t, l.ts.URL, Config{})
	waitFor(t, "catch-up", func() bool { return caughtUp(f, l) })

	if err := f.tailer.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := f.tailer.Promote(); err != nil {
		t.Fatalf("second promote should be a no-op, got %v", err)
	}
	st := f.tailer.ReplicaStatus()
	if st.Role != "leader" || st.PreviousLeader == "" {
		t.Errorf("post-promote status = %+v", st)
	}
	if _, _, err := f.e.Apply(storage.Insert(0, 2, []relation.Tuple{{77, 78}})); err != nil {
		t.Fatalf("promoted node rejected a write: %v", err)
	}

	// The promotion fence is durable: the directory refuses to follow.
	if _, err := NewTailer(f.e, f.dir, l.ts.URL, Config{}); err == nil || !strings.Contains(err.Error(), "promoted") {
		t.Errorf("NewTailer on a promoted dir = %v, want promoted refusal", err)
	}
	if err := Bootstrap(f.dir, l.ts.URL, nil, nil); err == nil || !strings.Contains(err.Error(), "promoted") {
		t.Errorf("Bootstrap on a promoted dir = %v, want promoted refusal", err)
	}
}

func TestDivergedWhenCursorTruncated(t *testing.T) {
	l := newLeader(t, storage.Options{SegmentBytes: 256, CheckpointBytes: -1})
	l.seed(t)

	// Seed a replica, then — while it is not tailing — rotate the
	// leader WAL past its cursor and checkpoint, truncating the history
	// it still needs.
	dir := filepath.Join(t.TempDir(), "replica")
	if err := Bootstrap(dir, l.ts.URL, nil, t.Logf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		l.insert(t, 0, relation.Tuple{relation.Value(i), relation.Value(i)})
	}
	if err := l.e.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	f := &followerNode{dir: dir}
	f.open(t, l.ts.URL, Config{})
	waitFor(t, "divergence detection", func() bool { return f.tailer.ReplicaStatus().Diverged })
	st := f.tailer.ReplicaStatus()
	if st.Connected {
		t.Error("diverged replica still reports connected")
	}
	if !strings.Contains(st.LastError, "no longer contains cursor") {
		t.Errorf("operator message = %q", st.LastError)
	}
}

func TestDivergedOnLeaderIdentityChange(t *testing.T) {
	a := newLeader(t, storage.Options{})
	a.seed(t)
	b := newLeader(t, storage.Options{})
	b.seed(t)

	dir := filepath.Join(t.TempDir(), "replica")
	if err := Bootstrap(dir, a.ts.URL, nil, t.Logf); err != nil {
		t.Fatal(err)
	}
	// Re-point at a different store: allowed at bootstrap time, caught
	// on first contact.
	if err := Bootstrap(dir, b.ts.URL, nil, t.Logf); err != nil {
		t.Fatal(err)
	}
	f := &followerNode{dir: dir}
	f.open(t, b.ts.URL, Config{})
	waitFor(t, "identity mismatch detection", func() bool { return f.tailer.ReplicaStatus().Diverged })
	if st := f.tailer.ReplicaStatus(); !strings.Contains(st.LastError, "identity") {
		t.Errorf("operator message = %q", st.LastError)
	}
}

func TestFollowerReconnectsAfterLeaderOutage(t *testing.T) {
	l := newLeader(t, storage.Options{})
	l.seed(t)

	// A proxy we can cut stands in for a flapping leader.
	up := true
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !up {
			http.Error(w, "leader unreachable", http.StatusBadGateway)
			return
		}
		resp, err := http.Get(l.ts.URL + r.URL.String())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32<<10)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}))
	t.Cleanup(proxy.Close)

	f := newFollower(t, proxy.URL, Config{})
	waitFor(t, "catch-up through proxy", func() bool { return caughtUp(f, l) })

	up = false
	waitFor(t, "outage detection", func() bool { return !f.tailer.ReplicaStatus().Connected })
	l.insert(t, 0, relation.Tuple{55, 56})
	up = true
	waitFor(t, "reconnect catch-up", func() bool { return caughtUp(f, l) })
	st := f.tailer.ReplicaStatus()
	if st.Diverged {
		t.Fatalf("transient outage must not diverge: %s", st.LastError)
	}
	if !dbEqual(l.e.Snapshot(), f.e.Snapshot()) {
		t.Fatal("replica state differs after reconnect")
	}
}

func TestBackoffDelayEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prevCap := time.Duration(0)
	for failures := 0; failures <= 12; failures++ {
		want := 100 * time.Millisecond << min(failures, 20)
		if want > 15*time.Second || want <= 0 {
			want = 15 * time.Second
		}
		for i := 0; i < 50; i++ {
			d := backoffDelay(failures, rng)
			if lo, hi := time.Duration(float64(want)*0.75), time.Duration(float64(want)*1.25); d < lo || d > hi {
				t.Fatalf("backoffDelay(%d) = %v outside [%v, %v]", failures, d, lo, hi)
			}
		}
		if want < prevCap {
			t.Fatalf("backoff schedule regressed at %d failures", failures)
		}
		prevCap = want
	}
}

func TestBootstrapRefusesForeignStore(t *testing.T) {
	l := newLeader(t, storage.Options{})
	l.seed(t)

	// A directory holding a store that is not a replica must not be
	// silently converted.
	st, err := storage.Open(filepath.Join(t.TempDir(), "own"), storage.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append([]storage.Mutation{storage.Create("x", "y")}); err != nil {
		t.Fatal(err)
	}
	dir := st.Dir()
	st.Close()
	if err := Bootstrap(dir, l.ts.URL, nil, nil); err == nil || !strings.Contains(err.Error(), "not a replica") {
		t.Errorf("Bootstrap over a foreign store = %v, want refusal", err)
	}

	// Re-running Bootstrap on an already-seeded replica is a no-op.
	rdir := filepath.Join(t.TempDir(), "replica")
	if err := Bootstrap(rdir, l.ts.URL, nil, nil); err != nil {
		t.Fatal(err)
	}
	before, _, err := LoadState(rdir)
	if err != nil {
		t.Fatal(err)
	}
	if err := Bootstrap(rdir, l.ts.URL, nil, nil); err != nil {
		t.Fatal(err)
	}
	after, _, _ := LoadState(rdir)
	if before != after {
		t.Errorf("idempotent Bootstrap changed state: %+v → %+v", before, after)
	}
}

func TestStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := LoadState(dir); ok || err != nil {
		t.Fatalf("LoadState on empty dir = ok=%v err=%v", ok, err)
	}
	want := State{LeaderURL: "http://x:1", LeaderID: "deadbeef", CursorSeg: 3, CursorOff: 99, Promoted: true}
	if err := SaveState(dir, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadState(dir)
	if err != nil || !ok || got != want {
		t.Fatalf("LoadState = %+v ok=%v err=%v", got, ok, err)
	}
	if got.ParseLeaderID() != 0xdeadbeef {
		t.Errorf("ParseLeaderID = %x", got.ParseLeaderID())
	}
	// Corruption is an error, not a silent fresh start.
	if err := os.WriteFile(filepath.Join(dir, stateFile), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadState(dir); err == nil {
		t.Error("LoadState on corrupt sidecar = nil error")
	}
}

func TestPreambleRoundTrip(t *testing.T) {
	p := preamble{
		StoreID:    0xfeedface,
		Req:        storage.Cursor{Seg: 1, Off: 8},
		Next:       storage.Cursor{Seg: 2, Off: 8},
		Tip:        storage.Cursor{Seg: 2, Off: 4096},
		LagBytes:   4088,
		Appends:    17,
		FrameBytes: 0,
	}
	buf := encodePreamble(p)
	if len(buf) != preambleLen {
		t.Fatalf("preamble length = %d", len(buf))
	}
	got, err := decodePreamble(buf)
	if err != nil || got != p {
		t.Fatalf("round trip = %+v, %v", got, err)
	}
	// Any flipped bit fails the checksum.
	for i := 0; i < len(buf); i++ {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x40
		if _, err := decodePreamble(mut); err == nil {
			t.Fatalf("bit flip at %d went undetected", i)
		}
	}

	hdr := encodeSnapHeader(0xfeedface, storage.Cursor{Seg: 9, Off: 1234})
	id, c, err := decodeSnapHeader(hdr)
	if err != nil || id != 0xfeedface || c != (storage.Cursor{Seg: 9, Off: 1234}) {
		t.Fatalf("snapshot header round trip = %x %v %v", id, c, err)
	}
}
