package repl

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"gyokit/internal/engine"
	"gyokit/internal/obs"
	"gyokit/internal/storage"
)

const (
	// defaultFeedWindow is the frame budget per /v1/repl/wal response
	// when the client does not ask for one.
	defaultFeedWindow = 1 << 20
	// maxLongPollWait caps the server-side park. gyod's write timeout
	// is 60s; staying well under it means a parked poll always gets to
	// write its (possibly empty) response.
	maxLongPollWait = 25 * time.Second
)

// Streamer serves the leader side of replication under /v1/repl/:
//
//	GET /v1/repl/snapshot          initial sync: snapshot header, then
//	                               the chunk-format snapshot stream
//	GET /v1/repl/wal?seg=&off=     WAL records from a cursor, long-poll
//	        [&wait=20s][&max=N]    up to wait when already caught up
//
// Both endpoints are read-only and safe to expose wherever /v1 reads
// are; the feed serves only acknowledged WAL bytes.
type Streamer struct {
	e    *engine.Engine
	logf func(format string, args ...any)

	reqs      func(endpoint string) *obs.Counter
	sentBytes *obs.Counter
	waiters   *obs.Gauge
}

// NewStreamer builds the leader feed handler. reg, when non-nil,
// receives the gyo_repl_serve_* instruments. logf may be nil.
func NewStreamer(e *engine.Engine, reg *obs.Registry, logf func(string, ...any)) *Streamer {
	s := &Streamer{e: e, logf: logf}
	if reg != nil {
		wal := reg.Counter("gyo_repl_serve_requests_total",
			"Replication feed requests served, by endpoint.", "endpoint", "wal")
		snap := reg.Counter("gyo_repl_serve_requests_total",
			"Replication feed requests served, by endpoint.", "endpoint", "snapshot")
		s.reqs = func(endpoint string) *obs.Counter {
			if endpoint == "snapshot" {
				return snap
			}
			return wal
		}
		s.sentBytes = reg.Counter("gyo_repl_serve_bytes_total",
			"Replication payload bytes sent to followers (preambles and headers excluded).")
		s.waiters = reg.Gauge("gyo_repl_serve_waiters",
			"Feed requests currently parked in a long poll.")
	}
	return s
}

// writeError emits the uniform /v1 error envelope. The feed endpoints
// are binary streams on success, but their failures are JSON like
// every other /v1 error, so followers and operators see one error
// shape everywhere.
func writeError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(engine.ErrorBody{Error: engine.ErrorInfo{
		Code:    code,
		Message: message,
	}})
}

func (s *Streamer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "replication feed is GET-only")
		return
	}
	switch r.URL.Path {
	case "/v1/repl/wal":
		s.serveWAL(w, r)
	case "/v1/repl/snapshot":
		s.serveSnapshot(w, r)
	default:
		http.NotFound(w, r)
	}
}

func (s *Streamer) serveWAL(w http.ResponseWriter, r *http.Request) {
	if s.reqs != nil {
		s.reqs("wal").Inc()
	}
	store := s.e.Store()
	if store == nil {
		writeError(w, http.StatusConflict, "not_replicable", "this node has no durable store to replicate")
		return
	}
	q := r.URL.Query()
	seg, err := strconv.ParseUint(q.Get("seg"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", "bad seg parameter")
		return
	}
	off, err := strconv.ParseInt(q.Get("off"), 10, 64)
	if err != nil || off < 0 {
		writeError(w, http.StatusBadRequest, "invalid_request", "bad off parameter")
		return
	}
	maxBytes := defaultFeedWindow
	if v := q.Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "invalid_request", "bad max parameter")
			return
		}
		maxBytes = min(n, maxFeedFrameBytes/2)
	}
	var wait time.Duration
	if v := q.Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, "invalid_request", "bad wait parameter")
			return
		}
		wait = min(d, maxLongPollWait)
	}

	req := storage.Cursor{Seg: seg, Off: off}
	deadline := time.Now().Add(wait)
	var win storage.WALWindow
	for {
		// Grab the notification channel BEFORE reading: an append that
		// lands between the read and the park still wakes us.
		notify := store.AppendNotify()
		win, err = store.ReadWAL(req, maxBytes)
		if err != nil {
			status, code := http.StatusInternalServerError, "internal"
			switch {
			case errors.Is(err, storage.ErrCursorGone), errors.Is(err, storage.ErrCursorInvalid):
				// 410: the cursor is permanently unservable here — the
				// follower must stop, not retry.
				status, code = http.StatusGone, "cursor_gone"
			default:
				if s.logf != nil {
					s.logf("repl: feed read at %v failed: %v", req, err)
				}
			}
			writeError(w, status, code, err.Error())
			return
		}
		if len(win.Frames) > 0 || win.Next != req {
			break // data, or a rotation hop the follower should take
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			break // caught up; answer empty so the follower sees fresh Tip/lag
		}
		if !s.parkForAppend(r, notify, remaining) {
			return // client went away
		}
	}

	st := store.Stats()
	w.Header().Set("Content-Type", "application/octet-stream")
	hdr := encodePreamble(preamble{
		StoreID:    store.ID(),
		Req:        req,
		Next:       win.Next,
		Tip:        win.Tip,
		LagBytes:   win.LagBytes,
		Appends:    st.Appends,
		FrameBytes: uint32(len(win.Frames)),
	})
	if _, err := w.Write(hdr); err != nil {
		return
	}
	if n, err := w.Write(win.Frames); err == nil && s.sentBytes != nil {
		s.sentBytes.Add(uint64(n))
	}
}

// parkForAppend blocks until an append signal, the wait budget, or the
// client disconnecting; it reports whether serving should continue.
func (s *Streamer) parkForAppend(r *http.Request, notify <-chan struct{}, wait time.Duration) bool {
	if s.waiters != nil {
		s.waiters.Add(1)
		defer s.waiters.Add(-1)
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-notify:
		return true
	case <-timer.C:
		return true
	case <-r.Context().Done():
		return false
	}
}

func (s *Streamer) serveSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.reqs != nil {
		s.reqs("snapshot").Inc()
	}
	db, cur, err := s.e.ReplSnapshot()
	if err != nil {
		writeError(w, http.StatusConflict, "not_replicable", err.Error())
		return
	}
	store := s.e.Store()
	w.Header().Set("Content-Type", "application/octet-stream")
	cw := &countingWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	if _, err := bw.Write(encodeSnapHeader(store.ID(), cur)); err != nil {
		return
	}
	if err := storage.WriteReplSnapshot(bw, db); err != nil {
		// Headers are gone; all we can do is cut the stream short so the
		// follower's CRC checks reject the truncated snapshot.
		if s.logf != nil {
			s.logf("repl: snapshot stream failed: %v", err)
		}
		return
	}
	if err := bw.Flush(); err == nil && s.sentBytes != nil {
		s.sentBytes.Add(uint64(cw.n))
	}
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WALPath and SnapshotPath are the feed endpoints, exported so gyod
// and the follower client agree on them by construction.
const (
	WALPath      = "/v1/repl/wal"
	SnapshotPath = "/v1/repl/snapshot"
)

// feedURL builds the long-poll request URL for a cursor.
func feedURL(leader string, c storage.Cursor, wait time.Duration, maxBytes int) string {
	return fmt.Sprintf("%s%s?seg=%d&off=%d&wait=%s&max=%d",
		leader, WALPath, c.Seg, c.Off, wait, maxBytes)
}
