package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"gyokit/internal/engine"
	"gyokit/internal/obs"
	"gyokit/internal/storage"
)

// ErrDiverged means replication stopped permanently: the leader no
// longer serves this replica's cursor, or the store at the leader URL
// is not the store this replica was seeded from. There is no automatic
// recovery — the operator must wipe the replica's data directory and
// re-seed it from a live leader.
var ErrDiverged = errors.New("repl: replica diverged from its leader")

// Config tunes a Tailer. The zero value works.
type Config struct {
	// Client performs feed requests. It must not set a Timeout shorter
	// than PollWait (each request carries its own deadline). Nil means
	// a private client.
	Client *http.Client
	// Logf receives operational lines (reconnects, divergence). Nil
	// disables logging.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives the gyo_repl_* instruments.
	Metrics *obs.Registry
	// PollWait is the long-poll budget sent to the leader. Zero means
	// 20s.
	PollWait time.Duration
	// WindowBytes is the per-response frame budget. Zero means 1 MiB.
	WindowBytes int
}

// Tailer is the follower side of replication: it tails the leader's
// WAL feed and re-applies every batch through the engine's
// append-then-publish path, so the replica's own WAL and checkpoints
// stay recoverable by the ordinary storage.Open. It implements
// engine.ReplicaController.
type Tailer struct {
	e         *engine.Engine
	store     *storage.Store
	dir       string
	leaderURL string
	client    *http.Client
	logf      func(format string, args ...any)
	wait      time.Duration
	window    int

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	halted sync.Once

	promoteMu sync.Mutex

	mu            sync.Mutex
	cur           storage.Cursor
	leaderID      uint64
	connected     bool
	diverged      bool
	promoted      bool
	lastErr       string
	lagBytes      int64 // -1 until the first successful poll
	lagRecords    int64 // -1 until anchored (first full catch-up)
	caughtUpAt    time.Time
	caughtUpNow   bool
	anchored      bool
	anchorAppends uint64 // leader's append counter at the anchor
	anchorApplied uint64 // our applied counter at the anchor
	applied       uint64 // frames applied since this process started
	appliedBytes  uint64
	reconnects    uint64

	mApplied      *obs.Counter
	mAppliedBytes *obs.Counter
	mReconnects   *obs.Counter
}

// NewTailer opens the follower machinery over an engine whose store
// lives in dir (a directory previously prepared by Bootstrap). It
// fences the engine read-only; Start begins tailing.
func NewTailer(e *engine.Engine, dir, leaderURL string, cfg Config) (*Tailer, error) {
	store := e.Store()
	if store == nil {
		return nil, fmt.Errorf("repl: a follower requires a durable store")
	}
	st, ok, err := LoadState(dir)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("repl: %s is not a bootstrapped replica (no %s)", dir, stateFile)
	}
	if st.Promoted {
		return nil, fmt.Errorf("repl: %s was promoted to leader; it cannot follow again — wipe it and re-seed to rejoin", dir)
	}
	t := &Tailer{
		e:          e,
		store:      store,
		dir:        dir,
		leaderURL:  strings.TrimRight(leaderURL, "/"),
		client:     cfg.Client,
		logf:       cfg.Logf,
		wait:       cfg.PollWait,
		window:     cfg.WindowBytes,
		done:       make(chan struct{}),
		leaderID:   st.ParseLeaderID(),
		lagBytes:   -1,
		lagRecords: -1,
	}
	if t.client == nil {
		t.client = &http.Client{}
	}
	if t.wait <= 0 {
		t.wait = 20 * time.Second
	}
	if t.window <= 0 {
		t.window = defaultFeedWindow
	}
	// The applied cursor: the sidecar records it as of the last
	// checkpoint or clean stop, and a CursorMark rides in every applied
	// batch — whichever the WAL replayed last is at least as fresh.
	t.cur = st.Cursor()
	if c, ok := store.ReplayedCursor(); ok && t.cur.Less(c) {
		t.cur = c
	}
	t.ctx, t.cancel = context.WithCancel(context.Background())
	e.SetReadOnly(true)
	if reg := cfg.Metrics; reg != nil {
		t.mApplied = reg.Counter("gyo_repl_applied_records_total",
			"Replicated batches applied since this process started.")
		t.mAppliedBytes = reg.Counter("gyo_repl_applied_bytes_total",
			"Replicated WAL bytes applied since this process started (frame headers included).")
		t.mReconnects = reg.Counter("gyo_repl_reconnects_total",
			"Feed reconnect attempts after a transient failure.")
		reg.GaugeFunc("gyo_repl_lag_bytes",
			"Leader WAL bytes not yet applied here; -1 means unknown.",
			func() float64 { return float64(t.ReplicaStatus().LagBytes) })
		reg.GaugeFunc("gyo_repl_connected",
			"1 while the leader feed is healthy, else 0.",
			func() float64 {
				if t.ReplicaStatus().Connected {
					return 1
				}
				return 0
			})
	}
	return t, nil
}

// Start launches the tailing loop.
func (t *Tailer) Start() {
	go t.run()
}

func (t *Tailer) run() {
	defer close(t.done)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	failures := 0
	for {
		err := t.poll()
		if t.ctx.Err() != nil {
			return
		}
		if err == nil {
			if failures > 0 && t.logf != nil {
				t.logf("repl: reconnected to %s", t.leaderURL)
			}
			failures = 0
			t.maybeCheckpoint()
			continue
		}
		if errors.Is(err, ErrDiverged) {
			t.mu.Lock()
			t.diverged = true
			t.connected = false
			t.lastErr = err.Error()
			cur := t.cur
			t.mu.Unlock()
			if t.logf != nil {
				t.logf("repl: FATAL: %v", err)
				t.logf("repl: replication stopped at cursor %v; this replica cannot catch up.", cur)
				t.logf("repl: to rejoin: stop this node, wipe %s, and restart with -follow to re-seed from a live leader.", t.dir)
			}
			return
		}
		t.mu.Lock()
		t.connected = false
		t.lastErr = err.Error()
		t.reconnects++
		t.mu.Unlock()
		if t.mReconnects != nil {
			t.mReconnects.Inc()
		}
		delay := backoffDelay(failures, rng)
		failures++
		if t.logf != nil {
			t.logf("repl: feed from %s failed (%v); retrying in %v", t.leaderURL, err, delay.Round(time.Millisecond))
		}
		select {
		case <-t.ctx.Done():
			return
		case <-time.After(delay):
		}
	}
}

// backoffDelay is the reconnect schedule: exponential from 100ms,
// capped at 15s, with ±25% jitter so a fleet of replicas does not
// hammer a recovering leader in lockstep.
func backoffDelay(failures int, rng *rand.Rand) time.Duration {
	const (
		base = 100 * time.Millisecond
		cap  = 15 * time.Second
	)
	d := base
	for i := 0; i < failures && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	jitter := 0.75 + 0.5*rng.Float64()
	return time.Duration(float64(d) * jitter)
}

// poll performs one feed request and applies whatever it ships.
// A nil return means the request succeeded (possibly with zero
// frames). ErrDiverged (wrapped) means replication must stop.
func (t *Tailer) poll() error {
	t.mu.Lock()
	cur := t.cur
	leaderID := t.leaderID
	t.mu.Unlock()

	ctx, cancel := context.WithTimeout(t.ctx, t.wait+30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, feedURL(t.leaderURL, cur, t.wait, t.window), nil)
	if err != nil {
		return err
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%w: the leader's WAL no longer contains cursor %v (%s)",
			ErrDiverged, cur, strings.TrimSpace(string(msg)))
	default:
		return fmt.Errorf("repl: leader answered %s", resp.Status)
	}

	var hdr [preambleLen]byte
	if _, err := io.ReadFull(resp.Body, hdr[:]); err != nil {
		return fmt.Errorf("repl: reading feed preamble: %w", err)
	}
	p, err := decodePreamble(hdr[:])
	if err != nil {
		return err
	}
	if leaderID != 0 && p.StoreID != leaderID {
		return fmt.Errorf("%w: the store at %s has identity %s, this replica was seeded from %s",
			ErrDiverged, t.leaderURL, FormatStoreID(p.StoreID), FormatStoreID(leaderID))
	}
	if p.Req != cur {
		return fmt.Errorf("repl: leader echoed cursor %v for a request at %v", p.Req, cur)
	}

	frames := make([]byte, p.FrameBytes)
	n, err := io.ReadFull(resp.Body, frames)
	frames = frames[:n]
	// Even a torn read can carry complete frames; apply them (the
	// cursor advances per frame), then surface the transport error.
	next, _, consumed, applyErr := t.applyFrames(cur, frames)
	if applyErr != nil {
		return applyErr
	}
	complete := err == nil && consumed == len(frames)
	if complete && next.Less(p.Next) {
		// Everything consumed: adopt the leader's Next, which can hop
		// across a segment boundary that the frames themselves never
		// cross.
		next = p.Next
	}

	t.mu.Lock()
	t.cur = next
	t.connected = true
	t.lastErr = ""
	if t.leaderID == 0 {
		t.leaderID = p.StoreID
	}
	if complete {
		t.lagBytes = p.LagBytes
		if next == p.Tip {
			t.lagRecords = 0
			t.caughtUpNow = true
			t.caughtUpAt = time.Now()
			t.anchored = true
			t.anchorAppends = p.Appends
			t.anchorApplied = t.applied
		} else {
			t.caughtUpNow = false
			if t.anchored && p.Appends >= t.anchorAppends {
				lag := int64(p.Appends-t.anchorAppends) - int64(t.applied-t.anchorApplied)
				t.lagRecords = max(lag, 0)
			} else {
				// The leader's append counter regressed: it restarted.
				// The anchor is meaningless until we catch up again.
				t.anchored = false
				t.lagRecords = -1
			}
		}
	}
	saveID := t.leaderID
	t.mu.Unlock()

	if leaderID == 0 && saveID != 0 {
		// First contact with an identity the sidecar lacked (legacy
		// bootstrap): persist it so a later restart still verifies. A
		// failed save is not fatal — replication stays correct, only
		// the identity check waits for the next successful persist —
		// but it must not pass silently.
		if err := t.saveSidecar(saveID); err != nil && t.logf != nil {
			t.logf("repl: persisting leader identity failed: %v", err)
		}
	}
	if err != nil {
		return fmt.Errorf("repl: reading feed frames: %w", err)
	}
	if !complete {
		return fmt.Errorf("repl: feed shipped a torn frame section (%d of %d bytes framed)", consumed, len(frames))
	}
	return nil
}

// applyFrames applies every complete frame in buf, advancing from cur.
// Each batch is re-framed into the replica's own WAL with a CursorMark
// appended, so the applied position persists atomically with the data
// it covers — a batch is never applied twice across a crash. Partial
// trailing bytes are ignored (never applied); a decode or apply
// failure is divergence, because the bytes already passed the CRC.
func (t *Tailer) applyFrames(cur storage.Cursor, buf []byte) (next storage.Cursor, applied, consumed int, err error) {
	payloads, consumed := storage.SplitFrames(buf)
	next = cur
	for _, pl := range payloads {
		muts, err := storage.DecodeBatch(pl)
		if err != nil {
			return next, applied, consumed, fmt.Errorf("%w: acknowledged leader record at %v does not decode: %v", ErrDiverged, next, err)
		}
		// Strip the leader's own cursor marks (a leader that was once a
		// follower has them in its history); ours is the only position
		// that means anything in this WAL.
		kept := muts[:0]
		for _, m := range muts {
			if m.Kind != storage.KindCursor {
				kept = append(kept, m)
			}
		}
		after := storage.Cursor{Seg: next.Seg, Off: next.Off + storage.FrameOverhead + int64(len(pl))}
		kept = append(kept, storage.CursorMark(after))
		if _, _, err := t.e.ApplyReplica(kept...); err != nil {
			return next, applied, consumed, fmt.Errorf("%w: applying leader record at %v failed: %v", ErrDiverged, next, err)
		}
		next = after
		applied++
		if t.mApplied != nil {
			t.mApplied.Inc()
		}
		if t.mAppliedBytes != nil {
			t.mAppliedBytes.Add(uint64(storage.FrameOverhead + len(pl)))
		}
		t.mu.Lock()
		t.applied++
		t.appliedBytes += uint64(storage.FrameOverhead + len(pl))
		t.cur = next
		t.mu.Unlock()
	}
	return next, applied, consumed, nil
}

// maybeCheckpoint compacts the replica's own WAL when it has outgrown
// the store threshold. The sidecar is saved first: the checkpoint
// truncates WAL segments — and the cursor marks they carry — so the
// cursor must already be durable elsewhere before they go.
func (t *Tailer) maybeCheckpoint() {
	if !t.store.ShouldCheckpoint() {
		return
	}
	if err := t.saveSidecar(0); err != nil {
		if t.logf != nil {
			t.logf("repl: saving %s failed, skipping checkpoint: %v", stateFile, err)
		}
		return
	}
	if err := t.e.Checkpoint(); err != nil && t.logf != nil {
		t.logf("repl: replica checkpoint failed: %v", err)
	}
}

// saveSidecar persists the current replication state. A nonzero id
// overrides the leader identity (first-contact adoption).
func (t *Tailer) saveSidecar(id uint64) error {
	t.mu.Lock()
	if id == 0 {
		id = t.leaderID
	}
	st := State{
		LeaderURL: t.leaderURL,
		LeaderID:  FormatStoreID(id),
		CursorSeg: t.cur.Seg,
		CursorOff: t.cur.Off,
		Promoted:  t.promoted,
	}
	t.mu.Unlock()
	return SaveState(t.dir, st)
}

// halt stops the tailing loop and waits for it to exit.
func (t *Tailer) halt() {
	t.halted.Do(t.cancel)
	<-t.done
}

// Stop ends tailing and persists the sidecar; the engine stays
// read-only. Safe to call more than once and after Promote.
func (t *Tailer) Stop() {
	t.halt()
	if err := t.saveSidecar(0); err != nil && t.logf != nil {
		t.logf("repl: saving %s at stop failed: %v", stateFile, err)
	}
}

// Promote turns this replica into a leader: stop tailing, fence the
// cursor in the sidecar, and open the engine for writes. Idempotent.
// After it returns nil the node accepts /v1 writes; it will refuse to
// follow anyone again without a re-seed.
func (t *Tailer) Promote() error {
	t.promoteMu.Lock()
	defer t.promoteMu.Unlock()
	t.mu.Lock()
	already := t.promoted
	t.mu.Unlock()
	if already {
		return nil
	}
	t.halt()
	t.mu.Lock()
	t.promoted = true
	t.mu.Unlock()
	if err := t.saveSidecar(0); err != nil {
		// Without a durable fence a restart would tail the old leader
		// again and interleave histories. Stay read-only.
		t.mu.Lock()
		t.promoted = false
		t.mu.Unlock()
		return fmt.Errorf("repl: persisting the promotion fence failed: %w", err)
	}
	t.e.SetReadOnly(false)
	if t.logf != nil {
		t.logf("repl: promoted to leader at cursor %v (previous leader %s)", t.cursor(), t.leaderURL)
	}
	return nil
}

func (t *Tailer) cursor() storage.Cursor {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cur
}

// ReplicaStatus implements engine.ReplicaController.
func (t *Tailer) ReplicaStatus() engine.ReplicaStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := engine.ReplicaStatus{
		Role:       "follower",
		LeaderURL:  t.leaderURL,
		CursorSeg:  t.cur.Seg,
		CursorOff:  t.cur.Off,
		LagBytes:   t.lagBytes,
		LagRecords: t.lagRecords,
		Connected:  t.connected,
		Diverged:   t.diverged,
		LastError:  t.lastErr,
	}
	switch {
	case t.caughtUpNow:
		st.LagSeconds = 0
	case t.caughtUpAt.IsZero():
		st.LagSeconds = -1
	default:
		st.LagSeconds = time.Since(t.caughtUpAt).Seconds()
	}
	if t.promoted {
		st.Role = "leader"
		st.LeaderURL = ""
		st.PreviousLeader = t.leaderURL
		st.Connected = true
		st.LagBytes, st.LagRecords, st.LagSeconds = 0, 0, 0
	}
	return st
}

// Bootstrap prepares dir to follow leaderURL. An existing replica
// sidecar makes it a no-op (re-pointing at a new URL just updates the
// sidecar — the store identity is verified on first contact). A fresh
// directory is seeded over HTTP from the leader's snapshot endpoint;
// a failed seed cleans up after itself, so a retry needs no operator
// action. A directory holding a store without a sidecar, or one that
// was promoted, is refused.
func Bootstrap(dir, leaderURL string, client *http.Client, logf func(string, ...any)) error {
	leaderURL = strings.TrimRight(leaderURL, "/")
	st, ok, err := LoadState(dir)
	if err != nil {
		return err
	}
	if ok {
		if st.Promoted {
			return fmt.Errorf("repl: %s was promoted to leader; it cannot follow %s — wipe it and re-seed to rejoin", dir, leaderURL)
		}
		if st.LeaderURL != leaderURL {
			if logf != nil {
				logf("repl: re-pointing replica from %s to %s (store identity will be verified on first contact)", st.LeaderURL, leaderURL)
			}
			st.LeaderURL = leaderURL
			return SaveState(dir, st)
		}
		return nil
	}
	has, err := storage.DirHasStore(dir)
	if err != nil {
		return err
	}
	if has {
		return fmt.Errorf("repl: %s holds a store that is not a replica; refusing to follow %s over it", dir, leaderURL)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if client == nil {
		client = &http.Client{}
	}
	resp, err := client.Get(leaderURL + SnapshotPath)
	if err != nil {
		return fmt.Errorf("repl: fetching seed snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("repl: leader %s answered %s to the snapshot request: %s",
			leaderURL, resp.Status, strings.TrimSpace(string(msg)))
	}
	var hdr [snapHeaderLen]byte
	if _, err := io.ReadFull(resp.Body, hdr[:]); err != nil {
		return fmt.Errorf("repl: reading snapshot header: %w", err)
	}
	leaderID, cur, err := decodeSnapHeader(hdr[:])
	if err != nil {
		return err
	}
	if err := storage.InstallReplSnapshot(dir, resp.Body); err != nil {
		return fmt.Errorf("repl: installing seed snapshot: %w", err)
	}
	if err := SaveState(dir, State{
		LeaderURL: leaderURL,
		LeaderID:  FormatStoreID(leaderID),
		CursorSeg: cur.Seg,
		CursorOff: cur.Off,
	}); err != nil {
		return err
	}
	if logf != nil {
		logf("repl: seeded %s from %s (leader store %s, cursor %v)", dir, leaderURL, FormatStoreID(leaderID), cur)
	}
	return nil
}
