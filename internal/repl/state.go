package repl

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"gyokit/internal/storage"
)

// stateFile is the follower's replication sidecar, next to the WAL in
// the data directory. It records which leader this store replicates,
// that leader's identity, the applied cursor as of the last checkpoint
// or clean stop, and whether the node was promoted. The WAL itself
// carries the fine-grained cursor (a CursorMark rides in every applied
// batch); the sidecar survives checkpoint truncation and is what makes
// a restarted or promoted node refuse unsafe configurations.
const stateFile = "repl-state.json"

// State is the persisted replication sidecar.
type State struct {
	// LeaderURL is the leader base URL this node follows (or followed,
	// once promoted).
	LeaderURL string `json:"leaderUrl"`
	// LeaderID is the leader store's identity in hex, adopted from the
	// snapshot header at bootstrap. Every feed response is checked
	// against it: a different identity means the "leader" at that URL
	// is a different store and its WAL positions mean nothing here.
	LeaderID string `json:"leaderStoreId"`
	// CursorSeg/CursorOff is the applied cursor as of the last save.
	// The WAL's replayed CursorMark, when ahead, wins over this.
	CursorSeg uint64 `json:"cursorSeg"`
	CursorOff int64  `json:"cursorOff"`
	// Promoted records that this node was promoted to leader. A
	// promoted data directory refuses -follow: its WAL has local writes
	// past the fence and can only re-join a topology by re-seeding.
	Promoted bool `json:"promoted,omitempty"`
}

// Cursor returns the sidecar cursor as a storage cursor.
func (st State) Cursor() storage.Cursor {
	return storage.Cursor{Seg: st.CursorSeg, Off: st.CursorOff}
}

// ParseLeaderID decodes the hex store identity; 0 if empty/invalid.
func (st State) ParseLeaderID() uint64 {
	id, err := strconv.ParseUint(st.LeaderID, 16, 64)
	if err != nil {
		return 0
	}
	return id
}

// FormatStoreID renders a store identity the way the sidecar holds it.
func FormatStoreID(id uint64) string { return strconv.FormatUint(id, 16) }

// LoadState reads the sidecar. ok is false when no sidecar exists —
// a plain leader directory.
func LoadState(dir string) (st State, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, stateFile))
	if os.IsNotExist(err) {
		return State{}, false, nil
	}
	if err != nil {
		return State{}, false, err
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return State{}, false, fmt.Errorf("repl: corrupt %s: %w", stateFile, err)
	}
	if st.CursorOff < 0 {
		return State{}, false, fmt.Errorf("repl: corrupt %s: negative cursor offset", stateFile)
	}
	return st, true, nil
}

// SaveState writes the sidecar durably: tmp file, fsync, rename, and
// a directory fsync, so a crash leaves either the old or the new
// sidecar, never a torn one.
func SaveState(dir string, st State) error {
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := filepath.Join(dir, stateFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, stateFile)); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
