// Package gen provides deterministic workload generators for tests,
// property checks, and the benchmark harness: random tree schemas,
// random (usually cyclic) schemas, Arings/Acliques, chains, stars,
// bin-packing instances, and random universal relations.
//
// All generators are driven by explicit seeds so that every experiment
// in EXPERIMENTS.md is reproducible.
package gen

import (
	"fmt"
	"math/rand"

	"gyokit/internal/schema"
)

// RNG returns a deterministic rand.Rand for the given seed.
func RNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// attrName returns a readable attribute name: single letters for the
// first 26, then "x27", "x28", ….
func attrName(i int) string {
	if i < 26 {
		return string(rune('a' + i))
	}
	return fmt.Sprintf("x%d", i+1)
}

// Universe returns a fresh universe pre-populated with n attributes.
func Universe(n int) (*schema.Universe, []schema.Attr) {
	u := schema.NewUniverse()
	attrs := make([]schema.Attr, n)
	for i := 0; i < n; i++ {
		attrs[i] = u.Attr(attrName(i))
	}
	return u, attrs
}

// TreeSchema generates a random connected tree schema with n relation
// schemas. It grows a join tree: each new relation shares a random
// non-empty subset of an existing relation's attributes and adds
// `fresh` new attributes (at least one). The result is acyclic by
// construction, with the grown tree as a qual tree.
func TreeSchema(rng *rand.Rand, n, maxShared, fresh int) *schema.Schema {
	if n < 1 {
		panic("gen: TreeSchema needs n ≥ 1")
	}
	if maxShared < 1 {
		maxShared = 1
	}
	if fresh < 1 {
		fresh = 1
	}
	u := schema.NewUniverse()
	next := 0
	newAttr := func() schema.Attr {
		a := u.Attr(attrName(next))
		next++
		return a
	}
	d := &schema.Schema{U: u}
	first := schema.NewAttrSet()
	for i := 0; i < 1+rng.Intn(fresh); i++ {
		first = first.Add(newAttr())
	}
	d.Add(first)
	for i := 1; i < n; i++ {
		parent := d.Rels[rng.Intn(len(d.Rels))]
		pattrs := parent.Attrs()
		k := 1 + rng.Intn(min(maxShared, len(pattrs)))
		rng.Shuffle(len(pattrs), func(a, b int) { pattrs[a], pattrs[b] = pattrs[b], pattrs[a] })
		r := schema.NewAttrSet(pattrs[:k]...)
		for j := 0; j < 1+rng.Intn(fresh); j++ {
			r = r.Add(newAttr())
		}
		d.Add(r)
	}
	return d
}

// RandomSchema generates an arbitrary schema: n relation schemas over a
// universe of m attributes, each relation containing every attribute
// independently with probability p (re-drawn until non-empty). The
// result may be a tree or cyclic schema.
func RandomSchema(rng *rand.Rand, n, m int, p float64) *schema.Schema {
	u, attrs := Universe(m)
	d := &schema.Schema{U: u}
	for i := 0; i < n; i++ {
		var r schema.AttrSet
		for r.IsEmpty() {
			r = schema.NewAttrSet()
			for _, a := range attrs {
				if rng.Float64() < p {
					r = r.Add(a)
				}
			}
		}
		d.Add(r)
	}
	return d
}

// Chain returns the path schema (A₁A₂, A₂A₃, …, AₙAₙ₊₁): a canonical
// tree schema with n relations.
func Chain(n int) *schema.Schema {
	if n < 1 {
		panic("gen: Chain needs n ≥ 1")
	}
	u, attrs := Universe(n + 1)
	d := &schema.Schema{U: u}
	for i := 0; i < n; i++ {
		d.Add(schema.NewAttrSet(attrs[i], attrs[i+1]))
	}
	return d
}

// Star returns the star schema (CA₁, CA₂, …, CAₙ): all relations share
// a central attribute. A canonical tree schema.
func Star(n int) *schema.Schema {
	if n < 1 {
		panic("gen: Star needs n ≥ 1")
	}
	u, attrs := Universe(n + 1)
	c := attrs[0]
	d := &schema.Schema{U: u}
	for i := 1; i <= n; i++ {
		d.Add(schema.NewAttrSet(c, attrs[i]))
	}
	return d
}

// Ring returns the Aring of size n on a fresh universe.
func Ring(n int) *schema.Schema {
	u := schema.NewUniverse()
	return schema.Aring(u, n, ringPrefix(n))
}

// RingWithTails returns an Aring of size ringN with a chain of tailLen
// binary relations hanging off each ring attribute: a cyclic schema
// whose GYO-irreducible core (the ring) is a small fraction of the
// whole. This is the workload where the §4 cyclic strategy — join the
// core, then treat the rest as a tree — pays off.
func RingWithTails(ringN, tailLen int) *schema.Schema {
	u := schema.NewUniverse()
	d := schema.Aring(u, ringN, ringPrefix(ringN))
	ringAttrs := d.Attrs().Attrs()
	for i, a := range ringAttrs {
		prev := a
		for j := 0; j < tailLen; j++ {
			next := u.Attr(fmt.Sprintf("t%d_%d", i, j))
			d.Add(schema.NewAttrSet(prev, next))
			prev = next
		}
	}
	return d
}

// Clique returns the Aclique of size n on a fresh universe.
func Clique(n int) *schema.Schema {
	u := schema.NewUniverse()
	return schema.Aclique(u, n, ringPrefix(n))
}

func ringPrefix(n int) string {
	if n <= 26 {
		return ""
	}
	return "a"
}

// BinPackingInstance is an instance of the bin-packing decision problem
// used by the Theorem 4.2 reduction: items with sizes, K bins of
// capacity B.
type BinPackingInstance struct {
	Sizes []int
	K     int
	B     int
}

// BinPacking generates a random instance with n items, sizes in
// [3, maxSize] (≥3 so every item maps to a legal Aclique), K bins of
// capacity B.
func BinPacking(rng *rand.Rand, n, maxSize, k, b int) BinPackingInstance {
	if maxSize < 3 {
		maxSize = 3
	}
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = 3 + rng.Intn(maxSize-2)
	}
	return BinPackingInstance{Sizes: sizes, K: k, B: b}
}

// SubSchema picks a random non-empty sub-multiset of d's relations,
// returning the sub-schema and the chosen indexes (sorted ascending).
func SubSchema(rng *rand.Rand, d *schema.Schema) (*schema.Schema, []int) {
	n := len(d.Rels)
	if n == 0 {
		return &schema.Schema{U: d.U}, nil
	}
	var idx []int
	for len(idx) == 0 {
		idx = idx[:0]
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				idx = append(idx, i)
			}
		}
	}
	return d.Restrict(idx), idx
}

// RandomAttrSubset returns a random subset of s, each attribute kept
// with probability p.
func RandomAttrSubset(rng *rand.Rand, s schema.AttrSet, p float64) schema.AttrSet {
	out := schema.NewAttrSet()
	s.ForEach(func(a schema.Attr) bool {
		if rng.Float64() < p {
			out = out.Add(a)
		}
		return true
	})
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
