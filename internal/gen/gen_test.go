package gen

import (
	"testing"

	"gyokit/internal/gyo"
	"gyokit/internal/schema"
)

func TestTreeSchemaIsAlwaysTree(t *testing.T) {
	rng := RNG(3)
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(12)
		d := TreeSchema(rng, n, 1+rng.Intn(3), 1+rng.Intn(3))
		if d.Len() != n {
			t.Fatalf("TreeSchema produced %d relations, want %d", d.Len(), n)
		}
		if !gyo.IsTree(d) {
			t.Fatalf("TreeSchema produced a cyclic schema: %s", d)
		}
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTreeSchemaDeterministic(t *testing.T) {
	a := TreeSchema(RNG(9), 8, 2, 2)
	b := TreeSchema(RNG(9), 8, 2, 2)
	if a.Key() != b.Key() {
		t.Error("same seed produced different tree schemas")
	}
}

func TestRandomSchemaShape(t *testing.T) {
	rng := RNG(5)
	d := RandomSchema(rng, 6, 5, 0.5)
	if d.Len() != 6 {
		t.Fatalf("relation count %d", d.Len())
	}
	for _, r := range d.Rels {
		if r.IsEmpty() {
			t.Error("RandomSchema produced an empty relation schema")
		}
		if !r.SubsetOf(d.U.All()) {
			t.Error("attributes out of universe")
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChainAndStar(t *testing.T) {
	c := Chain(4)
	if c.Len() != 4 || c.Attrs().Card() != 5 {
		t.Errorf("Chain(4) shape wrong: %s", c)
	}
	if !gyo.IsTree(c) {
		t.Error("chain should be a tree schema")
	}
	s := Star(4)
	if s.Len() != 4 || s.Attrs().Card() != 5 {
		t.Errorf("Star(4) shape wrong: %s", s)
	}
	if !gyo.IsTree(s) {
		t.Error("star should be a tree schema")
	}
	// Every star relation contains the center.
	center := s.Rels[0].Intersect(s.Rels[1])
	if center.Card() != 1 {
		t.Fatal("star center wrong")
	}
	for _, r := range s.Rels {
		if !center.SubsetOf(r) {
			t.Error("star relation missing the center")
		}
	}
	mustPanic(t, func() { Chain(0) })
	mustPanic(t, func() { Star(0) })
	mustPanic(t, func() { TreeSchema(RNG(1), 0, 1, 1) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestRingAndClique(t *testing.T) {
	for n := 3; n <= 30; n += 9 {
		r := Ring(n)
		if !schema.IsAring(r) {
			t.Errorf("Ring(%d) not an Aring", n)
		}
		if gyo.IsTree(r) {
			t.Errorf("Ring(%d) classified as tree", n)
		}
	}
	c := Clique(5)
	if !schema.IsAclique(c) || gyo.IsTree(c) {
		t.Error("Clique(5) wrong")
	}
}

func TestBinPackingGenerator(t *testing.T) {
	rng := RNG(7)
	bp := BinPacking(rng, 10, 8, 3, 12)
	if len(bp.Sizes) != 10 || bp.K != 3 || bp.B != 12 {
		t.Fatalf("shape wrong: %+v", bp)
	}
	for _, s := range bp.Sizes {
		if s < 3 || s > 8 {
			t.Errorf("size %d out of [3, 8]", s)
		}
	}
	// maxSize below 3 is clamped.
	bp2 := BinPacking(rng, 4, 1, 1, 5)
	for _, s := range bp2.Sizes {
		if s != 3 {
			t.Errorf("clamped size = %d, want 3", s)
		}
	}
}

func TestSubSchema(t *testing.T) {
	rng := RNG(11)
	d := Chain(5)
	for trial := 0; trial < 30; trial++ {
		sub, idx := SubSchema(rng, d)
		if sub.Len() == 0 || sub.Len() != len(idx) {
			t.Fatalf("SubSchema shape wrong: %d vs %v", sub.Len(), idx)
		}
		for k, i := range idx {
			if !sub.Rels[k].Equal(d.Rels[i]) {
				t.Fatal("index mapping wrong")
			}
			if k > 0 && idx[k-1] >= i {
				t.Fatal("indexes not ascending")
			}
		}
	}
	empty := &schema.Schema{U: d.U}
	if sub, idx := SubSchema(rng, empty); sub.Len() != 0 || idx != nil {
		t.Error("empty input should give empty output")
	}
}

func TestRandomAttrSubset(t *testing.T) {
	rng := RNG(13)
	u, attrs := Universe(10)
	all := u.All()
	_ = attrs
	always := RandomAttrSubset(rng, all, 1.0)
	if !always.Equal(all) {
		t.Error("p=1 should keep everything")
	}
	never := RandomAttrSubset(rng, all, 0.0)
	if !never.IsEmpty() {
		t.Error("p=0 should drop everything")
	}
	some := RandomAttrSubset(rng, all, 0.5)
	if !some.SubsetOf(all) {
		t.Error("subset property violated")
	}
}

func TestUniverseHelper(t *testing.T) {
	u, attrs := Universe(30)
	if u.Size() != 30 || len(attrs) != 30 {
		t.Fatal("Universe helper wrong")
	}
	if u.Name(attrs[0]) != "a" || u.Name(attrs[25]) != "z" {
		t.Error("single-letter names wrong")
	}
	if u.Name(attrs[26]) != "x27" {
		t.Errorf("overflow name = %s", u.Name(attrs[26]))
	}
}
