package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter", "kind", "x")
	c2 := r.Counter("test_total", "a counter", "kind", "y")
	g := r.Gauge("test_gauge", "a gauge")
	r.GaugeFunc("test_fn", "a computed gauge", func() float64 { return 42 })

	c.Add(3)
	c.Inc()
	c2.Inc()
	g.Set(1.5)
	g.Add(-0.5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_total a counter\n",
		"# TYPE test_total counter\n",
		`test_total{kind="x"} 4` + "\n",
		`test_total{kind="y"} 1` + "\n",
		"# TYPE test_gauge gauge\n",
		"test_gauge 1\n",
		"test_fn 42\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	m, err := ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v", err)
	}
	if m[`test_total{kind="x"}`] != 4 || m["test_fn"] != 42 {
		t.Errorf("parsed values wrong: %v", m)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-5.56) > 1e-9 {
		t.Errorf("Sum = %v, want 5.56", got)
	}

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 2`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// p50 lands in the (0.01, 0.1] bucket; interpolation keeps it there.
	if q := h.Quantile(0.5); q <= 0.01 || q > 0.1 {
		t.Errorf("Quantile(0.5) = %v, want within (0.01, 0.1]", q)
	}
	// Observations beyond the last bound report the largest finite bound.
	if q := h.Quantile(0.999); q != 1 {
		t.Errorf("Quantile(0.999) = %v, want 1 (largest finite bound)", q)
	}
	var empty *Histogram
	if empty.Quantile(0.5) != 0 || empty.Count() != 0 {
		t.Error("nil histogram must report zeros")
	}
}

func TestHistogramLabeledSeries(t *testing.T) {
	r := NewRegistry()
	hx := r.Histogram("op_seconds", "op latency", []float64{1}, "op", "x")
	hy := r.Histogram("op_seconds", "op latency", []float64{1}, "op", "y")
	hx.Observe(0.5)
	hy.Observe(2)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE op_seconds histogram") != 1 {
		t.Errorf("family header must appear exactly once:\n%s", out)
	}
	for _, want := range []string{
		`op_seconds_bucket{op="x",le="1"} 1`,
		`op_seconds_bucket{op="y",le="1"} 0`,
		`op_seconds_bucket{op="y",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
		r *Registry
	)
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments must read as zero")
	}
	// A nil registry hands out nil (no-op) instruments.
	if r.Counter("x", "x") != nil || r.Gauge("x", "x") != nil || r.Histogram("x", "x", []float64{1}) != nil {
		t.Error("nil registry must return nil instruments")
	}
	r.GaugeFunc("x", "x", func() float64 { return 1 })
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Errorf("nil registry WriteText: %v", err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "help")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	r.Counter("dup_total", "help")
}

func TestTypeClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "help", "a", "1")
	defer func() {
		if recover() == nil {
			t.Error("type clash must panic")
		}
	}()
	r.Gauge("clash", "help", "a", "2")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("esc_total", "help", "q", `say "hi"\n`)
	c.Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{q="say \"hi\"\\n"} 1`) {
		t.Errorf("bad escaping:\n%s", b.String())
	}
	if _, err := ParseText(strings.NewReader(b.String())); err != nil {
		t.Errorf("escaped exposition does not parse: %v", err)
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_type_comment 1\n",
		"# TYPE x counter\nx notanumber\n",
		"# TYPE x counter\nx 1\nx 2\n", // duplicate series
		"# TYPE x counter\nx{a=\"b\" 1\n",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText accepted %q", bad)
		}
	}
}

func TestWriteSeries(t *testing.T) {
	var b strings.Builder
	WriteSeries(&b, "up_seconds", "process uptime", "gauge", 12.5)
	out := b.String()
	if !strings.Contains(out, "# TYPE up_seconds gauge\n") || !strings.Contains(out, "up_seconds 12.5\n") {
		t.Errorf("WriteSeries output:\n%s", out)
	}
	if _, err := ParseText(strings.NewReader(out)); err != nil {
		t.Errorf("WriteSeries output does not parse: %v", err)
	}
}

func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", "help", LatencyBuckets())
	c := r.Counter("conc_total", "help")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(0.001)
					c.Inc()
				}
			}
		}()
	}
	var lastCount float64
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		m, err := ParseText(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("scrape %d unparseable: %v", i, err)
		}
		if m["conc_seconds_count"] < lastCount {
			t.Fatalf("scrape %d: histogram count regressed %v -> %v", i, lastCount, m["conc_seconds_count"])
		}
		if m["conc_seconds_count"] != m[`conc_seconds_bucket{le="+Inf"}`] {
			t.Fatalf("scrape %d: count %v != +Inf bucket %v", i,
				m["conc_seconds_count"], m[`conc_seconds_bucket{le="+Inf"}`])
		}
		lastCount = m["conc_seconds_count"]
	}
	close(stop)
	wg.Wait()
}
