// Package obs is a zero-dependency observability core: an atomic
// counter/gauge/histogram registry with Prometheus text-format
// exposition (version 0.0.4), shared by the engine, the storage layer,
// and the gyod serving surface.
//
// Design constraints, in order:
//
//   - hot-path cost: Observe/Add/Inc are one or two atomic operations
//     and allocate nothing, so instrumenting the cached-plan solve path
//     and the WAL append path stays within the CI-gated overhead budget;
//   - no dependencies: the encoder writes the text exposition format
//     directly, and fixed-bucket histograms make p50/p95/p99 derivable
//     by any Prometheus-compatible scraper (histogram_quantile) or by
//     Histogram.Quantile locally;
//   - nil-safety: every instrument method is a no-op on a nil receiver,
//     so layers can hold optional handles ("metrics not configured")
//     without branching at each call site.
//
// A Registry is safe for concurrent use: registration takes a lock,
// instrument updates are lock-free, and WriteText observes each series
// atomically (per-value; a scrape concurrent with writes sees counts
// that are each valid, monotone snapshots).
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta. No-op on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: counts per upper bound plus a
// +Inf bucket, a running sum, and a total count. Buckets are cumulative
// only at exposition time; Observe touches exactly one bucket counter,
// the sum, and the count.
type Histogram struct {
	bounds []float64       // strictly increasing upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-added
}

// Observe records v. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound ≥ v; ~22 bounds means ≤ 5
	// probes, no allocation.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by linear
// interpolation within the bucket holding the target rank — the same
// estimate Prometheus's histogram_quantile computes. Observations in
// the +Inf bucket report the largest finite bound. Returns 0 with no
// observations or a nil receiver.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		bucket := float64(h.counts[i].Load())
		if cum+bucket >= rank {
			if i == len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if bucket == 0 {
				return h.bounds[i]
			}
			return lower + (h.bounds[i]-lower)*((rank-cum)/bucket)
		}
		cum += bucket
	}
	return h.bounds[len(h.bounds)-1]
}

// LatencyBuckets returns the default latency bounds in seconds: 1µs to
// 10s, a 1-2.5-5 decade ladder. Covers sub-microsecond cached plan
// lookups at one end and multi-second cold cyclic joins at the other.
func LatencyBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// SizeBuckets returns exponential size bounds: base, base·factor, …,
// n bounds total. Use for byte and tuple-count histograms.
func SizeBuckets(base, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := base
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metricType is the TYPE line value of a family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// series is one labeled instance of a family.
type series struct {
	labels string // pre-encoded {k="v",…} or ""
	ctr    *Counter
	gauge  *Gauge
	gfn    func() float64
	hist   *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name, help string
	typ        metricType
	series     []*series
	byLabels   map[string]bool
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order, for stable output
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// register adds a series, panicking on wiring errors (type clash or
// duplicate name+labels): these are programmer mistakes in static
// metric declarations, not runtime conditions.
func (r *Registry) register(name, help string, typ metricType, s *series, labels []string) {
	s.labels = encodeLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byLabels: map[string]bool{}}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	if f.byLabels[s.labels] {
		panic(fmt.Sprintf("obs: duplicate series %s%s", name, s.labels))
	}
	f.byLabels[s.labels] = true
	f.series = append(f.series, s)
}

// Counter registers and returns a counter series. labels are
// alternating key, value pairs; registering the same name+labels twice
// panics (an observability wiring bug). Nil receiver returns a nil
// (no-op) counter, so optional registries need no call-site branches.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(name, help, typeCounter, &series{ctr: c}, labels)
	return c
}

// Gauge registers and returns a settable gauge series. Nil receiver
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.register(name, help, typeGauge, &series{gauge: g}, labels)
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// fn must be safe to call concurrently. No-op on a nil receiver.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.register(name, help, typeGauge, &series{gfn: fn}, labels)
}

// Histogram registers and returns a histogram series with the given
// upper bounds (strictly increasing; a +Inf bucket is implicit). Nil
// receiver returns a nil (no-op) histogram.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing at %d", name, i))
		}
	}
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bound", name))
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	r.register(name, help, typeHistogram, &series{hist: h}, labels)
	return h
}

// WriteText renders every family in the Prometheus text exposition
// format, in registration order, series in registration order within a
// family. No-op on a nil receiver.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, len(r.order))
	for i, name := range r.order {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		writeHeader(bw, f.name, f.help, string(f.typ))
		for _, s := range f.series {
			switch {
			case s.ctr != nil:
				writeSample(bw, f.name, "", s.labels, "", float64(s.ctr.Value()))
			case s.gauge != nil:
				writeSample(bw, f.name, "", s.labels, "", s.gauge.Value())
			case s.gfn != nil:
				writeSample(bw, f.name, "", s.labels, "", s.gfn())
			case s.hist != nil:
				writeHistogram(bw, f.name, s.labels, s.hist)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram emits the _bucket/_sum/_count series of one
// histogram. Bucket counts are read once each and accumulated, so the
// emitted buckets are cumulative and non-decreasing even if Observe
// calls race the scrape.
func writeHistogram(w *bufio.Writer, name, labels string, h *Histogram) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(w, name, "_bucket", labels, formatLe(bound), float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(w, name, "_bucket", labels, "+Inf", float64(cum))
	writeSample(w, name, "_sum", labels, "", h.Sum())
	// The total count must match the +Inf bucket of this scrape, not a
	// fresher read of h.count, or a concurrent Observe between the two
	// reads makes the exposition internally inconsistent.
	writeSample(w, name, "_count", labels, "", float64(cum))
}

func writeHeader(w *bufio.Writer, name, help, typ string) {
	w.WriteString("# HELP ")
	w.WriteString(name)
	w.WriteByte(' ')
	w.WriteString(strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(help))
	w.WriteByte('\n')
	w.WriteString("# TYPE ")
	w.WriteString(name)
	w.WriteByte(' ')
	w.WriteString(typ)
	w.WriteByte('\n')
}

// writeSample writes one sample line: name+suffix, labels (with le
// merged in for buckets), and the value.
func writeSample(w *bufio.Writer, name, suffix, labels, le string, v float64) {
	w.WriteString(name)
	w.WriteString(suffix)
	if le != "" {
		if labels == "" {
			w.WriteString(`{le="` + le + `"}`)
		} else {
			w.WriteString(labels[:len(labels)-1] + `,le="` + le + `"}`)
		}
	} else {
		w.WriteString(labels)
	}
	w.WriteByte(' ')
	w.WriteString(formatValue(v))
	w.WriteByte('\n')
}

// WriteSeries writes one complete single-sample family (HELP, TYPE,
// sample) to w — for scrape-time computed values (process uptime,
// goroutine count) that a handler appends after a registry dump
// without registering closures.
func WriteSeries(w io.Writer, name, help, typ string, v float64, labels ...string) {
	bw := bufio.NewWriter(w)
	writeHeader(bw, name, help, typ)
	writeSample(bw, name, "", encodeLabels(labels), "", v)
	bw.Flush()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLe renders a bucket bound the way Prometheus clients do.
func formatLe(bound float64) string {
	return strconv.FormatFloat(bound, 'g', -1, 64)
}

// encodeLabels renders alternating key, value pairs as {k="v",…}.
// Panics on an odd count (a wiring bug).
func encodeLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	esc := strings.NewReplacer("\\", `\\`, `"`, `\"`, "\n", `\n`)
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(esc.Replace(labels[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// ParseText parses a Prometheus text exposition into a map from series
// (name plus label block, exactly as written) to value. It validates
// line shape and numeric values, returning an error on any malformed
// line — the scrape-parseability assertion the race tests rely on.
// HELP/TYPE comments and blank lines are skipped but HELP/TYPE must
// precede their family's samples.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	typed := map[string]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return nil, fmt.Errorf("obs: line %d: malformed TYPE comment %q", lineNo, line)
			}
			typed[fields[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// name{labels} value  |  name value
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return nil, fmt.Errorf("obs: line %d: malformed sample %q", lineNo, line)
		}
		key, valText := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valText, 64)
		if err != nil && valText != "+Inf" && valText != "-Inf" && valText != "NaN" {
			return nil, fmt.Errorf("obs: line %d: bad value %q", lineNo, valText)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				return nil, fmt.Errorf("obs: line %d: unterminated label block %q", lineNo, key)
			}
			name = key[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[base] {
			return nil, fmt.Errorf("obs: line %d: sample %q precedes its TYPE comment", lineNo, name)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("obs: line %d: duplicate series %q", lineNo, key)
		}
		out[key] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SortedKeys returns the series names of a ParseText result in sorted
// order — convenience for stable test output and delta reports.
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
