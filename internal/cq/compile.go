package cq

import (
	"fmt"
	"strings"

	"gyokit/internal/core"
	"gyokit/internal/gyo"
	"gyokit/internal/program"
	"gyokit/internal/schema"
)

// Kind classifies a compiled query's plan shape.
type Kind int

const (
	// KindFreeConnex: the query hypergraph is a tree schema AND stays
	// one with the head variables added as an extra hyperedge. The plan
	// is Yannakakis rooted at the atom covering the most head variables,
	// so every projection pushes below the semijoin program and no
	// intermediate materializes the full join.
	KindFreeConnex Kind = iota
	// KindAcyclic: a tree schema, but projecting onto the head breaks
	// the tree (the classic π_{x,z}(R(x,y) ⋈ S(y,z))). Plain Yannakakis:
	// still semijoin-reduced, but the root's joins may exceed the head.
	KindAcyclic
	// KindCyclic: the hypergraph is cyclic; the plan reduces each atom
	// to its live variables, joins in greedy shared-attribute order, and
	// projects onto the head.
	KindCyclic
)

func (k Kind) String() string {
	switch k {
	case KindFreeConnex:
		return "free-connex"
	case KindAcyclic:
		return "acyclic"
	case KindCyclic:
		return "cyclic"
	default:
		return "invalid"
	}
}

// AtomBinding records how one body atom addresses storage: the
// predicate as written, the stored attribute names it denotes (in
// written order), and the variable bound at each position. The engine
// resolves Attrs against its serving universe at evaluation time — the
// compiled query itself is schema-independent, so the plan cache never
// needs invalidating on schema change.
type AtomBinding struct {
	Pred  string
	Attrs []string      // stored attribute names, in the predicate's written order
	Vars  []schema.Attr // query-universe variable ids, positionally aligned with Attrs
}

// Compiled is a fully planned conjunctive query. It is immutable once
// built and safe to share across concurrent evaluations.
type Compiled struct {
	Query     *Query
	Canonical string           // canonical text; the cache identity
	U         *schema.Universe // per-query variable universe
	D         *schema.Schema   // query hypergraph: one variable set per body atom
	Head      schema.AttrSet   // output variables as a set
	HeadVars  []string         // head variables in written order (the response column order)
	HeadIDs   []schema.Attr    // ids of HeadVars, positionally aligned
	Kind      Kind
	Root      int // Yannakakis reduction root (-1 for cyclic plans)
	Cls       *core.Classification
	Prog      *program.Program // solves (D, Head) over per-atom states
	Atoms     []AtomBinding    // one per body atom, aligned with D.Rels
}

// Compile parses and compiles one query text.
func Compile(text string) (*Compiled, error) {
	q, err := Parse(text)
	if err != nil {
		return nil, err
	}
	return q.Compile()
}

// Compile builds the query's hypergraph over a fresh variable universe,
// classifies it through the GYO machinery, and plans it:
//
//   - free-connex (the hypergraph plus the head-variable hyperedge is
//     still a tree schema): Yannakakis rooted at the atom covering the
//     most head variables, so projections push below the semijoin
//     program;
//   - acyclic but not free-connex: plain Yannakakis;
//   - cyclic: reduce each atom to its live variables, join greedily,
//     project onto the head.
func (q *Query) Compile() (*Compiled, error) {
	u := schema.NewUniverse()
	d := schema.New(u)
	atoms := make([]AtomBinding, len(q.Body))
	for i := range q.Body {
		a := &q.Body[i]
		names, err := predAttrs(a)
		if err != nil {
			return nil, err
		}
		if len(names) != len(a.Args) {
			return nil, errAt(a.Pos, "predicate %q has %d attributes (%s) but %d arguments",
				a.Pred, len(names), strings.Join(names, ", "), len(a.Args))
		}
		vars := make([]schema.Attr, len(a.Args))
		var set schema.AttrSet
		for p, v := range a.Args {
			id := u.Attr(v.Name)
			vars[p] = id
			set = set.Add(id)
		}
		d.Add(set)
		atoms[i] = AtomBinding{Pred: a.Pred, Attrs: names, Vars: vars}
	}
	headIDs := make([]schema.Attr, len(q.Head.Args))
	headVars := make([]string, len(q.Head.Args))
	var head schema.AttrSet
	for p, v := range q.Head.Args {
		id, ok := u.Lookup(v.Name)
		if !ok {
			// validate() guarantees safety; belt and braces.
			return nil, errAt(v.Pos, "unsafe head variable %s", v.Name)
		}
		headIDs[p] = id
		headVars[p] = v.Name
		head = head.Add(id)
	}
	c := &Compiled{
		Query:     q,
		Canonical: q.String(),
		U:         u,
		D:         d,
		Head:      head,
		HeadVars:  headVars,
		HeadIDs:   headIDs,
		Atoms:     atoms,
	}
	if err := c.plan(); err != nil {
		return nil, err
	}
	return c, nil
}

// predAttrs maps a predicate name to the attribute names of the stored
// relation it addresses, mirroring the schema parser's two styles: a
// name without underscores is the paper's compact style (one
// single-rune attribute per rune: "ab" → a, b), and underscores play
// the role of the schema text's spaces ("user_id" → user, id).
func predAttrs(a *Atom) ([]string, error) {
	var names []string
	if strings.Contains(a.Pred, "_") {
		for _, f := range strings.Split(a.Pred, "_") {
			if f == "" {
				return nil, errAt(a.Pos, "bad predicate %q: empty attribute name around \"_\"", a.Pred)
			}
			names = append(names, f)
		}
	} else {
		for _, r := range a.Pred {
			names = append(names, string(r))
		}
	}
	for i, n := range names {
		for j := 0; j < i; j++ {
			if names[j] == n {
				return nil, errAt(a.Pos, "predicate %q repeats attribute %q", a.Pred, n)
			}
		}
	}
	return names, nil
}

// plan classifies the hypergraph and builds the program.
func (c *Compiled) plan() error {
	cls, err := core.Classify(c.D)
	if err != nil {
		return err
	}
	c.Cls = cls
	switch {
	case cls.Tree && gyo.IsTree(c.D.WithRel(c.Head)):
		c.Kind = KindFreeConnex
		c.Root = freeConnexRoot(c.D, c.Head)
		c.Prog, err = program.YannakakisRooted(c.D, c.Head, cls.QualTree, c.Root)
	case cls.Tree:
		c.Kind = KindAcyclic
		c.Root = 0
		c.Prog, err = program.Yannakakis(c.D, c.Head, cls.QualTree)
	default:
		c.Kind = KindCyclic
		c.Root = -1
		c.Prog, err = cyclicFallback(c.D, c.Head)
	}
	return err
}

// freeConnexRoot picks the Yannakakis reduction root for a free-connex
// query: the atom covering the most head variables (lowest index on
// ties). Rooting there is what makes free-connex pay off — every
// non-root node projects down to its subtree's head variables plus the
// parent link before its parent joins it, so the join widths are
// bounded by atom ∪ head widths instead of growing toward the full
// join.
func freeConnexRoot(d *schema.Schema, head schema.AttrSet) int {
	best, bestCover := 0, -1
	for i, r := range d.Rels {
		if cov := r.IntersectCard(head); cov > bestCover {
			best, bestCover = i, cov
		}
	}
	return best
}

// cyclicFallback is the reduce-then-join-then-project plan for cyclic
// hypergraphs: each atom is pre-projected onto its live variables (head
// variables plus variables shared with another atom — a variable seen
// by exactly one atom and absent from the head cannot influence the
// answer beyond existence, which the join preserves), the projections
// are joined in greedy shared-attribute order, and the result is
// projected onto the head.
func cyclicFallback(d *schema.Schema, head schema.AttrSet) (*program.Program, error) {
	occ := d.AttrOccurrences()
	live := head.Clone()
	for a, n := range occ {
		if n > 1 {
			live = live.Add(schema.Attr(a))
		}
	}
	inputs := make([]program.InputRef, len(d.Rels))
	pd := schema.New(d.U)
	idx := make([]int, len(d.Rels))
	for i, r := range d.Rels {
		idx[i] = i
		keep := r.Intersect(live)
		if keep.IsEmpty() || keep.Equal(r) {
			// All-dead atoms stay whole: they are pure existence filters,
			// and a zero-width intermediate buys nothing.
			inputs[i] = program.InputRef{Rel: i}
			pd.Add(r)
			continue
		}
		inputs[i] = program.InputRef{Rel: i, Proj: keep}
		pd.Add(keep)
	}
	order := program.GreedyJoinOrder(pd, idx)
	return program.JoinProjectOrdered(d, head, inputs, order)
}

// Fingerprint hashes a canonical query text into the 128-bit key the
// engine's plan cache uses: two independent 64-bit FNV-1a streams over
// the text, each passed through a splitmix-style finalizer. The key is
// probabilistic — cache hits are verified by comparing canonical texts,
// so a collision degrades to a miss, never to a wrong plan.
func Fingerprint(canonical string) (a, b uint64) {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	a, b = offset64, offset64^0x9e3779b97f4a7c15
	for i := 0; i < len(canonical); i++ {
		c := uint64(canonical[i])
		a = (a ^ c) * prime64
		b = (b ^ c) * prime64
	}
	return fpFinal(a), fpFinal(b)
}

// fpFinal is the splitmix64 finalizer: full-avalanche mixing so related
// texts land in unrelated cache slots.
func fpFinal(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// MustCompile is Compile that panics on error; for tests and examples.
func MustCompile(text string) *Compiled {
	c, err := Compile(text)
	if err != nil {
		panic(fmt.Sprintf("cq: %v", err))
	}
	return c
}
