package cq

import "testing"

// FuzzParseCQ asserts the parse → format → parse fixpoint: any text the
// parser accepts must render to a canonical form the parser accepts
// again, and that canonical form must be stable. This pins down both
// directions of the grammar at once — the lexer/parser never accepts
// something String() cannot reproduce, and String() never emits
// something Parse rejects.
func FuzzParseCQ(f *testing.F) {
	seeds := []string{
		"ans(X, Z) :- ab(X, Y), bc(Y, Z).",
		"ans(X):-a(X).",
		"t(A,B,C) :- ab(A,B), bc(B,C), ca(C,A).",
		"out(V) :- user_id(U, V).",
		"self(X, Z) :- ab(X, Y), ab(Y, Z).",
		"ans(Y) :- r(X).",
		"Ans(X) :- r(X).",
		"ans(X) :- r(X, X).",
		"ans(X) :- r(1).",
		"ans(X) :- r(X)",
		":- r(X).",
		"ans(X) :- r(X). junk",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		q, err := Parse(text)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		canon := q.String()
		q2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form of accepted input does not re-parse:\ninput %q\ncanon %q\nerr   %v",
				text, canon, err)
		}
		if got := q2.String(); got != canon {
			t.Fatalf("canonical form is not a fixpoint:\ninput %q\ncanon %q\nre    %q", text, canon, got)
		}
	})
}
