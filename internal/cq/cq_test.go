package cq

import (
	"errors"
	"strings"
	"testing"
)

func TestParseCanonical(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{
			"ans(X,Z):-ab(X,Y),bc(Y,Z).",
			"ans(X, Z) :- ab(X, Y), bc(Y, Z).",
		},
		{
			"  ans( X , Z )\n\t:- ab(X, Y)  ,\n bc(Y, Z) . ",
			"ans(X, Z) :- ab(X, Y), bc(Y, Z).",
		},
		{
			"out(V) :- user_id(U, V).",
			"out(V) :- user_id(U, V).",
		},
	}
	for _, c := range cases {
		q, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := q.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	texts := []string{
		"ans(X, Z) :- ab(X, Y), bc(Y, Z).",
		"ans(X) :- a(X).",
		"t(A, B, C) :- ab(A, B), bc(B, C), ca(C, A).",
		"self(X, Z) :- ab(X, Y), ab(Y, Z).",
	}
	for _, s := range texts {
		q, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-parsing canonical %q: %v", q.String(), err)
		}
		if q2.String() != q.String() {
			t.Errorf("round trip changed canonical form: %q -> %q", q.String(), q2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in   string
		pos  string // "line:col" of the reported error
		frag string // substring of the message
	}{
		{"", "1:1", "expected identifier"},
		{"ans(X)", "1:7", "expected \":-\""},
		{"ans(X) :- r(X)", "1:15", "expected \".\""},
		{"ans(X) :- r(X). trailing", "1:17", "trailing input"},
		{"Ans(X) :- r(X).", "1:1", "must not be uppercase-initial"},
		{"ans(x) :- r(x).", "1:5", "must be variables"},
		{"ans(X) :- r(1).", "1:13", "constants are not supported"},
		{"ans(X) :- r(X, X).", "1:16", "repeated within"},
		{"ans(X, X) :- r(X).", "1:8", "head variable X repeated"},
		{"ans(Y) :- r(X).", "1:5", "unsafe head variable Y"},
		{"ans(X) :- r(X)? .", "1:15", "unexpected character"},
		{"ans(X) :\nr(X).", "1:8", "expected \":-\""},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error %q", c.in, c.frag)
			continue
		}
		var pe *Error
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q) error %v is not a *cq.Error", c.in, err)
			continue
		}
		if pe.Pos.String() != c.pos {
			t.Errorf("Parse(%q) error at %s, want %s (%v)", c.in, pe.Pos, c.pos, err)
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) = %v, want message containing %q", c.in, err, c.frag)
		}
	}
}

func TestParseSizeLimits(t *testing.T) {
	var b strings.Builder
	b.WriteString("ans(X0) :- ")
	for i := 0; i <= MaxBodyAtoms; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("ab(X0, Y0)")
	}
	b.WriteString(".")
	if _, err := Parse(b.String()); err == nil || !strings.Contains(err.Error(), "too many atoms") {
		t.Errorf("oversized body = %v, want \"too many atoms\"", err)
	}
}

func TestCompileArityAndPredicates(t *testing.T) {
	cases := []struct {
		in   string
		frag string
	}{
		{"ans(X) :- ab(X).", "has 2 attributes"},
		{"ans(X) :- aa(X, Y).", "repeats attribute"},
		{"ans(X) :- a_(X, Y).", "empty attribute name"},
	}
	for _, c := range cases {
		_, err := Compile(c.in)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Compile(%q) = %v, want message containing %q", c.in, err, c.frag)
		}
	}

	// The two predicate styles address the right attribute names.
	c := MustCompile("ans(V) :- user_id(U, V).")
	if got := c.Atoms[0].Attrs; len(got) != 2 || got[0] != "user" || got[1] != "id" {
		t.Errorf("user_id attrs = %v, want [user id]", got)
	}
	c = MustCompile("ans(X) :- ab(X, Y).")
	if got := c.Atoms[0].Attrs; len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("ab attrs = %v, want [a b]", got)
	}
}

func TestFingerprint(t *testing.T) {
	a1, b1 := Fingerprint("ans(X) :- ab(X, Y).")
	a2, b2 := Fingerprint("ans(X) :- ab(X, Z).")
	if a1 == a2 && b1 == b2 {
		t.Error("distinct canonical texts share a fingerprint")
	}
	a3, b3 := Fingerprint("ans(X) :- ab(X, Y).")
	if a1 != a3 || b1 != b3 {
		t.Error("fingerprint is not deterministic")
	}
}
