// Package cq implements a small Datalog-style conjunctive-query text
// format over the paper's machinery:
//
//	ans(X, Z) :- ab(X, Y), bc(Y, Z).
//
// A query is a head atom, ":-", and a comma-separated body of atoms
// over variables (uppercase-initial identifiers). Each body predicate
// names a stored relation in the schema parser's notation, with "_"
// standing in for the space of the multi-character style: "ab" is the
// paper's compact relation over attributes a and b, "user_id" the
// relation over attributes user and id. Variables bind positionally to
// the predicate's attributes in written order.
//
// The package is deliberately small: no constants, no negation, no
// repeated variables within an atom, no rules — exactly the
// select-project-join fragment the paper's GYO classification and
// tree-query machinery decides. Compilation builds the query's
// hypergraph over a per-query variable universe, classifies it, and
// plans it with free-connex-aware root selection (see Compile).
package cq

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Limits on query size: the parser rejects anything larger before the
// planner spends work on it, so a hostile client cannot feed the server
// a pathological hypergraph.
const (
	// MaxBodyAtoms caps the number of body atoms per query.
	MaxBodyAtoms = 64
	// MaxVariables caps the number of distinct variables per query.
	MaxVariables = 256
)

// Pos is a source position within the query text.
type Pos struct {
	Offset int // byte offset, 0-based
	Line   int // 1-based
	Col    int // 1-based, counted in runes
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a parse or compile error anchored to a source position, so
// clients can point at the offending token rather than guess.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("cq: %s: %s", e.Pos, e.Msg) }

func errAt(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Var is one variable occurrence.
type Var struct {
	Name string
	Pos  Pos
}

// Atom is one atom: a predicate applied to variables.
type Atom struct {
	Pred string
	Pos  Pos
	Args []Var
}

// Query is a parsed conjunctive query: head :- body.
type Query struct {
	Head Atom
	Body []Atom
}

// String renders the query in canonical form — single spaces, ", "
// separators, a trailing "." — such that Parse(q.String()) yields a
// structurally identical query. The canonical text is the query's
// cache identity (see Fingerprint).
func (q *Query) String() string {
	var b strings.Builder
	writeAtom(&b, &q.Head)
	b.WriteString(" :- ")
	for i := range q.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		writeAtom(&b, &q.Body[i])
	}
	b.WriteString(".")
	return b.String()
}

func writeAtom(b *strings.Builder, a *Atom) {
	b.WriteString(a.Pred)
	b.WriteString("(")
	for i, v := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.Name)
	}
	b.WriteString(")")
}

// ---- lexer ----

type tokKind int

const (
	tokIdent tokKind = iota
	tokLParen
	tokRParen
	tokComma
	tokImplies // ":-"
	tokDot
	tokEOF
)

func (k tokKind) String() string {
	switch k {
	case tokIdent:
		return "identifier"
	case tokLParen:
		return "\"(\""
	case tokRParen:
		return "\")\""
	case tokComma:
		return "\",\""
	case tokImplies:
		return "\":-\""
	case tokDot:
		return "\".\""
	default:
		return "end of query"
	}
}

type token struct {
	kind tokKind
	text string
	pos  Pos
}

type lexer struct {
	src       string
	off       int
	line, col int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) pos() Pos { return Pos{Offset: l.off, Line: l.line, Col: l.col} }

// bump consumes one rune, tracking line/col.
func (l *lexer) bump() rune {
	r, w := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) peek() rune {
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

func isIdentRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) next() (token, error) {
	for l.off < len(l.src) {
		switch r := l.peek(); r {
		case ' ', '\t', '\r', '\n':
			l.bump()
		default:
			goto scan
		}
	}
scan:
	pos := l.pos()
	if l.off >= len(l.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	switch r := l.peek(); {
	case r == '(':
		l.bump()
		return token{kind: tokLParen, text: "(", pos: pos}, nil
	case r == ')':
		l.bump()
		return token{kind: tokRParen, text: ")", pos: pos}, nil
	case r == ',':
		l.bump()
		return token{kind: tokComma, text: ",", pos: pos}, nil
	case r == '.':
		l.bump()
		return token{kind: tokDot, text: ".", pos: pos}, nil
	case r == ':':
		l.bump()
		if l.peek() != '-' {
			return token{}, errAt(pos, "expected \":-\" (got \":%c\")", l.peek())
		}
		l.bump()
		return token{kind: tokImplies, text: ":-", pos: pos}, nil
	case isIdentRune(r):
		start := l.off
		for l.off < len(l.src) && isIdentRune(l.peek()) {
			l.bump()
		}
		return token{kind: tokIdent, text: l.src[start:l.off], pos: pos}, nil
	default:
		return token{}, errAt(pos, "unexpected character %q", r)
	}
}

// ---- parser ----

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k tokKind, context string) (token, error) {
	if p.tok.kind != k {
		return token{}, errAt(p.tok.pos, "expected %s %s, got %s", k, context, p.describe())
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) describe() string {
	if p.tok.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", p.tok.text)
}

// Parse parses one conjunctive query. Errors carry the line:column of
// the offending token.
func Parse(text string) (*Query, error) {
	p := &parser{lex: newLexer(text)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	head, err := p.atom("in the head")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokImplies, "after the head"); err != nil {
		return nil, err
	}
	var body []Atom
	for {
		a, err := p.atom("in the body")
		if err != nil {
			return nil, err
		}
		body = append(body, a)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokDot, "after the body"); err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, errAt(p.tok.pos, "trailing input after \".\"")
	}
	q := &Query{Head: head, Body: body}
	if err := q.validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// atom parses pred(V1, …, Vn).
func (p *parser) atom(context string) (Atom, error) {
	pred, err := p.expect(tokIdent, fmt.Sprintf("(a predicate) %s", context))
	if err != nil {
		return Atom{}, err
	}
	if r, _ := utf8.DecodeRuneInString(pred.text); unicode.IsUpper(r) {
		return Atom{}, errAt(pred.pos,
			"predicate %q must not be uppercase-initial (uppercase-initial identifiers are variables)", pred.text)
	}
	a := Atom{Pred: pred.text, Pos: pred.pos}
	if _, err := p.expect(tokLParen, fmt.Sprintf("after predicate %q", pred.text)); err != nil {
		return Atom{}, err
	}
	for {
		arg := p.tok
		if arg.kind != tokIdent {
			return Atom{}, errAt(arg.pos, "expected a variable in %s(...), got %s", pred.text, p.describe())
		}
		switch r, _ := utf8.DecodeRuneInString(arg.text); {
		case unicode.IsDigit(r):
			return Atom{}, errAt(arg.pos, "constants are not supported (%q in %s(...))", arg.text, pred.text)
		case !unicode.IsUpper(r):
			return Atom{}, errAt(arg.pos,
				"arguments must be variables — uppercase-initial identifiers (%q in %s(...))", arg.text, pred.text)
		}
		a.Args = append(a.Args, Var{Name: arg.text, Pos: arg.pos})
		if err := p.advance(); err != nil {
			return Atom{}, err
		}
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return Atom{}, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, fmt.Sprintf("closing %s(...)", pred.text)); err != nil {
		return Atom{}, err
	}
	return a, nil
}

// validate enforces the semantic rules the grammar cannot: size bounds,
// no repeated variables within an atom, distinct head variables, and
// safety (every head variable bound in the body).
func (q *Query) validate() error {
	if len(q.Body) > MaxBodyAtoms {
		return errAt(q.Body[MaxBodyAtoms].Pos, "too many atoms (max %d)", MaxBodyAtoms)
	}
	bound := make(map[string]bool)
	nvars := 0
	for i := range q.Body {
		a := &q.Body[i]
		seen := make(map[string]bool, len(a.Args))
		for _, v := range a.Args {
			if seen[v.Name] {
				return errAt(v.Pos,
					"variable %s repeated within %s(...) (repeated variables in one atom are not supported)",
					v.Name, a.Pred)
			}
			seen[v.Name] = true
			if !bound[v.Name] {
				bound[v.Name] = true
				nvars++
				if nvars > MaxVariables {
					return errAt(v.Pos, "too many variables (max %d)", MaxVariables)
				}
			}
		}
	}
	headSeen := make(map[string]bool, len(q.Head.Args))
	for _, v := range q.Head.Args {
		if headSeen[v.Name] {
			return errAt(v.Pos, "head variable %s repeated", v.Name)
		}
		headSeen[v.Name] = true
		if !bound[v.Name] {
			return errAt(v.Pos, "unsafe head variable %s: not bound by any body atom", v.Name)
		}
	}
	return nil
}
