package cq

import (
	"testing"

	"gyokit/internal/program"
	"gyokit/internal/relation"
)

func TestCompileKinds(t *testing.T) {
	cases := []struct {
		query string
		kind  Kind
	}{
		// Head covers an atom's full width plus a dangling variable: the
		// hypergraph plus the head edge stays a tree.
		{"ans(X, Y) :- ab(X, Y), bc(Y, Z).", KindFreeConnex},
		// The classic π_{x,z}(R ⋈ S): acyclic, but the head edge {X,Z}
		// closes the triangle.
		{"ans(X, Z) :- ab(X, Y), bc(Y, Z).", KindAcyclic},
		// The full join of a tree schema is always free-connex.
		{"ans(X, Y, Z) :- ab(X, Y), bc(Y, Z).", KindFreeConnex},
		// Endpoints of a length-3 chain: the head edge {A,D} closes a
		// 4-cycle.
		{"ans(A, D) :- ab(A, B), bc(B, C), cd(C, D).", KindAcyclic},
		// The triangle is cyclic before the head even enters.
		{"ans(X, Y) :- ab(X, Y), bc(Y, Z), ca(Z, X).", KindCyclic},
		// A single atom is trivially free-connex.
		{"ans(X) :- ab(X, Y).", KindFreeConnex},
	}
	for _, c := range cases {
		comp, err := Compile(c.query)
		if err != nil {
			t.Errorf("Compile(%q): %v", c.query, err)
			continue
		}
		if comp.Kind != c.kind {
			t.Errorf("Compile(%q).Kind = %s, want %s", c.query, comp.Kind, c.kind)
		}
		if c.kind == KindCyclic && comp.Root != -1 {
			t.Errorf("cyclic plan has root %d, want -1", comp.Root)
		}
	}
}

// maxStmtWidth is the widest schema any program statement materializes
// — the quantity free-connex rooting keeps bounded.
func maxStmtWidth(p *program.Program) int {
	max := 0
	n := len(p.D.Rels)
	for i := range p.Stmts {
		if w := p.SchemaOf(n + i).Card(); w > max {
			max = w
		}
	}
	return max
}

// TestFreeConnexPlanGolden is the plan-shape proof for the free-connex
// path: with the head {X, Y} covering atom ab entirely, rooting the
// Yannakakis reduction at ab keeps every intermediate at width ≤ 2 —
// the full join {X, Y, Z} never materializes. The same body with head
// {X, Z} (not free-connex) has no such root, and its plan provably
// widens to 3.
func TestFreeConnexPlanGolden(t *testing.T) {
	fc := MustCompile("ans(X, Y) :- ab(X, Y), bc(Y, Z).")
	if fc.Kind != KindFreeConnex {
		t.Fatalf("kind = %s, want free-connex", fc.Kind)
	}
	if fc.Root != 0 {
		t.Fatalf("root = %d, want 0 (the atom covering both head variables)", fc.Root)
	}
	if w := maxStmtWidth(fc.Prog); w > 2 {
		t.Errorf("free-connex plan materializes width %d > 2: projections were not pushed below the joins\n%v",
			w, fc.Prog)
	}

	ac := MustCompile("ans(X, Z) :- ab(X, Y), bc(Y, Z).")
	if ac.Kind != KindAcyclic {
		t.Fatalf("kind = %s, want acyclic", ac.Kind)
	}
	if w := maxStmtWidth(ac.Prog); w != 3 {
		t.Errorf("non-free-connex fallback plan has max width %d, want 3 (the full join)", w)
	}
}

// relFor fills one body atom's relation with the given rows (columns in
// the atom's sorted-variable order).
func relFor(c *Compiled, i int, rows [][]relation.Value) *relation.Relation {
	r := relation.New(c.U, c.D.Rels[i])
	for _, row := range rows {
		r.Insert(relation.Tuple(row))
	}
	return r
}

func evalCompiled(t *testing.T, c *Compiled, db *relation.Database) *relation.Relation {
	t.Helper()
	out, _, err := c.Prog.Eval(db)
	if err != nil {
		t.Fatalf("evaluating %q: %v", c.Canonical, err)
	}
	return out
}

// TestPlanCorrectness checks each plan kind against the naive
// join-everything-then-project plan on the same data.
func TestPlanCorrectness(t *testing.T) {
	queries := []string{
		"ans(X, Y) :- ab(X, Y), bc(Y, Z).",
		"ans(X, Z) :- ab(X, Y), bc(Y, Z).",
		"ans(X, Y, Z) :- ab(X, Y), bc(Y, Z).",
		"ans(X, Y) :- ab(X, Y), bc(Y, Z), ca(Z, X).",
	}
	for _, qt := range queries {
		c := MustCompile(qt)
		db := &relation.Database{D: c.D}
		for i := range c.D.Rels {
			// Small overlapping binary relations: every atom in these
			// queries is binary, and the value ranges make joins both hit
			// and miss.
			rows := [][]relation.Value{{1, 2}, {2, 3}, {3, 4}, {2, 2}, {5, 9}}
			db.Rels = append(db.Rels, relFor(c, i, rows))
		}
		got := evalCompiled(t, c, db)

		naive, err := program.NaivePlan(c.D, c.Head)
		if err != nil {
			t.Fatalf("NaivePlan(%q): %v", qt, err)
		}
		want, _, err := naive.Eval(db)
		if err != nil {
			t.Fatalf("naive eval(%q): %v", qt, err)
		}
		if !got.Equal(want) {
			t.Errorf("%q: compiled plan disagrees with naive plan:\ngot  %v\nwant %v", qt, got, want)
		}
	}
}

func BenchmarkQueryParse(b *testing.B) {
	const text = "ans(A, D) :- ab(A, B), bc(B, C), cd(C, D)."
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(text); err != nil {
			b.Fatal(err)
		}
	}
}
