package lossless

import (
	"math/rand"
	"testing"

	"gyokit/internal/gen"
	"gyokit/internal/gyo"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

func parse(t *testing.T, u *schema.Universe, s string) *schema.Schema {
	t.Helper()
	d, err := schema.Parse(u, s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestSection51Counterexample: D = (abc, ab, bc), D′ = (ab, bc):
// ⋈D ⊭ ⋈D′ and D′ is not a subtree of D.
func TestSection51Counterexample(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "abc, ab, bc")
	dp := parse(t, u, "ab, bc")
	if Implies(d, dp) {
		t.Error("Theorem 5.1 route: ⋈D ⊨ ⋈D′ should fail")
	}
	if ImpliesTableau(d, dp) {
		t.Error("tableau route: ⋈D ⊨ ⋈D′ should fail")
	}
	if holds, applicable := ImpliesSubtree(d, dp); !applicable || holds {
		t.Error("subtree route: should be applicable and false")
	}
	// And a concrete semantic witness exists.
	if _, found := Falsify(d, dp, rand.New(rand.NewSource(1)), 50, 6, 2); !found {
		t.Error("no semantic counterexample found (expected one)")
	}
}

func TestPositiveCases(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "abc, ab, bc")
	// (abc, ab) is a subtree; the implication holds.
	dp := parse(t, u, "abc, ab")
	if !Implies(d, dp) || !ImpliesTableau(d, dp) {
		t.Error("⋈D ⊨ ⋈(abc, ab) should hold")
	}
	if holds, applicable := ImpliesSubtree(d, dp); !applicable || !holds {
		t.Error("subtree route should confirm")
	}
	// Trivially, ⋈D ⊨ ⋈D.
	if !Implies(d, d) {
		t.Error("⋈D ⊨ ⋈D should hold")
	}
	// No semantic counterexample should exist.
	if w, found := Falsify(d, dp, rand.New(rand.NewSource(2)), 60, 6, 2); found {
		t.Errorf("spurious counterexample: %s", w)
	}
}

func TestImpliesPanicsWithoutLE(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab, bc")
	dp := parse(t, u, "cd")
	defer func() {
		if recover() == nil {
			t.Error("D′ ⊀ D should panic")
		}
	}()
	Implies(d, dp)
}

// TestRoutesAgreeRandom: the CC route and tableau route must agree on
// random schemas, and on tree schemas the subtree route must agree too.
func TestRoutesAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 80; trial++ {
		var d *schema.Schema
		if trial%2 == 0 {
			d = gen.RandomSchema(rng, 2+rng.Intn(4), 2+rng.Intn(4), 0.5)
		} else {
			d = gen.TreeSchema(rng, 2+rng.Intn(4), 2, 2)
		}
		dp, _ := gen.SubSchema(rng, d)
		a := Implies(d, dp)
		b := ImpliesTableau(d, dp)
		if a != b {
			t.Fatalf("CC route %v ≠ tableau route %v for D=%s D'=%s", a, b, d, dp)
		}
		if holds, applicable := ImpliesSubtree(d, dp); applicable && holds != a {
			t.Fatalf("subtree route %v ≠ CC route %v for tree D=%s D'=%s", holds, a, d, dp)
		}
	}
}

// TestSemanticSoundness: whenever Implies says yes, no random universal
// relation may violate it; whenever the falsifier finds a witness,
// Implies must say no.
func TestSemanticSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 40; trial++ {
		d := gen.RandomSchema(rng, 2+rng.Intn(3), 2+rng.Intn(3), 0.6)
		dp, _ := gen.SubSchema(rng, d)
		holds := Implies(d, dp)
		witness, found := Falsify(d, dp, rng, 25, 5, 2)
		if holds && found {
			t.Fatalf("⊨ claimed but witness found: D=%s D'=%s J=%s", d, dp, witness)
		}
	}
}

// TestCorollary52 on random tree schemas: ⋈D ⊨ ⋈D′ iff D′ is a subtree.
func TestCorollary52(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 60; trial++ {
		d := gen.TreeSchema(rng, 2+rng.Intn(4), 2, 2)
		dp, _ := gen.SubSchema(rng, d)
		holds, applicable := ImpliesSubtree(d, dp)
		if !applicable {
			t.Fatal("should be applicable for tree schemas and sub-multisets")
		}
		if holds != Implies(d, dp) {
			t.Fatalf("Corollary 5.2 failed: D=%s D'=%s", d, dp)
		}
	}
}

func TestMinimumQualGraphs(t *testing.T) {
	u := schema.NewUniverse()
	// Chain: minimum qual graphs are exactly its qual trees (2 edges).
	chain := parse(t, u, "ab, bc, cd")
	gs := MinimumQualGraphs(chain)
	if len(gs) == 0 {
		t.Fatal("no minimum qual graphs for a tree schema")
	}
	for _, g := range gs {
		if g.EdgeCount() != 2 {
			t.Errorf("chain min qual graph has %d edges", g.EdgeCount())
		}
		if !g.IsTree() {
			t.Error("chain min qual graph should be a tree")
		}
	}
	// Triangle: the only qual graph is the triangle itself (3 edges).
	tri := parse(t, u, "ab, bc, ac")
	gs2 := MinimumQualGraphs(tri)
	if len(gs2) != 1 || gs2[0].EdgeCount() != 3 {
		t.Errorf("triangle min qual graphs wrong: %d graphs", len(gs2))
	}
}

// TestUJRTreeSchemas: every UR database over a tree schema is UJR ([11]).
func TestUJRTreeSchemas(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 15; trial++ {
		d := gen.TreeSchema(rng, 2+rng.Intn(3), 2, 2)
		i, _ := relation.RandomUniversal(d.U, d.Attrs(), 12, 3, rng)
		db := relation.URDatabase(d, i)
		if !IsUJR(db) {
			t.Fatalf("UR database over tree schema %s not UJR", d)
		}
	}
}

// TestUJRCyclicCounterexample: for the Aring of size 3, some UR
// database is not UJR ([11]: for every cyclic schema such a database
// exists).
func TestUJRCyclicCounterexample(t *testing.T) {
	d := gen.Ring(3)
	if gyo.IsTree(d) {
		t.Fatal("ring should be cyclic")
	}
	rng := rand.New(rand.NewSource(5))
	found := false
	for trial := 0; trial < 60 && !found; trial++ {
		i, _ := relation.RandomUniversal(d.U, d.Attrs(), 6, 2, rng)
		db := relation.URDatabase(d, i)
		if !IsUJR(db) {
			found = true
		}
	}
	if !found {
		t.Error("no UJR-violating UR database found for the triangle")
	}
}
