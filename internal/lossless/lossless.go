// Package lossless decides join-dependency implication ⋈D ⊨ ⋈D′ for
// universal-relation databases (paper §5.1): via canonical connections
// (Theorem 5.1), via tableau equivalence (Corollary 5.1), and — for
// tree schemas — via the subtree characterization (Corollary 5.2). It
// also provides a randomized semantic falsifier and the UJR ("ultra
// join reduced") property check discussed at the end of §5.1.
package lossless

import (
	"fmt"
	"math/rand"

	"gyokit/internal/graph"
	"gyokit/internal/gyo"
	"gyokit/internal/qualgraph"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
	"gyokit/internal/tableau"
)

// Implies decides ⋈D ⊨ ⋈D′ via Theorem 5.1: CC(D, ∪D′) ≤ D′.
// It requires D′ ≤ D (each relation schema of D′ contained in one of
// D), the setting in which the theorem is stated.
func Implies(d, dprime *schema.Schema) bool {
	requireLE(d, dprime)
	x := dprime.Attrs()
	cc := tableau.CC(d, x)
	return cc.LE(dprime)
}

// ImpliesTableau decides ⋈D ⊨ ⋈D′ via the equivalence
// (D, ∪D′) ≡ (D′, ∪D′) of the Theorem 5.1 proof, checked directly with
// tableau containment mappings (Corollary 5.1 route).
func ImpliesTableau(d, dprime *schema.Schema) bool {
	requireLE(d, dprime)
	x := dprime.Attrs()
	return tableau.QueriesEquivalent(d, dprime, x)
}

// ImpliesSubtree decides ⋈D ⊨ ⋈D′ for tree schemas via Corollary 5.2:
// it holds iff D′ is a subtree of D. applicable is false when D is
// cyclic or D′ is not a sub-multiset of D (the corollary's setting).
func ImpliesSubtree(d, dprime *schema.Schema) (holds, applicable bool) {
	if !gyo.IsTree(d) || !dprime.SubmultisetOf(d) {
		return false, false
	}
	return qualgraph.IsSubtree(d, dprime), true
}

func requireLE(d, dprime *schema.Schema) {
	if !dprime.LE(d) {
		panic(fmt.Sprintf("lossless: D′ = %s ⊀ D = %s", dprime, d))
	}
}

// Falsify searches for a semantic counterexample to ⋈D ⊨ ⋈D′: a
// universal relation J satisfying ⋈D but violating ⋈D′. It tries
// `trials` random universal relations I (closing each under ⋈D by
// taking J = ⋈_{R∈D} π_R(I)). A returned witness is definitive; failure
// to find one proves nothing.
func Falsify(d, dprime *schema.Schema, rng *rand.Rand, trials, tuples, domain int) (*relation.Relation, bool) {
	for k := 0; k < trials; k++ {
		i, _ := relation.RandomUniversal(d.U, d.Attrs(), tuples, domain, rng)
		db := relation.URDatabase(d, i)
		j := relation.JoinAll(db.Rels)
		if !relation.SatisfiesJD(j, d) {
			panic("lossless: internal: ⋈ of projections must satisfy ⋈D")
		}
		if !relation.SatisfiesJD(j, dprime) {
			return j, true
		}
	}
	return nil, false
}

// MinimumQualGraphs enumerates all qual graphs for d with the minimum
// number of edges (the graphs quantified over by the UJR property).
// Exponential in |D|²; intended for |D| ≤ 5.
func MinimumQualGraphs(d *schema.Schema) []*graph.Undirected {
	n := len(d.Rels)
	if n > 6 {
		panic("lossless: MinimumQualGraphs limited to |D| ≤ 6")
	}
	var pairs [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	var best []*graph.Undirected
	bestEdges := -1
	for mask := 0; mask < 1<<len(pairs); mask++ {
		g := graph.NewUndirected(n)
		edges := 0
		for b, p := range pairs {
			if mask&(1<<b) != 0 {
				g.MustAddEdge(p[0], p[1])
				edges++
			}
		}
		if bestEdges >= 0 && edges > bestEdges {
			continue
		}
		if !qualgraph.IsQualGraph(d, g) {
			continue
		}
		if bestEdges < 0 || edges < bestEdges {
			bestEdges = edges
			best = best[:0]
		}
		best = append(best, g)
	}
	return best
}

// IsUJR reports whether the UR database db is ultra join reduced: for
// every minimum-size qual graph G for D and every connected subgraph of
// G on nodes S, ⋈_{i∈S} Rᵢ = π_{U(S)}(⋈ᵢ Rᵢ). For tree schemas this
// always holds on UR databases; for every cyclic schema some UR
// database violates it ([11], discussed in §5.1).
func IsUJR(db *relation.Database) bool {
	d := db.D
	n := len(d.Rels)
	full := relation.JoinAll(db.Rels)
	for _, g := range MinimumQualGraphs(d) {
		for mask := 1; mask < 1<<n; mask++ {
			var idx []int
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					idx = append(idx, i)
				}
			}
			in := func(v int) bool { return mask&(1<<v) != 0 }
			if !g.ConnectedOn(in) {
				continue
			}
			var attrs schema.AttrSet
			rels := make([]*relation.Relation, 0, len(idx))
			for _, i := range idx {
				attrs = attrs.Union(d.Rels[i])
				rels = append(rels, db.Rels[i])
			}
			if !relation.JoinAll(rels).Equal(full.Project(attrs)) {
				return false
			}
		}
	}
	return true
}
