// Package treeproj implements tree projections (paper §3.2): D″ is a
// tree projection of D′ with respect to D, written D″ ∈ TP(D′, D),
// when D ≤ D″ ≤ D′ and D″ is a tree schema. Tree projections are the
// crux of join/semijoin/project query processing (Theorems 6.1–6.4).
//
// Verifying membership is cheap; deciding existence is intractable in
// general (the closely related fixed-treefication problem is proved
// NP-complete by the paper's Theorem 4.2, and tree projection existence
// itself is NP-hard). Exists therefore runs an exact search over a
// finite candidate-bag pool. The default pool (members of D, members
// of D′, and pairwise intersections of D′ members) suffices for every
// construction appearing in the paper — in particular D″ drawn from
// the relations materialized by a program P (Theorems 6.1–6.4) and the
// §3.2 worked example — but a "not found" answer is definitive only
// relative to the pool, which FindResult reports.
package treeproj

import (
	"sort"

	"gyokit/internal/gyo"
	"gyokit/internal/schema"
)

// IsTreeProjection reports whether dpp ∈ TP(dprime, d):
// D ≤ D″, D″ ≤ D′, and D″ is a tree schema.
func IsTreeProjection(dpp, dprime, d *schema.Schema) bool {
	return d.LE(dpp) && dpp.LE(dprime) && gyo.IsTree(dpp)
}

// IsTreeProjectionWrtQuery reports D″ ∈ TP(D′, Q) for Q = (D, X):
// per §3.2 this is D″ ∈ TP(D′, D ∪ (X)).
func IsTreeProjectionWrtQuery(dpp, dprime, d *schema.Schema, x schema.AttrSet) bool {
	return IsTreeProjection(dpp, dprime, d.WithRel(x))
}

// Result reports the outcome of a tree-projection search.
type Result struct {
	Found bool
	// TP is a witness tree projection when Found.
	TP *schema.Schema
	// PoolSize is the number of candidate bags considered; a negative
	// answer is exhaustive over this pool only.
	PoolSize int
}

// Exists searches for a tree projection of dprime wrt d using the
// default candidate pool. See the package comment for the pool's
// completeness caveat.
func Exists(dprime, d *schema.Schema) Result {
	return FindWithinPool(DefaultPool(dprime, d), dprime, d)
}

// ExistsWrtQuery searches for D″ ∈ TP(D′, (D, X)).
func ExistsWrtQuery(dprime, d *schema.Schema, x schema.AttrSet) Result {
	return Exists(dprime, d.WithRel(x))
}

// DefaultPool builds the candidate bag pool: every member of D and D′
// that fits under some member of D′, plus all pairwise intersections
// of D′ members. Duplicates are removed.
func DefaultPool(dprime, d *schema.Schema) []schema.AttrSet {
	var raw []schema.AttrSet
	raw = append(raw, dprime.Rels...)
	raw = append(raw, d.Rels...)
	for i := 0; i < len(dprime.Rels); i++ {
		for j := i + 1; j < len(dprime.Rels); j++ {
			raw = append(raw, dprime.Rels[i].Intersect(dprime.Rels[j]))
		}
	}
	seen := map[string]bool{}
	var pool []schema.AttrSet
	for _, s := range raw {
		if s.IsEmpty() {
			continue
		}
		// Must fit under D′ to be usable at all.
		ok := false
		for _, r := range dprime.Rels {
			if s.SubsetOf(r) {
				ok = true
				break
			}
		}
		if !ok {
			continue
		}
		k := s.Key()
		if !seen[k] {
			seen[k] = true
			pool = append(pool, s.Clone())
		}
	}
	schema.SortSets(pool)
	return pool
}

// FindWithinPool searches exhaustively for a tree projection whose
// relation schemas are drawn from pool. The search is exact over the
// pool: if any sub-multiset of pool forms a tree projection, one is
// found. Exponential in len(pool); intended for pools of ≲ 25 bags.
func FindWithinPool(pool []schema.AttrSet, dprime, d *schema.Schema) Result {
	res := Result{PoolSize: len(pool)}
	// Every bag must fit under D′ (DefaultPool guarantees it; caller
	// pools might not).
	var usable []schema.AttrSet
	for _, s := range pool {
		for _, r := range dprime.Rels {
			if s.SubsetOf(r) {
				usable = append(usable, s)
				break
			}
		}
	}
	// Prefer larger bags first: they cover more of D per bag, which
	// finds witnesses faster and yields small schemas.
	sort.Slice(usable, func(i, j int) bool { return usable[i].Card() > usable[j].Card() })

	// Each member of D must fit under some chosen bag. Branch over the
	// uncovered member with the fewest options.
	n := len(usable)
	coverOptions := make([][]int, len(d.Rels))
	for i, r := range d.Rels {
		for b := 0; b < n; b++ {
			if r.SubsetOf(usable[b]) {
				coverOptions[i] = append(coverOptions[i], b)
			}
		}
		if len(coverOptions[i]) == 0 {
			return res // some member of D cannot be covered at all
		}
	}
	chosen := make([]bool, n)
	seen := map[string]bool{}
	var current []schema.AttrSet

	var try func() *schema.Schema
	try = func() *schema.Schema {
		// Find an uncovered member of D with the fewest usable bags.
		best, bestOpts := -1, 0
		for i, r := range d.Rels {
			covered := false
			for bi, ok := range chosen {
				if ok && r.SubsetOf(usable[bi]) {
					covered = true
					break
				}
			}
			if covered {
				continue
			}
			if best == -1 || len(coverOptions[i]) < bestOpts {
				best, bestOpts = i, len(coverOptions[i])
			}
		}
		if best == -1 {
			// Full cover: is the chosen multiset a tree schema?
			cand := schema.New(d.U, current...)
			key := cand.Key()
			if seen[key] {
				return nil
			}
			seen[key] = true
			if gyo.IsTree(cand) {
				return cand
			}
			// Allow gluing: extend with additional unchosen bags, one at
			// a time, re-testing tree-ness. This finds witnesses such as
			// the paper's §3.2 example where connector bags beyond the
			// covering set are required.
			for b := 0; b < n; b++ {
				if chosen[b] {
					continue
				}
				chosen[b] = true
				current = append(current, usable[b])
				if w := try(); w != nil {
					return w
				}
				current = current[:len(current)-1]
				chosen[b] = false
			}
			return nil
		}
		for _, b := range coverOptions[best] {
			if chosen[b] {
				continue
			}
			chosen[b] = true
			current = append(current, usable[b])
			if w := try(); w != nil {
				return w
			}
			current = current[:len(current)-1]
			chosen[b] = false
		}
		return nil
	}
	if w := try(); w != nil {
		if !IsTreeProjection(w, dprime, d) {
			panic("treeproj: internal: witness fails verification")
		}
		res.Found = true
		res.TP = w
	}
	return res
}
